// Package repro provides the benchmark entry points that regenerate the
// paper's tables and figures as Go benchmarks (one per artifact; see
// DESIGN.md §4). Benchmarks run scaled-down configurations so
// `go test -bench=.` completes in minutes; cmd/multiprio-bench runs the
// paper-scale sweeps.
package repro

import (
	"fmt"
	"io"
	"testing"

	"multiprio/internal/apps/dense"
	"multiprio/internal/apps/fmm"
	"multiprio/internal/apps/sparseqr"
	"multiprio/internal/experiments"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/sim"
)

// BenchmarkTable2GainHeuristic regenerates Table II.
func BenchmarkTable2GainHeuristic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable2()
		if err != nil {
			b.Fatal(err)
		}
		if r.Gain[0][0] != 1 {
			b.Fatal("table II mismatch")
		}
	}
}

// BenchmarkFig3NOD regenerates the Fig. 3 criticality example.
func BenchmarkFig3NOD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig3()
		if err != nil {
			b.Fatal(err)
		}
		if r.NODT2 != 2.5 {
			b.Fatal("fig 3 mismatch")
		}
	}
}

// BenchmarkFig4Eviction regenerates the eviction-mechanism trace study.
func BenchmarkFig4Eviction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig4(experiments.Quick, false)
		if err != nil {
			b.Fatal(err)
		}
		if r.With.GPUIdlePct >= r.Without.GPUIdlePct {
			b.Fatal("eviction did not reduce GPU idle")
		}
	}
}

// BenchmarkFig5Dense regenerates the dense kernel sweep (reduced grid).
func BenchmarkFig5Dense(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig5(experiments.Quick, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6FMM regenerates the TBFMM comparison (reduced ensemble).
func BenchmarkFig6FMM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig6(experiments.Quick, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7Matrices regenerates the matrix table and validates the
// synthetic trees against the published op counts.
func BenchmarkFig7Matrices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig7(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8SparseQR regenerates the sparse QR comparison (the six
// smaller matrices).
func BenchmarkFig8SparseQR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig8(experiments.Quick, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation regenerates the design-choice ablation table.
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblation(experiments.Quick, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// Scheduler micro-benchmarks: simulator throughput per policy on a
// mid-size Cholesky, reported as simulated tasks per wall-second.
func benchScheduler(b *testing.B, name string) {
	m := platform.IntelV100(platform.Config{})
	p := dense.Params{Tiles: 16, TileSize: 960, Machine: m, UserPriorities: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := dense.Cholesky(p)
		s, err := experiments.NewScheduler(name)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(m, g, s, sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchedMultiPrio(b *testing.B)  { benchScheduler(b, "multiprio") }
func BenchmarkSchedDmdas(b *testing.B)      { benchScheduler(b, "dmdas") }
func BenchmarkSchedHeteroPrio(b *testing.B) { benchScheduler(b, "heteroprio") }
func BenchmarkSchedLWS(b *testing.B)        { benchScheduler(b, "lws") }
func BenchmarkSchedEager(b *testing.B)      { benchScheduler(b, "eager") }

// BenchmarkSimulatorEventRate measures raw simulator throughput.
func BenchmarkSimulatorEventRate(b *testing.B) {
	m := platform.IntelV100(platform.Config{})
	p := dense.Params{Tiles: 20, TileSize: 960, Machine: m}
	b.ReportAllocs()
	var events int64
	var tasks int
	for i := 0; i < b.N; i++ {
		g := dense.Cholesky(p)
		s, _ := experiments.NewScheduler("eager")
		res, err := sim.Run(m, g, s, sim.Options{})
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
		tasks += len(g.Tasks)
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
	b.ReportMetric(float64(tasks)/b.Elapsed().Seconds(), "tasks/s")
}

// BenchmarkGraphConstruction measures STF submission throughput.
func BenchmarkGraphConstruction(b *testing.B) {
	m := platform.IntelV100(platform.Config{})
	p := dense.Params{Tiles: 24, TileSize: 960, Machine: m}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := dense.Cholesky(p)
		if len(g.Tasks) == 0 {
			b.Fatal("empty graph")
		}
	}
}

// BenchmarkFMMGraphConstruction measures the octree+group-tree builder.
func BenchmarkFMMGraphConstruction(b *testing.B) {
	m := platform.IntelV100(platform.Config{})
	for i := 0; i < b.N; i++ {
		g := fmm.Build(fmm.Params{Particles: 100_000, Height: 5, Machine: m, Seed: 1})
		if len(g.Tasks) == 0 {
			b.Fatal("empty graph")
		}
	}
}

// BenchmarkSparseTreeConstruction measures the assembly-tree synthesis.
func BenchmarkSparseTreeConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := sparseqr.BuildTree(sparseqr.Matrices[2])
		if len(t.Fronts) == 0 {
			b.Fatal("empty tree")
		}
	}
}

// BenchmarkThreadedEngine measures the real goroutine engine on a small
// Cholesky with live kernels.
func BenchmarkThreadedEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := dense.Params{Tiles: 4, TileSize: 32, Machine: platform.CPUOnly(4)}
		g, verify := dense.CholeskyWithKernels(p, int64(i))
		s, _ := experiments.NewScheduler("multiprio")
		eng := &runtime.ThreadedEngine{Machine: platform.CPUOnly(4), Sched: s}
		if _, err := eng.Run(g); err != nil {
			b.Fatal(err)
		}
		if err := verify(1e-6); err != nil {
			b.Fatal(err)
		}
	}
}

// Example-style smoke test ensuring the benches stay wired to real
// experiment code (go vet's printf checks etc. exercise this file).
func TestBenchWiring(t *testing.T) {
	r, err := experiments.RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for a := 0; a < 2; a++ {
		for i := 0; i < 3; i++ {
			if r.Gain[a][i] >= 0 && r.Gain[a][i] <= 1 {
				n++
			}
		}
	}
	if n != 6 {
		t.Fatalf("gain matrix out of [0,1]: %+v", r.Gain)
	}
	_ = fmt.Sprintf("%v", r)
}
