package stream

import (
	"fmt"

	"multiprio/internal/runtime"
)

// Combine merges per-tenant subgraphs into one multi-tenant graph by
// replaying each tenant's STF submission sequence — handles first, then
// tasks in submission order with the same access sequences, so the
// combined graph infers exactly the edges each subgraph had. Explicit
// Declare edges that STF inference cannot reproduce are re-declared.
// Tenants share no handles, so no cross-tenant edges exist: the
// combined DAG is the disjoint union, with task IDs renumbered by
// concatenation order.
//
// The returned plan maps every combined task to its tenant, with zero
// arrivals and unbounded limits (fill via ArrivalSpec.Generate and
// Plan.Limits). Clones share Run/Tag/Payload with the originals but own
// their execution state, so running the combined graph leaves the
// subgraphs reusable.
func Combine(subs ...*runtime.Graph) (*runtime.Graph, *Plan, error) {
	if len(subs) == 0 {
		return nil, nil, fmt.Errorf("stream: Combine needs at least one subgraph")
	}
	g := runtime.NewGraph()
	var tenantOf []int
	for k, sub := range subs {
		hmap := make(map[*runtime.DataHandle]*runtime.DataHandle, len(sub.Handles))
		for _, h := range sub.Handles {
			nh := g.NewDataOn(fmt.Sprintf("t%d/%s", k, h.Name), h.Bytes, h.Home)
			nh.Payload = h.Payload
			hmap[h] = nh
		}
		tmap := make(map[*runtime.Task]*runtime.Task, len(sub.Tasks))
		for _, t := range sub.Tasks {
			nt := &runtime.Task{
				Kind:      t.Kind,
				Footprint: t.Footprint,
				Flops:     t.Flops,
				Priority:  t.Priority,
				Cost:      append([]float64(nil), t.Cost...),
				Run:       t.Run,
				Tag:       t.Tag,
			}
			nt.Accesses = make([]runtime.Access, len(t.Accesses))
			for i, a := range t.Accesses {
				nh := hmap[a.Handle]
				if nh == nil {
					return nil, nil, fmt.Errorf("stream: tenant %d task %d accesses a handle foreign to its subgraph", k, t.ID)
				}
				nt.Accesses[i] = runtime.Access{Handle: nh, Mode: a.Mode}
			}
			g.Submit(nt)
			tmap[t] = nt
			tenantOf = append(tenantOf, k)
		}
		// Re-declare edges STF inference did not reproduce (explicit
		// Graph.Declare control dependencies in the subgraph).
		for _, t := range sub.Tasks {
			nt := tmap[t]
			for _, p := range sub.Preds(t) {
				np := tmap[p]
				have := false
				for _, q := range g.Preds(nt) {
					if q == np {
						have = true
						break
					}
				}
				if !have {
					g.Declare(np, nt)
				}
			}
		}
	}
	return g, NewPlan(tenantOf, len(subs)), nil
}
