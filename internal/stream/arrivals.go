package stream

import (
	"fmt"
	"math"
)

// Shape selects the inter-arrival distribution of one tenant's stream.
type Shape int

const (
	// Uniform spaces arrivals exactly 1/rate apart — a clocked
	// submitter, the lowest-variance load a tenant can offer.
	Uniform Shape = iota
	// Poisson draws exponential inter-arrival gaps of mean 1/rate — the
	// memoryless open-loop arrival process of queueing theory (STOMP's
	// default).
	Poisson
	// Bursty releases tasks in bursts: up to BurstLen tasks at a single
	// instant, with exponential gaps between bursts sized so the
	// long-run rate still matches Rate while the instantaneous load
	// spikes.
	Bursty
)

// String returns the shape name used in reports and flags.
func (s Shape) String() string {
	switch s {
	case Uniform:
		return "uniform"
	case Poisson:
		return "poisson"
	case Bursty:
		return "bursty"
	}
	return fmt.Sprintf("shape(%d)", int(s))
}

// TenantArrivals parameterizes one tenant's arrival stream.
type TenantArrivals struct {
	// Rate is the long-run arrival rate in tasks per second (> 0).
	Rate float64
	// Shape is the inter-arrival distribution.
	Shape Shape
	// BurstLen is the maximum burst size for Bursty (ignored otherwise);
	// values < 2 degrade to Poisson.
	BurstLen int
}

// ArrivalSpec is the seed-driven description of a whole arrival plan:
// one stream per tenant, all derived from a single base seed via
// independent splitmix64 streams.
type ArrivalSpec struct {
	// Seed is the base seed; tenant k's stream is splitmix64 seeded from
	// (Seed, k) only, so tenants are mutually independent.
	Seed uint64
	// Tenants holds one entry per tenant, index-aligned with the plan.
	Tenants []TenantArrivals
}

// exp draws an exponential variate of the given mean. 1-f64 keeps the
// argument in (0, 1] so Log never sees zero.
func expDraw(r *rng, mean float64) float64 {
	return -mean * math.Log(1-r.f64())
}

// Generate fills p.Arrivals from the spec: each tenant's tasks (in task
// ID order, which is submission order) receive nondecreasing arrival
// times drawn from that tenant's stream. The spec must cover every
// tenant of the plan. The same (spec, plan partition) always produces
// the same schedule, and tenant k's times depend only on (Seed, k,
// Tenants[k]) — reshaping tenant j cannot move tenant k's arrivals.
func (spec *ArrivalSpec) Generate(p *Plan) error {
	if len(spec.Tenants) != p.NumTenants() {
		return fmt.Errorf("stream: spec covers %d tenants, plan has %d", len(spec.Tenants), p.NumTenants())
	}
	for k, ta := range spec.Tenants {
		if ta.Rate <= 0 || math.IsNaN(ta.Rate) || math.IsInf(ta.Rate, 0) {
			return fmt.Errorf("stream: tenant %d has invalid rate %g", k, ta.Rate)
		}
	}
	if p.Arrivals == nil || len(p.Arrivals) != len(p.TenantOf) {
		p.Arrivals = make([]float64, len(p.TenantOf))
	}
	clocks := make([]float64, p.NumTenants())
	rngs := make([]rng, p.NumTenants())
	// burstLeft counts how many more tasks the current burst may still
	// emit at the tenant's frozen clock before a new gap is drawn.
	burstLeft := make([]int, p.NumTenants())
	for k := range rngs {
		rngs[k] = tenantRNG(spec.Seed, k)
	}
	for id, k := range p.TenantOf {
		ta := spec.Tenants[k]
		r := &rngs[k]
		switch {
		case ta.Shape == Uniform:
			p.Arrivals[id] = clocks[k]
			clocks[k] += 1 / ta.Rate
		case ta.Shape == Bursty && ta.BurstLen >= 2:
			if burstLeft[k] == 0 {
				// Burst size is drawn uniformly in [1, BurstLen] so the
				// cap is a hard bound; the gap to the burst scales with
				// the drawn size (mean size/Rate), which keeps the
				// long-run rate at Rate regardless of BurstLen.
				size := 1 + int(r.next()%uint64(ta.BurstLen))
				burstLeft[k] = size
				clocks[k] += expDraw(r, float64(size)/ta.Rate)
			}
			p.Arrivals[id] = clocks[k]
			burstLeft[k]--
		default: // Poisson, and Bursty with a degenerate burst length
			clocks[k] += expDraw(r, 1/ta.Rate)
			p.Arrivals[id] = clocks[k]
		}
	}
	return nil
}

// UniformSpec is a convenience: every tenant submits at the same rate
// with the same shape and burst length.
func UniformSpec(seed uint64, tenants int, rate float64, shape Shape, burstLen int) *ArrivalSpec {
	spec := &ArrivalSpec{Seed: seed, Tenants: make([]TenantArrivals, tenants)}
	for k := range spec.Tenants {
		spec.Tenants[k] = TenantArrivals{Rate: rate, Shape: shape, BurstLen: burstLen}
	}
	return spec
}
