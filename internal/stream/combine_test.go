package stream_test

import (
	"testing"

	"multiprio/internal/apps/randdag"
	"multiprio/internal/oracle"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/sched/registry"
	"multiprio/internal/sim"
	"multiprio/internal/stream"

	_ "multiprio/internal/sched/all"
)

func combineMachine(t *testing.T) *platform.Machine {
	t.Helper()
	m, err := platform.NewHeteroNode("comb", 3, 10, 1, 100, 8*platform.MiB, 5e9, platform.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCombinePreservesEdges checks that the disjoint union keeps every
// subgraph dependency — STF-inferred and explicitly declared — and adds
// no cross-tenant edges.
func TestCombinePreservesEdges(t *testing.T) {
	// Tenant 0: a write-read chain over one handle (inferred edges) plus
	// an explicit Declare between data-independent tasks.
	g0 := runtime.NewGraph()
	h := g0.NewData("h", 1024)
	a := g0.Submit(&runtime.Task{Kind: "w", Cost: []float64{1}, Accesses: []runtime.Access{{Handle: h, Mode: runtime.W}}})
	b := g0.Submit(&runtime.Task{Kind: "r", Cost: []float64{1}, Accesses: []runtime.Access{{Handle: h, Mode: runtime.R}}})
	c := g0.Submit(&runtime.Task{Kind: "free", Cost: []float64{1}})
	g0.Declare(a, c)
	// Tenant 1: two independent tasks.
	g1 := runtime.NewGraph()
	g1.Submit(&runtime.Task{Kind: "x", Cost: []float64{1}})
	g1.Submit(&runtime.Task{Kind: "y", Cost: []float64{1}})

	g, plan, err := stream.Combine(g0, g1)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Tasks) != 5 {
		t.Fatalf("combined graph has %d tasks, want 5", len(g.Tasks))
	}
	wantTenant := []int{0, 0, 0, 1, 1}
	for id, k := range plan.TenantOf {
		if k != wantTenant[id] {
			t.Fatalf("task %d assigned to tenant %d, want %d", id, k, wantTenant[id])
		}
	}
	// a->b (inferred) and a->c (declared) survive; tenant 1 has no preds.
	preds := func(id int64) int { return len(g.Preds(g.Tasks[id])) }
	if preds(0) != 0 || preds(1) != 1 || preds(2) != 1 {
		t.Fatalf("tenant 0 pred counts = %d/%d/%d, want 0/1/1", preds(0), preds(1), preds(2))
	}
	if preds(3) != 0 || preds(4) != 0 {
		t.Fatalf("tenant 1 gained cross-tenant dependencies")
	}
	if g.Tasks[1].Kind != b.Kind || g.Tasks[2].Kind != c.Kind {
		t.Fatalf("combined tasks lost their identity")
	}
	if err := plan.Validate(g); err != nil {
		t.Fatalf("plan invalid: %v", err)
	}
}

// TestCombineStreamedRun combines per-tenant random DAGs, streams them
// with Poisson arrivals through the Fair wrapper, and validates the run
// against the oracle including StreamCheck.
func TestCombineStreamedRun(t *testing.T) {
	m := combineMachine(t)
	subs := make([]*runtime.Graph, 3)
	for k := range subs {
		subs[k] = randdag.Build(randdag.Params{Layers: 5, Width: 6, CommuteShare: 0.2,
			Machine: m, Seed: int64(100 + k)})
	}
	g, plan, err := stream.Combine(subs...)
	if err != nil {
		t.Fatal(err)
	}
	counts := plan.TasksOf()
	spec := &stream.ArrivalSpec{Seed: 21, Tenants: make([]stream.TenantArrivals, 3)}
	for k := range spec.Tenants {
		spec.Tenants[k] = stream.TenantArrivals{Rate: float64(counts[k]) * 10, Shape: stream.Poisson}
	}
	if err := spec.Generate(plan); err != nil {
		t.Fatal(err)
	}
	for k := range plan.Limits {
		plan.Limits[k] = 3
	}
	fair, err := stream.New("multiprio", plan, registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(m, g, fair, sim.Options{Seed: 9, CollectMemEvents: true, Arrivals: plan.Arrivals})
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	if err := oracle.Check(g, res.Trace, oracle.Options{
		OverflowBytes: res.OverflowBytes,
		Stream:        &oracle.StreamCheck{Plan: plan, Admissions: fair.AdmissionLog()},
	}); err != nil {
		t.Fatalf("oracle: %v", err)
	}
}

// TestCombineErrors checks the empty union is rejected.
func TestCombineErrors(t *testing.T) {
	if _, _, err := stream.Combine(); err == nil {
		t.Error("empty Combine accepted")
	}
}
