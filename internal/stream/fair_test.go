package stream

import (
	"sync"
	"testing"

	"multiprio/internal/platform"
	"multiprio/internal/runtime"
)

// fakeInner records the pushes it receives, in order.
type fakeInner struct {
	mu     sync.Mutex
	pushed []*runtime.Task
}

func (f *fakeInner) Name() string          { return "fake" }
func (f *fakeInner) Init(env *runtime.Env) {}
func (f *fakeInner) Push(t *runtime.Task) {
	f.mu.Lock()
	f.pushed = append(f.pushed, t)
	f.mu.Unlock()
}
func (f *fakeInner) Pop(w runtime.WorkerInfo) *runtime.Task         { return nil }
func (f *fakeInner) TaskDone(t *runtime.Task, w runtime.WorkerInfo) {}

func (f *fakeInner) ids() []int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]int64, len(f.pushed))
	for i, t := range f.pushed {
		out[i] = t.ID
	}
	return out
}

// fairFixture builds a graph of n independent tasks, a single-tenant
// plan with the given limit, and an initialized Fair over a fake inner.
func fairFixture(t *testing.T, n, limit int) (*runtime.Graph, *Plan, *Fair, *fakeInner) {
	t.Helper()
	m, err := platform.NewHeteroNode("fairt", 2, 10, 0, 100, 8*platform.MiB, 5e9, platform.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g := runtime.NewGraph()
	for i := 0; i < n; i++ {
		g.Submit(&runtime.Task{Kind: "k", Cost: []float64{1}})
	}
	plan := SplitEven(n, 1)
	plan.Limits[0] = limit
	inner := &fakeInner{}
	fair := NewFair(inner, plan)
	fair.Init(runtime.NewEnv(m, g))
	return g, plan, fair, inner
}

func eq(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFairAdmissionBound checks the in-flight bound and FIFO admission:
// with limit 2, pushing 5 tasks forwards exactly 2, and each completion
// admits the next pending task in push order.
func TestFairAdmissionBound(t *testing.T) {
	g, _, fair, inner := fairFixture(t, 5, 2)
	w := runtime.WorkerInfo{}
	for _, task := range g.Tasks {
		fair.Push(task)
	}
	if got := inner.ids(); !eq(got, []int64{0, 1}) {
		t.Fatalf("after 5 pushes at limit 2, inner saw %v, want [0 1]", got)
	}
	fair.TaskDone(g.Tasks[0], w)
	if got := inner.ids(); !eq(got, []int64{0, 1, 2}) {
		t.Fatalf("after first completion, inner saw %v, want [0 1 2]", got)
	}
	fair.TaskDone(g.Tasks[2], w)
	fair.TaskDone(g.Tasks[1], w)
	if got := inner.ids(); !eq(got, []int64{0, 1, 2, 3, 4}) {
		t.Fatalf("after three completions, inner saw %v, want FIFO [0 1 2 3 4]", got)
	}
	stats := fair.Stats()
	if stats.Admitted[0] != 5 || stats.Deferred[0] != 3 || stats.MaxPending[0] != 3 {
		t.Fatalf("stats = %+v, want 5 admitted, 3 deferred, max pending 3", stats)
	}
	log := fair.AdmissionLog()
	if len(log) != 5 {
		t.Fatalf("admission log has %d entries, want 5", len(log))
	}
	for _, a := range log {
		if a.AdmittedAt < 0 {
			t.Fatalf("task %d never admitted: %+v", a.Task, a)
		}
	}
}

// TestFairRetryPassthrough checks that a re-push of an already admitted
// task (fault retry) bypasses admission even while the tenant is at its
// limit, without double-counting the in-flight slot.
func TestFairRetryPassthrough(t *testing.T) {
	g, _, fair, inner := fairFixture(t, 4, 2)
	w := runtime.WorkerInfo{}
	for _, task := range g.Tasks {
		fair.Push(task)
	}
	// Tenant is saturated (tasks 0, 1 in flight; 2, 3 pending). A retry
	// of task 1 must go straight through.
	fair.Push(g.Tasks[1])
	if got := inner.ids(); !eq(got, []int64{0, 1, 1}) {
		t.Fatalf("retry push: inner saw %v, want [0 1 1]", got)
	}
	// The retry did not consume a second slot: one completion admits
	// exactly one pending task.
	fair.TaskDone(g.Tasks[0], w)
	if got := inner.ids(); !eq(got, []int64{0, 1, 1, 2}) {
		t.Fatalf("after completion, inner saw %v, want [0 1 1 2]", got)
	}
	if log := fair.AdmissionLog(); len(log) != 4 {
		t.Fatalf("admission log has %d entries, want 4 (retries are not re-admissions)", len(log))
	}
}

// TestFairUnboundedTransparent checks that with no limits every push is
// forwarded inline with PushedAt == AdmittedAt — the transparency the
// t=0 golden-equivalence proof builds on.
func TestFairUnboundedTransparent(t *testing.T) {
	g, _, fair, inner := fairFixture(t, 6, 0)
	for _, task := range g.Tasks {
		fair.Push(task)
	}
	if got := inner.ids(); !eq(got, []int64{0, 1, 2, 3, 4, 5}) {
		t.Fatalf("unbounded wrapper reordered or held pushes: %v", got)
	}
	for _, a := range fair.AdmissionLog() {
		if a.AdmittedAt != a.PushedAt {
			t.Fatalf("unbounded admission deferred task %d: %+v", a.Task, a)
		}
	}
	if s := fair.Stats(); s.Deferred[0] != 0 {
		t.Fatalf("unbounded wrapper deferred %d tasks", s.Deferred[0])
	}
}
