package stream

import (
	"fmt"
	"sync"

	"multiprio/internal/runtime"
	"multiprio/internal/sched/registry"
)

// Admission is one entry of the Fair wrapper's admission log: when the
// engine offered the task (PushedAt) and when the wrapper forwarded it
// to the inner policy (AdmittedAt). The two are equal unless the task's
// tenant was at its in-flight limit. The oracle's StreamCheck replays
// the log to prove admission delays are always self-inflicted (own
// tenant saturated) and never cross-tenant starvation.
type Admission struct {
	Task       int64
	Tenant     int
	PushedAt   float64
	AdmittedAt float64
}

// FairStats summarizes one run of the wrapper per tenant.
type FairStats struct {
	// Admitted counts first admissions (retry re-pushes excluded).
	Admitted []int
	// Deferred counts admissions that waited in the pending queue.
	Deferred []int
	// MaxPending is the high-water mark of each tenant's pending queue.
	MaxPending []int
}

// Fair layers multi-tenant admission control over any registry policy:
// tasks pushed while their tenant already has Limit tasks in flight
// (admitted and not completed) wait in that tenant's FIFO pending queue
// and are forwarded as completions free slots. Backpressure is
// per-tenant only — one tenant hitting its bound never delays another —
// which is the mechanism behind the bounded cross-tenant starvation
// guarantee. With unbounded limits every push is forwarded inline, so
// the wrapper is behaviourally transparent (the t=0 golden-equivalence
// proof relies on this).
//
// Fair implements runtime.Scheduler and runtime.FaultObserver; both
// engines can drive it like any other policy. A fault-retry re-push of
// an already-admitted task bypasses admission (its in-flight slot is
// still held — the task never completed), so recovery cannot deadlock
// behind the tenant's own limit.
type Fair struct {
	inner runtime.Scheduler
	plan  *Plan
	env   *runtime.Env

	mu       sync.Mutex
	pending  [][]*runtime.Task
	inflight []int
	admitted []bool
	log      []Admission
	stats    FairStats

	// inflightTrack/pendingTrack are the per-tenant probe track names,
	// prebuilt at Init so the instrumented path never allocates; nil
	// when the env carries no probe.
	inflightTrack []string
	pendingTrack  []string
}

// NewFair wraps an instantiated policy. The plan supplies the tenant
// partition and the per-tenant limits.
func NewFair(inner runtime.Scheduler, plan *Plan) *Fair {
	return &Fair{inner: inner, plan: plan}
}

// New instantiates the named registry policy and wraps it — the usual
// way to build a multi-tenant scheduler.
func New(innerName string, plan *Plan, opts registry.Options) (*Fair, error) {
	inner, err := registry.New(innerName, opts)
	if err != nil {
		return nil, err
	}
	return NewFair(inner, plan), nil
}

// Name identifies the wrapper and its inner policy in reports.
func (f *Fair) Name() string { return fmt.Sprintf("fair(%s)", f.inner.Name()) }

// Inner returns the wrapped policy.
func (f *Fair) Inner() runtime.Scheduler { return f.inner }

// Init resets all admission state and initializes the inner policy.
func (f *Fair) Init(env *runtime.Env) {
	f.mu.Lock()
	f.env = env
	n := f.plan.NumTenants()
	f.pending = make([][]*runtime.Task, n)
	f.inflight = make([]int, n)
	f.admitted = make([]bool, len(env.Graph.Tasks))
	f.log = f.log[:0]
	f.stats = FairStats{
		Admitted:   make([]int, n),
		Deferred:   make([]int, n),
		MaxPending: make([]int, n),
	}
	f.inflightTrack, f.pendingTrack = nil, nil
	if env.Probe != nil {
		f.inflightTrack = make([]string, n)
		f.pendingTrack = make([]string, n)
		for k := 0; k < n; k++ {
			f.inflightTrack[k] = "stream.inflight[" + f.plan.Name(k) + "]"
			f.pendingTrack[k] = "stream.pending[" + f.plan.Name(k) + "]"
		}
	}
	f.mu.Unlock()
	f.inner.Init(env)
}

// noteTenant samples tenant k's in-flight and pending depths on the
// env probe. Callers hold f.mu; a nil probe costs one branch.
func (f *Fair) noteTenant(k int) {
	if f.inflightTrack == nil {
		return
	}
	at, seq := f.env.Now(), f.env.Seq()
	f.env.Probe.Counter(f.inflightTrack[k], at, seq, float64(f.inflight[k]))
	f.env.Probe.Counter(f.pendingTrack[k], at, seq, float64(len(f.pending[k])))
}

// Push offers a dependency-released task. First offers go through
// admission; re-pushes of admitted tasks (fault retries) pass straight
// through.
func (f *Fair) Push(t *runtime.Task) {
	f.mu.Lock()
	if f.admitted[t.ID] {
		f.mu.Unlock()
		f.inner.Push(t)
		return
	}
	k := f.plan.Tenant(t.ID)
	now := f.env.Now()
	lim := f.plan.Limit(k)
	if lim > 0 && f.inflight[k] >= lim {
		f.pending[k] = append(f.pending[k], t)
		if n := len(f.pending[k]); n > f.stats.MaxPending[k] {
			f.stats.MaxPending[k] = n
		}
		f.stats.Deferred[k]++
		// PushedAt is recorded now; AdmittedAt is filled when a slot
		// frees. Stash the push time on the log entry eagerly so the
		// admission in TaskDone only completes it.
		f.log = append(f.log, Admission{Task: t.ID, Tenant: k, PushedAt: now, AdmittedAt: -1})
		f.noteTenant(k)
		f.mu.Unlock()
		return
	}
	f.admitNowLocked(t, k, now, now)
	f.noteTenant(k)
	f.mu.Unlock()
	f.inner.Push(t)
}

// admitNowLocked marks t admitted and logs it. Callers forward to the
// inner policy after unlocking.
func (f *Fair) admitNowLocked(t *runtime.Task, k int, pushedAt, admittedAt float64) {
	f.admitted[t.ID] = true
	f.inflight[k]++
	f.stats.Admitted[k]++
	f.log = append(f.log, Admission{Task: t.ID, Tenant: k, PushedAt: pushedAt, AdmittedAt: admittedAt})
}

// Pop delegates to the inner policy: the wrapper shapes what reaches
// the inner queues, never which admitted task a worker gets.
func (f *Fair) Pop(w runtime.WorkerInfo) *runtime.Task { return f.inner.Pop(w) }

// TaskDone releases the tenant's in-flight slot and admits the head of
// its pending queue, if any, preserving FIFO submission order within
// the tenant.
func (f *Fair) TaskDone(t *runtime.Task, w runtime.WorkerInfo) {
	f.mu.Lock()
	k := f.plan.Tenant(t.ID)
	f.inflight[k]--
	var admit []*runtime.Task
	lim := f.plan.Limit(k)
	for len(f.pending[k]) > 0 && (lim == 0 || f.inflight[k] < lim) {
		next := f.pending[k][0]
		f.pending[k] = f.pending[k][1:]
		now := f.env.Now()
		// Complete the deferred log entry: find it by task ID (the
		// entry with AdmittedAt still unset).
		for i := len(f.log) - 1; i >= 0; i-- {
			if f.log[i].Task == next.ID && f.log[i].AdmittedAt < 0 {
				f.log[i].AdmittedAt = now
				break
			}
		}
		f.admitted[next.ID] = true
		f.inflight[k]++
		f.stats.Admitted[k]++
		admit = append(admit, next)
	}
	f.noteTenant(k)
	f.mu.Unlock()
	f.inner.TaskDone(t, w)
	for _, nt := range admit {
		f.inner.Push(nt)
	}
}

// WorkerDown forwards fault notifications to inner policies that keep
// per-worker state.
func (f *Fair) WorkerDown(w runtime.WorkerInfo) {
	if fo, ok := f.inner.(runtime.FaultObserver); ok {
		fo.WorkerDown(w)
	}
}

// AdmissionLog returns a copy of the admission log in admission-event
// order. Entries with AdmittedAt == -1 were still pending when the run
// ended (only possible on aborted runs).
func (f *Fair) AdmissionLog() []Admission {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Admission, len(f.log))
	copy(out, f.log)
	return out
}

// Stats returns a copy of the per-tenant admission statistics.
func (f *Fair) Stats() FairStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := FairStats{
		Admitted:   append([]int(nil), f.stats.Admitted...),
		Deferred:   append([]int(nil), f.stats.Deferred...),
		MaxPending: append([]int(nil), f.stats.MaxPending...),
	}
	return s
}

// StreamStats implements runtime.StreamStatsReporter, so both engines
// surface per-tenant admission statistics on runtime.Result.Stream
// without importing this package.
func (f *Fair) StreamStats() runtime.StreamStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.plan.NumTenants()
	out := runtime.StreamStats{
		Tenants:    make([]string, n),
		Admitted:   append([]int(nil), f.stats.Admitted...),
		Deferred:   append([]int(nil), f.stats.Deferred...),
		MaxPending: append([]int(nil), f.stats.MaxPending...),
	}
	for k := 0; k < n; k++ {
		out.Tenants[k] = f.plan.Name(k)
	}
	return out
}
