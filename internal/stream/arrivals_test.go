package stream

import (
	"math"
	"testing"
)

// plan1 returns a single-tenant plan over n tasks.
func plan1(n int) *Plan { return SplitEven(n, 1) }

// TestArrivalRateTolerance checks that every shape's long-run arrival
// rate matches the configured rate: over n tasks the last arrival is
// close to n/rate.
func TestArrivalRateTolerance(t *testing.T) {
	const n, rate = 4000, 100.0
	for _, shape := range []Shape{Uniform, Poisson, Bursty} {
		p := plan1(n)
		spec := &ArrivalSpec{Seed: 7, Tenants: []TenantArrivals{{Rate: rate, Shape: shape, BurstLen: 6}}}
		if err := spec.Generate(p); err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		want := float64(n) / rate
		got := p.Arrivals[n-1]
		if math.Abs(got-want)/want > 0.10 {
			t.Errorf("%s: %d arrivals at rate %g span %g s, want %g within 10%%", shape, n, rate, got, want)
		}
	}
}

// TestBurstCap checks bursty streams: no instant carries more than
// BurstLen arrivals, and bursts actually happen (some instant carries
// more than one).
func TestBurstCap(t *testing.T) {
	const n, burst = 2000, 5
	p := plan1(n)
	spec := &ArrivalSpec{Seed: 11, Tenants: []TenantArrivals{{Rate: 50, Shape: Bursty, BurstLen: burst}}}
	if err := spec.Generate(p); err != nil {
		t.Fatal(err)
	}
	counts := map[float64]int{}
	max := 0
	for _, at := range p.Arrivals {
		counts[at]++
		if counts[at] > max {
			max = counts[at]
		}
	}
	if max > burst {
		t.Errorf("an instant carries %d arrivals, burst cap is %d", max, burst)
	}
	if max < 2 {
		t.Errorf("no instant carries more than one arrival; bursty stream degenerated")
	}
}

// TestArrivalsReproducible checks that the same spec over the same plan
// partition yields the identical schedule.
func TestArrivalsReproducible(t *testing.T) {
	mk := func() []float64 {
		p := SplitEven(500, 3)
		spec := UniformSpec(42, 3, 80, Poisson, 0)
		if err := spec.Generate(p); err != nil {
			t.Fatal(err)
		}
		return p.Arrivals
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs across identical generations: %g vs %g", i, a[i], b[i])
		}
	}
}

// TestTenantIndependence checks that reshaping one tenant's stream
// cannot move another tenant's arrivals: tenant streams are seeded from
// (Seed, k) alone, never from a shared draw sequence.
func TestTenantIndependence(t *testing.T) {
	const n = 400
	// Interleave the two tenants so any accidental sharing of a draw
	// stream would shift tenant 0's times immediately.
	tenantOf := make([]int, n)
	for i := range tenantOf {
		tenantOf[i] = i % 2
	}
	gen := func(rate1 float64, shape1 Shape) []float64 {
		p := NewPlan(append([]int(nil), tenantOf...), 2)
		spec := &ArrivalSpec{Seed: 13, Tenants: []TenantArrivals{
			{Rate: 60, Shape: Poisson},
			{Rate: rate1, Shape: shape1, BurstLen: 4},
		}}
		if err := spec.Generate(p); err != nil {
			t.Fatal(err)
		}
		return p.Arrivals
	}
	a := gen(60, Poisson)
	b := gen(7, Bursty)
	for i := 0; i < n; i += 2 { // tenant 0 positions
		if a[i] != b[i] {
			t.Fatalf("tenant 0 arrival %d moved (%g -> %g) when tenant 1 was reshaped", i, a[i], b[i])
		}
	}
}

// TestArrivalsMonotonePerTenant checks each tenant's schedule is
// nondecreasing in submission order for every shape.
func TestArrivalsMonotonePerTenant(t *testing.T) {
	for _, shape := range []Shape{Uniform, Poisson, Bursty} {
		p := SplitEven(900, 3)
		spec := UniformSpec(3, 3, 120, shape, 5)
		if err := spec.Generate(p); err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		last := make([]float64, 3)
		for id, k := range p.TenantOf {
			if p.Arrivals[id] < last[k] {
				t.Fatalf("%s: tenant %d arrival %d at %g precedes its predecessor at %g",
					shape, k, id, p.Arrivals[id], last[k])
			}
			last[k] = p.Arrivals[id]
		}
	}
}

// TestGenerateErrors checks the spec validation: tenant-count mismatch
// and non-positive rates are rejected.
func TestGenerateErrors(t *testing.T) {
	p := SplitEven(10, 2)
	if err := (&ArrivalSpec{Seed: 1, Tenants: []TenantArrivals{{Rate: 1}}}).Generate(p); err == nil {
		t.Error("tenant-count mismatch accepted")
	}
	if err := UniformSpec(1, 2, 0, Poisson, 0).Generate(p); err == nil {
		t.Error("zero rate accepted")
	}
	if err := UniformSpec(1, 2, math.Inf(1), Poisson, 0).Generate(p); err == nil {
		t.Error("infinite rate accepted")
	}
}
