// Package stream is the online-ingestion layer of the runtime: instead
// of building a full DAG and running it (batch mode), tasks arrive over
// engine time — virtual seconds on the simulator, wall-clock seconds on
// the threaded engine — from N concurrent tenants, as a long-running
// scheduler service would see them.
//
// The pieces, each usable on its own:
//
//   - Plan: the per-task arrival schedule plus the tenant partition and
//     per-tenant admission limits. Engines honor Plan.Arrivals through
//     runtime.WithArrivals / sim.Options.Arrivals: a task is never
//     offered to the scheduler before its arrival instant.
//   - ArrivalSpec / Plan.Generate: a seed-driven arrival process
//     (uniform, Poisson, bursty) built on splitmix64 — the repository's
//     standard seeding primitive — with one independent stream per
//     tenant, so the same seed always yields the same schedule and one
//     tenant's parameters never perturb another's arrivals.
//   - Fair: a scheduler wrapper layered over any registry policy that
//     adds per-tenant submission queues with admission control and
//     backpressure (bounded in-flight tasks per tenant), so a heavy
//     tenant cannot flood the underlying policy's queues.
//   - Combine: merges per-tenant subgraphs into one multi-tenant DAG,
//     replaying each tenant's STF submissions into a shared graph.
//
// The oracle's StreamCheck (internal/oracle) validates streaming runs:
// per-tenant exactly-once, no task starts before its arrival, per-tenant
// concurrency never exceeds the admission limit, and admission-log
// replay proving no cross-tenant starvation — a task is delayed only
// while its own tenant sits at its in-flight bound, never because
// another tenant cut the line.
package stream

import (
	"fmt"
	"math"

	"multiprio/internal/runtime"
)

// Plan describes one streaming run over a (possibly combined) graph:
// which tenant submitted each task, when it arrives, and how many tasks
// each tenant may have in flight.
type Plan struct {
	// TenantOf maps task ID -> tenant index. Task IDs are dense
	// submission-order integers, so a slice suffices.
	TenantOf []int
	// Arrivals is the per-task submission time, indexed by task ID.
	// Nil (or all zeros) means every task is available at t=0 — batch
	// mode, byte-identical to a run without a plan.
	Arrivals []float64
	// Limits is the per-tenant admission bound: at most Limits[k] tasks
	// of tenant k may be in flight (admitted to the inner policy and
	// not yet completed) at once. 0 means unbounded.
	Limits []int
	// Names are optional tenant labels for reports; Tenant k defaults
	// to "t<k>".
	Names []string
}

// NewPlan builds a plan skeleton over an explicit tenant partition:
// zero arrivals, unbounded admission. tenants is the tenant count;
// every entry of tenantOf must be in [0, tenants).
func NewPlan(tenantOf []int, tenants int) *Plan {
	return &Plan{
		TenantOf: tenantOf,
		Arrivals: make([]float64, len(tenantOf)),
		Limits:   make([]int, tenants),
	}
}

// SplitEven partitions n tasks over tenants contiguous blocks of task
// IDs (block k gets the k-th slice of submission order) and returns the
// plan skeleton. It is the single-graph analogue of Combine: tests that
// stream an existing workload use it to impose a tenant structure.
func SplitEven(n, tenants int) *Plan {
	if tenants < 1 {
		tenants = 1
	}
	tenantOf := make([]int, n)
	per := (n + tenants - 1) / tenants
	if per < 1 {
		per = 1
	}
	for i := range tenantOf {
		k := i / per
		if k >= tenants {
			k = tenants - 1
		}
		tenantOf[i] = k
	}
	return NewPlan(tenantOf, tenants)
}

// NumTenants returns the tenant count of the plan.
func (p *Plan) NumTenants() int { return len(p.Limits) }

// Tenant returns the tenant index of task id.
func (p *Plan) Tenant(id int64) int { return p.TenantOf[id] }

// Limit returns the admission bound of tenant k (0 = unbounded).
func (p *Plan) Limit(k int) int { return p.Limits[k] }

// Name returns the label of tenant k.
func (p *Plan) Name(k int) string {
	if k < len(p.Names) && p.Names[k] != "" {
		return p.Names[k]
	}
	return fmt.Sprintf("t%d", k)
}

// TasksOf returns how many tasks each tenant owns.
func (p *Plan) TasksOf() []int {
	counts := make([]int, p.NumTenants())
	for _, k := range p.TenantOf {
		counts[k]++
	}
	return counts
}

// Validate checks the plan against the graph it will stream: full task
// coverage, valid tenant indices, finite non-negative arrival times and
// non-negative limits.
func (p *Plan) Validate(g *runtime.Graph) error {
	if p == nil {
		return fmt.Errorf("stream: nil plan")
	}
	if len(p.TenantOf) != len(g.Tasks) {
		return fmt.Errorf("stream: plan covers %d tasks, graph has %d", len(p.TenantOf), len(g.Tasks))
	}
	if p.NumTenants() < 1 {
		return fmt.Errorf("stream: plan has no tenants")
	}
	for id, k := range p.TenantOf {
		if k < 0 || k >= p.NumTenants() {
			return fmt.Errorf("stream: task %d assigned to invalid tenant %d (have %d)", id, k, p.NumTenants())
		}
	}
	if p.Arrivals != nil {
		if len(p.Arrivals) != len(g.Tasks) {
			return fmt.Errorf("stream: arrival schedule covers %d tasks, graph has %d", len(p.Arrivals), len(g.Tasks))
		}
		for id, at := range p.Arrivals {
			if at < 0 || math.IsNaN(at) || math.IsInf(at, 0) {
				return fmt.Errorf("stream: task %d has invalid arrival time %g", id, at)
			}
		}
	}
	for k, lim := range p.Limits {
		if lim < 0 {
			return fmt.Errorf("stream: tenant %d has negative admission limit %d", k, lim)
		}
	}
	return nil
}

// rng is splitmix64 (Steele et al.), the repository's standard seeding
// primitive, duplicated here because internal/fault keeps its copy
// unexported and the two packages must stay independently evolvable.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// f64 returns a uniform float in [0, 1).
func (r *rng) f64() float64 { return float64(r.next()>>11) / (1 << 53) }

// tenantRNG returns the independent splitmix64 stream of tenant k: the
// state depends only on (seed, k), never on another tenant's draws, so
// changing tenant j's parameters cannot shift tenant k's arrivals.
func tenantRNG(seed uint64, k int) rng {
	return rng{s: seed ^ (uint64(k)+1)*0xbf58476d1ce4e5b9}
}
