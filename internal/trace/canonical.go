package trace

import (
	"bytes"
	"fmt"
	"io"
	"strconv"
)

// WriteCanonical writes a lossless text encoding of the trace: every
// span, transfer and memory event in recorded order, floats rendered
// with the shortest round-trip representation. Two runs of the
// simulator with the same seed must produce byte-identical canonical
// encodings — the determinism invariant the conformance harness checks.
func (tr *Trace) WriteCanonical(w io.Writer) error {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	if _, err := fmt.Fprintf(w, "machine %s makespan %s\n", tr.Machine.Name, f(tr.Makespan)); err != nil {
		return err
	}
	for _, s := range tr.Spans {
		// Failed and cancelled attempts get their own line prefixes;
		// fault-free, speculation-free traces contain neither, so their
		// encoding is byte-identical to the pre-fault format (the
		// golden-file invariant).
		tag := "span"
		switch {
		case s.Failed:
			tag = "fail"
		case s.Cancelled:
			tag = "canc"
		}
		if _, err := fmt.Fprintf(w, "%s w%d t%d %s %s %s %s %d %d\n",
			tag, s.Worker, s.TaskID, s.Kind, f(s.Start), f(s.End), f(s.Wait), s.StartSeq, s.EndSeq); err != nil {
			return err
		}
	}
	for _, x := range tr.Xfers {
		tag := "xfer"
		if x.Failed {
			tag = "xfail"
		}
		if _, err := fmt.Fprintf(w, "%s h%d %d->%d %d %s %s %v %v\n",
			tag, x.Handle, x.Src, x.Dst, x.Bytes, f(x.Start), f(x.End), x.Prefetch, x.Writeback); err != nil {
			return err
		}
	}
	for _, e := range tr.MemEvents {
		if _, err := fmt.Fprintf(w, "mem %s h%d m%d %d v%d %s %d\n",
			e.Kind, e.Handle, e.Mem, e.Bytes, e.Version, f(e.At), e.Seq); err != nil {
			return err
		}
	}
	return nil
}

// Canonical returns the canonical encoding as a byte slice.
func (tr *Trace) Canonical() []byte {
	var b bytes.Buffer
	if err := tr.WriteCanonical(&b); err != nil {
		panic(err) // bytes.Buffer writes cannot fail
	}
	return b.Bytes()
}
