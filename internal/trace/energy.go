package trace

import (
	"fmt"
	"strings"

	"multiprio/internal/platform"
)

// EnergyReport breaks down the energy consumed by one run, per
// architecture, using the platform's per-unit busy/idle power model.
// This supports the paper's Section VII outlook ("incorporate energy
// efficiency heuristics to take advantage of the CPUs and re-balance
// the workload ... without compromising overall performance").
type EnergyReport struct {
	// PerArch[a] is the energy in joules attributed to architecture a.
	PerArch []float64
	// Total is the summed energy in joules.
	Total float64
	// Makespan mirrors the trace makespan, for energy-delay products.
	Makespan float64
}

// EDP returns the energy-delay product in joule-seconds.
func (r *EnergyReport) EDP() float64 { return r.Total * r.Makespan }

// String renders a compact per-architecture summary.
func (r *EnergyReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%.1f J total (EDP %.2f J·s)", r.Total, r.EDP())
	return b.String()
}

// Energy computes the run's energy from the recorded spans: every unit
// draws its architecture's busy power while a span occupies it (the
// transfer-wait portion is billed at idle power — the unit stalls) and
// idle power otherwise, integrated over the makespan.
func (tr *Trace) Energy() *EnergyReport {
	rep := &EnergyReport{
		PerArch:  make([]float64, len(tr.Machine.Archs)),
		Makespan: tr.Makespan,
	}
	busy := make([]float64, len(tr.Machine.Units))
	wait := make([]float64, len(tr.Machine.Units))
	for _, s := range tr.Spans {
		busy[s.Worker] += s.End - s.Start - s.Wait
		wait[s.Worker] += s.Wait
	}
	for u, unit := range tr.Machine.Units {
		arch := tr.Machine.Archs[unit.Arch]
		idleTime := tr.Makespan - busy[u] - wait[u]
		if idleTime < 0 {
			idleTime = 0
		}
		j := busy[u]*arch.BusyWatts + (idleTime+wait[u])*arch.IdleWatts
		rep.PerArch[unit.Arch] += j
		rep.Total += j
	}
	return rep
}

// ArchEnergy returns the joules attributed to one architecture.
func (r *EnergyReport) ArchEnergy(a platform.ArchID) float64 {
	if int(a) >= len(r.PerArch) {
		return 0
	}
	return r.PerArch[a]
}
