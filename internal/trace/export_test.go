package trace

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"multiprio/internal/obs"
	"multiprio/internal/platform"
)

func sampleTrace() *Trace {
	m := platform.IntelV100(platform.Config{})
	tr := New(m)
	tr.AddSpan(Span{Worker: 0, TaskID: 1, Kind: "potrf", Start: 0, End: 0.5})
	tr.AddSpan(Span{Worker: 30, TaskID: 2, Kind: "gemm", Start: 0.1, End: 0.9, Wait: 0.2})
	tr.AddTransfer(Transfer{Handle: 3, Src: 0, Dst: 1, Bytes: 1024, Start: 0, End: 0.1})
	tr.AddTransfer(Transfer{Handle: 4, Src: 1, Dst: 0, Bytes: 2048, Start: 0.2, End: 0.3, Writeback: true})
	return tr
}

func TestWriteChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	var tasks, meta, xfers int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			meta++
		case "X":
			if ev["cat"] == "task" {
				tasks++
				if ev["dur"].(float64) <= 0 {
					t.Error("task event with non-positive duration")
				}
			} else {
				xfers++
			}
		}
	}
	if tasks != 2 {
		t.Errorf("task events = %d, want 2", tasks)
	}
	if xfers != 2 {
		t.Errorf("transfer events = %d, want 2", xfers)
	}
	if meta < 32 {
		t.Errorf("metadata events = %d, want at least one per unit", meta)
	}
	if !strings.Contains(buf.String(), "writeback") {
		t.Error("writeback category missing")
	}
}

// TestWriteChromeTraceWith validates the enriched export end to end:
// the JSON parses, process/thread metadata group the rows, span args
// from the scheduler context reach the task events, and every counter
// sample recorded through obs.Metrics appears as a "C" event with the
// same track, time, and value.
func TestWriteChromeTraceWith(t *testing.T) {
	rec := obs.NewMetrics()
	rec.Counter("multiprio.ready[RAM]", 0, 1, 3)
	rec.Counter("multiprio.ready[RAM]", 0.2, 5, 2)
	rec.Counter("mem.used[GPU0]", 0.1, 3, 4096)

	var buf bytes.Buffer
	err := sampleTrace().WriteChromeTraceWith(&buf, ChromeOptions{
		SpanArgs: func(taskID int64) map[string]string {
			if taskID == 2 {
				return map[string]string{"gain": "1.5", "mem_node": "GPU0"}
			}
			return nil
		},
		Counters: ChromeCountersFrom(rec.Tracks()),
	})
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}

	procNames := map[float64]string{}
	threadSort := map[float64]float64{}
	counters := map[string][][2]float64{} // track -> (ts, value)
	var sawSpanArgs bool
	for _, ev := range doc.TraceEvents {
		ts := ev["ts"].(float64)
		if ts < 0 {
			t.Errorf("event %q has negative ts %v", ev["name"], ts)
		}
		if d, ok := ev["dur"]; ok && d.(float64) < 0 {
			t.Errorf("event %q has negative dur %v", ev["name"], d)
		}
		switch ev["ph"] {
		case "M":
			args := ev["args"].(map[string]any)
			switch ev["name"] {
			case "process_name":
				procNames[ev["pid"].(float64)] = args["name"].(string)
			case "thread_sort_index":
				if ev["pid"].(float64) == 0 {
					threadSort[ev["tid"].(float64)] = args["sort_index"].(float64)
				}
			}
		case "X":
			if ev["cat"] == "task" {
				args := ev["args"].(map[string]any)
				if args["task"] == "2" {
					if args["gain"] != "1.5" || args["mem_node"] != "GPU0" {
						t.Errorf("span args not attached: %v", args)
					}
					sawSpanArgs = true
				}
			}
		case "C":
			if ev["pid"].(float64) != 2 {
				t.Errorf("counter event on pid %v, want 2", ev["pid"])
			}
			v := ev["args"].(map[string]any)["value"].(float64)
			name := ev["name"].(string)
			counters[name] = append(counters[name], [2]float64{ts, v})
		}
	}

	for pid, want := range map[float64]string{0: "workers", 1: "links", 2: "counters"} {
		if procNames[pid] != want {
			t.Errorf("process_name[%v] = %q, want %q", pid, procNames[pid], want)
		}
	}
	if !sawSpanArgs {
		t.Error("no task event carried the injected span args")
	}

	// Every recorder sample must round-trip (ts is seconds×1e6).
	for _, trk := range rec.Tracks() {
		got := counters[trk.Name]
		if len(got) != len(trk.Samples) {
			t.Fatalf("track %s: %d counter events, want %d", trk.Name, len(got), len(trk.Samples))
		}
		for i, s := range trk.Samples {
			if got[i][0] != s.At*1e6 || got[i][1] != s.Value {
				t.Errorf("track %s sample %d = %v, want (%v, %v)", trk.Name, i, got[i], s.At*1e6, s.Value)
			}
		}
	}

	// Worker rows must be sorted by (arch, mem, unit): on IntelV100 the
	// CPU workers (low unit IDs, arch 0) must all sort before the GPU
	// streams, and sort indices must be unique.
	m := platform.IntelV100(platform.Config{})
	if len(threadSort) != len(m.Units) {
		t.Fatalf("thread_sort_index rows = %d, want %d", len(threadSort), len(m.Units))
	}
	seen := map[float64]bool{}
	for tid, idx := range threadSort {
		if seen[idx] {
			t.Errorf("duplicate sort_index %v", idx)
		}
		seen[idx] = true
		u := m.Units[int(tid)]
		for tid2, idx2 := range threadSort {
			u2 := m.Units[int(tid2)]
			if u.Arch < u2.Arch && idx >= idx2 {
				t.Errorf("unit %d (arch %d) sorted after unit %d (arch %d)", int(tid), u.Arch, int(tid2), u2.Arch)
			}
		}
	}
}

// TestWriteChromeTraceMonotone checks per-row ordering invariants on a
// real-ish trace: events are emitted in span order, and within one
// worker row spans must not overlap backwards in time.
func TestWriteChromeTraceMonotone(t *testing.T) {
	m := platform.IntelV100(platform.Config{})
	tr := New(m)
	tr.AddSpan(Span{Worker: 1, TaskID: 1, Kind: "a", Start: 0, End: 1})
	tr.AddSpan(Span{Worker: 1, TaskID: 2, Kind: "b", Start: 1, End: 2.5})
	tr.AddSpan(Span{Worker: 1, TaskID: 3, Kind: "c", Start: 2.5, End: 3})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	lastEnd := map[float64]float64{}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] != "X" || ev["cat"] != "task" {
			continue
		}
		tid := ev["tid"].(float64)
		ts := ev["ts"].(float64)
		dur := ev["dur"].(float64)
		if dur < 0 {
			t.Errorf("negative dur on tid %v", tid)
		}
		if ts < lastEnd[tid] {
			t.Errorf("tid %v: span at ts=%v starts before previous end %v", tid, ts, lastEnd[tid])
		}
		lastEnd[tid] = ts + dur
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	r := csv.NewReader(&buf)
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 { // header + 2 spans
		t.Fatalf("rows = %d, want 3", len(recs))
	}
	if recs[0][0] != "worker" || recs[1][2] != "potrf" {
		t.Errorf("unexpected CSV content: %v", recs)
	}
	if recs[2][1] != "gpu" {
		t.Errorf("worker 30 should be a GPU unit, got arch %q", recs[2][1])
	}
}
