package trace

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"multiprio/internal/platform"
)

func sampleTrace() *Trace {
	m := platform.IntelV100(platform.Config{})
	tr := New(m)
	tr.AddSpan(Span{Worker: 0, TaskID: 1, Kind: "potrf", Start: 0, End: 0.5})
	tr.AddSpan(Span{Worker: 30, TaskID: 2, Kind: "gemm", Start: 0.1, End: 0.9, Wait: 0.2})
	tr.AddTransfer(Transfer{Handle: 3, Src: 0, Dst: 1, Bytes: 1024, Start: 0, End: 0.1})
	tr.AddTransfer(Transfer{Handle: 4, Src: 1, Dst: 0, Bytes: 2048, Start: 0.2, End: 0.3, Writeback: true})
	return tr
}

func TestWriteChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	var tasks, meta, xfers int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			meta++
		case "X":
			if ev["cat"] == "task" {
				tasks++
				if ev["dur"].(float64) <= 0 {
					t.Error("task event with non-positive duration")
				}
			} else {
				xfers++
			}
		}
	}
	if tasks != 2 {
		t.Errorf("task events = %d, want 2", tasks)
	}
	if xfers != 2 {
		t.Errorf("transfer events = %d, want 2", xfers)
	}
	if meta < 32 {
		t.Errorf("metadata events = %d, want at least one per unit", meta)
	}
	if !strings.Contains(buf.String(), "writeback") {
		t.Error("writeback category missing")
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	r := csv.NewReader(&buf)
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 { // header + 2 spans
		t.Fatalf("rows = %d, want 3", len(recs))
	}
	if recs[0][0] != "worker" || recs[1][2] != "potrf" {
		t.Errorf("unexpected CSV content: %v", recs)
	}
	if recs[2][1] != "gpu" {
		t.Errorf("worker 30 should be a GPU unit, got arch %q", recs[2][1])
	}
}
