package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// chromeEvent is one entry of the Chrome trace-event format (the
// "trace_event" JSON consumed by chrome://tracing and Perfetto), the
// modern equivalent of the Paje traces StarVZ renders.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace renders the trace in Chrome trace-event JSON: one
// complete ("X") event per task span on its worker row, and one per
// transfer on a per-link row. Load the output in chrome://tracing or
// https://ui.perfetto.dev to get the paper's Fig. 4-style Gantt view.
func (tr *Trace) WriteChromeTrace(w io.Writer) error {
	events := make([]chromeEvent, 0, len(tr.Spans)+len(tr.Xfers)+8)
	for u, unit := range tr.Machine.Units {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 0, TID: u,
			Args: map[string]string{"name": unit.Name},
		})
	}
	for _, s := range tr.Spans {
		ev := chromeEvent{
			Name: s.Kind, Cat: "task", Ph: "X",
			TS: s.Start * 1e6, Dur: (s.End - s.Start) * 1e6,
			PID: 0, TID: int(s.Worker),
			Args: map[string]string{"task": strconv.FormatInt(s.TaskID, 10)},
		}
		if s.Wait > 0 {
			ev.Args["transfer_wait_us"] = strconv.FormatFloat(s.Wait*1e6, 'f', 1, 64)
		}
		events = append(events, ev)
	}
	linkRow := len(tr.Machine.Units)
	linkTIDs := map[[2]int]int{}
	for _, x := range tr.Xfers {
		key := [2]int{int(x.Src), int(x.Dst)}
		tid, ok := linkTIDs[key]
		if !ok {
			tid = linkRow
			linkRow++
			linkTIDs[key] = tid
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", PID: 1, TID: tid,
				Args: map[string]string{"name": fmt.Sprintf("link %s->%s",
					tr.Machine.Mems[x.Src].Name, tr.Machine.Mems[x.Dst].Name)},
			})
		}
		cat := "fetch"
		switch {
		case x.Writeback:
			cat = "writeback"
		case x.Prefetch:
			cat = "prefetch"
		}
		events = append(events, chromeEvent{
			Name: fmt.Sprintf("h%d (%d B)", x.Handle, x.Bytes),
			Cat:  cat, Ph: "X",
			TS: x.Start * 1e6, Dur: (x.End - x.Start) * 1e6,
			PID: 1, TID: tid,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}

// WriteCSV renders the task spans as a flat CSV (worker, arch, kind,
// task, start, end, wait) for analysis in R/pandas, the role StarVZ's
// parsed Paje data plays in the paper's workflow.
func (tr *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"worker", "arch", "kind", "task", "start", "end", "wait"}); err != nil {
		return err
	}
	for _, s := range tr.Spans {
		unit := tr.Machine.Units[s.Worker]
		rec := []string{
			unit.Name,
			tr.Machine.ArchName(unit.Arch),
			s.Kind,
			strconv.FormatInt(s.TaskID, 10),
			strconv.FormatFloat(s.Start, 'g', -1, 64),
			strconv.FormatFloat(s.End, 'g', -1, 64),
			strconv.FormatFloat(s.Wait, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
