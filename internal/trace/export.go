package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"multiprio/internal/obs"
)

// chromeEvent is one entry of the Chrome trace-event format (the
// "trace_event" JSON consumed by chrome://tracing and Perfetto), the
// modern equivalent of the Paje traces StarVZ renders.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Process IDs of the Chrome trace rows: workers (task spans), links
// (transfers), counters (Perfetto counter tracks).
const (
	chromePIDWorkers  = 0
	chromePIDLinks    = 1
	chromePIDCounters = 2
)

// ChromeCounter is one sample of a Perfetto counter track merged into
// the Chrome trace output ("C" phase events). Perfetto renders each
// distinct Track name as its own plot under the "counters" process.
type ChromeCounter struct {
	Track string
	TS    float64 // seconds
	Value float64
}

// ChromeOptions extends WriteChromeTrace with scheduler-internals
// context from the observability layer (internal/obs).
type ChromeOptions struct {
	// SpanArgs, when non-nil, returns extra args for the span of the
	// given task — gain score, memory node, evict-retry count — so
	// Perfetto task tooltips explain placement. Nil entries are fine.
	SpanArgs func(taskID int64) map[string]string
	// Counters are merged as counter-track samples ("C" events) under
	// a dedicated "counters" process row.
	Counters []ChromeCounter
}

// ChromeCountersFrom flattens obs.Metrics tracks into the counter
// samples WriteChromeTraceWith merges into the trace. Tracks arrive
// sorted by name and samples by time, so the output is deterministic.
func ChromeCountersFrom(tracks []*obs.Track) []ChromeCounter {
	var out []ChromeCounter
	for _, tr := range tracks {
		for _, s := range tr.Samples {
			out = append(out, ChromeCounter{Track: tr.Name, TS: s.At, Value: s.Value})
		}
	}
	return out
}

// WriteChromeTrace renders the trace in Chrome trace-event JSON: one
// complete ("X") event per task span on its worker row, and one per
// transfer on a per-link row. Load the output in chrome://tracing or
// https://ui.perfetto.dev to get the paper's Fig. 4-style Gantt view.
func (tr *Trace) WriteChromeTrace(w io.Writer) error {
	return tr.WriteChromeTraceWith(w, ChromeOptions{})
}

// WriteChromeTraceWith is WriteChromeTrace plus scheduler-context span
// args and Perfetto counter tracks.
func (tr *Trace) WriteChromeTraceWith(w io.Writer, o ChromeOptions) error {
	events := make([]chromeEvent, 0, len(tr.Spans)+len(tr.Xfers)+len(o.Counters)+8)
	for pid, name := range []string{
		chromePIDWorkers:  "workers",
		chromePIDLinks:    "links",
		chromePIDCounters: "counters",
	} {
		if pid == chromePIDLinks && len(tr.Xfers) == 0 {
			continue
		}
		if pid == chromePIDCounters && len(o.Counters) == 0 {
			continue
		}
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": name},
		}, chromeEvent{
			Name: "process_sort_index", Ph: "M", PID: pid,
			Args: map[string]any{"sort_index": pid},
		})
	}
	// Worker rows are named and sorted by (architecture, memory node,
	// unit), so Perfetto groups the CPU workers together and each GPU's
	// stream workers next to each other instead of raw unit order.
	order := make([]int, len(tr.Machine.Units))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ua, ub := tr.Machine.Units[order[a]], tr.Machine.Units[order[b]]
		if ua.Arch != ub.Arch {
			return ua.Arch < ub.Arch
		}
		if ua.Mem != ub.Mem {
			return ua.Mem < ub.Mem
		}
		return order[a] < order[b]
	})
	for rank, u := range order {
		unit := tr.Machine.Units[u]
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: chromePIDWorkers, TID: u,
			Args: map[string]any{"name": fmt.Sprintf("%s (%s, %s)",
				unit.Name, tr.Machine.ArchName(unit.Arch), tr.Machine.Mems[unit.Mem].Name)},
		}, chromeEvent{
			Name: "thread_sort_index", Ph: "M", PID: chromePIDWorkers, TID: u,
			Args: map[string]any{"sort_index": rank},
		})
	}
	for _, s := range tr.Spans {
		ev := chromeEvent{
			Name: s.Kind, Cat: "task", Ph: "X",
			TS: s.Start * 1e6, Dur: (s.End - s.Start) * 1e6,
			PID: chromePIDWorkers, TID: int(s.Worker),
			Args: map[string]any{"task": strconv.FormatInt(s.TaskID, 10)},
		}
		if s.Wait > 0 {
			ev.Args["transfer_wait_us"] = strconv.FormatFloat(s.Wait*1e6, 'f', 1, 64)
		}
		switch {
		case s.Failed:
			ev.Name = s.Kind + " (failed)"
			ev.Args["failed"] = "true"
		case s.Cancelled:
			ev.Name = s.Kind + " (cancelled)"
			ev.Args["cancelled"] = "true"
		}
		if o.SpanArgs != nil {
			for k, v := range o.SpanArgs(s.TaskID) {
				ev.Args[k] = v
			}
		}
		events = append(events, ev)
	}
	linkRow := len(tr.Machine.Units)
	linkTIDs := map[[2]int]int{}
	for _, x := range tr.Xfers {
		key := [2]int{int(x.Src), int(x.Dst)}
		tid, ok := linkTIDs[key]
		if !ok {
			tid = linkRow
			linkRow++
			linkTIDs[key] = tid
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", PID: chromePIDLinks, TID: tid,
				Args: map[string]any{"name": fmt.Sprintf("link %s->%s",
					tr.Machine.Mems[x.Src].Name, tr.Machine.Mems[x.Dst].Name)},
			})
		}
		cat := "fetch"
		switch {
		case x.Writeback:
			cat = "writeback"
		case x.Prefetch:
			cat = "prefetch"
		}
		events = append(events, chromeEvent{
			Name: fmt.Sprintf("h%d (%d B)", x.Handle, x.Bytes),
			Cat:  cat, Ph: "X",
			TS: x.Start * 1e6, Dur: (x.End - x.Start) * 1e6,
			PID: chromePIDLinks, TID: tid,
		})
	}
	for _, c := range o.Counters {
		events = append(events, chromeEvent{
			Name: c.Track, Cat: "counter", Ph: "C",
			TS: c.TS * 1e6, PID: chromePIDCounters,
			Args: map[string]any{"value": c.Value},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}

// WriteCSV renders the task spans as a flat CSV (worker, arch, kind,
// task, start, end, wait) for analysis in R/pandas, the role StarVZ's
// parsed Paje data plays in the paper's workflow.
func (tr *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"worker", "arch", "kind", "task", "start", "end", "wait"}); err != nil {
		return err
	}
	for _, s := range tr.Spans {
		unit := tr.Machine.Units[s.Worker]
		rec := []string{
			unit.Name,
			tr.Machine.ArchName(unit.Arch),
			s.Kind,
			strconv.FormatInt(s.TaskID, 10),
			strconv.FormatFloat(s.Start, 'g', -1, 64),
			strconv.FormatFloat(s.End, 'g', -1, 64),
			strconv.FormatFloat(s.Wait, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
