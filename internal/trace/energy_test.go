package trace

import (
	"math"
	"strings"
	"testing"

	"multiprio/internal/platform"
)

func TestEnergyAccounting(t *testing.T) {
	m := platform.IntelV100(platform.Config{})
	tr := New(m)
	// One CPU unit busy 1s of a 2s makespan; one GPU stream busy 2s.
	tr.AddSpan(Span{Worker: 0, Kind: "a", Start: 0, End: 1})
	tr.AddSpan(Span{Worker: 30, Kind: "g", Start: 0, End: 2})

	rep := tr.Energy()
	if rep.Makespan != 2 {
		t.Fatalf("makespan = %v", rep.Makespan)
	}
	cpuArch := m.Archs[platform.ArchCPU]
	gpuArch := m.Archs[platform.ArchGPU]
	// CPU arch: unit 0 busy 1s + idle 1s; 29 other units idle 2s.
	wantCPU := 1*cpuArch.BusyWatts + 1*cpuArch.IdleWatts + 29*2*cpuArch.IdleWatts
	if math.Abs(rep.ArchEnergy(platform.ArchCPU)-wantCPU) > 1e-9 {
		t.Errorf("cpu energy = %v, want %v", rep.ArchEnergy(platform.ArchCPU), wantCPU)
	}
	// GPU arch: unit 30 busy 2s, the other fully idle.
	wantGPU := 2*gpuArch.BusyWatts + 2*gpuArch.IdleWatts
	if math.Abs(rep.ArchEnergy(platform.ArchGPU)-wantGPU) > 1e-9 {
		t.Errorf("gpu energy = %v, want %v", rep.ArchEnergy(platform.ArchGPU), wantGPU)
	}
	if math.Abs(rep.Total-(wantCPU+wantGPU)) > 1e-9 {
		t.Errorf("total = %v, want %v", rep.Total, wantCPU+wantGPU)
	}
	if rep.EDP() != rep.Total*2 {
		t.Error("EDP mismatch")
	}
	if !strings.Contains(rep.String(), "J total") {
		t.Errorf("String() = %q", rep.String())
	}
}

func TestEnergyBillsTransferWaitAsIdle(t *testing.T) {
	m := platform.IntelV100(platform.Config{})
	tr := New(m)
	tr.AddSpan(Span{Worker: 30, Kind: "g", Start: 0, End: 2, Wait: 1.5})
	rep := tr.Energy()
	gpu := m.Archs[platform.ArchGPU]
	want := 0.5*gpu.BusyWatts + 1.5*gpu.IdleWatts + 2*gpu.IdleWatts // busy part + wait + other idle unit
	if math.Abs(rep.ArchEnergy(platform.ArchGPU)-want) > 1e-9 {
		t.Errorf("gpu energy = %v, want %v (wait billed at idle power)", rep.ArchEnergy(platform.ArchGPU), want)
	}
}

func TestEnergyArchOutOfRange(t *testing.T) {
	m := platform.CPUOnly(1)
	tr := New(m)
	rep := tr.Energy()
	if rep.ArchEnergy(platform.ArchID(7)) != 0 {
		t.Error("out-of-range arch should report 0")
	}
}

func TestEnergyZeroPowerModel(t *testing.T) {
	m := platform.CPUOnly(2) // preset without watts
	tr := New(m)
	tr.AddSpan(Span{Worker: 0, Kind: "a", Start: 0, End: 1})
	if e := tr.Energy().Total; e != 0 {
		t.Errorf("energy without a power model = %v, want 0", e)
	}
}
