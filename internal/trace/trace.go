// Package trace records execution traces of simulated or threaded runs
// and derives the metrics the paper reports: makespan, per-resource idle
// percentage (Fig. 4), transferred bytes, and the practical critical
// path. It also renders ASCII Gantt charts in the spirit of StarVZ.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"multiprio/internal/platform"
)

// Span is one busy interval of a resource.
type Span struct {
	Worker platform.UnitID
	TaskID int64
	Kind   string
	Start  float64
	End    float64
	// Wait is the portion of [Start, End] spent waiting for data
	// transfers before the kernel actually ran.
	Wait float64
	// StartSeq and EndSeq are the engine's linearization points of the
	// kernel start (Start+Wait) and completion. Together with
	// MemEvent.Seq they give the execution oracle an exact total order
	// over same-instant events. Zero for engines without a sequencer
	// (the threaded engine).
	StartSeq int64
	EndSeq   int64
	// Failed marks an execution attempt aborted by fault injection (the
	// worker was killed mid-kernel, or its completion was discarded).
	// The task has another, successful span elsewhere in the trace.
	Failed bool
	// Cancelled marks a speculation loser: another attempt of the task
	// completed first, so this one was cancelled (sim) or its completion
	// discarded (threaded engine). Cancelled attempts never publish
	// writes; the task's effective span is elsewhere in the trace.
	Cancelled bool
}

// Transfer is one data movement between memory nodes.
type Transfer struct {
	Handle   int64
	Src, Dst platform.MemID
	Bytes    int64
	Start    float64
	End      float64
	Prefetch bool
	// Writeback marks evictions flushing a dirty replica to RAM.
	Writeback bool
	// Failed marks a transfer that failed in flight (fault injection);
	// the payload was discarded on arrival and the engine re-issued it.
	Failed bool
}

// MemEventKind classifies memory-residency events.
type MemEventKind uint8

const (
	// MemAlloc: bytes were reserved for a replica on the node (a fetch
	// started or a write-only access allocated space).
	MemAlloc MemEventKind = iota + 1
	// MemValid: the replica became readable, carrying Version.
	MemValid
	// MemFree: the replica was dropped (eviction, write invalidation,
	// stale in-flight payload discarded) and its bytes released.
	MemFree
)

// String returns the short name of the kind.
func (k MemEventKind) String() string {
	switch k {
	case MemAlloc:
		return "alloc"
	case MemValid:
		return "valid"
	case MemFree:
		return "free"
	default:
		return fmt.Sprintf("MemEventKind(%d)", uint8(k))
	}
}

// MemEvent is one replica state change on a memory node, recorded by the
// simulator's memory manager when Options.CollectMemEvents is set. The
// execution oracle replays the stream to verify data coherence (every
// read observes the last writer's version) and capacity limits.
type MemEvent struct {
	Kind   MemEventKind
	Handle int64
	Mem    platform.MemID
	Bytes  int64
	// Version is the number of completed writes to the handle when this
	// replica's payload was produced (MemValid only).
	Version int64
	At      float64
	// Seq is the engine's linearization point of the state change.
	Seq int64
}

// Trace accumulates the events of one run.
type Trace struct {
	Machine   *platform.Machine
	Spans     []Span
	Xfers     []Transfer
	MemEvents []MemEvent
	Makespan  float64
}

// New returns an empty trace for machine m.
func New(m *platform.Machine) *Trace {
	return &Trace{Machine: m}
}

// Reserve presizes the event slices for a run whose rough volume is
// known up front (one span per task). Growing a million-span slice by
// doubling was the simulator's largest single allocation cost; a zero
// argument leaves that slice untouched.
func (tr *Trace) Reserve(spans, xfers, memEvents int) {
	if spans > cap(tr.Spans) {
		s := make([]Span, len(tr.Spans), spans)
		copy(s, tr.Spans)
		tr.Spans = s
	}
	if xfers > cap(tr.Xfers) {
		x := make([]Transfer, len(tr.Xfers), xfers)
		copy(x, tr.Xfers)
		tr.Xfers = x
	}
	if memEvents > cap(tr.MemEvents) {
		e := make([]MemEvent, len(tr.MemEvents), memEvents)
		copy(e, tr.MemEvents)
		tr.MemEvents = e
	}
}

// AddSpan records a task execution interval. Failed and cancelled
// attempts never push the makespan: the task's effective completion is
// a different span (a successful retry ends later by construction; a
// speculation loser lost to an attempt that already completed).
func (tr *Trace) AddSpan(s Span) {
	tr.Spans = append(tr.Spans, s)
	if s.End > tr.Makespan && !s.Failed && !s.Cancelled {
		tr.Makespan = s.End
	}
}

// AddTransfer records a data transfer.
func (tr *Trace) AddTransfer(x Transfer) { tr.Xfers = append(tr.Xfers, x) }

// AddMemEvent records a replica state change.
func (tr *Trace) AddMemEvent(e MemEvent) { tr.MemEvents = append(tr.MemEvents, e) }

// BusyTime returns the total busy (executing or transfer-waiting) time of
// worker w.
func (tr *Trace) BusyTime(w platform.UnitID) float64 {
	var sum float64
	for _, s := range tr.Spans {
		if s.Worker == w {
			sum += s.End - s.Start
		}
	}
	return sum
}

// IdlePercent returns the idle share of worker w over the makespan, in
// percent — the left-hand annotation of the paper's Fig. 4 traces.
func (tr *Trace) IdlePercent(w platform.UnitID) float64 {
	if tr.Makespan <= 0 {
		return 0
	}
	idle := 1 - tr.BusyTime(w)/tr.Makespan
	if idle < 0 {
		idle = 0
	}
	return 100 * idle
}

// ArchIdlePercent averages IdlePercent over the workers of arch a.
func (tr *Trace) ArchIdlePercent(a platform.ArchID) float64 {
	units := tr.Machine.UnitsOf(a)
	if len(units) == 0 {
		return 0
	}
	var sum float64
	for _, u := range units {
		sum += tr.IdlePercent(u)
	}
	return sum / float64(len(units))
}

// TransferredBytes sums the payload of all recorded transfers, split by
// class.
func (tr *Trace) TransferredBytes() (fetch, prefetch, writeback int64) {
	for _, x := range tr.Xfers {
		switch {
		case x.Writeback:
			writeback += x.Bytes
		case x.Prefetch:
			prefetch += x.Bytes
		default:
			fetch += x.Bytes
		}
	}
	return
}

// TaskCount returns the number of executed task spans, including failed
// attempts.
func (tr *Trace) TaskCount() int { return len(tr.Spans) }

// FailedCount returns the number of failed execution attempts recorded.
func (tr *Trace) FailedCount() int {
	n := 0
	for i := range tr.Spans {
		if tr.Spans[i].Failed {
			n++
		}
	}
	return n
}

// CancelledCount returns the number of speculation-loser attempts
// recorded.
func (tr *Trace) CancelledCount() int {
	n := 0
	for i := range tr.Spans {
		if tr.Spans[i].Cancelled {
			n++
		}
	}
	return n
}

// Summary renders a compact per-architecture report.
func (tr *Trace) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "makespan %.4fs, %d tasks\n", tr.Makespan, len(tr.Spans))
	for a := range tr.Machine.Archs {
		arch := platform.ArchID(a)
		fmt.Fprintf(&b, "  %-4s ×%-3d idle %5.1f%%\n",
			tr.Machine.ArchName(arch), tr.Machine.NumWorkersOf(arch), tr.ArchIdlePercent(arch))
	}
	f, p, wb := tr.TransferredBytes()
	if f+p+wb > 0 {
		fmt.Fprintf(&b, "  transfers: fetch %.1f MiB, prefetch %.1f MiB, writeback %.1f MiB\n",
			float64(f)/float64(platform.MiB), float64(p)/float64(platform.MiB), float64(wb)/float64(platform.MiB))
	}
	return b.String()
}

// Gantt renders an ASCII Gantt chart with the given column width. Each
// row is a worker; '.' is idle, a letter is the initial of the running
// kernel, '~' marks transfer wait. Rows are ordered by unit ID.
func (tr *Trace) Gantt(width int) string {
	if width < 10 {
		width = 10
	}
	if tr.Makespan <= 0 || len(tr.Spans) == 0 {
		return "(empty trace)\n"
	}
	rows := make(map[platform.UnitID][]rune)
	for u := range tr.Machine.Units {
		row := make([]rune, width)
		for i := range row {
			row[i] = '.'
		}
		rows[platform.UnitID(u)] = row
	}
	scale := float64(width) / tr.Makespan
	for _, s := range tr.Spans {
		row := rows[s.Worker]
		c := '?'
		if len(s.Kind) > 0 {
			c = rune(s.Kind[0])
		}
		i0 := int(s.Start * scale)
		i1 := int(s.End * scale)
		if i1 >= width {
			i1 = width - 1
		}
		waitEnd := int((s.Start + s.Wait) * scale)
		for i := i0; i <= i1; i++ {
			if i < waitEnd {
				row[i] = '~'
			} else {
				row[i] = c
			}
		}
	}
	var b strings.Builder
	units := make([]int, 0, len(rows))
	for u := range rows {
		units = append(units, int(u))
	}
	sort.Ints(units)
	for _, u := range units {
		unit := tr.Machine.Units[u]
		fmt.Fprintf(&b, "%-10s |%s| idle %5.1f%%\n", unit.Name, string(rows[platform.UnitID(u)]), tr.IdlePercent(platform.UnitID(u)))
	}
	fmt.Fprintf(&b, "%-10s  0%*s%.4fs\n", "", width-len(fmt.Sprintf("%.4fs", tr.Makespan))+1, "", tr.Makespan)
	return b.String()
}

