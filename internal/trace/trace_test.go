package trace

import (
	"math"
	"strings"
	"testing"

	"multiprio/internal/platform"
	"multiprio/internal/runtime"
)

func twoWorkerMachine() *platform.Machine {
	return platform.CPUOnly(2)
}

func TestIdlePercent(t *testing.T) {
	tr := New(twoWorkerMachine())
	tr.AddSpan(Span{Worker: 0, Kind: "a", Start: 0, End: 10})
	tr.AddSpan(Span{Worker: 1, Kind: "b", Start: 0, End: 5})
	if tr.Makespan != 10 {
		t.Fatalf("makespan = %v, want 10", tr.Makespan)
	}
	if got := tr.IdlePercent(0); got != 0 {
		t.Errorf("worker 0 idle = %v, want 0", got)
	}
	if got := tr.IdlePercent(1); math.Abs(got-50) > 1e-9 {
		t.Errorf("worker 1 idle = %v, want 50", got)
	}
	if got := tr.ArchIdlePercent(platform.ArchCPU); math.Abs(got-25) > 1e-9 {
		t.Errorf("arch idle = %v, want 25", got)
	}
}

func TestIdlePercentEmptyTrace(t *testing.T) {
	tr := New(twoWorkerMachine())
	if tr.IdlePercent(0) != 0 {
		t.Error("empty trace should report 0 idle")
	}
	if !strings.Contains(tr.Gantt(40), "empty") {
		t.Error("empty Gantt should say so")
	}
}

func TestTransferredBytesByClass(t *testing.T) {
	tr := New(twoWorkerMachine())
	tr.AddTransfer(Transfer{Bytes: 100})
	tr.AddTransfer(Transfer{Bytes: 10, Prefetch: true})
	tr.AddTransfer(Transfer{Bytes: 1, Writeback: true})
	f, p, w := tr.TransferredBytes()
	if f != 100 || p != 10 || w != 1 {
		t.Errorf("TransferredBytes = %d, %d, %d", f, p, w)
	}
}

func TestGanttRendersKernels(t *testing.T) {
	tr := New(twoWorkerMachine())
	tr.AddSpan(Span{Worker: 0, Kind: "potrf", Start: 0, End: 5})
	tr.AddSpan(Span{Worker: 0, Kind: "gemm", Start: 5, End: 10, Wait: 2})
	tr.AddSpan(Span{Worker: 1, Kind: "trsm", Start: 0, End: 10})
	g := tr.Gantt(40)
	for _, want := range []string{"p", "g", "t", "~", "cpu0", "cpu1", "idle"} {
		if !strings.Contains(g, want) {
			t.Errorf("Gantt missing %q:\n%s", want, g)
		}
	}
}

func TestSummary(t *testing.T) {
	tr := New(twoWorkerMachine())
	tr.AddSpan(Span{Worker: 0, Kind: "a", Start: 0, End: 1})
	tr.AddTransfer(Transfer{Bytes: 1 << 20})
	s := tr.Summary()
	if !strings.Contains(s, "makespan") || !strings.Contains(s, "transfers") {
		t.Errorf("Summary = %q", s)
	}
}

func TestPracticalCriticalPath(t *testing.T) {
	g := runtime.NewGraph()
	h := g.NewData("x", 8)
	a := g.Submit(&runtime.Task{Kind: "a", Cost: []float64{1}, Accesses: []runtime.Access{{Handle: h, Mode: runtime.W}}})
	b := g.Submit(&runtime.Task{Kind: "b", Cost: []float64{1}, Accesses: []runtime.Access{{Handle: h, Mode: runtime.RW}}})
	c := g.Submit(&runtime.Task{Kind: "c", Cost: []float64{1}}) // independent, fast
	a.StartAt, a.EndAt = 0, 1
	b.StartAt, b.EndAt = 1, 3
	c.StartAt, c.EndAt = 0, 0.5

	path := PracticalCriticalPath(g)
	if len(path) != 2 || path[0] != a || path[1] != b {
		t.Errorf("critical path = %v, want [a b]", names(path))
	}
}

func TestPracticalCriticalPathEmpty(t *testing.T) {
	g := runtime.NewGraph()
	if p := PracticalCriticalPath(g); p != nil {
		t.Errorf("critical path of empty graph = %v", p)
	}
	// Unexecuted graph (EndAt zero everywhere) also yields nil.
	g.Submit(&runtime.Task{Kind: "a", Cost: []float64{1}})
	if p := PracticalCriticalPath(g); p != nil {
		t.Errorf("critical path of unexecuted graph = %v", p)
	}
}

func names(ts []*runtime.Task) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Kind
	}
	return out
}
