package trace

import (
	"math"
	"strings"
	"testing"

	"multiprio/internal/platform"
)

func twoWorkerMachine() *platform.Machine {
	return platform.CPUOnly(2)
}

func TestIdlePercent(t *testing.T) {
	tr := New(twoWorkerMachine())
	tr.AddSpan(Span{Worker: 0, Kind: "a", Start: 0, End: 10})
	tr.AddSpan(Span{Worker: 1, Kind: "b", Start: 0, End: 5})
	if tr.Makespan != 10 {
		t.Fatalf("makespan = %v, want 10", tr.Makespan)
	}
	if got := tr.IdlePercent(0); got != 0 {
		t.Errorf("worker 0 idle = %v, want 0", got)
	}
	if got := tr.IdlePercent(1); math.Abs(got-50) > 1e-9 {
		t.Errorf("worker 1 idle = %v, want 50", got)
	}
	if got := tr.ArchIdlePercent(platform.ArchCPU); math.Abs(got-25) > 1e-9 {
		t.Errorf("arch idle = %v, want 25", got)
	}
}

func TestIdlePercentEmptyTrace(t *testing.T) {
	tr := New(twoWorkerMachine())
	if tr.IdlePercent(0) != 0 {
		t.Error("empty trace should report 0 idle")
	}
	if !strings.Contains(tr.Gantt(40), "empty") {
		t.Error("empty Gantt should say so")
	}
}

func TestTransferredBytesByClass(t *testing.T) {
	tr := New(twoWorkerMachine())
	tr.AddTransfer(Transfer{Bytes: 100})
	tr.AddTransfer(Transfer{Bytes: 10, Prefetch: true})
	tr.AddTransfer(Transfer{Bytes: 1, Writeback: true})
	f, p, w := tr.TransferredBytes()
	if f != 100 || p != 10 || w != 1 {
		t.Errorf("TransferredBytes = %d, %d, %d", f, p, w)
	}
}

func TestGanttRendersKernels(t *testing.T) {
	tr := New(twoWorkerMachine())
	tr.AddSpan(Span{Worker: 0, Kind: "potrf", Start: 0, End: 5})
	tr.AddSpan(Span{Worker: 0, Kind: "gemm", Start: 5, End: 10, Wait: 2})
	tr.AddSpan(Span{Worker: 1, Kind: "trsm", Start: 0, End: 10})
	g := tr.Gantt(40)
	for _, want := range []string{"p", "g", "t", "~", "cpu0", "cpu1", "idle"} {
		if !strings.Contains(g, want) {
			t.Errorf("Gantt missing %q:\n%s", want, g)
		}
	}
}

func TestSummary(t *testing.T) {
	tr := New(twoWorkerMachine())
	tr.AddSpan(Span{Worker: 0, Kind: "a", Start: 0, End: 1})
	tr.AddTransfer(Transfer{Bytes: 1 << 20})
	s := tr.Summary()
	if !strings.Contains(s, "makespan") || !strings.Contains(s, "transfers") {
		t.Errorf("Summary = %q", s)
	}
}

func TestFailedSpansExcludedFromMakespan(t *testing.T) {
	tr := New(twoWorkerMachine())
	tr.AddSpan(Span{Worker: 0, TaskID: 1, Kind: "a", Start: 0, End: 9, Failed: true})
	tr.AddSpan(Span{Worker: 1, TaskID: 1, Kind: "a", Start: 9, End: 10})
	if tr.Makespan != 10 {
		t.Errorf("makespan = %v, want 10", tr.Makespan)
	}
	if tr.FailedCount() != 1 {
		t.Errorf("FailedCount = %d, want 1", tr.FailedCount())
	}
}

func TestCanonicalFaultPrefixes(t *testing.T) {
	tr := New(twoWorkerMachine())
	tr.AddSpan(Span{Worker: 0, TaskID: 1, Kind: "a", Start: 0, End: 1, Failed: true})
	tr.AddSpan(Span{Worker: 1, TaskID: 1, Kind: "a", Start: 1, End: 2})
	tr.AddTransfer(Transfer{Handle: 3, Src: 0, Dst: 1, Bytes: 8, Failed: true})
	s := string(tr.Canonical())
	if !strings.Contains(s, "fail w0 t1") || !strings.Contains(s, "span w1 t1") {
		t.Errorf("failed span not tagged:\n%s", s)
	}
	if !strings.Contains(s, "xfail h3") {
		t.Errorf("failed transfer not tagged:\n%s", s)
	}
}
