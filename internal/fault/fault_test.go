package fault

import (
	"math"
	"reflect"
	"testing"

	"multiprio/internal/perfmodel"
	"multiprio/internal/platform"
)

func testMachine(t *testing.T) *platform.Machine {
	m, err := platform.NewHeteroNode("fault-test", 5, 10, 2, 100, 8*platform.MiB, 5e9, platform.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGenerateDeterministic(t *testing.T) {
	m := testMachine(t)
	spec := Spec{Seed: 42, Horizon: 10, Kills: 3, Slowdowns: 2, TransferFaults: 2, ModelNoise: 0.2}
	a := Generate(m, spec)
	b := Generate(m, spec)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same spec produced different plans:\n%+v\n%+v", a, b)
	}
	c := Generate(m, Spec{Seed: 43, Horizon: 10, Kills: 3, Slowdowns: 2, TransferFaults: 2})
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestGenerateKeepsOneWorkerPerArch(t *testing.T) {
	m := testMachine(t)
	// Ask for far more kills than the machine can sustain.
	p := Generate(m, Spec{Seed: 7, Horizon: 5, Kills: len(m.Units) + 10})
	live := make([]int, len(m.Archs))
	for _, u := range m.Units {
		live[u.Arch]++
	}
	seen := make(map[platform.UnitID]bool)
	for _, e := range p.Kills() {
		if seen[e.Worker] {
			t.Fatalf("worker %d killed twice", e.Worker)
		}
		seen[e.Worker] = true
		live[m.Units[e.Worker].Arch]--
	}
	for a, n := range live {
		if n < 1 {
			t.Errorf("arch %s left with %d live workers", m.ArchName(platform.ArchID(a)), n)
		}
	}
}

func TestGenerateEventsInHorizonAndSorted(t *testing.T) {
	m := testMachine(t)
	p := Generate(m, Spec{Seed: 9, Horizon: 100, Kills: 2, Slowdowns: 3, TransferFaults: 3})
	last := math.Inf(-1)
	for _, e := range p.Events {
		if e.At < last {
			t.Fatalf("events not sorted: %g after %g", e.At, last)
		}
		last = e.At
		if e.At < 0 || e.At > 100*0.85+1e-9 {
			t.Errorf("event at %g outside scatter range", e.At)
		}
		if e.Kind == FailTransfer && e.Src == e.Dst {
			t.Errorf("transfer-failure window on self link %d->%d", e.Src, e.Dst)
		}
	}
}

func TestPlanWindows(t *testing.T) {
	p := &Plan{Events: []Event{
		{Kind: SlowWorker, Worker: 1, At: 2, Until: 4, Factor: 3},
		{Kind: SlowWorker, Worker: 1, At: 3, Until: 5, Factor: 2},
		{Kind: FailTransfer, Src: 0, Dst: 1, At: 1, Until: 2},
	}}
	if f := p.SlowFactorAt(1, 3.5); f != 6 {
		t.Errorf("overlapping windows factor = %v, want 6", f)
	}
	if f := p.SlowFactorAt(1, 4.5); f != 2 {
		t.Errorf("single window factor = %v, want 2", f)
	}
	if f := p.SlowFactorAt(0, 3); f != 1 {
		t.Errorf("other worker factor = %v, want 1", f)
	}
	if !p.TransferFails(0, 1, 1.5) || p.TransferFails(0, 1, 2) || p.TransferFails(1, 0, 1.5) {
		t.Error("transfer window membership wrong")
	}
	if (&Plan{}).RetryCap() != DefaultMaxRetries || (&Plan{MaxRetries: 3}).RetryCap() != 3 {
		t.Error("retry cap defaulting wrong")
	}
	var nilPlan *Plan
	if !nilPlan.Empty() || nilPlan.SlowFactorAt(0, 0) != 1 || nilPlan.TransferFails(0, 1, 0) {
		t.Error("nil plan must behave as no faults")
	}
}

func TestRetryDelayExponentialCappedJittered(t *testing.T) {
	// With jitter disabled the delays are exactly base*2^(n-1), capped.
	p := &Plan{Backoff: 1e-3, Jitter: -1}
	for n, want := range map[int]float64{1: 1e-3, 2: 2e-3, 3: 4e-3, 4: 8e-3} {
		if got := p.RetryDelay(10, n); math.Abs(got-want) > 1e-15 {
			t.Errorf("RetryDelay(n=%d) = %v, want %v", n, got, want)
		}
	}
	// The default cap is DefaultBackoffCapFactor*base; far-out attempts
	// all wait the same.
	capped := p.RetryDelay(10, 50)
	if want := DefaultBackoffCapFactor * 1e-3; math.Abs(capped-want) > 1e-15 {
		t.Errorf("capped delay = %v, want %v", capped, want)
	}
	if p.RetryDelay(10, 51) != capped {
		t.Error("delays past the cap must be constant")
	}
	// An explicit cap wins.
	pc := &Plan{Backoff: 1e-3, BackoffCap: 3e-3, Jitter: -1}
	if got := pc.RetryDelay(10, 4); got != 3e-3 {
		t.Errorf("explicit cap: delay = %v, want 3e-3", got)
	}

	// Default jitter: delay in [d, d*(1+DefaultJitter)), deterministic,
	// and decorrelated across tasks and attempts.
	pj := &Plan{Backoff: 1e-3, JitterSeed: 99}
	d1 := pj.RetryDelay(10, 1)
	if d1 < 1e-3 || d1 >= 1e-3*(1+DefaultJitter) {
		t.Errorf("jittered delay %v outside [%v, %v)", d1, 1e-3, 1e-3*(1+DefaultJitter))
	}
	if pj.RetryDelay(10, 1) != d1 {
		t.Error("jitter must be deterministic for the same (plan, task, attempt)")
	}
	if pj.RetryDelay(11, 1) == d1 && pj.RetryDelay(12, 1) == d1 {
		t.Error("jitter should vary across tasks")
	}
	// n < 1 is clamped to the first attempt.
	if pj.RetryDelay(10, 0) != pj.RetryDelay(10, 1) {
		t.Error("n<1 must behave like n=1")
	}
	// A nil plan still yields sane, deterministic delays.
	var nilPlan *Plan
	if d := nilPlan.RetryDelay(1, 1); d < DefaultBackoff || d >= DefaultBackoff*(1+DefaultJitter) {
		t.Errorf("nil-plan delay %v out of range", d)
	}
}

func TestDropPastHorizonBoundary(t *testing.T) {
	events := []Event{
		{Kind: KillWorker, At: 0},
		{Kind: SlowWorker, At: 9.999999},
		{Kind: KillWorker, At: 10},      // exactly the horizon: dropped
		{Kind: FailTransfer, At: 10.25}, // past the horizon: dropped
	}
	got := dropPastHorizon(events, 10)
	if len(got) != 2 || got[0].At != 0 || got[1].At != 9.999999 {
		t.Fatalf("dropPastHorizon kept %+v, want the two pre-horizon events", got)
	}
	if n := len(dropPastHorizon(nil, 10)); n != 0 {
		t.Fatalf("empty schedule must stay empty, got %d events", n)
	}
}

func TestGenerateRespectsHorizonEdge(t *testing.T) {
	m := testMachine(t)
	p := Generate(m, Spec{Seed: 3, Horizon: 10, Kills: 3, Slowdowns: 5, TransferFaults: 4})
	for _, e := range p.Events {
		if e.At >= 10 {
			t.Errorf("event at %g not dropped at horizon 10", e.At)
		}
	}
}

func TestPlanSpeculationKnobs(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.SpecPolicy().Enabled {
		t.Fatal("nil plan must have speculation disabled")
	}
	p := &Plan{}
	if !p.Empty() {
		t.Fatal("zero plan must be empty")
	}
	p.Speculation.Enabled = true
	if p.Empty() {
		t.Fatal("a plan with speculation enabled is not empty: engines must track attempts")
	}
	m := testMachine(t)
	sp := Spec{Seed: 5, Horizon: 10, Slowdowns: 2}
	sp.Speculation.Enabled = true
	sp.Speculation.SlackFactor = 1.5
	gp := Generate(m, sp)
	if !gp.Speculation.Enabled || gp.Speculation.SlackFactor != 1.5 {
		t.Fatalf("Generate dropped speculation knobs: %+v", gp.Speculation)
	}
}

func TestNoisyEstimatorDeterministicAndBounded(t *testing.T) {
	n := NoisyEstimator{Base: perfmodel.Oracle{}, Rel: 0.2, Seed: 99}
	prior := func() (float64, bool) { return 1.0, true }
	a, ok := n.Estimate("gemm", 0, 960, prior)
	if !ok {
		t.Fatal("estimate failed")
	}
	b, _ := n.Estimate("gemm", 0, 960, prior)
	if a != b {
		t.Fatalf("same triple gave different estimates: %v vs %v", a, b)
	}
	c, _ := n.Estimate("gemm", 1, 960, prior)
	if a == c {
		t.Error("different arch should (almost surely) perturb differently")
	}
	if a <= 0 || math.Abs(a-1) > 0.2*1.7320508075688772+1e-12 {
		t.Errorf("factor out of bounds: %v", a)
	}
	if v, ok := n.Estimate("gemm", 0, 960, nil); ok || v != 0 {
		t.Error("missing base estimate must stay missing")
	}
}
