// Package fault provides deterministic, seed-driven fault injection for
// the execution engines: worker kills, worker slowdown windows, transfer
// failures, and performance-model misprediction noise. A Plan is a fixed
// schedule of events derived from a splitmix64 seed — never from
// wall-clock time — so the same (workload, scheduler, seed, plan)
// produces a byte-identical canonical trace on the simulator, run after
// run.
//
// Recovery lives in the engines (internal/sim, internal/runtime): the
// STF task graph is the recovery log, so a killed or failed task is
// rolled back and re-pushed to the scheduler, and lost device replicas
// are re-fetched from the coherence state. The plan only says what
// breaks, and when.
package fault

import (
	"fmt"
	"sort"

	"multiprio/internal/platform"
	"multiprio/internal/spec"
)

// Kind classifies one injected fault event.
type Kind uint8

const (
	// KillWorker permanently removes a processing unit at time At. A
	// kernel running across the kill is aborted (sim) or its completion
	// discarded (threaded engine); the task retries elsewhere.
	KillWorker Kind = iota + 1
	// SlowWorker multiplies the execution time of kernels starting on
	// the unit within [At, Until] by Factor.
	SlowWorker
	// FailTransfer makes transfers on the Src->Dst link that start
	// within [At, Until] fail on arrival; the engine re-issues them.
	FailTransfer
)

// String returns the short name of the kind.
func (k Kind) String() string {
	switch k {
	case KillWorker:
		return "kill"
	case SlowWorker:
		return "slow"
	case FailTransfer:
		return "xfail"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one scheduled fault.
type Event struct {
	Kind Kind
	// At is when the fault takes effect, in engine time (virtual seconds
	// for the simulator, wall-clock seconds for the threaded engine).
	At float64
	// Worker is the target unit (KillWorker, SlowWorker).
	Worker platform.UnitID
	// Factor is the execution-time multiplier of a SlowWorker window
	// (> 1 means slower).
	Factor float64
	// Until closes the [At, Until] window of SlowWorker and
	// FailTransfer events.
	Until float64
	// Src and Dst name the link of a FailTransfer window.
	Src, Dst platform.MemID
}

// Defaults for Plan knobs left at zero.
const (
	DefaultMaxRetries = 8
	DefaultBackoff    = 1e-3
	// DefaultBackoffCapFactor caps the exponential retry delay at this
	// multiple of the base backoff (attempt 7 and later all wait the
	// same), so a task near the retry limit is not parked forever.
	DefaultBackoffCapFactor = 64
	// DefaultJitter is the relative jitter spread added on top of the
	// exponential delay: attempt delays are multiplied by a
	// deterministic, seed-derived factor in [1, 1+DefaultJitter).
	DefaultJitter = 0.1
)

// Plan is a complete fault schedule plus the recovery knobs the engines
// honor. The zero value injects nothing.
type Plan struct {
	// Events is the fault schedule. Engines apply them in At order;
	// Normalize sorts.
	Events []Event
	// MaxRetries caps how often one task may be rolled back before the
	// run fails. 0 means DefaultMaxRetries.
	MaxRetries int
	// Backoff is the base delay before a rolled-back task is re-pushed;
	// attempt k waits Backoff*2^(k-1) (capped, jittered — see
	// RetryDelay). 0 means DefaultBackoff.
	Backoff float64
	// BackoffCap bounds the exponential retry delay. 0 means
	// DefaultBackoffCapFactor times the base backoff.
	BackoffCap float64
	// Jitter is the relative jitter spread of retry delays: each delay
	// is multiplied by a deterministic factor in [1, 1+Jitter). 0 means
	// DefaultJitter; negative disables jitter entirely.
	Jitter float64
	// JitterSeed seeds the retry-jitter hash (Generate derives it from
	// the spec seed; 0 is a valid, still deterministic, seed).
	JitterSeed uint64
	// ModelNoise, when > 0, wraps the scheduler's performance model so
	// every estimate is deterministically mispredicted with this
	// relative spread (see NoisyEstimator).
	ModelNoise float64
	// NoiseSeed seeds the misprediction hash.
	NoiseSeed uint64
	// Speculation configures straggler mitigation by speculative task
	// replication (see internal/spec). Carried on the plan so a study's
	// slowdown schedule and its mitigation policy travel together and
	// stay reproducible from one seed.
	Speculation spec.Policy
}

// Empty reports whether the plan injects nothing at all and enables no
// mitigation machinery.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Events) == 0 && p.ModelNoise == 0 && !p.Speculation.Enabled)
}

// SpecPolicy returns the plan's speculation policy (zero for nil plans).
func (p *Plan) SpecPolicy() spec.Policy {
	if p == nil {
		return spec.Policy{}
	}
	return p.Speculation
}

// Normalize sorts the events by (At, Kind, Worker, Src, Dst) so that
// plans built in any order apply identically.
func (p *Plan) Normalize() {
	sort.SliceStable(p.Events, func(i, j int) bool {
		a, b := p.Events[i], p.Events[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Worker != b.Worker {
			return a.Worker < b.Worker
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	})
}

// RetryCap returns the effective per-task rollback limit.
func (p *Plan) RetryCap() int {
	if p == nil || p.MaxRetries <= 0 {
		return DefaultMaxRetries
	}
	return p.MaxRetries
}

// RetryBackoff returns the effective base backoff delay.
func (p *Plan) RetryBackoff() float64 {
	if p == nil || p.Backoff <= 0 {
		return DefaultBackoff
	}
	return p.Backoff
}

// retryCapDelay returns the effective ceiling of the exponential retry
// delay.
func (p *Plan) retryCapDelay() float64 {
	if p != nil && p.BackoffCap > 0 {
		return p.BackoffCap
	}
	return DefaultBackoffCapFactor * p.RetryBackoff()
}

// retryJitter returns the effective relative jitter spread.
func (p *Plan) retryJitter() float64 {
	if p == nil || p.Jitter == 0 {
		return DefaultJitter
	}
	if p.Jitter < 0 {
		return 0
	}
	return p.Jitter
}

// RetryDelay returns the delay before re-pushing task after its n-th
// rollback (n >= 1): capped exponential backoff,
// min(Backoff*2^(n-1), cap), scaled by a deterministic jitter factor in
// [1, 1+Jitter) hashed from (JitterSeed, task, n). Jitter decorrelates
// the retries of tasks rolled back by the same kill, so the recovered
// work does not slam the scheduler in one burst — while the same plan
// still yields the same delays run after run.
func (p *Plan) RetryDelay(task int64, n int) float64 {
	if n < 1 {
		n = 1
	}
	d := p.RetryBackoff()
	cap := p.retryCapDelay()
	// Walk the doubling instead of shifting so huge n cannot overflow;
	// the cap is hit within a few dozen steps.
	for i := 1; i < n && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	if j := p.retryJitter(); j > 0 {
		var seed uint64
		if p != nil {
			seed = p.JitterSeed
		}
		r := rng{s: seed ^ uint64(task)*0x9e3779b97f4a7c15 ^ uint64(n)<<32}
		d *= 1 + j*r.f64()
	}
	return d
}

// Kills returns the kill events of the plan, in schedule order.
func (p *Plan) Kills() []Event {
	if p == nil {
		return nil
	}
	var out []Event
	for _, e := range p.Events {
		if e.Kind == KillWorker {
			out = append(out, e)
		}
	}
	return out
}

// SlowFactorAt returns the combined slowdown factor of worker w at time
// t: the product of the factors of every SlowWorker window covering t.
func (p *Plan) SlowFactorAt(w platform.UnitID, t float64) float64 {
	if p == nil {
		return 1
	}
	f := 1.0
	for _, e := range p.Events {
		if e.Kind == SlowWorker && e.Worker == w && e.At <= t && t < e.Until && e.Factor > 0 {
			f *= e.Factor
		}
	}
	return f
}

// TransferFails reports whether a transfer on src->dst starting at t
// falls inside a failure window.
func (p *Plan) TransferFails(src, dst platform.MemID, t float64) bool {
	if p == nil {
		return false
	}
	for _, e := range p.Events {
		if e.Kind == FailTransfer && e.Src == src && e.Dst == dst && e.At <= t && t < e.Until {
			return true
		}
	}
	return false
}

// Spec describes the random fault mix Generate draws from a seed.
type Spec struct {
	// Seed drives every choice below through splitmix64.
	Seed uint64
	// Horizon is the time span faults are scattered over, typically the
	// fault-free makespan of the same workload. Events land in
	// [0.05, 0.85] * Horizon so a late kill still has work to disrupt.
	Horizon float64
	// Kills is the number of workers to kill. Generate never kills the
	// last live worker of any architecture, so every task keeps at
	// least one eligible worker; the count is truncated when the
	// machine cannot lose that many units.
	Kills int
	// Slowdowns is the number of slowdown windows.
	Slowdowns int
	// SlowFactor is the execution-time multiplier of each window
	// (default 4).
	SlowFactor float64
	// SlowSpan is each window's length (default Horizon/4).
	SlowSpan float64
	// TransferFaults is the number of link-failure windows, each on a
	// random distinct-node link.
	TransferFaults int
	// FaultWindow is each link-failure window's length (default
	// Horizon/10).
	FaultWindow float64
	// ModelNoise is copied into the plan (relative misprediction
	// spread of the scheduler's performance model).
	ModelNoise float64
	// Speculation is copied into the plan (straggler-mitigation policy;
	// see internal/spec).
	Speculation spec.Policy
}

// rng is splitmix64 (Steele et al.), the repository's standard seeding
// primitive: tiny, fast, and with well-distributed increments.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// f64 returns a uniform float in [0, 1).
func (r *rng) f64() float64 { return float64(r.next()>>11) / (1 << 53) }

// intn returns a uniform int in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Generate draws a Plan for machine m from spec. The same (machine,
// spec) always yields the same plan.
func Generate(m *platform.Machine, spec Spec) *Plan {
	r := rng{s: spec.Seed}
	horizon := spec.Horizon
	if horizon <= 0 {
		horizon = 1
	}
	when := func() float64 { return horizon * (0.05 + 0.8*r.f64()) }
	p := &Plan{
		ModelNoise:  spec.ModelNoise,
		NoiseSeed:   spec.Seed ^ 0xa076_1d64_78bd_642f,
		JitterSeed:  spec.Seed ^ 0xe703_7ed1_a0b4_28db,
		Speculation: spec.Speculation,
	}

	// Kills: keep at least one live worker per architecture so every
	// task retains an eligible worker and the run can always finish.
	liveByArch := make([]int, len(m.Archs))
	for _, u := range m.Units {
		liveByArch[u.Arch]++
	}
	killed := make([]bool, len(m.Units))
	for k := 0; k < spec.Kills; k++ {
		victim := -1
		for try := 0; try < 4*len(m.Units); try++ {
			c := r.intn(len(m.Units))
			if !killed[c] && liveByArch[m.Units[c].Arch] > 1 {
				victim = c
				break
			}
		}
		if victim < 0 {
			break // machine cannot lose another unit
		}
		killed[victim] = true
		liveByArch[m.Units[victim].Arch]--
		p.Events = append(p.Events, Event{
			Kind: KillWorker, At: when(), Worker: platform.UnitID(victim),
		})
	}

	slowFactor := spec.SlowFactor
	if slowFactor <= 1 {
		slowFactor = 4
	}
	slowSpan := spec.SlowSpan
	if slowSpan <= 0 {
		slowSpan = horizon / 4
	}
	for k := 0; k < spec.Slowdowns; k++ {
		at := when()
		p.Events = append(p.Events, Event{
			Kind: SlowWorker, At: at, Until: at + slowSpan,
			Worker: platform.UnitID(r.intn(len(m.Units))), Factor: slowFactor,
		})
	}

	window := spec.FaultWindow
	if window <= 0 {
		window = horizon / 10
	}
	if len(m.Mems) > 1 {
		for k := 0; k < spec.TransferFaults; k++ {
			src := platform.MemID(r.intn(len(m.Mems)))
			dst := platform.MemID(r.intn(len(m.Mems) - 1))
			if dst >= src {
				dst++
			}
			at := when()
			p.Events = append(p.Events, Event{
				Kind: FailTransfer, At: at, Until: at + window, Src: src, Dst: dst,
			})
		}
	}
	p.Events = dropPastHorizon(p.Events, horizon)
	p.Normalize()
	return p
}

// dropPastHorizon removes events scheduled at or after the horizon: an
// event at exactly t == horizon has, by definition, no work left to
// disrupt, and engines indexing windows by [At, Until) would otherwise
// apply it to a kernel starting exactly at the horizon.
func dropPastHorizon(events []Event, horizon float64) []Event {
	out := events[:0]
	for _, e := range events {
		if e.At < horizon {
			out = append(out, e)
		}
	}
	return out
}
