package fault

import (
	"multiprio/internal/perfmodel"
	"multiprio/internal/platform"
)

// NoisyEstimator wraps a performance model so every estimate is
// deterministically mispredicted: the factor applied to one
// (kind, arch, footprint) triple is a pure hash of the triple and the
// seed, independent of query order. That keeps runs reproducible — the
// same task is mispredicted the same way every time it is scored — while
// still exercising the schedulers' robustness to model error, the
// perturbation HeSP-style simulation studies apply.
type NoisyEstimator struct {
	Base perfmodel.Estimator
	// Rel is the relative spread: factors are uniform in
	// [1-Rel*sqrt3, 1+Rel*sqrt3], i.e. standard deviation Rel,
	// clamped to stay positive.
	Rel  float64
	Seed uint64
}

// Estimate implements perfmodel.Estimator.
func (n NoisyEstimator) Estimate(kind string, arch platform.ArchID, footprint uint64, prior func() (float64, bool)) (float64, bool) {
	v, ok := n.Base.Estimate(kind, arch, footprint, prior)
	if !ok || n.Rel <= 0 {
		return v, ok
	}
	h := n.Seed
	for i := 0; i < len(kind); i++ {
		h = (h ^ uint64(kind[i])) * 0x100000001b3
	}
	h = (h ^ uint64(arch)) * 0x100000001b3
	h = (h ^ footprint) * 0x100000001b3
	u := rng{s: h}
	const sqrt3 = 1.7320508075688772
	f := 1 + n.Rel*sqrt3*(2*u.f64()-1)
	if f < 0.05 {
		f = 0.05
	}
	return v * f, true
}
