// Package arena provides a chunked slab allocator for the engine hot
// paths. It generalizes the per-task scratch slab the MultiPrio
// scheduler uses (internal/core allocState): objects are handed out of
// large backing chunks so building a million-task graph or draining a
// million-event simulation pays one allocation per chunk instead of one
// per object.
//
// An Arena never frees individual objects — everything it handed out
// stays reachable until the arena itself is garbage: the intended
// lifetime is "one graph" or "one run", matching how the runtime uses
// tasks and handles. The zero value is ready to use.
package arena

// defaultChunk is the number of objects per backing chunk when the
// caller gave no sizing hint. 256 matches the MultiPrio slab.
const defaultChunk = 256

// Arena hands out values of type T from chunked backing arrays. Not
// safe for concurrent use; graph submission and the simulator event
// loop are single-threaded by construction.
type Arena[T any] struct {
	chunk []T
	// next is the chunk size of the next allocation; it doubles up to
	// maxChunk so pathological Get-only workloads stay O(log n) in
	// allocation count.
	next int
}

const maxChunk = 64 * 1024

// Reserve sizes the next backing chunk for at least n more objects, so
// a caller that knows its object count up front (NewGraphWithCapacity)
// gets exactly one chunk.
func (a *Arena[T]) Reserve(n int) {
	if n <= len(a.chunk) {
		return
	}
	if a.next < n-len(a.chunk) {
		a.next = n - len(a.chunk)
	}
}

// Get returns a pointer to a fresh zero value of T.
func (a *Arena[T]) Get() *T {
	if len(a.chunk) == 0 {
		a.grow(1)
	}
	p := &a.chunk[0]
	a.chunk = a.chunk[1:]
	return p
}

// GetN returns a contiguous block of n fresh zero values. Blocks larger
// than the remaining chunk get a dedicated exact-size chunk, so batch
// submission of n tasks costs at most one allocation.
func (a *Arena[T]) GetN(n int) []T {
	if n <= 0 {
		return nil
	}
	if len(a.chunk) < n {
		a.grow(n)
	}
	s := a.chunk[:n:n]
	a.chunk = a.chunk[n:]
	return s
}

// grow installs a fresh chunk of at least n objects, abandoning the
// remainder of the current chunk (callers hold pointers into it; it
// stays alive through them).
func (a *Arena[T]) grow(n int) {
	size := a.next
	if size < defaultChunk {
		size = defaultChunk
	}
	if size < n {
		size = n
	}
	a.chunk = make([]T, size)
	if size < maxChunk {
		a.next = size * 2
	} else {
		a.next = maxChunk
	}
}
