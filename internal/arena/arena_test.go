package arena

import "testing"

func TestGetDistinctZero(t *testing.T) {
	var a Arena[int]
	seen := map[*int]bool{}
	for i := 0; i < 1000; i++ {
		p := a.Get()
		if *p != 0 {
			t.Fatalf("Get returned non-zero value %d", *p)
		}
		if seen[p] {
			t.Fatalf("Get returned the same pointer twice")
		}
		seen[p] = true
		*p = i + 1
	}
}

func TestGetNContiguous(t *testing.T) {
	var a Arena[int]
	s := a.GetN(100)
	if len(s) != 100 || cap(s) != 100 {
		t.Fatalf("GetN(100): len=%d cap=%d", len(s), cap(s))
	}
	for i := range s {
		s[i] = i
	}
	// A later block must not alias the first.
	s2 := a.GetN(100)
	for i := range s2 {
		if s2[i] != 0 {
			t.Fatalf("second block aliases the first at %d", i)
		}
	}
	for i := range s {
		if s[i] != i {
			t.Fatalf("first block corrupted at %d", i)
		}
	}
	if a.GetN(0) != nil {
		t.Fatal("GetN(0) should be nil")
	}
}

func TestReserveSingleChunk(t *testing.T) {
	// After Reserve(n), handing out n objects must allocate exactly one
	// backing chunk.
	allocs := testing.AllocsPerRun(10, func() {
		var a Arena[int]
		a.Reserve(10_000)
		for i := 0; i < 10_000; i++ {
			a.Get()
		}
	})
	if allocs > 1 {
		t.Fatalf("Reserve(10000)+10000 Gets allocated %.0f times, want 1", allocs)
	}
}

func BenchmarkGet(b *testing.B) {
	b.ReportAllocs()
	var a Arena[[8]int64]
	for i := 0; i < b.N; i++ {
		a.Get()
	}
}
