package fmm

import (
	"testing"

	"multiprio/internal/core"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/sched/eager"
	"multiprio/internal/sim"
)

func params(n, h int) Params {
	return Params{
		Particles: n, Height: h, Seed: 1,
		Machine: platform.IntelV100(platform.Config{}),
	}
}

func TestTreeConservesParticles(t *testing.T) {
	p := params(10000, 4)
	tr := BuildTree(p)
	total := 0
	for _, n := range tr.Leaves {
		total += n
	}
	if total != 10000 {
		t.Errorf("leaves hold %d particles, want 10000", total)
	}
	if len(tr.Cells[0]) != 1 {
		t.Errorf("root level has %d cells, want 1", len(tr.Cells[0]))
	}
}

func TestTreePrunesEmptyCells(t *testing.T) {
	p := params(50, 5) // 50 particles over up to 16^3 leaves: very sparse
	tr := BuildTree(p)
	if len(tr.Leaves) > 50 {
		t.Errorf("%d non-empty leaves from 50 particles", len(tr.Leaves))
	}
	// Every leaf's ancestor chain must be present.
	for leaf := range tr.Leaves {
		c := leaf
		for c.level > 0 {
			c = c.parent()
			if !tr.Cells[c.level][c] {
				t.Fatalf("ancestor %v of leaf %v missing", c, leaf)
			}
		}
	}
}

func TestClusteredIsIrregular(t *testing.T) {
	uni := BuildTree(params(100000, 5))
	p := params(100000, 5)
	p.Clustered = true
	clu := BuildTree(p)

	spread := func(tr *Tree) (min, max int) {
		min, max = 1<<30, 0
		for _, n := range tr.Leaves {
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		return
	}
	_, uniMax := spread(uni)
	_, cluMax := spread(clu)
	if cluMax <= 2*uniMax {
		t.Errorf("clustered max leaf population %d not well above uniform max %d", cluMax, uniMax)
	}
}

func TestGraphHasAllOperators(t *testing.T) {
	g := Build(params(20000, 4))
	kinds := map[string]int{}
	for _, task := range g.Tasks {
		kinds[task.Kind]++
	}
	for _, k := range []string{"p2m", "m2m", "m2l", "l2l", "l2p", "p2p"} {
		if kinds[k] == 0 {
			t.Errorf("no %s tasks generated (%v)", k, kinds)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// One P2M, L2P, P2P per leaf group.
	p := params(20000, 4)
	tr := BuildTree(p)
	ng := NumGroups(p, tr)
	if kinds["p2m"] != ng || kinds["l2p"] != ng || kinds["p2p"] != ng {
		t.Errorf("per-group task counts %v vs %d leaf groups", kinds, ng)
	}
}

func TestAffinities(t *testing.T) {
	g := Build(params(50000, 4))
	for _, task := range g.Tasks {
		switch task.Kind {
		case "p2m", "m2m", "l2l", "l2p":
			if task.CanRun(platform.ArchGPU) {
				t.Fatalf("%s should be CPU-only", task.Kind)
			}
		case "p2p":
			if !task.CanRun(platform.ArchGPU) || !task.CanRun(platform.ArchCPU) {
				t.Fatal("p2p should run on both architectures")
			}
			// Big P2P tasks are GPU-favourable.
			if task.Flops > 5e7 && task.Cost[platform.ArchGPU] >= task.Cost[platform.ArchCPU] {
				t.Fatalf("large p2p (%g flops) not GPU-favourable", task.Flops)
			}
		}
	}
}

func TestDisconnectedDAGShortCriticalPath(t *testing.T) {
	g := Build(params(200000, 5))
	cp := g.CriticalPathTime()
	serial := g.SerialTime()
	if cp > serial/10 {
		t.Errorf("critical path %v vs serial %v: DAG not disconnected enough", cp, serial)
	}
}

func TestDeterministicConstruction(t *testing.T) {
	g1 := Build(params(30000, 4))
	g2 := Build(params(30000, 4))
	if len(g1.Tasks) != len(g2.Tasks) {
		t.Fatalf("task counts differ: %d vs %d", len(g1.Tasks), len(g2.Tasks))
	}
	for i := range g1.Tasks {
		if g1.Tasks[i].Kind != g2.Tasks[i].Kind || g1.Tasks[i].Flops != g2.Tasks[i].Flops {
			t.Fatalf("task %d differs between identical builds", i)
		}
	}
}

func TestSimulatesUnderSchedulers(t *testing.T) {
	m := platform.IntelV100(platform.Config{})
	p := params(30000, 4)
	p.Machine = m
	for _, s := range []runtime.Scheduler{core.New(core.Defaults()), eager.New()} {
		g := Build(p)
		res, err := sim.Run(m, g, s, sim.Options{})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.Makespan <= 0 {
			t.Fatalf("%s: zero makespan", s.Name())
		}
	}
}

func TestUseCommuteRemovesP2PToL2PEdges(t *testing.T) {
	p := params(30000, 4)
	plain := Build(p)
	p.UseCommute = true
	commuted := Build(p)

	edges := func(g *runtime.Graph) int {
		n := 0
		for _, task := range g.Tasks {
			n += len(task.Succs())
		}
		return n
	}
	if edges(commuted) >= edges(plain) {
		t.Errorf("commute graph has %d edges vs %d: expected fewer (p2p/l2p decoupled)",
			edges(commuted), edges(plain))
	}
	// L2P must not depend on the same group's P2P anymore.
	for _, task := range commuted.Tasks {
		if task.Kind != "l2p" {
			continue
		}
		for _, pr := range commuted.Preds(task) {
			if pr.Kind == "p2p" {
				t.Fatalf("l2p still depends on p2p with commute enabled")
			}
		}
	}
}

func TestUseCommuteSimulates(t *testing.T) {
	m := platform.IntelV100(platform.Config{})
	p := params(30000, 4)
	p.Machine = m
	p.UseCommute = true
	g := Build(p)
	res, err := sim.Run(m, g, core.New(core.Defaults()), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("no makespan")
	}
}
