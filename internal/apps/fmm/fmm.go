// Package fmm generates the task graph of a task-based Fast Multipole
// Method, standing in for TBFMM in the paper's Section VI-B. TBFMM is
// built on a *group tree* (Bramas' blocked octree): cells and leaves are
// packed in Morton order into groups of configurable size, and each task
// operates on whole groups — that is what gives the application its
// coarse, GPU-amenable tasks and few large data handles.
//
// The generated DAG has the properties the paper attributes its FMM
// results to: it is very disconnected (the critical path with infinite
// resources is tiny compared to the total work), tasks have contrasted
// architecture affinities (P2P strongly GPU-favourable, M2L and the
// tree operators CPU-only, as in TBFMM's CUDA configuration), and task costs become irregular under
// non-uniform particle distributions.
package fmm

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"multiprio/internal/platform"
	"multiprio/internal/runtime"
)

// Params configures one FMM task graph.
type Params struct {
	// Particles is the total particle count (paper: 10^6).
	Particles int
	// Height is the octree height: leaves live at level Height-1
	// (paper: 6).
	Height int
	// GroupSize is the number of cells per group of the group tree
	// (TBFMM's blocking factor). Defaults to 64.
	GroupSize int
	// Clustered switches from a uniform particle distribution to a
	// multi-cluster one, producing irregular per-leaf populations.
	Clustered bool
	// MultipoleOrder is the expansion order k (defaults to 8).
	MultipoleOrder int
	// UseCommute marks the particle-output updates (P2P, L2P) with the
	// Commute access mode, as TBFMM does with STARPU_COMMUTE: the two
	// accumulations into each leaf group's output may run in either
	// order, serialized only at execution time.
	UseCommute bool
	Machine    *platform.Machine
	Seed       int64
}

func (p Params) order() int {
	if p.MultipoleOrder <= 0 {
		return 8
	}
	return p.MultipoleOrder
}

func (p Params) groupSize() int {
	if p.GroupSize <= 0 {
		return 64
	}
	return p.GroupSize
}

// cellKey packs (level, ix, iy, iz) for the sparse octree maps.
type cellKey struct {
	level      int
	ix, iy, iz int
}

func (k cellKey) parent() cellKey {
	return cellKey{k.level - 1, k.ix / 2, k.iy / 2, k.iz / 2}
}

// morton interleaves the cell coordinates into a Morton (Z-order) code,
// the order TBFMM packs cells into groups.
func (k cellKey) morton() uint64 {
	var code uint64
	for b := 0; b < 21; b++ {
		code |= (uint64(k.ix>>b) & 1) << (3 * b)
		code |= (uint64(k.iy>>b) & 1) << (3*b + 1)
		code |= (uint64(k.iz>>b) & 1) << (3*b + 2)
	}
	return code
}

// Tree is the sparse octree with per-leaf particle counts.
type Tree struct {
	Height int
	// Leaves maps leaf cells to their particle count.
	Leaves map[cellKey]int
	// Cells[level] is the set of non-empty cells per level.
	Cells []map[cellKey]bool
}

// BuildTree distributes the particles and builds the pruned octree.
func BuildTree(p Params) *Tree {
	rng := rand.New(rand.NewSource(p.Seed))
	side := 1 << (p.Height - 1)
	leaves := make(map[cellKey]int)

	sample := func() (float64, float64, float64) {
		return rng.Float64(), rng.Float64(), rng.Float64()
	}
	if p.Clustered {
		// Gaussian blobs over a uniform background: leaf populations
		// spread over an order of magnitude or more, the "diverse
		// particle distributions" of the paper's FMM motivation,
		// without collapsing the tree into a handful of cells.
		type blob struct{ cx, cy, cz, sigma float64 }
		nb := 32
		blobs := make([]blob, nb)
		for i := range blobs {
			blobs[i] = blob{
				cx: rng.Float64(), cy: rng.Float64(), cz: rng.Float64(),
				sigma: 0.05 + rng.Float64()*0.12,
			}
		}
		sample = func() (float64, float64, float64) {
			if rng.Float64() < 0.25 {
				return rng.Float64(), rng.Float64(), rng.Float64()
			}
			b := blobs[rng.Intn(nb)]
			clamp := func(v float64) float64 {
				return math.Min(0.999999, math.Max(0, v))
			}
			return clamp(b.cx + rng.NormFloat64()*b.sigma),
				clamp(b.cy + rng.NormFloat64()*b.sigma),
				clamp(b.cz + rng.NormFloat64()*b.sigma)
		}
	}
	for i := 0; i < p.Particles; i++ {
		x, y, z := sample()
		k := cellKey{
			level: p.Height - 1,
			ix:    int(x * float64(side)),
			iy:    int(y * float64(side)),
			iz:    int(z * float64(side)),
		}
		leaves[k]++
	}

	t := &Tree{Height: p.Height, Leaves: leaves}
	t.Cells = make([]map[cellKey]bool, p.Height)
	for l := range t.Cells {
		t.Cells[l] = make(map[cellKey]bool)
	}
	for k := range leaves {
		c := k
		for c.level >= 0 {
			t.Cells[c.level][c] = true
			if c.level == 0 {
				break
			}
			c = c.parent()
		}
	}
	return t
}

// neighbours lists the non-empty cells adjacent to k at the same level
// (excluding k itself).
func (t *Tree) neighbours(k cellKey) []cellKey {
	var out []cellKey
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for dz := -1; dz <= 1; dz++ {
				if dx == 0 && dy == 0 && dz == 0 {
					continue
				}
				n := cellKey{k.level, k.ix + dx, k.iy + dy, k.iz + dz}
				if t.Cells[k.level][n] {
					out = append(out, n)
				}
			}
		}
	}
	return out
}

// interactionList lists the well-separated same-level cells in the
// parent neighbourhood: children of the parent's neighbours that are not
// adjacent to k.
func (t *Tree) interactionList(k cellKey) []cellKey {
	if k.level < 2 {
		return nil
	}
	var out []cellKey
	par := k.parent()
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for dz := -1; dz <= 1; dz++ {
				pn := cellKey{par.level, par.ix + dx, par.iy + dy, par.iz + dz}
				for cx := 0; cx < 2; cx++ {
					for cy := 0; cy < 2; cy++ {
						for cz := 0; cz < 2; cz++ {
							c := cellKey{k.level, pn.ix*2 + cx, pn.iy*2 + cy, pn.iz*2 + cz}
							if !t.Cells[k.level][c] || c == k {
								continue
							}
							if abs(c.ix-k.ix) <= 1 && abs(c.iy-k.iy) <= 1 && abs(c.iz-k.iz) <= 1 {
								continue // adjacent: handled by P2P / finer levels
							}
							out = append(out, c)
						}
					}
				}
			}
		}
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// grouping is the group tree: per level, cells in Morton order packed
// into groups, with a cell -> group index map.
type grouping struct {
	groups [][][]cellKey     // [level][group] -> member cells
	index  []map[cellKey]int // [level][cell] -> group
}

func buildGrouping(t *Tree, groupSize int) *grouping {
	gr := &grouping{
		groups: make([][][]cellKey, t.Height),
		index:  make([]map[cellKey]int, t.Height),
	}
	for l := 0; l < t.Height; l++ {
		cells := make([]cellKey, 0, len(t.Cells[l]))
		for c := range t.Cells[l] {
			cells = append(cells, c)
		}
		sort.Slice(cells, func(i, j int) bool { return cells[i].morton() < cells[j].morton() })
		gr.index[l] = make(map[cellKey]int, len(cells))
		for i, c := range cells {
			g := i / groupSize
			if g == len(gr.groups[l]) {
				gr.groups[l] = append(gr.groups[l], nil)
			}
			gr.groups[l][g] = append(gr.groups[l][g], c)
			gr.index[l][c] = g
		}
	}
	return gr
}

// Per-operator efficiencies (fraction of architecture peak usable).
// Calibrated to task-based FMM on heterogeneous nodes (Agullo et al.,
// CCPE 2016; TBFMM): the CUDA offload covers the P2P direct kernel —
// the regular, compute-bound operator, ≈ 30-60x one CPU core on a
// V100-class device. M2L's scattered small-matrix accesses make it
// unprofitable on the GPU, so like the tree operators it is CPU-only,
// exactly TBFMM's GPU configuration.
const (
	p2pCPUEff   = 0.50
	p2pGPUEff   = 0.07
	m2lCPUEff   = 0.55
	treeOpEff   = 0.40
	gpuLaunch   = 1.2e-5 // per-task launch/staging overhead on GPU
	flopPerPair = 27.0   // interaction kernel flops per particle pair
)

// Build generates the FMM task graph for the parameters.
func Build(p Params) *runtime.Graph {
	if p.Machine == nil {
		panic("fmm: nil machine")
	}
	if p.Height < 3 {
		panic(fmt.Sprintf("fmm: height %d too small (need >= 3)", p.Height))
	}
	t := BuildTree(p)
	return BuildFromTree(p, t)
}

// BuildFromTree generates the group-tree task graph over a prebuilt
// octree.
func BuildFromTree(p Params, t *Tree) *runtime.Graph {
	g := runtime.NewGraph()
	var specs []runtime.TaskSpec
	k := p.order()
	kk := float64(k * k)
	kkk := kk * float64(k)
	gr := buildGrouping(t, p.groupSize())
	leafLevel := t.Height - 1

	cpuPeak := p.Machine.Archs[platform.ArchCPU].PeakGFlops * 1e9
	gpuPeak := 0.0
	if int(platform.ArchGPU) < len(p.Machine.Archs) {
		gpuPeak = p.Machine.Archs[platform.ArchGPU].PeakGFlops * 1e9
	}
	cpuOnly := func(flops float64) []float64 {
		c := make([]float64, len(p.Machine.Archs))
		c[platform.ArchCPU] = flops / (cpuPeak * treeOpEff)
		return c
	}
	both := func(flops, cpuEff, gpuEff float64) []float64 {
		c := make([]float64, len(p.Machine.Archs))
		c[platform.ArchCPU] = flops / (cpuPeak * cpuEff)
		if gpuPeak > 0 {
			c[platform.ArchGPU] = flops/(gpuPeak*gpuEff) + gpuLaunch
		}
		return c
	}

	// Group handles: multipole and local per (level, group); particle
	// blocks per leaf group.
	mpole := make([][]*runtime.DataHandle, t.Height)
	local := make([][]*runtime.DataHandle, t.Height)
	for l := 2; l < t.Height; l++ {
		mpole[l] = make([]*runtime.DataHandle, len(gr.groups[l]))
		local[l] = make([]*runtime.DataHandle, len(gr.groups[l]))
		for gi, cells := range gr.groups[l] {
			sz := int64(len(cells)) * int64(kk) * 8
			mpole[l][gi] = g.NewData(fmt.Sprintf("M%d.%d", l, gi), sz)
			local[l][gi] = g.NewData(fmt.Sprintf("L%d.%d", l, gi), sz)
		}
	}
	nLeafGroups := len(gr.groups[leafLevel])
	partIn := make([]*runtime.DataHandle, nLeafGroups)
	partOut := make([]*runtime.DataHandle, nLeafGroups)
	groupParticles := make([]int, nLeafGroups)
	for gi, cells := range gr.groups[leafLevel] {
		n := 0
		for _, c := range cells {
			n += t.Leaves[c]
		}
		groupParticles[gi] = n
		partIn[gi] = g.NewData(fmt.Sprintf("Pin.%d", gi), int64(n)*32)
		partOut[gi] = g.NewData(fmt.Sprintf("Pout.%d", gi), int64(n)*32)
	}

	// groupRefs collects the distinct groups at `level` containing the
	// given cells, in deterministic ascending order.
	groupRefs := func(level int, cells []cellKey) []int {
		set := map[int]bool{}
		for _, c := range cells {
			set[gr.index[level][c]] = true
		}
		out := make([]int, 0, len(set))
		for gi := range set {
			out = append(out, gi)
		}
		sort.Ints(out)
		return out
	}

	// Tasks are collected as specs and submitted in one batch at the
	// end; the spec order below is exactly the former Submit order, so
	// the inferred DAG is identical.
	// P2M per leaf group.
	for gi := range gr.groups[leafLevel] {
		fl := float64(groupParticles[gi]) * kk * 4
		specs = append(specs, runtime.TaskSpec{
			Kind: "p2m", Footprint: uint64(k), Flops: fl, Cost: cpuOnly(fl),
			Accesses: []runtime.Access{
				{Handle: partIn[gi], Mode: runtime.R},
				{Handle: mpole[leafLevel][gi], Mode: runtime.W},
			},
			Tag: gi,
		})
	}
	// P2P per leaf group, submitted before the far-field passes: the
	// direct pass only touches particle blocks, so it is ready from the
	// start — TBFMM's P2P and L2P updates commute, and submitting P2P
	// first keeps the accelerator fed throughout the tree traversal
	// (the disconnected-DAG property the paper's FMM analysis relies
	// on). With UseCommute the same freedom is expressed through the
	// access mode instead of the submission order.
	outMode := runtime.RW
	if p.UseCommute {
		outMode = runtime.Commute
	}
	for gi, cells := range gr.groups[leafLevel] {
		var nbrCells []cellKey
		pairs := 0.0
		for _, c := range cells {
			n := t.Leaves[c]
			pairs += float64(n) * float64(n)
			for _, nb := range t.neighbours(c) {
				pairs += float64(n) * float64(t.Leaves[nb])
				nbrCells = append(nbrCells, nb)
			}
		}
		acc := []runtime.Access{
			{Handle: partIn[gi], Mode: runtime.R},
			{Handle: partOut[gi], Mode: outMode},
		}
		for _, ng := range groupRefs(leafLevel, nbrCells) {
			if ng == gi {
				continue
			}
			acc = append(acc, runtime.Access{Handle: partIn[ng], Mode: runtime.R})
		}
		fl := pairs * flopPerPair
		specs = append(specs, runtime.TaskSpec{
			Kind: "p2p", Footprint: uint64(p.groupSize()), Flops: fl,
			Cost: both(fl, p2pCPUEff, p2pGPUEff), Accesses: acc, Tag: gi,
		})
	}
	// M2M upward: one task per parent group.
	for l := leafLevel - 1; l >= 2; l-- {
		for gi, cells := range gr.groups[l] {
			var children []cellKey
			for _, c := range cells {
				for cx := 0; cx < 2; cx++ {
					for cy := 0; cy < 2; cy++ {
						for cz := 0; cz < 2; cz++ {
							ch := cellKey{l + 1, c.ix*2 + cx, c.iy*2 + cy, c.iz*2 + cz}
							if t.Cells[l+1][ch] {
								children = append(children, ch)
							}
						}
					}
				}
			}
			acc := []runtime.Access{{Handle: mpole[l][gi], Mode: runtime.W}}
			for _, cg := range groupRefs(l+1, children) {
				acc = append(acc, runtime.Access{Handle: mpole[l+1][cg], Mode: runtime.R})
			}
			fl := float64(len(children)) * kkk * 2
			specs = append(specs, runtime.TaskSpec{
				Kind: "m2m", Footprint: uint64(k), Flops: fl, Cost: cpuOnly(fl),
				Accesses: acc, Tag: gi,
			})
		}
	}
	// M2L per group and level.
	for l := 2; l < t.Height; l++ {
		for gi, cells := range gr.groups[l] {
			var ilist []cellKey
			nInter := 0
			for _, c := range cells {
				il := t.interactionList(c)
				nInter += len(il)
				ilist = append(ilist, il...)
			}
			if nInter == 0 {
				continue
			}
			acc := []runtime.Access{{Handle: local[l][gi], Mode: runtime.RW}}
			for _, sg := range groupRefs(l, ilist) {
				acc = append(acc, runtime.Access{Handle: mpole[l][sg], Mode: runtime.R})
			}
			fl := float64(nInter) * kkk * 8
			c := make([]float64, len(p.Machine.Archs))
			c[platform.ArchCPU] = fl / (cpuPeak * m2lCPUEff)
			specs = append(specs, runtime.TaskSpec{
				Kind: "m2l", Footprint: uint64(k), Flops: fl,
				Cost: c, Accesses: acc, Tag: gi,
			})
		}
	}
	// L2L downward: one task per child group.
	for l := 3; l < t.Height; l++ {
		for gi, cells := range gr.groups[l] {
			var parents []cellKey
			for _, c := range cells {
				parents = append(parents, c.parent())
			}
			acc := []runtime.Access{{Handle: local[l][gi], Mode: runtime.RW}}
			for _, pg := range groupRefs(l-1, parents) {
				acc = append(acc, runtime.Access{Handle: local[l-1][pg], Mode: runtime.R})
			}
			fl := float64(len(cells)) * kkk * 2
			specs = append(specs, runtime.TaskSpec{
				Kind: "l2l", Footprint: uint64(k), Flops: fl, Cost: cpuOnly(fl),
				Accesses: acc, Tag: gi,
			})
		}
	}
	// L2P per leaf group closes the far-field pass.
	for gi := range gr.groups[leafLevel] {
		flL2P := float64(groupParticles[gi]) * kk * 4
		specs = append(specs, runtime.TaskSpec{
			Kind: "l2p", Footprint: uint64(k), Flops: flL2P, Cost: cpuOnly(flL2P),
			Accesses: []runtime.Access{
				{Handle: local[leafLevel][gi], Mode: runtime.R},
				{Handle: partOut[gi], Mode: outMode},
			},
			Tag: gi,
		})
	}
	g.SubmitBatch(specs)
	return g
}

// NumGroups returns the number of leaf groups the parameters produce
// (useful for sizing expectations in tests and reports).
func NumGroups(p Params, t *Tree) int {
	gs := p.groupSize()
	return (len(t.Cells[t.Height-1]) + gs - 1) / gs
}
