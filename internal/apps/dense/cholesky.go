package dense

import (
	"multiprio/internal/runtime"
)

// TileCoord tags a dense kernel task with its tile coordinates.
type TileCoord struct {
	K, I, J int
}

// Cholesky builds the task graph of the right-looking tiled Cholesky
// factorization (potrf) of a symmetric positive-definite T×T-tile
// matrix: the paper's regular reference workload (Fig. 4 and the potrf
// rows of Fig. 5).
//
// Per panel step k: POTRF on the diagonal tile, TRSM down the panel,
// then SYRK/GEMM updates of the trailing submatrix.
func Cholesky(p Params) *runtime.Graph {
	p.validate("potrf")
	g := runtime.NewGraph()
	a := TileMatrix(g, "A", p.Tiles, p.TileSize)
	var payload *choleskyPayload
	if p.Kernels {
		payload = newCholeskyPayload(g, a, p)
	}

	for k := 0; k < p.Tiles; k++ {
		potrf := newTask(p, "potrf", []runtime.Access{
			{Handle: a[k][k], Mode: runtime.RW},
		}, TileCoord{K: k, I: k, J: k})
		if payload != nil {
			payload.bindPotrf(potrf, k)
		}
		g.Submit(potrf)

		for i := k + 1; i < p.Tiles; i++ {
			trsm := newTask(p, "trsm", []runtime.Access{
				{Handle: a[k][k], Mode: runtime.R},
				{Handle: a[i][k], Mode: runtime.RW},
			}, TileCoord{K: k, I: i, J: k})
			if payload != nil {
				payload.bindTrsm(trsm, k, i)
			}
			g.Submit(trsm)
		}
		for i := k + 1; i < p.Tiles; i++ {
			syrk := newTask(p, "syrk", []runtime.Access{
				{Handle: a[i][k], Mode: runtime.R},
				{Handle: a[i][i], Mode: runtime.RW},
			}, TileCoord{K: k, I: i, J: i})
			if payload != nil {
				payload.bindSyrk(syrk, k, i)
			}
			g.Submit(syrk)
			for j := k + 1; j < i; j++ {
				gemm := newTask(p, "gemm", []runtime.Access{
					{Handle: a[i][k], Mode: runtime.R},
					{Handle: a[j][k], Mode: runtime.R},
					{Handle: a[i][j], Mode: runtime.RW},
				}, TileCoord{K: k, I: i, J: j})
				if payload != nil {
					payload.bindGemm(gemm, k, i, j)
				}
				g.Submit(gemm)
			}
		}
	}
	if p.UserPriorities {
		AssignBottomLevelPriorities(g)
	}
	return g
}

// CholeskyTaskCount returns the number of tasks of a T-tile Cholesky:
// T potrf + T(T-1)/2 trsm + T(T-1)/2 syrk + T(T-1)(T-2)/6 gemm.
func CholeskyTaskCount(tiles int) int {
	t := tiles
	return t + t*(t-1)/2 + t*(t-1)/2 + t*(t-1)*(t-2)/6
}
