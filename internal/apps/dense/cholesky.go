package dense

import (
	"multiprio/internal/runtime"
)

// TileCoord tags a dense kernel task with its tile coordinates.
type TileCoord struct {
	K, I, J int
}

// Cholesky builds the task graph of the right-looking tiled Cholesky
// factorization (potrf) of a symmetric positive-definite T×T-tile
// matrix: the paper's regular reference workload (Fig. 4 and the potrf
// rows of Fig. 5).
//
// Per panel step k: POTRF on the diagonal tile, TRSM down the panel,
// then SYRK/GEMM updates of the trailing submatrix.
func Cholesky(p Params) *runtime.Graph {
	p.validate("potrf")
	n := CholeskyTaskCount(p.Tiles)
	g := runtime.NewGraphWithCapacity(n, p.Tiles*p.Tiles)
	a := TileMatrix(g, "A", p.Tiles, p.TileSize)
	var payload *choleskyPayload
	if p.Kernels {
		payload = newCholeskyPayload(g, a, p)
	}

	specs := make([]runtime.TaskSpec, 0, n)
	for k := 0; k < p.Tiles; k++ {
		potrf := newSpec(p, "potrf", []runtime.Access{
			{Handle: a[k][k], Mode: runtime.RW},
		}, TileCoord{K: k, I: k, J: k})
		if payload != nil {
			potrf.Run = payload.runPotrf(k)
		}
		specs = append(specs, potrf)

		for i := k + 1; i < p.Tiles; i++ {
			trsm := newSpec(p, "trsm", []runtime.Access{
				{Handle: a[k][k], Mode: runtime.R},
				{Handle: a[i][k], Mode: runtime.RW},
			}, TileCoord{K: k, I: i, J: k})
			if payload != nil {
				trsm.Run = payload.runTrsm(k, i)
			}
			specs = append(specs, trsm)
		}
		for i := k + 1; i < p.Tiles; i++ {
			syrk := newSpec(p, "syrk", []runtime.Access{
				{Handle: a[i][k], Mode: runtime.R},
				{Handle: a[i][i], Mode: runtime.RW},
			}, TileCoord{K: k, I: i, J: i})
			if payload != nil {
				syrk.Run = payload.runSyrk(k, i)
			}
			specs = append(specs, syrk)
			for j := k + 1; j < i; j++ {
				gemm := newSpec(p, "gemm", []runtime.Access{
					{Handle: a[i][k], Mode: runtime.R},
					{Handle: a[j][k], Mode: runtime.R},
					{Handle: a[i][j], Mode: runtime.RW},
				}, TileCoord{K: k, I: i, J: j})
				if payload != nil {
					gemm.Run = payload.runGemm(k, i, j)
				}
				specs = append(specs, gemm)
			}
		}
	}
	g.SubmitBatch(specs)
	if p.UserPriorities {
		AssignBottomLevelPriorities(g)
	}
	return g
}

// CholeskyTaskCount returns the number of tasks of a T-tile Cholesky:
// T potrf + T(T-1)/2 trsm + T(T-1)/2 syrk + T(T-1)(T-2)/6 gemm.
func CholeskyTaskCount(tiles int) int {
	t := tiles
	return t + t*(t-1)/2 + t*(t-1)/2 + t*(t-1)*(t-2)/6
}
