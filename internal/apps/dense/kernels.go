package dense

import (
	"fmt"
	"math"
	"math/rand"

	"multiprio/internal/runtime"
)

// choleskyPayload carries real float64 tiles and binds naive compute
// kernels to the graph's tasks, so the factorization can execute on the
// threaded engine and be verified numerically (examples/quickstart).
type choleskyPayload struct {
	b     int
	tiles [][][]float64 // [i][j] -> row-major b×b tile, lower part only
}

func newCholeskyPayload(g *runtime.Graph, handles [][]*runtime.DataHandle, p Params) *choleskyPayload {
	pl := &choleskyPayload{b: p.TileSize}
	pl.tiles = make([][][]float64, p.Tiles)
	for i := range pl.tiles {
		pl.tiles[i] = make([][]float64, p.Tiles)
		for j := 0; j <= i; j++ {
			pl.tiles[i][j] = make([]float64, p.TileSize*p.TileSize)
			handles[i][j].Payload = &pl.tiles[i][j]
		}
	}
	return pl
}

// FillSPD initializes the lower tiles with a random symmetric
// positive-definite matrix: A = R + Rᵀ + 2n·I for uniform R.
func (pl *choleskyPayload) FillSPD(seed int64) {
	b := pl.b
	tiles := len(pl.tiles)
	n := tiles * b
	rng := rand.New(rand.NewSource(seed))
	full := make([]float64, n*n)
	for r := 0; r < n; r++ {
		for c := 0; c <= r; c++ {
			v := rng.Float64()
			full[r*n+c] = v
			full[c*n+r] = v
		}
		full[r*n+r] += 2 * float64(n)
	}
	for i := 0; i < tiles; i++ {
		for j := 0; j <= i; j++ {
			t := pl.tiles[i][j]
			for r := 0; r < b; r++ {
				copy(t[r*b:(r+1)*b], full[(i*b+r)*n+j*b:(i*b+r)*n+j*b+b])
			}
		}
	}
}

func (pl *choleskyPayload) runPotrf(k int) func(runtime.WorkerInfo) {
	a := pl.tiles[k][k]
	b := pl.b
	return func(w runtime.WorkerInfo) {
		if err := potrfKernel(a, b); err != nil {
			panic(err)
		}
	}
}

func (pl *choleskyPayload) runTrsm(k, i int) func(runtime.WorkerInfo) {
	l, x := pl.tiles[k][k], pl.tiles[i][k]
	b := pl.b
	return func(w runtime.WorkerInfo) { trsmKernel(l, x, b) }
}

func (pl *choleskyPayload) runSyrk(k, i int) func(runtime.WorkerInfo) {
	a, c := pl.tiles[i][k], pl.tiles[i][i]
	b := pl.b
	return func(w runtime.WorkerInfo) { syrkKernel(a, c, b) }
}

func (pl *choleskyPayload) runGemm(k, i, j int) func(runtime.WorkerInfo) {
	a, bm, c := pl.tiles[i][k], pl.tiles[j][k], pl.tiles[i][j]
	b := pl.b
	return func(w runtime.WorkerInfo) { gemmKernel(a, bm, c, b) }
}

// potrfKernel computes the in-place lower Cholesky factor of a b×b tile.
func potrfKernel(a []float64, b int) error {
	for j := 0; j < b; j++ {
		d := a[j*b+j]
		for k := 0; k < j; k++ {
			d -= a[j*b+k] * a[j*b+k]
		}
		if d <= 0 {
			return fmt.Errorf("dense: tile not positive definite at column %d (pivot %g)", j, d)
		}
		d = math.Sqrt(d)
		a[j*b+j] = d
		for i := j + 1; i < b; i++ {
			s := a[i*b+j]
			for k := 0; k < j; k++ {
				s -= a[i*b+k] * a[j*b+k]
			}
			a[i*b+j] = s / d
		}
		for k := j + 1; k < b; k++ {
			a[j*b+k] = 0
		}
	}
	return nil
}

// trsmKernel solves X·Lᵀ = X in place for the lower-triangular factor L
// (right side, transposed): X[r][c] updates column by column.
func trsmKernel(l, x []float64, b int) {
	for r := 0; r < b; r++ {
		for c := 0; c < b; c++ {
			s := x[r*b+c]
			for k := 0; k < c; k++ {
				s -= x[r*b+k] * l[c*b+k]
			}
			x[r*b+c] = s / l[c*b+c]
		}
	}
}

// syrkKernel computes C -= A·Aᵀ on the lower triangle (diagonal tile
// update).
func syrkKernel(a, c []float64, b int) {
	for r := 0; r < b; r++ {
		for cc := 0; cc <= r; cc++ {
			s := 0.0
			for k := 0; k < b; k++ {
				s += a[r*b+k] * a[cc*b+k]
			}
			c[r*b+cc] -= s
		}
	}
}

// gemmKernel computes C -= A·Bᵀ (off-diagonal tile update).
func gemmKernel(a, bm, c []float64, b int) {
	for r := 0; r < b; r++ {
		for cc := 0; cc < b; cc++ {
			s := 0.0
			for k := 0; k < b; k++ {
				s += a[r*b+k] * bm[cc*b+k]
			}
			c[r*b+cc] -= s
		}
	}
}

// CholeskyWithKernels builds the Cholesky graph with real payloads
// attached, fills it with a random SPD matrix, and returns the graph
// plus a verifier that checks L·Lᵀ against the original matrix to the
// given tolerance after the graph has executed.
func CholeskyWithKernels(p Params, seed int64) (*runtime.Graph, func(tol float64) error) {
	p.Kernels = true
	g := Cholesky(p)
	// Recover the tile slices through the handles (TileMatrix registers
	// them row-major from handle 0), fill the SPD input, and snapshot it
	// for verification.
	tiles := make([][][]float64, p.Tiles)
	for i := range tiles {
		tiles[i] = make([][]float64, p.Tiles)
	}
	idx := 0
	for i := 0; i < p.Tiles; i++ {
		for j := 0; j < p.Tiles; j++ {
			h := g.Handles[idx]
			idx++
			if h.Payload != nil {
				tiles[i][j] = *(h.Payload.(*[]float64))
			}
		}
	}
	payload := &choleskyPayload{b: p.TileSize, tiles: tiles}
	payload.FillSPD(seed)

	// Snapshot the input for verification.
	n := p.Tiles * p.TileSize
	orig := make([]float64, n*n)
	b := p.TileSize
	for i := 0; i < p.Tiles; i++ {
		for j := 0; j <= i; j++ {
			t := tiles[i][j]
			for r := 0; r < b; r++ {
				copy(orig[(i*b+r)*n+j*b:(i*b+r)*n+j*b+b], t[r*b:(r+1)*b])
			}
		}
	}

	verify := func(tol float64) error {
		// Assemble L and check L·Lᵀ == orig (lower part).
		lf := make([]float64, n*n)
		for i := 0; i < p.Tiles; i++ {
			for j := 0; j <= i; j++ {
				t := tiles[i][j]
				for r := 0; r < b; r++ {
					copy(lf[(i*b+r)*n+j*b:(i*b+r)*n+j*b+b], t[r*b:(r+1)*b])
				}
			}
		}
		var maxErr float64
		for r := 0; r < n; r++ {
			for c := 0; c <= r; c++ {
				s := 0.0
				for k := 0; k <= c; k++ {
					s += lf[r*n+k] * lf[c*n+k]
				}
				if e := math.Abs(s - orig[r*n+c]); e > maxErr {
					maxErr = e
				}
			}
		}
		if maxErr > tol {
			return fmt.Errorf("dense: Cholesky residual %g exceeds tolerance %g", maxErr, tol)
		}
		return nil
	}
	return g, verify
}
