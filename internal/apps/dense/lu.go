package dense

import "multiprio/internal/runtime"

// LU builds the task graph of the right-looking tiled LU factorization
// without pivoting (getrf), the getrf rows of the paper's Fig. 5. The
// DAG has the same diamond shape as Cholesky but is non-symmetric: both
// a column of lower TRSMs and a row of upper TRSMs per step, and a full
// (T-k-1)² GEMM trailing update, giving a larger workload and more
// memory traffic.
func LU(p Params) *runtime.Graph {
	p.validate("getrf")
	n := LUTaskCount(p.Tiles)
	g := runtime.NewGraphWithCapacity(n, p.Tiles*p.Tiles)
	a := TileMatrix(g, "A", p.Tiles, p.TileSize)

	specs := make([]runtime.TaskSpec, 0, n)
	for k := 0; k < p.Tiles; k++ {
		specs = append(specs, newSpec(p, "getrf", []runtime.Access{
			{Handle: a[k][k], Mode: runtime.RW},
		}, TileCoord{K: k, I: k, J: k}))

		for i := k + 1; i < p.Tiles; i++ {
			// L panel: solve below the diagonal.
			specs = append(specs, newSpec(p, "trsm", []runtime.Access{
				{Handle: a[k][k], Mode: runtime.R},
				{Handle: a[i][k], Mode: runtime.RW},
			}, TileCoord{K: k, I: i, J: k}))
		}
		for j := k + 1; j < p.Tiles; j++ {
			// U panel: solve right of the diagonal.
			specs = append(specs, newSpec(p, "trsm", []runtime.Access{
				{Handle: a[k][k], Mode: runtime.R},
				{Handle: a[k][j], Mode: runtime.RW},
			}, TileCoord{K: k, I: k, J: j}))
		}
		for i := k + 1; i < p.Tiles; i++ {
			for j := k + 1; j < p.Tiles; j++ {
				specs = append(specs, newSpec(p, "gemm", []runtime.Access{
					{Handle: a[i][k], Mode: runtime.R},
					{Handle: a[k][j], Mode: runtime.R},
					{Handle: a[i][j], Mode: runtime.RW},
				}, TileCoord{K: k, I: i, J: j}))
			}
		}
	}
	g.SubmitBatch(specs)
	if p.UserPriorities {
		AssignBottomLevelPriorities(g)
	}
	return g
}

// LUTaskCount returns the task count of a T-tile LU without pivoting.
func LUTaskCount(tiles int) int {
	t := tiles
	n := t // getrf
	for k := 0; k < t; k++ {
		r := t - k - 1
		n += 2*r + r*r
	}
	return n
}
