package dense

import (
	"fmt"

	"multiprio/internal/platform"
	"multiprio/internal/runtime"
)

// HierParams configures the hierarchical Cholesky workload.
type HierParams struct {
	// Blocks is the outer matrix order in big blocks.
	Blocks int
	// SubTiles is the inner order: each big block is SubTiles×SubTiles
	// fine tiles, so the coarse block size is SubTiles*TileSize.
	SubTiles int
	// TileSize is the fine tile order b.
	TileSize int
	Machine  *platform.Machine
	// UserPriorities assigns bottom-level ranks for dmdas.
	UserPriorities bool
}

// HierarchicalCholesky builds the task graph of a blocked Cholesky with
// hierarchical granularity, the workload of the paper's Section VII
// outlook: "hierarchical tasks ... expose different task sizes in the
// DAG, providing a sufficient amount of large-granularity tasks to
// efficiently utilize GPUs, along with fine-granularity tasks to take
// advantage of CPUs and thus unlock more parallelism. Such scenarios
// are similar to QR_MUMPS, and that's why we expect better results than
// Dmdas when scheduling hierarchical tasks."
//
// The panel operations (the factorization of each diagonal block and
// the triangular solves below it) are expanded into fine tiled
// subgraphs over b-sized tiles — many small, parallel, CPU-appropriate
// tasks — while each trailing update is ONE coarse GEMM/SYRK over the
// whole (SubTiles·b)² block, the large-granularity GPU food. Data is
// shared at fine-tile resolution, so the STF inference stitches coarse
// and fine tasks into a single DAG, exactly what StarPU's hierarchical
// tasks ("bubbles") produce at runtime.
func HierarchicalCholesky(p HierParams) *runtime.Graph {
	if p.Blocks < 1 || p.SubTiles < 1 || p.TileSize < 1 {
		panic(fmt.Sprintf("dense: hierarchical cholesky with %d blocks of %d×%d tiles",
			p.Blocks, p.SubTiles, p.TileSize))
	}
	if p.Machine == nil {
		panic("dense: nil machine")
	}
	nb, st, b := p.Blocks, p.SubTiles, p.TileSize
	n := HierTaskCount(nb, st)
	g := runtime.NewGraphWithCapacity(n, nb*nb*st*st)
	coarse := st * b
	fineP := Params{Tiles: st, TileSize: b, Machine: p.Machine}
	coarseP := Params{Tiles: nb, TileSize: coarse, Machine: p.Machine}

	// Handle grid at FINE resolution: tiles[BI][BJ][i][j].
	tile := func(BI, BJ, i, j int) int {
		return ((BI*nb+BJ)*st+i)*st + j
	}
	handles := make([]*runtime.DataHandle, nb*nb*st*st)
	for BI := 0; BI < nb; BI++ {
		for BJ := 0; BJ < nb; BJ++ {
			for i := 0; i < st; i++ {
				for j := 0; j < st; j++ {
					handles[tile(BI, BJ, i, j)] = g.NewData(
						fmt.Sprintf("A[%d,%d](%d,%d)", BI, BJ, i, j), tileBytes(b))
				}
			}
		}
	}
	h := func(BI, BJ, i, j int) *runtime.DataHandle { return handles[tile(BI, BJ, i, j)] }

	// blockAccesses lists all fine tiles of a block with one mode.
	blockAccesses := func(BI, BJ int, mode runtime.AccessMode, acc []runtime.Access) []runtime.Access {
		for i := 0; i < st; i++ {
			for j := 0; j < st; j++ {
				acc = append(acc, runtime.Access{Handle: h(BI, BJ, i, j), Mode: mode})
			}
		}
		return acc
	}

	specs := make([]runtime.TaskSpec, 0, n)

	// finePotrf expands POTRF(K) into the fine tiled Cholesky of block
	// (K,K) — the hierarchical "bubble".
	finePotrf := func(K int) {
		for k := 0; k < st; k++ {
			specs = append(specs, newSpec(fineP, "potrf",
				[]runtime.Access{{Handle: h(K, K, k, k), Mode: runtime.RW}},
				TileCoord{K: K, I: k, J: k}))
			for i := k + 1; i < st; i++ {
				specs = append(specs, newSpec(fineP, "trsm", []runtime.Access{
					{Handle: h(K, K, k, k), Mode: runtime.R},
					{Handle: h(K, K, i, k), Mode: runtime.RW},
				}, TileCoord{K: K, I: i, J: k}))
			}
			for i := k + 1; i < st; i++ {
				specs = append(specs, newSpec(fineP, "syrk", []runtime.Access{
					{Handle: h(K, K, i, k), Mode: runtime.R},
					{Handle: h(K, K, i, i), Mode: runtime.RW},
				}, TileCoord{K: K, I: i, J: i}))
				for j := k + 1; j < i; j++ {
					specs = append(specs, newSpec(fineP, "gemm", []runtime.Access{
						{Handle: h(K, K, i, k), Mode: runtime.R},
						{Handle: h(K, K, j, k), Mode: runtime.R},
						{Handle: h(K, K, i, j), Mode: runtime.RW},
					}, TileCoord{K: K, I: i, J: j}))
				}
			}
		}
	}

	// fineTrsm expands TRSM(I,K): solve block (I,K) against the factor
	// in (K,K), fine tile by fine tile.
	fineTrsm := func(I, K int) {
		for k := 0; k < st; k++ {
			for i := 0; i < st; i++ {
				specs = append(specs, newSpec(fineP, "trsm", []runtime.Access{
					{Handle: h(K, K, k, k), Mode: runtime.R},
					{Handle: h(I, K, i, k), Mode: runtime.RW},
				}, TileCoord{K: K, I: i, J: k}))
			}
			for i := 0; i < st; i++ {
				for j := k + 1; j < st; j++ {
					specs = append(specs, newSpec(fineP, "gemm", []runtime.Access{
						{Handle: h(I, K, i, k), Mode: runtime.R},
						{Handle: h(K, K, j, k), Mode: runtime.R},
						{Handle: h(I, K, i, j), Mode: runtime.RW},
					}, TileCoord{K: K, I: i, J: j}))
				}
			}
		}
	}

	for K := 0; K < nb; K++ {
		finePotrf(K)
		for I := K + 1; I < nb; I++ {
			fineTrsm(I, K)
		}
		for I := K + 1; I < nb; I++ {
			// Coarse SYRK over the whole diagonal block.
			acc := blockAccesses(I, K, runtime.R, nil)
			acc = blockAccesses(I, I, runtime.RW, acc)
			specs = append(specs, newSpec(coarseP, "syrk", acc, TileCoord{K: K, I: I, J: I}))
			for J := K + 1; J < I; J++ {
				// Coarse GEMM over the whole off-diagonal block: the
				// large-granularity accelerator food.
				acc := blockAccesses(I, K, runtime.R, nil)
				acc = blockAccesses(J, K, runtime.R, acc)
				acc = blockAccesses(I, J, runtime.RW, acc)
				specs = append(specs, newSpec(coarseP, "gemm", acc, TileCoord{K: K, I: I, J: J}))
			}
		}
	}
	g.SubmitBatch(specs)
	if p.UserPriorities {
		AssignBottomLevelPriorities(g)
	}
	return g
}

// HierTaskCount returns the number of tasks HierarchicalCholesky emits.
func HierTaskCount(nb, st int) int {
	fineChol := CholeskyTaskCount(st)
	fineTrsm := st*st + st*st*(st-1)/2
	n := 0
	for K := 0; K < nb; K++ {
		r := nb - K - 1
		n += fineChol + r*fineTrsm + r + r*(r-1)/2
	}
	return n
}
