// Package dense generates the task graphs of tiled dense linear algebra
// routines — Cholesky (potrf), LU without pivoting (getrf) and QR
// (geqrf) — standing in for the CHAMELEON library used in the paper's
// Section VI-A. The DAG shapes, kernel mixes, data access modes and
// expert priorities match the classic tile algorithms (PLASMA/CHAMELEON
// right-looking variants).
//
// Kernel execution times follow a calibrated roofline-style model:
// flops divided by the architecture peak scaled with a per-kernel
// efficiency, where GPU efficiency additionally saturates with tile
// size (small tiles underutilize the device, the reason the paper
// sweeps tile sizes per platform).
package dense

import (
	"fmt"

	"multiprio/internal/platform"
	"multiprio/internal/runtime"
)

// Params configures one dense factorization DAG.
type Params struct {
	// Tiles is the matrix order in tiles (T×T tiles).
	Tiles int
	// TileSize is the tile order b (the matrix order is Tiles*TileSize).
	TileSize int
	// Machine provides the per-architecture peak rates of the cost
	// model.
	Machine *platform.Machine
	// UserPriorities emulates CHAMELEON's expert-tuned static task
	// priorities (consumed by the dmdas scheduler): bottom-level ranks
	// computed on the DAG.
	UserPriorities bool
	// Kernels attaches real Go compute kernels and tile payloads so the
	// graph can run on the threaded engine (Cholesky only).
	Kernels bool
}

func (p Params) validate(routine string) {
	if p.Tiles < 1 || p.TileSize < 1 {
		panic(fmt.Sprintf("dense: %s with %d tiles of %d", routine, p.Tiles, p.TileSize))
	}
	if p.Machine == nil {
		panic("dense: nil machine")
	}
}

// kernelEff holds the efficiency of one kernel relative to arch peak.
type kernelEff struct {
	cpu float64
	// gpu is the asymptotic GPU efficiency; gpuHalf is the tile size at
	// which the GPU reaches half of it (saturation model
	// eff(b) = gpu * b² / (b² + gpuHalf²)).
	gpu     float64
	gpuHalf float64
}

// efficiencies per kernel. CPU panel factorizations vectorize poorly;
// GPU panel kernels are dramatically inefficient (sequential dependency
// chains), which is what makes the scheduling problem heterogeneous:
// update kernels (gemm, syrk, tsmqr) want the GPU, panel kernels (potrf,
// getrf, geqrt) want the CPU unless tiles are huge.
var kernelTable = map[string]kernelEff{
	"potrf": {cpu: 0.45, gpu: 0.04, gpuHalf: 4000},
	"trsm":  {cpu: 0.75, gpu: 0.55, gpuHalf: 700},
	"syrk":  {cpu: 0.85, gpu: 0.85, gpuHalf: 550},
	"gemm":  {cpu: 0.90, gpu: 0.95, gpuHalf: 500},
	"getrf": {cpu: 0.50, gpu: 0.04, gpuHalf: 4200},
	"geqrt": {cpu: 0.40, gpu: 0.03, gpuHalf: 4500},
	"unmqr": {cpu: 0.70, gpu: 0.60, gpuHalf: 650},
	"tsqrt": {cpu: 0.40, gpu: 0.03, gpuHalf: 4500},
	"tsmqr": {cpu: 0.75, gpu: 0.80, gpuHalf: 600},
}

// flopCount returns the double-precision operation count of one kernel
// instance on b×b tiles.
func flopCount(kind string, b float64) float64 {
	switch kind {
	case "potrf":
		return b * b * b / 3
	case "trsm":
		return b * b * b
	case "syrk":
		return b * b * b
	case "gemm":
		return 2 * b * b * b
	case "getrf":
		return 2 * b * b * b / 3
	case "geqrt":
		return 4 * b * b * b / 3
	case "unmqr":
		return 2 * b * b * b
	case "tsqrt":
		return 10 * b * b * b / 3
	case "tsmqr":
		return 4 * b * b * b
	default:
		panic("dense: unknown kernel " + kind)
	}
}

// Cost returns the per-architecture reference execution times (seconds)
// of one kernel instance, for use as Task.Cost.
func Cost(m *platform.Machine, kind string, tileSize int) []float64 {
	eff, ok := kernelTable[kind]
	if !ok {
		panic("dense: unknown kernel " + kind)
	}
	b := float64(tileSize)
	flops := flopCount(kind, b)
	cost := make([]float64, len(m.Archs))
	for a := range m.Archs {
		peak := m.Archs[a].PeakGFlops * 1e9
		var e float64
		if platform.ArchID(a) == platform.ArchGPU {
			e = eff.gpu * (b * b) / (b*b + eff.gpuHalf*eff.gpuHalf)
		} else {
			e = eff.cpu
		}
		if e <= 0 || peak <= 0 {
			cost[a] = 0 // no implementation
			continue
		}
		cost[a] = flops / (peak * e)
	}
	return cost
}

// tileBytes is the payload size of one b×b float64 tile.
func tileBytes(b int) int64 { return int64(b) * int64(b) * 8 }

// newSpec assembles a dense kernel task spec for batch submission.
func newSpec(p Params, kind string, accesses []runtime.Access, tag any) runtime.TaskSpec {
	b := float64(p.TileSize)
	return runtime.TaskSpec{
		Kind:      kind,
		Footprint: uint64(p.TileSize),
		Flops:     flopCount(kind, b),
		Cost:      Cost(p.Machine, kind, p.TileSize),
		Accesses:  accesses,
		Tag:       tag,
	}
}

// TileMatrix registers the T×T handle grid of a dense matrix.
func TileMatrix(g *runtime.Graph, name string, tiles, tileSize int) [][]*runtime.DataHandle {
	grid := make([][]*runtime.DataHandle, tiles)
	for i := range grid {
		grid[i] = make([]*runtime.DataHandle, tiles)
		for j := range grid[i] {
			grid[i][j] = g.NewData(fmt.Sprintf("%s[%d][%d]", name, i, j), tileBytes(tileSize))
		}
	}
	return grid
}

// MatrixOrder returns the scalar matrix order of the parameters.
func (p Params) MatrixOrder() int { return p.Tiles * p.TileSize }
