package dense

import "multiprio/internal/runtime"

// QR builds the task graph of the tiled QR factorization (geqrf) using
// the flat-tree TS (triangle-on-top-of-square) kernels of
// PLASMA/CHAMELEON: GEQRT on the diagonal, UNMQR across the row, TSQRT
// down the panel, TSMQR on the trailing submatrix. This is the geqrf
// workload of the paper's Fig. 5.
//
// Extra T×T handles store the per-tile triangular reflector factors.
func QR(p Params) *runtime.Graph {
	p.validate("geqrf")
	n := QRTaskCount(p.Tiles)
	g := runtime.NewGraphWithCapacity(n, 2*p.Tiles*p.Tiles)
	a := TileMatrix(g, "A", p.Tiles, p.TileSize)
	tf := TileMatrix(g, "T", p.Tiles, p.TileSize)

	specs := make([]runtime.TaskSpec, 0, n)
	for k := 0; k < p.Tiles; k++ {
		specs = append(specs, newSpec(p, "geqrt", []runtime.Access{
			{Handle: a[k][k], Mode: runtime.RW},
			{Handle: tf[k][k], Mode: runtime.W},
		}, TileCoord{K: k, I: k, J: k}))

		for j := k + 1; j < p.Tiles; j++ {
			specs = append(specs, newSpec(p, "unmqr", []runtime.Access{
				{Handle: a[k][k], Mode: runtime.R},
				{Handle: tf[k][k], Mode: runtime.R},
				{Handle: a[k][j], Mode: runtime.RW},
			}, TileCoord{K: k, I: k, J: j}))
		}
		for i := k + 1; i < p.Tiles; i++ {
			specs = append(specs, newSpec(p, "tsqrt", []runtime.Access{
				{Handle: a[k][k], Mode: runtime.RW},
				{Handle: a[i][k], Mode: runtime.RW},
				{Handle: tf[i][k], Mode: runtime.W},
			}, TileCoord{K: k, I: i, J: k}))
			for j := k + 1; j < p.Tiles; j++ {
				specs = append(specs, newSpec(p, "tsmqr", []runtime.Access{
					{Handle: a[i][k], Mode: runtime.R},
					{Handle: tf[i][k], Mode: runtime.R},
					{Handle: a[k][j], Mode: runtime.RW},
					{Handle: a[i][j], Mode: runtime.RW},
				}, TileCoord{K: k, I: i, J: j}))
			}
		}
	}
	g.SubmitBatch(specs)
	if p.UserPriorities {
		AssignBottomLevelPriorities(g)
	}
	return g
}

// QRTaskCount returns the task count of a T-tile TS-QR.
func QRTaskCount(tiles int) int {
	t := tiles
	n := 0
	for k := 0; k < t; k++ {
		r := t - k - 1
		n += 1 + r + r + r*r
	}
	return n
}
