package dense

import (
	"math"
	"testing"
	"testing/quick"

	"multiprio/internal/core"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/sched/eager"
	"multiprio/internal/sim"
)

func params(tiles, b int) Params {
	return Params{Tiles: tiles, TileSize: b, Machine: platform.IntelV100(platform.Config{})}
}

func TestCholeskyTaskCount(t *testing.T) {
	for _, tiles := range []int{1, 2, 3, 5, 10} {
		g := Cholesky(params(tiles, 64))
		if got, want := len(g.Tasks), CholeskyTaskCount(tiles); got != want {
			t.Errorf("tiles=%d: %d tasks, want %d", tiles, got, want)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("tiles=%d: %v", tiles, err)
		}
	}
}

func TestLUTaskCount(t *testing.T) {
	for _, tiles := range []int{1, 2, 4, 8} {
		g := LU(params(tiles, 64))
		if got, want := len(g.Tasks), LUTaskCount(tiles); got != want {
			t.Errorf("tiles=%d: %d tasks, want %d", tiles, got, want)
		}
	}
}

func TestQRTaskCount(t *testing.T) {
	for _, tiles := range []int{1, 2, 4, 8} {
		g := QR(params(tiles, 64))
		if got, want := len(g.Tasks), QRTaskCount(tiles); got != want {
			t.Errorf("tiles=%d: %d tasks, want %d", tiles, got, want)
		}
	}
}

func TestLUHeavierThanCholesky(t *testing.T) {
	pc := params(6, 256)
	if LU(pc).TotalFlops() <= Cholesky(pc).TotalFlops() {
		t.Error("LU should carry more flops than Cholesky at equal size")
	}
}

func TestCholeskyDAGStructure(t *testing.T) {
	g := Cholesky(params(3, 64))
	// First task is POTRF(0) with no predecessors; last is POTRF(2).
	first, last := g.Tasks[0], g.Tasks[len(g.Tasks)-1]
	if first.Kind != "potrf" || first.NumPreds() != 0 {
		t.Errorf("first task %s with %d preds", first.Kind, first.NumPreds())
	}
	if last.Kind != "potrf" || len(last.Succs()) != 0 {
		t.Errorf("last task %s with %d succs", last.Kind, len(last.Succs()))
	}
	// TRSM(1,0) depends only on POTRF(0).
	trsm := g.Tasks[1]
	if trsm.Kind != "trsm" || trsm.NumPreds() != 1 || g.Preds(trsm)[0] != first {
		t.Error("TRSM(1,0) should depend exactly on POTRF(0)")
	}
}

func TestCostModelAffinityContrast(t *testing.T) {
	m := platform.IntelV100(platform.Config{})
	// gemm at a large tile is strongly GPU-favourable.
	gemm := Cost(m, "gemm", 1920)
	if gemm[platform.ArchGPU] >= gemm[platform.ArchCPU]/20 {
		t.Errorf("gemm(1920): cpu %.4g gpu %.4g, want >20x GPU speedup", gemm[0], gemm[1])
	}
	// potrf panel at a small tile is CPU-favourable.
	potrf := Cost(m, "potrf", 320)
	if potrf[platform.ArchGPU] <= potrf[platform.ArchCPU] {
		t.Errorf("potrf(320): cpu %.4g gpu %.4g, want CPU-favourable", potrf[0], potrf[1])
	}
	// GPU efficiency grows with tile size.
	small := Cost(m, "gemm", 320)
	large := Cost(m, "gemm", 2560)
	effSmall := flopCount("gemm", 320) / small[platform.ArchGPU]
	effLarge := flopCount("gemm", 2560) / large[platform.ArchGPU]
	if effLarge <= effSmall {
		t.Error("GPU rate should increase with tile size")
	}
}

func TestFootprintAndFlops(t *testing.T) {
	g := Cholesky(params(2, 128))
	for _, task := range g.Tasks {
		if task.Footprint != 128 {
			t.Fatalf("footprint = %d, want tile size", task.Footprint)
		}
		if task.Flops <= 0 {
			t.Fatalf("task %s has no flops", task.Kind)
		}
	}
}

func TestBottomLevelPriorities(t *testing.T) {
	p := params(4, 256)
	p.UserPriorities = true
	g := Cholesky(p)
	// POTRF(0) heads the critical path: strictly larger priority than
	// any other task.
	first := g.Tasks[0]
	for _, task := range g.Tasks[1:] {
		if task.Priority >= first.Priority {
			t.Fatalf("task %s (%v) priority %d >= POTRF(0) %d",
				task.Kind, task.Tag, task.Priority, first.Priority)
		}
	}
	// Priorities weakly decrease along any dependency edge.
	for _, task := range g.Tasks {
		for _, s := range task.Succs() {
			if s.Priority > task.Priority {
				t.Fatalf("priority increases along edge %s->%s", task.Kind, s.Kind)
			}
		}
	}
}

func TestQuickBottomLevelMonotonic(t *testing.T) {
	f := func(tilesRaw uint8) bool {
		tiles := int(tilesRaw%5) + 2
		p := params(tiles, 128)
		p.UserPriorities = true
		for _, g := range []*runtime.Graph{Cholesky(p), LU(p), QR(p)} {
			for _, task := range g.Tasks {
				for _, s := range task.Succs() {
					if s.Priority > task.Priority {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskySimulatesOnAllRoutines(t *testing.T) {
	m := platform.IntelV100(platform.Config{})
	for name, build := range map[string]func(Params) *runtime.Graph{
		"potrf": Cholesky, "getrf": LU, "geqrf": QR,
	} {
		p := Params{Tiles: 6, TileSize: 640, Machine: m}
		g := build(p)
		res, err := sim.Run(m, g, eager.New(), sim.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Makespan <= 0 {
			t.Errorf("%s: makespan %v", name, res.Makespan)
		}
	}
}

func TestMultiPrioSchedulesCholesky(t *testing.T) {
	m := platform.IntelV100(platform.Config{})
	p := Params{Tiles: 8, TileSize: 960, Machine: m}
	g := Cholesky(p)
	res, err := sim.Run(m, g, core.New(core.Defaults()), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: makespan at least the critical path; the serial time is
	// not a hard upper bound (it ignores PCIe transfers) but a run more
	// than 5x above it indicates a broken policy.
	if res.Makespan < g.CriticalPathTime() {
		t.Errorf("makespan %v below critical path %v", res.Makespan, g.CriticalPathTime())
	}
	if res.Makespan > 5*g.SerialTime() {
		t.Errorf("makespan %v far above serial time %v", res.Makespan, g.SerialTime())
	}
}

func TestRealKernelsFactorCorrectly(t *testing.T) {
	p := Params{Tiles: 3, TileSize: 16, Machine: platform.CPUOnly(4)}
	g, verify := CholeskyWithKernels(p, 7)
	eng := &runtime.ThreadedEngine{Machine: platform.CPUOnly(4), Sched: eager.New()}
	if _, err := eng.Run(g); err != nil {
		t.Fatal(err)
	}
	if err := verify(1e-8); err != nil {
		t.Fatal(err)
	}
}

func TestRealKernelsDetectNonSPD(t *testing.T) {
	a := []float64{1, 0, 0, -1} // not positive definite
	if err := potrfKernel(a, 2); err == nil {
		t.Error("potrfKernel accepted a non-SPD tile")
	}
}

func TestPotrfKernelKnownFactor(t *testing.T) {
	// A = [[4,2],[2,3]] -> L = [[2,0],[1,sqrt(2)]].
	a := []float64{4, 2, 2, 3}
	if err := potrfKernel(a, 2); err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 0, 1, math.Sqrt2}
	for i := range want {
		if math.Abs(a[i]-want[i]) > 1e-12 {
			t.Fatalf("L = %v, want %v", a, want)
		}
	}
}

func TestParamsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid params did not panic")
		}
	}()
	Cholesky(Params{Tiles: 0, TileSize: 64, Machine: platform.CPUOnly(1)})
}

func TestHierarchicalCholeskyStructure(t *testing.T) {
	m := platform.IntelV100(platform.Config{})
	p := HierParams{Blocks: 3, SubTiles: 4, TileSize: 480, Machine: m}
	g := HierarchicalCholesky(p)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := len(g.Tasks), HierTaskCount(3, 4); got != want {
		t.Errorf("tasks = %d, want %d", got, want)
	}
	// Mixed granularity: fine tasks at footprint b, coarse updates at
	// footprint SubTiles*b.
	var fine, coarse int
	for _, task := range g.Tasks {
		switch task.Footprint {
		case 480:
			fine++
		case 4 * 480:
			coarse++
		default:
			t.Fatalf("unexpected footprint %d", task.Footprint)
		}
	}
	if fine == 0 || coarse == 0 {
		t.Errorf("fine=%d coarse=%d: want both granularities", fine, coarse)
	}
	// Coarse updates must be strongly GPU-favourable, fine panel tasks
	// CPU-favourable or mildly accelerated.
	for _, task := range g.Tasks {
		if task.Footprint == 4*480 && task.Kind == "gemm" {
			if task.Cost[platform.ArchGPU] >= task.Cost[platform.ArchCPU]/20 {
				t.Fatal("coarse gemm not strongly GPU-favourable")
			}
		}
	}
}

func TestHierarchicalCholeskySimulates(t *testing.T) {
	m := platform.IntelV100(platform.Config{})
	p := HierParams{Blocks: 3, SubTiles: 4, TileSize: 480, Machine: m}
	g := HierarchicalCholesky(p)
	res, err := sim.Run(m, g, core.New(core.Defaults()), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan < g.CriticalPathTime() {
		t.Error("makespan below critical-path bound")
	}
}
