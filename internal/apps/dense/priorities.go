package dense

import (
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
)

// AssignBottomLevelPriorities sets each task's static priority to its
// bottom level: the longest remaining path to a DAG exit, weighted by
// the task's best per-architecture cost. This is the canonical
// expert-style priority (the HEFT upward rank restricted to static
// knowledge) and models CHAMELEON's offline-optimized user priorities,
// which the dmdas scheduler consumes (Section VI-A of the paper:
// "Chameleon ... provides user priorities for these routines, optimized
// by experts offline").
//
// Priorities are scaled to integers (microsecond resolution) because the
// StarPU-style API exposes integer priorities.
func AssignBottomLevelPriorities(g *runtime.Graph) {
	bl := BottomLevels(g)
	for _, t := range g.Tasks {
		t.Priority = int(bl[t.ID] * 1e6)
	}
}

// BottomLevels computes the bottom level (critical path to exit,
// inclusive of the task itself) of every task, keyed by task ID, using
// each task's minimum per-architecture cost as its weight.
func BottomLevels(g *runtime.Graph) map[int64]float64 {
	bl := make(map[int64]float64, len(g.Tasks))
	// Tasks are topologically sorted by ID (STF submission order), so a
	// reverse sweep sees every successor before its predecessors.
	for i := len(g.Tasks) - 1; i >= 0; i-- {
		t := g.Tasks[i]
		best := 0.0
		first := true
		for a := range t.Cost {
			if c, ok := t.BaseCost(platform.ArchID(a)); ok && (first || c < best) {
				best, first = c, false
			}
		}
		maxSucc := 0.0
		for _, s := range t.Succs() {
			if bl[s.ID] > maxSucc {
				maxSucc = bl[s.ID]
			}
		}
		bl[t.ID] = best + maxSucc
	}
	return bl
}
