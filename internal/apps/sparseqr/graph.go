package sparseqr

import (
	"fmt"
	"math"

	"multiprio/internal/platform"
	"multiprio/internal/runtime"
)

// Params configures the task-graph generation over an assembly tree.
type Params struct {
	// PanelWidth is the block-column width (default 256) and RowBlock
	// the block-row height (default 1024) fronts are partitioned into.
	// This is the 2D front partitioning of Agullo, Buttari, Guermouche
	// and Lopez (HiPC 2015): it "optimizes parallelism in the DAG while
	// efficiently utilizing GPUs with appropriately sized tasks" — the
	// property the paper's Section VII credits for the sparse QR
	// results.
	PanelWidth int
	RowBlock   int
	Machine    *platform.Machine
	// UserPriorities assigns bottom-level priorities (QR_MUMPS does NOT
	// provide fine-grained user priorities in the paper — "the
	// fine-grained priorities of the tasks are not set by the user" —
	// so experiments leave this false; it exists for ablations).
	UserPriorities bool
}

func (p Params) panel() int {
	if p.PanelWidth <= 0 {
		return 256
	}
	return p.PanelWidth
}

func (p Params) rowBlock() int {
	if p.RowBlock <= 0 {
		return 1024
	}
	return p.RowBlock
}

// Per-kernel model constants.
const (
	memBandwidth = 4e9  // bytes/s for memory-bound symbolic kernels
	memLatency   = 5e-6 // fixed startup of memory-bound kernels
	gpuLaunch    = 1e-5 // kernel-launch equivalent overhead on GPU
	minCost      = 1e-6
)

// Build generates the multifrontal QR task graph for the matrix
// statistics (tree synthesized deterministically from the name).
func Build(stats MatrixStats, p Params) *runtime.Graph {
	return BuildFromTree(BuildTree(stats), p)
}

// BuildFromTree generates the task graph over an explicit tree.
func BuildFromTree(t *Tree, p Params) *runtime.Graph {
	if p.Machine == nil {
		panic("sparseqr: nil machine")
	}
	g := runtime.NewGraph()

	tiles := make([][][]*runtime.DataHandle, len(t.Fronts))
	cb := make([]*runtime.DataHandle, len(t.Fronts))
	for i := range t.Fronts {
		f := &t.Fronts[i]
		rt, ct := gridOf(f, p)
		tiles[i] = make([][]*runtime.DataHandle, rt)
		for r := 0; r < rt; r++ {
			tiles[i][r] = make([]*runtime.DataHandle, ct)
			for c := 0; c < ct; c++ {
				h := blockHeight(f.Rows, p.rowBlock(), r)
				w := panelWidth(f.Cols, p.panel(), c)
				tiles[i][r][c] = g.NewData(
					fmt.Sprintf("F%d.t%d.%d", f.ID, r, c),
					int64(h)*int64(w)*8,
				)
			}
		}
		if f.Parent >= 0 {
			cbRows := minInt(f.Rows, f.Cols)
			cb[i] = g.NewData(fmt.Sprintf("F%d.cb", f.ID), int64(cbRows)*int64(p.panel())*8)
		}
	}

	// Collect front tasks in postorder (children first) — the order
	// QR_MUMPS traverses the tree, and the order that makes the STF
	// dependencies land correctly — then submit them in one batch.
	var specs []runtime.TaskSpec
	submitted := make([]bool, len(t.Fronts))
	var submit func(fi int)
	submit = func(fi int) {
		if submitted[fi] {
			return
		}
		f := &t.Fronts[fi]
		for _, c := range f.Children {
			submit(c)
		}
		submitted[fi] = true
		specs = frontSpecs(specs, t, fi, tiles, cb, p)
	}
	for _, r := range t.Roots {
		submit(r)
	}
	g.SubmitBatch(specs)
	if p.UserPriorities {
		assignBottomLevels(g)
	}
	return g
}

// gridOf returns the (rowTiles, colPanels) grid of a front.
func gridOf(f *Front, p Params) (rt, ct int) {
	rt = (f.Rows + p.rowBlock() - 1) / p.rowBlock()
	ct = (f.Cols + p.panel() - 1) / p.panel()
	return rt, ct
}

// frontSpecs appends the activate, assemble, and 2D tiled-QR kernel
// task specs (geqrt/unmqr/tsqrt/tsmqr) of one front, then the staging
// of its contribution block for the parent, and returns the extended
// slice.
func frontSpecs(specs []runtime.TaskSpec, t *Tree, fi int, tiles [][][]*runtime.DataHandle, cb []*runtime.DataHandle, p Params) []runtime.TaskSpec {
	f := &t.Fronts[fi]
	rt, ct := gridOf(f, p)
	m := p.Machine
	br, w := p.rowBlock(), p.panel()

	// 1. Activation: allocate and fill the front storage.
	var actAcc []runtime.Access
	var bytes int64
	for r := 0; r < rt; r++ {
		for c := 0; c < ct; c++ {
			actAcc = append(actAcc, runtime.Access{Handle: tiles[fi][r][c], Mode: runtime.W})
			bytes += tiles[fi][r][c].Bytes
		}
	}
	specs = append(specs, runtime.TaskSpec{
		Kind:      "activate",
		Footprint: sizeBucket(bytes),
		Cost:      memCost(m, bytes),
		Accesses:  actAcc,
		Tag:       fi,
	})

	// 2. Assemble each child's contribution block, scattered over the
	// first block column's row tiles so independent assemblies overlap.
	for idx, c := range f.Children {
		row := idx % rt
		acc := []runtime.Access{
			{Handle: cb[c], Mode: runtime.R},
			{Handle: tiles[fi][row][0], Mode: runtime.RW},
		}
		if ct > 1 {
			acc = append(acc, runtime.Access{Handle: tiles[fi][row][1], Mode: runtime.RW})
		}
		specs = append(specs, runtime.TaskSpec{
			Kind:      "assemble",
			Footprint: sizeBucket(cb[c].Bytes),
			Cost:      memCost(m, cb[c].Bytes),
			Accesses:  acc,
			Tag:       fi,
		})
	}

	// 3. 2D tiled QR sweep (flat TS-tree, as PLASMA/qr_mumps fronts).
	kmax := minInt(rt, ct)
	for k := 0; k < kmax; k++ {
		wk := panelWidth(f.Cols, w, k)
		hk := blockHeight(f.Rows, br, k)
		specs = append(specs, runtime.TaskSpec{
			Kind:      "geqrt",
			Footprint: sizeBucket(int64(hk) * int64(wk)),
			Flops:     qrFlops(hk, wk),
			Cost:      panelCost(m, qrFlops(hk, wk), hk*wk),
			Accesses:  []runtime.Access{{Handle: tiles[fi][k][k], Mode: runtime.RW}},
			Tag:       fi,
		})
		for j := k + 1; j < ct; j++ {
			wj := panelWidth(f.Cols, w, j)
			fl := 2 * float64(wk) * float64(hk) * float64(wj)
			specs = append(specs, runtime.TaskSpec{
				Kind:      "unmqr",
				Footprint: sizeBucket(int64(hk) * int64(wj)),
				Flops:     fl,
				Cost:      updateCost(m, fl, hk*wj),
				Accesses: []runtime.Access{
					{Handle: tiles[fi][k][k], Mode: runtime.R},
					{Handle: tiles[fi][k][j], Mode: runtime.RW},
				},
				Tag: fi,
			})
		}
		for i := k + 1; i < rt; i++ {
			hi := blockHeight(f.Rows, br, i)
			fl := 10.0 / 3 * float64(wk) * float64(wk) * float64(hi)
			specs = append(specs, runtime.TaskSpec{
				Kind:      "tsqrt",
				Footprint: sizeBucket(int64(hi) * int64(wk)),
				Flops:     fl,
				Cost:      panelCost(m, fl, hi*wk),
				Accesses: []runtime.Access{
					{Handle: tiles[fi][k][k], Mode: runtime.RW},
					{Handle: tiles[fi][i][k], Mode: runtime.RW},
				},
				Tag: fi,
			})
			for j := k + 1; j < ct; j++ {
				wj := panelWidth(f.Cols, w, j)
				ufl := 4 * float64(wk) * float64(hi) * float64(wj)
				specs = append(specs, runtime.TaskSpec{
					Kind:      "tsmqr",
					Footprint: sizeBucket(int64(hi) * int64(wj)),
					Flops:     ufl,
					Cost:      updateCost(m, ufl, hi*wj),
					Accesses: []runtime.Access{
						{Handle: tiles[fi][i][k], Mode: runtime.R},
						{Handle: tiles[fi][k][j], Mode: runtime.RW},
						{Handle: tiles[fi][i][j], Mode: runtime.RW},
					},
					Tag: fi,
				})
			}
		}
	}

	// 4. Stage the contribution block for the parent.
	if f.Parent >= 0 {
		acc := []runtime.Access{
			{Handle: tiles[fi][rt-1][ct-1], Mode: runtime.R},
			{Handle: cb[fi], Mode: runtime.W},
		}
		specs = append(specs, runtime.TaskSpec{
			Kind:      "stage",
			Footprint: sizeBucket(cb[fi].Bytes),
			Cost:      memCost(m, cb[fi].Bytes),
			Accesses:  acc,
			Tag:       fi,
		})
	}
	return specs
}

// qrFlops is the operation count of a QR panel factorization of an
// h-by-w block (h >= w typical; transposed otherwise).
func qrFlops(h, w int) float64 {
	fh, fw := float64(h), float64(w)
	if fh >= fw {
		return 2 * fw * fw * (fh - fw/3)
	}
	return 2 * fh * fh * (fw - fh/3)
}

// panelWidth returns the width of block-column q.
func panelWidth(cols, b, q int) int {
	w := cols - q*b
	if w > b {
		w = b
	}
	return w
}

// blockHeight returns the height of block-row r.
func blockHeight(rows, br, r int) int {
	h := rows - r*br
	if h > br {
		h = br
	}
	if h < 1 {
		h = 1
	}
	return h
}

// memCost models CPU-only memory-bound kernels.
func memCost(m *platform.Machine, bytes int64) []float64 {
	c := make([]float64, len(m.Archs))
	c[platform.ArchCPU] = math.Max(minCost, memLatency+float64(bytes)/memBandwidth)
	return c
}

// panelCost models panel factorizations (geqrt/tsqrt). QR_MUMPS runs
// panels exclusively on CPU cores (the sequential Householder chains
// vectorize poorly and have no profitable CUDA implementation); the
// GPU-accelerated configuration offloads only the updates (Agullo,
// Buttari, Guermouche, Lopez — HiPC 2015).
func panelCost(m *platform.Machine, flops float64, area int) []float64 {
	c := make([]float64, len(m.Archs))
	cpuPeak := m.Archs[platform.ArchCPU].PeakGFlops * 1e9
	c[platform.ArchCPU] = math.Max(minCost, flops/(cpuPeak*0.35))
	return c
}

// updateCost models the trailing updates (unmqr/tsmqr). Sparse front
// tiles are small and irregular: even large ones reach only a modest
// fraction of the device's DGEMM peak (a few hundred GFlop/s per GPU on
// multifrontal QR updates), which is what keeps CPU workers relevant
// and makes scheduling decisions matter.
func updateCost(m *platform.Machine, flops float64, area int) []float64 {
	c := make([]float64, len(m.Archs))
	cpuPeak := m.Archs[platform.ArchCPU].PeakGFlops * 1e9
	c[platform.ArchCPU] = math.Max(minCost, flops/(cpuPeak*0.60))
	if int(platform.ArchGPU) < len(m.Archs) {
		gpuPeak := m.Archs[platform.ArchGPU].PeakGFlops * 1e9
		a := float64(area)
		eff := 0.06 * a / (a + 500*500)
		if eff > 0 {
			c[platform.ArchGPU] = math.Max(minCost, flops/(gpuPeak*eff)+gpuLaunch)
		}
	}
	return c
}

// sizeBucket buckets a byte/element count to its highest power of two,
// bounding the number of performance-model buckets.
func sizeBucket(n int64) uint64 {
	if n <= 0 {
		return 0
	}
	b := uint64(1)
	for n > 1 {
		n >>= 1
		b <<= 1
	}
	return b
}

// assignBottomLevels mirrors dense.AssignBottomLevelPriorities without
// importing the dense package (kept local to avoid an apps-level cycle
// if dense ever grows a sparse dependency).
func assignBottomLevels(g *runtime.Graph) {
	bl := make(map[int64]float64, len(g.Tasks))
	for i := len(g.Tasks) - 1; i >= 0; i-- {
		t := g.Tasks[i]
		best := math.Inf(1)
		for a := range t.Cost {
			if c, ok := t.BaseCost(platform.ArchID(a)); ok && c < best {
				best = c
			}
		}
		if math.IsInf(best, 1) {
			best = 0
		}
		maxSucc := 0.0
		for _, s := range t.Succs() {
			if bl[s.ID] > maxSucc {
				maxSucc = bl[s.ID]
			}
		}
		bl[t.ID] = best + maxSucc
		t.Priority = int(bl[t.ID] * 1e6)
	}
}
