package sparseqr

import (
	"math"
	"testing"

	"multiprio/internal/core"
	"multiprio/internal/platform"
	"multiprio/internal/sched/eager"
	"multiprio/internal/sim"
)

func TestMatrixTableMatchesPaper(t *testing.T) {
	if len(Matrices) != 10 {
		t.Fatalf("%d matrices, want 10", len(Matrices))
	}
	r, ok := ByName("Rucci1")
	if !ok || r.Rows != 1977885 || r.OpCount != 5527 {
		t.Errorf("Rucci1 stats wrong: %+v", r)
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("ByName found a nonexistent matrix")
	}
}

func TestTreeMatchesOpCount(t *testing.T) {
	for _, stats := range Matrices {
		tr := BuildTree(stats)
		got := tr.TotalFlops() / 1e9
		rel := math.Abs(got-stats.OpCount) / stats.OpCount
		if rel > 0.10 {
			t.Errorf("%s: generated %.0f Gflop vs published %.0f (%.1f%% off)",
				stats.Name, got, stats.OpCount, rel*100)
		}
	}
}

func TestTreeIsDeterministic(t *testing.T) {
	a := BuildTree(Matrices[0])
	b := BuildTree(Matrices[0])
	if len(a.Fronts) != len(b.Fronts) {
		t.Fatal("front counts differ")
	}
	for i := range a.Fronts {
		if a.Fronts[i].Rows != b.Fronts[i].Rows || a.Fronts[i].Cols != b.Fronts[i].Cols {
			t.Fatal("front dims differ between identical builds")
		}
	}
}

func TestTreeStructure(t *testing.T) {
	tr := BuildTree(Matrices[2]) // e18
	if len(tr.Roots) == 0 {
		t.Fatal("no roots")
	}
	// Parent indices exceed child indices (sweep invariant).
	for i := range tr.Fronts {
		f := &tr.Fronts[i]
		if f.Parent >= 0 && f.Parent <= i {
			t.Fatalf("front %d has parent %d (must be larger index)", i, f.Parent)
		}
		for _, c := range f.Children {
			if tr.Fronts[c].Parent != i {
				t.Fatalf("child link broken at front %d", i)
			}
		}
		if f.Rows < 8 || f.Cols < 8 {
			t.Fatalf("degenerate front %d: %dx%d", i, f.Rows, f.Cols)
		}
	}
}

func TestFrontSizeIrregularity(t *testing.T) {
	tr := BuildTree(Matrices[5]) // TF17
	minC, maxC := 1<<30, 0
	for i := range tr.Fronts {
		c := tr.Fronts[i].Cols
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if maxC < 20*minC {
		t.Errorf("front widths %d..%d: not irregular enough for a multifrontal workload", minC, maxC)
	}
}

func TestGraphStructure(t *testing.T) {
	m := platform.IntelV100(platform.Config{})
	g := Build(Matrices[0], Params{Machine: m})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, task := range g.Tasks {
		kinds[task.Kind]++
	}
	for _, k := range []string{"activate", "assemble", "geqrt", "tsqrt", "tsmqr", "stage"} {
		if kinds[k] == 0 {
			t.Errorf("no %s tasks (%v)", k, kinds)
		}
	}
	// Symbolic kernels are CPU-only; updates run on both.
	for _, task := range g.Tasks {
		switch task.Kind {
		case "activate", "assemble", "stage":
			if task.CanRun(platform.ArchGPU) {
				t.Fatalf("%s must be CPU-only", task.Kind)
			}
		case "tsmqr", "unmqr":
			if !task.CanRun(platform.ArchCPU) || !task.CanRun(platform.ArchGPU) {
				t.Fatal("updates must run on both architectures")
			}
		}
	}
}

func TestGranularitySpread(t *testing.T) {
	m := platform.IntelV100(platform.Config{})
	g := Build(Matrices[5], Params{Machine: m})
	minC, maxC := math.Inf(1), 0.0
	for _, task := range g.Tasks {
		if task.Kind != "tsmqr" && task.Kind != "unmqr" {
			continue
		}
		c := task.Cost[platform.ArchCPU]
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if maxC < 100*minC {
		t.Errorf("update cost spread %.2g..%.2g: want >= 2 orders of magnitude", minC, maxC)
	}
}

func TestChildFactorizationPrecedesParent(t *testing.T) {
	m := platform.IntelV100(platform.Config{})
	tr := BuildTree(Matrices[0])
	g := BuildFromTree(tr, Params{Machine: m})
	res, err := sim.Run(m, g, eager.New(), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("no makespan")
	}
	// For every front: its activate task must end before any of its
	// geqrt tasks start (handle dependencies), and its stage task must
	// end before the parent's assemble of that child starts. This is
	// implied by STF, spot-check via timestamps per front tag.
	type times struct{ actEnd, firstGeqrt float64 }
	perFront := map[int]*times{}
	for _, task := range g.Tasks {
		fi := task.Tag.(int)
		tt := perFront[fi]
		if tt == nil {
			tt = &times{firstGeqrt: math.Inf(1)}
			perFront[fi] = tt
		}
		switch task.Kind {
		case "activate":
			tt.actEnd = task.EndAt
		case "geqrt":
			if task.StartAt < tt.firstGeqrt {
				tt.firstGeqrt = task.StartAt
			}
		}
	}
	for fi, tt := range perFront {
		if tt.firstGeqrt < tt.actEnd-1e-12 {
			t.Fatalf("front %d factorized before activation completed", fi)
		}
	}
}

func TestUserPrioritiesMonotonic(t *testing.T) {
	m := platform.IntelV100(platform.Config{})
	g := Build(Matrices[0], Params{Machine: m, UserPriorities: true})
	for _, task := range g.Tasks {
		for _, s := range task.Succs() {
			if s.Priority > task.Priority {
				t.Fatal("priority increases along an edge")
			}
		}
	}
}

func TestMultiPrioCompletesSparseQR(t *testing.T) {
	m := platform.IntelV100(platform.Config{})
	g := Build(Matrices[1], Params{Machine: m})
	res, err := sim.Run(m, g, core.New(core.Defaults()), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan < g.CriticalPathTime() {
		t.Errorf("makespan %v below critical path %v", res.Makespan, g.CriticalPathTime())
	}
}

func TestSizeBucket(t *testing.T) {
	cases := map[int64]uint64{0: 0, 1: 1, 2: 2, 3: 2, 4: 4, 1023: 512, 1024: 1024}
	for in, want := range cases {
		if got := sizeBucket(in); got != want {
			t.Errorf("sizeBucket(%d) = %d, want %d", in, got, want)
		}
	}
}
