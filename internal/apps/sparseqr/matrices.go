// Package sparseqr generates the task graphs of a multifrontal sparse QR
// factorization, standing in for QR_MUMPS in the paper's Section VI-C.
//
// The real solver turns a sparse matrix (ordered with METIS) into an
// assembly tree of dense fronts; each front is partitioned into
// block-column panels factorized with QR kernels, children assemble
// their contribution blocks into their parent, and the resulting DAG is
// highly irregular: task granularities span orders of magnitude, small
// fronts near the leaves want CPUs, large panels near the root want
// GPUs (Agullo, Buttari, Guermouche, Lopez — HiPC 2015).
//
// Since the SuiteSparse matrices and METIS are out of scope, the
// generator synthesizes assembly trees that reproduce the published
// per-matrix statistics of the paper's Fig. 7 — rows, columns, nonzeros
// and, most importantly, the operation count, which is matched to a few
// percent by rescaling front dimensions. The irregularity profile
// (front-size distribution skew, tree depth) is what stresses the
// schedulers, and it is preserved.
package sparseqr

// MatrixStats records one row of the paper's Fig. 7 table.
type MatrixStats struct {
	Name     string
	Rows     int
	Cols     int
	Nonzeros int
	// OpCount is the factorization operation count in Gflop.
	OpCount float64
}

// Matrices is the evaluation set of the paper's Fig. 7, in published
// order (sorted by Gflop count as printed).
var Matrices = []MatrixStats{
	{Name: "cat_ears_4_4", Rows: 19020, Cols: 44448, Nonzeros: 132888, OpCount: 236},
	{Name: "flower_7_4", Rows: 27693, Cols: 67593, Nonzeros: 202218, OpCount: 889},
	{Name: "e18", Rows: 24617, Cols: 38602, Nonzeros: 156466, OpCount: 1439},
	{Name: "flower_8_4", Rows: 55081, Cols: 125361, Nonzeros: 375266, OpCount: 3072},
	{Name: "Rucci1", Rows: 1977885, Cols: 109900, Nonzeros: 7791168, OpCount: 5527},
	{Name: "TF17", Rows: 38132, Cols: 48630, Nonzeros: 586218, OpCount: 15787},
	{Name: "neos2", Rows: 132568, Cols: 134128, Nonzeros: 685087, OpCount: 31018},
	{Name: "GL7d24", Rows: 21074, Cols: 105054, Nonzeros: 593892, OpCount: 26825},
	{Name: "TF18", Rows: 95368, Cols: 123867, Nonzeros: 1597545, OpCount: 229042},
	{Name: "mk13-b5", Rows: 135135, Cols: 270270, Nonzeros: 810810, OpCount: 352413},
}

// ByName returns the stats of a matrix from the evaluation set.
func ByName(name string) (MatrixStats, bool) {
	for _, m := range Matrices {
		if m.Name == name {
			return m, true
		}
	}
	return MatrixStats{}, false
}
