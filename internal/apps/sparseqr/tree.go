package sparseqr

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Front is one dense frontal matrix of the assembly tree.
type Front struct {
	ID int
	// Rows and Cols are the dense dimensions m_f × n_f (m_f >= n_f is
	// not required for QR but typical away from the root).
	Rows, Cols int
	Parent     int // -1 at roots
	Children   []int
	Depth      int
}

// Tree is a synthetic assembly tree.
type Tree struct {
	Fronts []Front
	Roots  []int
	Stats  MatrixStats
}

// frontFlops returns the QR operation count of an m×n front:
// 2·n²·(m − n/3) for m ≥ n, and 2·m²·(n − m/3) transposed otherwise.
func frontFlops(m, n int) float64 {
	fm, fn := float64(m), float64(n)
	if fm >= fn {
		return 2 * fn * fn * (fm - fn/3)
	}
	return 2 * fm * fm * (fn - fm/3)
}

// TotalFlops sums the front operation counts.
func (t *Tree) TotalFlops() float64 {
	var sum float64
	for i := range t.Fronts {
		sum += frontFlops(t.Fronts[i].Rows, t.Fronts[i].Cols)
	}
	return sum
}

// BuildTree synthesizes the assembly tree of a matrix from its published
// statistics. Deterministic per matrix name.
//
// Construction: a random forest biased towards deep, unbalanced trees;
// column counts drawn from a heavy-tailed distribution and sorted so
// small fronts sit at the leaves and large fronts at the roots (the
// multifrontal norm: fronts grow towards the root as eliminated columns
// accumulate fill); row excess factors derived from the matrix aspect
// ratio. Finally all dimensions are rescaled so the total operation
// count matches the published Gflop figure.
func BuildTree(stats MatrixStats) *Tree {
	h := fnv.New64a()
	h.Write([]byte(stats.Name))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))

	// Front count: multifrontal trees have many small fronts near the
	// leaves and few large ones at the roots; enough fronts for real
	// tree parallelism and plenty of CPU-sized tasks, capped to keep
	// task counts tractable.
	nf := stats.Cols / 60
	if nf < 60 {
		nf = 60
	}
	if nf > 3000 {
		nf = 3000
	}

	t := &Tree{Stats: stats}
	t.Fronts = make([]Front, nf)

	// Front widths: lognormal spread (small fronts dominate in count,
	// large ones in work, none single-handedly dominating), sorted
	// ascending so the biggest fronts sit nearest the roots — the shape
	// of METIS nested-dissection assembly trees.
	cols := make([]float64, nf)
	var colSum float64
	for i := range cols {
		cols[i] = math.Exp(rng.NormFloat64() * 1.1)
		colSum += cols[i]
	}
	sortFloats(cols)
	scaleCols := float64(stats.Cols) / colSum
	aspect := float64(stats.Rows) / float64(stats.Cols)

	for i := range t.Fronts {
		c := int(cols[i]*scaleCols) + 8
		// Row excess: leaves carry the original matrix rows (large for
		// overdetermined matrices), roots are squarer.
		excess := 1.2 + rng.Float64()*2*math.Max(0.3, math.Min(aspect, 6))
		r := int(float64(c) * excess)
		t.Fronts[i] = Front{ID: i, Rows: r, Cols: c, Parent: -1}
	}

	// Parent assignment: front i attaches to a uniformly chosen
	// larger-indexed front. Expected depth is O(log nf) with wide
	// fan-ins — shallow bushy trees with abundant tree-level
	// parallelism, as nested dissection produces.
	for i := 0; i < nf-1; i++ {
		p := i + 1 + rng.Intn(nf-i-1)
		t.Fronts[i].Parent = p
		t.Fronts[p].Children = append(t.Fronts[p].Children, i)
	}
	for i := range t.Fronts {
		if t.Fronts[i].Parent == -1 {
			t.Roots = append(t.Roots, i)
		}
	}
	computeDepths(t)

	// Rescale dimensions to hit the published op count. Flops scale
	// cubically with uniform dimension scaling; two rounds absorb the
	// rounding error.
	target := stats.OpCount * 1e9
	for round := 0; round < 3; round++ {
		cur := t.TotalFlops()
		if cur <= 0 {
			break
		}
		s := math.Cbrt(target / cur)
		for i := range t.Fronts {
			f := &t.Fronts[i]
			f.Rows = maxInt(8, int(float64(f.Rows)*s))
			f.Cols = maxInt(8, int(float64(f.Cols)*s))
		}
	}
	return t
}

func computeDepths(t *Tree) {
	// Fronts are ordered so parents have larger indices; sweep from the
	// roots downward.
	for i := len(t.Fronts) - 1; i >= 0; i-- {
		f := &t.Fronts[i]
		if f.Parent >= 0 {
			f.Depth = t.Fronts[f.Parent].Depth + 1
		}
	}
}

func sortFloats(x []float64) {
	// Small n; insertion sort keeps the package dependency-light.
	for i := 1; i < len(x); i++ {
		v := x[i]
		j := i - 1
		for j >= 0 && x[j] > v {
			x[j+1] = x[j]
			j--
		}
		x[j+1] = v
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
