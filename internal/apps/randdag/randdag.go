// Package randdag generates layered random task graphs in the spirit of
// the STG benchmark suite (Tobita & Kasahara): configurable width,
// depth, edge density, architecture-affinity mix and granularity
// spread. The paper's applications cover three structured DAG families;
// random graphs complement them as a robustness check — a scheduler
// that only wins on structured DAGs has overfit.
package randdag

import (
	"fmt"
	"math"
	"math/rand"

	"multiprio/internal/platform"
	"multiprio/internal/runtime"
)

// Params configures one random DAG.
type Params struct {
	// Layers and Width shape the graph: Width tasks per layer.
	Layers, Width int
	// EdgeProb is the probability of a dependency from a task to each
	// task of the next layer (via shared data handles). Defaults 0.25.
	EdgeProb float64
	// GPUShare is the fraction of tasks with a (strongly accelerated)
	// GPU implementation; the rest are CPU-only. Defaults 0.5.
	GPUShare float64
	// GranularitySpread is the ratio between the largest and smallest
	// task costs (log-uniform). Defaults 10.
	GranularitySpread float64
	// CommuteShare is the fraction of tasks that additionally update a
	// shared accumulator handle in Commute mode (TBFMM-style force
	// reductions), exercising the engines' execution-time mutual
	// exclusion. Default 0.
	CommuteShare float64
	// TypedFraction restricts a fraction of the accelerated tasks to the
	// GPU class alone (TypedDAG-style affinity constraints): a typed task
	// loses its CPU implementation, so only GPU workers are capable and
	// every scheduler must honor the mask. Default 0 — and like
	// CommuteShare, 0 draws no extra randoms, leaving existing seeds'
	// graphs untouched.
	TypedFraction float64
	// MeanCost is the average CPU execution time in seconds. Defaults
	// 5 ms.
	MeanCost float64
	Machine  *platform.Machine
	Seed     int64
}

func (p Params) defaults() Params {
	if p.EdgeProb <= 0 {
		p.EdgeProb = 0.25
	}
	if p.GPUShare < 0 {
		p.GPUShare = 0
	} else if p.GPUShare == 0 {
		p.GPUShare = 0.5
	}
	if p.GranularitySpread < 1 {
		p.GranularitySpread = 10
	}
	if p.MeanCost <= 0 {
		p.MeanCost = 5e-3
	}
	return p
}

// Build generates the graph. Deterministic per seed.
func Build(p Params) *runtime.Graph {
	if p.Machine == nil {
		panic("randdag: nil machine")
	}
	if p.Layers < 1 || p.Width < 1 {
		panic(fmt.Sprintf("randdag: %d layers x %d width", p.Layers, p.Width))
	}
	p = p.defaults()
	rng := rand.New(rand.NewSource(p.Seed))
	n := p.Layers * p.Width
	nh := n
	if p.CommuteShare > 0 {
		nh++
	}
	g := runtime.NewGraphWithCapacity(n, nh)

	// Commuting tasks all update one shared accumulator; created lazily
	// so CommuteShare == 0 leaves the random stream of existing seeds
	// untouched.
	var accum *runtime.DataHandle
	if p.CommuteShare > 0 {
		accum = g.NewData("acc", 4096)
	}

	// One output handle per task; an edge is expressed as the consumer
	// reading the producer's output.
	outs := make([][]*runtime.DataHandle, p.Layers)
	for l := range outs {
		outs[l] = make([]*runtime.DataHandle, p.Width)
		for i := range outs[l] {
			outs[l][i] = g.NewData(fmt.Sprintf("d%d.%d", l, i), int64(rng.Intn(1<<20)+4096))
		}
	}

	// Specs are generated up front (same RNG draw order as the former
	// per-task Submit loop) and submitted in one batch: for million-task
	// graphs this is the difference between one allocation per task and
	// a handful of arena chunks.
	specs := make([]runtime.TaskSpec, 0, n)
	spreadLog := math.Log(p.GranularitySpread)
	for l := 0; l < p.Layers; l++ {
		for i := 0; i < p.Width; i++ {
			// Log-uniform cost in [mean/sqrt(spread), mean*sqrt(spread)].
			f := math.Exp((rng.Float64() - 0.5) * spreadLog)
			cpu := p.MeanCost * f
			cost := make([]float64, len(p.Machine.Archs))
			cost[platform.ArchCPU] = cpu
			kind := "host"
			if int(platform.ArchGPU) < len(p.Machine.Archs) && rng.Float64() < p.GPUShare {
				// 10-40x accelerated, plus a launch floor.
				cost[platform.ArchGPU] = cpu/(10+30*rng.Float64()) + 1e-5
				kind = "accel"
				if p.TypedFraction > 0 && rng.Float64() < p.TypedFraction {
					cost[platform.ArchCPU] = 0 // GPU-only: CPU not capable
					kind = "typed"
				}
			}
			acc := []runtime.Access{{Handle: outs[l][i], Mode: runtime.W}}
			if l > 0 {
				for j := 0; j < p.Width; j++ {
					if rng.Float64() < p.EdgeProb {
						acc = append(acc, runtime.Access{Handle: outs[l-1][j], Mode: runtime.R})
					}
				}
			}
			if accum != nil && rng.Float64() < p.CommuteShare {
				acc = append(acc, runtime.Access{Handle: accum, Mode: runtime.Commute})
			}
			specs = append(specs, runtime.TaskSpec{
				Kind:      kind,
				Footprint: uint64(10 * math.Round(cpu*1e4)), // bucketed by size
				Flops:     cpu * 1e9,
				Cost:      cost,
				Accesses:  acc,
				Priority:  rng.Intn(100),
			})
		}
	}
	g.SubmitBatch(specs)
	return g
}
