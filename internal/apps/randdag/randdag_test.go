package randdag

import (
	"testing"
	"testing/quick"

	"multiprio/internal/core"
	"multiprio/internal/platform"
	"multiprio/internal/sched/eager"
	"multiprio/internal/sim"
)

func TestBuildShape(t *testing.T) {
	m := platform.IntelV100(platform.Config{})
	g := Build(Params{Layers: 5, Width: 8, Machine: m, Seed: 3})
	if len(g.Tasks) != 40 {
		t.Fatalf("tasks = %d, want 40", len(g.Tasks))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// First layer has no predecessors.
	for _, task := range g.Tasks[:8] {
		if task.NumPreds() != 0 {
			t.Fatal("layer-0 task has predecessors")
		}
	}
	// Some cross-layer edges exist.
	edges := 0
	for _, task := range g.Tasks {
		edges += len(task.Succs())
	}
	if edges == 0 {
		t.Fatal("no edges generated")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	m := platform.IntelV100(platform.Config{})
	a := Build(Params{Layers: 4, Width: 6, Machine: m, Seed: 11})
	b := Build(Params{Layers: 4, Width: 6, Machine: m, Seed: 11})
	c := Build(Params{Layers: 4, Width: 6, Machine: m, Seed: 12})
	if len(a.Tasks) != len(b.Tasks) {
		t.Fatal("same seed, different task counts")
	}
	sameCost := true
	for i := range a.Tasks {
		if a.Tasks[i].Cost[0] != b.Tasks[i].Cost[0] {
			t.Fatal("same seed, different costs")
		}
		if a.Tasks[i].Cost[0] != c.Tasks[i].Cost[0] {
			sameCost = false
		}
	}
	if sameCost {
		t.Error("different seeds produced identical graphs")
	}
}

func TestGranularitySpreadRespected(t *testing.T) {
	m := platform.IntelV100(platform.Config{})
	g := Build(Params{Layers: 10, Width: 20, GranularitySpread: 100, Machine: m, Seed: 5})
	min, max := 1e18, 0.0
	for _, task := range g.Tasks {
		c := task.Cost[platform.ArchCPU]
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max/min < 20 {
		t.Errorf("cost spread %v, want >= 20 with spread=100", max/min)
	}
}

func TestMixedAffinity(t *testing.T) {
	m := platform.IntelV100(platform.Config{})
	g := Build(Params{Layers: 6, Width: 20, GPUShare: 0.5, Machine: m, Seed: 7})
	accel, host := 0, 0
	for _, task := range g.Tasks {
		if task.CanRun(platform.ArchGPU) {
			accel++
		} else {
			host++
		}
	}
	if accel == 0 || host == 0 {
		t.Errorf("affinity mix degenerate: %d accel, %d host", accel, host)
	}
}

func TestQuickAlwaysSchedulable(t *testing.T) {
	m := platform.IntelV100(platform.Config{})
	f := func(seed int64, layers, width uint8) bool {
		g := Build(Params{
			Layers: int(layers%6) + 1, Width: int(width%10) + 1,
			Machine: m, Seed: seed,
		})
		if g.Validate() != nil {
			return false
		}
		if _, err := sim.Run(m, g, core.New(core.Defaults()), sim.Options{}); err != nil {
			return false
		}
		g.ResetRun()
		_, err := sim.Run(m, g, eager.New(), sim.Options{})
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestTypedFractionZeroLeavesStreamUntouched(t *testing.T) {
	m := platform.IntelV100(platform.Config{})
	base := Build(Params{Layers: 5, Width: 8, CommuteShare: 0.3, Machine: m, Seed: 17})
	same := Build(Params{Layers: 5, Width: 8, CommuteShare: 0.3, TypedFraction: 0, Machine: m, Seed: 17})
	for i := range base.Tasks {
		if base.Tasks[i].Cost[0] != same.Tasks[i].Cost[0] ||
			base.Tasks[i].Priority != same.Tasks[i].Priority ||
			len(base.Tasks[i].Accesses) != len(same.Tasks[i].Accesses) {
			t.Fatalf("TypedFraction=0 perturbed the random stream at task %d", i)
		}
	}
}

func TestTypedFractionRestrictsToGPU(t *testing.T) {
	m := platform.IntelV100(platform.Config{})
	g := Build(Params{Layers: 6, Width: 10, GPUShare: 0.8, TypedFraction: 0.6, Machine: m, Seed: 9})
	typed := 0
	for _, task := range g.Tasks {
		if task.Kind != "typed" {
			continue
		}
		typed++
		if task.CanRun(platform.ArchCPU) {
			t.Errorf("typed task %d still runs on CPU", task.ID)
		}
		if !task.CanRun(platform.ArchGPU) {
			t.Errorf("typed task %d runs nowhere", task.ID)
		}
	}
	if typed == 0 {
		t.Fatal("no typed tasks generated at TypedFraction=0.6")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
