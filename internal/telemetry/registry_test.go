package telemetry

import (
	"math"
	"sync"
	"testing"
)

// TestBucketIndex pins the log2 bucket geometry: exact powers of two
// land in the bucket whose bound equals them, everything else in the
// next bound up, and out-of-range values clamp to the edge buckets.
func TestBucketIndex(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0},
		{-1, 0},
		{math.Ldexp(1, histMinExp), 0},      // exactly the smallest bound
		{math.Ldexp(1, histMinExp) / 2, 0},  // below resolution
		{1.0, -histMinExp},                  // 2^0 → bound 1
		{1.5, -histMinExp + 1},              // (1,2] → bound 2
		{2.0, -histMinExp + 1},              // 2^1 → bound 2
		{3.0, -histMinExp + 2},              // (2,4] → bound 4
		{math.Ldexp(1, histMaxExp), NumBuckets - 1}, // largest finite bound
		{math.Ldexp(1, histMaxExp) + 1, NumBuckets}, // overflow → +Inf
		{math.Inf(1), NumBuckets},
		{math.NaN(), NumBuckets},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%g) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every value must fall in the first bucket whose bound contains it.
	for i, b := range histBounds {
		if got := bucketIndex(b); got != i {
			t.Errorf("bound %g maps to bucket %d, want %d", b, got, i)
		}
	}
}

// TestHistogramBoundsExact checks the bounds are exact powers of two in
// ascending order and that HistogramBounds returns a defensive copy.
func TestHistogramBoundsExact(t *testing.T) {
	b := HistogramBounds()
	if len(b) != NumBuckets {
		t.Fatalf("len = %d, want %d", len(b), NumBuckets)
	}
	for i, v := range b {
		if want := math.Ldexp(1, histMinExp+i); v != want {
			t.Errorf("bound[%d] = %g, want %g", i, v, want)
		}
		if i > 0 && b[i] <= b[i-1] {
			t.Errorf("bounds not ascending at %d", i)
		}
	}
	b[0] = 42
	if HistogramBounds()[0] == 42 {
		t.Error("HistogramBounds shares storage with the package state")
	}
}

// TestCounterGaugeHistogram covers the three metric kinds' recording
// semantics and the snapshot's cumulative-bucket construction.
func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "a counter", "k")
	c.With("x").Add(2)
	c.With("x").Inc()
	c.With("y").Inc()
	if v := c.With("x").Value(); v != 3 {
		t.Errorf("counter = %g, want 3", v)
	}

	g := r.NewGauge("g", "a gauge", "")
	g.With("").Set(7)
	g.With("").Add(-2)
	if v := g.With("").Value(); v != 5 {
		t.Errorf("gauge = %g, want 5", v)
	}

	h := r.NewHistogram("h_seconds", "a histogram", "t")
	h.With("a").Observe(1.0) // bucket bound 1
	h.With("a").Observe(1.5) // bucket bound 2
	h.With("a").Observe(0)   // bucket 0

	snap := r.Snapshot()
	var hs *FamilySnapshot
	for i := range snap.Families {
		if snap.Families[i].Name == "h_seconds" {
			hs = &snap.Families[i]
		}
	}
	if hs == nil || len(hs.Metrics) != 1 {
		t.Fatalf("histogram family missing from snapshot: %+v", snap.Families)
	}
	m := hs.Metrics[0]
	if m.Count != 3 || m.Sum != 2.5 {
		t.Errorf("count/sum = %d/%g, want 3/2.5", m.Count, m.Sum)
	}
	if len(m.Buckets) != NumBuckets+1 {
		t.Fatalf("bucket count = %d", len(m.Buckets))
	}
	for i := 1; i < len(m.Buckets); i++ {
		if m.Buckets[i] < m.Buckets[i-1] {
			t.Fatalf("cumulative buckets decrease at %d", i)
		}
	}
	if m.Buckets[NumBuckets] != m.Count {
		t.Errorf("+Inf bucket %d != count %d", m.Buckets[NumBuckets], m.Count)
	}
	if m.Buckets[0] != 1 {
		t.Errorf("bucket[0] = %d, want 1 (the zero observation)", m.Buckets[0])
	}
	if idx := bucketIndex(1.0); m.Buckets[idx] != 2 {
		t.Errorf("cum bucket at bound 1 = %d, want 2", m.Buckets[idx])
	}
}

// TestFamilyReregistration: same shape returns the same family; a
// different shape is a programming error.
func TestFamilyReregistration(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("dup", "h", "l")
	if b := r.NewCounter("dup", "h", "l"); a != b {
		t.Error("same-shape re-registration made a new family")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.NewGauge("dup", "h", "l")
}

// TestConcurrentRecording hammers one family from many goroutines; run
// under -race this is the lock-cheapness proof, and the final counts
// must be exact.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("cc_total", "", "w")
	h := r.NewHistogram("hh_seconds", "", "w")
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w%4))
			for i := 0; i < each; i++ {
				c.With(lbl).Inc()
				h.With(lbl).Observe(float64(i%7) * 0.25)
			}
		}(w)
	}
	wg.Wait()
	var total float64
	var obsCount uint64
	for _, f := range r.Snapshot().Families {
		for _, m := range f.Metrics {
			if f.Name == "cc_total" {
				total += m.Value
			}
			if f.Name == "hh_seconds" {
				obsCount += m.Count
			}
		}
	}
	if total != workers*each {
		t.Errorf("counter total = %g, want %d", total, workers*each)
	}
	if obsCount != workers*each {
		t.Errorf("histogram count = %d, want %d", obsCount, workers*each)
	}
}
