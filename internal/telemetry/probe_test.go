package telemetry

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"multiprio/internal/obs"
	"multiprio/internal/runtime"
)

// familyValue digs a single metric value out of a snapshot.
func familyValue(t *testing.T, s Snapshot, family, label string) float64 {
	t.Helper()
	for _, f := range s.Families {
		if f.Name != family {
			continue
		}
		for _, m := range f.Metrics {
			if m.LabelValue == label {
				return m.Value
			}
		}
	}
	t.Fatalf("metric %s{%q} not found", family, label)
	return 0
}

// familyHist digs a histogram instance out of a snapshot.
func familyHist(t *testing.T, s Snapshot, family, label string) MetricSnapshot {
	t.Helper()
	for _, f := range s.Families {
		if f.Name != family {
			continue
		}
		for _, m := range f.Metrics {
			if m.LabelValue == label {
				return m
			}
		}
	}
	t.Fatalf("histogram %s{%q} not found", family, label)
	return MetricSnapshot{}
}

// TestProbeTaskDone: a TaskDone decision must feed the tenant queue and
// sojourn histograms (queue = A−B, sojourn = At−B), the completion
// counter, and the per-worker busy counter resolved via RunStart.
func TestProbeTaskDone(t *testing.T) {
	p := NewProbe()
	p.SetTenantFunc(func(id int64) string { return fmt.Sprintf("t%d", id%2) })
	p.Decision(obs.Decision{Kind: obs.TaskDone, At: 10, A: 4, B: 1, Task: 1, Worker: 3})
	p.Decision(obs.Decision{Kind: obs.TaskDone, At: 6, A: 2, B: 2, Task: 2, Worker: 0})

	s := p.Snapshot()
	q := familyHist(t, s, "multiprio_tenant_queue_seconds", "t1")
	if q.Count != 1 || q.Sum != 3 { // A−B = 4−1
		t.Errorf("t1 queue count/sum = %d/%g, want 1/3", q.Count, q.Sum)
	}
	soj := familyHist(t, s, "multiprio_tenant_sojourn_seconds", "t1")
	if soj.Sum != 9 { // At−B = 10−1
		t.Errorf("t1 sojourn sum = %g, want 9", soj.Sum)
	}
	if v := familyValue(t, s, "multiprio_tasks_completed_total", "t0"); v != 1 {
		t.Errorf("t0 completions = %g, want 1", v)
	}
	// No RunStart happened, so the worker falls back to the wN label.
	if v := familyValue(t, s, "multiprio_worker_busy_seconds_total", "w3"); v != 6 {
		t.Errorf("w3 busy = %g, want 6 (At−A)", v)
	}
	if v := familyValue(t, s, "multiprio_sched_decisions_total", "done"); v != 2 {
		t.Errorf("done decisions = %g, want 2", v)
	}
}

// TestProbeCounterTracks: track samples mirror into the track gauge and
// project onto the typed memory/stream gauges.
func TestProbeCounterTracks(t *testing.T) {
	p := NewProbe()
	p.Counter("mem.used[gpu0]", 1, 1, 4096)
	p.Counter("stream.inflight[t2]", 1, 2, 5)
	p.Counter("stream.pending[t2]", 1, 3, 7)
	p.Counter("sim.ready", 1, 4, 9)

	s := p.Snapshot()
	if v := familyValue(t, s, "multiprio_mem_used_bytes", "gpu0"); v != 4096 {
		t.Errorf("mem gauge = %g", v)
	}
	if v := familyValue(t, s, "multiprio_stream_inflight", "t2"); v != 5 {
		t.Errorf("inflight gauge = %g", v)
	}
	if v := familyValue(t, s, "multiprio_stream_pending", "t2"); v != 7 {
		t.Errorf("pending gauge = %g", v)
	}
	if v := familyValue(t, s, "multiprio_track_value", "sim.ready"); v != 9 {
		t.Errorf("track gauge = %g", v)
	}
}

// TestProbeRunLifecycle: RunStart/RunEnd drive the in-flight gauge, the
// runs counter by result, the health state, and fold the result's
// fault/spec/stream summaries into counters.
func TestProbeRunLifecycle(t *testing.T) {
	p := NewProbe()
	h := p.Health()

	p.RunStart(runtime.RunInfo{Tasks: 3, Scheduler: "x", Engine: "sim"})
	if v := familyValue(t, p.Snapshot(), "multiprio_runs_inflight", ""); v != 1 {
		t.Errorf("inflight = %g, want 1", v)
	}
	res := &runtime.Result{
		Makespan: 2.0,
		Workers:  []runtime.WorkerStat{{Name: "cpu0", Busy: 1.5}},
		Faults:   runtime.FaultStats{Kills: 1, Retries: 2, TransferFailures: 3},
		Stream: &runtime.StreamStats{Tenants: []string{"a", "b"},
			Admitted: []int{4, 5}, Deferred: []int{1, 0}, MaxPending: []int{2, 0}},
	}
	res.Spec.Launched, res.Spec.ReplicaWins, res.Spec.Cancelled = 6, 2, 4
	p.RunEnd(res, nil)

	s := p.Snapshot()
	if v := familyValue(t, s, "multiprio_runs_inflight", ""); v != 0 {
		t.Errorf("inflight after end = %g", v)
	}
	if v := familyValue(t, s, "multiprio_runs_total", "ok"); v != 1 {
		t.Errorf("runs ok = %g", v)
	}
	if v := familyValue(t, s, "multiprio_worker_idle_seconds_total", "cpu0"); v != 0.5 {
		t.Errorf("idle = %g, want 0.5", v)
	}
	if v := familyValue(t, s, "multiprio_faults_retries_total", ""); v != 2 {
		t.Errorf("retries = %g", v)
	}
	if v := familyValue(t, s, "multiprio_spec_replicas_total", ""); v != 6 {
		t.Errorf("spec launched = %g", v)
	}
	if v := familyValue(t, s, "multiprio_stream_admitted_total", "b"); v != 5 {
		t.Errorf("stream admitted b = %g", v)
	}
	if v := familyValue(t, s, "multiprio_stream_deferred_total", "a"); v != 1 {
		t.Errorf("stream deferred a = %g", v)
	}
	if ok, _ := h.Healthy(); !ok {
		t.Error("healthy run degraded health")
	}

	// A watchdog abort flips health and counts under result=watchdog...
	p.RunStart(runtime.RunInfo{})
	p.RunEnd(nil, fmt.Errorf("wrap: %w", runtime.ErrWatchdog))
	if ok, reason := h.Healthy(); ok || !strings.Contains(reason, "watchdog") {
		t.Errorf("health after watchdog = %v %q", ok, reason)
	}
	if v := familyValue(t, p.Snapshot(), "multiprio_runs_total", "watchdog"); v != 1 {
		t.Error("watchdog run not counted")
	}
	// ...starvation too...
	p.RunStart(runtime.RunInfo{})
	p.RunEnd(nil, runtime.ErrStarved)
	if ok, _ := h.Healthy(); ok {
		t.Error("health ok after starvation abort")
	}
	// ...and the next clean run restores health.
	p.RunStart(runtime.RunInfo{})
	p.RunEnd(&runtime.Result{}, nil)
	if ok, _ := h.Healthy(); !ok {
		t.Error("clean run did not restore health")
	}
	// Unrelated errors count but do not degrade health.
	p.RunStart(runtime.RunInfo{})
	p.RunEnd(nil, errors.New("graph validation"))
	if ok, _ := h.Healthy(); !ok {
		t.Error("generic error degraded health")
	}
	if v := familyValue(t, p.Snapshot(), "multiprio_runs_total", "error"); v != 1 {
		t.Error("generic error not counted")
	}
}

// TestProbeWorkerResolution: after RunStart the busy counter uses the
// machine's unit names.
func TestProbeWorkerResolution(t *testing.T) {
	p := NewProbe()
	m := testMachine(t)
	p.RunStart(runtime.RunInfo{Machine: m})
	p.Decision(obs.Decision{Kind: obs.TaskDone, At: 2, A: 1, B: 0, Worker: 0})
	if v := familyValue(t, p.Snapshot(), "multiprio_worker_busy_seconds_total", m.Units[0].Name); v != 1 {
		t.Errorf("busy for %q = %g, want 1", m.Units[0].Name, v)
	}
}
