package telemetry

import (
	"bufio"
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// promSample is one parsed exposition sample.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parseProm is a strict parser for the subset of the text exposition
// format this package emits. It fails the test on any line it cannot
// parse, so the round-trip tests double as output validation.
func parseProm(t *testing.T, text string) (types map[string]string, samples []promSample) {
	t.Helper()
	types = make(map[string]string)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(parts) != 2 {
				t.Fatalf("bad TYPE line: %q", line)
			}
			types[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment line: %q", line)
		}
		s := promSample{labels: make(map[string]string)}
		rest := line
		if i := strings.IndexByte(rest, '{'); i >= 0 {
			s.name = rest[:i]
			end := strings.LastIndexByte(rest, '}')
			if end < i {
				t.Fatalf("unterminated label set: %q", line)
			}
			parseLabels(t, rest[i+1:end], s.labels)
			rest = strings.TrimSpace(rest[end+1:])
		} else {
			j := strings.IndexByte(rest, ' ')
			if j < 0 {
				t.Fatalf("no value on line: %q", line)
			}
			s.name, rest = rest[:j], strings.TrimSpace(rest[j+1:])
		}
		v, err := parsePromValue(rest)
		if err != nil {
			t.Fatalf("bad value on line %q: %v", line, err)
		}
		s.value = v
		samples = append(samples, s)
	}
	return types, samples
}

// parseLabels decodes `k="v",k2="v2"` with exposition-format escapes.
func parseLabels(t *testing.T, s string, into map[string]string) {
	t.Helper()
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 || len(s) < eq+2 || s[eq+1] != '"' {
			t.Fatalf("bad label segment %q", s)
		}
		key := s[:eq]
		rest := s[eq+2:]
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			if rest[i] == '\\' && i+1 < len(rest) {
				switch rest[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					t.Fatalf("bad escape in %q", rest)
				}
				i++
				continue
			}
			if rest[i] == '"' {
				break
			}
			val.WriteByte(rest[i])
		}
		if i >= len(rest) {
			t.Fatalf("unterminated label value in %q", s)
		}
		into[key] = val.String()
		s = rest[i+1:]
		s = strings.TrimPrefix(s, ",")
	}
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return strconv.ParseFloat("+inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-inf", 64)
	}
	return strconv.ParseFloat(s, 64)
}

// TestPrometheusExposition builds a registry by hand — including a
// label value that needs every escape — renders it, and re-parses it,
// checking the format invariants the satellite demands: TYPE headers,
// escaping round-trip, `_bucket`/`_sum`/`_count` triplets, monotone
// cumulative buckets, and `+Inf == count`.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	nasty := "a\"b\\c\nd"
	r.NewGauge("g_val", "gauge with \\ and\nnewline in help", "track").With(nasty).Set(2.5)
	c := r.NewCounter("c_total", "counter", "tenant")
	c.With("t0").Add(4)
	c.With("t1").Add(1)
	h := r.NewHistogram("h_seconds", "histogram", "tenant")
	for i := 0; i < 100; i++ {
		h.With("t0").Observe(float64(i) * 0.01)
	}
	h.With("t1").Observe(3)

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	types, samples := parseProm(t, buf.String())

	if types["g_val"] != "gauge" || types["c_total"] != "counter" || types["h_seconds"] != "histogram" {
		t.Fatalf("TYPE lines wrong: %v", types)
	}

	bySeries := make(map[string][]promSample)
	for _, s := range samples {
		bySeries[s.name] = append(bySeries[s.name], s)
	}

	// Escaping round-trip: the nasty label value must come back intact.
	gs := bySeries["g_val"]
	if len(gs) != 1 || gs[0].labels["track"] != nasty || gs[0].value != 2.5 {
		t.Fatalf("gauge round-trip failed: %+v", gs)
	}

	// Histogram triplet invariants per label value.
	for _, tenant := range []string{"t0", "t1"} {
		var buckets []promSample
		var sum, count *promSample
		for i := range bySeries["h_seconds_bucket"] {
			if s := bySeries["h_seconds_bucket"][i]; s.labels["tenant"] == tenant {
				buckets = append(buckets, s)
			}
		}
		for i := range bySeries["h_seconds_sum"] {
			if s := bySeries["h_seconds_sum"][i]; s.labels["tenant"] == tenant {
				sum = &bySeries["h_seconds_sum"][i]
			}
		}
		for i := range bySeries["h_seconds_count"] {
			if s := bySeries["h_seconds_count"][i]; s.labels["tenant"] == tenant {
				count = &bySeries["h_seconds_count"][i]
			}
		}
		if sum == nil || count == nil {
			t.Fatalf("%s: missing _sum or _count", tenant)
		}
		if len(buckets) != NumBuckets+1 {
			t.Fatalf("%s: %d buckets, want %d", tenant, len(buckets), NumBuckets+1)
		}
		prevLe, prevCum := -1.0, -1.0
		for i, b := range buckets {
			le, err := parsePromValue(b.labels["le"])
			if err != nil {
				t.Fatalf("%s: bad le %q", tenant, b.labels["le"])
			}
			if le <= prevLe {
				t.Fatalf("%s: le not ascending at %d", tenant, i)
			}
			if b.value < prevCum {
				t.Fatalf("%s: cumulative bucket decreases at le=%g", tenant, le)
			}
			prevLe, prevCum = le, b.value
		}
		if last := buckets[len(buckets)-1]; last.labels["le"] != "+Inf" || last.value != count.value {
			t.Fatalf("%s: +Inf bucket %g != count %g", tenant, last.value, count.value)
		}
	}

	// The le bounds must round-trip through the parser to the exact
	// package bounds (powers of two are lossless in 'g' formatting).
	wantLe := HistogramBounds()
	for i, b := range bySeries["h_seconds_bucket"][:NumBuckets] {
		le, _ := parsePromValue(b.labels["le"])
		if le != wantLe[i] {
			t.Fatalf("le[%d] = %g, want %g", i, le, wantLe[i])
		}
	}

	// Unlabeled, never-touched families export a zero sample rather
	// than disappearing.
	r2 := NewRegistry()
	r2.NewCounter("zero_total", "", "")
	var buf2 bytes.Buffer
	if err := r2.Snapshot().WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf2.String(), "zero_total 0\n") {
		t.Fatalf("zero-valued unlabeled counter missing:\n%s", buf2.String())
	}

	// Determinism: rendering the same snapshot twice is byte-identical.
	var buf3 bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf3.Bytes()) {
		t.Error("exposition output is nondeterministic")
	}
}
