package telemetry

import (
	"errors"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"multiprio/internal/obs"
	"multiprio/internal/runtime"
)

// TenantFunc attributes a task to a tenant label for the per-tenant
// histograms. Streaming runs install stream.Plan-backed attribution via
// SetTenantFunc; everything else lands on the "all" tenant.
type TenantFunc func(taskID int64) string

// Health is the liveness/readiness state behind /healthz and /readyz.
// The probe degrades it when a run aborts on the progress watchdog or
// the starvation detector and restores it on the next clean run;
// readiness tracks whether a telemetry server is attached and serving.
type Health struct {
	ready atomic.Bool

	mu       sync.Mutex
	degraded bool
	reason   string
}

// Ready reports readiness.
func (h *Health) Ready() bool { return h.ready.Load() }

// SetReady flips readiness; the telemetry server calls it on start and
// graceful shutdown.
func (h *Health) SetReady(v bool) { h.ready.Store(v) }

// Healthy reports liveness; the reason is empty when healthy.
func (h *Health) Healthy() (bool, string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return !h.degraded, h.reason
}

// fail marks the process degraded with a reason.
func (h *Health) fail(reason string) {
	h.mu.Lock()
	h.degraded, h.reason = true, reason
	h.mu.Unlock()
}

// ok clears a degradation.
func (h *Health) ok() {
	h.mu.Lock()
	h.degraded, h.reason = false, ""
	h.mu.Unlock()
}

// runRecord is one run captured for the JSONL export.
type runRecord struct {
	engine, scheduler string
	tasks             int
	makespan          float64
	err               string
	done              bool
}

// Probe aggregates the engines' probe stream into live metrics. It
// implements runtime.RunObserver: attach with runtime.WithObserver (or
// sim.Options.Observer) and every existing instrumentation site feeds
// it unchanged — the engines fan it in beside any user probe via
// obs.Combine.
//
// Recording is designed for the threaded engine's concurrency: every
// event resolves pre-cached *Metric handles and updates them with
// atomics; the only locks on the event path are a RWMutex read lock per
// previously-unseen label lookup and the decision-capture mutex when
// capture is enabled.
type Probe struct {
	reg    *Registry
	health *Health

	// Pre-registered families. Single-label each; see NewProbe for the
	// metric inventory.
	queue, sojourn             *Family
	completed                  *Family
	busy, idle                 *Family
	decisions                  *Family
	trackVal                   *Family
	memUsed                    *Family
	streamInflight, streamPend *Family
	streamAdmitted, streamDef  *Family
	runsTotal                  *Family
	runsInflight               *Metric
	makespan                   *Metric
	faultKills, faultRetries   *Metric
	faultTransfers             *Metric
	specLaunched, specWins     *Metric
	specCancelled              *Metric

	// decisionKinds pre-resolves the per-kind decision counters so the
	// hot path is array-indexed.
	decisionKinds [obs.TaskDone + 1]*Metric

	// tenantOf is the current tenant attribution (TenantFunc).
	tenantOf atomic.Value
	// workerBusy holds the per-worker busy-counter handles of the most
	// recent RunStart machine, indexed by unit ID ([]*Metric).
	workerBusy atomic.Value

	// Decision capture for ExportJSONL, off unless WithDecisionCapture.
	capMu   sync.Mutex
	capMax  int
	capture []obs.Decision
	dropped int64
	runs    []runRecord
}

// ProbeOption configures NewProbe.
type ProbeOption func(*Probe)

// WithDecisionCapture retains up to max decision events in memory for
// ExportJSONL; further events are counted as dropped. max <= 0 keeps
// capture disabled.
func WithDecisionCapture(max int) ProbeOption {
	return func(p *Probe) { p.capMax = max }
}

// NewProbe builds a probe with a fresh registry. Metric names follow
// Prometheus conventions with a multiprio_ prefix; durations are
// seconds.
func NewProbe(opts ...ProbeOption) *Probe {
	r := NewRegistry()
	p := &Probe{
		reg:    r,
		health: &Health{},
		queue: r.NewHistogram("multiprio_tenant_queue_seconds",
			"Per-task queue time (scheduler offer to kernel start), by tenant.", "tenant"),
		sojourn: r.NewHistogram("multiprio_tenant_sojourn_seconds",
			"Per-task sojourn time (scheduler offer to effective completion), by tenant.", "tenant"),
		completed: r.NewCounter("multiprio_tasks_completed_total",
			"Effective task completions, by tenant.", "tenant"),
		busy: r.NewCounter("multiprio_worker_busy_seconds_total",
			"Kernel time of effective completions, by worker.", "worker"),
		idle: r.NewCounter("multiprio_worker_idle_seconds_total",
			"Idle time per finished run (makespan minus busy time), by worker.", "worker"),
		decisions: r.NewCounter("multiprio_sched_decisions_total",
			"Scheduler decision events, by kind (push/score/pop/evict/stale/map/done).", "kind"),
		trackVal: r.NewGauge("multiprio_track_value",
			"Last value of every engine counter track, by track name.", "track"),
		memUsed: r.NewGauge("multiprio_mem_used_bytes",
			"Memory-node occupancy (simulator mem.used tracks), by node.", "node"),
		streamInflight: r.NewGauge("multiprio_stream_inflight",
			"Admitted-not-completed tasks of the Fair admission wrapper, by tenant.", "tenant"),
		streamPend: r.NewGauge("multiprio_stream_pending",
			"Tasks waiting in the Fair admission queue, by tenant.", "tenant"),
		streamAdmitted: r.NewCounter("multiprio_stream_admitted_total",
			"First admissions through the Fair wrapper, by tenant.", "tenant"),
		streamDef: r.NewCounter("multiprio_stream_deferred_total",
			"Admissions that waited behind the tenant's in-flight limit, by tenant.", "tenant"),
		runsTotal: r.NewCounter("multiprio_runs_total",
			"Finished engine runs, by result (ok/watchdog/starved/error).", "result"),
		runsInflight: r.NewGauge("multiprio_runs_inflight",
			"Engine runs currently executing.", "").With(""),
		makespan: r.NewHistogram("multiprio_run_makespan_seconds",
			"Makespan of successfully finished runs.", "").With(""),
		faultKills: r.NewCounter("multiprio_faults_kills_total",
			"Worker kills applied by fault plans.", "").With(""),
		faultRetries: r.NewCounter("multiprio_faults_retries_total",
			"Execution attempts rolled back and re-pushed after faults.", "").With(""),
		faultTransfers: r.NewCounter("multiprio_faults_transfer_failures_total",
			"Transfers failed and re-issued.", "").With(""),
		specLaunched: r.NewCounter("multiprio_spec_replicas_total",
			"Speculative replicas launched by straggler mitigation.", "").With(""),
		specWins: r.NewCounter("multiprio_spec_replica_wins_total",
			"Tasks whose effective completion came from a replica.", "").With(""),
		specCancelled: r.NewCounter("multiprio_spec_cancelled_total",
			"Attempts cancelled by first-success-wins arbitration.", "").With(""),
	}
	for k := obs.PushBest; k <= obs.TaskDone; k++ {
		p.decisionKinds[k] = p.decisions.With(k.String())
	}
	p.tenantOf.Store(TenantFunc(func(int64) string { return "all" }))
	p.workerBusy.Store([]*Metric(nil))
	for _, o := range opts {
		o(p)
	}
	return p
}

// Registry returns the probe's metric registry.
func (p *Probe) Registry() *Registry { return p.reg }

// Health returns the probe's health state.
func (p *Probe) Health() *Health { return p.health }

// Snapshot captures the current metrics.
func (p *Probe) Snapshot() Snapshot { return p.reg.Snapshot() }

// SetTenantFunc installs task→tenant attribution for the per-tenant
// histograms (e.g. a stream.Plan's Tenant/Name composition). Safe to
// call concurrently with recording; nil restores the "all" default.
func (p *Probe) SetTenantFunc(fn TenantFunc) {
	if fn == nil {
		fn = func(int64) string { return "all" }
	}
	p.tenantOf.Store(fn)
}

// RunStart implements runtime.RunObserver: pre-resolves per-worker
// handles and counts the run in flight.
func (p *Probe) RunStart(info runtime.RunInfo) {
	if info.Machine != nil {
		ws := make([]*Metric, len(info.Machine.Units))
		for i, u := range info.Machine.Units {
			ws[i] = p.busy.With(u.Name)
		}
		p.workerBusy.Store(ws)
	}
	p.runsInflight.Add(1)
	if p.capMax > 0 {
		p.capMu.Lock()
		p.runs = append(p.runs, runRecord{engine: info.Engine,
			scheduler: info.Scheduler, tasks: info.Tasks})
		p.capMu.Unlock()
	}
}

// RunEnd implements runtime.RunObserver: folds the run summary into the
// counters and drives health off the watchdog/starvation aborts.
func (p *Probe) RunEnd(res *runtime.Result, err error) {
	p.runsInflight.Add(-1)
	switch {
	case err == nil:
		p.runsTotal.With("ok").Inc()
		p.health.ok()
	case errors.Is(err, runtime.ErrWatchdog):
		p.runsTotal.With("watchdog").Inc()
		p.health.fail(err.Error())
	case errors.Is(err, runtime.ErrStarved):
		p.runsTotal.With("starved").Inc()
		p.health.fail(err.Error())
	default:
		p.runsTotal.With("error").Inc()
	}
	if res != nil {
		if err == nil {
			p.makespan.Observe(res.Makespan)
		}
		for _, w := range res.Workers {
			if idle := res.Makespan - w.Busy; idle > 0 {
				p.idle.With(w.Name).Add(idle)
			}
		}
		p.faultKills.Add(float64(res.Faults.Kills))
		p.faultRetries.Add(float64(res.Faults.Retries))
		p.faultTransfers.Add(float64(res.Faults.TransferFailures))
		p.specLaunched.Add(float64(res.Spec.Launched))
		p.specWins.Add(float64(res.Spec.ReplicaWins))
		p.specCancelled.Add(float64(res.Spec.Cancelled))
		if s := res.Stream; s != nil {
			for k, name := range s.Tenants {
				p.streamAdmitted.With(name).Add(float64(s.Admitted[k]))
				p.streamDef.With(name).Add(float64(s.Deferred[k]))
			}
		}
	}
	if p.capMax > 0 {
		p.capMu.Lock()
		// Complete the most recent open record. With concurrent runs
		// attribution is approximate (records are summaries, not a
		// linearization) — the metric counters above stay exact.
		for i := len(p.runs) - 1; i >= 0; i-- {
			if !p.runs[i].done {
				p.runs[i].done = true
				if res != nil {
					p.runs[i].makespan = res.Makespan
				}
				if err != nil {
					p.runs[i].err = err.Error()
				}
				break
			}
		}
		p.capMu.Unlock()
	}
}

// Decision implements obs.Probe. TaskDone events — emitted by the
// engines for every effective completion — feed the per-tenant queue
// and sojourn histograms and the per-worker busy counters; every kind
// increments its decision counter.
func (p *Probe) Decision(d obs.Decision) {
	if d.Kind >= obs.PushBest && d.Kind <= obs.TaskDone {
		p.decisionKinds[d.Kind].Inc()
	}
	if d.Kind == obs.TaskDone {
		tenant := p.tenantOf.Load().(TenantFunc)(d.Task)
		p.queue.With(tenant).Observe(d.A - d.B)
		p.sojourn.With(tenant).Observe(d.At - d.B)
		p.completed.With(tenant).Inc()
		if kernel := d.At - d.A; kernel > 0 {
			if ws, _ := p.workerBusy.Load().([]*Metric); d.Worker >= 0 && d.Worker < len(ws) {
				ws[d.Worker].Add(kernel)
			} else {
				p.busy.With("w" + strconv.Itoa(d.Worker)).Add(kernel)
			}
		}
	}
	if p.capMax > 0 {
		p.capMu.Lock()
		if len(p.capture) < p.capMax {
			p.capture = append(p.capture, d)
		} else {
			p.dropped++
		}
		p.capMu.Unlock()
	}
}

// Counter implements obs.Probe: every engine track mirrors into the
// multiprio_track_value gauge, and the well-known track shapes
// additionally project onto typed gauges (memory occupancy, stream
// admission depths).
func (p *Probe) Counter(track string, at float64, seq int64, value float64) {
	p.trackVal.With(track).Set(value)
	if node, ok := bracketArg(track, "mem.used["); ok {
		p.memUsed.With(node).Set(value)
	} else if tenant, ok := bracketArg(track, "stream.inflight["); ok {
		p.streamInflight.With(tenant).Set(value)
	} else if tenant, ok := bracketArg(track, "stream.pending["); ok {
		p.streamPend.With(tenant).Set(value)
	}
}

// bracketArg extracts X from "prefixX]" track names like
// "mem.used[gpu0]".
func bracketArg(track, prefix string) (string, bool) {
	if strings.HasPrefix(track, prefix) && strings.HasSuffix(track, "]") {
		return track[len(prefix) : len(track)-1], true
	}
	return "", false
}
