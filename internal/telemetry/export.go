package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"math"
	"strconv"

	"multiprio/internal/obs"
)

// SchemaVersion identifies the JSONL export layout. Bump on any
// incompatible line-shape change; consumers must check it before
// parsing further lines.
const SchemaVersion = "multiprio.telemetry.v1"

// Export line shapes. Every line is one JSON object whose "kind" field
// selects the shape; the first line is always the header.
type exportHeader struct {
	Schema    string `json:"schema"`
	Kind      string `json:"kind"` // "header"
	Runs      int    `json:"runs"`
	Decisions int    `json:"decisions"`
	Dropped   int64  `json:"dropped,omitempty"`
}

type exportRun struct {
	Kind      string  `json:"kind"` // "run"
	Engine    string  `json:"engine"`
	Scheduler string  `json:"scheduler"`
	Tasks     int     `json:"tasks"`
	Makespan  float64 `json:"makespan"`
	Error     string  `json:"error,omitempty"`
}

// jfloat is a float64 that survives JSON encoding when non-finite:
// decision scalars legitimately carry +Inf (a PushBest with a single
// eligible architecture encodes δ as +Inf), which encoding/json rejects
// as a bare float64. Non-finite values render as the strings "+Inf",
// "-Inf" and "NaN", matching the Prometheus exposition spelling.
type jfloat float64

// MarshalJSON implements json.Marshaler.
func (f jfloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	}
	return strconv.AppendFloat(nil, v, 'g', -1, 64), nil
}

type exportDecision struct {
	Kind     string `json:"kind"` // "decision"
	Decision string `json:"decision"`
	At       jfloat `json:"at"`
	Seq      int64  `json:"seq,omitempty"`
	Task     int64  `json:"task"`
	Worker   int    `json:"worker"`
	Mem      int    `json:"mem"`
	Arch     int    `json:"arch"`
	N        int    `json:"n,omitempty"`
	A        jfloat `json:"a,omitempty"`
	B        jfloat `json:"b,omitempty"`
	C        jfloat `json:"c,omitempty"`
}

type exportFamily struct {
	Kind string `json:"kind"` // "family"
	FamilySnapshot
}

// ExportJSONL writes the probe's captured run records and decision
// events plus a final metrics snapshot as JSON Lines: one header line
// carrying SchemaVersion, one "run" line per observed run, one
// "decision" line per captured event (in capture order — for sim runs
// this is the deterministic event-loop order), and one "family" line
// per metric family. Decision lines require the probe to have been
// built with WithDecisionCapture; without it the export still carries
// runs and metrics.
func ExportJSONL(w io.Writer, p *Probe) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)

	p.capMu.Lock()
	runs := append([]runRecord(nil), p.runs...)
	decisions := append([]obs.Decision(nil), p.capture...)
	dropped := p.dropped
	p.capMu.Unlock()

	if err := enc.Encode(exportHeader{Schema: SchemaVersion, Kind: "header",
		Runs: len(runs), Decisions: len(decisions), Dropped: dropped}); err != nil {
		return err
	}
	for _, r := range runs {
		if err := enc.Encode(exportRun{Kind: "run", Engine: r.engine,
			Scheduler: r.scheduler, Tasks: r.tasks, Makespan: r.makespan,
			Error: r.err}); err != nil {
			return err
		}
	}
	for _, d := range decisions {
		if err := enc.Encode(exportDecision{Kind: "decision",
			Decision: d.Kind.String(), At: jfloat(d.At), Seq: d.Seq, Task: d.Task,
			Worker: d.Worker, Mem: d.Mem, Arch: d.Arch,
			N: d.N, A: jfloat(d.A), B: jfloat(d.B), C: jfloat(d.C)}); err != nil {
			return err
		}
	}
	for _, f := range p.Snapshot().Families {
		if len(f.Metrics) == 0 {
			continue
		}
		if err := enc.Encode(exportFamily{Kind: "family", FamilySnapshot: f}); err != nil {
			return err
		}
	}
	return bw.Flush()
}
