package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"multiprio/internal/obs"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
)

// testMachine is the shared tiny platform of the telemetry tests.
func testMachine(t *testing.T) *platform.Machine {
	t.Helper()
	return platform.CPUOnly(2)
}

// TestExportJSONL checks the export's line discipline: schema-versioned
// header first, then runs, captured decisions, and metric families —
// every line valid JSON with a "kind" discriminator.
func TestExportJSONL(t *testing.T) {
	p := NewProbe(WithDecisionCapture(2))
	p.RunStart(runtime.RunInfo{Tasks: 5, Scheduler: "multiprio", Engine: "sim"})
	p.Decision(obs.Decision{Kind: obs.PopSelect, At: 1, Task: 7, Worker: 1, Mem: 0, Arch: 0})
	p.Decision(obs.Decision{Kind: obs.TaskDone, At: 2, A: 1, B: 0, Task: 7, Worker: 1})
	p.Decision(obs.Decision{Kind: obs.TaskDone, At: 3, A: 2, B: 1, Task: 8, Worker: 0}) // over capture cap
	p.RunEnd(&runtime.Result{Makespan: 3}, nil)

	var buf bytes.Buffer
	if err := ExportJSONL(&buf, p); err != nil {
		t.Fatal(err)
	}

	sc := bufio.NewScanner(&buf)
	var kinds []string
	var header exportHeader
	for sc.Scan() {
		var probe struct {
			Kind   string `json:"kind"`
			Schema string `json:"schema"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("invalid JSON line %q: %v", sc.Text(), err)
		}
		if len(kinds) == 0 {
			if err := json.Unmarshal(sc.Bytes(), &header); err != nil {
				t.Fatal(err)
			}
		}
		kinds = append(kinds, probe.Kind)
	}
	if kinds[0] != "header" || header.Schema != SchemaVersion {
		t.Fatalf("first line = %v / schema %q", kinds[0], header.Schema)
	}
	if header.Runs != 1 || header.Decisions != 2 || header.Dropped != 1 {
		t.Errorf("header = %+v, want 1 run, 2 decisions, 1 dropped", header)
	}
	var runs, decisions, families int
	for _, k := range kinds[1:] {
		switch k {
		case "run":
			runs++
		case "decision":
			decisions++
		case "family":
			families++
		default:
			t.Errorf("unexpected line kind %q", k)
		}
	}
	if runs != 1 || decisions != 2 || families == 0 {
		t.Errorf("lines = %d runs, %d decisions, %d families", runs, decisions, families)
	}

	// The run line must carry the completed lifecycle.
	var buf2 bytes.Buffer
	if err := ExportJSONL(&buf2, p); err != nil {
		t.Fatal(err)
	}
	var runLine exportRun
	for _, line := range strings.Split(buf2.String(), "\n") {
		if strings.Contains(line, `"kind":"run"`) {
			if err := json.Unmarshal([]byte(line), &runLine); err != nil {
				t.Fatal(err)
			}
		}
	}
	if runLine.Scheduler != "multiprio" || runLine.Engine != "sim" || runLine.Makespan != 3 || runLine.Tasks != 5 {
		t.Errorf("run line = %+v", runLine)
	}

	// Export is repeatable and deterministic for an idle probe.
	var buf3 bytes.Buffer
	if err := ExportJSONL(&buf3, p); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf2.Bytes(), buf3.Bytes()) {
		t.Error("repeated export differs")
	}
}

// TestExportNonFiniteScalars: decision scalars legitimately carry +Inf
// (single-eligible-architecture PushBest); the export must encode them
// as strings instead of failing the whole file mid-write.
func TestExportNonFiniteScalars(t *testing.T) {
	p := NewProbe(WithDecisionCapture(10))
	p.Decision(obs.Decision{Kind: obs.PushBest, At: 1, Task: 1, B: math.Inf(1)})
	var buf bytes.Buffer
	if err := ExportJSONL(&buf, p); err != nil {
		t.Fatalf("export with +Inf scalar: %v", err)
	}
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q not valid JSON: %v", sc.Text(), err)
		}
		if m["kind"] == "decision" && m["b"] != "+Inf" {
			t.Errorf("b = %v, want \"+Inf\"", m["b"])
		}
	}
}

// TestExportWithoutCapture: a probe without decision capture still
// exports a header and metric families.
func TestExportWithoutCapture(t *testing.T) {
	p := NewProbe()
	p.Decision(obs.Decision{Kind: obs.TaskDone, At: 1, A: 1, B: 0})
	var buf bytes.Buffer
	if err := ExportJSONL(&buf, p); err != nil {
		t.Fatal(err)
	}
	first, _, _ := strings.Cut(buf.String(), "\n")
	if !strings.Contains(first, SchemaVersion) {
		t.Fatalf("header missing schema: %q", first)
	}
	if !strings.Contains(buf.String(), `"kind":"family"`) {
		t.Error("no family lines exported")
	}
	if strings.Contains(buf.String(), `"kind":"decision"`) {
		t.Error("decision lines exported without capture enabled")
	}
}
