package telemetry

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"
)

// promContentType is the Content-Type of the Prometheus text exposition
// format served on /metrics.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double quote and newline.
var escapeLabelValue = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// escapeHelp escapes a HELP string: backslash and newline only.
var escapeHelp = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// formatFloat renders a sample value the way Prometheus clients do:
// shortest round-trip representation, `+Inf`/`-Inf` spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4): a # HELP and # TYPE header per
// family, one sample line per metric, and the `_bucket`/`_sum`/`_count`
// triplet with cumulative `le` buckets for histograms. Output is fully
// deterministic for a deterministic snapshot — families and label
// values are sorted, and no timestamps are emitted — so sim-engine runs
// are golden-testable.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range s.Families {
		if len(f.Metrics) == 0 {
			continue
		}
		bw.WriteString("# HELP ")
		bw.WriteString(f.Name)
		bw.WriteByte(' ')
		escapeHelp.WriteString(bw, f.Help)
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.Name)
		bw.WriteByte(' ')
		bw.WriteString(f.Kind)
		bw.WriteByte('\n')
		for _, m := range f.Metrics {
			if f.Kind == KindHistogram.String() {
				writePromHistogram(bw, f, m)
				continue
			}
			bw.WriteString(f.Name)
			writeLabels(bw, f.Label, m.LabelValue, "")
			bw.WriteByte(' ')
			bw.WriteString(formatFloat(m.Value))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// writeLabels renders `{key="value"}` (plus an optional `le` pair),
// or nothing when no label applies.
func writeLabels(bw *bufio.Writer, key, value, le string) {
	if key == "" && le == "" {
		return
	}
	bw.WriteByte('{')
	if key != "" {
		bw.WriteString(key)
		bw.WriteString(`="`)
		escapeLabelValue.WriteString(bw, value)
		bw.WriteByte('"')
		if le != "" {
			bw.WriteByte(',')
		}
	}
	if le != "" {
		bw.WriteString(`le="`)
		bw.WriteString(le)
		bw.WriteByte('"')
	}
	bw.WriteByte('}')
}

// writePromHistogram renders one histogram instance's
// `_bucket`/`_sum`/`_count` triplet.
func writePromHistogram(bw *bufio.Writer, f FamilySnapshot, m MetricSnapshot) {
	for i, cum := range m.Buckets {
		le := "+Inf"
		if i < NumBuckets {
			le = formatFloat(histBounds[i])
		}
		bw.WriteString(f.Name)
		bw.WriteString("_bucket")
		writeLabels(bw, f.Label, m.LabelValue, le)
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatUint(cum, 10))
		bw.WriteByte('\n')
	}
	bw.WriteString(f.Name)
	bw.WriteString("_sum")
	writeLabels(bw, f.Label, m.LabelValue, "")
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(m.Sum))
	bw.WriteByte('\n')
	bw.WriteString(f.Name)
	bw.WriteString("_count")
	writeLabels(bw, f.Label, m.LabelValue, "")
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatUint(m.Count, 10))
	bw.WriteByte('\n')
}
