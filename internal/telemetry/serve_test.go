package telemetry

import (
	"errors"
	"io"
	"net/http"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"multiprio/internal/runtime"
	"multiprio/internal/sched/eager"
)

// get fetches a URL and returns status and body.
func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestServeEndpoints boots a server on an ephemeral port and checks
// every route: /metrics content type and body, /healthz, /readyz
// (including the unready state after Close), /debug/vars, and the pprof
// index.
func TestServeEndpoints(t *testing.T) {
	p := NewProbe()
	p.Registry().NewCounter("multiprio_probe_smoke_total", "smoke", "").With("").Add(3)
	s, err := Serve("127.0.0.1:0", p)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.Addr()

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != promContentType {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(string(body), "multiprio_probe_smoke_total 3") {
		t.Errorf("metrics body missing smoke counter:\n%s", body)
	}

	if code, body := get(t, base+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("healthz = %d %q", code, body)
	}
	if code, _ := get(t, base+"/readyz"); code != http.StatusOK {
		t.Errorf("readyz = %d", code)
	}
	if code, body := get(t, base+"/debug/vars"); code != http.StatusOK || !strings.Contains(body, "memstats") {
		t.Errorf("debug/vars = %d (%d bytes)", code, len(body))
	}
	if code, body := get(t, base+"/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index = %d", code)
	}

	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if p.Health().Ready() {
		t.Error("probe still ready after Close")
	}
	if _, err := http.Get(base + "/metrics"); err == nil {
		t.Error("server still answering after Close")
	}
}

// TestHealthzFlipsOnWatchdogAbort is the acceptance check of the
// bugfix-guard satellite: wedge a threaded run so the watchdog aborts
// it, observe /healthz flip to 503 with the watchdog reason while the
// server stays up, then shut the server down gracefully and prove no
// goroutine leaked — stdlib-only goleak-style accounting by goroutine
// count, with the labeled profile for diagnostics on failure.
func TestHealthzFlipsOnWatchdogAbort(t *testing.T) {
	baseline := runtimeGoroutines()

	p := NewProbe()
	s, err := Serve("127.0.0.1:0", p)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.Addr()

	// Wedge: one kernel blocks on a channel until the test ends, so the
	// 30ms watchdog must abort the run.
	unwedge := make(chan struct{})
	g := runtime.NewGraph()
	wedged := &runtime.Task{Kind: "wedged", Cost: []float64{0.001}}
	wedged.Run = func(w runtime.WorkerInfo) { <-unwedge }
	g.Submit(wedged)
	eng, err := runtime.NewThreadedEngine(testMachine(t), eager.New(),
		runtime.WithObserver(p),
		runtime.WithWatchdog(30*time.Millisecond),
		runtime.WithWatchdogOutput(io.Discard))
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Run(g)
	if !errors.Is(err, runtime.ErrWatchdog) {
		t.Fatalf("err = %v, want ErrWatchdog", err)
	}

	code, body := get(t, base+"/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "watchdog") {
		t.Fatalf("healthz after abort = %d %q, want 503 + watchdog reason", code, body)
	}
	// The abort is visible on /metrics too.
	if _, body := get(t, base+"/metrics"); !strings.Contains(body, `multiprio_runs_total{result="watchdog"} 1`) {
		t.Errorf("metrics missing watchdog run counter:\n%s", body)
	}
	// Readiness is about serving, not run health: still ready.
	if code, _ := get(t, base+"/readyz"); code != http.StatusOK {
		t.Errorf("readyz after abort = %d, want 200", code)
	}

	if err := s.Close(); err != nil {
		t.Fatalf("graceful close after abort: %v", err)
	}
	close(unwedge) // release the wedged kernel goroutine

	// Goroutine accounting: everything the server and the aborted run
	// spawned must exit. Drop the client's keep-alive connections first
	// (their transport goroutines are the test's, not the server's),
	// then poll — worker goroutines unwind asynchronously after the
	// abort.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtimeGoroutines(); n <= baseline {
			break
		}
		if time.Now().After(deadline) {
			var buf strings.Builder
			pprof.Lookup("goroutine").WriteTo(&buf, 1)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtimeGoroutines(), buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeBadAddr: an unusable address reports an error instead of
// panicking in the serve goroutine.
func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.256.256.256:99999", NewProbe()); err == nil {
		t.Fatal("expected listen error")
	}
}

// TestServeTwoProbes: expvar is process-global; serving a second probe
// must not panic on duplicate publication and the var follows the
// latest probe.
func TestServeTwoProbes(t *testing.T) {
	p1, p2 := NewProbe(), NewProbe()
	s1, err := Serve("127.0.0.1:0", p1)
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := Serve("127.0.0.1:0", p2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if code, body := get(t, "http://"+s2.Addr()+"/debug/vars"); code != http.StatusOK || !strings.Contains(body, "multiprio") {
		t.Errorf("debug/vars on second server = %d", code)
	}
}

// runtimeGoroutines returns the current goroutine count.
func runtimeGoroutines() int {
	return pprof.Lookup("goroutine").Count()
}
