// Package telemetry turns the read-only observability layer
// (internal/obs) into production operability: live aggregated metrics, a
// scrapeable /metrics endpoint in Prometheus text exposition format,
// health/readiness probes wired to the engines' watchdog and starvation
// detectors, and a schema-versioned JSONL run export.
//
// The layering contract is strict and inherited from internal/obs:
// telemetry subscribes to the SAME probe stream the decision log and
// metrics recorder consume (fanned in through obs.Combine inside the
// engines), so no instrumentation site changes, and observation must
// never perturb scheduling. The canonical-trace SHA-256 goldens are
// byte-identical with a telemetry Probe attached
// (schedtest.TestCanonicalTraceGoldenTelemetry), and the engines' nil-
// probe hot paths stay zero-alloc (bench/ telemetry benchmarks).
//
// The aggregation core is a Registry of metric families — counters,
// gauges, and fixed-bucket log2 histograms — designed for cheap
// concurrent recording: every hot-path update is an atomic operation on
// a pre-resolved *Metric handle; locks appear only on the first
// observation of a new label value and during Snapshot. The package
// depends on nothing but the standard library.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind classifies a metric family.
type Kind uint8

const (
	// KindCounter is a monotonically increasing sum.
	KindCounter Kind = iota + 1
	// KindGauge is a last-value-wins instantaneous measurement.
	KindGauge
	// KindHistogram is a fixed-bucket log2 distribution.
	KindHistogram
)

// String returns the Prometheus TYPE keyword of the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Histogram bucket geometry: upper bounds at every power of two from
// 2^histMinExp to 2^histMaxExp, plus the implicit +Inf bucket. The span
// covers ~1µs to ~4.5h, which brackets every duration the engines
// produce — per-task queue and sojourn times, kernel durations, and
// whole-run makespans — with exact float64 bounds (powers of two need no
// rounding, so exposition and parsing round-trip losslessly).
const (
	histMinExp = -20
	histMaxExp = 14
	// NumBuckets is the finite bucket count of every histogram; the
	// +Inf bucket is stored at index NumBuckets.
	NumBuckets = histMaxExp - histMinExp + 1
)

// histBounds holds the finite upper bounds, index-aligned with the
// bucket slots.
var histBounds = func() [NumBuckets]float64 {
	var b [NumBuckets]float64
	for i := range b {
		b[i] = math.Ldexp(1, histMinExp+i)
	}
	return b
}()

// HistogramBounds returns a copy of the finite bucket upper bounds
// shared by every histogram in the package.
func HistogramBounds() []float64 {
	out := make([]float64, NumBuckets)
	copy(out, histBounds[:])
	return out
}

// bucketIndex maps a value to the slot of the smallest bucket whose
// upper bound contains it; NumBuckets is the +Inf slot. Zero, negative
// and sub-resolution values land in bucket 0; NaN counts as +Inf.
func bucketIndex(v float64) int {
	if v <= histBounds[0] {
		return 0
	}
	if math.IsNaN(v) || v > histBounds[NumBuckets-1] {
		return NumBuckets
	}
	// Frexp gives v = frac·2^exp with frac ∈ [0.5, 1), i.e.
	// 2^(exp-1) ≤ v < 2^exp; the containing bound is 2^exp unless v is
	// exactly a power of two.
	frac, exp := math.Frexp(v)
	if frac == 0.5 {
		exp--
	}
	return exp - histMinExp
}

// Metric is one instance of a family (one label value): a counter, a
// gauge, or a histogram, according to its family's kind. All recording
// methods are lock-free and safe for concurrent use.
type Metric struct {
	kind Kind
	// bits holds the float64 bit pattern of the counter/gauge value, or
	// the histogram's running sum.
	bits atomic.Uint64
	// count and buckets are histogram-only: total observations and raw
	// (non-cumulative) per-bucket counts, +Inf at index NumBuckets.
	count   atomic.Uint64
	buckets []atomic.Uint64
}

// addBits atomically adds v to the float64 stored in b.
func addBits(b *atomic.Uint64, v float64) {
	for {
		old := b.Load()
		if b.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Add increments a counter (or shifts a gauge) by v.
func (m *Metric) Add(v float64) { addBits(&m.bits, v) }

// Inc increments a counter by one.
func (m *Metric) Inc() { m.Add(1) }

// Set stores a gauge value.
func (m *Metric) Set(v float64) { m.bits.Store(math.Float64bits(v)) }

// Value returns the current counter/gauge value (a histogram's sum).
func (m *Metric) Value() float64 { return math.Float64frombits(m.bits.Load()) }

// Observe records one histogram sample.
func (m *Metric) Observe(v float64) {
	m.buckets[bucketIndex(v)].Add(1)
	m.count.Add(1)
	addBits(&m.bits, v)
}

// Count returns a histogram's total observation count.
func (m *Metric) Count() uint64 { return m.count.Load() }

// Family is a named group of metrics sharing a kind, a help string, and
// at most one label key. With resolves (creating on first use) the
// instance for a label value; resolved handles stay valid for the
// family's lifetime, so hot paths cache them and record through atomics
// only.
type Family struct {
	name, help, label string
	kind              Kind

	mu    sync.RWMutex
	insts map[string]*Metric
}

// Name returns the family's metric name.
func (f *Family) Name() string { return f.name }

// With returns the metric for the given label value, creating it on
// first use. Unlabeled families use the empty string.
func (f *Family) With(labelValue string) *Metric {
	f.mu.RLock()
	m := f.insts[labelValue]
	f.mu.RUnlock()
	if m != nil {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m = f.insts[labelValue]; m != nil {
		return m
	}
	m = &Metric{kind: f.kind}
	if f.kind == KindHistogram {
		m.buckets = make([]atomic.Uint64, NumBuckets+1)
	}
	f.insts[labelValue] = m
	return m
}

// Registry owns a set of metric families. Registration (New*) is
// expected at construction time; recording happens through the returned
// families. A Registry is safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*Family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*Family)}
}

// newFamily registers a family, panicking on a name collision with a
// different kind (a programming error, mirroring expvar.Publish).
func (r *Registry) newFamily(kind Kind, name, help, label string) *Family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.families[name]; f != nil {
		if f.kind != kind || f.label != label {
			panic("telemetry: family " + name + " re-registered with a different shape")
		}
		return f
	}
	f := &Family{name: name, help: help, label: label, kind: kind,
		insts: make(map[string]*Metric)}
	if label == "" {
		// Materialize the single instance so unlabeled families export
		// a zero value instead of disappearing before first use.
		m := &Metric{kind: kind}
		if kind == KindHistogram {
			m.buckets = make([]atomic.Uint64, NumBuckets+1)
		}
		f.insts[""] = m
	}
	r.families[name] = f
	return f
}

// NewCounter registers (or returns) a counter family. label is the
// single label key, empty for an unlabeled family.
func (r *Registry) NewCounter(name, help, label string) *Family {
	return r.newFamily(KindCounter, name, help, label)
}

// NewGauge registers (or returns) a gauge family.
func (r *Registry) NewGauge(name, help, label string) *Family {
	return r.newFamily(KindGauge, name, help, label)
}

// NewHistogram registers (or returns) a histogram family with the
// package-wide log2 buckets.
func (r *Registry) NewHistogram(name, help, label string) *Family {
	return r.newFamily(KindHistogram, name, help, label)
}

// Snapshot is a consistent-enough copy of a registry for exposition:
// families sorted by name, instances sorted by label value, histogram
// buckets cumulated. Individual metric reads are atomic; the snapshot
// as a whole is not a point-in-time cut across metrics, which matches
// Prometheus scrape semantics.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// FamilySnapshot is one family's snapshot.
type FamilySnapshot struct {
	Name    string           `json:"name"`
	Help    string           `json:"help"`
	Kind    string           `json:"kind"`
	Label   string           `json:"label,omitempty"`
	Metrics []MetricSnapshot `json:"metrics"`
}

// MetricSnapshot is one instance's snapshot. Value is the counter/gauge
// reading; Count/Sum/Buckets are histogram-only, with Buckets holding
// CUMULATIVE counts per finite bound plus +Inf last (Prometheus `le`
// semantics).
type MetricSnapshot struct {
	LabelValue string   `json:"labelValue,omitempty"`
	Value      float64  `json:"value,omitempty"`
	Count      uint64   `json:"count,omitempty"`
	Sum        float64  `json:"sum,omitempty"`
	Buckets    []uint64 `json:"buckets,omitempty"`
}

// Snapshot captures the registry's current state in deterministic
// order.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	fams := make([]*Family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var snap Snapshot
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind.String(), Label: f.label}
		f.mu.RLock()
		keys := make([]string, 0, len(f.insts))
		for k := range f.insts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			m := f.insts[k]
			ms := MetricSnapshot{LabelValue: k}
			switch f.kind {
			case KindHistogram:
				ms.Sum = m.Value()
				ms.Buckets = make([]uint64, NumBuckets+1)
				var cum uint64
				for i := range m.buckets {
					cum += m.buckets[i].Load()
					ms.Buckets[i] = cum
				}
				// Derive the count from the cumulated buckets rather
				// than the count atomic, so `+Inf == count` holds even
				// when a concurrent Observe lands between the loads.
				ms.Count = cum
			default:
				ms.Value = m.Value()
			}
			fs.Metrics = append(fs.Metrics, ms)
		}
		f.mu.RUnlock()
		snap.Families = append(snap.Families, fs)
	}
	return snap
}
