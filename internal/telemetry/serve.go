package telemetry

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// shutdownTimeout bounds graceful drain on Close before in-flight
// scrapes are cut off.
const shutdownTimeout = 5 * time.Second

// expvarProbe is the probe whose snapshot the process-wide
// /debug/vars "multiprio" var reflects (expvar is process-global and
// Publish is once-only, so the var follows the most recently served
// probe).
var (
	expvarProbe atomic.Pointer[Probe]
	expvarOnce  sync.Once
)

// NewMux builds the telemetry route table for p:
//
//	/metrics     Prometheus text exposition of the probe's registry
//	/healthz     200 while healthy, 503 + reason after a watchdog or
//	             starvation abort (cleared by the next clean run)
//	/readyz      200 once serving, 503 while down or shutting down
//	/debug/vars  expvar JSON (includes a "multiprio" snapshot var)
//	/debug/pprof the standard pprof index and profiles
//
// It is exported so tests and embedders can mount the routes on their
// own server.
func NewMux(p *Probe) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", promContentType)
		p.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if ok, reason := p.Health().Healthy(); !ok {
			http.Error(w, "unhealthy: "+reason, http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !p.Health().Ready() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running telemetry endpoint. Close shuts it down
// gracefully and waits for the serve goroutine to exit, so a Server is
// leak-free under goroutine accounting once Close returns.
type Server struct {
	probe *Probe
	srv   *http.Server
	ln    net.Listener
	done  chan struct{}
}

// Serve starts a telemetry HTTP server for p on addr (e.g. ":9090", or
// "127.0.0.1:0" to pick a free port) and marks the probe ready. The
// server runs until Close.
func Serve(addr string, p *Probe) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	expvarProbe.Store(p)
	expvarOnce.Do(func() {
		expvar.Publish("multiprio", expvar.Func(func() any {
			if cur := expvarProbe.Load(); cur != nil {
				return cur.Snapshot()
			}
			return nil
		}))
	})
	s := &Server{
		probe: p,
		srv:   &http.Server{Handler: NewMux(p)},
		ln:    ln,
		done:  make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln) // returns http.ErrServerClosed on Shutdown
	}()
	p.Health().SetReady(true)
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close drains in-flight requests, stops the listener, waits for the
// serve goroutine to exit, and flips the probe unready. It is safe to
// call after a run abort (watchdog, starvation): the endpoint keeps
// answering /healthz with 503 until Close, then goes away entirely
// without leaking the serve goroutine.
func (s *Server) Close() error {
	s.probe.Health().SetReady(false)
	ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	<-s.done
	return err
}
