package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"multiprio/internal/apps/dense"
	"multiprio/internal/core"
	"multiprio/internal/platform"
	"multiprio/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite the telemetry golden files")

// quickRunProbe executes the seeded quick run of the goldens — a small
// Cholesky under the paper's policy on the simulator — with a telemetry
// probe attached as the run observer.
func quickRunProbe(t *testing.T) *Probe {
	t.Helper()
	m, err := platform.NewHeteroNode("telem", 5, 10, 2, 100, 8*platform.MiB, 5e9, platform.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p := NewProbe()
	g := dense.Cholesky(dense.Params{Tiles: 4, TileSize: 256, Machine: m, UserPriorities: true})
	if _, err := sim.Run(m, g, core.New(core.Defaults()), sim.Options{Seed: 23, Observer: p}); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestMetricsGoldenQuickRun pins the complete /metrics body of the
// seeded quick run. The simulator is deterministic in virtual time and
// the exposition writer emits no wall-clock state, so the body is
// byte-stable; any drift means either an intentional metric change
// (regenerate with -update) or nondeterminism in the telemetry path
// (a bug).
func TestMetricsGoldenQuickRun(t *testing.T) {
	p := quickRunProbe(t)
	var got bytes.Buffer
	if err := p.Snapshot().WritePrometheus(&got); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("testdata", "metrics_quickrun.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		gl, wl := bytes.Split(got.Bytes(), []byte("\n")), bytes.Split(want, []byte("\n"))
		for i := 0; i < len(gl) || i < len(wl); i++ {
			var g, w []byte
			if i < len(gl) {
				g = gl[i]
			}
			if i < len(wl) {
				w = wl[i]
			}
			if !bytes.Equal(g, w) {
				t.Fatalf("/metrics drifted at line %d:\n got: %s\nwant: %s", i+1, g, w)
			}
		}
	}
}

// TestMetricsQuickRunInvariants re-parses the golden run's exposition
// through the strict parser and checks the semantic content: the
// tenant histograms are populated, every decision kind observed by the
// run is counted, and the run accounting closed.
func TestMetricsQuickRunInvariants(t *testing.T) {
	p := quickRunProbe(t)
	var buf bytes.Buffer
	if err := p.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	_, samples := parseProm(t, buf.String())
	series := make(map[string]float64)
	for _, s := range samples {
		key := s.name
		for _, k := range []string{"tenant", "kind", "result"} {
			if v, ok := s.labels[k]; ok {
				key += "|" + v
			}
		}
		series[key] = s.value
	}
	tasks := 4 * 5 * 6 / 6 // cholesky task count for tiles=4: t(t+1)(t+2)/6
	if got := series["multiprio_tenant_queue_seconds_count|all"]; got != float64(tasks) {
		t.Errorf("queue histogram count = %g, want %d", got, tasks)
	}
	if got := series["multiprio_tasks_completed_total|all"]; got != float64(tasks) {
		t.Errorf("completions = %g, want %d", got, tasks)
	}
	if series["multiprio_sched_decisions_total|done"] != float64(tasks) {
		t.Errorf("done decisions = %g", series["multiprio_sched_decisions_total|done"])
	}
	if series["multiprio_sched_decisions_total|pop"] < float64(tasks) {
		t.Errorf("pop decisions = %g, want >= %d", series["multiprio_sched_decisions_total|pop"], tasks)
	}
	if series["multiprio_runs_total|ok"] != 1 {
		t.Errorf("runs ok = %g", series["multiprio_runs_total|ok"])
	}
	if series["multiprio_runs_inflight"] != 0 {
		t.Errorf("runs inflight = %g", series["multiprio_runs_inflight"])
	}
	if series["multiprio_run_makespan_seconds_count"] != 1 {
		t.Errorf("makespan observations = %g", series["multiprio_run_makespan_seconds_count"])
	}
}
