package heap

import "testing"

// TestRemoveWhileIterating walks a TopN snapshot and removes each
// visited element: the lazy-removal pattern of the locality-aware POP
// (duplicates already executed through another node's heap are removed
// mid-scan). The heap property must survive every removal.
func TestRemoveWhileIterating(t *testing.T) {
	h := New(0)
	for i := int64(0); i < 20; i++ {
		h.Push(i, Score{Primary: float64(i % 7), Secondary: float64(i)})
	}
	for h.Len() > 0 {
		top := h.TopN(nil, 5)
		if len(top) == 0 {
			t.Fatal("TopN returned nothing on a non-empty heap")
		}
		for _, id := range top {
			if !h.Remove(id) {
				t.Fatalf("id %d from TopN not present at removal", id)
			}
			if h.Contains(id) {
				t.Fatalf("id %d still present after Remove", id)
			}
			if err := h.Verify(); err != nil {
				t.Fatalf("heap property broken after removing %d: %v", id, err)
			}
		}
	}
}

// TestUpdateToEqualKeys collapses every score onto one value: updates
// must keep the heap consistent when old and new keys compare equal in
// both directions, and all elements must still drain out exactly once.
func TestUpdateToEqualKeys(t *testing.T) {
	cases := []struct {
		name string
		n    int64
		to   Score
	}{
		{"all-zero", 12, Score{}},
		{"all-equal-nonzero", 9, Score{Primary: 3.5, Secondary: -1}},
		{"single", 1, Score{Primary: 1}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			h := New(int(c.n))
			for i := int64(0); i < c.n; i++ {
				h.Push(i, Score{Primary: float64(i), Secondary: float64(-i)})
			}
			for i := int64(0); i < c.n; i++ {
				if !h.Update(i, c.to) {
					t.Fatalf("Update(%d) reported absent", i)
				}
				if err := h.Verify(); err != nil {
					t.Fatalf("after Update(%d): %v", i, err)
				}
				if got, _ := h.Score(i); got != c.to {
					t.Fatalf("Score(%d) = %v, want %v", i, got, c.to)
				}
			}
			drained := make(map[int64]bool, c.n)
			for {
				id, s, ok := h.Pop()
				if !ok {
					break
				}
				if s != c.to {
					t.Fatalf("popped score %v, want %v", s, c.to)
				}
				if drained[id] {
					t.Fatalf("id %d popped twice", id)
				}
				drained[id] = true
			}
			if int64(len(drained)) != c.n {
				t.Fatalf("drained %d of %d elements", len(drained), c.n)
			}
		})
	}
}

// TestTopNBeyondLen asks for more candidates than stored: TopN must
// return exactly Len ids, in non-ascending score order, without
// touching the heap.
func TestTopNBeyondLen(t *testing.T) {
	for _, size := range []int{0, 1, 3, 8} {
		h := New(0)
		for i := 0; i < size; i++ {
			h.Push(int64(i), Score{Primary: float64(i * 3 % 5), Secondary: float64(i)})
		}
		got := h.TopN(nil, size+10)
		if len(got) != size {
			t.Fatalf("size %d: TopN(n=%d) returned %d ids", size, size+10, len(got))
		}
		for i := 1; i < len(got); i++ {
			a, _ := h.Score(got[i-1])
			b, _ := h.Score(got[i])
			if a.Less(b) {
				t.Fatalf("size %d: TopN out of order at %d: %v before %v", size, i, a, b)
			}
		}
		if h.Len() != size {
			t.Fatalf("TopN mutated the heap: len %d, want %d", h.Len(), size)
		}
		if err := h.Verify(); err != nil {
			t.Fatal(err)
		}
	}
}
