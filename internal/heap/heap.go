// Package heap provides an indexed binary max-heap used as the priority
// queue substrate of the MultiPrio scheduler.
//
// The paper (Section III-B) manages ready tasks in one binary max-heap per
// memory node. A task may be duplicated across several heaps, and the
// eviction mechanism (Section V-D) removes a task from one heap while the
// duplicates survive in the others. That requires a heap supporting, beyond
// the usual push/pop-max:
//
//   - removal of an arbitrary element by identity (eviction, lazy
//     invalidation of duplicates already executed elsewhere),
//   - in-place priority updates (re-normalization of scores),
//   - bounded inspection of the first n elements without popping them
//     (the locality-aware POP scans the top n candidates, Section V-C).
//
// The heap is parameterized by an integer item identity. Callers keep a
// side table from identity to payload. All operations are O(log n) except
// TopN which is O(n log n) in the requested n.
package heap

import "fmt"

// Score is the ordering key of a heap element: a primary key and a
// tie-breaking secondary key, both descending. MultiPrio uses the gain
// heuristic as primary key and the NOD criticality as secondary key
// (Section IV-B of the paper).
type Score struct {
	Primary   float64
	Secondary float64
}

// Less reports whether s orders strictly below o in the max-heap, i.e. o
// has higher priority.
func (s Score) Less(o Score) bool {
	if s.Primary != o.Primary {
		return s.Primary < o.Primary
	}
	return s.Secondary < o.Secondary
}

type entry struct {
	id    int64
	score Score
}

// ScoredID is a TopNScored result element: an item identity with the
// score it held at scan time.
type ScoredID struct {
	ID    int64
	Score Score
}

// cand is a frontier element of the partial TopN traversal.
type cand struct {
	idx   int
	score Score
}

// Heap is an indexed binary max-heap keyed by (Primary, Secondary)
// descending. The zero value is not usable; call New.
//
// Heap is not safe for concurrent use; callers synchronize externally
// (the scheduler engine holds one lock per heap set).
type Heap struct {
	items []entry
	pos   map[int64]int // item id -> index in items

	// frontier is the reused scratch of the partial TopN traversal
	// (POP runs a top-n scan on every idle worker wake-up; allocating
	// the frontier there dominated the scheduler's allocation profile).
	frontier []cand
}

// New returns an empty heap with capacity hint cap.
func New(cap int) *Heap {
	if cap < 0 {
		cap = 0
	}
	return &Heap{
		items: make([]entry, 0, cap),
		pos:   make(map[int64]int, cap),
	}
}

// Len returns the number of elements currently stored.
func (h *Heap) Len() int { return len(h.items) }

// Contains reports whether the item id is currently in the heap.
func (h *Heap) Contains(id int64) bool {
	_, ok := h.pos[id]
	return ok
}

// Score returns the current score of id and whether it is present.
func (h *Heap) Score(id int64) (Score, bool) {
	i, ok := h.pos[id]
	if !ok {
		return Score{}, false
	}
	return h.items[i].score, true
}

// Push inserts id with the given score. It panics if id is already
// present: a task is pushed at most once per memory-node heap.
func (h *Heap) Push(id int64, score Score) {
	if _, ok := h.pos[id]; ok {
		panic(fmt.Sprintf("heap: duplicate push of id %d", id))
	}
	h.items = append(h.items, entry{id: id, score: score})
	i := len(h.items) - 1
	h.pos[id] = i
	h.up(i)
}

// Peek returns the id and score of the maximum element without removing
// it. ok is false when the heap is empty.
func (h *Heap) Peek() (id int64, score Score, ok bool) {
	if len(h.items) == 0 {
		return 0, Score{}, false
	}
	e := h.items[0]
	return e.id, e.score, true
}

// Pop removes and returns the maximum element. ok is false when empty.
func (h *Heap) Pop() (id int64, score Score, ok bool) {
	if len(h.items) == 0 {
		return 0, Score{}, false
	}
	e := h.items[0]
	h.removeAt(0)
	return e.id, e.score, true
}

// Remove deletes id from the heap. It reports whether id was present.
// This implements both the eviction mechanism and the lazy removal of
// duplicates already executed through another memory node's heap.
func (h *Heap) Remove(id int64) bool {
	i, ok := h.pos[id]
	if !ok {
		return false
	}
	h.removeAt(i)
	return true
}

// Update changes the score of id and restores the heap property. It
// reports whether id was present.
func (h *Heap) Update(id int64, score Score) bool {
	i, ok := h.pos[id]
	if !ok {
		return false
	}
	old := h.items[i].score
	h.items[i].score = score
	if old.Less(score) {
		h.up(i)
	} else {
		h.down(i)
	}
	return true
}

// TopN appends to dst the ids of up to n highest-priority elements in
// descending score order, without mutating the heap, and returns the
// extended slice. It is used by the locality-aware POP which examines the
// first n candidates (n=10 in the paper's evaluation).
func (h *Heap) TopN(dst []int64, n int) []int64 {
	h.topN(n, func(id int64, _ Score) {
		dst = append(dst, id)
	})
	return dst
}

// TopNScored is TopN returning each element with its score, so callers
// that compare scores against the head (the ε-window of the
// locality-aware POP) avoid a position-map lookup per candidate.
func (h *Heap) TopNScored(dst []ScoredID, n int) []ScoredID {
	h.topN(n, func(id int64, sc Score) {
		dst = append(dst, ScoredID{ID: id, Score: sc})
	})
	return dst
}

// topN runs the partial best-first traversal, calling emit for up to n
// elements in descending score order without mutating the heap. The
// frontier scratch lives on the Heap and is reused across calls.
func (h *Heap) topN(n int, emit func(id int64, sc Score)) {
	if n <= 0 || len(h.items) == 0 {
		return
	}
	if n > len(h.items) {
		n = len(h.items)
	}
	frontier := h.frontier[:0]
	push := func(c cand) {
		frontier = append(frontier, c)
		i := len(frontier) - 1
		for i > 0 {
			p := (i - 1) / 2
			if frontier[p].score.Less(frontier[i].score) {
				frontier[p], frontier[i] = frontier[i], frontier[p]
				i = p
			} else {
				break
			}
		}
	}
	pop := func() cand {
		top := frontier[0]
		last := len(frontier) - 1
		frontier[0] = frontier[last]
		frontier = frontier[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			big := i
			if l < len(frontier) && frontier[big].score.Less(frontier[l].score) {
				big = l
			}
			if r < len(frontier) && frontier[big].score.Less(frontier[r].score) {
				big = r
			}
			if big == i {
				break
			}
			frontier[i], frontier[big] = frontier[big], frontier[i]
			i = big
		}
		return top
	}
	push(cand{idx: 0, score: h.items[0].score})
	for len(frontier) > 0 && n > 0 {
		c := pop()
		e := h.items[c.idx]
		emit(e.id, e.score)
		n--
		if n == 0 {
			break
		}
		if l := 2*c.idx + 1; l < len(h.items) {
			push(cand{idx: l, score: h.items[l].score})
		}
		if r := 2*c.idx + 2; r < len(h.items) {
			push(cand{idx: r, score: h.items[r].score})
		}
	}
	h.frontier = frontier[:0]
}

// Clear removes all elements.
func (h *Heap) Clear() {
	h.items = h.items[:0]
	for k := range h.pos {
		delete(h.pos, k)
	}
}

// Verify checks the internal heap invariants; it is exported for tests
// and returns a descriptive error when an invariant is broken.
func (h *Heap) Verify() error {
	if len(h.items) != len(h.pos) {
		return fmt.Errorf("heap: %d items but %d positions", len(h.items), len(h.pos))
	}
	for i, e := range h.items {
		if p, ok := h.pos[e.id]; !ok || p != i {
			return fmt.Errorf("heap: id %d at index %d has position entry %d (present=%v)", e.id, i, p, ok)
		}
		if l := 2*i + 1; l < len(h.items) && h.items[i].score.Less(h.items[l].score) {
			return fmt.Errorf("heap: order violated between %d and left child %d", i, l)
		}
		if r := 2*i + 2; r < len(h.items) && h.items[i].score.Less(h.items[r].score) {
			return fmt.Errorf("heap: order violated between %d and right child %d", i, r)
		}
	}
	return nil
}

func (h *Heap) removeAt(i int) {
	last := len(h.items) - 1
	delete(h.pos, h.items[i].id)
	if i != last {
		h.items[i] = h.items[last]
		h.pos[h.items[i].id] = i
	}
	h.items = h.items[:last]
	if i < len(h.items) {
		h.up(i)
		h.down(i)
	}
}

func (h *Heap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.items[p].score.Less(h.items[i].score) {
			break
		}
		h.swap(p, i)
		i = p
	}
}

func (h *Heap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(h.items) && h.items[big].score.Less(h.items[l].score) {
			big = l
		}
		if r < len(h.items) && h.items[big].score.Less(h.items[r].score) {
			big = r
		}
		if big == i {
			return
		}
		h.swap(i, big)
		i = big
	}
}

func (h *Heap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.pos[h.items[i].id] = i
	h.pos[h.items[j].id] = j
}
