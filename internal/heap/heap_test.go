package heap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyHeap(t *testing.T) {
	h := New(0)
	if h.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", h.Len())
	}
	if _, _, ok := h.Peek(); ok {
		t.Error("Peek on empty heap returned ok")
	}
	if _, _, ok := h.Pop(); ok {
		t.Error("Pop on empty heap returned ok")
	}
	if h.Remove(42) {
		t.Error("Remove on empty heap returned true")
	}
	if h.Update(42, Score{}) {
		t.Error("Update on empty heap returned true")
	}
	if got := h.TopN(nil, 5); len(got) != 0 {
		t.Errorf("TopN on empty heap = %v, want empty", got)
	}
}

func TestPushPopOrdering(t *testing.T) {
	h := New(8)
	h.Push(1, Score{Primary: 0.2})
	h.Push(2, Score{Primary: 0.9})
	h.Push(3, Score{Primary: 0.5})
	h.Push(4, Score{Primary: 0.7})

	want := []int64{2, 4, 3, 1}
	for i, w := range want {
		id, _, ok := h.Pop()
		if !ok {
			t.Fatalf("pop %d: heap empty", i)
		}
		if id != w {
			t.Errorf("pop %d = id %d, want %d", i, id, w)
		}
	}
}

func TestSecondaryTieBreak(t *testing.T) {
	h := New(4)
	h.Push(1, Score{Primary: 0.5, Secondary: 0.1})
	h.Push(2, Score{Primary: 0.5, Secondary: 0.9})
	h.Push(3, Score{Primary: 0.5, Secondary: 0.4})

	want := []int64{2, 3, 1}
	for i, w := range want {
		id, _, _ := h.Pop()
		if id != w {
			t.Errorf("pop %d = id %d, want %d (secondary tie-break)", i, id, w)
		}
	}
}

func TestDuplicatePushPanics(t *testing.T) {
	h := New(2)
	h.Push(7, Score{Primary: 1})
	defer func() {
		if recover() == nil {
			t.Error("duplicate push did not panic")
		}
	}()
	h.Push(7, Score{Primary: 2})
}

func TestRemoveArbitrary(t *testing.T) {
	h := New(8)
	for i := int64(0); i < 8; i++ {
		h.Push(i, Score{Primary: float64(i)})
	}
	if !h.Remove(3) {
		t.Fatal("Remove(3) = false")
	}
	if h.Remove(3) {
		t.Fatal("second Remove(3) = true")
	}
	if h.Contains(3) {
		t.Fatal("Contains(3) after removal")
	}
	if err := h.Verify(); err != nil {
		t.Fatal(err)
	}
	var got []int64
	for {
		id, _, ok := h.Pop()
		if !ok {
			break
		}
		got = append(got, id)
	}
	want := []int64{7, 6, 5, 4, 2, 1, 0}
	if len(got) != len(want) {
		t.Fatalf("pop sequence %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop sequence %v, want %v", got, want)
		}
	}
}

func TestUpdateRaisesAndLowers(t *testing.T) {
	h := New(4)
	h.Push(1, Score{Primary: 0.1})
	h.Push(2, Score{Primary: 0.2})
	h.Push(3, Score{Primary: 0.3})

	if !h.Update(1, Score{Primary: 0.99}) {
		t.Fatal("Update(1) = false")
	}
	if id, _, _ := h.Peek(); id != 1 {
		t.Errorf("after raising 1, Peek = %d, want 1", id)
	}
	if !h.Update(1, Score{Primary: 0.0}) {
		t.Fatal("second Update(1) = false")
	}
	if id, _, _ := h.Peek(); id != 3 {
		t.Errorf("after lowering 1, Peek = %d, want 3", id)
	}
	if err := h.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestScoreLookup(t *testing.T) {
	h := New(2)
	h.Push(5, Score{Primary: 0.5, Secondary: 0.25})
	s, ok := h.Score(5)
	if !ok || s.Primary != 0.5 || s.Secondary != 0.25 {
		t.Errorf("Score(5) = %+v, %v", s, ok)
	}
	if _, ok := h.Score(6); ok {
		t.Error("Score(6) = ok for absent id")
	}
}

func TestTopNOrderAndNonMutation(t *testing.T) {
	h := New(16)
	rng := rand.New(rand.NewSource(1))
	scores := make(map[int64]float64)
	for i := int64(0); i < 16; i++ {
		s := rng.Float64()
		scores[i] = s
		h.Push(i, Score{Primary: s})
	}
	top := h.TopN(nil, 5)
	if len(top) != 5 {
		t.Fatalf("TopN returned %d ids, want 5", len(top))
	}
	// Must be the 5 best, in descending order.
	for i := 1; i < len(top); i++ {
		if scores[top[i-1]] < scores[top[i]] {
			t.Errorf("TopN not descending at %d: %v", i, top)
		}
	}
	all := make([]int64, 0, 16)
	for id := range scores {
		all = append(all, id)
	}
	sort.Slice(all, func(a, b int) bool { return scores[all[a]] > scores[all[b]] })
	for i := 0; i < 5; i++ {
		if top[i] != all[i] {
			t.Errorf("TopN[%d] = %d, want %d", i, top[i], all[i])
		}
	}
	if h.Len() != 16 {
		t.Errorf("TopN mutated heap: Len = %d", h.Len())
	}
	if err := h.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestTopNLargerThanHeap(t *testing.T) {
	h := New(3)
	h.Push(1, Score{Primary: 1})
	h.Push(2, Score{Primary: 2})
	got := h.TopN(nil, 10)
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Errorf("TopN(10) = %v, want [2 1]", got)
	}
}

func TestClear(t *testing.T) {
	h := New(4)
	h.Push(1, Score{Primary: 1})
	h.Push(2, Score{Primary: 2})
	h.Clear()
	if h.Len() != 0 || h.Contains(1) || h.Contains(2) {
		t.Error("Clear did not empty the heap")
	}
	h.Push(1, Score{Primary: 3}) // reusable after Clear
	if id, _, _ := h.Peek(); id != 1 {
		t.Error("heap unusable after Clear")
	}
}

// TestQuickRandomOperations drives the heap with random operation
// sequences and checks the invariants plus pop-order correctness against
// a reference implementation.
func TestQuickRandomOperations(t *testing.T) {
	f := func(seed int64, opsRaw []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		h := New(0)
		ref := make(map[int64]Score)
		next := int64(0)
		for _, op := range opsRaw {
			switch op % 4 {
			case 0: // push
				s := Score{Primary: rng.Float64(), Secondary: rng.Float64()}
				h.Push(next, s)
				ref[next] = s
				next++
			case 1: // pop max
				id, sc, ok := h.Pop()
				if ok != (len(ref) > 0) {
					return false
				}
				if !ok {
					continue
				}
				for _, s := range ref {
					if sc.Less(s) {
						return false // popped element was not max
					}
				}
				if ref[id] != sc {
					return false
				}
				delete(ref, id)
			case 2: // remove random existing
				if len(ref) == 0 {
					continue
				}
				var id int64
				for k := range ref {
					id = k
					break
				}
				if !h.Remove(id) {
					return false
				}
				delete(ref, id)
			case 3: // update random existing
				if len(ref) == 0 {
					continue
				}
				var id int64
				for k := range ref {
					id = k
					break
				}
				s := Score{Primary: rng.Float64(), Secondary: rng.Float64()}
				if !h.Update(id, s) {
					return false
				}
				ref[id] = s
			}
			if err := h.Verify(); err != nil {
				t.Logf("invariant: %v", err)
				return false
			}
			if h.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTopNMatchesSort cross-checks TopN against full sorting.
func TestQuickTopNMatchesSort(t *testing.T) {
	f := func(seed int64, size uint8, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		sz := int(size%64) + 1
		n := int(nRaw%16) + 1
		h := New(sz)
		type kv struct {
			id int64
			s  Score
		}
		var all []kv
		for i := 0; i < sz; i++ {
			s := Score{Primary: rng.Float64(), Secondary: rng.Float64()}
			h.Push(int64(i), s)
			all = append(all, kv{int64(i), s})
		}
		sort.Slice(all, func(a, b int) bool { return all[b].s.Less(all[a].s) })
		top := h.TopN(nil, n)
		want := n
		if want > sz {
			want = sz
		}
		if len(top) != want {
			return false
		}
		for i := 0; i < want; i++ {
			if top[i] != all[i].id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	h := New(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := int64(i)
		h.Push(id, Score{Primary: rng.Float64()})
		if h.Len() > 1024 {
			h.Pop()
		}
	}
}

func BenchmarkTopN10(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	h := New(4096)
	for i := 0; i < 4096; i++ {
		h.Push(int64(i), Score{Primary: rng.Float64()})
	}
	var buf []int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = h.TopN(buf[:0], 10)
	}
}
