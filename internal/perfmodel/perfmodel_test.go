package perfmodel

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"multiprio/internal/platform"
)

func prior(v float64) func() (float64, bool) {
	return func() (float64, bool) { return v, true }
}

func TestEstimateFallsBackToPrior(t *testing.T) {
	h := NewHistory()
	got, ok := h.Estimate("gemm", platform.ArchCPU, 960, prior(0.5))
	if !ok || got != 0.5 {
		t.Errorf("Estimate with empty history = %v, %v; want prior 0.5", got, ok)
	}
	if _, ok := h.Estimate("gemm", platform.ArchCPU, 960, nil); ok {
		t.Error("Estimate with no prior should return ok=false")
	}
}

func TestRecordThenEstimateUsesMean(t *testing.T) {
	h := NewHistory()
	h.Record("gemm", platform.ArchGPU, 960, 1.0)
	h.Record("gemm", platform.ArchGPU, 960, 3.0)
	got, ok := h.Estimate("gemm", platform.ArchGPU, 960, prior(99))
	if !ok || got != 2.0 {
		t.Errorf("Estimate = %v, %v; want mean 2.0", got, ok)
	}
	if n := h.Samples("gemm", platform.ArchGPU, 960); n != 2 {
		t.Errorf("Samples = %d, want 2", n)
	}
}

func TestBucketsAreIndependent(t *testing.T) {
	h := NewHistory()
	h.Record("gemm", platform.ArchCPU, 960, 1.0)
	h.Record("gemm", platform.ArchGPU, 960, 0.1)
	h.Record("potrf", platform.ArchCPU, 960, 2.0)
	h.Record("gemm", platform.ArchCPU, 1920, 8.0)

	cases := []struct {
		kind string
		arch platform.ArchID
		fp   uint64
		want float64
	}{
		{"gemm", platform.ArchCPU, 960, 1.0},
		{"gemm", platform.ArchGPU, 960, 0.1},
		{"potrf", platform.ArchCPU, 960, 2.0},
		{"gemm", platform.ArchCPU, 1920, 8.0},
	}
	for _, c := range cases {
		if got, _ := h.Mean(c.kind, c.arch, c.fp); got != c.want {
			t.Errorf("Mean(%s,%d,%d) = %v, want %v", c.kind, c.arch, c.fp, got, c.want)
		}
	}
}

func TestInvalidSamplesIgnored(t *testing.T) {
	h := NewHistory()
	h.Record("gemm", platform.ArchCPU, 1, 0)
	h.Record("gemm", platform.ArchCPU, 1, -1)
	h.Record("gemm", platform.ArchCPU, 1, math.NaN())
	h.Record("gemm", platform.ArchCPU, 1, math.Inf(1))
	if n := h.Samples("gemm", platform.ArchCPU, 1); n != 0 {
		t.Errorf("invalid samples recorded: n = %d", n)
	}
}

func TestStdDev(t *testing.T) {
	h := NewHistory()
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		h.Record("k", 0, 1, v)
	}
	got := h.StdDev("k", 0, 1)
	want := math.Sqrt(32.0 / 7.0) // sample variance of the classic example
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
	if h.StdDev("absent", 0, 1) != 0 {
		t.Error("StdDev of absent bucket should be 0")
	}
}

func TestReset(t *testing.T) {
	h := NewHistory()
	h.Record("k", 0, 1, 5)
	h.Reset()
	if n := h.Samples("k", 0, 1); n != 0 {
		t.Errorf("Samples after reset = %d", n)
	}
}

func TestDumpContainsBuckets(t *testing.T) {
	h := NewHistory()
	h.Record("potrf", platform.ArchCPU, 960, 1)
	h.Record("gemm", platform.ArchGPU, 1920, 2)
	d := h.Dump()
	if !strings.Contains(d, "potrf") || !strings.Contains(d, "gemm") {
		t.Errorf("Dump missing buckets:\n%s", d)
	}
	if !strings.HasPrefix(d, "gemm") {
		t.Errorf("Dump should sort by kind; got:\n%s", d)
	}
}

func TestOracle(t *testing.T) {
	var o Oracle
	got, ok := o.Estimate("k", 0, 1, prior(7))
	if !ok || got != 7 {
		t.Errorf("Oracle.Estimate = %v, %v", got, ok)
	}
	if _, ok := o.Estimate("k", 0, 1, nil); ok {
		t.Error("Oracle with nil prior should be ok=false")
	}
}

func TestConcurrentRecordEstimate(t *testing.T) {
	h := NewHistory()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Record("k", platform.ArchID(g%2), uint64(i%4), 1.0)
				h.Estimate("k", platform.ArchID(g%2), uint64(i%4), prior(1))
			}
		}(g)
	}
	wg.Wait()
	total := int64(0)
	for a := 0; a < 2; a++ {
		for fp := 0; fp < 4; fp++ {
			total += h.Samples("k", platform.ArchID(a), uint64(fp))
		}
	}
	if total != 8*500 {
		t.Errorf("lost samples under concurrency: %d, want %d", total, 8*500)
	}
}

// Property: the running mean equals the arithmetic mean of the inputs.
func TestQuickMeanMatchesArithmetic(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistory()
		count := int(n%50) + 1
		sum := 0.0
		for i := 0; i < count; i++ {
			v := rng.Float64() + 0.001
			sum += v
			h.Record("k", 0, 1, v)
		}
		got, ok := h.Mean("k", 0, 1)
		return ok && math.Abs(got-sum/float64(count)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
