// Package perfmodel provides history-based execution-time estimation for
// tasks, in the spirit of StarPU's calibrated performance models
// (Augonnet et al., Euro-Par 2009): per (kernel, architecture, footprint)
// buckets accumulating online mean and variance of observed execution
// times.
//
// Schedulers query δ(t, a) — the estimated execution time of task t on
// architecture a — through the Estimator interface. The History model
// answers from recorded samples and falls back to a static prior (the
// application cost model, standing in for offline calibration) until the
// first sample for a bucket arrives.
package perfmodel

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"multiprio/internal/platform"
)

// Key identifies a performance-model bucket: one kernel at one data
// footprint on one architecture.
type Key struct {
	Kind      string
	Arch      platform.ArchID
	Footprint uint64
}

// Estimator estimates task execution times per architecture.
type Estimator interface {
	// Estimate returns δ for the given bucket in seconds.
	// ok is false when the kernel has no implementation on arch
	// (callers treat the time as +Inf).
	Estimate(kind string, arch platform.ArchID, footprint uint64, prior func() (float64, bool)) (sec float64, ok bool)
}

// stats accumulates Welford online mean/variance.
type stats struct {
	n    int64
	mean float64
	m2   float64
}

func (s *stats) add(x float64) {
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

func (s *stats) variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// History is a thread-safe history-based performance model.
type History struct {
	mu      sync.RWMutex
	buckets map[Key]*stats
}

// NewHistory returns an empty history model.
func NewHistory() *History {
	return &History{buckets: make(map[Key]*stats)}
}

// Record feeds one observed execution time into the model. Times are
// normalized to the architecture reference unit (speed factor 1); the
// engine divides out per-unit speed factors before recording.
func (h *History) Record(kind string, arch platform.ArchID, footprint uint64, sec float64) {
	if sec <= 0 || math.IsNaN(sec) || math.IsInf(sec, 0) {
		return
	}
	k := Key{Kind: kind, Arch: arch, Footprint: footprint}
	h.mu.Lock()
	s := h.buckets[k]
	if s == nil {
		s = &stats{}
		h.buckets[k] = s
	}
	s.add(sec)
	h.mu.Unlock()
}

// Estimate implements Estimator. With no recorded samples it defers to
// prior (the static application cost model); with samples it returns the
// running mean.
func (h *History) Estimate(kind string, arch platform.ArchID, footprint uint64, prior func() (float64, bool)) (float64, bool) {
	k := Key{Kind: kind, Arch: arch, Footprint: footprint}
	h.mu.RLock()
	s := h.buckets[k]
	h.mu.RUnlock()
	if s != nil && s.n > 0 {
		return s.mean, true
	}
	if prior == nil {
		return 0, false
	}
	return prior()
}

// Samples returns the number of recorded samples for a bucket.
func (h *History) Samples(kind string, arch platform.ArchID, footprint uint64) int64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if s := h.buckets[Key{Kind: kind, Arch: arch, Footprint: footprint}]; s != nil {
		return s.n
	}
	return 0
}

// Mean returns the recorded mean for a bucket, ok=false when empty.
func (h *History) Mean(kind string, arch platform.ArchID, footprint uint64) (float64, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if s := h.buckets[Key{Kind: kind, Arch: arch, Footprint: footprint}]; s != nil && s.n > 0 {
		return s.mean, true
	}
	return 0, false
}

// StdDev returns the sample standard deviation for a bucket.
func (h *History) StdDev(kind string, arch platform.ArchID, footprint uint64) float64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if s := h.buckets[Key{Kind: kind, Arch: arch, Footprint: footprint}]; s != nil {
		return math.Sqrt(s.variance())
	}
	return 0
}

// Reset clears all recorded samples.
func (h *History) Reset() {
	h.mu.Lock()
	h.buckets = make(map[Key]*stats)
	h.mu.Unlock()
}

// Dump renders the model contents sorted by kernel then architecture,
// for debugging and the trace tool.
func (h *History) Dump() string {
	h.mu.RLock()
	keys := make([]Key, 0, len(h.buckets))
	for k := range h.buckets {
		keys = append(keys, k)
	}
	h.mu.RUnlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Kind != keys[j].Kind {
			return keys[i].Kind < keys[j].Kind
		}
		if keys[i].Arch != keys[j].Arch {
			return keys[i].Arch < keys[j].Arch
		}
		return keys[i].Footprint < keys[j].Footprint
	})
	var b strings.Builder
	for _, k := range keys {
		h.mu.RLock()
		s := h.buckets[k]
		n, mean, sd := s.n, s.mean, math.Sqrt(s.variance())
		h.mu.RUnlock()
		fmt.Fprintf(&b, "%-12s arch=%d fp=%-12d n=%-6d mean=%.3e sd=%.3e\n",
			k.Kind, k.Arch, k.Footprint, n, mean, sd)
	}
	return b.String()
}

// Oracle is an Estimator that always answers from the prior, i.e. it
// assumes a perfectly calibrated offline model. Experiments use Oracle
// for determinism; History is exercised by the runtime tests and the
// threaded engine.
type Oracle struct{}

// Estimate implements Estimator.
func (Oracle) Estimate(kind string, arch platform.ArchID, footprint uint64, prior func() (float64, bool)) (float64, bool) {
	if prior == nil {
		return 0, false
	}
	return prior()
}
