package perfmodel

import (
	"encoding/json"
	"fmt"
	"io"

	"multiprio/internal/platform"
)

// persistedBucket is the JSON form of one calibrated bucket. Mean and
// M2 suffice to restore the Welford accumulator exactly.
type persistedBucket struct {
	Kind      string          `json:"kind"`
	Arch      platform.ArchID `json:"arch"`
	Footprint uint64          `json:"footprint"`
	N         int64           `json:"n"`
	Mean      float64         `json:"mean"`
	M2        float64         `json:"m2"`
}

// Save serializes the calibrated model to JSON, the counterpart of
// StarPU's on-disk performance models (~/.starpu/sampling): calibrate
// once on the threaded engine, reuse across runs.
func (h *History) Save(w io.Writer) error {
	h.mu.RLock()
	out := make([]persistedBucket, 0, len(h.buckets))
	for k, s := range h.buckets {
		out = append(out, persistedBucket{
			Kind: k.Kind, Arch: k.Arch, Footprint: k.Footprint,
			N: s.n, Mean: s.mean, M2: s.m2,
		})
	}
	h.mu.RUnlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// Load restores a model saved with Save, merging into the receiver
// (existing buckets are replaced).
func (h *History) Load(r io.Reader) error {
	var in []persistedBucket
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return fmt.Errorf("perfmodel: %w", err)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, b := range in {
		if b.N < 0 || b.Mean < 0 {
			return fmt.Errorf("perfmodel: invalid bucket %q n=%d mean=%g", b.Kind, b.N, b.Mean)
		}
		h.buckets[Key{Kind: b.Kind, Arch: b.Arch, Footprint: b.Footprint}] = &stats{
			n: b.N, mean: b.Mean, m2: b.M2,
		}
	}
	return nil
}
