package perfmodel

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"multiprio/internal/platform"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	h := NewHistory()
	for _, v := range []float64{1, 2, 3, 4} {
		h.Record("gemm", platform.ArchGPU, 960, v)
	}
	h.Record("potrf", platform.ArchCPU, 640, 0.5)

	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}

	h2 := NewHistory()
	if err := h2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	mean, ok := h2.Mean("gemm", platform.ArchGPU, 960)
	if !ok || mean != 2.5 {
		t.Errorf("restored mean = %v, %v; want 2.5", mean, ok)
	}
	if got, want := h2.StdDev("gemm", platform.ArchGPU, 960), h.StdDev("gemm", platform.ArchGPU, 960); math.Abs(got-want) > 1e-12 {
		t.Errorf("restored stddev = %v, want %v", got, want)
	}
	if n := h2.Samples("potrf", platform.ArchCPU, 640); n != 1 {
		t.Errorf("restored samples = %d", n)
	}
	// Restored models keep accumulating correctly.
	h2.Record("gemm", platform.ArchGPU, 960, 10)
	mean, _ = h2.Mean("gemm", platform.ArchGPU, 960)
	if mean != 4 {
		t.Errorf("post-load mean = %v, want 4", mean)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	h := NewHistory()
	if err := h.Load(strings.NewReader("not json")); err == nil {
		t.Error("Load accepted garbage")
	}
	if err := h.Load(strings.NewReader(`[{"kind":"k","n":-1}]`)); err == nil {
		t.Error("Load accepted negative sample count")
	}
}

func TestLoadMergesAndReplaces(t *testing.T) {
	h := NewHistory()
	h.Record("k", 0, 1, 100) // will be replaced
	h.Record("other", 0, 1, 7)
	if err := h.Load(strings.NewReader(`[{"kind":"k","arch":0,"footprint":1,"n":2,"mean":5,"m2":0}]`)); err != nil {
		t.Fatal(err)
	}
	if mean, _ := h.Mean("k", 0, 1); mean != 5 {
		t.Errorf("bucket not replaced: mean = %v", mean)
	}
	if mean, _ := h.Mean("other", 0, 1); mean != 7 {
		t.Errorf("unrelated bucket lost: mean = %v", mean)
	}
}
