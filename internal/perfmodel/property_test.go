package perfmodel

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"multiprio/internal/platform"
)

// TestPropertyOnlineMatchesBatch is the Welford correctness property:
// for random observation streams of random lengths and scales, the
// online mean and sample variance must match a two-pass batch
// recomputation to tight relative tolerance.
func TestPropertyOnlineMatchesBatch(t *testing.T) {
	const kind, fp = "gemm", uint64(1 << 20)
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 1))
		n := 1 + rng.Intn(400)
		// Mix scales across trials: microseconds to kiloseconds, with
		// occasional tight clusters (small variance, the numerically
		// hard case for the naive sum-of-squares formula).
		scale := math.Pow(10, float64(rng.Intn(7))-3)
		center := scale * (1 + rng.Float64())
		spread := scale
		if trial%3 == 0 {
			spread = scale * 1e-6
		}
		h := NewHistory()
		xs := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			x := center + spread*(rng.Float64()-0.5)
			xs = append(xs, x)
			h.Record(kind, 0, fp, x)
		}
		// Two-pass batch recomputation.
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(n)
		var m2 float64
		for _, x := range xs {
			m2 += (x - mean) * (x - mean)
		}
		variance := 0.0
		if n >= 2 {
			variance = m2 / float64(n-1)
		}

		gotMean, ok := h.Mean(kind, 0, fp)
		if !ok {
			t.Fatalf("trial %d: no mean after %d samples", trial, n)
		}
		if !closeRel(gotMean, mean, 1e-9) {
			t.Fatalf("trial %d (n=%d): online mean %g, batch %g", trial, n, gotMean, mean)
		}
		gotSD := h.StdDev(kind, 0, fp)
		if !closeRel(gotSD, math.Sqrt(variance), 1e-6) {
			t.Fatalf("trial %d (n=%d): online sd %g, batch %g", trial, n, gotSD, math.Sqrt(variance))
		}
		if got := h.Samples(kind, 0, fp); got != int64(n) {
			t.Fatalf("trial %d: %d samples recorded, want %d", trial, got, n)
		}
	}
}

func closeRel(a, b, tol float64) bool {
	if a == b {
		return true
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return true
	}
	return math.Abs(a-b)/den <= tol
}

// TestPropertyPersistRoundTripExact checks that Save/Load restores the
// Welford accumulators bit-exactly: estimates, sample counts and
// standard deviations after the round-trip equal the originals, and
// further Records continue the stream as if never serialized.
func TestPropertyPersistRoundTripExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := NewHistory()
	type bucket struct {
		kind string
		arch platform.ArchID
		fp   uint64
	}
	var buckets []bucket
	for _, kind := range []string{"potrf", "trsm", "syrk", "gemm"} {
		for arch := platform.ArchID(0); arch < 3; arch++ {
			fp := uint64(1) << uint(10+rng.Intn(20))
			buckets = append(buckets, bucket{kind, arch, fp})
			for i, n := 0, 1+rng.Intn(50); i < n; i++ {
				h.Record(kind, arch, fp, rng.ExpFloat64())
			}
		}
	}
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewHistory()
	if err := restored.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	for _, bk := range buckets {
		wantN := h.Samples(bk.kind, bk.arch, bk.fp)
		if got := restored.Samples(bk.kind, bk.arch, bk.fp); got != wantN {
			t.Errorf("%v: samples %d after round-trip, want %d", bk, got, wantN)
		}
		wantMean, _ := h.Mean(bk.kind, bk.arch, bk.fp)
		gotMean, ok := restored.Mean(bk.kind, bk.arch, bk.fp)
		if !ok || gotMean != wantMean {
			t.Errorf("%v: mean %v after round-trip, want %v", bk, gotMean, wantMean)
		}
		if got, want := restored.StdDev(bk.kind, bk.arch, bk.fp), h.StdDev(bk.kind, bk.arch, bk.fp); got != want {
			t.Errorf("%v: sd %v after round-trip, want %v", bk, got, want)
		}
	}
	// The accumulator must continue identically post-restore.
	bk := buckets[0]
	for _, x := range []float64{0.5, 1.5, 2.5} {
		h.Record(bk.kind, bk.arch, bk.fp, x)
		restored.Record(bk.kind, bk.arch, bk.fp, x)
	}
	m1, _ := h.Mean(bk.kind, bk.arch, bk.fp)
	m2, _ := restored.Mean(bk.kind, bk.arch, bk.fp)
	if m1 != m2 || h.StdDev(bk.kind, bk.arch, bk.fp) != restored.StdDev(bk.kind, bk.arch, bk.fp) {
		t.Error("restored model diverges from original on further records")
	}
}

// TestFootprintBucketBoundary pins the bucketing contract: footprints
// are exact keys, so adjacent sizes (fp, fp±1) and the extremes (0,
// MaxUint64) never alias, and an unseen footprint falls back to the
// static prior even when neighbouring buckets are calibrated.
func TestFootprintBucketBoundary(t *testing.T) {
	h := NewHistory()
	const kind = "gemm"
	fps := []uint64{0, 1, 1 << 20, 1<<20 + 1, 1<<20 - 1, math.MaxUint64}
	for i, fp := range fps {
		want := float64(i+1) * 10
		h.Record(kind, 0, fp, want)
		h.Record(kind, 0, fp, want)
	}
	for i, fp := range fps {
		want := float64(i+1) * 10
		got, ok := h.Mean(kind, 0, fp)
		if !ok || got != want {
			t.Errorf("fp=%d: mean %v (ok=%v), want %v — neighbouring buckets alias", fp, got, ok, want)
		}
		if sd := h.StdDev(kind, 0, fp); sd != 0 {
			t.Errorf("fp=%d: sd %v after identical samples, want 0", fp, sd)
		}
	}
	// Unseen footprint between two calibrated ones: prior wins.
	prior := func() (float64, bool) { return 77, true }
	if got, ok := h.Estimate(kind, 0, 1<<19, prior); !ok || got != 77 {
		t.Errorf("unseen footprint: estimate %v (ok=%v), want prior 77", got, ok)
	}
	// A calibrated footprint must not consult the prior.
	if got, ok := h.Estimate(kind, 0, 1, prior); !ok || got != 20 {
		t.Errorf("calibrated footprint: estimate %v (ok=%v), want recorded mean 20", got, ok)
	}
}
