// Package heftcheck bridges the heft replay schedulers to the oracle:
// it assembles the oracle.StaticCheck for a finished run from the plan
// the scheduler computed, the repair events it logged, and the kills
// the engine applied. It lives outside both packages so that heft stays
// import-free of oracle (the oracle's own tests blank-import the full
// scheduler registry, which would otherwise cycle).
package heftcheck

import (
	"multiprio/internal/oracle"
	"multiprio/internal/runtime"
	"multiprio/internal/sched/heft"
)

// For builds the StaticCheck validating the run s just replayed. Pass
// the engine's applied kills (Result.Faults.AppliedKills; nil for
// fault-free runs).
func For(s *heft.Sched, kills []runtime.AppliedKill) *oracle.StaticCheck {
	p := s.Plan()
	sc := &oracle.StaticCheck{
		Assignment:  p.Assignment,
		Order:       p.Order,
		Finish:      p.Finish,
		Makespan:    p.Makespan,
		SlackFactor: s.EffectiveSlackFactor(),
		Kills:       kills,
	}
	for _, r := range s.Repairs() {
		sc.Repairs = append(sc.Repairs, oracle.StaticRepair{
			At:      r.At,
			Worker:  r.Worker,
			Reason:  string(r.Reason),
			Trigger: r.Trigger,
			Tasks:   r.Tasks,
		})
	}
	return sc
}
