// Package heft implements static list scheduling for the STF runtime:
// a full task→worker assignment and per-worker execution order computed
// from the performance model *before* execution, in contrast to every
// other policy in the registry, which decides online. Two ranking
// heuristics are provided — classic HEFT (Topcuoglu, Hariri & Wu 2002:
// upward rank + insertion-based earliest-finish-time selection) and an
// optimistic-finish-time variant in the spirit of PEFT (Arabnejad &
// Barbosa 2014: an optimistic cost table added to the EFT at selection
// time) — plus the replay machinery that executes a plan through the
// normal Push/Pop scheduler contract: pinned replay (the pure static
// baseline) and hybrid repair (replay with a dynamic fallback policy
// that absorbs deviations). See DESIGN.md §15.
package heft

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"multiprio/internal/platform"
	"multiprio/internal/runtime"
)

// Algorithm selects the ranking heuristic of a plan.
type Algorithm int

const (
	// RankUpward is classic HEFT: tasks prioritized by upward rank
	// (mean execution + mean communication along the longest path to an
	// exit task), workers chosen by insertion-based earliest finish
	// time.
	RankUpward Algorithm = iota
	// RankOptimistic is the optimistic-finish-time variant: tasks
	// prioritized by the mean of a PEFT-style optimistic cost table
	// (the best possible downstream completion assuming every
	// descendant lands on its ideal worker), workers chosen by
	// minimizing EFT plus that optimistic tail.
	RankOptimistic
)

// String returns the policy-name spelling of the algorithm.
func (a Algorithm) String() string {
	if a == RankOptimistic {
		return "heft-oft"
	}
	return "heft"
}

// Plan is a complete static schedule: where every task runs, in which
// order per worker, and the model-predicted timeline those choices were
// derived from. Slices are indexed by task ID (submission order).
type Plan struct {
	Alg Algorithm
	// Assignment[t] is the worker task t is pinned to.
	Assignment []platform.UnitID
	// Order[w] lists the task IDs planned on worker w in planned start
	// order; Slot[t] is t's index within Order[Assignment[t]].
	Order [][]int64
	Slot  []int
	// Start and Finish are the planned timeline under the performance
	// model; Makespan is the latest planned finish. Replay under noise,
	// slowdowns and faults deviates from these — the hybrid policy's
	// slack detection and the oracle's StaticCheck both measure drift
	// against them.
	Start, Finish []float64
	Makespan      float64
}

// rankHeap is a max-heap of ready task indices ordered by
// (rank descending, ID ascending) — the list-scheduling ready queue.
type rankHeap struct {
	ids  []int
	rank []float64
}

func (h *rankHeap) len() int { return len(h.ids) }

func (h *rankHeap) before(a, b int) bool {
	if h.rank[a] != h.rank[b] {
		return h.rank[a] > h.rank[b]
	}
	return a < b
}

func (h *rankHeap) push(i int) {
	h.ids = append(h.ids, i)
	for c := len(h.ids) - 1; c > 0; {
		p := (c - 1) / 2
		if !h.before(h.ids[c], h.ids[p]) {
			break
		}
		h.ids[c], h.ids[p] = h.ids[p], h.ids[c]
		c = p
	}
}

func (h *rankHeap) pop() int {
	top := h.ids[0]
	last := len(h.ids) - 1
	h.ids[0] = h.ids[last]
	h.ids = h.ids[:last]
	for p := 0; ; {
		c := 2*p + 1
		if c >= last {
			break
		}
		if c+1 < last && h.before(h.ids[c+1], h.ids[c]) {
			c++
		}
		if !h.before(h.ids[c], h.ids[p]) {
			break
		}
		h.ids[p], h.ids[c] = h.ids[c], h.ids[p]
		p = c
	}
	return top
}

// ival is one busy interval of a worker's partial schedule, kept sorted
// by start (intervals never overlap, so ends are sorted too).
type ival struct{ start, end float64 }

// insertionStart returns the earliest instant a task of length dur can
// start on a worker with busy intervals ivs, no earlier than ready
// (HEFT's insertion-based policy: gaps between already-placed tasks are
// eligible).
func insertionStart(ivs []ival, ready, dur float64) float64 {
	est := ready
	// Intervals ending at or before ready cannot constrain the start.
	i := sort.Search(len(ivs), func(i int) bool { return ivs[i].end > ready })
	for ; i < len(ivs); i++ {
		if ivs[i].start >= est+dur {
			break // the task fits in the gap before this interval
		}
		if ivs[i].end > est {
			est = ivs[i].end
		}
	}
	return est
}

// insertIval adds [start, end] to ivs keeping the start order.
func insertIval(ivs []ival, start, end float64) []ival {
	pos := sort.Search(len(ivs), func(i int) bool { return ivs[i].start > start })
	ivs = append(ivs, ival{})
	copy(ivs[pos+1:], ivs[pos:])
	ivs[pos] = ival{start, end}
	return ivs
}

// edgeBytes returns the bytes flowing across the dependency p → t: the
// summed sizes of handles p writes and t reads. Pure serialization
// edges (no shared data read downstream) carry zero bytes.
func edgeBytes(p, t *runtime.Task) int64 {
	var sum int64
	for _, pa := range p.Accesses {
		if !pa.Mode.IsWrite() {
			continue
		}
		for _, ta := range t.Accesses {
			if ta.Mode.IsRead() && ta.Handle.ID == pa.Handle.ID {
				sum += pa.Handle.Bytes
				break
			}
		}
	}
	return sum
}

// BuildPlan computes a static schedule for env.Graph on env.Machine
// using the estimates of env.Model. It is deterministic: no randomness,
// ties broken by lower ID. An error is returned when some task has no
// capable worker.
func BuildPlan(env *runtime.Env, alg Algorithm) (*Plan, error) {
	g, m := env.Graph, env.Machine
	n := len(g.Tasks)
	nu := len(m.Units)
	na := len(m.Archs)

	// δ(t, a) from the model, cached per (task, arch).
	delta := make([]float64, n*na)
	for i, t := range g.Tasks {
		for a := 0; a < na; a++ {
			delta[i*na+a] = env.Delta(t, platform.ArchID(a))
		}
	}

	// Mean execution cost over capable units (HEFT's w̄).
	wbar := make([]float64, n)
	for i, t := range g.Tasks {
		var sum float64
		cnt := 0
		for u := range m.Units {
			d := delta[i*na+int(m.Units[u].Arch)]
			if math.IsInf(d, 1) {
				continue
			}
			sum += d * m.Units[u].SpeedFactor
			cnt++
		}
		if cnt == 0 {
			return nil, fmt.Errorf("heft: task %d (%s) has no capable worker", t.ID, t.Kind)
		}
		wbar[i] = sum / float64(cnt)
	}

	// Mean communication cost of b bytes over distinct memory-node
	// pairs (HEFT's c̄ uses the average link).
	nm := len(m.Mems)
	avgXfer := func(b int64) float64 {
		if b == 0 || nm < 2 {
			return 0
		}
		var sum float64
		for src := 0; src < nm; src++ {
			for dst := 0; dst < nm; dst++ {
				if src != dst {
					sum += m.TransferTime(platform.MemID(src), platform.MemID(dst), b)
				}
			}
		}
		return sum / float64(nm*(nm-1))
	}

	// Priority ranks. Task IDs are topological (STF submission order),
	// so a single descending sweep visits successors first.
	rank := make([]float64, n)
	var oct []float64
	switch alg {
	case RankOptimistic:
		// Optimistic cost table: OCT[t][u] is the best possible time
		// from t's completion on u to the exit, assuming each successor
		// lands on its ideal worker.
		oct = make([]float64, n*nu)
		for i := n - 1; i >= 0; i-- {
			t := g.Tasks[i]
			for u := 0; u < nu; u++ {
				var worst float64
				for _, s := range t.Succs() {
					comm := avgXfer(edgeBytes(t, s))
					best := math.Inf(1)
					for u2 := 0; u2 < nu; u2++ {
						d := delta[s.ID*int64(na)+int64(m.Units[u2].Arch)]
						if math.IsInf(d, 1) {
							continue
						}
						v := oct[s.ID*int64(nu)+int64(u2)] + d*m.Units[u2].SpeedFactor
						if m.Units[u2].Mem != m.Units[u].Mem {
							v += comm
						}
						if v < best {
							best = v
						}
					}
					if best > worst {
						worst = best
					}
				}
				oct[int64(i)*int64(nu)+int64(u)] = worst
			}
			var sum float64
			for u := 0; u < nu; u++ {
				sum += oct[int64(i)*int64(nu)+int64(u)]
			}
			rank[i] = sum / float64(nu)
		}
	default:
		// Classic upward rank.
		for i := n - 1; i >= 0; i-- {
			t := g.Tasks[i]
			var tail float64
			for _, s := range t.Succs() {
				v := avgXfer(edgeBytes(t, s)) + rank[s.ID]
				if v > tail {
					tail = v
				}
			}
			rank[i] = wbar[i] + tail
		}
	}

	// Insertion-based EFT selection in rank order among *ready* tasks
	// (every predecessor already placed). Classic upward rank is
	// monotone along edges, so this pops in plain descending-rank order;
	// the OCT rank is not — a globally-sorted sweep could place a task
	// before its predecessor and read a zero finish time for it.
	ready := &rankHeap{rank: rank}
	npred := make([]int, n)
	for i, t := range g.Tasks {
		npred[i] = t.NumPreds()
		if npred[i] == 0 {
			ready.push(i)
		}
	}
	p := &Plan{
		Alg:        alg,
		Assignment: make([]platform.UnitID, n),
		Slot:       make([]int, n),
		Start:      make([]float64, n),
		Finish:     make([]float64, n),
		Order:      make([][]int64, nu),
	}
	busy := make([][]ival, nu)
	for ready.len() > 0 {
		i := ready.pop()
		t := g.Tasks[i]
		bestU := -1
		var bestStart, bestFinish, bestMetric float64
		bestMetric = math.Inf(1)
		for u := 0; u < nu; u++ {
			d := delta[int64(i)*int64(na)+int64(m.Units[u].Arch)]
			if math.IsInf(d, 1) {
				continue
			}
			dur := d * m.Units[u].SpeedFactor
			var ready float64
			for _, pr := range g.Preds(t) {
				r := p.Finish[pr.ID]
				if m.Units[p.Assignment[pr.ID]].Mem != m.Units[u].Mem {
					if b := edgeBytes(pr, t); b > 0 {
						r += m.TransferTime(m.Units[p.Assignment[pr.ID]].Mem, m.Units[u].Mem, b)
					}
				}
				if r > ready {
					ready = r
				}
			}
			st := insertionStart(busy[u], ready, dur)
			ft := st + dur
			metric := ft
			if alg == RankOptimistic {
				metric = ft + oct[int64(i)*int64(nu)+int64(u)]
			}
			if metric < bestMetric {
				bestU, bestStart, bestFinish, bestMetric = u, st, ft, metric
			}
		}
		if bestU < 0 {
			return nil, fmt.Errorf("heft: task %d (%s) has no capable worker", t.ID, t.Kind)
		}
		p.Assignment[i] = platform.UnitID(bestU)
		p.Start[i], p.Finish[i] = bestStart, bestFinish
		busy[bestU] = insertIval(busy[bestU], bestStart, bestFinish)
		if bestFinish > p.Makespan {
			p.Makespan = bestFinish
		}
		for _, s := range t.Succs() {
			npred[s.ID]--
			if npred[s.ID] == 0 {
				ready.push(int(s.ID))
			}
		}
	}

	// Per-worker order by planned start (insertion may place a task
	// into a gap before previously ranked ones).
	for i := range g.Tasks {
		w := p.Assignment[i]
		p.Order[w] = append(p.Order[w], int64(i))
	}
	for w := range p.Order {
		ord := p.Order[w]
		sort.Slice(ord, func(a, b int) bool {
			if p.Start[ord[a]] != p.Start[ord[b]] {
				return p.Start[ord[a]] < p.Start[ord[b]]
			}
			return ord[a] < ord[b]
		})
		for slot, id := range ord {
			p.Slot[id] = slot
		}
	}
	return p, nil
}

// CriticalWorker returns the worker owning the plan's critical path:
// the one assigned the latest-finishing task (lowest task ID on ties).
// Killing it mid-run strands the pure-static frontier.
func (p *Plan) CriticalWorker() platform.UnitID {
	best := int64(-1)
	for i := range p.Finish {
		if best < 0 || p.Finish[i] > p.Finish[best] {
			best = int64(i)
		}
	}
	if best < 0 {
		return 0
	}
	return p.Assignment[best]
}

// Canonical renders the plan in a deterministic text form, the static
// analogue of trace.Canonical: golden tests digest it to pin plan
// construction byte-for-byte.
func (p *Plan) Canonical() []byte {
	var b []byte
	b = append(b, "plan alg="...)
	b = append(b, p.Alg.String()...)
	b = append(b, " makespan="...)
	b = strconv.AppendFloat(b, p.Makespan, 'g', -1, 64)
	b = append(b, '\n')
	for i := range p.Assignment {
		b = append(b, 't')
		b = strconv.AppendInt(b, int64(i), 10)
		b = append(b, " w"...)
		b = strconv.AppendInt(b, int64(p.Assignment[i]), 10)
		b = append(b, " slot"...)
		b = strconv.AppendInt(b, int64(p.Slot[i]), 10)
		b = append(b, ' ')
		b = strconv.AppendFloat(b, p.Start[i], 'g', -1, 64)
		b = append(b, ' ')
		b = strconv.AppendFloat(b, p.Finish[i], 'g', -1, 64)
		b = append(b, '\n')
	}
	return b
}
