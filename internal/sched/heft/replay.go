package heft

import (
	"fmt"
	"sync"

	"multiprio/internal/platform"
	"multiprio/internal/runtime"
)

// Mode selects what replay does when execution deviates from the plan.
type Mode int

const (
	// Static is pinned replay: every task waits for its assigned worker
	// and runs in the planned per-worker order, no matter what the
	// environment does. A killed worker strands its remaining frontier
	// — the engines report it as sim.ErrDeadlock / runtime.ErrStarved.
	Static Mode = iota
	// Hybrid is replay with repair: a killed worker, or an observed
	// finish drifting past the slack budget, diverts the deviant
	// worker's remaining tasks to a dynamic fallback policy. Every
	// diversion is logged as a RepairEvent the oracle's StaticCheck
	// verifies against the trace.
	Hybrid
)

// RepairReason classifies why a repair event fired.
type RepairReason string

const (
	// RepairKill: the worker was killed by fault injection.
	RepairKill RepairReason = "kill"
	// RepairSlack: a task on the worker finished later than
	// planned finish + (SlackFactor−1) × plan makespan.
	RepairSlack RepairReason = "slack"
)

// RepairEvent records one deviation repair: at time At, worker Worker's
// remaining planned tasks (Tasks) were re-routed to the fallback
// policy. For slack repairs Trigger is the task whose measured-late
// finish justified the event; kill repairs set it to -1.
type RepairEvent struct {
	At      float64
	Worker  platform.UnitID
	Reason  RepairReason
	Trigger int64
	Tasks   []int64
}

// DefaultSlackFactor is the drift budget of hybrid repair: a task
// finishing later than planned finish + (factor−1) × plan makespan is a
// measured deviation. 1.5 tolerates half a plan makespan of accumulated
// drift — wide enough that model-vs-engine discrepancies (transfer
// queueing, commute serialization, moderate noise) never fire it, tight
// enough that a worker crawling through a slowdown window does.
const DefaultSlackFactor = 1.5

// Per-task replay state.
const (
	stUnready  uint8 = iota // dependencies not yet released
	stQueued                // pushed, waiting for its assigned worker
	stInFlight              // popped by its assigned worker
	stDiverted              // re-routed to the fallback policy
	stDone                  // effective completion seen
)

// Sched is the plan-replay scheduler. It is registered as "heft",
// "heft-oft" (Static) and "heft-hybrid", "heft-oft-hybrid" (Hybrid):
// Init computes the plan from the run's Env (graph, machine, perf
// model) — deterministically, so every run of a graph rebuilds the
// identical plan — and Pop hands worker w only w's next planned task.
type Sched struct {
	alg      Algorithm
	mode     Mode
	fallback runtime.Scheduler

	// SlackFactor overrides DefaultSlackFactor when > 1; set it before
	// the run starts (engines call Init once, before any Push).
	SlackFactor float64

	mu      sync.Mutex
	env     *runtime.Env
	plan    *Plan
	state   []uint8
	next    []int // per worker: first possibly pending slot in plan.Order
	dead    []bool
	repairs []RepairEvent
}

// NewStatic returns a pinned-replay scheduler (the pure static
// baseline) using the given ranking algorithm.
func NewStatic(alg Algorithm) *Sched { return &Sched{alg: alg, mode: Static} }

// NewHybrid returns a replay scheduler with deviation repair: diverted
// tasks are handed to fallback, which must be a fresh instance owned by
// this scheduler (Init re-initializes it).
func NewHybrid(alg Algorithm, fallback runtime.Scheduler) *Sched {
	if fallback == nil {
		panic("heft: NewHybrid with nil fallback")
	}
	return &Sched{alg: alg, mode: Hybrid, fallback: fallback}
}

// Name implements runtime.Scheduler.
func (s *Sched) Name() string {
	if s.mode == Hybrid {
		return s.alg.String() + "-hybrid"
	}
	return s.alg.String()
}

// Init implements runtime.Scheduler: it computes the static plan for
// the run. A graph with an unschedulable task panics — the same loud
// failure registry misconfiguration produces.
func (s *Sched) Init(env *runtime.Env) {
	plan, err := BuildPlan(env, s.alg)
	if err != nil {
		panic(fmt.Sprintf("heft: %v", err))
	}
	s.mu.Lock()
	s.env = env
	s.plan = plan
	s.state = make([]uint8, len(env.Graph.Tasks))
	s.next = make([]int, len(env.Machine.Units))
	s.dead = make([]bool, len(env.Machine.Units))
	s.repairs = nil
	s.mu.Unlock()
	if s.fallback != nil {
		s.fallback.Init(env)
	}
}

// Plan returns the schedule Init computed (nil before Init).
func (s *Sched) Plan() *Plan {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.plan
}

// Repairs returns a copy of the repair events logged so far.
func (s *Sched) Repairs() []RepairEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RepairEvent, len(s.repairs))
	copy(out, s.repairs)
	return out
}

// EffectiveSlackFactor returns the slack factor in force: SlackFactor
// when set above 1, DefaultSlackFactor otherwise.
func (s *Sched) EffectiveSlackFactor() float64 { return s.slack() }

func (s *Sched) slack() float64 {
	if s.SlackFactor > 1 {
		return s.SlackFactor
	}
	return DefaultSlackFactor
}

// Push implements runtime.Scheduler. Diverted tasks (and fault-recovery
// re-pushes of tasks whose worker died) flow to the fallback; everything
// else queues for its assigned worker. A re-push of an earlier slot
// (retry after a transient failure) rewinds the worker's cursor.
func (s *Sched) Push(t *runtime.Task) {
	s.mu.Lock()
	if s.state[t.ID] == stDiverted {
		s.mu.Unlock()
		s.fallback.Push(t)
		return
	}
	s.state[t.ID] = stQueued
	w := s.plan.Assignment[t.ID]
	if slot := s.plan.Slot[t.ID]; slot < s.next[w] {
		s.next[w] = slot
	}
	s.mu.Unlock()
}

// Pop implements runtime.Scheduler: worker w gets its next planned task
// if (and only if) that task's dependencies have released. In Hybrid
// mode an idle worker additionally drains the fallback's diverted pool.
func (s *Sched) Pop(w runtime.WorkerInfo) *runtime.Task {
	s.mu.Lock()
	var picked *runtime.Task
	if s.plan != nil && int(w.ID) < len(s.next) {
		ord := s.plan.Order[w.ID]
		for s.next[w.ID] < len(ord) {
			id := ord[s.next[w.ID]]
			switch s.state[id] {
			case stDone, stDiverted, stInFlight:
				s.next[w.ID]++
				continue
			case stQueued:
				t := s.env.Graph.Tasks[id]
				if !t.TryClaim() {
					// Claimed elsewhere (a speculation replica won the
					// race); it is no longer ours to place.
					s.state[id] = stInFlight
					s.next[w.ID]++
					continue
				}
				s.state[id] = stInFlight
				s.next[w.ID]++
				picked = t
			}
			break
		}
	}
	s.mu.Unlock()
	if picked != nil {
		return picked
	}
	if s.fallback != nil {
		return s.fallback.Pop(w)
	}
	return nil
}

// TaskDone implements runtime.Scheduler. Effective completions of
// pinned tasks are checked against the slack budget (Hybrid mode);
// completions of diverted tasks are forwarded to the fallback policy.
func (s *Sched) TaskDone(t *runtime.Task, w runtime.WorkerInfo) {
	s.mu.Lock()
	wasDiverted := s.state[t.ID] == stDiverted
	s.state[t.ID] = stDone
	var toPush []*runtime.Task
	if s.mode == Hybrid && !wasDiverted && int(w.ID) < len(s.dead) && !s.dead[w.ID] {
		budget := (s.slack() - 1) * s.plan.Makespan
		if t.EndAt > s.plan.Finish[t.ID]+budget {
			toPush = s.divertLocked(w.ID, RepairSlack, t.ID, false)
		}
	}
	s.mu.Unlock()
	if wasDiverted {
		s.fallback.TaskDone(t, w)
	}
	for _, d := range toPush {
		s.fallback.Push(d)
	}
}

// WorkerDown implements runtime.FaultObserver: the engine killed worker
// w. In Hybrid mode every remaining planned task of w — including the
// aborted in-flight attempt the engine is about to roll back and
// re-Push — diverts to the fallback. In Static mode the plan is kept
// pinned and the stranded frontier surfaces as an engine error.
func (s *Sched) WorkerDown(w runtime.WorkerInfo) {
	s.mu.Lock()
	if s.plan == nil || int(w.ID) >= len(s.dead) || s.dead[w.ID] {
		s.mu.Unlock()
		return
	}
	s.dead[w.ID] = true
	var toPush []*runtime.Task
	if s.mode == Hybrid {
		toPush = s.divertLocked(w.ID, RepairKill, -1, true)
	}
	s.mu.Unlock()
	for _, d := range toPush {
		s.fallback.Push(d)
	}
	if fo, ok := s.fallback.(runtime.FaultObserver); ok {
		fo.WorkerDown(w)
	}
}

// divertLocked re-routes worker w's remaining planned tasks to the
// fallback, logs the covering RepairEvent, and returns the
// already-released tasks the caller must Push to the fallback (outside
// s.mu). In-flight attempts are included only when the worker died
// (their abort re-Pushes them through the fault-recovery rollback
// path); on a slack repair they are left to finish in place.
func (s *Sched) divertLocked(w platform.UnitID, reason RepairReason, trigger int64, includeInFlight bool) []*runtime.Task {
	ev := RepairEvent{At: s.env.Now(), Worker: w, Reason: reason, Trigger: trigger}
	var toPush []*runtime.Task
	for _, id := range s.plan.Order[w] {
		switch s.state[id] {
		case stQueued:
			toPush = append(toPush, s.env.Graph.Tasks[id])
		case stUnready:
			// Routed to the fallback when its Push arrives.
		case stInFlight:
			if !includeInFlight {
				continue
			}
		default:
			continue
		}
		s.state[id] = stDiverted
		ev.Tasks = append(ev.Tasks, id)
	}
	if len(ev.Tasks) > 0 {
		s.repairs = append(s.repairs, ev)
	}
	return toPush
}
