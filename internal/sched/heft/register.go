package heft

import (
	"fmt"

	"multiprio/internal/runtime"
	"multiprio/internal/sched/registry"
)

// DefaultFallback is the dynamic policy hybrid repair diverts to when
// registry.Options.Fallback is empty — the paper's multi-priority
// scheduler, so "hybrid" out of the box means "static plan, dynamic
// multiprio repair".
const DefaultFallback = "multiprio"

func init() {
	registry.Register("heft", func(registry.Options) runtime.Scheduler {
		return NewStatic(RankUpward)
	})
	registry.Register("heft-oft", func(registry.Options) runtime.Scheduler {
		return NewStatic(RankOptimistic)
	})
	registry.Register("heft-hybrid", hybridFactory(RankUpward))
	registry.Register("heft-oft-hybrid", hybridFactory(RankOptimistic))
}

func hybridFactory(alg Algorithm) registry.Factory {
	return func(opts registry.Options) runtime.Scheduler {
		name := opts.Fallback
		if name == "" {
			name = DefaultFallback
		}
		// The fallback inherits the caller's tuning knobs, but its own
		// Fallback is cleared: "heft-hybrid" as its own fallback must
		// terminate after one level, not recurse.
		opts.Fallback = ""
		fb, err := registry.New(name, opts)
		if err != nil {
			// registry.New validated Fallback before invoking us, so
			// this only fires when the factory is called directly.
			panic(fmt.Sprintf("heft: hybrid fallback: %v", err))
		}
		return NewHybrid(alg, fb)
	}
}
