package heft

import (
	"bytes"
	"testing"

	"multiprio/internal/apps/randdag"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
)

const mib = int64(1) << 20

func planMachine(t *testing.T) *platform.Machine {
	t.Helper()
	m, err := platform.NewHeteroNode("heft", 5, 10, 2, 100, 8*mib, 5e9, platform.Config{})
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	return m
}

func planGraph(m *platform.Machine, typed float64) *runtime.Graph {
	return randdag.Build(randdag.Params{
		Layers: 8, Width: 10, EdgeProb: 0.3, CommuteShare: 0.2,
		TypedFraction: typed, Machine: m, Seed: 17,
	})
}

// TestPlanDeterminism pins that BuildPlan is a pure function of
// (graph, machine, model): rebuilding from a regenerated graph yields
// byte-identical canonical plans, for both ranking algorithms.
func TestPlanDeterminism(t *testing.T) {
	m := planMachine(t)
	for _, alg := range []Algorithm{RankUpward, RankOptimistic} {
		p1, err := BuildPlan(runtime.NewEnv(m, planGraph(m, 0)), alg)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		p2, err := BuildPlan(runtime.NewEnv(m, planGraph(m, 0)), alg)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !bytes.Equal(p1.Canonical(), p2.Canonical()) {
			t.Errorf("%v: plan not deterministic across rebuilds", alg)
		}
	}
}

// TestPlanValidity checks structural soundness of the plan: every task
// on a capable worker, dependencies respected by the planned timeline
// (including the modeled transfer when crossing memory nodes), and no
// overlap within one worker's planned intervals.
func TestPlanValidity(t *testing.T) {
	m := planMachine(t)
	for _, typed := range []float64{0, 0.5} {
		g := planGraph(m, typed)
		env := runtime.NewEnv(m, g)
		for _, alg := range []Algorithm{RankUpward, RankOptimistic} {
			p, err := BuildPlan(env, alg)
			if err != nil {
				t.Fatalf("typed=%g %v: %v", typed, alg, err)
			}
			for _, task := range g.Tasks {
				w := p.Assignment[task.ID]
				if !task.CanRun(m.Units[w].Arch) {
					t.Errorf("typed=%g %v: task %d pinned to incapable worker %d", typed, alg, task.ID, w)
				}
				for _, pr := range g.Preds(task) {
					ready := p.Finish[pr.ID]
					if m.Units[p.Assignment[pr.ID]].Mem != m.Units[w].Mem {
						if b := edgeBytes(pr, task); b > 0 {
							ready += m.TransferTime(m.Units[p.Assignment[pr.ID]].Mem, m.Units[w].Mem, b)
						}
					}
					if p.Start[task.ID] < ready-1e-12 {
						t.Errorf("typed=%g %v: task %d planned at %g before pred %d ready at %g",
							typed, alg, task.ID, p.Start[task.ID], pr.ID, ready)
					}
				}
				if p.Finish[task.ID] > p.Makespan {
					t.Errorf("typed=%g %v: task %d finishes at %g past makespan %g",
						typed, alg, task.ID, p.Finish[task.ID], p.Makespan)
				}
			}
			for w, ord := range p.Order {
				for i := 1; i < len(ord); i++ {
					if p.Finish[ord[i-1]] > p.Start[ord[i]]+1e-12 {
						t.Errorf("typed=%g %v: worker %d overlap: task %d [%g,%g] vs task %d at %g",
							typed, alg, w, ord[i-1], p.Start[ord[i-1]], p.Finish[ord[i-1]], ord[i], p.Start[ord[i]])
					}
					if p.Slot[ord[i]] != i {
						t.Errorf("typed=%g %v: slot index broken at worker %d pos %d", typed, alg, w, i)
					}
				}
			}
		}
	}
}

// TestPlanTypedAllGPU: with every accelerated task typed, no typed task
// may land on a CPU worker.
func TestPlanTypedAllGPU(t *testing.T) {
	m := planMachine(t)
	g := randdag.Build(randdag.Params{
		Layers: 6, Width: 8, GPUShare: 0.9, TypedFraction: 1, Machine: m, Seed: 3,
	})
	p, err := BuildPlan(runtime.NewEnv(m, g), RankUpward)
	if err != nil {
		t.Fatal(err)
	}
	typed := 0
	for _, task := range g.Tasks {
		if task.Kind != "typed" {
			continue
		}
		typed++
		if m.Units[p.Assignment[task.ID]].Arch != platform.ArchGPU {
			t.Errorf("typed task %d assigned to non-GPU worker %d", task.ID, p.Assignment[task.ID])
		}
	}
	if typed == 0 {
		t.Fatal("graph has no typed tasks; TypedFraction knob inert")
	}
}

// TestPlanNoCapableWorker: a graph whose task runs nowhere must be a
// loud error, not a bogus plan.
func TestPlanNoCapableWorker(t *testing.T) {
	m := platform.CPUOnly(3)
	g := runtime.NewGraph()
	g.SubmitBatch([]runtime.TaskSpec{{Kind: "gpu-only", Cost: []float64{0}, Flops: 1}})
	if _, err := BuildPlan(runtime.NewEnv(m, g), RankUpward); err == nil {
		t.Fatal("BuildPlan accepted an unschedulable task")
	}
}

// TestCriticalWorker: the critical worker owns the latest-finishing
// task.
func TestCriticalWorker(t *testing.T) {
	m := planMachine(t)
	p, err := BuildPlan(runtime.NewEnv(m, planGraph(m, 0)), RankUpward)
	if err != nil {
		t.Fatal(err)
	}
	cw := p.CriticalWorker()
	for i := range p.Finish {
		if p.Finish[i] >= p.Makespan-1e-12 && p.Assignment[i] != cw {
			t.Errorf("latest task %d on worker %d, CriticalWorker says %d", i, p.Assignment[i], cw)
		}
	}
}
