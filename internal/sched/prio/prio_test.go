package prio

import (
	"testing"

	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/sim"
)

func setup() (*Sched, *runtime.Graph) {
	g := runtime.NewGraph()
	s := New()
	s.Init(runtime.NewEnv(platform.CPUOnly(2), g))
	return s, g
}

func TestPriorityOrder(t *testing.T) {
	s, g := setup()
	low := g.Submit(&runtime.Task{Kind: "low", Priority: 1, Cost: []float64{1}})
	hi := g.Submit(&runtime.Task{Kind: "hi", Priority: 9, Cost: []float64{1}})
	mid := g.Submit(&runtime.Task{Kind: "mid", Priority: 5, Cost: []float64{1}})
	s.Push(low)
	s.Push(hi)
	s.Push(mid)
	w := runtime.WorkerInfo{ID: 0, Arch: 0, Mem: 0}
	for _, want := range []*runtime.Task{hi, mid, low} {
		if got := s.Pop(w); got != want {
			t.Fatalf("pop = %v, want %s", got, want.Kind)
		}
	}
	if s.Pop(w) != nil {
		t.Fatal("pop on empty returned a task")
	}
}

func TestEqualPriorityFIFO(t *testing.T) {
	s, g := setup()
	a := g.Submit(&runtime.Task{Kind: "a", Priority: 3, Cost: []float64{1}})
	b := g.Submit(&runtime.Task{Kind: "b", Priority: 3, Cost: []float64{1}})
	s.Push(a)
	s.Push(b)
	w := runtime.WorkerInfo{ID: 0, Arch: 0, Mem: 0}
	if got := s.Pop(w); got != a {
		t.Errorf("pop = %s, want FIFO head a", got.Kind)
	}
}

func TestSkipsIncompatibleArch(t *testing.T) {
	s, g := setup()
	gpuOnly := g.Submit(&runtime.Task{Kind: "g", Priority: 9, Cost: []float64{0, 1}})
	cpu := g.Submit(&runtime.Task{Kind: "c", Priority: 1, Cost: []float64{1}})
	s.Push(gpuOnly)
	s.Push(cpu)
	w := runtime.WorkerInfo{ID: 0, Arch: 0, Mem: 0}
	if got := s.Pop(w); got != cpu {
		t.Errorf("pop = %v, want the runnable lower-priority task", got)
	}
	if s.Len() != 1 {
		t.Errorf("len = %d, want the GPU task still queued", s.Len())
	}
}

func TestEndToEnd(t *testing.T) {
	g := runtime.NewGraph()
	h := g.NewData("x", 8)
	g.Submit(&runtime.Task{Kind: "w", Priority: 5, Cost: []float64{0.1},
		Accesses: []runtime.Access{{Handle: h, Mode: runtime.W}}})
	for i := 0; i < 10; i++ {
		g.Submit(&runtime.Task{Kind: "r", Priority: i, Cost: []float64{0.1},
			Accesses: []runtime.Access{{Handle: h, Mode: runtime.R}}})
	}
	res, err := sim.Run(platform.CPUOnly(4), g, New(), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("no makespan")
	}
}
