package prio

import (
	"multiprio/internal/runtime"
	"multiprio/internal/sched/registry"
)

func init() {
	registry.Register("prio", func(registry.Options) runtime.Scheduler { return New() })
}
