// Package prio implements StarPU's "prio" scheduling policy: a single
// central queue ordered by the application-provided task priority
// (FIFO within equal priorities), consumed by every worker. It is
// eager's priority-aware sibling: no performance models, no
// heterogeneity awareness — only the user's static priorities.
package prio

import (
	"sync"

	"multiprio/internal/heap"
	"multiprio/internal/runtime"
)

// Sched is the prio policy. Create with New.
type Sched struct {
	mu   sync.Mutex
	h    *heap.Heap
	byID map[int64]*runtime.Task
	seq  int64
}

// New returns a prio scheduler.
func New() *Sched { return &Sched{} }

// Name implements runtime.Scheduler.
func (s *Sched) Name() string { return "prio" }

// Init implements runtime.Scheduler.
func (s *Sched) Init(env *runtime.Env) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.h = heap.New(256)
	s.byID = make(map[int64]*runtime.Task, 256)
	s.seq = 0
}

// Push implements runtime.Scheduler: priority descending, FIFO within
// ties (the secondary key decreases with submission order).
func (s *Sched) Push(t *runtime.Task) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	s.h.Push(t.ID, heap.Score{
		Primary:   float64(t.Priority),
		Secondary: -float64(s.seq),
	})
	s.byID[t.ID] = t
}

// Pop implements runtime.Scheduler: the highest-priority task the
// worker can run, scanning past incompatible heads.
func (s *Sched) Pop(w runtime.WorkerInfo) *runtime.Task {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Scan a bounded prefix for a runnable task; the heap rarely holds
	// long runs of incompatible tasks in practice.
	const scan = 64
	ids := s.h.TopN(nil, scan)
	for _, id := range ids {
		t := s.byID[id]
		if t == nil || !t.CanRun(w.Arch) {
			continue
		}
		if !t.TryClaim() {
			continue
		}
		s.h.Remove(id)
		delete(s.byID, id)
		return t
	}
	return nil
}

// TaskDone implements runtime.Scheduler.
func (s *Sched) TaskDone(t *runtime.Task, w runtime.WorkerInfo) {}

// Len returns the queued task count (tests).
func (s *Sched) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.h.Len()
}
