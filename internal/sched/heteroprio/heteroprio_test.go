package heteroprio

import (
	"testing"

	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/sim"
)

func hetero() *platform.Machine {
	m := &platform.Machine{
		Name:  "hetero",
		Archs: []platform.Arch{{Name: "cpu"}, {Name: "gpu"}},
		Mems:  []platform.MemNode{{Name: "ram"}, {Name: "gpu-mem"}},
		Units: []platform.Unit{
			{Name: "cpu0", Arch: 0, Mem: 0, SpeedFactor: 1},
			{Name: "gpu0", Arch: 1, Mem: 1, SpeedFactor: 1},
		},
		LinkMatrix: [][]platform.Link{
			{{}, {BandwidthBytes: 1e9}},
			{{BandwidthBytes: 1e9}, {}},
		},
	}
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return m
}

func setup(t *testing.T) (*Sched, *runtime.Graph) {
	t.Helper()
	g := runtime.NewGraph()
	s := New()
	s.Init(runtime.NewEnv(hetero(), g))
	return s, g
}

func TestBucketOrderBySpeedup(t *testing.T) {
	s, g := setup(t)
	// gemm: 10x GPU speedup; trsm: 2x; small: CPU-favourable 0.5x.
	s.Push(g.Submit(&runtime.Task{Kind: "gemm", Cost: []float64{10, 1}}))
	s.Push(g.Submit(&runtime.Task{Kind: "trsm", Cost: []float64{2, 1}}))
	s.Push(g.Submit(&runtime.Task{Kind: "small", Cost: []float64{1, 2}}))

	order := s.BucketOrder()
	want := []string{"small/0", "trsm/0", "gemm/0"}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestGPUTakesAcceleratedFirst(t *testing.T) {
	s, g := setup(t)
	small := g.Submit(&runtime.Task{Kind: "small", Cost: []float64{1, 2}})
	gemm := g.Submit(&runtime.Task{Kind: "gemm", Cost: []float64{10, 1}})
	s.Push(small)
	s.Push(gemm)

	gpu := runtime.WorkerInfo{ID: 1, Arch: 1, Mem: 1}
	if got := s.Pop(gpu); got != gemm {
		t.Errorf("GPU popped %s, want gemm", got.Kind)
	}
	cpu := runtime.WorkerInfo{ID: 0, Arch: 0, Mem: 0}
	if got := s.Pop(cpu); got != small {
		t.Errorf("CPU popped %s, want small", got.Kind)
	}
}

func TestCPUTakesCPUFavourableFirst(t *testing.T) {
	s, g := setup(t)
	gemm := g.Submit(&runtime.Task{Kind: "gemm", Cost: []float64{10, 1}})
	small := g.Submit(&runtime.Task{Kind: "small", Cost: []float64{1, 2}})
	s.Push(gemm)
	s.Push(small)
	cpu := runtime.WorkerInfo{ID: 0, Arch: 0, Mem: 0}
	if got := s.Pop(cpu); got != small {
		t.Errorf("CPU popped %s, want small first", got.Kind)
	}
	// With only gemm left the CPU still takes it (starvation
	// avoidance: plain traversal reaches every bucket).
	if got := s.Pop(cpu); got != gemm {
		t.Errorf("CPU popped %v, want gemm as fallback", got)
	}
}

func TestArchRestrictedTasks(t *testing.T) {
	s, g := setup(t)
	gpuOnly := g.Submit(&runtime.Task{Kind: "gpuonly", Cost: []float64{0, 1}})
	cpuOnly := g.Submit(&runtime.Task{Kind: "cpuonly", Cost: []float64{1, 0}})
	s.Push(gpuOnly)
	s.Push(cpuOnly)
	cpu := runtime.WorkerInfo{ID: 0, Arch: 0, Mem: 0}
	gpu := runtime.WorkerInfo{ID: 1, Arch: 1, Mem: 1}
	if got := s.Pop(cpu); got != cpuOnly {
		t.Errorf("CPU popped %v, want cpuOnly", got)
	}
	if got := s.Pop(gpu); got != gpuOnly {
		t.Errorf("GPU popped %v, want gpuOnly", got)
	}
	if s.Pop(cpu) != nil || s.Pop(gpu) != nil {
		t.Error("pops on empty buckets returned tasks")
	}
}

func TestFIFOWithinBucket(t *testing.T) {
	s, g := setup(t)
	a := g.Submit(&runtime.Task{Kind: "gemm", Cost: []float64{10, 1}})
	b := g.Submit(&runtime.Task{Kind: "gemm", Cost: []float64{10, 1}})
	s.Push(a)
	s.Push(b)
	gpu := runtime.WorkerInfo{ID: 1, Arch: 1, Mem: 1}
	if got := s.Pop(gpu); got != a {
		t.Error("bucket order not FIFO")
	}
	if got := s.Pop(gpu); got != b {
		t.Error("bucket order not FIFO")
	}
}

func TestEndToEndSimulation(t *testing.T) {
	m := hetero()
	g := runtime.NewGraph()
	for i := 0; i < 20; i++ {
		kind := "gemm"
		cost := []float64{1, 0.1}
		if i%3 == 0 {
			kind, cost = "small", []float64{0.1, 0.2}
		}
		g.Submit(&runtime.Task{Kind: kind, Cost: cost})
	}
	res, err := sim.Run(m, g, New(), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The GPU must take most of the accelerated work.
	gpuTasks := 0
	for _, sp := range res.Trace.Spans {
		if sp.Worker == 1 && sp.Kind == "gemm" {
			gpuTasks++
		}
	}
	if gpuTasks < 8 {
		t.Errorf("GPU executed %d gemm tasks, want most of 13", gpuTasks)
	}
}
