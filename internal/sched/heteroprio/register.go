package heteroprio

import (
	"multiprio/internal/runtime"
	"multiprio/internal/sched/registry"
)

func init() {
	registry.Register("heteroprio", func(registry.Options) runtime.Scheduler { return New() })
}
