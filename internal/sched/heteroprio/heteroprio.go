// Package heteroprio implements the automatic HeteroPrio scheduler
// (Agullo et al., CCPE 2016; automatic prioritizing per Flint, Paillat
// and Bramas, PeerJ CS 2022): ready tasks are binned into buckets by
// task type, and each architecture traverses the buckets in its own
// order derived from the measured acceleration factors — GPUs scan
// buckets by descending GPU speedup, CPUs by ascending.
//
// This is the affinity-based baseline of the paper's evaluation. Its
// known limitation — one priority per task *type*, hiding per-task
// scheduling context — is exactly what MultiPrio's per-task scores
// address (Section II).
package heteroprio

import (
	"fmt"
	"sort"
	"sync"

	"multiprio/internal/platform"
	"multiprio/internal/runtime"
)

// bucket is the FIFO of ready tasks of one type.
type bucket struct {
	kind  string
	tasks []*runtime.Task
	// speedup is the running mean of δ(cpu)/δ(gpu) for this type
	// (>1 means GPU-favourable).
	speedupSum float64
	speedupN   int
}

func (b *bucket) speedup() float64 {
	if b.speedupN == 0 {
		return 1
	}
	return b.speedupSum / float64(b.speedupN)
}

// Sched is the automatic HeteroPrio policy.
type Sched struct {
	mu      sync.Mutex
	env     *runtime.Env
	buckets map[string]*bucket
	// ordered caches the bucket traversal order; rebuilt when a new
	// task type appears or accelerations shift materially.
	ordered []*bucket
	dirty   bool
}

// New returns an automatic HeteroPrio scheduler.
func New() *Sched { return &Sched{} }

// Name implements runtime.Scheduler.
func (s *Sched) Name() string { return "heteroprio" }

// Init implements runtime.Scheduler.
func (s *Sched) Init(env *runtime.Env) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.env = env
	s.buckets = make(map[string]*bucket)
	s.ordered = nil
	s.dirty = true
}

// bucketKey bins a task: kernel type plus a coarse size class, matching
// StarPU's per-codelet-per-footprint-class bucketing. Without the size
// class a type mixing tiny and huge instances (sparse QR updates) would
// get one priority for all of them — the per-type limitation the paper
// discusses — but at a catastrophic rather than realistic severity.
func bucketKey(t *runtime.Task) string {
	cls := 0
	for fp := t.Footprint; fp > 1; fp >>= 2 {
		cls++
	}
	return fmt.Sprintf("%s/%d", t.Kind, cls)
}

// Push implements runtime.Scheduler: bin the task by type and size
// class and update the bucket's measured acceleration.
func (s *Sched) Push(t *runtime.Task) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := bucketKey(t)
	b := s.buckets[key]
	if b == nil {
		b = &bucket{kind: key}
		s.buckets[key] = b
		s.dirty = true
	}
	dCPU := s.env.Delta(t, platform.ArchCPU)
	dGPU := s.env.Delta(t, platform.ArchGPU)
	switch {
	case dCPU > 0 && dGPU > 0 && !isInf(dCPU) && !isInf(dGPU):
		b.speedupSum += dCPU / dGPU
		b.speedupN++
	case isInf(dCPU) && !isInf(dGPU):
		// GPU-only: effectively infinite speedup; use a large constant
		// so the bucket sorts to the GPU end.
		b.speedupSum += 1e6
		b.speedupN++
	case isInf(dGPU) && !isInf(dCPU):
		b.speedupSum += 1e-6
		b.speedupN++
	}
	b.tasks = append(b.tasks, t)
	// Accelerations refine as tasks flow; the order is cheap to rebuild
	// (a handful of task types), so refresh it on the next pop.
	s.dirty = true
}

// Mismatch thresholds bound how strongly a bucket may favour the other
// architecture before a worker refuses it: the stand-in for HeteroPrio's
// spoliation and per-architecture bucket exclusions, which keep a horde
// of idle slow workers from draining the accelerator-bound buckets the
// moment tasks become ready. The soft threshold applies on the first
// pass; the hard one is absolute — a task 50× better on the other
// architecture waits for it (it sits at the head of that architecture's
// traversal order anyway).
const (
	softMismatch = 15.0
	hardMismatch = 50.0
)

// Pop implements runtime.Scheduler: traverse the buckets in this
// architecture's priority order and take the first runnable head,
// preferring buckets not strongly tied to the other architecture.
func (s *Sched) Pop(w runtime.WorkerInfo) *runtime.Task {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reorder()
	if t := s.scan(w, softMismatch); t != nil {
		return t
	}
	return s.scan(w, hardMismatch)
}

func (s *Sched) scan(w runtime.WorkerInfo, threshold float64) *runtime.Task {
	// GPUs scan from the high-speedup end, CPUs from the low end.
	n := len(s.ordered)
	for i := 0; i < n; i++ {
		var b *bucket
		if w.Arch == platform.ArchGPU {
			b = s.ordered[n-1-i]
		} else {
			b = s.ordered[i]
		}
		sp := b.speedup()
		if w.Arch == platform.ArchGPU && sp < 1/threshold {
			continue
		}
		if w.Arch != platform.ArchGPU && sp > threshold {
			continue
		}
		for len(b.tasks) > 0 {
			t := b.tasks[0]
			if t.Claimed() {
				b.tasks = b.tasks[1:]
				continue
			}
			if !t.CanRun(w.Arch) {
				break // whole bucket shares the type; skip it
			}
			if !t.TryClaim() {
				panic(fmt.Sprintf("heteroprio: task %d claimed twice", t.ID))
			}
			b.tasks = b.tasks[1:]
			return t
		}
	}
	return nil
}

// TaskDone implements runtime.Scheduler.
func (s *Sched) TaskDone(t *runtime.Task, w runtime.WorkerInfo) {}

// reorder rebuilds the bucket ordering by ascending measured speedup.
func (s *Sched) reorder() {
	if !s.dirty {
		return
	}
	s.ordered = s.ordered[:0]
	for _, b := range s.buckets {
		s.ordered = append(s.ordered, b)
	}
	sort.Slice(s.ordered, func(i, j int) bool {
		si, sj := s.ordered[i].speedup(), s.ordered[j].speedup()
		if si != sj {
			return si < sj
		}
		return s.ordered[i].kind < s.ordered[j].kind
	})
	s.dirty = false
}

// BucketOrder returns the current CPU-side bucket traversal order
// (ascending GPU speedup), for tests and reports.
func (s *Sched) BucketOrder() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reorder()
	out := make([]string, len(s.ordered))
	for i, b := range s.ordered {
		out[i] = b.kind
	}
	return out
}

func isInf(x float64) bool { return x > 1e300 }
