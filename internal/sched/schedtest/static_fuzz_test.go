package schedtest

import (
	"bytes"
	"testing"

	"multiprio/internal/apps/randdag"
	"multiprio/internal/fault"
	"multiprio/internal/oracle"
	"multiprio/internal/runtime"
	"multiprio/internal/sched/heft"
	"multiprio/internal/sched/heft/heftcheck"
	"multiprio/internal/sched/registry"
	"multiprio/internal/sim"
)

// staticFallbacks are the dynamic policies the fuzzer rotates through
// as hybrid-repair fallbacks, via the registry's Fallback knob.
var staticFallbacks = []string{"multiprio", "eager", "dmdas", "lws"}

// FuzzStaticConformance searches for (plan shape, typed fraction, fault
// mix, fallback policy) combinations that break static replay: a
// completed run failing the full oracle including StaticCheck, a hybrid
// run stranded despite a live worker per architecture, or
// nondeterminism under a fixed seed. Pure static runs mask kills to
// zero — a stranded frontier is its *specified* behaviour under kills,
// exercised deterministically in the engine tests.
func FuzzStaticConformance(f *testing.F) {
	f.Add(int64(1), uint8(6), uint8(8), uint8(0), uint8(0), uint8(1), uint8(0), uint8(0))
	f.Add(int64(2), uint8(4), uint8(10), uint8(1), uint8(1), uint8(0), uint8(1), uint8(1))
	f.Add(int64(3), uint8(8), uint8(6), uint8(2), uint8(2), uint8(2), uint8(2), uint8(2))
	f.Add(int64(4), uint8(3), uint8(12), uint8(1), uint8(0), uint8(2), uint8(3), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, layers, width, typed, kills, slows, fbSel, algSel uint8) {
		m := conformanceMachine()
		build := func() *runtime.Graph {
			return randdag.Build(randdag.Params{
				Layers:        1 + int(layers%8),
				Width:         1 + int(width%12),
				CommuteShare:  0.3,
				TypedFraction: float64(typed%3) * 0.25,
				MeanCost:      1e-3,
				Machine:       m,
				Seed:          seed,
			})
		}
		hybrid := algSel%4 >= 2
		algName := "heft"
		if algSel%2 == 1 {
			algName = "heft-oft"
		}
		nKills := int(kills % 3)
		if !hybrid {
			nKills = 0
		}
		mk := func() *heft.Sched {
			name := algName
			if hybrid {
				name += "-hybrid"
			}
			s, err := registry.New(name, registry.Options{
				Fallback: staticFallbacks[int(fbSel)%len(staticFallbacks)],
			})
			if err != nil {
				t.Fatalf("registry: %v", err)
			}
			return s.(*heft.Sched)
		}

		probe := heft.NewStatic(heft.RankUpward)
		probe.Init(runtime.NewEnv(m, build()))
		plan := fault.Generate(m, fault.Spec{
			Seed:       uint64(seed)*0x9e3779b9 + uint64(typed),
			Horizon:    probe.Plan().Makespan,
			Kills:      nKills,
			Slowdowns:  int(slows % 3),
			ModelNoise: float64(seed%4) * 0.05,
		})
		run := func() (*runtime.Graph, *sim.Result, *heft.Sched) {
			g := build()
			hs := mk()
			res, err := sim.Run(m, g, hs, sim.Options{
				Seed: seed, CollectMemEvents: true, Faults: plan, MaxEvents: 4_000_000,
			})
			if err != nil {
				t.Fatalf("%s: %v", hs.Name(), err)
			}
			return g, res, hs
		}
		g, res, hs := run()
		opts := oracle.Options{
			OverflowBytes: res.OverflowBytes,
			Static:        heftcheck.For(hs, res.Faults.AppliedKills),
		}
		if !plan.Empty() {
			opts.Faults = &oracle.FaultCheck{
				MaxRetries: plan.RetryCap(),
				Kills:      res.Faults.AppliedKills,
				Strict:     true,
			}
		}
		if err := oracle.Check(g, res.Trace, opts); err != nil {
			t.Fatalf("%s: %v", hs.Name(), err)
		}
		_, res2, _ := run()
		if !bytes.Equal(res.Trace.Canonical(), res2.Trace.Canonical()) {
			t.Fatalf("%s: same seed and plan, different canonical traces", hs.Name())
		}
	})
}
