package schedtest

import (
	"bytes"
	"crypto/sha256"
	"testing"
	"time"

	"multiprio/internal/apps/dense"
	"multiprio/internal/apps/randdag"
	"multiprio/internal/fault"
	"multiprio/internal/oracle"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/sim"
)

// faultScenarios are the fault mixes every scheduler must survive.
// Counts are relative to the fault-free makespan measured per workload.
var faultScenarios = []struct {
	name string
	spec fault.Spec
}{
	{"kills", fault.Spec{Seed: 41, Kills: 2}},
	{"mixed", fault.Spec{Seed: 42, Kills: 1, Slowdowns: 2, TransferFaults: 2, ModelNoise: 0.15}},
}

// faultWorkloads: one regular and one irregular family keep the
// scheduler × scenario product tractable.
func faultWorkloads(m *platform.Machine) []struct {
	name  string
	build func() *runtime.Graph
} {
	return []struct {
		name  string
		build func() *runtime.Graph
	}{
		{"cholesky", func() *runtime.Graph {
			return dense.Cholesky(dense.Params{Tiles: 6, TileSize: 256, Machine: m, UserPriorities: true})
		}},
		{"randdag", func() *runtime.Graph {
			return randdag.Build(randdag.Params{Layers: 8, Width: 10, CommuteShare: 0.3,
				Machine: m, Seed: 17})
		}},
	}
}

// TestFaultConformanceSimEngine runs every scheduler over each workload
// under each fault scenario on the simulator: the run must complete,
// satisfy the oracle's exactly-once-effective rule under strict (abort
// semantics) kill checks, and reproduce the canonical trace — failed
// spans, failed transfers, memory events and all — byte for byte under
// the same seed. The canonical SHA-256 comparison is the PR's
// determinism contract: same seed + same plan ⇒ byte-identical trace.
func TestFaultConformanceSimEngine(t *testing.T) {
	m := conformanceMachine()
	for _, w := range faultWorkloads(m) {
		for _, sc := range faultScenarios {
			for _, pol := range policies {
				w, sc, pol := w, sc, pol
				t.Run(w.name+"/"+sc.name+"/"+pol.name, func(t *testing.T) {
					t.Parallel()
					base, err := sim.Run(m, w.build(), pol.mk(), sim.Options{Seed: 23})
					if err != nil {
						t.Fatalf("fault-free baseline: %v", err)
					}
					spec := sc.spec
					spec.Horizon = base.Makespan
					plan := fault.Generate(m, spec)
					run := func() (*runtime.Graph, *sim.Result) {
						g := w.build()
						res, err := sim.Run(m, g, pol.mk(), sim.Options{
							Seed: 23, CollectMemEvents: true, Faults: plan,
						})
						if err != nil {
							t.Fatalf("fault run: %v", err)
						}
						return g, res
					}
					g, res := run()
					if err := oracle.Check(g, res.Trace, oracle.Options{
						OverflowBytes: res.OverflowBytes,
						Faults: &oracle.FaultCheck{
							MaxRetries: plan.RetryCap(),
							Kills:      res.Faults.AppliedKills,
							Strict:     true,
						},
					}); err != nil {
						t.Fatalf("oracle: %v", err)
					}
					if got, want := res.Faults.Kills, len(plan.Kills()); got != want {
						t.Errorf("applied %d kills, plan has %d", got, want)
					}
					_, res2 := run()
					h1 := sha256.Sum256(res.Trace.Canonical())
					h2 := sha256.Sum256(res2.Trace.Canonical())
					if h1 != h2 {
						t.Fatalf("canonical trace hash differs across identical fault runs:\n%x\n%x", h1, h2)
					}
				})
			}
		}
	}
}

// TestFaultConformanceThreadedEngine drives every scheduler through
// kill and slowdown recovery on the goroutine engine (run under -race
// in CI). Kernels sleep ~1ms so the wall-clock kill timers land while
// work is in flight; the oracle checks completion-discard semantics
// (Strict off: a kernel may be observed finishing after the kill
// instant, its completion is simply discarded).
func TestFaultConformanceThreadedEngine(t *testing.T) {
	m := conformanceMachine()
	plan := &fault.Plan{
		Events: []fault.Event{
			{Kind: fault.KillWorker, Worker: 1, At: 0.003},
			{Kind: fault.KillWorker, Worker: 4, At: 0.005},
			{Kind: fault.SlowWorker, Worker: 2, At: 0, Until: 10, Factor: 2},
		},
		Backoff: 1e-4,
	}
	for _, pol := range policies {
		pol := pol
		t.Run(pol.name, func(t *testing.T) {
			t.Parallel()
			g := runtime.NewGraph()
			for i := 0; i < 40; i++ {
				task := &runtime.Task{Kind: "work", Cost: []float64{0.001, 0.001}}
				task.Run = func(w runtime.WorkerInfo) { time.Sleep(time.Millisecond) }
				g.Submit(task)
			}
			eng, err := runtime.NewThreadedEngine(m, pol.mk(), runtime.WithFaultPlan(plan))
			if err != nil {
				t.Fatalf("NewThreadedEngine: %v", err)
			}
			res, err := eng.Run(g)
			if err != nil {
				t.Fatalf("threaded fault run: %v", err)
			}
			if res.Faults.Kills != 2 {
				t.Errorf("kills = %d, want 2", res.Faults.Kills)
			}
			if err := oracle.Check(g, res.Trace, oracle.Options{
				Faults: &oracle.FaultCheck{
					MaxRetries: plan.RetryCap(),
					Kills:      res.Faults.AppliedKills,
				},
			}); err != nil {
				t.Fatalf("oracle: %v", err)
			}
		})
	}
}

// FuzzFaultConformance searches for (workload, scheduler, fault mix)
// triples that break recovery: a completed run that fails the oracle,
// a run that errors out despite the plan leaving every architecture a
// live worker, or nondeterminism under a fixed seed.
func FuzzFaultConformance(f *testing.F) {
	f.Add(int64(1), uint8(6), uint8(8), uint8(1), uint8(1), uint8(1), uint8(0))
	f.Add(int64(2), uint8(4), uint8(10), uint8(2), uint8(0), uint8(2), uint8(3))
	f.Add(int64(3), uint8(8), uint8(6), uint8(2), uint8(2), uint8(0), uint8(4))
	f.Add(int64(4), uint8(3), uint8(12), uint8(0), uint8(2), uint8(2), uint8(7))
	f.Fuzz(func(t *testing.T, seed int64, layers, width, kills, slows, xfails, schedIdx uint8) {
		m := conformanceMachine()
		build := func() *runtime.Graph {
			return randdag.Build(randdag.Params{
				Layers:       1 + int(layers%8),
				Width:        1 + int(width%12),
				CommuteShare: 0.3,
				MeanCost:     1e-3,
				Machine:      m,
				Seed:         seed,
			})
		}
		pol := policies[int(schedIdx)%len(policies)]
		base, err := sim.Run(m, build(), pol.mk(), sim.Options{Seed: seed, MaxEvents: 2_000_000})
		if err != nil {
			t.Fatalf("%s failed the fault-free baseline: %v", pol.name, err)
		}
		plan := fault.Generate(m, fault.Spec{
			Seed:           uint64(seed) * 0x9e3779b9,
			Horizon:        base.Makespan,
			Kills:          int(kills % 3),
			Slowdowns:      int(slows % 3),
			TransferFaults: int(xfails % 3),
			ModelNoise:     float64(seed%5) * 0.05,
		})
		run := func() (*runtime.Graph, *sim.Result) {
			g := build()
			res, err := sim.Run(m, g, pol.mk(), sim.Options{
				Seed: seed, CollectMemEvents: true, Faults: plan, MaxEvents: 4_000_000,
			})
			if err != nil {
				t.Fatalf("%s failed to recover: %v", pol.name, err)
			}
			return g, res
		}
		g, res := run()
		if err := oracle.Check(g, res.Trace, oracle.Options{
			OverflowBytes: res.OverflowBytes,
			Faults: &oracle.FaultCheck{
				MaxRetries: plan.RetryCap(),
				Kills:      res.Faults.AppliedKills,
				Strict:     true,
			},
		}); err != nil {
			t.Fatalf("%s: %v", pol.name, err)
		}
		_, res2 := run()
		if !bytes.Equal(res.Trace.Canonical(), res2.Trace.Canonical()) {
			t.Fatalf("%s: same seed and plan, different canonical traces", pol.name)
		}
	})
}
