package schedtest

import (
	"bytes"
	"testing"
	"time"

	"multiprio/internal/fault"
	"multiprio/internal/oracle"
	"multiprio/internal/runtime"
	"multiprio/internal/sim"
	"multiprio/internal/spec"
)

// TestConformanceSpeculationNoop pins the trace-neutrality contract of
// straggler speculation: with speculation ENABLED but no slowdown in
// the plan, nothing ever straggles (the simulator only schedules a
// detection event for kernels that will overrun their deadline), so
// every scheduler's canonical trace over every workload must be
// byte-identical to the plain run's. Speculation must be free until the
// moment it is needed.
func TestConformanceSpeculationNoop(t *testing.T) {
	m := conformanceMachine()
	for _, w := range conformanceWorkloads(m) {
		for _, pol := range policies {
			w, pol := w, pol
			t.Run(w.name+"/"+pol.name, func(t *testing.T) {
				t.Parallel()
				run := func(p *fault.Plan) *sim.Result {
					res, err := sim.Run(m, w.build(), pol.mk(), sim.Options{
						Seed: 23, CollectMemEvents: true, Faults: p,
					})
					if err != nil {
						t.Fatalf("sim.Run: %v", err)
					}
					return res
				}
				plain := run(nil)
				specOn := run(&fault.Plan{Speculation: spec.Policy{Enabled: true}})
				if !bytes.Equal(plain.Trace.Canonical(), specOn.Trace.Canonical()) {
					t.Fatalf("speculation with no stragglers perturbed %s on %s (%d vs %d bytes)",
						pol.name, w.name, len(plain.Trace.Canonical()), len(specOn.Trace.Canonical()))
				}
				if specOn.Spec.Flagged != 0 {
					t.Fatalf("stragglers flagged in a slowdown-free run: %+v", specOn.Spec)
				}
			})
		}
	}
}

// TestSpecConformanceThreadedEngine drives every scheduler through a
// straggler scenario on the goroutine engine (run under -race in CI):
// worker 0 is slowed 12x by the plan while the model still expects the
// nominal cost, so the monitor must replicate work landing there. The
// oracle validates exactly-once-effective with cancelled attempts.
func TestSpecConformanceThreadedEngine(t *testing.T) {
	m := conformanceMachine()
	plan := &fault.Plan{
		Events: []fault.Event{
			{Kind: fault.SlowWorker, Worker: 0, At: 0, Until: 10, Factor: 12},
		},
		Speculation: spec.Policy{Enabled: true, CheckEvery: 5e-4},
	}
	for _, pol := range policies {
		pol := pol
		t.Run(pol.name, func(t *testing.T) {
			t.Parallel()
			g := runtime.NewGraph()
			for i := 0; i < 40; i++ {
				task := &runtime.Task{Kind: "work", Cost: []float64{0.002, 0.002}}
				task.Run = func(w runtime.WorkerInfo) { time.Sleep(2 * time.Millisecond) }
				g.Submit(task)
			}
			eng, err := runtime.NewThreadedEngine(m, pol.mk(), runtime.WithFaultPlan(plan))
			if err != nil {
				t.Fatalf("NewThreadedEngine: %v", err)
			}
			res, err := eng.Run(g)
			if err != nil {
				t.Fatalf("threaded speculation run: %v", err)
			}
			if err := oracle.Check(g, res.Trace, oracle.Options{
				Spec: &oracle.SpecCheck{MaxReplicas: plan.SpecPolicy().ReplicaCap()},
			}); err != nil {
				t.Fatalf("oracle: %v", err)
			}
		})
	}
}
