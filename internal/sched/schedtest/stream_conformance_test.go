package schedtest

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"multiprio/internal/apps/randdag"
	"multiprio/internal/oracle"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/sim"
	"multiprio/internal/stream"
)

// streamWorkloads is the streaming conformance pair: the dense tiled
// factorization (deep dependency chains that outlive their arrival
// instants) and the random layered DAG (commute accesses, irregular
// fan-out). Both come from the batch conformance set so digests are
// comparable across suites.
func streamWorkloads(m *platform.Machine) []struct {
	name  string
	build func() *runtime.Graph
} {
	all := conformanceWorkloads(m)
	return []struct {
		name  string
		build func() *runtime.Graph
	}{all[0], all[3]} // cholesky, randdag
}

// streamPlanFor builds the deterministic streaming scenario of the
// conformance suite for one workload: three tenants over contiguous
// ID blocks, Poisson arrivals at load factor 1 against the workload's
// batch horizon, and a per-tenant in-flight limit that forces real
// admission deferrals.
func streamPlanFor(t testing.TB, g *runtime.Graph, horizon float64) *stream.Plan {
	plan := stream.SplitEven(len(g.Tasks), 3)
	counts := plan.TasksOf()
	spec := &stream.ArrivalSpec{Seed: 99, Tenants: make([]stream.TenantArrivals, 3)}
	for k := range spec.Tenants {
		spec.Tenants[k] = stream.TenantArrivals{
			Rate:  float64(counts[k]) / horizon,
			Shape: stream.Poisson,
		}
	}
	if err := spec.Generate(plan); err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for k := range plan.Limits {
		plan.Limits[k] = 4
	}
	return plan
}

// batchHorizon fixes each workload's time scale once (the batch makespan
// under eager), so arrival rates are meaningful for every policy.
func batchHorizon(t testing.TB, m *platform.Machine, build func() *runtime.Graph) float64 {
	g := build()
	pol := policies[len(policies)-1] // eager
	res, err := sim.Run(m, g, pol.mk(), sim.Options{Seed: 23})
	if err != nil {
		t.Fatalf("batch horizon run: %v", err)
	}
	return res.Makespan
}

// TestStreamDeterminism runs every policy over the streaming workloads
// under the Fair admission wrapper: the run must satisfy the oracle
// including StreamCheck (arrival gating, per-tenant exactly-once,
// in-flight bound, starvation replay), and a rebuilt graph with a fresh
// wrapper under the same seed and arrival plan must reproduce the trace
// byte for byte — arrival events linearize in the simulator's event
// order like everything else.
func TestStreamDeterminism(t *testing.T) {
	m := conformanceMachine()
	for _, w := range streamWorkloads(m) {
		w := w
		horizon := batchHorizon(t, m, w.build)
		for _, pol := range policies {
			pol := pol
			t.Run(w.name+"/"+pol.name, func(t *testing.T) {
				t.Parallel()
				run := func() (*runtime.Graph, *stream.Plan, *stream.Fair, *sim.Result) {
					g := w.build()
					plan := streamPlanFor(t, g, horizon)
					fair := stream.NewFair(pol.mk(), plan)
					res, err := sim.Run(m, g, fair, sim.Options{
						Seed: 23, CollectMemEvents: true, Arrivals: plan.Arrivals,
					})
					if err != nil {
						t.Fatalf("sim.Run: %v", err)
					}
					return g, plan, fair, res
				}
				g, plan, fair, res := run()
				if err := oracle.Check(g, res.Trace, oracle.Options{
					OverflowBytes: res.OverflowBytes,
					Stream:        &oracle.StreamCheck{Plan: plan, Admissions: fair.AdmissionLog()},
				}); err != nil {
					t.Fatalf("oracle: %v", err)
				}
				_, _, _, res2 := run()
				if !bytes.Equal(res.Trace.Canonical(), res2.Trace.Canonical()) {
					t.Fatalf("same seed and arrival plan produced a different trace (%d vs %d bytes)",
						len(res.Trace.Canonical()), len(res2.Trace.Canonical()))
				}
			})
		}
	}
}

// TestStreamTraceGolden pins the SHA-256 digest of the canonical trace
// of every streaming conformance run, the streaming counterpart of
// TestCanonicalTraceGolden: any drift in arrival handling, admission
// order or scheduling under load shows up as a digest mismatch.
// Regenerate after intentional changes with
// `go test ./internal/sched/schedtest -run TestStreamTraceGolden -update`.
func TestStreamTraceGolden(t *testing.T) {
	m := conformanceMachine()
	var got bytes.Buffer
	for _, w := range streamWorkloads(m) {
		horizon := batchHorizon(t, m, w.build)
		for _, pol := range policies {
			g := w.build()
			plan := streamPlanFor(t, g, horizon)
			fair := stream.NewFair(pol.mk(), plan)
			res, err := sim.Run(m, g, fair, sim.Options{
				Seed: 23, CollectMemEvents: true, Arrivals: plan.Arrivals,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", w.name, pol.name, err)
			}
			fmt.Fprintf(&got, "%s/%s %x\n", w.name, pol.name, sha256.Sum256(res.Trace.Canonical()))
		}
	}
	path := filepath.Join("testdata", "stream_sha256.golden")
	if *updateGolden {
		if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden digests (run with -update to create): %v", err)
	}
	gl, wl := bytes.Split(got.Bytes(), []byte("\n")), bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w []byte
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if !bytes.Equal(g, w) {
			t.Fatalf("streaming trace digest drifted at line %d:\n got: %s\nwant: %s", i+1, g, w)
		}
	}
}

// FuzzStreamConformance decodes the fuzzer's bytes into an arrival plan
// (tenant count, rates, shape, burst length, admission limits) over a
// random layered DAG and a policy, and demands the streaming run pass
// every oracle invariant including StreamCheck. A policy or the
// admission wrapper losing, double-running or starving a task under any
// arrival pattern is a bug, never fuzzer noise.
func FuzzStreamConformance(f *testing.F) {
	f.Add(int64(1), uint8(6), uint8(8), uint8(3), uint8(50), uint8(1), uint8(4), uint8(3), uint8(0))
	f.Add(int64(2), uint8(3), uint8(12), uint8(1), uint8(10), uint8(2), uint8(8), uint8(0), uint8(4))
	f.Add(int64(3), uint8(8), uint8(5), uint8(5), uint8(200), uint8(0), uint8(2), uint8(1), uint8(7))
	f.Fuzz(func(t *testing.T, seed int64, layers, width, tenantsB, rateB, shapeB, burstB, limitB, schedIdx uint8) {
		m, err := platform.NewHeteroNode("fuzzs", 4, 10, 1, 100, 8*platform.MiB, 5e9, platform.Config{})
		if err != nil {
			t.Skip("unbuildable machine shape")
		}
		g := randdag.Build(randdag.Params{
			Layers:       1 + int(layers%8),
			Width:        1 + int(width%12),
			EdgeProb:     0.3,
			GPUShare:     0.4,
			CommuteShare: 0.2,
			MeanCost:     1e-3,
			Machine:      m,
			Seed:         seed,
		})
		tenants := 1 + int(tenantsB%5)
		plan := stream.SplitEven(len(g.Tasks), tenants)
		spec := &stream.ArrivalSpec{Seed: uint64(seed) + 1, Tenants: make([]stream.TenantArrivals, tenants)}
		for k := range spec.Tenants {
			spec.Tenants[k] = stream.TenantArrivals{
				// 10..2560 tasks/s: from arrival-dominated (the machine
				// idles between tasks) to compute-dominated regimes.
				Rate:     float64(1+int(rateB)) * 10,
				Shape:    stream.Shape(int(shapeB) % 3),
				BurstLen: 2 + int(burstB%8),
			}
		}
		if err := spec.Generate(plan); err != nil {
			t.Fatalf("Generate: %v", err)
		}
		for k := range plan.Limits {
			plan.Limits[k] = int(limitB % 5) // 0 = unbounded
		}
		pol := policies[int(schedIdx)%len(policies)]
		fair := stream.NewFair(pol.mk(), plan)
		res, err := sim.Run(m, g, fair, sim.Options{
			Seed: seed, CollectMemEvents: true, MaxEvents: 2_000_000, Arrivals: plan.Arrivals,
		})
		if err != nil {
			t.Fatalf("fair(%s) failed to complete a valid streamed DAG: %v", pol.name, err)
		}
		if err := oracle.Check(g, res.Trace, oracle.Options{
			OverflowBytes: res.OverflowBytes,
			Stream:        &oracle.StreamCheck{Plan: plan, Admissions: fair.AdmissionLog()},
		}); err != nil {
			t.Fatalf("fair(%s): %v", pol.name, err)
		}
	})
}
