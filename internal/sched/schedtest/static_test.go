package schedtest

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"multiprio/internal/core"
	"multiprio/internal/oracle"
	"multiprio/internal/runtime"
	"multiprio/internal/sched/heft"
	"multiprio/internal/sched/heft/heftcheck"
	"multiprio/internal/sim"
	"multiprio/internal/trace"
)

var staticAlgs = []struct {
	name string
	alg  heft.Algorithm
}{
	{"heft", heft.RankUpward},
	{"heft-oft", heft.RankOptimistic},
}

// placementProjection renders the per-worker effective execution order
// of a trace in a deterministic text form. Under pinned replay this is
// exactly the plan's Order — on both engines, regardless of clock: the
// simulator's virtual timeline and the threaded engine's wall clock
// cannot agree on timestamps, but they must agree on *placement*.
func placementProjection(nWorkers int, tr *trace.Trace) []byte {
	type ev struct {
		start float64
		id    int64
	}
	byW := make([][]ev, nWorkers)
	for i := range tr.Spans {
		s := &tr.Spans[i]
		if s.Failed || s.Cancelled {
			continue
		}
		byW[s.Worker] = append(byW[s.Worker], ev{s.Start, s.TaskID})
	}
	var b []byte
	for w := range byW {
		evs := byW[w]
		for i := 1; i < len(evs); i++ { // spans per worker are serialized
			for j := i; j > 0 && evs[j-1].start > evs[j].start; j-- {
				evs[j-1], evs[j] = evs[j], evs[j-1]
			}
		}
		b = append(b, 'w')
		b = strconv.AppendInt(b, int64(w), 10)
		b = append(b, ':')
		for _, e := range evs {
			b = append(b, ' ')
			b = strconv.AppendInt(b, e.id, 10)
		}
		b = append(b, '\n')
	}
	return b
}

// TestStaticNoNoiseGolden pins zero-noise, zero-fault pinned replay
// byte-for-byte: the SHA-256 of every (workload, algorithm) plan and of
// its simulated canonical trace against a golden file (standard
// -update protocol), byte-identical traces across repeated runs, and a
// placement projection that is identical between the simulator and the
// threaded engine — and equal to the plan itself.
func TestStaticNoNoiseGolden(t *testing.T) {
	m := conformanceMachine()
	var got bytes.Buffer
	for _, w := range conformanceWorkloads(m) {
		for _, sa := range staticAlgs {
			// Plan digest: BuildPlan is a pure function of (graph,
			// machine, model).
			plan, err := heft.BuildPlan(runtime.NewEnv(m, w.build()), sa.alg)
			if err != nil {
				t.Fatalf("%s/%s: %v", w.name, sa.name, err)
			}
			fmt.Fprintf(&got, "%s/%s plan %x\n", w.name, sa.name, sha256.Sum256(plan.Canonical()))

			// Simulated replay, twice: byte-identical canonical traces.
			runSim := func() (*sim.Result, *heft.Sched) {
				hs := heft.NewStatic(sa.alg)
				res, err := sim.Run(m, w.build(), hs, sim.Options{Seed: 23, CollectMemEvents: true})
				if err != nil {
					t.Fatalf("%s/%s: sim: %v", w.name, sa.name, err)
				}
				return res, hs
			}
			res, hs := runSim()
			res2, _ := runSim()
			if !bytes.Equal(res.Trace.Canonical(), res2.Trace.Canonical()) {
				t.Fatalf("%s/%s: repeated replay produced a different trace", w.name, sa.name)
			}
			fmt.Fprintf(&got, "%s/%s sim %x\n", w.name, sa.name, sha256.Sum256(res.Trace.Canonical()))

			// The replayed placement must equal the plan, on both engines.
			planProj := placementProjection(len(m.Units), res.Trace)
			var want []byte
			for wi, ord := range hs.Plan().Order {
				want = append(want, 'w')
				want = strconv.AppendInt(want, int64(wi), 10)
				want = append(want, ':')
				for _, id := range ord {
					want = append(want, ' ')
					want = strconv.AppendInt(want, id, 10)
				}
				want = append(want, '\n')
			}
			if !bytes.Equal(planProj, want) {
				t.Fatalf("%s/%s: sim placement deviates from plan:\n got: %s\nwant: %s",
					w.name, sa.name, planProj, want)
			}
			ht := heft.NewStatic(sa.alg)
			eng, err := runtime.NewThreadedEngine(m, ht)
			if err != nil {
				t.Fatal(err)
			}
			tres, err := eng.Run(w.build())
			if err != nil {
				t.Fatalf("%s/%s: threaded: %v", w.name, sa.name, err)
			}
			if proj := placementProjection(len(m.Units), tres.Trace); !bytes.Equal(proj, planProj) {
				t.Fatalf("%s/%s: engines disagree on placement:\n  sim: %s\nthread: %s",
					w.name, sa.name, planProj, proj)
			}
		}
	}
	path := filepath.Join("testdata", "static_sha256.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden digests (run with -update to create): %v", err)
	}
	gl, wl := bytes.Split(got.Bytes(), []byte("\n")), bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w []byte
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if !bytes.Equal(g, w) {
			t.Fatalf("static digest drifted at line %d:\n got: %s\nwant: %s", i+1, g, w)
		}
	}
}

// TestStaticConformanceBothEngines runs pinned replay and hybrid over
// every conformance workload on both engines under the full oracle,
// including StaticCheck.
func TestStaticConformanceBothEngines(t *testing.T) {
	m := conformanceMachine()
	modes := []struct {
		name string
		mk   func(heft.Algorithm) *heft.Sched
	}{
		{"static", heft.NewStatic},
		{"hybrid", func(a heft.Algorithm) *heft.Sched {
			return heft.NewHybrid(a, core.New(core.Defaults()))
		}},
	}
	for _, w := range conformanceWorkloads(m) {
		for _, sa := range staticAlgs {
			for _, mode := range modes {
				w, sa, mode := w, sa, mode
				t.Run(w.name+"/"+sa.name+"/"+mode.name, func(t *testing.T) {
					t.Parallel()
					hs := mode.mk(sa.alg)
					g := w.build()
					res, err := sim.Run(m, g, hs, sim.Options{Seed: 23, CollectMemEvents: true})
					if err != nil {
						t.Fatalf("sim: %v", err)
					}
					if err := oracle.Check(g, res.Trace, oracle.Options{
						OverflowBytes: res.OverflowBytes,
						Static:        heftcheck.For(hs, nil),
					}); err != nil {
						t.Fatalf("sim oracle: %v", err)
					}
					ht := mode.mk(sa.alg)
					eng, err := runtime.NewThreadedEngine(m, ht)
					if err != nil {
						t.Fatal(err)
					}
					g2 := w.build()
					tres, err := eng.Run(g2)
					if err != nil {
						t.Fatalf("threaded: %v", err)
					}
					if err := oracle.Check(g2, tres.Trace, oracle.Options{
						Eps:    2e-3,
						Static: heftcheck.For(ht, nil),
					}); err != nil {
						t.Fatalf("threaded oracle: %v", err)
					}
				})
			}
		}
	}
}
