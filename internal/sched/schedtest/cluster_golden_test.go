package schedtest

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"multiprio/internal/oracle"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/sched/distrib"
	"multiprio/internal/sched/registry"
	"multiprio/internal/sim"

	_ "multiprio/internal/sched/all"
)

// distribOf wraps the named registry policy in the two-level cluster
// distributor. Every conformance policy name is a registry name, so the
// distributor can shard to fresh instances of it per node.
func distribOf(t testing.TB, inner string) *distrib.Scheduler {
	t.Helper()
	s, err := distrib.New(inner, registry.Options{})
	if err != nil {
		t.Fatalf("distrib.New(%s): %v", inner, err)
	}
	return s
}

// clusterMachine builds an n-node cluster of conformance-shaped nodes.
// With n=1 the node keeps the exact name and IDs of conformanceMachine —
// the platform-level passthrough that makes trace byte-identity with the
// single-node goldens possible at all.
func clusterMachine(t testing.TB, n int) *platform.Machine {
	t.Helper()
	m, err := platform.UniformCluster("conf-cluster", n, func(i int) (*platform.Machine, error) {
		name := "conf"
		if n > 1 {
			name = fmt.Sprintf("conf%d", i)
		}
		return platform.NewHeteroNode(name, 5, 10, 2, 100, 8*platform.MiB, 5e9, platform.Config{})
	}, 2e9, 2e-5)
	if err != nil {
		t.Fatalf("UniformCluster(%d): %v", n, err)
	}
	return m
}

// TestClusterN1Golden is the drift-free proof of the cluster refactor:
// a 1-node cluster run through the full two-level stack — NewCluster
// platform, distrib distributor, per-node policy from the registry —
// must be byte-identical to the pre-refactor single-node runs. The
// digests are compared against the SAME golden file as
// TestCanonicalTraceGolden, not a parallel copy: if the single-node
// goldens move, this matrix must move in lockstep or the equivalence is
// broken.
func TestClusterN1Golden(t *testing.T) {
	m := clusterMachine(t, 1)
	if m.NumNodes() != 1 || m.Cluster == nil {
		t.Fatal("clusterMachine(1) is not a 1-node cluster")
	}
	var got bytes.Buffer
	for _, w := range conformanceWorkloads(m) {
		for _, pol := range policies {
			g := w.build()
			res, err := sim.Run(m, g, distribOf(t, pol.name), sim.Options{Seed: 23, CollectMemEvents: true})
			if err != nil {
				t.Fatalf("%s/distrib:%s: %v", w.name, pol.name, err)
			}
			fmt.Fprintf(&got, "%s/%s %x\n", w.name, pol.name, sha256.Sum256(res.Trace.Canonical()))
		}
	}
	want, err := os.ReadFile(filepath.Join("testdata", "canonical_sha256.golden"))
	if err != nil {
		t.Fatalf("missing single-node golden digests: %v", err)
	}
	gl, wl := bytes.Split(got.Bytes(), []byte("\n")), bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w []byte
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if !bytes.Equal(g, w) {
			t.Fatalf("1-node cluster trace differs from the single-node golden at line %d:\n got: %s\nwant: %s", i+1, g, w)
		}
	}
}

// TestClusterN1Threaded completes the N=1 equivalence matrix on the
// second engine: the threaded engine is wall-clock nondeterministic, so
// instead of byte identity every run is validated by the oracle.
func TestClusterN1Threaded(t *testing.T) {
	m := clusterMachine(t, 1)
	for _, w := range conformanceWorkloads(m) {
		for _, pol := range policies {
			w, pol := w, pol
			t.Run(w.name+"/"+pol.name, func(t *testing.T) {
				t.Parallel()
				g := w.build()
				eng, err := runtime.NewThreadedEngine(m, distribOf(t, pol.name))
				if err != nil {
					t.Fatalf("NewThreadedEngine: %v", err)
				}
				res, err := eng.Run(g)
				if err != nil {
					t.Fatalf("threaded run: %v", err)
				}
				if err := oracle.Check(g, res.Trace, oracle.Options{}); err != nil {
					t.Fatalf("oracle: %v", err)
				}
			})
		}
	}
}

// TestClusterMultiNodeConformance runs every policy over every workload
// on a 2-node cluster under both engines. Simulator runs carry the full
// memory-event stream, so the oracle's inter-node transfer replay is
// active: every value crossing nodes must have traversed an
// interconnect transfer no faster than its link time.
func TestClusterMultiNodeConformance(t *testing.T) {
	m := clusterMachine(t, 2)
	if m.NumNodes() != 2 {
		t.Fatal("clusterMachine(2) is not a 2-node cluster")
	}
	for _, w := range conformanceWorkloads(m) {
		for _, pol := range policies {
			w, pol := w, pol
			t.Run("sim/"+w.name+"/"+pol.name, func(t *testing.T) {
				t.Parallel()
				g := w.build()
				sched := distribOf(t, pol.name)
				res, err := sim.Run(m, g, sched, sim.Options{Seed: 23, CollectMemEvents: true})
				if err != nil {
					t.Fatalf("sim.Run: %v", err)
				}
				if err := oracle.Check(g, res.Trace, oracle.Options{OverflowBytes: res.OverflowBytes}); err != nil {
					t.Fatalf("oracle: %v", err)
				}
				st := sched.Stats()
				var total int64
				for _, c := range st.TasksPerNode {
					total += c
				}
				if int(total) != len(g.Tasks) {
					t.Errorf("distributor assigned %d tasks, graph has %d", total, len(g.Tasks))
				}
				for n, c := range st.TasksPerNode {
					if c == 0 {
						t.Errorf("node %d was assigned no tasks", n)
					}
				}
			})
			t.Run("threaded/"+w.name+"/"+pol.name, func(t *testing.T) {
				t.Parallel()
				g := w.build()
				eng, err := runtime.NewThreadedEngine(m, distribOf(t, pol.name))
				if err != nil {
					t.Fatalf("NewThreadedEngine: %v", err)
				}
				res, err := eng.Run(g)
				if err != nil {
					t.Fatalf("threaded run: %v", err)
				}
				if err := oracle.Check(g, res.Trace, oracle.Options{}); err != nil {
					t.Fatalf("oracle: %v", err)
				}
			})
		}
	}
}

// TestClusterDeterminism pins simulator determinism through the whole
// two-level stack: on multi-node clusters, a rebuilt graph and a fresh
// distributor under the same seed must reproduce the canonical trace
// byte for byte.
func TestClusterDeterminism(t *testing.T) {
	for _, n := range []int{2, 4} {
		for _, inner := range []string{"multiprio", "dmdas"} {
			n, inner := n, inner
			t.Run(fmt.Sprintf("n%d/%s", n, inner), func(t *testing.T) {
				t.Parallel()
				m := clusterMachine(t, n)
				run := func() []byte {
					g := conformanceWorkloads(m)[3].build() // randdag
					res, err := sim.Run(m, g, distribOf(t, inner), sim.Options{Seed: 23, CollectMemEvents: true})
					if err != nil {
						t.Fatalf("sim.Run: %v", err)
					}
					return res.Trace.Canonical()
				}
				a, b := run(), run()
				if !bytes.Equal(a, b) {
					t.Fatalf("same seed produced different traces on a %d-node cluster (%d vs %d bytes)", n, len(a), len(b))
				}
			})
		}
	}
}
