package schedtest

import (
	"testing"

	"multiprio/internal/apps/randdag"
	"multiprio/internal/oracle"
	"multiprio/internal/platform"
	"multiprio/internal/sim"
)

// FuzzSchedulerConformance decodes the fuzzer's bytes into a random
// layered DAG, a platform shape, and a scheduling policy, then demands
// that the simulated run satisfies every oracle invariant. Any valid
// graph a policy fails to complete — or completes while violating
// dependencies, commute exclusivity, coherence, or capacity — is a bug
// in the policy or the engine, never acceptable fuzzer noise.
func FuzzSchedulerConformance(f *testing.F) {
	// Seed corpus spanning the paper's DAG families: dense-like (deep,
	// well-connected), FMM-like (shallow, wide, commute-heavy, strongly
	// GPU-offloaded), sparse-QR-like (deep and narrow, mixed
	// granularity), and a CPU-only platform with a single-GPU shape's
	// worth of tasks still carrying GPU affinities.
	f.Add(int64(1), uint8(6), uint8(8), uint8(25), uint8(50), uint8(0), uint8(3), uint8(2), uint8(8), uint8(0))
	f.Add(int64(2), uint8(2), uint8(12), uint8(5), uint8(80), uint8(40), uint8(4), uint8(1), uint8(2), uint8(1))
	f.Add(int64(3), uint8(8), uint8(4), uint8(60), uint8(30), uint8(0), uint8(1), uint8(2), uint8(16), uint8(4))
	f.Add(int64(4), uint8(5), uint8(6), uint8(25), uint8(90), uint8(20), uint8(6), uint8(0), uint8(1), uint8(7))
	f.Fuzz(func(t *testing.T, seed int64, layers, width, edgePct, gpuPct, commutePct, nCPU, nGPU, gpuMemMiB, schedIdx uint8) {
		gpus := int(nGPU % 3)
		// NewHeteroNode reserves one driver core per GPU; keep at least
		// two plain CPU workers beyond those.
		cpus := 2 + int(nCPU%5) + gpus
		// Tiny device memories force eviction, writeback, and overflow
		// paths; randdag handles are up to 1 MiB each.
		gpuMem := int64(1+gpuMemMiB%32) * platform.MiB
		m, err := platform.NewHeteroNode("fuzz", cpus, 10, gpus, 100, gpuMem, 5e9, platform.Config{})
		if err != nil {
			t.Skip("unbuildable machine shape")
		}
		g := randdag.Build(randdag.Params{
			Layers:       1 + int(layers%8),
			Width:        1 + int(width%12),
			EdgeProb:     float64(edgePct%100)/100 + 0.01,
			GPUShare:     float64(gpuPct%101) / 100,
			CommuteShare: float64(commutePct%101) / 100,
			MeanCost:     1e-3,
			Machine:      m,
			Seed:         seed,
		})
		pol := policies[int(schedIdx)%len(policies)]
		res, err := sim.Run(m, g, pol.mk(), sim.Options{Seed: seed, CollectMemEvents: true, MaxEvents: 2_000_000})
		if err != nil {
			t.Fatalf("%s failed to complete a valid DAG: %v", pol.name, err)
		}
		if err := oracle.Check(g, res.Trace, oracle.Options{OverflowBytes: res.OverflowBytes}); err != nil {
			t.Fatalf("%s: %v", pol.name, err)
		}
	})
}
