package schedtest

import (
	"fmt"
	"testing"

	"multiprio/internal/apps/randdag"
	"multiprio/internal/oracle"
	"multiprio/internal/platform"
	"multiprio/internal/sim"
)

// FuzzSchedulerConformance decodes the fuzzer's bytes into a random
// layered DAG, a platform shape, and a scheduling policy, then demands
// that the simulated run satisfies every oracle invariant. Any valid
// graph a policy fails to complete — or completes while violating
// dependencies, commute exclusivity, coherence, or capacity — is a bug
// in the policy or the engine, never acceptable fuzzer noise.
func FuzzSchedulerConformance(f *testing.F) {
	// Seed corpus spanning the paper's DAG families: dense-like (deep,
	// well-connected), FMM-like (shallow, wide, commute-heavy, strongly
	// GPU-offloaded), sparse-QR-like (deep and narrow, mixed
	// granularity), and a CPU-only platform with a single-GPU shape's
	// worth of tasks still carrying GPU affinities.
	f.Add(int64(1), uint8(6), uint8(8), uint8(25), uint8(50), uint8(0), uint8(3), uint8(2), uint8(8), uint8(0))
	f.Add(int64(2), uint8(2), uint8(12), uint8(5), uint8(80), uint8(40), uint8(4), uint8(1), uint8(2), uint8(1))
	f.Add(int64(3), uint8(8), uint8(4), uint8(60), uint8(30), uint8(0), uint8(1), uint8(2), uint8(16), uint8(4))
	f.Add(int64(4), uint8(5), uint8(6), uint8(25), uint8(90), uint8(20), uint8(6), uint8(0), uint8(1), uint8(7))
	f.Fuzz(func(t *testing.T, seed int64, layers, width, edgePct, gpuPct, commutePct, nCPU, nGPU, gpuMemMiB, schedIdx uint8) {
		gpus := int(nGPU % 3)
		// NewHeteroNode reserves one driver core per GPU; keep at least
		// two plain CPU workers beyond those.
		cpus := 2 + int(nCPU%5) + gpus
		// Tiny device memories force eviction, writeback, and overflow
		// paths; randdag handles are up to 1 MiB each.
		gpuMem := int64(1+gpuMemMiB%32) * platform.MiB
		m, err := platform.NewHeteroNode("fuzz", cpus, 10, gpus, 100, gpuMem, 5e9, platform.Config{})
		if err != nil {
			t.Skip("unbuildable machine shape")
		}
		g := randdag.Build(randdag.Params{
			Layers:       1 + int(layers%8),
			Width:        1 + int(width%12),
			EdgeProb:     float64(edgePct%100)/100 + 0.01,
			GPUShare:     float64(gpuPct%101) / 100,
			CommuteShare: float64(commutePct%101) / 100,
			MeanCost:     1e-3,
			Machine:      m,
			Seed:         seed,
		})
		pol := policies[int(schedIdx)%len(policies)]
		res, err := sim.Run(m, g, pol.mk(), sim.Options{Seed: seed, CollectMemEvents: true, MaxEvents: 2_000_000})
		if err != nil {
			t.Fatalf("%s failed to complete a valid DAG: %v", pol.name, err)
		}
		if err := oracle.Check(g, res.Trace, oracle.Options{OverflowBytes: res.OverflowBytes}); err != nil {
			t.Fatalf("%s: %v", pol.name, err)
		}
	})
}

// FuzzClusterConformance is the multi-node counterpart: the fuzzer's
// bytes pick a 2–4 node cluster topology (node shape, interconnect
// speed) and an inner policy, the DAG runs through the two-level
// distributor, and the oracle — including the inter-node transfer
// replay, active because the machine is a multi-node cluster with
// memory events collected — must accept the run.
func FuzzClusterConformance(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(3), uint8(1), uint8(8), uint8(6), uint8(8), uint8(25), uint8(40), uint8(0))
	f.Add(int64(2), uint8(3), uint8(2), uint8(0), uint8(2), uint8(3), uint8(10), uint8(70), uint8(0), uint8(3))
	f.Add(int64(3), uint8(4), uint8(4), uint8(2), uint8(16), uint8(8), uint8(4), uint8(50), uint8(20), uint8(7))
	f.Fuzz(func(t *testing.T, seed int64, nNodes, nCPU, nGPU, gpuMemMiB, layers, width, gpuPct, commutePct, schedIdx uint8) {
		nodes := 2 + int(nNodes%3)
		gpus := int(nGPU % 3)
		cpus := 2 + int(nCPU%5) + gpus
		gpuMem := int64(1+gpuMemMiB%32) * platform.MiB
		m, err := platform.UniformCluster("fuzzc", nodes, func(i int) (*platform.Machine, error) {
			return platform.NewHeteroNode(fmt.Sprintf("fn%d", i), cpus, 10, gpus, 100, gpuMem, 5e9, platform.Config{})
		}, 2e9, 2e-5)
		if err != nil {
			t.Skip("unbuildable cluster shape")
		}
		g := randdag.Build(randdag.Params{
			Layers:       1 + int(layers%8),
			Width:        1 + int(width%12),
			EdgeProb:     0.3,
			GPUShare:     float64(gpuPct%101) / 100,
			CommuteShare: float64(commutePct%101) / 100,
			MeanCost:     1e-3,
			Machine:      m,
			Seed:         seed,
		})
		pol := policies[int(schedIdx)%len(policies)]
		sched := distribOf(t, pol.name)
		res, err := sim.Run(m, g, sched, sim.Options{Seed: seed, CollectMemEvents: true, MaxEvents: 4_000_000})
		if err != nil {
			t.Fatalf("distrib:%s failed to complete a valid DAG on %d nodes: %v", pol.name, nodes, err)
		}
		if err := oracle.Check(g, res.Trace, oracle.Options{OverflowBytes: res.OverflowBytes}); err != nil {
			t.Fatalf("distrib:%s on %d nodes: %v", pol.name, nodes, err)
		}
	})
}
