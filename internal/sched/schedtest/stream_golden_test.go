package schedtest

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"multiprio/internal/sim"
	"multiprio/internal/stream"
)

// TestStreamT0Golden is this PR's equivalence proof: a streaming run
// whose tasks all arrive at t=0 — an explicit all-zero arrival plan
// through the Fair wrapper with unbounded admission — must reproduce
// the batch-mode canonical trace digests byte for byte, over the full
// workload × policy conformance matrix. Zero arrivals take the exact
// batch code path (no arrival events, no extra sequence numbers) and
// unbounded admission forwards every push inline, so any divergence
// means the streaming layer is not behaviour-neutral when disabled.
//
// The golden file is the batch suite's; this test never updates it.
func TestStreamT0Golden(t *testing.T) {
	m := conformanceMachine()
	var got bytes.Buffer
	for _, w := range conformanceWorkloads(m) {
		for _, pol := range policies {
			g := w.build()
			plan := stream.SplitEven(len(g.Tasks), 1)
			fair := stream.NewFair(pol.mk(), plan)
			res, err := sim.Run(m, g, fair, sim.Options{
				Seed: 23, CollectMemEvents: true, Arrivals: plan.Arrivals,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", w.name, pol.name, err)
			}
			stats := fair.Stats()
			if stats.Deferred[0] != 0 {
				t.Fatalf("%s/%s: unbounded wrapper deferred %d tasks", w.name, pol.name, stats.Deferred[0])
			}
			fmt.Fprintf(&got, "%s/%s %x\n", w.name, pol.name, sha256.Sum256(res.Trace.Canonical()))
		}
	}
	want, err := os.ReadFile(filepath.Join("testdata", "canonical_sha256.golden"))
	if err != nil {
		t.Fatalf("missing batch golden digests: %v", err)
	}
	gl, wl := bytes.Split(got.Bytes(), []byte("\n")), bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w []byte
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if !bytes.Equal(g, w) {
			t.Fatalf("t=0 streaming run diverged from the batch golden at line %d:\n got: %s\nwant: %s", i+1, g, w)
		}
	}
}
