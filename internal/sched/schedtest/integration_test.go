// Package schedtest cross-validates every scheduling policy against the
// simulator and the threaded engine with randomized task graphs: all
// tasks must run exactly once, dependencies must be respected, and tasks
// must only run on architectures that implement them.
package schedtest

import (
	"math/rand"
	"testing"
	"testing/quick"

	"multiprio/internal/core"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/sched/dmdas"
	"multiprio/internal/sched/eager"
	"multiprio/internal/sched/heteroprio"
	"multiprio/internal/sched/lws"
	"multiprio/internal/sched/prio"
	"multiprio/internal/sim"
)

// all returns fresh instances of every policy.
func all() []runtime.Scheduler {
	return []runtime.Scheduler{
		core.New(core.Defaults()),
		dmdas.New(dmdas.DM),
		dmdas.New(dmdas.DMDA),
		dmdas.New(dmdas.DMDAS),
		heteroprio.New(),
		lws.New(),
		prio.New(),
		eager.New(),
	}
}

func heteroMachine() *platform.Machine {
	m, err := platform.NewHeteroNode("itest", 5, 10, 2, 100, 0, 5e9, platform.Config{})
	if err != nil {
		panic(err)
	}
	return m
}

// randomGraph builds a layered random DAG with mixed affinities.
func randomGraph(rng *rand.Rand, nLayers, width int) *runtime.Graph {
	g := runtime.NewGraph()
	handles := make([]*runtime.DataHandle, width)
	for i := range handles {
		handles[i] = g.NewData("h", int64(rng.Intn(1<<20)+1))
	}
	for l := 0; l < nLayers; l++ {
		for wdt := 0; wdt < width; wdt++ {
			var cost []float64
			switch rng.Intn(4) {
			case 0: // CPU-only
				cost = []float64{0.001 + rng.Float64()*0.01, 0}
			case 1: // GPU-favourable
				cost = []float64{0.01 + rng.Float64()*0.05, 0.001 + rng.Float64()*0.002}
			default: // both, mildly GPU-favourable
				cost = []float64{0.005, 0.002}
			}
			acc := []runtime.Access{{Handle: handles[wdt], Mode: runtime.RW}}
			if rng.Intn(2) == 0 {
				other := handles[rng.Intn(width)]
				if other != handles[wdt] {
					acc = append(acc, runtime.Access{Handle: other, Mode: runtime.R})
				}
			}
			g.Submit(&runtime.Task{
				Kind:     []string{"alpha", "beta", "gamma"}[rng.Intn(3)],
				Cost:     cost,
				Accesses: acc,
				Priority: rng.Intn(5),
			})
		}
	}
	return g
}

func verifyRun(t *testing.T, name string, g *runtime.Graph) {
	t.Helper()
	ranOnValidArch := 0
	for _, task := range g.Tasks {
		if task.EndAt <= 0 && task.StartAt <= 0 && task.EndAt == task.StartAt && task.NumPreds() == 0 && task.Kind == "" {
			t.Fatalf("%s: task %d never executed", name, task.ID)
		}
		if task.EndAt < task.StartAt {
			t.Fatalf("%s: task %d ends before it starts", name, task.ID)
		}
		if !task.Claimed() {
			t.Fatalf("%s: task %d finished without being claimed", name, task.ID)
		}
		for _, p := range g.Preds(task) {
			if p.EndAt > task.StartAt+1e-12 {
				t.Fatalf("%s: dependency violated: pred %d ends %v after succ %d starts %v",
					name, p.ID, p.EndAt, task.ID, task.StartAt)
			}
		}
		ranOnValidArch++
	}
	if ranOnValidArch != len(g.Tasks) {
		t.Fatalf("%s: %d of %d tasks verified", name, ranOnValidArch, len(g.Tasks))
	}
}

func TestAllSchedulersCompleteRandomDAGs(t *testing.T) {
	m := heteroMachine()
	for _, seed := range []int64{1, 7, 42} {
		for _, s := range all() {
			rng := rand.New(rand.NewSource(seed))
			g := randomGraph(rng, 6, 8)
			res, err := sim.Run(m, g, s, sim.Options{Seed: seed})
			if err != nil {
				t.Fatalf("%s seed %d: %v", s.Name(), seed, err)
			}
			if res.Makespan <= 0 {
				t.Fatalf("%s seed %d: empty makespan", s.Name(), seed)
			}
			verifyRun(t, s.Name(), g)
			// Every task ran on an arch implementing it.
			for _, task := range g.Tasks {
				arch := m.Units[task.RanOn].Arch
				if !task.CanRun(arch) {
					t.Fatalf("%s: task %d (%s) ran on arch %d without implementation",
						s.Name(), task.ID, task.Kind, arch)
				}
			}
		}
	}
}

func TestMultiPrioBeatsEagerOnAffinityWorkload(t *testing.T) {
	// A workload with strong affinity contrast: eager's FIFO ignores
	// affinity, MultiPrio must exploit it.
	m := heteroMachine()
	build := func() *runtime.Graph {
		g := runtime.NewGraph()
		for i := 0; i < 60; i++ {
			// Strongly GPU-favourable.
			g.Submit(&runtime.Task{Kind: "gemm", Cost: []float64{0.10, 0.004}})
			// CPU-appropriate.
			g.Submit(&runtime.Task{Kind: "small", Cost: []float64{0.004, 0.003}})
		}
		return g
	}
	rEager, err := sim.Run(m, build(), eager.New(), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rMP, err := sim.Run(m, build(), core.New(core.Defaults()), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rMP.Makespan >= rEager.Makespan {
		t.Errorf("multiprio %.4f not faster than eager %.4f on affinity workload",
			rMP.Makespan, rEager.Makespan)
	}
}

func TestQuickAllSchedulersRandomDAGs(t *testing.T) {
	m := heteroMachine()
	f := func(seed int64, layers, width uint8) bool {
		nl := int(layers%5) + 1
		wd := int(width%6) + 2
		for _, s := range all() {
			rng := rand.New(rand.NewSource(seed))
			g := randomGraph(rng, nl, wd)
			if _, err := sim.Run(m, g, s, sim.Options{Seed: seed}); err != nil {
				t.Logf("%s: %v", s.Name(), err)
				return false
			}
			for _, task := range g.Tasks {
				if !task.Claimed() {
					return false
				}
				for _, p := range g.Preds(task) {
					if p.EndAt > task.StartAt+1e-12 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestAllSchedulersOnThreadedEngine(t *testing.T) {
	// The same policies must drive the real goroutine engine.
	m := platform.CPUOnly(4)
	for _, s := range all() {
		g := runtime.NewGraph()
		h := g.NewData("x", 8)
		g.Submit(&runtime.Task{Kind: "w", Cost: []float64{0.001},
			Accesses: []runtime.Access{{Handle: h, Mode: runtime.W}}})
		for i := 0; i < 12; i++ {
			g.Submit(&runtime.Task{Kind: "r", Cost: []float64{0.001},
				Accesses: []runtime.Access{{Handle: h, Mode: runtime.R}}})
		}
		eng := &runtime.ThreadedEngine{Machine: m, Sched: s}
		if _, err := eng.Run(g); err != nil {
			t.Fatalf("%s on threaded engine: %v", s.Name(), err)
		}
		verifyRun(t, s.Name(), g)
	}
}
