package schedtest

import (
	"bytes"
	"testing"

	"multiprio/internal/runtime"
	"multiprio/internal/sim"
)

// rebuildSequential replays a built graph through the sequential Submit
// path: handles recreated in registration order, tasks re-submitted one
// by one with accesses remapped onto the fresh handles. SubmitBatch
// documents that a batch schedules byte-identically to the equivalent
// Submit sequence; this is the replay that pins it. (Explicit Declare
// edges are not replayed — the conformance workloads express every
// dependency through data accesses.)
func rebuildSequential(g *runtime.Graph) *runtime.Graph {
	seq := runtime.NewGraph()
	handles := make([]*runtime.DataHandle, len(g.Handles))
	for i, h := range g.Handles {
		handles[i] = seq.NewDataOn(h.Name, h.Bytes, h.Home)
	}
	for _, t := range g.Tasks {
		acc := make([]runtime.Access, len(t.Accesses))
		for i, a := range t.Accesses {
			acc[i] = runtime.Access{Handle: handles[a.Handle.ID], Mode: a.Mode}
		}
		seq.Submit(&runtime.Task{
			Kind:      t.Kind,
			Footprint: t.Footprint,
			Flops:     t.Flops,
			Priority:  t.Priority,
			Accesses:  acc,
			Cost:      t.Cost,
			Run:       t.Run,
			Tag:       t.Tag,
		})
	}
	return seq
}

// TestSubmitBatchMatchesSequential runs every conformance workload —
// all four now built through Graph.SubmitBatch — against a sequential
// re-submission of the same tasks, across the full 8-policy matrix, and
// requires byte-identical canonical traces. Together with the golden
// digests (recorded when the apps still used sequential Submit) this
// proves the batch path changes nothing but the allocation count.
func TestSubmitBatchMatchesSequential(t *testing.T) {
	m := conformanceMachine()
	for _, w := range conformanceWorkloads(m) {
		for _, pol := range policies {
			w, pol := w, pol
			t.Run(w.name+"/"+pol.name, func(t *testing.T) {
				t.Parallel()
				opts := sim.Options{Seed: 23, CollectMemEvents: true}
				batch := w.build()
				resBatch, err := sim.Run(m, batch, pol.mk(), opts)
				if err != nil {
					t.Fatalf("batch-built run: %v", err)
				}
				seq := rebuildSequential(batch)
				resSeq, err := sim.Run(m, seq, pol.mk(), opts)
				if err != nil {
					t.Fatalf("sequential rebuild run: %v", err)
				}
				if !bytes.Equal(resBatch.Trace.Canonical(), resSeq.Trace.Canonical()) {
					t.Fatalf("canonical traces diverge between SubmitBatch and sequential Submit")
				}
			})
		}
	}
}
