package schedtest

import (
	"bytes"
	"testing"

	"multiprio/internal/apps/dense"
	"multiprio/internal/apps/fmm"
	"multiprio/internal/apps/randdag"
	"multiprio/internal/apps/sparseqr"
	"multiprio/internal/core"
	"multiprio/internal/oracle"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/sched/dmdas"
	"multiprio/internal/sched/eager"
	"multiprio/internal/sched/heteroprio"
	"multiprio/internal/sched/lws"
	"multiprio/internal/sched/prio"
	"multiprio/internal/sim"
)

// policies lists every scheduler with a constructor, so each run gets a
// fresh instance (schedulers keep per-run state).
var policies = []struct {
	name string
	mk   func() runtime.Scheduler
}{
	{"multiprio", func() runtime.Scheduler { return core.New(core.Defaults()) }},
	{"dm", func() runtime.Scheduler { return dmdas.New(dmdas.DM) }},
	{"dmda", func() runtime.Scheduler { return dmdas.New(dmdas.DMDA) }},
	{"dmdas", func() runtime.Scheduler { return dmdas.New(dmdas.DMDAS) }},
	{"heteroprio", func() runtime.Scheduler { return heteroprio.New() }},
	{"lws", func() runtime.Scheduler { return lws.New() }},
	{"prio", func() runtime.Scheduler { return prio.New() }},
	{"eager", func() runtime.Scheduler { return eager.New() }},
}

// conformanceMachine is deliberately memory-starved (8 MiB per GPU)
// so the workloads below overflow device memory and the oracle's
// coherence replay exercises eviction, writeback and capacity
// accounting, not just the happy path.
func conformanceMachine() *platform.Machine {
	m, err := platform.NewHeteroNode("conf", 5, 10, 2, 100, 8*platform.MiB, 5e9, platform.Config{})
	if err != nil {
		panic(err)
	}
	return m
}

// conformanceWorkloads returns one graph builder per application family
// of the paper, sized to run every scheduler in a few milliseconds of
// simulated work while still covering each structural feature: dense
// tiled factorization (wide dependency fan-out), FMM with commute-mode
// accumulations, irregular multifrontal sparse QR, and a random layered
// DAG mixing plain and commuting accesses.
func conformanceWorkloads(m *platform.Machine) []struct {
	name  string
	build func() *runtime.Graph
} {
	return []struct {
		name  string
		build func() *runtime.Graph
	}{
		{"cholesky", func() *runtime.Graph {
			return dense.Cholesky(dense.Params{Tiles: 6, TileSize: 256, Machine: m, UserPriorities: true})
		}},
		{"fmm", func() *runtime.Graph {
			return fmm.Build(fmm.Params{Particles: 2000, Height: 3, GroupSize: 8,
				Clustered: true, UseCommute: true, Machine: m, Seed: 5})
		}},
		{"sparseqr", func() *runtime.Graph {
			stats, ok := sparseqr.ByName("cat_ears_4_4")
			if !ok {
				panic("sparseqr: matrix cat_ears_4_4 missing")
			}
			return sparseqr.Build(stats, sparseqr.Params{Machine: m, PanelWidth: 512, RowBlock: 4096})
		}},
		{"randdag", func() *runtime.Graph {
			return randdag.Build(randdag.Params{Layers: 8, Width: 10, CommuteShare: 0.3,
				Machine: m, Seed: 17})
		}},
	}
}

// TestConformanceSimEngine runs every scheduler over every workload on
// the simulator, validates the full trace (including the memory-event
// stream) against the execution oracle, and checks determinism: a
// rebuilt graph and a fresh scheduler under the same seed must
// reproduce the trace byte for byte.
func TestConformanceSimEngine(t *testing.T) {
	m := conformanceMachine()
	for _, w := range conformanceWorkloads(m) {
		for _, pol := range policies {
			w, pol := w, pol
			t.Run(w.name+"/"+pol.name, func(t *testing.T) {
				t.Parallel()
				run := func() (*runtime.Graph, *sim.Result) {
					g := w.build()
					res, err := sim.Run(m, g, pol.mk(), sim.Options{Seed: 23, CollectMemEvents: true})
					if err != nil {
						t.Fatalf("sim.Run: %v", err)
					}
					return g, res
				}
				g, res := run()
				if err := oracle.Check(g, res.Trace, oracle.Options{OverflowBytes: res.OverflowBytes}); err != nil {
					t.Fatalf("oracle: %v", err)
				}
				_, res2 := run()
				if !bytes.Equal(res.Trace.Canonical(), res2.Trace.Canonical()) {
					t.Fatalf("same seed produced a different trace (%d vs %d bytes)",
						len(res.Trace.Canonical()), len(res2.Trace.Canonical()))
				}
			})
		}
	}
}

// TestConformanceThreadedEngine runs every scheduler over every
// workload on the real goroutine engine (kernels are no-ops; the graphs
// carry cost models, not code) and validates the execution records in
// the result's trace through the same oracle. Wall-clock stamps are
// monotonic, so dependency and serialization checks hold with zero
// tolerance; there is no memory-event stream to replay.
func TestConformanceThreadedEngine(t *testing.T) {
	m := conformanceMachine()
	for _, w := range conformanceWorkloads(m) {
		for _, pol := range policies {
			w, pol := w, pol
			t.Run(w.name+"/"+pol.name, func(t *testing.T) {
				t.Parallel()
				g := w.build()
				eng, err := runtime.NewThreadedEngine(m, pol.mk())
				if err != nil {
					t.Fatalf("NewThreadedEngine: %v", err)
				}
				res, err := eng.Run(g)
				if err != nil {
					t.Fatalf("threaded run: %v", err)
				}
				if err := oracle.Check(g, res.Trace, oracle.Options{}); err != nil {
					t.Fatalf("oracle: %v", err)
				}
			})
		}
	}
}
