package schedtest

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"multiprio/internal/apps/dense"
	"multiprio/internal/core"
	"multiprio/internal/obs"
	"multiprio/internal/sched/dmdas"
	"multiprio/internal/sim"
)

// TestCanonicalTraceGoldenObserved reruns the full conformance matrix
// with a probe attached — decision log AND metrics recorder fanned out
// through obs.Multi — and checks the canonical trace digests against
// the SAME golden file as the unobserved run. This is the standing
// proof of the observability layer's core contract: observation never
// perturbs scheduling. A probe that advances the sequencer, mutates
// replica state, or changes an iteration order shows up here as a
// digest mismatch against testdata/canonical_sha256.golden.
func TestCanonicalTraceGoldenObserved(t *testing.T) {
	m := conformanceMachine()
	var got bytes.Buffer
	var decisions, samples int
	for _, w := range conformanceWorkloads(m) {
		for _, pol := range policies {
			g := w.build()
			dl := &obs.DecisionLog{}
			mx := obs.NewMetrics()
			res, err := sim.Run(m, g, pol.mk(), sim.Options{
				Seed: 23, CollectMemEvents: true,
				Probe: obs.Multi{dl, mx},
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", w.name, pol.name, err)
			}
			fmt.Fprintf(&got, "%s/%s %x\n", w.name, pol.name, sha256.Sum256(res.Trace.Canonical()))
			decisions += dl.Len()
			for _, trk := range mx.Tracks() {
				samples += len(trk.Samples)
			}
		}
	}
	// Guard against the test passing vacuously because instrumentation
	// got disconnected: the matrix must actually produce observations.
	if decisions == 0 {
		t.Fatal("probe attached but no decision events recorded")
	}
	if samples == 0 {
		t.Fatal("probe attached but no counter samples recorded")
	}

	want, err := os.ReadFile(filepath.Join("testdata", "canonical_sha256.golden"))
	if err != nil {
		t.Fatalf("missing golden digests (run TestCanonicalTraceGolden -update first): %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("observed run drifted from unobserved goldens — a probe perturbed scheduling:\n got:\n%s\nwant:\n%s", got.Bytes(), want)
	}
}

// TestDecisionLogGolden pins the full canonical decision-log text of a
// small Cholesky run under the two schedulers with the richest
// instrumentation. Unlike the SHA-256 trace goldens this golden is
// human-readable: a diff shows exactly which decision changed. It also
// runs each configuration twice and requires byte-identical logs, so
// any nondeterminism in the instrumentation itself (map iteration,
// unstable ordering) fails even before a golden is recorded.
func TestDecisionLogGolden(t *testing.T) {
	m := conformanceMachine()
	var got bytes.Buffer
	for _, pol := range []struct {
		name string
	}{{"multiprio"}, {"dmdas"}} {
		var prev []byte
		for run := 0; run < 2; run++ {
			g := dense.Cholesky(dense.Params{Tiles: 4, TileSize: 256, Machine: m, UserPriorities: true})
			dl := &obs.DecisionLog{}
			var err error
			switch pol.name {
			case "multiprio":
				_, err = sim.Run(m, g, core.New(core.Defaults()), sim.Options{Seed: 23, Probe: dl})
			case "dmdas":
				_, err = sim.Run(m, g, dmdas.New(dmdas.DMDAS), sim.Options{Seed: 23, Probe: dl})
			}
			if err != nil {
				t.Fatalf("%s run %d: %v", pol.name, run, err)
			}
			var buf bytes.Buffer
			if err := dl.WriteCanonical(&buf); err != nil {
				t.Fatal(err)
			}
			if run == 0 {
				prev = append([]byte(nil), buf.Bytes()...)
				fmt.Fprintf(&got, "# %s (%d decisions)\n", pol.name, dl.Len())
				got.Write(buf.Bytes())
			} else if !bytes.Equal(prev, buf.Bytes()) {
				t.Fatalf("%s: decision log differs between identical runs — instrumentation is nondeterministic", pol.name)
			}
		}
	}

	path := filepath.Join("testdata", "decision_log.golden")
	if *updateGolden {
		if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing decision-log golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		gl, wl := bytes.Split(got.Bytes(), []byte("\n")), bytes.Split(want, []byte("\n"))
		for i := 0; i < len(gl) || i < len(wl); i++ {
			var g, w []byte
			if i < len(gl) {
				g = gl[i]
			}
			if i < len(wl) {
				w = wl[i]
			}
			if !bytes.Equal(g, w) {
				t.Fatalf("decision log drifted at line %d:\n got: %s\nwant: %s", i+1, g, w)
			}
		}
	}
}
