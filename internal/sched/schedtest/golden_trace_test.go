package schedtest

import (
	"bytes"
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"multiprio/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden canonical-trace digests")

// TestCanonicalTraceGolden pins the SHA-256 digest of the canonical
// trace of every (workload, policy) conformance run. The digests were
// recorded before the scheduler/simulator hot-path optimization pass, so
// this test is the standing proof that performance work does not change
// scheduling behaviour: any drift in task placement, ordering, transfer
// timing or the memory-event stream shows up as a digest mismatch.
//
// After an *intentional* behaviour change, regenerate with
// `go test ./internal/sched/schedtest -run TestCanonicalTraceGolden -update`.
func TestCanonicalTraceGolden(t *testing.T) {
	m := conformanceMachine()
	var got bytes.Buffer
	for _, w := range conformanceWorkloads(m) {
		for _, pol := range policies {
			g := w.build()
			res, err := sim.Run(m, g, pol.mk(), sim.Options{Seed: 23, CollectMemEvents: true})
			if err != nil {
				t.Fatalf("%s/%s: %v", w.name, pol.name, err)
			}
			fmt.Fprintf(&got, "%s/%s %x\n", w.name, pol.name, sha256.Sum256(res.Trace.Canonical()))
		}
	}
	path := filepath.Join("testdata", "canonical_sha256.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden digests (run with -update to create): %v", err)
	}
	gl, wl := bytes.Split(got.Bytes(), []byte("\n")), bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w []byte
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if !bytes.Equal(g, w) {
			t.Fatalf("canonical trace digest drifted at line %d:\n got: %s\nwant: %s", i+1, g, w)
		}
	}
}
