package schedtest

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"multiprio/internal/oracle"
	"multiprio/internal/runtime"
	"multiprio/internal/sim"
	"multiprio/internal/telemetry"
)

// TestCanonicalTraceGoldenTelemetry reruns the full 8-policy conformance
// matrix on BOTH engines with a telemetry probe attached as the run
// observer and proves the telemetry layer is behaviour-neutral:
//
//   - Simulator: the canonical trace digests must be byte-identical to
//     testdata/canonical_sha256.golden, the same file the unobserved and
//     probe-observed runs pin. Aggregation that advanced the sequencer,
//     took a scheduling-visible lock, or mutated shared state would
//     drift the digests.
//   - Threaded engine: wall-clock traces are not digest-stable, so every
//     telemetry-observed run must instead pass the execution oracle,
//     over all 8 policies.
//
// The test also guards against passing vacuously: the probe must have
// aggregated every completion of the matrix into the tenant histograms.
func TestCanonicalTraceGoldenTelemetry(t *testing.T) {
	m := conformanceMachine()
	p := telemetry.NewProbe()
	var got bytes.Buffer
	totalTasks := 0
	for _, w := range conformanceWorkloads(m) {
		for _, pol := range policies {
			g := w.build()
			totalTasks += len(g.Tasks)
			res, err := sim.Run(m, g, pol.mk(), sim.Options{
				Seed: 23, CollectMemEvents: true, Observer: p,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", w.name, pol.name, err)
			}
			fmt.Fprintf(&got, "%s/%s %x\n", w.name, pol.name, sha256.Sum256(res.Trace.Canonical()))
		}
	}

	want, err := os.ReadFile(filepath.Join("testdata", "canonical_sha256.golden"))
	if err != nil {
		t.Fatalf("missing golden digests (run TestCanonicalTraceGolden -update first): %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("telemetry-observed run drifted from unobserved goldens — telemetry perturbed scheduling:\n got:\n%s\nwant:\n%s", got.Bytes(), want)
	}

	// Non-vacuousness: every effective completion of the sim matrix must
	// have landed in the aggregates.
	var completions, queueCount float64
	for _, f := range p.Snapshot().Families {
		for _, mt := range f.Metrics {
			switch f.Name {
			case "multiprio_tasks_completed_total":
				completions += mt.Value
			case "multiprio_tenant_queue_seconds":
				queueCount += float64(mt.Count)
			}
		}
	}
	if completions != float64(totalTasks) || queueCount != float64(totalTasks) {
		t.Fatalf("telemetry aggregated %g completions / %g queue samples, matrix ran %d tasks",
			completions, queueCount, totalTasks)
	}
	if ok, reason := p.Health().Healthy(); !ok {
		t.Fatalf("healthy matrix degraded health: %s", reason)
	}

	// Threaded half: all 8 policies under observation, oracle-checked.
	tw := conformanceWorkloads(m)[0] // cholesky
	for _, pol := range policies {
		pol := pol
		t.Run("threaded/"+pol.name, func(t *testing.T) {
			t.Parallel()
			g := tw.build()
			eng, err := runtime.NewThreadedEngine(m, pol.mk(), runtime.WithObserver(telemetry.NewProbe()))
			if err != nil {
				t.Fatalf("NewThreadedEngine: %v", err)
			}
			res, err := eng.Run(g)
			if err != nil {
				t.Fatalf("threaded run: %v", err)
			}
			if err := oracle.Check(g, res.Trace, oracle.Options{}); err != nil {
				t.Fatalf("oracle: %v", err)
			}
		})
	}
}
