// Package all registers every scheduler policy of the repository with
// the central registry. Blank-import it wherever schedulers are
// resolved by name:
//
//	import _ "multiprio/internal/sched/all"
package all

import (
	_ "multiprio/internal/core"
	_ "multiprio/internal/sched/dmdas"
	_ "multiprio/internal/sched/eager"
	_ "multiprio/internal/sched/heft"
	_ "multiprio/internal/sched/heteroprio"
	_ "multiprio/internal/sched/lws"
	_ "multiprio/internal/sched/prio"
	_ "multiprio/internal/sched/shardfifo"
)
