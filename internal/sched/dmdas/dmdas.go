// Package dmdas implements StarPU's dequeue-model scheduler family
// (Augonnet et al., ICPADS 2010), the HEFT-like task-centric baselines of
// the paper's evaluation:
//
//   - dm (heft-tm-pr): at PUSH, map the task to the worker with the
//     minimum expected completion time based on the performance model.
//   - dmda (heft-tmdp-pr): additionally account for the time to transfer
//     the task's data to the worker's memory node, and request prefetch
//     once the mapping is decided.
//   - dmdas: additionally keep each worker's queue sorted by the
//     application-provided task priority, preferring data-ready tasks
//     among equal priorities.
//
// The paper compares MultiPrio against dmdas, which "exploits task
// priorities provided by user knowledge"; when the application sets no
// priorities (TBFMM, QR_MUMPS) dmdas degenerates to FIFO within the
// mapped queues, exactly as described in Section II.
package dmdas

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"multiprio/internal/obs"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
)

// Variant selects the member of the dequeue-model family.
type Variant int

// The published variants. DMDAR is dmda-ready: FIFO queues, but POP
// prefers a task whose data is already resident on the worker's memory
// node (StarPU's dmdar policy).
const (
	DM Variant = iota
	DMDA
	DMDAS
	DMDAR
)

func (v Variant) String() string {
	switch v {
	case DM:
		return "dm"
	case DMDA:
		return "dmda"
	case DMDAS:
		return "dmdas"
	case DMDAR:
		return "dmdar"
	default:
		return fmt.Sprintf("dm-variant-%d", int(v))
	}
}

// entry is one queued task with its enqueue-time execution estimate
// (needed to unwind the expected-load accounting at completion).
type entry struct {
	t   *runtime.Task
	est float64
	seq int64
}

// Sched is a dequeue-model scheduler.
type Sched struct {
	variant Variant

	mu  sync.Mutex
	env *runtime.Env
	// queues[w] holds the tasks mapped to worker w (sorted by priority
	// for DMDAS, FIFO otherwise).
	queues [][]entry
	// load[w] is the summed estimated execution time of queued tasks.
	load []float64
	// xfer caches TransferEstimate per memory node within one Push
	// (several workers share a memory node; the estimate only depends
	// on the node). -1 marks a stale entry.
	xfer []float64
	// seq breaks sort ties to keep equal-priority order FIFO.
	seq int64

	// probe receives mapping decisions and per-worker load/queue-depth
	// counters; nil disables observation. Track names are prebuilt at
	// Init so the observing path does not allocate.
	probe      obs.Probe
	loadTrack  []string
	queueTrack []string
}

// New returns a scheduler of the given variant.
func New(v Variant) *Sched { return &Sched{variant: v} }

// Name implements runtime.Scheduler.
func (s *Sched) Name() string { return s.variant.String() }

// Init implements runtime.Scheduler.
func (s *Sched) Init(env *runtime.Env) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.env = env
	s.queues = make([][]entry, len(env.Machine.Units))
	s.load = make([]float64, len(env.Machine.Units))
	s.xfer = make([]float64, len(env.Machine.Mems))
	s.seq = 0
	s.probe = env.Probe
	if s.probe != nil {
		name := s.variant.String()
		s.loadTrack = make([]string, len(env.Machine.Units))
		s.queueTrack = make([]string, len(env.Machine.Units))
		for i, u := range env.Machine.Units {
			s.loadTrack[i] = name + ".load[" + u.Name + "]"
			s.queueTrack[i] = name + ".queue[" + u.Name + "]"
		}
	}
}

// Push implements runtime.Scheduler: the HEFT step. The task is mapped
// immediately to the worker minimizing expected completion time.
func (s *Sched) Push(t *runtime.Task) {
	s.mu.Lock()
	defer s.mu.Unlock()

	m := s.env.Machine
	now := s.env.Now()
	for i := range s.xfer {
		s.xfer[i] = -1
	}
	bestW := -1
	bestECT := math.Inf(1)
	bestEst := 0.0
	for w, unit := range m.Units {
		if !s.env.WorkerAlive(platform.UnitID(w)) {
			continue // killed by a fault; its queue is never drained
		}
		d := s.env.Delta(t, unit.Arch)
		if math.IsInf(d, 1) {
			continue
		}
		est := d * unit.SpeedFactor
		ect := now + s.load[w] + est
		if s.variant != DM {
			if s.xfer[unit.Mem] < 0 {
				s.xfer[unit.Mem] = s.env.TransferEstimate(t, unit.Mem)
			}
			ect += s.xfer[unit.Mem]
		}
		if ect < bestECT {
			bestECT, bestW, bestEst = ect, w, est
		}
	}
	if bestW < 0 {
		panic(fmt.Sprintf("dmdas: task %d (%s) has no eligible worker", t.ID, t.Kind))
	}
	s.seq++
	e := entry{t: t, est: bestEst, seq: s.seq}
	q := append(s.queues[bestW], e)
	if s.variant == DMDAS {
		// Sorted by priority descending, FIFO within equal priority.
		sort.SliceStable(q, func(i, j int) bool {
			if q[i].t.Priority != q[j].t.Priority {
				return q[i].t.Priority > q[j].t.Priority
			}
			return q[i].seq < q[j].seq
		})
	}
	s.queues[bestW] = q
	s.load[bestW] += bestEst

	if s.probe != nil {
		at, seq := now, s.env.Seq()
		xfer := 0.0
		if s.variant != DM {
			xfer = s.xfer[m.Units[bestW].Mem]
		}
		s.probe.Decision(obs.Decision{
			Kind: obs.MapTask, At: at, Seq: seq, Task: t.ID,
			Worker: bestW, Mem: int(m.Units[bestW].Mem), Arch: int(m.Units[bestW].Arch),
			A: bestECT, B: bestEst, C: xfer,
		})
		s.probe.Counter(s.loadTrack[bestW], at, seq, s.load[bestW])
		s.probe.Counter(s.queueTrack[bestW], at, seq, float64(len(q)))
	}
	if s.variant != DM && s.env.Prefetch != nil {
		s.env.Prefetch(t, m.Units[bestW].Mem)
	}
}

// Pop implements runtime.Scheduler: the worker drains its own mapped
// queue. DMDAS prefers a data-ready task among the head's equal-priority
// group.
func (s *Sched) Pop(w runtime.WorkerInfo) *runtime.Task {
	s.mu.Lock()
	defer s.mu.Unlock()

	q := s.queues[w.ID]
	if len(q) == 0 {
		return nil
	}
	idx := 0
	switch {
	case s.variant == DMDAS && s.env.Locator != nil:
		headPrio := q[0].t.Priority
		for i := 0; i < len(q) && q[i].t.Priority == headPrio; i++ {
			if s.dataReady(q[i].t, w.Mem) {
				idx = i
				break
			}
		}
	case s.variant == DMDAR && s.env.Locator != nil:
		// dmda-ready: take the first data-ready task anywhere in the
		// queue, falling back to the FIFO head.
		for i := 0; i < len(q); i++ {
			if s.dataReady(q[i].t, w.Mem) {
				idx = i
				break
			}
		}
	}
	e := q[idx]
	s.queues[w.ID] = append(q[:idx], q[idx+1:]...)
	s.load[w.ID] -= e.est
	if s.load[w.ID] < 0 {
		s.load[w.ID] = 0
	}
	if !e.t.TryClaim() {
		panic(fmt.Sprintf("dmdas: task %d claimed twice", e.t.ID))
	}
	if s.probe != nil {
		// N is the queue index the task was taken from: non-zero means
		// a data-ready task bypassed the head (dmdas/dmdar only).
		at, seq := s.env.Now(), s.env.Seq()
		s.probe.Decision(obs.Decision{
			Kind: obs.PopSelect, At: at, Seq: seq, Task: e.t.ID,
			Worker: int(w.ID), Mem: int(w.Mem), Arch: int(w.Arch), N: idx,
		})
		s.probe.Counter(s.loadTrack[w.ID], at, seq, s.load[w.ID])
		s.probe.Counter(s.queueTrack[w.ID], at, seq, float64(len(s.queues[w.ID])))
	}
	return e.t
}

// TaskDone implements runtime.Scheduler.
func (s *Sched) TaskDone(t *runtime.Task, w runtime.WorkerInfo) {}

// WorkerDown implements runtime.FaultObserver. The dequeue-model family
// maps at push time, so a killed worker strands its whole mapped queue:
// take it back and re-run the HEFT step for each entry, in queue order,
// against the surviving workers.
func (s *Sched) WorkerDown(w runtime.WorkerInfo) {
	s.mu.Lock()
	q := s.queues[w.ID]
	s.queues[w.ID] = nil
	s.load[w.ID] = 0
	s.mu.Unlock()
	for _, e := range q {
		s.Push(e.t) // Push takes the lock itself
	}
}

// dataReady reports whether every read access of t is resident on mem.
func (s *Sched) dataReady(t *runtime.Task, mem platform.MemID) bool {
	for _, a := range t.Accesses {
		if a.Mode == runtime.W {
			continue
		}
		if !s.env.Locator.IsResident(a.Handle, mem) {
			return false
		}
	}
	return true
}

// QueueLen returns the number of tasks mapped to worker w
// (observability and tests).
func (s *Sched) QueueLen(w platform.UnitID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queues[w])
}
