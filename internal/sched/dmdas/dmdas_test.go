package dmdas

import (
	"math"
	"testing"

	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/sim"
)

func hetero() *platform.Machine {
	m := &platform.Machine{
		Name:  "hetero",
		Archs: []platform.Arch{{Name: "cpu"}, {Name: "gpu"}},
		Mems:  []platform.MemNode{{Name: "ram"}, {Name: "gpu-mem"}},
		Units: []platform.Unit{
			{Name: "cpu0", Arch: 0, Mem: 0, SpeedFactor: 1},
			{Name: "cpu1", Arch: 0, Mem: 0, SpeedFactor: 1},
			{Name: "gpu0", Arch: 1, Mem: 1, SpeedFactor: 1},
		},
		LinkMatrix: [][]platform.Link{
			{{}, {BandwidthBytes: 1e9, LatencySec: 0}},
			{{BandwidthBytes: 1e9, LatencySec: 0}, {}},
		},
	}
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return m
}

func TestVariantNames(t *testing.T) {
	if New(DM).Name() != "dm" || New(DMDA).Name() != "dmda" || New(DMDAS).Name() != "dmdas" {
		t.Error("variant names wrong")
	}
}

func TestPushMapsToFastestWorker(t *testing.T) {
	m := hetero()
	g := runtime.NewGraph()
	s := New(DM)
	s.Init(runtime.NewEnv(m, g))
	task := g.Submit(&runtime.Task{Kind: "k", Cost: []float64{4, 1}})
	s.Push(task)
	if s.QueueLen(2) != 1 {
		t.Error("GPU-favourable task not mapped to the GPU worker")
	}
	got := s.Pop(runtime.WorkerInfo{ID: 2, Arch: 1, Mem: 1})
	if got != task {
		t.Error("GPU worker could not pop its mapped task")
	}
	if s.Pop(runtime.WorkerInfo{ID: 0, Arch: 0, Mem: 0}) != nil {
		t.Error("CPU worker popped from an empty queue")
	}
}

func TestLoadBalancingAcrossEqualWorkers(t *testing.T) {
	m := hetero()
	g := runtime.NewGraph()
	s := New(DM)
	s.Init(runtime.NewEnv(m, g))
	// CPU-only tasks must spread over both CPU workers.
	for i := 0; i < 4; i++ {
		s.Push(g.Submit(&runtime.Task{Kind: "c", Cost: []float64{1}}))
	}
	if s.QueueLen(0) != 2 || s.QueueLen(1) != 2 {
		t.Errorf("queues = %d/%d, want 2/2", s.QueueLen(0), s.QueueLen(1))
	}
}

func TestDMDAAccountsTransferTime(t *testing.T) {
	m := hetero()
	g := runtime.NewGraph()
	envDM := runtime.NewEnv(m, g)
	// A locator that makes GPU transfers expensive.
	envDM.Locator = costlyLocator{}
	// GPU is 2x faster on compute (1 vs 2) but the transfer (10s)
	// dominates: dmda must keep the task on CPU, dm must not.
	task := &runtime.Task{Kind: "k", Cost: []float64{2, 1}}
	h := g.NewData("x", 100)
	task.Accesses = []runtime.Access{{Handle: h, Mode: runtime.R}}
	g.Submit(task)

	sda := New(DMDA)
	sda.Init(envDM)
	sda.Push(task)
	if sda.QueueLen(2) != 0 {
		t.Error("dmda ignored the transfer cost")
	}

	g2 := runtime.NewGraph()
	h2 := g2.NewData("x", 100)
	task2 := g2.Submit(&runtime.Task{Kind: "k", Cost: []float64{2, 1},
		Accesses: []runtime.Access{{Handle: h2, Mode: runtime.R}}})
	envPlain := runtime.NewEnv(m, g2)
	envPlain.Locator = costlyLocator{}
	sdm := New(DM)
	sdm.Init(envPlain)
	sdm.Push(task2)
	if sdm.QueueLen(2) != 1 {
		t.Error("dm should ignore transfer cost and pick the GPU")
	}
}

type costlyLocator struct{}

func (costlyLocator) IsResident(h *runtime.DataHandle, mem platform.MemID) bool {
	return mem == platform.MemRAM
}
func (costlyLocator) TransferEstimate(h *runtime.DataHandle, mem platform.MemID) float64 {
	if mem == platform.MemRAM {
		return 0
	}
	return 10
}

func TestDMDASSortsByPriority(t *testing.T) {
	m := hetero()
	g := runtime.NewGraph()
	s := New(DMDAS)
	s.Init(runtime.NewEnv(m, g))
	low := g.Submit(&runtime.Task{Kind: "low", Priority: 1, Cost: []float64{0, 1}})
	hi := g.Submit(&runtime.Task{Kind: "hi", Priority: 9, Cost: []float64{0, 1}})
	mid := g.Submit(&runtime.Task{Kind: "mid", Priority: 5, Cost: []float64{0, 1}})
	s.Push(low)
	s.Push(hi)
	s.Push(mid)
	w := runtime.WorkerInfo{ID: 2, Arch: 1, Mem: 1}
	want := []*runtime.Task{hi, mid, low}
	for i, wt := range want {
		if got := s.Pop(w); got != wt {
			t.Fatalf("pop %d = %s, want %s", i, got.Kind, wt.Kind)
		}
	}
}

func TestDMDASEqualPriorityIsFIFO(t *testing.T) {
	m := hetero()
	g := runtime.NewGraph()
	s := New(DMDAS)
	s.Init(runtime.NewEnv(m, g))
	a := g.Submit(&runtime.Task{Kind: "a", Cost: []float64{0, 1}})
	b := g.Submit(&runtime.Task{Kind: "b", Cost: []float64{0, 1}})
	s.Push(a)
	s.Push(b)
	w := runtime.WorkerInfo{ID: 2, Arch: 1, Mem: 1}
	if got := s.Pop(w); got != a {
		t.Errorf("pop = %s, want FIFO head a", got.Kind)
	}
}

func TestLoadDrainsOnPop(t *testing.T) {
	m := hetero()
	g := runtime.NewGraph()
	s := New(DM)
	s.Init(runtime.NewEnv(m, g))
	task := g.Submit(&runtime.Task{Kind: "k", Cost: []float64{0, 1}})
	s.Push(task)
	s.Pop(runtime.WorkerInfo{ID: 2, Arch: 1, Mem: 1})
	// A fresh task must again see an empty GPU: mapping unaffected by
	// the drained load.
	task2 := g.Submit(&runtime.Task{Kind: "k", Cost: []float64{0, 1}})
	s.Push(task2)
	if s.QueueLen(2) != 1 {
		t.Error("load accounting leaked")
	}
}

func TestEndToEndSimulation(t *testing.T) {
	// A small mixed DAG runs to completion under every variant.
	for _, v := range []Variant{DM, DMDA, DMDAS} {
		m := hetero()
		g := runtime.NewGraph()
		h := g.NewData("x", 1000)
		prev := g.Submit(&runtime.Task{Kind: "init", Cost: []float64{0.1, 0.1},
			Accesses: []runtime.Access{{Handle: h, Mode: runtime.W}}})
		_ = prev
		for i := 0; i < 10; i++ {
			g.Submit(&runtime.Task{Kind: "work", Priority: i, Cost: []float64{0.4, 0.1},
				Accesses: []runtime.Access{{Handle: h, Mode: runtime.R}}})
		}
		res, err := sim.Run(m, g, New(v), sim.Options{})
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if res.Makespan <= 0 {
			t.Errorf("%v: makespan %v", v, res.Makespan)
		}
	}
}

func TestPushUnrunnableTaskPanics(t *testing.T) {
	m := hetero()
	g := runtime.NewGraph()
	s := New(DM)
	s.Init(runtime.NewEnv(m, g))
	bad := &runtime.Task{Kind: "bad", Cost: []float64{math.NaN(), 0}}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unrunnable task")
		}
	}()
	s.Push(bad)
}

func TestDMDARPrefersDataReady(t *testing.T) {
	m := hetero()
	g := runtime.NewGraph()
	s := New(DMDAR)
	env := runtime.NewEnv(m, g)
	env.Locator = gpuResidentLocator{}
	s.Init(env)

	hRemote := g.NewData("remote", 100)
	hLocal := g.NewData("local", 100)
	far := g.Submit(&runtime.Task{Kind: "far", Cost: []float64{0, 1},
		Accesses: []runtime.Access{{Handle: hRemote, Mode: runtime.R}}})
	near := g.Submit(&runtime.Task{Kind: "near", Cost: []float64{0, 1},
		Accesses: []runtime.Access{{Handle: hLocal, Mode: runtime.R}}})
	s.Push(far)
	s.Push(near)
	w := runtime.WorkerInfo{ID: 2, Arch: 1, Mem: 1}
	if got := s.Pop(w); got != near {
		t.Errorf("dmdar pop = %s, want the data-ready task", got.Kind)
	}
	if got := s.Pop(w); got != far {
		t.Errorf("dmdar second pop = %v, want the remaining task", got)
	}
	if s.Name() != "dmdar" {
		t.Error("name mismatch")
	}
}

// gpuResidentLocator marks only the handle named "local" resident on
// the GPU memory node.
type gpuResidentLocator struct{}

func (gpuResidentLocator) IsResident(h *runtime.DataHandle, mem platform.MemID) bool {
	if mem == platform.MemRAM {
		return true
	}
	return h.Name == "local"
}
func (l gpuResidentLocator) TransferEstimate(h *runtime.DataHandle, mem platform.MemID) float64 {
	if l.IsResident(h, mem) {
		return 0
	}
	return 0.001
}
