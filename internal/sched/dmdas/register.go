package dmdas

import (
	"multiprio/internal/runtime"
	"multiprio/internal/sched/registry"
)

func init() {
	for _, v := range []Variant{DM, DMDA, DMDAS, DMDAR} {
		v := v
		registry.Register(v.String(), func(registry.Options) runtime.Scheduler {
			return New(v)
		})
	}
}
