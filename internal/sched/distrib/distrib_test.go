package distrib

import (
	"bytes"
	"testing"

	"multiprio/internal/apps/randdag"
	"multiprio/internal/fault"
	"multiprio/internal/oracle"
	"multiprio/internal/platform"
	"multiprio/internal/sched/registry"
	"multiprio/internal/sim"

	_ "multiprio/internal/sched/all"
)

func node(t testing.TB, name string) *platform.Machine {
	t.Helper()
	m, err := platform.NewHeteroNode(name, 4, 10, 1, 100, 8*platform.MiB, 5e9, platform.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func cluster(t testing.TB, n int) *platform.Machine {
	t.Helper()
	m, err := platform.UniformCluster("dc", n, func(i int) (*platform.Machine, error) {
		return platform.NewHeteroNode("d"+string(rune('0'+i)), 4, 10, 1, 100, 8*platform.MiB, 5e9, platform.Config{})
	}, 2e9, 2e-5)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func graph(m *platform.Machine, seed int64) func() *randdag.Params {
	return func() *randdag.Params {
		return &randdag.Params{Layers: 6, Width: 8, CommuteShare: 0.2, Machine: m, Seed: seed}
	}
}

func TestNewRejectsUnknownInner(t *testing.T) {
	if _, err := New("no-such-policy", registry.Options{}); err == nil {
		t.Fatal("New accepted an unregistered inner policy")
	}
	s, err := New("multiprio", registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Name(); got != "distrib:multiprio" {
		t.Errorf("Name() = %q", got)
	}
}

// TestSingleNodePassthrough pins the transparency property on a plain
// (non-cluster) machine: wrapping a policy in the distributor changes
// nothing about the trace, byte for byte.
func TestSingleNodePassthrough(t *testing.T) {
	m := node(t, "solo")
	run := func(wrapped bool) []byte {
		g := randdag.Build(*graph(m, 5)())
		var err error
		sched, err := registry.New("multiprio", registry.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if wrapped {
			sched, err = New("multiprio", registry.Options{})
			if err != nil {
				t.Fatal(err)
			}
		}
		res, err := sim.Run(m, g, sched, sim.Options{Seed: 9, CollectMemEvents: true})
		if err != nil {
			t.Fatal(err)
		}
		return res.Trace.Canonical()
	}
	if !bytes.Equal(run(false), run(true)) {
		t.Fatal("distrib-wrapped trace differs from the bare policy on a single node")
	}
}

// TestMultiNodeSharding runs a DAG over 3 nodes and checks the
// distributor's accounting: every task owned exactly once, every node
// used, and the sharding deterministic across runs.
func TestMultiNodeSharding(t *testing.T) {
	m := cluster(t, 3)
	run := func() (Stats, []byte) {
		g := randdag.Build(*graph(m, 5)())
		sched, err := New("multiprio", registry.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(m, g, sched, sim.Options{Seed: 9, CollectMemEvents: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := oracle.Check(g, res.Trace, oracle.Options{OverflowBytes: res.OverflowBytes}); err != nil {
			t.Fatalf("oracle: %v", err)
		}
		return sched.Stats(), res.Trace.Canonical()
	}
	st, tr1 := run()
	var total int64
	for n, c := range st.TasksPerNode {
		if c == 0 {
			t.Errorf("node %d received no tasks", n)
		}
		total += c
	}
	if total != 6*8 {
		t.Errorf("assigned %d tasks, want %d", total, 6*8)
	}
	st2, tr2 := run()
	for i := range st.TasksPerNode {
		if st.TasksPerNode[i] != st2.TasksPerNode[i] {
			t.Errorf("node %d assignment drifted across identical runs: %d vs %d",
				i, st.TasksPerNode[i], st2.TasksPerNode[i])
		}
	}
	if !bytes.Equal(tr1, tr2) {
		t.Error("same seed produced different traces")
	}
}

// TestClusterFaultTolerance kills a worker mid-run on a 2-node cluster:
// the distributor must propagate the death into the owning node's local
// worker view so retries land on live workers, and the run must still
// satisfy the fault-mode oracle.
func TestClusterFaultTolerance(t *testing.T) {
	m := cluster(t, 2)
	g := randdag.Build(*graph(m, 5)())
	sched, err := New("multiprio", registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Kill the first worker of node 1 (a global ID the node-0 policy
	// never sees) early enough to catch tasks in flight.
	w := m.Cluster.UnitBase[1]
	plan := &fault.Plan{Events: []fault.Event{{Kind: fault.KillWorker, Worker: w, At: 1e-4}}}
	res, err := sim.Run(m, g, sched, sim.Options{Seed: 9, CollectMemEvents: true, Faults: plan})
	if err != nil {
		t.Fatalf("sim.Run with faults: %v", err)
	}
	err = oracle.Check(g, res.Trace, oracle.Options{
		OverflowBytes: res.OverflowBytes,
		Faults: &oracle.FaultCheck{
			MaxRetries: plan.RetryCap(),
			Kills:      res.Faults.AppliedKills,
			Strict:     true,
		},
	})
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
}

// TestArchRestrictedPlacement pins the eligibility filter: tasks that
// only run on GPUs must always be owned by a node that has one.
func TestArchRestrictedPlacement(t *testing.T) {
	gpuNode := node(t, "gpun")
	// A GPU-less node sharing the cluster's arch catalog: the catalog
	// lists both architectures, the node just has no unit of the second.
	cpuOnly := &platform.Machine{
		Name:  "cpun",
		Archs: append([]platform.Arch(nil), gpuNode.Archs...),
		Mems:  []platform.MemNode{{Name: "ram"}},
		Units: []platform.Unit{
			{Name: "c0", Arch: platform.ArchCPU, Mem: 0, SpeedFactor: 1},
			{Name: "c1", Arch: platform.ArchCPU, Mem: 0, SpeedFactor: 1},
		},
		LinkMatrix: [][]platform.Link{{{}}},
	}
	if err := cpuOnly.Validate(); err != nil {
		t.Fatal(err)
	}
	m, err := platform.NewCluster("hg", []*platform.Machine{cpuOnly, gpuNode}, [][]platform.Link{
		{{}, {BandwidthBytes: 2e9, LatencySec: 2e-5}},
		{{BandwidthBytes: 2e9, LatencySec: 2e-5}, {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	g := randdag.Build(randdag.Params{Layers: 5, Width: 6, GPUShare: 0.5, Machine: m, Seed: 13})
	sched, err := New("dmdas", registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(m, g, sched, sim.Options{Seed: 3, CollectMemEvents: true})
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	if err := oracle.Check(g, res.Trace, oracle.Options{OverflowBytes: res.OverflowBytes}); err != nil {
		t.Fatalf("oracle: %v", err)
	}
	for _, task := range g.Tasks {
		if !task.CanRun(platform.ArchCPU) {
			if nd := m.NodeOfUnit(task.RanOn); nd != 1 {
				t.Errorf("GPU-only task %d ran on node %d, which has no GPU", task.ID, nd)
			}
		}
	}
}
