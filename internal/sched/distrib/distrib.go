// Package distrib is the top level of the two-level cluster scheduler:
// a distributor that shards the DAG across the nodes of a cluster
// machine (platform.NewCluster) and forwards every scheduling decision
// to one per-node policy instance built from the central registry.
//
// Each per-node instance is an unmodified single-node policy (multiprio,
// dmdas, ...) running against a node-local Env whose Machine is the
// node's own description: worker and memory IDs are translated at the
// distributor boundary, the data locator and prefetch hooks are
// forwarded to the engine in global coordinates, and the clock,
// sequencer and probe are shared. A policy cannot tell it is one level
// of a hierarchy — which is what makes the scheduler registry the
// policy catalog for clusters too (the STOMP framing: swap policies
// per node, keep the harness).
//
// On a single-node machine the distributor degenerates to a transparent
// passthrough: the one sub-policy receives the engine's Env verbatim
// and every call is forwarded unchanged, so traces are byte-identical
// to running the policy bare (the N=1 equivalence property pinned by
// TestClusterN1Golden).
package distrib

import (
	"fmt"
	"sync"

	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/sched/registry"
)

// affinityWeight is how many queued tasks one resident predecessor
// outweighs when the distributor places a task: node score =
// outstanding - affinityWeight × predecessors-on-node, lowest wins.
const affinityWeight = 2

// Stats reports the distributor's sharding outcome for one run.
type Stats struct {
	// TasksPerNode counts the tasks assigned to each node.
	TasksPerNode []int64
	// CrossAssignments counts tasks placed on a node holding none of
	// their predecessors (pure load-balancing moves).
	CrossAssignments int64
}

// Scheduler is the top-level distributor. Build with New; it implements
// runtime.Scheduler and runtime.FaultObserver.
type Scheduler struct {
	inner string
	opts  registry.Options

	env     *runtime.Env
	single  bool
	subs    []runtime.Scheduler
	subEnvs []*runtime.Env
	// canHost[n][arch] reports whether node n has ≥1 unit of arch.
	canHost [][]bool

	mu      sync.Mutex
	owner   map[int64]platform.NodeID
	pending []int64 // tasks pushed to a node and not yet done
	stats   Stats
}

// New builds a distributor whose per-node policies are fresh instances
// of the named registry policy. The name is resolved eagerly so a typo
// fails at construction, not mid-run.
func New(inner string, opts registry.Options) (*Scheduler, error) {
	if _, err := registry.New(inner, opts); err != nil {
		return nil, err
	}
	return &Scheduler{inner: inner, opts: opts}, nil
}

// Name implements runtime.Scheduler.
func (s *Scheduler) Name() string { return "distrib:" + s.inner }

// Stats returns the sharding counters of the current run. Call after
// the run completes.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.stats
	out.TasksPerNode = append([]int64(nil), s.stats.TasksPerNode...)
	return out
}

func (s *Scheduler) newSub() runtime.Scheduler {
	sub, err := registry.New(s.inner, s.opts)
	if err != nil {
		// New validated the name and the registry is append-only.
		panic(fmt.Sprintf("distrib: %v", err))
	}
	return sub
}

// Init implements runtime.Scheduler: it builds one per-node policy
// instance per cluster node, each bound to a node-local Env.
func (s *Scheduler) Init(env *runtime.Env) {
	s.env = env
	n := env.Machine.NumNodes()
	s.owner = make(map[int64]platform.NodeID, len(env.Graph.Tasks))
	s.pending = make([]int64, n)
	s.stats = Stats{TasksPerNode: make([]int64, n)}
	s.subs = make([]runtime.Scheduler, n)
	s.subEnvs = make([]*runtime.Env, n)
	s.single = n == 1
	if s.single {
		// Transparent passthrough: the sub-policy sees the engine's Env
		// itself, so behaviour is byte-identical to running it bare.
		s.subs[0] = s.newSub()
		s.subEnvs[0] = env
		s.subs[0].Init(env)
		return
	}
	info := env.Machine.Cluster
	s.canHost = make([][]bool, n)
	for k := 0; k < n; k++ {
		node := info.Nodes[k]
		s.canHost[k] = make([]bool, len(node.Archs))
		for a := range node.Archs {
			s.canHost[k][a] = node.NumWorkersOf(platform.ArchID(a)) > 0
		}
		se := runtime.NewEnv(node, env.Graph)
		se.Model = env.Model
		se.Now = env.Now
		se.Seq = env.Seq
		se.Probe = env.Probe
		se.Locator = nodeLocator{loc: env.Locator, base: info.MemBase[k]}
		if env.Prefetch != nil {
			base := info.MemBase[k]
			se.Prefetch = func(t *runtime.Task, mem platform.MemID) {
				env.Prefetch(t, base+mem)
			}
		}
		s.subEnvs[k] = se
		s.subs[k] = s.newSub()
		s.subs[k].Init(se)
	}
}

// Push implements runtime.Scheduler: the distributor level. The task's
// owning node is chosen once (re-pushes of fault retries and
// speculation replicas stay on their node, keeping per-node policy
// state coherent) and the task is forwarded to that node's policy.
func (s *Scheduler) Push(t *runtime.Task) {
	if s.single {
		s.subs[0].Push(t)
		return
	}
	s.mu.Lock()
	node, ok := s.owner[t.ID]
	if !ok {
		node = s.place(t)
		s.owner[t.ID] = node
		s.pending[node]++
		s.stats.TasksPerNode[node]++
	}
	s.mu.Unlock()
	s.subs[node].Push(t)
}

// place picks the owning node of a freshly released task: among the
// nodes able to execute it (≥1 worker of a runnable architecture), the
// one minimizing outstanding-work minus an affinity bonus per
// predecessor already owned there. Ties break to the lowest node ID, so
// placement is a pure function of (predecessor owners, pending counts)
// and sim-engine runs stay deterministic. Caller holds mu.
func (s *Scheduler) place(t *runtime.Task) platform.NodeID {
	n := len(s.subs)
	var predsOn []int64
	for _, p := range s.env.Graph.Preds(t) {
		if node, ok := s.owner[p.ID]; ok {
			if predsOn == nil {
				predsOn = make([]int64, n)
			}
			predsOn[node]++
		}
	}
	best, bestScore := platform.NodeID(-1), int64(0)
	for k := 0; k < n; k++ {
		if !s.canRunOn(t, k) {
			continue
		}
		score := s.pending[k]
		if predsOn != nil {
			score -= affinityWeight * predsOn[k]
		}
		if best < 0 || score < bestScore {
			best, bestScore = platform.NodeID(k), score
		}
	}
	if best < 0 {
		// No node can run the task; hand it to node 0 so the policy
		// surfaces the same no-implementation failure a single node would.
		best = 0
	}
	if predsOn == nil || predsOn[best] == 0 {
		s.stats.CrossAssignments++
	}
	return best
}

// canRunOn reports whether node k has a worker of an architecture the
// task implements.
func (s *Scheduler) canRunOn(t *runtime.Task, k int) bool {
	for a, ok := range s.canHost[k] {
		if ok && t.CanRun(platform.ArchID(a)) {
			return true
		}
	}
	return false
}

// Pop implements runtime.Scheduler: the worker's node answers, seeing
// the worker under its node-local identity.
func (s *Scheduler) Pop(w runtime.WorkerInfo) *runtime.Task {
	if s.single {
		return s.subs[0].Pop(w)
	}
	node, lw := s.localWorker(w)
	return s.subs[node].Pop(lw)
}

// TaskDone implements runtime.Scheduler.
func (s *Scheduler) TaskDone(t *runtime.Task, w runtime.WorkerInfo) {
	if s.single {
		s.subs[0].TaskDone(t, w)
		return
	}
	node, lw := s.localWorker(w)
	s.mu.Lock()
	if owner, ok := s.owner[t.ID]; ok {
		s.pending[owner]--
	}
	s.mu.Unlock()
	s.subs[node].TaskDone(t, lw)
}

// WorkerDown implements runtime.FaultObserver: the kill is mirrored
// into the node-local Env's live-worker view (engines only mark the
// global Env) and forwarded to the node's policy if it observes faults.
func (s *Scheduler) WorkerDown(w runtime.WorkerInfo) {
	if s.single {
		if fo, ok := s.subs[0].(runtime.FaultObserver); ok {
			fo.WorkerDown(w)
		}
		return
	}
	node, lw := s.localWorker(w)
	s.subEnvs[node].MarkWorkerDown(lw.ID)
	if fo, ok := s.subs[node].(runtime.FaultObserver); ok {
		fo.WorkerDown(lw)
	}
}

// localWorker translates an engine (global) worker identity into the
// owning node and its node-local identity.
func (s *Scheduler) localWorker(w runtime.WorkerInfo) (platform.NodeID, runtime.WorkerInfo) {
	m := s.env.Machine
	node, lu := m.LocalUnit(w.ID)
	_, lm := m.LocalMem(w.Mem)
	return node, runtime.WorkerInfo{ID: lu, Arch: w.Arch, Mem: lm}
}

// nodeLocator exposes the engine's global data-placement view to one
// node's policy in node-local memory coordinates.
type nodeLocator struct {
	loc  runtime.DataLocator
	base platform.MemID
}

func (l nodeLocator) IsResident(h *runtime.DataHandle, mem platform.MemID) bool {
	return l.loc.IsResident(h, l.base+mem)
}

func (l nodeLocator) TransferEstimate(h *runtime.DataHandle, mem platform.MemID) float64 {
	return l.loc.TransferEstimate(h, l.base+mem)
}
