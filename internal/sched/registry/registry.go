// Package registry is the central scheduler catalog: policies register
// a named factory from their package init, and everything that needs a
// scheduler by name — experiment drivers, CLI tools, the conformance
// harness — asks here instead of maintaining its own name switch.
//
// Importing a policy package is what registers it; the aggregator
// package internal/sched/all blank-imports the full set.
package registry

import (
	"fmt"
	"sort"
	"sync"

	"multiprio/internal/runtime"
)

// Options carries the policy-generic tuning knobs a caller may override.
// Zero values mean "the policy's default"; policies without a matching
// knob ignore the field. The registry deliberately knows nothing about
// concrete config types (it must not import the policy packages — they
// import it to self-register).
type Options struct {
	// LocalityWindow is the top-n candidate window of locality-aware
	// pops (multiprio's n).
	LocalityWindow int
	// Epsilon is the score-distance eligibility bound of locality-aware
	// pops (multiprio's ε).
	Epsilon float64
	// MaxTries bounds evict-and-retry pop loops.
	MaxTries int
	// Fallback names the dynamic policy hybrid-repair schedulers divert
	// deviated work to (empty means the policy's default, multiprio).
	// New validates it against the registry, so a CLI typo fails before
	// any run starts rather than inside a hybrid factory.
	Fallback string
}

// Factory builds one scheduler instance. Instances are single-run:
// engines re-Init them, but concurrent runs need one instance each.
type Factory func(Options) runtime.Scheduler

var (
	mu        sync.RWMutex
	factories = map[string]Factory{}
)

// Register adds a named factory; policy packages call it from init.
// Registering an empty name or a duplicate panics: both are programming
// errors worth failing loudly at process start.
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("registry: Register with empty name or nil factory")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := factories[name]; dup {
		panic(fmt.Sprintf("registry: scheduler %q registered twice", name))
	}
	factories[name] = f
}

// New instantiates the named scheduler. The error lists the registered
// names, so a typo on a CLI flag is self-explaining.
func New(name string, opts Options) (runtime.Scheduler, error) {
	mu.RLock()
	f := factories[name]
	mu.RUnlock()
	if f == nil {
		return nil, fmt.Errorf("registry: unknown scheduler %q (have %v)", name, Names())
	}
	if opts.Fallback != "" {
		mu.RLock()
		ff := factories[opts.Fallback]
		mu.RUnlock()
		if ff == nil {
			return nil, fmt.Errorf("registry: unknown fallback scheduler %q (have %v)", opts.Fallback, Names())
		}
	}
	return f(opts), nil
}

// Names returns the registered scheduler names, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(factories))
	for name := range factories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
