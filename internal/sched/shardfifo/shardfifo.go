// Package shardfifo implements a sharded ready queue with FIFO work
// stealing: one queue shard per worker, pushes spread round-robin, pops
// drain the worker's own shard first and steal oldest-first from the
// others. Unlike eager's single central FIFO there is no global lock —
// each shard synchronizes independently — so concurrent pops from many
// workers don't serialize. Paired with the threaded engine's
// pop-outside-the-engine-lock path this is the high-fan-out throughput
// baseline; like eager and lws it ignores heterogeneity beyond the
// can-run check and is not part of the paper's headline comparison.
package shardfifo

import (
	"sync"
	"sync/atomic"

	"multiprio/internal/runtime"
)

// shard is one independently locked FIFO. Padding out to a cache line
// is deliberately omitted: queue mutation dominates, not false sharing.
type shard struct {
	mu sync.Mutex
	q  []*runtime.Task
}

// popRunnable removes and returns the oldest unclaimed task the worker
// arch can run, dropping claimed leftovers (speculative replicas whose
// task already won) as it scans.
func (sh *shard) popRunnable(w runtime.WorkerInfo) *runtime.Task {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for i := 0; i < len(sh.q); i++ {
		t := sh.q[i]
		if t.Claimed() {
			sh.q = append(sh.q[:i], sh.q[i+1:]...)
			i--
			continue
		}
		if !t.CanRun(w.Arch) {
			continue
		}
		if t.TryClaim() {
			sh.q = append(sh.q[:i], sh.q[i+1:]...)
			return t
		}
	}
	return nil
}

// Sched is the sharded-FIFO policy. The zero value is ready after Init.
type Sched struct {
	shards []shard
	rr     atomic.Uint64
}

// New returns a sharded-FIFO scheduler.
func New() *Sched { return &Sched{} }

// Name implements runtime.Scheduler.
func (s *Sched) Name() string { return "shardfifo" }

// Init implements runtime.Scheduler.
func (s *Sched) Init(env *runtime.Env) {
	s.shards = make([]shard, len(env.Machine.Units))
	s.rr.Store(0)
}

// Push implements runtime.Scheduler: round-robin over the shards, FIFO
// within one. The counter is atomic so concurrent pushes (successor
// releases from many workers at once) don't contend on a shared lock
// before even reaching a shard.
func (s *Sched) Push(t *runtime.Task) {
	sh := &s.shards[(s.rr.Add(1)-1)%uint64(len(s.shards))]
	sh.mu.Lock()
	sh.q = append(sh.q, t)
	sh.mu.Unlock()
}

// Pop implements runtime.Scheduler: the worker's own shard first, then
// steal from the others in ascending order starting past its own (a
// fixed per-worker order keeps single-threaded runs deterministic).
func (s *Sched) Pop(w runtime.WorkerInfo) *runtime.Task {
	n := len(s.shards)
	own := int(w.ID) % n
	for i := 0; i < n; i++ {
		if t := s.shards[(own+i)%n].popRunnable(w); t != nil {
			return t
		}
	}
	return nil
}

// TaskDone implements runtime.Scheduler.
func (s *Sched) TaskDone(t *runtime.Task, w runtime.WorkerInfo) {}
