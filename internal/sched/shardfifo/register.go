package shardfifo

import (
	"multiprio/internal/runtime"
	"multiprio/internal/sched/registry"
)

func init() {
	registry.Register("shardfifo", func(registry.Options) runtime.Scheduler { return New() })
}
