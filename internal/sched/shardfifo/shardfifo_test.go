package shardfifo

import (
	"bytes"
	"testing"

	"multiprio/internal/apps/randdag"
	"multiprio/internal/oracle"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/sim"
)

func machine() *platform.Machine { return platform.CPUOnly(4) }

func TestPushSpreadsRoundRobin(t *testing.T) {
	g := runtime.NewGraph()
	s := New()
	s.Init(runtime.NewEnv(machine(), g))
	for i := 0; i < 8; i++ {
		s.Push(g.Submit(&runtime.Task{Kind: "r", Cost: []float64{1}}))
	}
	for i := range s.shards {
		if got := len(s.shards[i].q); got != 2 {
			t.Errorf("shard %d len = %d, want 2", i, got)
		}
	}
}

func TestPopOwnShardFirstThenSteals(t *testing.T) {
	g := runtime.NewGraph()
	s := New()
	s.Init(runtime.NewEnv(machine(), g))
	a := g.Submit(&runtime.Task{Kind: "a", Cost: []float64{1}})
	b := g.Submit(&runtime.Task{Kind: "b", Cost: []float64{1}})
	s.Push(a) // shard 0
	s.Push(b) // shard 1
	w1 := runtime.WorkerInfo{ID: 1}
	if got := s.Pop(w1); got != b {
		t.Fatalf("worker 1 popped %v, want its own shard's task b", got.Kind)
	}
	if got := s.Pop(w1); got != a {
		t.Fatalf("worker 1 popped %v, want stolen task a", got.Kind)
	}
	if got := s.Pop(w1); got != nil {
		t.Fatalf("empty queue popped %v", got.Kind)
	}
}

func TestPopSkipsUnrunnable(t *testing.T) {
	m, err := platform.NewHeteroNode("hx", 2, 10, 1, 100, 8*platform.MiB, 5e9, platform.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g := runtime.NewGraph()
	s := New()
	s.Init(runtime.NewEnv(m, g))
	gpuOnly := g.Submit(&runtime.Task{Kind: "g", Cost: []float64{0, 1}})
	cpuOnly := g.Submit(&runtime.Task{Kind: "c", Cost: []float64{1, 0}})
	s.Push(gpuOnly)
	s.Push(cpuOnly)
	cpu := runtime.WorkerInfo{ID: 0, Arch: platform.ArchCPU}
	if got := s.Pop(cpu); got != cpuOnly {
		t.Errorf("CPU pop = %v, want the CPU-only task", got)
	}
	gpu := runtime.WorkerInfo{ID: 1, Arch: platform.ArchGPU}
	if got := s.Pop(gpu); got != gpuOnly {
		t.Errorf("GPU pop = %v, want the GPU-only task", got)
	}
}

// buildGraph is a mixed-affinity random DAG with commuting accesses —
// the same structural features the conformance suite exercises.
func buildGraph(m *platform.Machine) *runtime.Graph {
	return randdag.Build(randdag.Params{Layers: 8, Width: 10, CommuteShare: 0.3,
		Machine: m, Seed: 17})
}

// TestSimOracleAndDeterminism runs the policy end to end on the
// simulator, validates the full trace (including the memory-event
// stream) against the execution oracle, and checks that the same seed
// reproduces the trace byte for byte.
func TestSimOracleAndDeterminism(t *testing.T) {
	m, err := platform.NewHeteroNode("conf", 5, 10, 2, 100, 8*platform.MiB, 5e9, platform.Config{})
	if err != nil {
		t.Fatal(err)
	}
	run := func() (*runtime.Graph, *sim.Result) {
		g := buildGraph(m)
		res, err := sim.Run(m, g, New(), sim.Options{Seed: 23, CollectMemEvents: true})
		if err != nil {
			t.Fatalf("sim.Run: %v", err)
		}
		return g, res
	}
	g, res := run()
	if err := oracle.Check(g, res.Trace, oracle.Options{OverflowBytes: res.OverflowBytes}); err != nil {
		t.Fatalf("oracle: %v", err)
	}
	_, res2 := run()
	if !bytes.Equal(res.Trace.Canonical(), res2.Trace.Canonical()) {
		t.Fatalf("same seed produced a different trace")
	}
}

// TestThreadedOracle runs the policy on the goroutine engine under the
// same oracle (dependency and commute-exclusivity checks on wall-clock
// stamps).
func TestThreadedOracle(t *testing.T) {
	m, err := platform.NewHeteroNode("conf", 5, 10, 2, 100, 8*platform.MiB, 5e9, platform.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g := buildGraph(m)
	eng, err := runtime.NewThreadedEngine(m, New())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(g)
	if err != nil {
		t.Fatalf("threaded run: %v", err)
	}
	if err := oracle.Check(g, res.Trace, oracle.Options{}); err != nil {
		t.Fatalf("oracle: %v", err)
	}
}
