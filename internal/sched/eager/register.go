package eager

import (
	"multiprio/internal/runtime"
	"multiprio/internal/sched/registry"
)

func init() {
	registry.Register("eager", func(registry.Options) runtime.Scheduler { return New() })
}
