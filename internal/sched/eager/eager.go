// Package eager implements StarPU's simplest scheduling policy: one
// central FIFO shared by all workers. It ignores heterogeneity entirely
// and serves as the floor baseline in ablation studies.
//
// The FIFO is stored as one sub-queue per capability class (the set of
// architectures a task can run on, a static property of its cost
// vector). Pop takes the oldest unclaimed head among the classes the
// worker's architecture appears in — the same task the seed's linear
// scan over one shared slice returned, found in O(classes) instead of
// O(queue): a worker no longer re-scans every task it cannot run on
// each wake-up, which dominated pop cost on large mixed-affinity DAGs.
package eager

import (
	"sync"

	"multiprio/internal/platform"
	"multiprio/internal/runtime"
)

// entry is one queued task stamped with its global arrival order.
type entry struct {
	seq uint64
	t   *runtime.Task
}

// class is the FIFO of one capability mask. head indexes the oldest
// live entry; popped and claimed-elsewhere entries are nilled in place
// and the slice is recycled once drained.
type class struct {
	mask uint64
	head int
	q    []entry
}

// Sched is the eager policy. The zero value is ready after Init.
type Sched struct {
	mu      sync.Mutex
	seq     uint64
	classes []class // one per distinct capability mask, few in practice
}

// New returns an eager scheduler.
func New() *Sched { return &Sched{} }

// Name implements runtime.Scheduler.
func (s *Sched) Name() string { return "eager" }

// Init implements runtime.Scheduler.
func (s *Sched) Init(env *runtime.Env) {
	s.mu.Lock()
	s.seq = 0
	s.classes = s.classes[:0]
	s.mu.Unlock()
}

// capMask is the set of architectures t can run on, as a bit set.
func capMask(t *runtime.Task) uint64 {
	var m uint64
	for a := 0; a < len(t.Cost) && a < 64; a++ {
		if t.CanRun(platform.ArchID(a)) {
			m |= 1 << uint(a)
		}
	}
	return m
}

// Push implements runtime.Scheduler.
func (s *Sched) Push(t *runtime.Task) {
	mask := capMask(t)
	s.mu.Lock()
	var c *class
	for i := range s.classes {
		if s.classes[i].mask == mask {
			c = &s.classes[i]
			break
		}
	}
	if c == nil {
		s.classes = append(s.classes, class{mask: mask})
		c = &s.classes[len(s.classes)-1]
	}
	c.q = append(c.q, entry{seq: s.seq, t: t})
	s.seq++
	s.mu.Unlock()
}

// Pop implements runtime.Scheduler: first runnable unclaimed task in
// FIFO order. Tasks the worker cannot run are left in place for others.
func (s *Sched) Pop(w runtime.WorkerInfo) *runtime.Task {
	if w.Arch < 0 || int(w.Arch) >= 64 {
		return nil
	}
	bit := uint64(1) << uint(w.Arch)
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		best := -1
		var bestSeq uint64
		for i := range s.classes {
			c := &s.classes[i]
			if c.mask&bit == 0 {
				continue
			}
			// Claimed heads (speculation losers, or tasks another
			// worker won between our scans) are dead; drop them.
			for c.head < len(c.q) && c.q[c.head].t.Claimed() {
				c.q[c.head].t = nil
				c.head++
			}
			if c.head == len(c.q) {
				c.q = c.q[:0]
				c.head = 0
				continue
			}
			if best < 0 || c.q[c.head].seq < bestSeq {
				best = i
				bestSeq = c.q[c.head].seq
			}
		}
		if best < 0 {
			return nil
		}
		c := &s.classes[best]
		t := c.q[c.head].t
		c.q[c.head].t = nil
		c.head++
		if c.head == len(c.q) {
			c.q = c.q[:0]
			c.head = 0
		}
		if t.TryClaim() {
			return t
		}
		// Lost the claim race: the task is gone either way, rescan.
	}
}

// TaskDone implements runtime.Scheduler.
func (s *Sched) TaskDone(t *runtime.Task, w runtime.WorkerInfo) {}
