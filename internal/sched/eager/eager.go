// Package eager implements StarPU's simplest scheduling policy: one
// central FIFO shared by all workers. It ignores heterogeneity entirely
// and serves as the floor baseline in ablation studies.
package eager

import (
	"sync"

	"multiprio/internal/runtime"
)

// Sched is the eager policy. The zero value is ready after Init.
type Sched struct {
	mu    sync.Mutex
	queue []*runtime.Task
}

// New returns an eager scheduler.
func New() *Sched { return &Sched{} }

// Name implements runtime.Scheduler.
func (s *Sched) Name() string { return "eager" }

// Init implements runtime.Scheduler.
func (s *Sched) Init(env *runtime.Env) {
	s.mu.Lock()
	s.queue = s.queue[:0]
	s.mu.Unlock()
}

// Push implements runtime.Scheduler.
func (s *Sched) Push(t *runtime.Task) {
	s.mu.Lock()
	s.queue = append(s.queue, t)
	s.mu.Unlock()
}

// Pop implements runtime.Scheduler: first runnable unclaimed task in
// FIFO order. Tasks the worker cannot run are left in place for others.
func (s *Sched) Pop(w runtime.WorkerInfo) *runtime.Task {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < len(s.queue); i++ {
		t := s.queue[i]
		if t.Claimed() {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			i--
			continue
		}
		if !t.CanRun(w.Arch) {
			continue
		}
		if t.TryClaim() {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return t
		}
	}
	return nil
}

// TaskDone implements runtime.Scheduler.
func (s *Sched) TaskDone(t *runtime.Task, w runtime.WorkerInfo) {}
