package eager

import (
	"testing"

	"multiprio/internal/platform"
	"multiprio/internal/runtime"
)

func env(t *testing.T) *runtime.Env {
	t.Helper()
	return runtime.NewEnv(platform.CPUOnly(2), runtime.NewGraph())
}

func TestFIFOOrder(t *testing.T) {
	s := New()
	s.Init(env(t))
	g := runtime.NewGraph()
	a := g.Submit(&runtime.Task{Kind: "a", Cost: []float64{1}})
	b := g.Submit(&runtime.Task{Kind: "b", Cost: []float64{1}})
	s.Push(a)
	s.Push(b)
	w := runtime.WorkerInfo{ID: 0, Arch: 0, Mem: 0}
	if got := s.Pop(w); got != a {
		t.Errorf("pop = %v, want a (FIFO)", got)
	}
	if got := s.Pop(w); got != b {
		t.Errorf("pop = %v, want b", got)
	}
	if got := s.Pop(w); got != nil {
		t.Errorf("pop on empty = %v", got)
	}
}

func TestSkipsUnrunnable(t *testing.T) {
	s := New()
	s.Init(env(t))
	g := runtime.NewGraph()
	gpuOnly := g.Submit(&runtime.Task{Kind: "g", Cost: []float64{0, 1}})
	cpu := g.Submit(&runtime.Task{Kind: "c", Cost: []float64{1}})
	s.Push(gpuOnly)
	s.Push(cpu)
	w := runtime.WorkerInfo{ID: 0, Arch: 0, Mem: 0}
	// The head is not runnable on CPU: eager scans past it.
	if got := s.Pop(w); got != cpu {
		t.Errorf("pop = %v, want the cpu task past the unrunnable head", got)
	}
	gw := runtime.WorkerInfo{ID: 1, Arch: 1, Mem: 0}
	if got := s.Pop(gw); got != gpuOnly {
		t.Errorf("gpu pop = %v, want the gpu-only head", got)
	}
}

func TestDropsClaimedTasks(t *testing.T) {
	s := New()
	s.Init(env(t))
	g := runtime.NewGraph()
	a := g.Submit(&runtime.Task{Kind: "a", Cost: []float64{1}})
	b := g.Submit(&runtime.Task{Kind: "b", Cost: []float64{1}})
	s.Push(a)
	s.Push(b)
	a.TryClaim() // claimed elsewhere (duplicate bookkeeping)
	w := runtime.WorkerInfo{ID: 0, Arch: 0, Mem: 0}
	if got := s.Pop(w); got != b {
		t.Errorf("pop = %v, want b (claimed head dropped)", got)
	}
}

func TestInitResets(t *testing.T) {
	s := New()
	s.Init(env(t))
	g := runtime.NewGraph()
	s.Push(g.Submit(&runtime.Task{Kind: "a", Cost: []float64{1}}))
	s.Init(env(t))
	w := runtime.WorkerInfo{ID: 0, Arch: 0, Mem: 0}
	if got := s.Pop(w); got != nil {
		t.Errorf("pop after re-Init = %v, want nil", got)
	}
}

func TestName(t *testing.T) {
	if New().Name() != "eager" {
		t.Error("name mismatch")
	}
}
