// Package lws implements locality work stealing, the resource-centric
// baseline mentioned in Section II: each worker owns a deque, pushes
// released tasks to the deque of the worker that released them, pops
// LIFO locally, and steals FIFO from the nearest victim — preferring
// workers on the same memory node before crossing nodes.
//
// The paper excludes LWS from its headline comparison because it treats
// CPUs and GPUs as identical resources; it is implemented here as the
// resource-centric reference point for the ablation benches.
package lws

import (
	"fmt"
	"sync"

	"multiprio/internal/platform"
	"multiprio/internal/runtime"
)

// Sched is the locality work-stealing policy.
type Sched struct {
	mu     sync.Mutex
	env    *runtime.Env
	deques [][]*runtime.Task
	rr     int // round-robin cursor for root tasks
	// victims[w] is the steal order for worker w: same memory node
	// first, then the rest by unit distance.
	victims [][]platform.UnitID
}

// New returns an LWS scheduler.
func New() *Sched { return &Sched{} }

// Name implements runtime.Scheduler.
func (s *Sched) Name() string { return "lws" }

// Init implements runtime.Scheduler.
func (s *Sched) Init(env *runtime.Env) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.env = env
	n := len(env.Machine.Units)
	s.deques = make([][]*runtime.Task, n)
	s.rr = 0
	s.victims = make([][]platform.UnitID, n)
	for w := 0; w < n; w++ {
		var near, far []platform.UnitID
		for v := 0; v < n; v++ {
			if v == w {
				continue
			}
			if env.Machine.Units[v].Mem == env.Machine.Units[w].Mem {
				near = append(near, platform.UnitID(v))
			} else {
				far = append(far, platform.UnitID(v))
			}
		}
		s.victims[w] = append(near, far...)
	}
}

// Push implements runtime.Scheduler: the task lands on the deque of the
// worker that released it (the predecessor that finished last); root
// tasks are spread round-robin.
func (s *Sched) Push(t *runtime.Task) {
	s.mu.Lock()
	defer s.mu.Unlock()
	owner := -1
	var latest float64 = -1
	for _, p := range s.env.Graph.Preds(t) {
		// Under the two-level cluster distributor this instance sees one
		// node of a larger machine: a predecessor that ran on another
		// node's worker (RanOn outside our unit range) owns no deque
		// here, so the task is spread like a root.
		if p.EndAt > latest && int(p.RanOn) < len(s.deques) {
			latest = p.EndAt
			owner = int(p.RanOn)
		}
	}
	if owner < 0 {
		owner = s.rr % len(s.deques)
		s.rr++
	}
	s.deques[owner] = append(s.deques[owner], t)
}

// Pop implements runtime.Scheduler: LIFO from the own deque, then FIFO
// steal from the victim list.
func (s *Sched) Pop(w runtime.WorkerInfo) *runtime.Task {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t := s.take(int(w.ID), w.Arch, true); t != nil {
		return t
	}
	for _, v := range s.victims[w.ID] {
		if t := s.take(int(v), w.Arch, false); t != nil {
			return t
		}
	}
	return nil
}

// take scans one deque for a runnable task: from the back when lifo
// (owner), from the front otherwise (thief).
func (s *Sched) take(w int, arch platform.ArchID, lifo bool) *runtime.Task {
	dq := s.deques[w]
	for n := len(dq); n > 0; n = len(dq) {
		var i int
		if lifo {
			i = n - 1
		}
		t := dq[i]
		if t.Claimed() {
			dq = append(dq[:i], dq[i+1:]...)
			s.deques[w] = dq
			continue
		}
		if !t.CanRun(arch) {
			// Scan inward for the nearest runnable task.
			found := -1
			if lifo {
				for j := n - 1; j >= 0; j-- {
					if !dq[j].Claimed() && dq[j].CanRun(arch) {
						found = j
						break
					}
				}
			} else {
				for j := 0; j < n; j++ {
					if !dq[j].Claimed() && dq[j].CanRun(arch) {
						found = j
						break
					}
				}
			}
			if found < 0 {
				return nil
			}
			i = found
			t = dq[i]
		}
		if !t.TryClaim() {
			panic(fmt.Sprintf("lws: task %d claimed twice", t.ID))
		}
		s.deques[w] = append(dq[:i], dq[i+1:]...)
		return t
	}
	return nil
}

// TaskDone implements runtime.Scheduler.
func (s *Sched) TaskDone(t *runtime.Task, w runtime.WorkerInfo) {}

// DequeLen returns the size of worker w's deque (tests).
func (s *Sched) DequeLen(w platform.UnitID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.deques[w])
}
