package lws

import (
	"testing"

	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/sim"
)

func machine() *platform.Machine { return platform.CPUOnly(4) }

func TestRootsSpreadRoundRobin(t *testing.T) {
	g := runtime.NewGraph()
	s := New()
	s.Init(runtime.NewEnv(machine(), g))
	for i := 0; i < 8; i++ {
		s.Push(g.Submit(&runtime.Task{Kind: "r", Cost: []float64{1}}))
	}
	for w := 0; w < 4; w++ {
		if got := s.DequeLen(platform.UnitID(w)); got != 2 {
			t.Errorf("deque %d len = %d, want 2", w, got)
		}
	}
}

func TestOwnerPopsLIFO(t *testing.T) {
	g := runtime.NewGraph()
	s := New()
	s.Init(runtime.NewEnv(machine(), g))
	a := g.Submit(&runtime.Task{Kind: "a", Cost: []float64{1}})
	b := g.Submit(&runtime.Task{Kind: "b", Cost: []float64{1}})
	// Round-robin: a -> deque 0, b -> deque 1. Refill deque 0 only.
	s.Push(a)
	c := g.Submit(&runtime.Task{Kind: "c", Cost: []float64{1}})
	g.Declare(a, c) // c's owner is whoever ran a
	s.Push(b)

	w0 := runtime.WorkerInfo{ID: 0, Arch: 0, Mem: 0}
	got := s.Pop(w0)
	if got != a {
		t.Fatalf("pop = %v, want a", got.Kind)
	}
	a.RanOn = 0
	a.EndAt = 1
	s.Push(c) // lands on deque 0 (a ran there)
	if s.DequeLen(0) != 1 {
		t.Fatalf("released task did not land on the releasing worker")
	}
	if got := s.Pop(w0); got != c {
		t.Errorf("pop = %v, want c (own deque first)", got.Kind)
	}
}

func TestStealFromNeighbour(t *testing.T) {
	g := runtime.NewGraph()
	s := New()
	s.Init(runtime.NewEnv(machine(), g))
	a := g.Submit(&runtime.Task{Kind: "a", Cost: []float64{1}})
	s.Push(a) // deque 0
	w3 := runtime.WorkerInfo{ID: 3, Arch: 0, Mem: 0}
	if got := s.Pop(w3); got != a {
		t.Errorf("worker 3 failed to steal from worker 0")
	}
}

func TestStealSkipsUnrunnable(t *testing.T) {
	m := &platform.Machine{
		Name:  "mixed",
		Archs: []platform.Arch{{Name: "cpu"}, {Name: "gpu"}},
		Mems:  []platform.MemNode{{Name: "ram"}, {Name: "gpu-mem"}},
		Units: []platform.Unit{
			{Name: "cpu0", Arch: 0, Mem: 0, SpeedFactor: 1},
			{Name: "gpu0", Arch: 1, Mem: 1, SpeedFactor: 1},
		},
		LinkMatrix: [][]platform.Link{
			{{}, {BandwidthBytes: 1e9}},
			{{BandwidthBytes: 1e9}, {}},
		},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	g := runtime.NewGraph()
	s := New()
	s.Init(runtime.NewEnv(m, g))
	gpuOnly := g.Submit(&runtime.Task{Kind: "g", Cost: []float64{0, 1}})
	cpuOnly := g.Submit(&runtime.Task{Kind: "c", Cost: []float64{1, 0}})
	s.Push(gpuOnly) // deque 0 (round robin)
	s.Push(cpuOnly) // deque 1
	cpu := runtime.WorkerInfo{ID: 0, Arch: 0, Mem: 0}
	if got := s.Pop(cpu); got != cpuOnly {
		t.Errorf("CPU pop = %v, want the CPU-only task via steal", got)
	}
	gpu := runtime.WorkerInfo{ID: 1, Arch: 1, Mem: 1}
	if got := s.Pop(gpu); got != gpuOnly {
		t.Errorf("GPU pop = %v, want the GPU-only task", got)
	}
}

func TestEndToEndSimulation(t *testing.T) {
	g := runtime.NewGraph()
	h := g.NewData("x", 8)
	g.Submit(&runtime.Task{Kind: "w", Cost: []float64{0.1},
		Accesses: []runtime.Access{{Handle: h, Mode: runtime.W}}})
	for i := 0; i < 20; i++ {
		g.Submit(&runtime.Task{Kind: "r", Cost: []float64{0.1},
			Accesses: []runtime.Access{{Handle: h, Mode: runtime.R}}})
	}
	res, err := sim.Run(machine(), g, New(), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 0.1 init + ceil(20/4)*0.1 of reads.
	if res.Makespan < 0.59 || res.Makespan > 0.62 {
		t.Errorf("makespan = %v, want ≈0.6", res.Makespan)
	}
}

func TestVictimOrderPrefersSameMemNode(t *testing.T) {
	m := &platform.Machine{
		Name:  "two-node",
		Archs: []platform.Arch{{Name: "cpu"}},
		Mems:  []platform.MemNode{{Name: "n0"}, {Name: "n1"}},
		Units: []platform.Unit{
			{Name: "a", Arch: 0, Mem: 0, SpeedFactor: 1},
			{Name: "b", Arch: 0, Mem: 0, SpeedFactor: 1},
			{Name: "c", Arch: 0, Mem: 1, SpeedFactor: 1},
		},
		LinkMatrix: [][]platform.Link{
			{{}, {BandwidthBytes: 1e9}},
			{{BandwidthBytes: 1e9}, {}},
		},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	g := runtime.NewGraph()
	s := New()
	s.Init(runtime.NewEnv(m, g))
	// Tasks land round-robin: deque 0, 1, 2.
	t0 := g.Submit(&runtime.Task{Kind: "t0", Cost: []float64{1}})
	t1 := g.Submit(&runtime.Task{Kind: "t1", Cost: []float64{1}})
	t2 := g.Submit(&runtime.Task{Kind: "t2", Cost: []float64{1}})
	s.Push(t0)
	s.Push(t1)
	s.Push(t2)
	// Worker 0 drains its own deque first, then steals from its
	// same-node neighbour (worker 1) before the remote worker 2.
	w0 := runtime.WorkerInfo{ID: 0, Arch: 0, Mem: 0}
	if got := s.Pop(w0); got != t0 {
		t.Fatalf("first pop = %v, want own task", got)
	}
	if got := s.Pop(w0); got != t1 {
		t.Fatalf("second pop = %v, want same-node steal t1", got)
	}
	if got := s.Pop(w0); got != t2 {
		t.Fatalf("third pop = %v, want remote steal t2", got)
	}
}

func TestOwnerLIFOWithinDeque(t *testing.T) {
	g := runtime.NewGraph()
	s := New()
	s.Init(runtime.NewEnv(platform.CPUOnly(1), g))
	a := g.Submit(&runtime.Task{Kind: "a", Cost: []float64{1}})
	b := g.Submit(&runtime.Task{Kind: "b", Cost: []float64{1}})
	s.Push(a)
	s.Push(b) // single worker: both land on deque 0
	w := runtime.WorkerInfo{ID: 0, Arch: 0, Mem: 0}
	if got := s.Pop(w); got != b {
		t.Errorf("owner pop = %v, want LIFO tail b", got)
	}
}
