package lws

import (
	"multiprio/internal/runtime"
	"multiprio/internal/sched/registry"
)

func init() {
	registry.Register("lws", func(registry.Options) runtime.Scheduler { return New() })
}
