// Package spec implements straggler mitigation by speculative task
// replication, in the spirit of the backup-task mechanisms of MapReduce
// and of STOMP-style policy-level reaction to slow units: when a running
// attempt of a task exceeds a slack factor times its expected duration
// (taken from the same performance model the schedulers estimate with),
// the attempt is flagged as a straggler and a replica of the task is
// launched through the scheduler's ordinary Push path. The first attempt
// to complete wins; every other live attempt of the task is cancelled,
// and a cancelled attempt never publishes its writes.
//
// The package owns the engine-agnostic half of the mechanism: the
// policy knobs (Policy), the per-run attempt-lifecycle bookkeeping and
// first-success-wins arbitration (Controller), and the speculation
// counters (Stats, mirrored to an obs.Probe). The engine-specific half
// — how an attempt is actually interrupted — lives with each engine:
// the simulator cancels the loser's completion event and rolls its
// resources back through the same abortAcquire path fault kills use;
// the threaded engine cannot preempt a goroutine, so the loser runs to
// completion and its completion is discarded, mirroring the kill-timer
// semantics.
//
// Attempt lifecycle (per task):
//
//	                 Push                     Pop
//	      ready ───────────► queued ───────────────► staging ──► running
//	                            ▲                       │            │
//	        flag (TryFlag)      │                  cancel/kill   finish
//	      running ──────────────┘ (replica)             │            │
//	                                                    ▼            ▼
//	                                               rolled back   Effective?
//	                                                             yes → done, cancel siblings
//	                                                             no  → completion discarded (Cancelled)
//
// A Controller is not safe for concurrent use: the simulator drives it
// from the single event-loop goroutine, the threaded engine under its
// run mutex.
package spec

import "multiprio/internal/obs"

// Defaults for Policy knobs left at zero.
const (
	// DefaultSlackFactor flags an attempt when its elapsed time exceeds
	// twice the model's expectation.
	DefaultSlackFactor = 2.0
	// DefaultMaxReplicas allows one speculative replica per task.
	DefaultMaxReplicas = 1
	// DefaultCheckEvery is the threaded engine's monitor scan interval
	// in seconds (the simulator needs no scanning: it schedules exact
	// detection events).
	DefaultCheckEvery = 1e-3
)

// Policy is the speculation configuration carried by a fault.Plan, so
// that straggler studies are reproducible from the same seed-derived
// plan that injects the slowdowns.
type Policy struct {
	// Enabled turns the speculation controller on.
	Enabled bool
	// SlackFactor is the straggler threshold: an attempt is flagged when
	// its elapsed time exceeds SlackFactor × expected duration. Values
	// <= 1 mean DefaultSlackFactor (a factor of 1 would flag every task
	// whose duration merely meets the model).
	SlackFactor float64
	// MinExpected suppresses speculation for tasks whose expected
	// duration is below this many seconds: replicating near-instant
	// kernels costs more than it saves. 0 disables the filter.
	MinExpected float64
	// MaxReplicas caps speculative replicas per task. 0 means
	// DefaultMaxReplicas.
	MaxReplicas int
	// CheckEvery is the threaded engine's monitor scan interval in
	// seconds. 0 means DefaultCheckEvery.
	CheckEvery float64
}

// Slack returns the effective straggler slack factor.
func (p Policy) Slack() float64 {
	if p.SlackFactor <= 1 {
		return DefaultSlackFactor
	}
	return p.SlackFactor
}

// ReplicaCap returns the effective per-task replica budget.
func (p Policy) ReplicaCap() int {
	if p.MaxReplicas <= 0 {
		return DefaultMaxReplicas
	}
	return p.MaxReplicas
}

// Interval returns the effective threaded-engine scan interval.
func (p Policy) Interval() float64 {
	if p.CheckEvery <= 0 {
		return DefaultCheckEvery
	}
	return p.CheckEvery
}

// Stats summarizes speculation activity over one run.
type Stats struct {
	// Flagged counts attempts detected as stragglers.
	Flagged int
	// Launched counts replicas pushed through the scheduler. It can be
	// lower than Flagged when the per-task budget was already spent.
	Launched int
	// ReplicaWins counts tasks whose effective completion came from a
	// speculative replica rather than the original attempt.
	ReplicaWins int
	// Cancelled counts attempts cancelled by first-success-wins
	// arbitration (either side: a beaten original or a beaten replica).
	Cancelled int
	// WastedWork is the busy time, in engine seconds, burned by
	// cancelled attempts — the price paid for the makespan insurance.
	WastedWork float64
}

// Controller is the per-run speculation state machine shared by both
// engines. Engines report attempt starts, completions and straggler
// candidates; the controller arbitrates first-success-wins, enforces
// the replica budget, accumulates Stats and mirrors them to the probe
// as counter tracks (spec.flagged, spec.launched, spec.won,
// spec.cancelled, spec.wasted).
type Controller struct {
	pol   Policy
	probe obs.Probe
	now   func() float64
	seq   func() int64

	launched map[int64]int
	done     map[int64]bool

	// Stats accumulates the run's speculation counters.
	Stats Stats
}

// New builds a controller for one run. now and seq stamp the probe's
// counter samples (pass the engine's clock and linearization sequencer;
// nil defaults to zero stamps). probe may be nil.
func New(pol Policy, probe obs.Probe, now func() float64, seq func() int64) *Controller {
	if now == nil {
		now = func() float64 { return 0 }
	}
	if seq == nil {
		seq = func() int64 { return 0 }
	}
	return &Controller{
		pol:      pol,
		probe:    probe,
		now:      now,
		seq:      seq,
		launched: make(map[int64]int),
		done:     make(map[int64]bool),
	}
}

// Policy returns the controller's configuration.
func (c *Controller) Policy() Policy { return c.pol }

func (c *Controller) counter(track string, v float64) {
	if c.probe != nil {
		c.probe.Counter(track, c.now(), c.seq(), v)
	}
}

// Eligible reports whether a task with the given expected duration may
// be speculated at all: the model must have a finite positive
// expectation at least MinExpected long.
func (c *Controller) Eligible(expected float64) bool {
	return expected > 0 && expected >= c.pol.MinExpected
}

// Deadline returns the elapsed time past which an attempt with the
// given expected duration counts as a straggler.
func (c *Controller) Deadline(expected float64) float64 {
	return c.pol.Slack() * expected
}

// Straggling reports whether an attempt is past its deadline.
func (c *Controller) Straggling(elapsed, expected float64) bool {
	return elapsed > c.Deadline(expected)
}

// TryFlag records a straggler detection for the task and reports
// whether a replica should be launched: the task must not be done and
// its replica budget must not be spent. A true return consumes one
// replica slot.
func (c *Controller) TryFlag(task int64) bool {
	if c.done[task] || c.launched[task] >= c.pol.ReplicaCap() {
		return false
	}
	c.Stats.Flagged++
	c.Stats.Launched++
	c.launched[task]++
	c.counter("spec.flagged", float64(c.Stats.Flagged))
	c.counter("spec.launched", float64(c.Stats.Launched))
	return true
}

// Effective arbitrates a completed attempt: the first completion of a
// task wins (returns true and marks the task done); every later
// completion must be discarded by the engine (returns false). replica
// says whether the completing attempt was a speculative replica.
func (c *Controller) Effective(task int64, replica bool) bool {
	if c.done[task] {
		return false
	}
	c.done[task] = true
	if replica {
		c.Stats.ReplicaWins++
		c.counter("spec.won", float64(c.Stats.ReplicaWins))
	}
	return true
}

// Done reports whether the task already has an effective completion.
func (c *Controller) Done(task int64) bool { return c.done[task] }

// Replicas returns how many replicas were launched for the task.
func (c *Controller) Replicas(task int64) int { return c.launched[task] }

// CancelAttempt records the cancellation of a losing attempt that had
// burned busy engine seconds of work.
func (c *Controller) CancelAttempt(task int64, busy float64) {
	c.Stats.Cancelled++
	if busy > 0 {
		c.Stats.WastedWork += busy
	}
	c.counter("spec.cancelled", float64(c.Stats.Cancelled))
	c.counter("spec.wasted", c.Stats.WastedWork)
}

// Retired releases the done-map entry of a task; engines may call it on
// rollback when a task must run again from scratch (all attempts were
// killed before an effective completion). It is a no-op for done tasks.
func (c *Controller) Retired(task int64) {
	if !c.done[task] {
		delete(c.launched, task)
	}
}
