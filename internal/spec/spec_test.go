package spec

import (
	"math"
	"testing"

	"multiprio/internal/obs"
)

func TestPolicyDefaults(t *testing.T) {
	var p Policy
	if got := p.Slack(); got != DefaultSlackFactor {
		t.Errorf("Slack() = %v, want %v", got, DefaultSlackFactor)
	}
	if got := p.ReplicaCap(); got != DefaultMaxReplicas {
		t.Errorf("ReplicaCap() = %v, want %v", got, DefaultMaxReplicas)
	}
	if got := p.Interval(); got != DefaultCheckEvery {
		t.Errorf("Interval() = %v, want %v", got, DefaultCheckEvery)
	}
	// A slack factor of exactly 1 would flag every on-model task; it must
	// fall back to the default.
	p.SlackFactor = 1
	if got := p.Slack(); got != DefaultSlackFactor {
		t.Errorf("Slack() with factor 1 = %v, want default %v", got, DefaultSlackFactor)
	}
	p = Policy{SlackFactor: 1.5, MaxReplicas: 3, CheckEvery: 0.5}
	if p.Slack() != 1.5 || p.ReplicaCap() != 3 || p.Interval() != 0.5 {
		t.Errorf("explicit knobs not honored: %+v", p)
	}
}

func TestControllerFirstSuccessWins(t *testing.T) {
	c := New(Policy{Enabled: true}, nil, nil, nil)
	if !c.Effective(7, false) {
		t.Fatal("first completion must be effective")
	}
	if c.Effective(7, true) {
		t.Fatal("second completion must be discarded")
	}
	if !c.Done(7) {
		t.Fatal("task must be done after effective completion")
	}
	if c.Stats.ReplicaWins != 0 {
		t.Fatalf("original won, ReplicaWins = %d, want 0", c.Stats.ReplicaWins)
	}
	if !c.Effective(8, true) {
		t.Fatal("first completion of another task must be effective")
	}
	if c.Stats.ReplicaWins != 1 {
		t.Fatalf("replica won, ReplicaWins = %d, want 1", c.Stats.ReplicaWins)
	}
}

func TestControllerReplicaBudget(t *testing.T) {
	c := New(Policy{Enabled: true, MaxReplicas: 2}, nil, nil, nil)
	if !c.TryFlag(1) || !c.TryFlag(1) {
		t.Fatal("budget of 2 must allow two replicas")
	}
	if c.TryFlag(1) {
		t.Fatal("third replica must be rejected")
	}
	if c.Replicas(1) != 2 {
		t.Fatalf("Replicas(1) = %d, want 2", c.Replicas(1))
	}
	if got := (Stats{Flagged: 2, Launched: 2}); c.Stats != got {
		t.Fatalf("Stats = %+v, want %+v", c.Stats, got)
	}
	// Done tasks must never be flagged.
	c.Effective(2, false)
	if c.TryFlag(2) {
		t.Fatal("done task must not be flagged")
	}
}

func TestControllerEligibilityAndDeadline(t *testing.T) {
	c := New(Policy{Enabled: true, SlackFactor: 2, MinExpected: 0.01}, nil, nil, nil)
	if c.Eligible(0) || c.Eligible(-1) || c.Eligible(0.005) {
		t.Fatal("zero, negative, or below-MinExpected expectations must be ineligible")
	}
	if !c.Eligible(0.01) || !c.Eligible(1) {
		t.Fatal("at/above MinExpected must be eligible")
	}
	if got := c.Deadline(0.5); got != 1.0 {
		t.Fatalf("Deadline(0.5) = %v, want 1.0", got)
	}
	if c.Straggling(1.0, 0.5) {
		t.Fatal("elapsed == deadline is not straggling (strict >)")
	}
	if !c.Straggling(1.0+1e-9, 0.5) {
		t.Fatal("elapsed just past deadline must straggle")
	}
}

func TestControllerWastedWork(t *testing.T) {
	c := New(Policy{Enabled: true}, nil, nil, nil)
	c.CancelAttempt(1, 0.25)
	c.CancelAttempt(2, -1) // staged-only loser: no busy time
	if c.Stats.Cancelled != 2 {
		t.Fatalf("Cancelled = %d, want 2", c.Stats.Cancelled)
	}
	if math.Abs(c.Stats.WastedWork-0.25) > 1e-12 {
		t.Fatalf("WastedWork = %v, want 0.25", c.Stats.WastedWork)
	}
}

func TestControllerRetired(t *testing.T) {
	c := New(Policy{Enabled: true}, nil, nil, nil)
	if !c.TryFlag(1) {
		t.Fatal("first flag must pass")
	}
	// All attempts died (kill) before an effective completion: the task
	// restarts from scratch and regains its replica budget.
	c.Retired(1)
	if !c.TryFlag(1) {
		t.Fatal("retired task must regain its budget")
	}
	// Retiring a done task must not reopen it.
	c.Effective(1, false)
	c.Retired(1)
	if c.TryFlag(1) {
		t.Fatal("done task must stay done after Retired")
	}
}

func TestControllerProbeCounters(t *testing.T) {
	m := obs.NewMetrics()
	now := 1.5
	c := New(Policy{Enabled: true}, m, func() float64 { return now }, func() int64 { return 42 })
	c.TryFlag(1)
	c.Effective(1, true)
	c.CancelAttempt(2, 0.125)
	for _, want := range []string{"spec.flagged", "spec.launched", "spec.won", "spec.cancelled", "spec.wasted"} {
		if _, ok := m.Last(want); !ok {
			t.Errorf("missing counter track %q", want)
		}
	}
	if v, _ := m.Last("spec.wasted"); v != 0.125 {
		t.Errorf("spec.wasted = %v, want 0.125", v)
	}
}
