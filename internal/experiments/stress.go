package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"

	"multiprio/internal/apps/randdag"
)

// StressResult is the random-DAG robustness study: every scheduler over
// an ensemble of layered random graphs with mixed affinities and
// granularities, reported as the geometric mean of the makespan
// normalized to the per-instance best. A scheduler that only wins on
// the structured paper workloads would show up here.
type StressResult struct {
	Instances int
	// GeoMean[sched] is the geometric mean normalized makespan
	// (1.0 = best on every instance).
	GeoMean map[string]float64
	// Wins[sched] counts instances where the scheduler was strictly
	// fastest.
	Wins map[string]int
}

// stressSchedulers is the comparison set plus the simple baselines.
func stressSchedulers() []string {
	return []string{"multiprio", "dmdas", "heteroprio", "lws", "prio", "eager"}
}

// stressBaseSeed is the base of the per-configuration sim-seed
// derivation. The *graph* seed stays the instance number — it defines
// the instance — while the simulator RNG seed is derived from (base,
// configuration index) so it is independent of execution order.
const stressBaseSeed = 7

// RunStress executes the ensemble on the sweep worker pool: one
// configuration per (instance, scheduler) pair, reduced serially in
// instance order.
func RunStress(scale Scale, progress io.Writer) (*StressResult, error) {
	m, err := PlatformByName("intel-v100", 1)
	if err != nil {
		return nil, err
	}
	instances := 10
	layers, width := 8, 24
	if scale == Full {
		instances = 30
		layers, width = 12, 40
	}
	scheds := stressSchedulers()
	logSum := make(map[string]float64, len(scheds))
	wins := make(map[string]int, len(scheds))

	type job struct {
		seed  int64
		sched string
	}
	var jobs []job
	for seed := int64(1); seed <= int64(instances); seed++ {
		for _, name := range scheds {
			jobs = append(jobs, job{seed: seed, sched: name})
		}
	}
	makespans, err := sweep(len(jobs), progress, func(i int) (float64, error) {
		j := jobs[i]
		g := randdag.Build(randdag.Params{
			Layers: layers, Width: width,
			GranularitySpread: 50,
			Machine:           m, Seed: j.seed,
		})
		r, err := runOne(m, g, j.sched, SweepSeed(stressBaseSeed, i))
		if err != nil {
			return 0, fmt.Errorf("stress seed %d %s: %w", j.seed, j.sched, err)
		}
		return r.Makespan, nil
	})
	if err != nil {
		return nil, err
	}
	for inst := 0; inst < instances; inst++ {
		times := make(map[string]float64, len(scheds))
		best := math.Inf(1)
		for si, name := range scheds {
			t := makespans[inst*len(scheds)+si]
			times[name] = t
			if t < best {
				best = t
			}
		}
		var winner string
		winT := math.Inf(1)
		for _, name := range scheds {
			logSum[name] += math.Log(times[name] / best)
			if times[name] < winT {
				winner, winT = name, times[name]
			}
		}
		wins[winner]++
	}
	if progress != nil {
		fmt.Fprintln(progress)
	}
	res := &StressResult{
		Instances: instances,
		GeoMean:   make(map[string]float64, len(scheds)),
		Wins:      wins,
	}
	for _, name := range scheds {
		res.GeoMean[name] = math.Exp(logSum[name] / float64(instances))
	}
	return res, nil
}

// Print renders the robustness table sorted by geometric mean.
func (r *StressResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Random-DAG robustness: %d layered STG-style instances, mixed affinity and granularity\n", r.Instances)
	fmt.Fprintf(w, "%-12s %18s %6s\n", "scheduler", "geomean vs best", "wins")
	rule(w, 40)
	type row struct {
		name string
		gm   float64
	}
	rows := make([]row, 0, len(r.GeoMean))
	for n, gm := range r.GeoMean {
		rows = append(rows, row{n, gm})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].gm < rows[j].gm })
	for _, rr := range rows {
		fmt.Fprintf(w, "%-12s %17.3fx %6d\n", rr.name, rr.gm, r.Wins[rr.name])
	}
}
