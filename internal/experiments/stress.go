package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"

	"multiprio/internal/apps/randdag"
)

// StressResult is the random-DAG robustness study: every scheduler over
// an ensemble of layered random graphs with mixed affinities and
// granularities, reported as the geometric mean of the makespan
// normalized to the per-instance best. A scheduler that only wins on
// the structured paper workloads would show up here.
type StressResult struct {
	Instances int
	// GeoMean[sched] is the geometric mean normalized makespan
	// (1.0 = best on every instance).
	GeoMean map[string]float64
	// Wins[sched] counts instances where the scheduler was strictly
	// fastest.
	Wins map[string]int
}

// stressSchedulers is the comparison set plus the simple baselines.
func stressSchedulers() []string {
	return []string{"multiprio", "dmdas", "heteroprio", "lws", "prio", "eager"}
}

// RunStress executes the ensemble.
func RunStress(scale Scale, progress io.Writer) (*StressResult, error) {
	m, err := PlatformByName("intel-v100", 1)
	if err != nil {
		return nil, err
	}
	instances := 10
	layers, width := 8, 24
	if scale == Full {
		instances = 30
		layers, width = 12, 40
	}
	scheds := stressSchedulers()
	logSum := make(map[string]float64, len(scheds))
	wins := make(map[string]int, len(scheds))

	for seed := int64(1); seed <= int64(instances); seed++ {
		times := make(map[string]float64, len(scheds))
		best := math.Inf(1)
		for _, name := range scheds {
			g := randdag.Build(randdag.Params{
				Layers: layers, Width: width,
				GranularitySpread: 50,
				Machine:           m, Seed: seed,
			})
			r, err := runOne(m, g, name, seed)
			if err != nil {
				return nil, fmt.Errorf("stress seed %d %s: %w", seed, name, err)
			}
			times[name] = r.Makespan
			if r.Makespan < best {
				best = r.Makespan
			}
			if progress != nil {
				fmt.Fprintf(progress, ".")
			}
		}
		var winner string
		winT := math.Inf(1)
		for _, name := range scheds {
			logSum[name] += math.Log(times[name] / best)
			if times[name] < winT {
				winner, winT = name, times[name]
			}
		}
		wins[winner]++
	}
	if progress != nil {
		fmt.Fprintln(progress)
	}
	res := &StressResult{
		Instances: instances,
		GeoMean:   make(map[string]float64, len(scheds)),
		Wins:      wins,
	}
	for _, name := range scheds {
		res.GeoMean[name] = math.Exp(logSum[name] / float64(instances))
	}
	return res, nil
}

// Print renders the robustness table sorted by geometric mean.
func (r *StressResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Random-DAG robustness: %d layered STG-style instances, mixed affinity and granularity\n", r.Instances)
	fmt.Fprintf(w, "%-12s %18s %6s\n", "scheduler", "geomean vs best", "wins")
	rule(w, 40)
	type row struct {
		name string
		gm   float64
	}
	rows := make([]row, 0, len(r.GeoMean))
	for n, gm := range r.GeoMean {
		rows = append(rows, row{n, gm})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].gm < rows[j].gm })
	for _, rr := range rows {
		fmt.Fprintf(w, "%-12s %17.3fx %6d\n", rr.name, rr.gm, r.Wins[rr.name])
	}
}
