package experiments

import (
	"fmt"
	"io"

	"multiprio/internal/apps/dense"
	"multiprio/internal/apps/randdag"
	"multiprio/internal/fault"
	"multiprio/internal/oracle"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/sim"
	"multiprio/internal/spec"
)

// StragglerCell is one (workload, scheduler) measurement of the
// straggler-mitigation study: the same seed-deterministic slowdown plan
// run twice, with speculation off and on.
type StragglerCell struct {
	Workload  string
	Scheduler string
	// Baseline is the clean makespan (no slowdowns, no speculation).
	Baseline float64
	// Slowed is the makespan under the slowdown plan with speculation
	// off: stragglers run to completion wherever they landed.
	Slowed float64
	// Speculated is the makespan under the same plan with speculation
	// on.
	Speculated float64
	// ImprovementPct is how much speculation recovered of the slowed
	// makespan (positive = speculation helped).
	ImprovementPct float64
	Stats          spec.Stats
	// OracleOK reports that both runs passed the execution oracle,
	// the speculative one under the SpecCheck first-success-wins rule.
	OracleOK bool
}

// StragglersResult is the -exp stragglers study: every scheduler on
// slowdown-afflicted workloads, with and without speculative task
// replication, each run validated by the execution oracle.
type StragglersResult struct {
	Cells []StragglerCell
}

// stragglerPolicy is the speculation configuration of the study: flag
// at 1.5x the model's expectation, one replica per task.
var stragglerPolicy = spec.Policy{Enabled: true, SlackFactor: 1.5}

// RunStragglers executes the straggler-mitigation study: for each
// workload and scheduler a clean baseline fixes the horizon, then a
// seed-deterministic plan of heavy slowdown windows (unknown to the
// performance model) is injected twice — speculation off, then on —
// and the makespans are compared. Both runs are oracle-validated; the
// speculative one additionally under the first-success-wins SpecCheck.
func RunStragglers(scale Scale, progress io.Writer) (*StragglersResult, error) {
	nCPU, nGPU := 5, 2
	dagLayers, dagWidth, tiles := 8, 12, 8
	if scale == Full {
		nCPU, nGPU = 10, 4
		dagLayers, dagWidth, tiles = 16, 20, 14
	}
	m, err := platform.NewHeteroNode("stragglers", nCPU, 10, nGPU, 100, 64*platform.MiB, 5e9, platform.Config{})
	if err != nil {
		return nil, err
	}
	workloads := []struct {
		name  string
		build func() *runtime.Graph
	}{
		{"randdag", func() *runtime.Graph {
			return randdag.Build(randdag.Params{Layers: dagLayers, Width: dagWidth,
				CommuteShare: 0.3, Machine: m, Seed: 17})
		}},
		{"cholesky", func() *runtime.Graph {
			return dense.Cholesky(dense.Params{Tiles: tiles, TileSize: 512, Machine: m,
				UserPriorities: true})
		}},
	}

	type job struct{ w, s int }
	var jobs []job
	for wi := range workloads {
		for si := range faultSchedulers {
			jobs = append(jobs, job{wi, si})
		}
	}
	rows, err := sweep(len(jobs), progress, func(idx int) ([]StragglerCell, error) {
		w := workloads[jobs[idx].w]
		schedName := faultSchedulers[jobs[idx].s]
		seed := SweepSeed(29, idx)

		run := func(plan *fault.Plan) (*runtime.Graph, *sim.Result, error) {
			s, err := NewScheduler(schedName)
			if err != nil {
				return nil, nil, err
			}
			g := w.build()
			res, err := sim.Run(m, g, s, sim.Options{
				Seed: seed, CollectMemEvents: plan != nil, Faults: plan,
			})
			return g, res, err
		}
		_, base, err := run(nil)
		if err != nil {
			return nil, fmt.Errorf("%s/%s baseline: %w", w.name, schedName, err)
		}
		// Heavy slowdown windows spanning most of the run, invisible to
		// the performance model: the straggler scenario.
		plan := fault.Generate(m, fault.Spec{
			Seed: 4001, Horizon: base.Makespan,
			Slowdowns: 3, SlowFactor: 8, SlowSpan: base.Makespan,
			Speculation: stragglerPolicy,
		})
		off := *plan
		off.Speculation.Enabled = false
		gOff, slowed, err := run(&off)
		if err != nil {
			return nil, fmt.Errorf("%s/%s slowed: %w", w.name, schedName, err)
		}
		if err := oracle.Check(gOff, slowed.Trace, oracle.Options{
			OverflowBytes: slowed.OverflowBytes,
		}); err != nil {
			return nil, fmt.Errorf("%s/%s slowed: oracle: %w", w.name, schedName, err)
		}
		gOn, spec, err := run(plan)
		if err != nil {
			return nil, fmt.Errorf("%s/%s speculated: %w", w.name, schedName, err)
		}
		if err := oracle.Check(gOn, spec.Trace, oracle.Options{
			OverflowBytes: spec.OverflowBytes,
			Spec:          &oracle.SpecCheck{MaxReplicas: plan.SpecPolicy().ReplicaCap()},
		}); err != nil {
			return nil, fmt.Errorf("%s/%s speculated: oracle: %w", w.name, schedName, err)
		}
		return []StragglerCell{{
			Workload:       w.name,
			Scheduler:      schedName,
			Baseline:       base.Makespan,
			Slowed:         slowed.Makespan,
			Speculated:     spec.Makespan,
			ImprovementPct: improvement(slowed.Makespan, spec.Makespan),
			Stats:          spec.Spec,
			OracleOK:       true,
		}}, nil
	})
	if err != nil {
		return nil, err
	}
	r := &StragglersResult{}
	for _, row := range rows {
		r.Cells = append(r.Cells, row...)
	}
	return r, nil
}

// improvement is the share of the slowed makespan speculation clawed
// back, in percent (positive = speculation helped).
func improvement(slowed, speculated float64) float64 {
	if slowed == 0 {
		return 0
	}
	return 100 * (slowed - speculated) / slowed
}

// Print renders the study as one table per workload.
func (r *StragglersResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Straggler mitigation: speculative replication under unannounced slowdowns")
	fmt.Fprintln(w, "(same seed-deterministic slowdown plan with speculation off vs on; every run")
	fmt.Fprintln(w, " validated by the execution oracle, speculative runs under first-success-wins)")
	last := ""
	for _, c := range r.Cells {
		if c.Workload != last {
			fmt.Fprintf(w, "\n%-10s slack=%.2g replicas<=%d\n",
				c.Workload, stragglerPolicy.Slack(), stragglerPolicy.ReplicaCap())
			rule(w, 100)
			fmt.Fprintf(w, "%-12s %11s %10s %10s %8s %6s %6s %5s %6s %9s %7s\n",
				"scheduler", "baseline(s)", "slowed(s)", "spec(s)", "improv%",
				"flag", "launch", "wins", "cancel", "wasted(s)", "oracle")
			last = c.Workload
		}
		ok := "pass"
		if !c.OracleOK {
			ok = "FAIL"
		}
		fmt.Fprintf(w, "%-12s %11.4f %10.4f %10.4f %+7.1f%% %6d %6d %5d %6d %9.4f %7s\n",
			c.Scheduler, c.Baseline, c.Slowed, c.Speculated, c.ImprovementPct,
			c.Stats.Flagged, c.Stats.Launched, c.Stats.ReplicaWins,
			c.Stats.Cancelled, c.Stats.WastedWork, ok)
	}
}
