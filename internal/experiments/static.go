package experiments

import (
	"errors"
	"fmt"
	"io"
	"math"

	"multiprio/internal/apps/dense"
	"multiprio/internal/apps/randdag"
	"multiprio/internal/fault"
	"multiprio/internal/oracle"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/sched/heft"
	"multiprio/internal/sched/heft/heftcheck"
	"multiprio/internal/sched/registry"
	"multiprio/internal/sim"
)

// StaticCell is one (workload, mode, scenario) measurement of the
// static-vs-dynamic-vs-hybrid robustness study.
type StaticCell struct {
	Workload string
	// Mode is "static" (HEFT pinned replay), "dynamic" (the fallback
	// policy scheduling everything live), or "hybrid" (pinned replay
	// with deviation repair through the fallback).
	Mode     string
	Scenario string
	// Stranded reports that pure-static replay deadlocked: a kill took
	// a worker whose planned tasks the replay policy refuses to
	// reassign. Makespan is NaN in that case.
	Stranded bool
	Makespan float64
	// Baseline is the fault-free makespan of the same (workload, mode);
	// DegradationPct the makespan increase over it.
	Baseline       float64
	DegradationPct float64
	Stats          runtime.FaultStats
	// KillRepairs / SlackRepairs count the hybrid policy's logged
	// deviation repairs by trigger kind (always 0 for pure static —
	// static logs no repairs, it strands instead).
	KillRepairs  int
	SlackRepairs int
	// OracleOK reports that the run passed the execution oracle
	// including (for static and hybrid) the StaticCheck plan-adherence
	// rule.
	OracleOK bool
}

// StaticResult is the -exp static study: HEFT pinned replay vs the
// dynamic fallback vs hybrid repair, under model noise, slowdown
// windows, transfer failures, and worker kills. Within one (workload,
// scenario) cell all three modes face the identical generated fault
// plan, so the comparison isolates the scheduling mode.
type StaticResult struct {
	Fallback string
	Cells    []StaticCell
}

// staticModes orders the comparison rows of each block.
var staticModes = []string{"static", "dynamic", "hybrid"}

// staticStudySlack is the hybrid slack budget the study runs with.
// Deliberately above heft.DefaultSlackFactor: the study's headline
// comparison wants diversions that reflect genuine environmental
// disruption (a kill, a deep slowdown), not the plan's transfer-model
// optimism on contended graphs — with a tight budget hybrid starts
// second-guessing a plan that is merely imprecise and can lose a few
// percent to replaying it faithfully. The slack path itself is
// exercised deterministically by the engine tests.
const staticStudySlack = 2.5

// staticScenarios is the disturbance grid: estimate-only noise at two
// intensities, slowdown windows, kills, and a mixed plan. Counts and
// windows scale with the per-cell static-plan horizon.
var staticScenarios = []struct {
	name string
	spec fault.Spec
}{
	{"noise-lo", fault.Spec{Seed: 4001, ModelNoise: 0.1}},
	{"noise-hi", fault.Spec{Seed: 4003, ModelNoise: 0.4}},
	{"slowdowns", fault.Spec{Seed: 4007, Slowdowns: 3, SlowFactor: 4}},
	{"kills", fault.Spec{Seed: 4013, Kills: 2}},
	{"mixed", fault.Spec{Seed: 4019, Kills: 1, Slowdowns: 2, TransferFaults: 2, ModelNoise: 0.2}},
}

// RunStatic executes the static-vs-dynamic-vs-hybrid study. fallback
// names the dynamic policy used both standalone (the "dynamic" row) and
// as hybrid repair's diversion target; empty selects heft's default.
// For each (workload, scenario): fault-free baselines per mode fix the
// horizon, one fault plan is generated from the static baseline and
// shared by all three modes, and every completed run is validated by
// the execution oracle — static and hybrid additionally against the
// plan-adherence StaticCheck. Pure-static runs that strand on a kill
// are recorded as such rather than failing the study: a stranded
// frontier is static replay's specified behaviour under kills.
func RunStatic(scale Scale, fallback string, progress io.Writer) (*StaticResult, error) {
	if fallback == "" {
		fallback = heft.DefaultFallback
	}
	if _, err := registry.New(fallback, registry.Options{}); err != nil {
		return nil, fmt.Errorf("static: fallback: %w", err)
	}
	nCPU, nGPU := 5, 2
	dagLayers, dagWidth, tiles := 8, 12, 8
	if scale == Full {
		nCPU, nGPU = 10, 4
		dagLayers, dagWidth, tiles = 16, 20, 14
	}
	m, err := platform.NewHeteroNode("static", nCPU, 10, nGPU, 100, 64*platform.MiB, 5e9, platform.Config{})
	if err != nil {
		return nil, err
	}
	workloads := []struct {
		name  string
		build func() *runtime.Graph
	}{
		{"randdag", func() *runtime.Graph {
			return randdag.Build(randdag.Params{Layers: dagLayers, Width: dagWidth,
				CommuteShare: 0.3, Machine: m, Seed: 17})
		}},
		// The typed column restricts 40% of GPU-capable tasks to
		// GPU-only, exercising the capability mask through HEFT's
		// EFT loop and the fallback's distributor alike.
		{"randdag-typed", func() *runtime.Graph {
			return randdag.Build(randdag.Params{Layers: dagLayers, Width: dagWidth,
				CommuteShare: 0.3, TypedFraction: 0.4, Machine: m, Seed: 17})
		}},
		{"cholesky", func() *runtime.Graph {
			return dense.Cholesky(dense.Params{Tiles: tiles, TileSize: 512, Machine: m,
				UserPriorities: true})
		}},
	}

	type job struct{ w, sc int }
	var jobs []job
	for wi := range workloads {
		for sci := range staticScenarios {
			jobs = append(jobs, job{wi, sci})
		}
	}
	rows, err := sweep(len(jobs), progress, func(idx int) ([]StaticCell, error) {
		w := workloads[jobs[idx].w]
		scn := staticScenarios[jobs[idx].sc]
		seed := SweepSeed(29, idx)

		mk := func(mode string) (runtime.Scheduler, *heft.Sched, error) {
			switch mode {
			case "static":
				s, err := registry.New("heft", registry.Options{})
				if err != nil {
					return nil, nil, err
				}
				return s, s.(*heft.Sched), nil
			case "dynamic":
				s, err := registry.New(fallback, registry.Options{})
				return s, nil, err
			default:
				s, err := registry.New("heft-hybrid", registry.Options{Fallback: fallback})
				if err != nil {
					return nil, nil, err
				}
				hs := s.(*heft.Sched)
				hs.SlackFactor = staticStudySlack
				return s, hs, nil
			}
		}
		run := func(mode string, plan *fault.Plan) (*runtime.Graph, *sim.Result, *heft.Sched, error) {
			s, hs, err := mk(mode)
			if err != nil {
				return nil, nil, nil, err
			}
			g := w.build()
			res, err := sim.Run(m, g, s, sim.Options{
				Seed: seed, CollectMemEvents: plan != nil, Faults: plan,
				Observer: Observer(),
			})
			return g, res, hs, err
		}
		// Fault-free baselines per mode; the static baseline fixes the
		// horizon, so all three modes face the identical fault plan.
		base := make(map[string]float64, len(staticModes))
		for _, mode := range staticModes {
			_, res, _, err := run(mode, nil)
			if err != nil {
				return nil, fmt.Errorf("%s/%s baseline: %w", w.name, mode, err)
			}
			base[mode] = res.Makespan
		}
		spec := scn.spec
		spec.Horizon = base["static"]
		plan := fault.Generate(m, spec)
		cells := make([]StaticCell, 0, len(staticModes))
		for _, mode := range staticModes {
			cell := StaticCell{Workload: w.name, Mode: mode, Scenario: scn.name, Baseline: base[mode]}
			g, res, hs, err := run(mode, plan)
			if err != nil {
				if mode == "static" && errors.Is(err, sim.ErrDeadlock) {
					cell.Stranded = true
					cell.Makespan = math.NaN()
					cells = append(cells, cell)
					continue
				}
				return nil, fmt.Errorf("%s/%s %s: %w", w.name, mode, scn.name, err)
			}
			opts := oracle.Options{OverflowBytes: res.OverflowBytes}
			if !plan.Empty() {
				opts.Faults = &oracle.FaultCheck{
					MaxRetries: plan.RetryCap(),
					Kills:      res.Faults.AppliedKills,
					Strict:     true,
				}
			}
			if hs != nil {
				opts.Static = heftcheck.For(hs, res.Faults.AppliedKills)
			}
			if oerr := oracle.Check(g, res.Trace, opts); oerr != nil {
				return nil, fmt.Errorf("%s/%s %s: oracle: %w", w.name, mode, scn.name, oerr)
			}
			cell.Makespan = res.Makespan
			cell.DegradationPct = pct(res.Makespan, base[mode])
			cell.Stats = res.Faults
			cell.OracleOK = true
			if hs != nil {
				for _, r := range hs.Repairs() {
					if r.Reason == heft.RepairKill {
						cell.KillRepairs++
					} else {
						cell.SlackRepairs++
					}
				}
			}
			cells = append(cells, cell)
		}
		return cells, nil
	})
	if err != nil {
		return nil, err
	}
	r := &StaticResult{Fallback: fallback}
	for _, row := range rows {
		r.Cells = append(r.Cells, row...)
	}
	return r, nil
}

// HybridRegressions lists every (workload, scenario) where hybrid
// repair did worse than pure-static replay: a higher makespan on a cell
// static completed, or a strand of its own. An empty slice is the
// study's headline claim — hybrid is never worse than static, and
// completes the kill cells where static strands.
func (r *StaticResult) HybridRegressions() []string {
	byKey := make(map[string]map[string]StaticCell)
	for _, c := range r.Cells {
		key := c.Workload + "/" + c.Scenario
		if byKey[key] == nil {
			byKey[key] = make(map[string]StaticCell)
		}
		byKey[key][c.Mode] = c
	}
	var out []string
	for _, key := range sortedMapKeys(byKey) {
		st, hy := byKey[key]["static"], byKey[key]["hybrid"]
		switch {
		case hy.Stranded:
			out = append(out, fmt.Sprintf("%s: hybrid stranded", key))
		case st.Stranded:
			// hybrid completed where static could not: a win.
		case hy.Makespan > st.Makespan*(1+1e-9):
			out = append(out, fmt.Sprintf("%s: hybrid %.4fs > static %.4fs", key, hy.Makespan, st.Makespan))
		}
	}
	return out
}

// Print renders the study as one table per (workload, scenario) block,
// with a verdict line comparing hybrid against pure static.
func (r *StaticResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Static vs dynamic vs hybrid: HEFT pinned replay under noise, slowdowns and kills")
	fmt.Fprintf(w, "(dynamic/fallback policy: %s; one shared fault plan per cell; every completed run\n", r.Fallback)
	fmt.Fprintln(w, " oracle-validated, static & hybrid additionally against the StaticCheck plan rule)")
	last := ""
	for _, c := range r.Cells {
		key := c.Workload + "/" + c.Scenario
		if key != last {
			fmt.Fprintf(w, "\n%-14s scenario=%s\n", c.Workload, c.Scenario)
			rule(w, 96)
			fmt.Fprintf(w, "%-9s %12s %12s %8s %6s %8s %6s %11s %9s %7s\n",
				"mode", "makespan(s)", "baseline(s)", "degr%", "kills", "retries", "slow", "repairs k/s", "status", "oracle")
			last = key
		}
		status, ok := "done", "pass"
		if c.Stranded {
			status, ok = "STRANDED", "n/a"
			fmt.Fprintf(w, "%-9s %12s %12.4f %8s %6s %8s %6s %5d/%-5d %9s %7s\n",
				c.Mode, "-", c.Baseline, "-", "-", "-", "-",
				c.KillRepairs, c.SlackRepairs, status, ok)
			continue
		}
		if !c.OracleOK {
			ok = "FAIL"
		}
		fmt.Fprintf(w, "%-9s %12.4f %12.4f %+7.1f%% %6d %8d %6d %5d/%-5d %9s %7s\n",
			c.Mode, c.Makespan, c.Baseline, c.DegradationPct,
			c.Stats.Kills, c.Stats.Retries, c.Stats.Slowdowns,
			c.KillRepairs, c.SlackRepairs, status, ok)
	}
	fmt.Fprintln(w)
	if regr := r.HybridRegressions(); len(regr) > 0 {
		fmt.Fprintf(w, "VERDICT: hybrid regressed on %d cell(s):\n", len(regr))
		for _, s := range regr {
			fmt.Fprintf(w, "  %s\n", s)
		}
	} else {
		fmt.Fprintln(w, "VERDICT: hybrid never worse than pure static; completes every cell where static strands")
	}
}
