package experiments

import (
	"fmt"
	"io"

	"multiprio/internal/apps/dense"
	"multiprio/internal/core"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/sim"
)

// Fig4Variant is one of the two compared configurations.
type Fig4Variant struct {
	Name        string
	Makespan    float64
	GPUIdlePct  float64
	CPUIdlePct  float64
	Evictions   int64
	Gantt       string
	CriticalLen int
}

// Fig4Result reproduces the paper's Fig. 4: simulated scheduling traces
// of a Cholesky factorization (tile 960, 20×20 tiles) on 1 GPU + 6
// CPUs, with and without MultiPrio's eviction mechanism. The paper
// reports GPU idle dropping from 29% to 1% with eviction on.
type Fig4Result struct {
	With    Fig4Variant
	Without Fig4Variant
}

// RunFig4 executes both configurations.
func RunFig4(scale Scale, withGantt bool) (*Fig4Result, error) {
	m := platform.SmallSim(platform.Config{})
	tiles := 20
	if scale == Quick {
		tiles = 14
	}
	p := dense.Params{Tiles: tiles, TileSize: 960, Machine: m}

	run := func(disableEviction bool, name string) (Fig4Variant, error) {
		cfg := core.Defaults()
		cfg.DisableEviction = disableEviction
		sched := core.New(cfg)
		g := dense.Cholesky(p)
		res, err := sim.Run(m, g, sched, sim.Options{})
		if err != nil {
			return Fig4Variant{}, err
		}
		v := Fig4Variant{
			Name:        name,
			Makespan:    res.Makespan,
			GPUIdlePct:  res.Trace.ArchIdlePercent(platform.ArchGPU),
			CPUIdlePct:  res.Trace.ArchIdlePercent(platform.ArchCPU),
			Evictions:   sched.Evictions,
			CriticalLen: len(runtime.PracticalCriticalPath(g)),
		}
		if withGantt {
			v.Gantt = res.Trace.Gantt(100)
		}
		return v, nil
	}

	var r Fig4Result
	var err error
	if r.Without, err = run(true, "MultiPrio without eviction"); err != nil {
		return nil, err
	}
	if r.With, err = run(false, "MultiPrio with eviction"); err != nil {
		return nil, err
	}
	return &r, nil
}

// Print renders both traces' headline numbers (and the ASCII Gantt when
// collected).
func (r *Fig4Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig. 4: eviction mechanism on Cholesky 960-tile, 1 GPU + 6 CPUs")
	rule(w, 78)
	for _, v := range []Fig4Variant{r.Without, r.With} {
		fmt.Fprintf(w, "%-28s makespan %8.4fs  GPU idle %5.1f%%  CPU idle %5.1f%%  evictions %d\n",
			v.Name, v.Makespan, v.GPUIdlePct, v.CPUIdlePct, v.Evictions)
		if v.Gantt != "" {
			fmt.Fprintln(w, v.Gantt)
		}
	}
	fmt.Fprintf(w, "paper: GPU idle 29%% -> 1%% with the eviction mechanism enabled\n")
}
