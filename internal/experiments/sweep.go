package experiments

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// sweepWorkers is the worker-pool size used by the experiment sweeps
// (fig5, fig6, fig8, ablation, stress). The default of 1 preserves the
// historical serial execution; cmd/multiprio-bench raises it through the
// -j flag. Sweep results are collected in configuration order regardless
// of the pool size, so rendered tables are byte-identical for every
// worker count.
var sweepWorkers atomic.Int32

// SetWorkers sets the sweep worker-pool size. Values below 1 are
// clamped to 1 (serial execution).
func SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	sweepWorkers.Store(int32(n))
}

// Workers returns the current sweep worker-pool size.
func Workers() int {
	if n := sweepWorkers.Load(); n > 1 {
		return int(n)
	}
	return 1
}

// SweepSeed derives the RNG seed of sweep configuration idx from a base
// seed with a splitmix64 mix. Every configuration owns an independent
// seed derived only from (base, idx) — never from a shared RNG stream —
// so results do not depend on the order in which configurations execute
// (the property the parallel runner relies on, and a reproducibility
// guarantee if sweeps are ever reordered).
func SweepSeed(base int64, idx int) int64 {
	z := uint64(base)*0x9e3779b97f4a7c15 + (uint64(idx)+1)*0xbf58476d1ce4e5b9
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// sweep runs jobs independent configurations on a pool of Workers()
// goroutines and returns their results indexed by configuration. Jobs
// must not share mutable state (each builds its own graph and scheduler;
// platform machines are immutable after construction and may be shared).
// The result slice is always in configuration order, so reductions over
// it are deterministic no matter how the pool interleaved execution.
// One progress dot is written per completed configuration. On error the
// pool stops picking up new configurations and the error of the
// lowest-indexed failed configuration is returned.
func sweep[T any](jobs int, progress io.Writer, run func(idx int) (T, error)) ([]T, error) {
	out := make([]T, jobs)
	workers := Workers()
	if workers > jobs {
		workers = jobs
	}
	if workers <= 1 {
		for i := 0; i < jobs; i++ {
			var err error
			if out[i], err = run(i); err != nil {
				return nil, err
			}
			if progress != nil {
				fmt.Fprint(progress, ".")
			}
		}
		return out, nil
	}

	errs := make([]error, jobs)
	var next atomic.Int64
	var failed atomic.Bool
	var progMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= jobs || failed.Load() {
					return
				}
				out[i], errs[i] = run(i)
				if errs[i] != nil {
					failed.Store(true)
					return
				}
				if progress != nil {
					progMu.Lock()
					fmt.Fprint(progress, ".")
					progMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
