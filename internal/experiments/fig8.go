package experiments

import (
	"fmt"
	"io"

	"multiprio/internal/apps/sparseqr"
)

// Fig8Point is one (platform, matrix) measurement: performance of every
// scheduler relative to Dmdas (ratio > 1 means faster than Dmdas, the
// figure's y-axis).
type Fig8Point struct {
	Platform string
	Matrix   string
	// Times[sched] is the makespan; Ratio[sched] = dmdas / sched.
	Times map[string]float64
	Ratio map[string]float64
}

// Fig8Result reproduces the paper's Fig. 8: sparse multifrontal QR over
// the Fig. 7 matrix set with 4 GPU streams, performance relative to
// Dmdas. Paper headline: MultiPrio gains on average 31% on Intel-V100
// and 12% (up to 20% on the larger matrices) on AMD-A100.
type Fig8Result struct {
	Points []Fig8Point
}

// fig8BaseSeed is the base of the per-configuration seed derivation.
const fig8BaseSeed = 1

// RunFig8 runs the full matrix sweep on both platforms. One sweep
// configuration covers one (platform, matrix) pair: the assembly tree is
// synthesized inside the job and the three schedulers run against it.
func RunFig8(scale Scale, progress io.Writer) (*Fig8Result, error) {
	matrices := sparseqr.Matrices
	if scale == Quick {
		matrices = matrices[:6] // the smaller op counts
	}
	res := &Fig8Result{}
	type job struct {
		platform string
		stats    sparseqr.MatrixStats
	}
	var jobs []job
	for _, pf := range []string{"intel-v100", "amd-a100"} {
		for _, stats := range matrices {
			jobs = append(jobs, job{platform: pf, stats: stats})
		}
	}
	points, err := sweep(len(jobs), progress, func(i int) (Fig8Point, error) {
		j := jobs[i]
		m, err := PlatformByName(j.platform, 4) // "we use four streams on each GPU"
		if err != nil {
			return Fig8Point{}, err
		}
		tr := sparseqr.BuildTree(j.stats)
		pt := Fig8Point{
			Platform: j.platform, Matrix: j.stats.Name,
			Times: make(map[string]float64),
			Ratio: make(map[string]float64),
		}
		for si, schedName := range SchedulerNames() {
			g := sparseqr.BuildFromTree(tr, sparseqr.Params{Machine: m})
			r, err := runOne(m, g, schedName, SweepSeed(fig8BaseSeed, i*len(SchedulerNames())+si))
			if err != nil {
				return Fig8Point{}, fmt.Errorf("fig8 %s %s %s: %w", j.platform, j.stats.Name, schedName, err)
			}
			pt.Times[schedName] = r.Makespan
		}
		for s, t := range pt.Times {
			if t > 0 {
				pt.Ratio[s] = pt.Times["dmdas"] / t
			}
		}
		return pt, nil
	})
	if err != nil {
		return nil, err
	}
	res.Points = points
	if progress != nil {
		fmt.Fprintln(progress)
	}
	return res, nil
}

// Print renders the figure as per-platform ratio tables.
func (r *Fig8Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig. 8: sparse QR, performance relative to Dmdas (higher is better)")
	cur := ""
	for _, p := range r.Points {
		if p.Platform != cur {
			cur = p.Platform
			fmt.Fprintf(w, "\n[%s]\n", cur)
			fmt.Fprintf(w, "%-14s | %10s %10s %10s\n", "matrix", "multiprio", "dmdas", "heteroprio")
			rule(w, 52)
		}
		fmt.Fprintf(w, "%-14s | %10.3f %10.3f %10.3f\n",
			p.Matrix, p.Ratio["multiprio"], p.Ratio["dmdas"], p.Ratio["heteroprio"])
	}
	fmt.Fprintf(w, "\nMultiPrio average gain: intel-v100 %+.1f%%, amd-a100 %+.1f%%\n",
		r.AverageGain("intel-v100"), r.AverageGain("amd-a100"))
	fmt.Fprintln(w, "paper: +31% on Intel-V100; +12% (up to +20% on large matrices) on AMD-A100")
}

// AverageGain returns MultiPrio's mean gain over Dmdas in percent on one
// platform.
func (r *Fig8Result) AverageGain(platformName string) float64 {
	var sum float64
	var n int
	for _, p := range r.Points {
		if p.Platform != platformName {
			continue
		}
		sum += (p.Ratio["multiprio"] - 1) * 100
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
