package experiments

import (
	"fmt"
	"io"

	"multiprio/internal/apps/dense"
	"multiprio/internal/apps/fmm"
	"multiprio/internal/apps/sparseqr"
	"multiprio/internal/core"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/sim"
)

// AblationRow is one (workload, configuration) makespan.
type AblationRow struct {
	Workload string
	Config   string
	Makespan float64
	// DeltaPct is the slowdown relative to the default configuration
	// on the same workload (positive = this configuration is worse).
	DeltaPct float64
}

// AblationResult benchmarks the design choices DESIGN.md §5 calls out:
// eviction, criticality tie-break, locality-aware POP (and its n and ε
// hyper-parameters), and the Eq. 1 gain normalization, each toggled
// independently on three workload classes.
type AblationResult struct {
	Rows []AblationRow
}

// ablationConfigs enumerates the compared configurations.
func ablationConfigs() []struct {
	name string
	cfg  core.Config
} {
	mk := func(f func(*core.Config)) core.Config {
		c := core.Defaults()
		f(&c)
		return c
	}
	return []struct {
		name string
		cfg  core.Config
	}{
		{"default", core.Defaults()},
		{"no-eviction", mk(func(c *core.Config) { c.DisableEviction = true })},
		{"no-criticality", mk(func(c *core.Config) { c.DisableCriticality = true })},
		{"no-locality", mk(func(c *core.Config) { c.DisableLocality = true })},
		{"flat-gain", mk(func(c *core.Config) { c.FlatGain = true })},
		{"n=3", mk(func(c *core.Config) { c.LocalityWindow = 3 })},
		{"n=30", mk(func(c *core.Config) { c.LocalityWindow = 30 })},
		{"eps=0.2", mk(func(c *core.Config) { c.Epsilon = 0.2 })},
		{"tries=1", mk(func(c *core.Config) { c.MaxTries = 1 })},
		{"tries=16", mk(func(c *core.Config) { c.MaxTries = 16 })},
	}
}

// ablationBaseSeed is the base of the per-configuration seed derivation.
const ablationBaseSeed = 1

// RunAblation executes every configuration on a dense, an FMM, and a
// sparse workload on the Intel-V100 model. Configurations run on the
// sweep worker pool; the slowdown column is derived serially from the
// collected makespans (cfgs[0] is the default configuration).
func RunAblation(scale Scale, progress io.Writer) (*AblationResult, error) {
	m := platform.IntelV100(platform.Config{})
	tiles := 24
	particles := 120_000
	matrix := sparseqr.Matrices[2] // e18
	if scale == Full {
		tiles = 40
		particles = 400_000
		matrix = sparseqr.Matrices[5] // TF17
	}
	sparseTree := sparseqr.BuildTree(matrix)
	workloads := []struct {
		name  string
		build func() *runtime.Graph
	}{
		{"cholesky", func() *runtime.Graph {
			return dense.Cholesky(dense.Params{Tiles: tiles, TileSize: 960, Machine: m})
		}},
		{"fmm", func() *runtime.Graph {
			return fmm.Build(fmm.Params{Particles: particles, Height: 5, Machine: m, Seed: 3})
		}},
		{"sparseqr-" + matrix.Name, func() *runtime.Graph {
			return sparseqr.BuildFromTree(sparseTree, sparseqr.Params{Machine: m})
		}},
	}

	type job struct {
		wl  int
		cfg int
	}
	cfgs := ablationConfigs()
	var jobs []job
	for wi := range workloads {
		for ci := range cfgs {
			jobs = append(jobs, job{wl: wi, cfg: ci})
		}
	}
	makespans, err := sweep(len(jobs), progress, func(i int) (float64, error) {
		j := jobs[i]
		g := workloads[j.wl].build()
		r, err := sim.Run(m, g, core.New(cfgs[j.cfg].cfg), sim.Options{Seed: SweepSeed(ablationBaseSeed, i)})
		if err != nil {
			return 0, fmt.Errorf("ablation %s %s: %w", workloads[j.wl].name, cfgs[j.cfg].name, err)
		}
		return r.Makespan, nil
	})
	if err != nil {
		return nil, err
	}
	res := &AblationResult{}
	for i, j := range jobs {
		wl, c := workloads[j.wl], cfgs[j.cfg]
		row := AblationRow{Workload: wl.name, Config: c.name, Makespan: makespans[i]}
		if base := makespans[i-j.cfg]; c.name != "default" && base > 0 {
			row.DeltaPct = pct(makespans[i], base)
		}
		res.Rows = append(res.Rows, row)
	}
	if progress != nil {
		fmt.Fprintln(progress)
	}
	return res, nil
}

// Print renders the ablation table.
func (r *AblationResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Ablation: MultiPrio design choices (slowdown vs default config)")
	fmt.Fprintf(w, "%-22s %-16s %12s %10s\n", "workload", "config", "makespan", "delta")
	rule(w, 64)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-22s %-16s %11.4fs %+9.1f%%\n",
			row.Workload, row.Config, row.Makespan, row.DeltaPct)
	}
}
