package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"

	"multiprio/internal/apps/randdag"
	"multiprio/internal/oracle"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/sched/registry"
	"multiprio/internal/sim"
	"multiprio/internal/stream"
	"multiprio/internal/telemetry"
)

// TenantMetrics is the per-tenant service quality of one streaming
// cell: queue-time percentiles (push-to-start, i.e. admission wait plus
// scheduler queueing) and sustained throughput over the tenant's active
// window (first arrival to last completion).
type TenantMetrics struct {
	Tenant     string
	P50, P99   float64
	Throughput float64
	Deferred   int
}

// StreamCell is one (load, shape, skew, scheduler) measurement of the
// streaming study.
type StreamCell struct {
	Rho       float64
	Shape     string
	Skew      string
	Scheduler string
	Makespan  float64
	Tenants   []TenantMetrics
	// OracleOK reports the run passed the execution oracle including
	// StreamCheck (arrival gating, per-tenant exactly-once, in-flight
	// bound, no cross-tenant starvation).
	OracleOK bool
}

// StreamResult is the -exp stream study: multi-tenant online ingestion
// under an arrival-rate sweep (load factor ρ) × arrival shape (uniform
// vs bursty) × tenant skew, per scheduler, every cell oracle-validated.
type StreamResult struct {
	Tenants int
	Limit   int
	Cells   []StreamCell
}

// streamSchedulers is the comparison set of the streaming study: the
// paper's policy, the locality baseline and the greedy baseline.
var streamSchedulers = []string{"multiprio", "dmdas", "eager"}

// RunStream executes the streaming study. T tenants each own a randdag
// subgraph; Combine merges them, a batch run fixes the horizon M, and
// each cell streams the combined DAG with per-tenant rates chosen so
// tenant k submits its subgraph over M/(ρ·s_k) seconds (s_k the skew
// multiplier) through the Fair admission wrapper.
func RunStream(scale Scale, progress io.Writer) (*StreamResult, error) {
	tenants, layers, width, limit := 3, 6, 8, 8
	if scale == Full {
		tenants, layers, width, limit = 4, 10, 16, 12
	}
	m, err := platform.NewHeteroNode("stream", 4, 10, 2, 100, 64*platform.MiB, 5e9, platform.Config{})
	if err != nil {
		return nil, err
	}
	build := func() (*runtime.Graph, *stream.Plan, error) {
		subs := make([]*runtime.Graph, tenants)
		for k := range subs {
			subs[k] = randdag.Build(randdag.Params{Layers: layers, Width: width,
				CommuteShare: 0.2, Machine: m, Seed: int64(31 + 7*k)})
		}
		return stream.Combine(subs...)
	}

	// Batch horizon: the makespan with everything available at t=0 fixes
	// the time scale the load factor ρ is expressed against.
	gBase, planBase, err := build()
	if err != nil {
		return nil, err
	}
	// With a telemetry observer attached (-serve/-export), attribute
	// tasks to their tenants so the per-tenant histograms fill with real
	// labels. The partition is deterministic and identical across cells,
	// so one representative plan covers the whole sweep.
	if tp, ok := Observer().(*telemetry.Probe); ok && tp != nil {
		tp.SetTenantFunc(func(id int64) string {
			return planBase.Name(planBase.Tenant(id))
		})
	}
	base, err := runOne(m, gBase, "dmdas", 11)
	if err != nil {
		return nil, fmt.Errorf("stream baseline: %w", err)
	}
	horizon := base.Makespan

	skews := []struct {
		name string
		mult []float64 // cycled over tenants
	}{
		{"even", []float64{1}},
		{"skewed", []float64{4, 1, 0.25}},
	}
	shapes := []struct {
		name  string
		shape stream.Shape
		burst int
	}{
		{"uniform", stream.Uniform, 0},
		{"bursty", stream.Bursty, 6},
	}
	rhos := []float64{0.5, 2}

	type cfg struct {
		rho   int
		shape int
		skew  int
		sched int
	}
	var cfgs []cfg
	for r := range rhos {
		for sh := range shapes {
			for sk := range skews {
				for s := range streamSchedulers {
					cfgs = append(cfgs, cfg{r, sh, sk, s})
				}
			}
		}
	}
	rows, err := sweep(len(cfgs), progress, func(idx int) (StreamCell, error) {
		c := cfgs[idx]
		rho, shape, skew, schedName := rhos[c.rho], shapes[c.shape], skews[c.skew], streamSchedulers[c.sched]
		label := fmt.Sprintf("rho=%g/%s/%s/%s", rho, shape.name, skew.name, schedName)

		g, plan, err := build()
		if err != nil {
			return StreamCell{}, fmt.Errorf("%s: %w", label, err)
		}
		counts := plan.TasksOf()
		spec := &stream.ArrivalSpec{Seed: uint64(SweepSeed(43, idx)), Tenants: make([]stream.TenantArrivals, tenants)}
		for k := range spec.Tenants {
			s := skew.mult[k%len(skew.mult)]
			spec.Tenants[k] = stream.TenantArrivals{
				Rate:     rho * s * float64(counts[k]) / horizon,
				Shape:    shape.shape,
				BurstLen: shape.burst,
			}
		}
		if err := spec.Generate(plan); err != nil {
			return StreamCell{}, fmt.Errorf("%s: %w", label, err)
		}
		for k := range plan.Limits {
			plan.Limits[k] = limit
		}
		fair, err := stream.New(schedName, plan, registry.Options{})
		if err != nil {
			return StreamCell{}, fmt.Errorf("%s: %w", label, err)
		}
		res, err := sim.Run(m, g, fair, sim.Options{Seed: SweepSeed(47, idx),
			Arrivals: plan.Arrivals, Observer: Observer()})
		if err != nil {
			return StreamCell{}, fmt.Errorf("%s: %w", label, err)
		}
		if err := oracle.Check(g, res.Trace, oracle.Options{
			OverflowBytes: res.OverflowBytes,
			Stream:        &oracle.StreamCheck{Plan: plan, Admissions: fair.AdmissionLog()},
		}); err != nil {
			return StreamCell{}, fmt.Errorf("%s: oracle: %w", label, err)
		}
		cell := StreamCell{
			Rho: rho, Shape: shape.name, Skew: skew.name, Scheduler: schedName,
			Makespan: res.Makespan, OracleOK: true,
		}
		// Admission statistics come off the engine Result (the Fair
		// wrapper implements runtime.StreamStatsReporter), not by
		// reaching into the scheduler.
		stats := res.Stream
		if stats == nil {
			return StreamCell{}, fmt.Errorf("%s: result carries no stream stats", label)
		}
		for k := 0; k < tenants; k++ {
			var queue []float64
			firstArrival, lastEnd := -1.0, 0.0
			n := 0
			for _, t := range g.Tasks {
				if plan.Tenant(t.ID) != k {
					continue
				}
				queue = append(queue, t.StartAt-t.ReadyAt)
				if firstArrival < 0 || plan.Arrivals[t.ID] < firstArrival {
					firstArrival = plan.Arrivals[t.ID]
				}
				if t.EndAt > lastEnd {
					lastEnd = t.EndAt
				}
				n++
			}
			thr := 0.0
			if lastEnd > firstArrival {
				thr = float64(n) / (lastEnd - firstArrival)
			}
			cell.Tenants = append(cell.Tenants, TenantMetrics{
				Tenant:     plan.Name(k),
				P50:        percentile(queue, 0.50),
				P99:        percentile(queue, 0.99),
				Throughput: thr,
				Deferred:   stats.Deferred[k],
			})
		}
		return cell, nil
	})
	if err != nil {
		return nil, err
	}
	return &StreamResult{Tenants: tenants, Limit: limit, Cells: rows}, nil
}

// percentile returns the q-quantile of values (nearest-rank on a sorted
// copy); 0 for an empty slice.
func percentile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	i := int(math.Ceil(q * float64(len(s)-1)))
	return s[i]
}

// Print renders the study as one table per load factor.
func (r *StreamResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Online ingestion: %d tenants, per-tenant in-flight limit %d, Fair admission over each policy\n", r.Tenants, r.Limit)
	fmt.Fprintln(w, "(queue = push-to-start seconds per task; every cell oracle-validated incl. StreamCheck)")
	lastRho := -1.0
	for _, c := range r.Cells {
		if c.Rho != lastRho {
			fmt.Fprintf(w, "\nload rho=%g\n", c.Rho)
			rule(w, 30+28*len(c.Tenants))
			fmt.Fprintf(w, "%-8s %-7s %-10s %9s", "shape", "skew", "scheduler", "mksp(s)")
			for _, tm := range c.Tenants {
				fmt.Fprintf(w, " | %4s p50/p99/thr/defer", tm.Tenant)
			}
			fmt.Fprintf(w, " %7s\n", "oracle")
			lastRho = c.Rho
		}
		ok := "pass"
		if !c.OracleOK {
			ok = "FAIL"
		}
		fmt.Fprintf(w, "%-8s %-7s %-10s %9.3f", c.Shape, c.Skew, c.Scheduler, c.Makespan)
		for _, tm := range c.Tenants {
			fmt.Fprintf(w, " | %6.3f/%6.3f/%5.1f/%3d", tm.P50, tm.P99, tm.Throughput, tm.Deferred)
		}
		fmt.Fprintf(w, " %7s\n", ok)
	}
}
