package experiments

import (
	"io"
	"strings"
	"testing"
)

// TestRunStragglers pins the study's reason to exist: under the
// slowdown plans, speculation must reduce the makespan for at least the
// paper's scheduler (multiprio) and dmdas on every workload, with every
// run oracle-validated.
func TestRunStragglers(t *testing.T) {
	r, err := RunStragglers(Quick, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 2*len(faultSchedulers) {
		t.Fatalf("cells = %d, want %d", len(r.Cells), 2*len(faultSchedulers))
	}
	for _, c := range r.Cells {
		if !c.OracleOK {
			t.Errorf("%s/%s failed the oracle", c.Workload, c.Scheduler)
		}
		if c.Slowed <= c.Baseline {
			t.Errorf("%s/%s: slowdown plan did not hurt (%g <= %g)",
				c.Workload, c.Scheduler, c.Slowed, c.Baseline)
		}
		if c.Scheduler == "multiprio" || c.Scheduler == "dmdas" {
			if c.Speculated >= c.Slowed {
				t.Errorf("%s/%s: speculation did not help (%g with vs %g without)",
					c.Workload, c.Scheduler, c.Speculated, c.Slowed)
			}
			if c.Stats.ReplicaWins == 0 {
				t.Errorf("%s/%s: no replica wins: %+v", c.Workload, c.Scheduler, c.Stats)
			}
		}
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "Straggler mitigation") {
		t.Error("print output missing header")
	}
}
