package experiments

import (
	"io"
	"strings"
	"testing"
)

// TestRunStatic pins the study's acceptance claims at quick scale:
// every completed cell passes the oracle (static and hybrid including
// StaticCheck — RunStatic fails hard otherwise), hybrid is never worse
// than pure static and completes every kill cell where static strands,
// and the typed workload column is present.
func TestRunStatic(t *testing.T) {
	r, err := RunStatic(Quick, "", io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if r.Fallback != "multiprio" {
		t.Fatalf("default fallback = %q, want multiprio", r.Fallback)
	}
	wantCells := 3 * len(staticModes) * len(staticScenarios)
	if len(r.Cells) != wantCells {
		t.Fatalf("cells = %d, want %d", len(r.Cells), wantCells)
	}
	if regr := r.HybridRegressions(); len(regr) > 0 {
		t.Fatalf("hybrid regressed vs static: %v", regr)
	}
	typed, stranded := false, 0
	for _, c := range r.Cells {
		typed = typed || c.Workload == "randdag-typed"
		if c.Stranded {
			stranded++
			if c.Mode != "static" {
				t.Errorf("%s/%s/%s: only pure static may strand", c.Workload, c.Mode, c.Scenario)
			}
			continue
		}
		if !c.OracleOK {
			t.Errorf("%s/%s/%s failed the oracle", c.Workload, c.Mode, c.Scenario)
		}
		if c.Mode == "hybrid" && c.Stats.Kills > 0 && c.KillRepairs == 0 {
			t.Errorf("%s/%s: kills applied but no kill repair logged", c.Workload, c.Scenario)
		}
	}
	if !typed {
		t.Error("study is missing the typed randdag column")
	}
	if stranded == 0 {
		t.Error("no kill cell stranded pure static replay")
	}

	// An unknown fallback must fail fast, through the registry's
	// Fallback validation.
	if _, err := RunStatic(Quick, "no-such-policy", io.Discard); err == nil {
		t.Error("unknown fallback accepted")
	}

	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "Static vs dynamic vs hybrid") {
		t.Error("print output missing header")
	}
	if !strings.Contains(sb.String(), "VERDICT: hybrid never worse") {
		t.Error("print output missing clean verdict")
	}
}
