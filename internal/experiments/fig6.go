package experiments

import (
	"fmt"
	"io"

	"multiprio/internal/apps/fmm"
)

// Fig6Point is one (platform, streams, scheduler) FMM execution time.
type Fig6Point struct {
	Platform string
	Streams  int
	Times    map[string]float64 // scheduler -> seconds
}

// Fig6Result reproduces the paper's Fig. 6: TBFMM execution time on both
// platforms while varying the number of GPU streams; the paper reports
// MultiPrio achieving the shortest makespan because the disconnected
// DAG rewards workload balancing plus per-task affinity scores.
type Fig6Result struct {
	Particles int
	Height    int
	Points    []Fig6Point
}

// fig6BaseSeed is the base of the per-configuration seed derivation.
const fig6BaseSeed = 1

// RunFig6 executes the sweep on the worker pool. The octree depends only
// on the particle distribution (not on the platform or stream count), so
// it is built once and shared read-only across the configurations.
func RunFig6(scale Scale, progress io.Writer) (*Fig6Result, error) {
	particles, height := 1_000_000, 6
	if scale == Quick {
		particles, height = 150_000, 5
	}
	res := &Fig6Result{Particles: particles, Height: height}
	type job struct {
		point    int
		platform string
		streams  int
		sched    string
	}
	var jobs []job
	for _, pf := range []string{"intel-v100", "amd-a100"} {
		for _, streams := range []int{1, 2, 4} {
			res.Points = append(res.Points, Fig6Point{
				Platform: pf, Streams: streams, Times: make(map[string]float64),
			})
			for _, schedName := range SchedulerNames() {
				jobs = append(jobs, job{
					point: len(res.Points) - 1, platform: pf,
					streams: streams, sched: schedName,
				})
			}
		}
	}
	// The clustered ensemble: TBFMM's target workloads are non-uniform
	// particle distributions, and per-task affinity scores only
	// differentiate from per-type ones when task costs vary within a
	// type.
	baseParams := fmm.Params{Particles: particles, Height: height, Clustered: true, Seed: 12}
	tree := fmm.BuildTree(baseParams)
	times, err := sweep(len(jobs), progress, func(i int) (float64, error) {
		j := jobs[i]
		m, err := PlatformByName(j.platform, j.streams)
		if err != nil {
			return 0, err
		}
		p := baseParams
		p.Machine = m
		g := fmm.BuildFromTree(p, tree)
		r, err := runOne(m, g, j.sched, SweepSeed(fig6BaseSeed, i))
		if err != nil {
			return 0, fmt.Errorf("fig6 %s streams=%d %s: %w", j.platform, j.streams, j.sched, err)
		}
		return r.Makespan, nil
	})
	if err != nil {
		return nil, err
	}
	for i, j := range jobs {
		res.Points[j.point].Times[j.sched] = times[i]
	}
	if progress != nil {
		fmt.Fprintln(progress)
	}
	return res, nil
}

// Print renders the figure as a table of execution times.
func (r *Fig6Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Fig. 6: TBFMM execution time (%d particles, tree height %d)\n", r.Particles, r.Height)
	fmt.Fprintf(w, "%-12s %8s | %11s %11s %11s | best\n", "platform", "streams", "multiprio", "dmdas", "heteroprio")
	rule(w, 72)
	for _, p := range r.Points {
		best, bestT := "", 0.0
		for s, t := range p.Times {
			if best == "" || t < bestT {
				best, bestT = s, t
			}
		}
		fmt.Fprintf(w, "%-12s %8d | %10.4fs %10.4fs %10.4fs | %s\n",
			p.Platform, p.Streams,
			p.Times["multiprio"], p.Times["dmdas"], p.Times["heteroprio"], best)
	}
	fmt.Fprintln(w, "paper: MultiPrio achieves the shortest makespan on both platforms")
}

// Wins counts the points where the scheduler has the lowest time.
func (r *Fig6Result) Wins(sched string) int {
	n := 0
	for _, p := range r.Points {
		best, bestT := "", 0.0
		for s, t := range p.Times {
			if best == "" || t < bestT {
				best, bestT = s, t
			}
		}
		if best == sched {
			n++
		}
	}
	return n
}
