package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"multiprio/internal/apps/dense"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
)

// OverheadRow is one scheduler's measured decision cost.
type OverheadRow struct {
	Scheduler string
	// PushNs and PopNs are wall-clock nanoseconds per operation,
	// measured by driving the policy directly (no simulation).
	PushNs float64
	PopNs  float64
}

// OverheadResult quantifies the paper's Section III-B claim that the
// per-memory-node binary heaps keep the scheduling overhead reasonable:
// the real wall-clock cost per PUSH and POP decision of every policy,
// on a Cholesky-shaped ready stream over the Intel-V100 model.
type OverheadResult struct {
	Tasks int
	Rows  []OverheadRow
}

// RunOverhead measures decision costs by replaying a ready-task stream.
func RunOverhead(scale Scale, progress io.Writer) (*OverheadResult, error) {
	m, err := PlatformByName("intel-v100", 1)
	if err != nil {
		return nil, err
	}
	tiles := 24
	if scale == Full {
		tiles = 40
	}
	res := &OverheadResult{}
	workers := make([]runtime.WorkerInfo, len(m.Units))
	for i, u := range m.Units {
		workers[i] = runtime.WorkerInfo{ID: platform.UnitID(i), Arch: u.Arch, Mem: u.Mem}
	}
	for _, name := range []string{"multiprio", "dmdas", "heteroprio", "lws", "prio", "eager"} {
		g := dense.Cholesky(dense.Params{Tiles: tiles, TileSize: 960, Machine: m, UserPriorities: true})
		s, err := NewScheduler(name)
		if err != nil {
			return nil, err
		}
		s.Init(runtime.NewEnv(m, g))
		res.Tasks = len(g.Tasks)

		// Push the whole ready stream (dependencies ignored: this
		// measures data-structure costs, not scheduling quality).
		start := time.Now()
		for _, t := range g.Tasks {
			s.Push(t)
		}
		pushNs := float64(time.Since(start).Nanoseconds()) / float64(len(g.Tasks))

		start = time.Now()
		popped := 0
		for i := 0; popped < len(g.Tasks); i++ {
			w := workers[i%len(workers)]
			if t := s.Pop(w); t != nil {
				popped++
				s.TaskDone(t, w)
			}
			if i > 50*len(g.Tasks) {
				return nil, fmt.Errorf("overhead: %s drained only %d of %d tasks", name, popped, len(g.Tasks))
			}
		}
		popNs := float64(time.Since(start).Nanoseconds()) / float64(len(g.Tasks))

		res.Rows = append(res.Rows, OverheadRow{Scheduler: name, PushNs: pushNs, PopNs: popNs})
		if progress != nil {
			fmt.Fprintf(progress, ".")
		}
	}
	if progress != nil {
		fmt.Fprintln(progress)
	}
	sort.Slice(res.Rows, func(i, j int) bool {
		return res.Rows[i].PushNs+res.Rows[i].PopNs < res.Rows[j].PushNs+res.Rows[j].PopNs
	})
	return res, nil
}

// Print renders the overhead table.
func (r *OverheadResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Scheduling overhead: wall-clock cost per decision over %d Cholesky tasks (Intel-V100 model)\n", r.Tasks)
	fmt.Fprintf(w, "%-12s %12s %12s\n", "scheduler", "push ns/task", "pop ns/task")
	rule(w, 40)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s %12.0f %12.0f\n", row.Scheduler, row.PushNs, row.PopNs)
	}
	fmt.Fprintln(w, "paper §III-B: the per-memory-node heaps stay cheap because |M| is small")
}
