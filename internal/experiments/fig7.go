package experiments

import (
	"fmt"
	"io"

	"multiprio/internal/apps/sparseqr"
)

// Fig7Row is one matrix of the evaluation set, with the generator's
// achieved operation count next to the published one.
type Fig7Row struct {
	sparseqr.MatrixStats
	GeneratedGflop float64
	Fronts         int
}

// Fig7Result reproduces the paper's Fig. 7 table and validates the
// synthetic assembly-tree generator against the published statistics.
type Fig7Result struct {
	Rows []Fig7Row
}

// RunFig7 builds every matrix's tree and records the achieved op counts.
func RunFig7() (*Fig7Result, error) {
	res := &Fig7Result{}
	for _, stats := range sparseqr.Matrices {
		tr := sparseqr.BuildTree(stats)
		res.Rows = append(res.Rows, Fig7Row{
			MatrixStats:    stats,
			GeneratedGflop: tr.TotalFlops() / 1e9,
			Fronts:         len(tr.Fronts),
		})
	}
	return res, nil
}

// Print renders the table in the paper's layout plus generator columns.
func (r *Fig7Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig. 7: QR_MUMPS matrices (published stats + synthetic-tree validation)")
	fmt.Fprintf(w, "%-14s %9s %8s %9s %10s | %10s %7s\n",
		"matrix", "rows", "cols", "nnz", "op(Gflop)", "gen(Gflop)", "fronts")
	rule(w, 78)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-14s %9d %8d %9d %10.0f | %10.0f %7d\n",
			row.Name, row.Rows, row.Cols, row.Nonzeros, row.OpCount,
			row.GeneratedGflop, row.Fronts)
	}
}
