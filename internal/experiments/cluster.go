package experiments

import (
	"fmt"
	"io"

	"multiprio/internal/apps/dense"
	"multiprio/internal/apps/randdag"
	"multiprio/internal/oracle"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/sched/distrib"
	"multiprio/internal/sched/registry"
	"multiprio/internal/sim"
)

// clusterNodeCounts is the scaling axis of the -exp cluster study.
var clusterNodeCounts = []int{1, 2, 4, 8}

// clusterInners are the per-node policies the distributor shards to.
var clusterInners = []string{"multiprio", "dmdas"}

// ClusterCell is one (workload, inner policy, node count) measurement
// of the cluster scaling study.
type ClusterCell struct {
	Workload string
	Inner    string
	Nodes    int
	Makespan float64
	// Speedup is the 1-node makespan of the same (workload, inner)
	// configuration divided by this cell's makespan.
	Speedup float64
	// InterBytes is the payload that crossed the interconnect (transfers
	// whose source and destination memories live on different nodes).
	InterBytes int64
	// CrossPct is the share of tasks the distributor placed on a node
	// holding none of their predecessors (pure load balancing).
	CrossPct float64
	// OracleOK reports the run passed the execution oracle — for
	// multi-node cells including the inter-node transfer replay.
	OracleOK bool
}

// ClusterResult is the -exp cluster study: the same workloads run on
// 1/2/4/8-node clusters through the two-level distributor, every run
// validated by the execution oracle.
type ClusterResult struct {
	Cells []ClusterCell
}

// clusterWorkloads returns the study's graph builders for machine m.
func clusterWorkloads(m *platform.Machine, scale Scale) []struct {
	name  string
	build func() *runtime.Graph
} {
	dagLayers, dagWidth, tiles := 10, 16, 8
	if scale == Full {
		dagLayers, dagWidth, tiles = 20, 32, 16
	}
	return []struct {
		name  string
		build func() *runtime.Graph
	}{
		{"randdag", func() *runtime.Graph {
			return randdag.Build(randdag.Params{Layers: dagLayers, Width: dagWidth,
				CommuteShare: 0.3, Machine: m, Seed: 17})
		}},
		{"cholesky", func() *runtime.Graph {
			return dense.Cholesky(dense.Params{Tiles: tiles, TileSize: 512, Machine: m,
				UserPriorities: true})
		}},
	}
}

// clusterMachine builds the study's n-node cluster: identical
// heterogeneous nodes on a full symmetric interconnect (2 GB/s, 20 µs —
// a commodity-network class far below the intra-node PCIe).
func clusterMachine(n int, scale Scale) (*platform.Machine, error) {
	nCPU, nGPU := 4, 1
	if scale == Full {
		nCPU, nGPU = 8, 2
	}
	return platform.UniformCluster(fmt.Sprintf("cluster-%d", n), n, func(i int) (*platform.Machine, error) {
		return platform.NewHeteroNode(fmt.Sprintf("n%d", i), nCPU, 10, nGPU, 100,
			64*platform.MiB, 5e9, platform.Config{})
	}, 2e9, 2e-5)
}

// RunCluster executes the cluster scaling study: each workload × inner
// policy runs on 1-, 2-, 4- and 8-node clusters through the two-level
// distributor. Every run is validated by the execution oracle; on
// multi-node cells that includes the inter-node transfer replay (a
// value crossing nodes must have traversed an interconnect transfer no
// faster than its link time).
func RunCluster(scale Scale, progress io.Writer) (*ClusterResult, error) {
	type job struct {
		w, p, n int
	}
	sample, err := clusterMachine(1, scale)
	if err != nil {
		return nil, err
	}
	numW := len(clusterWorkloads(sample, scale))
	var jobs []job
	for wi := 0; wi < numW; wi++ {
		for pi := range clusterInners {
			for ni := range clusterNodeCounts {
				jobs = append(jobs, job{wi, pi, ni})
			}
		}
	}
	rows, err := sweep(len(jobs), progress, func(idx int) (ClusterCell, error) {
		j := jobs[idx]
		nodes := clusterNodeCounts[j.n]
		inner := clusterInners[j.p]
		m, err := clusterMachine(nodes, scale)
		if err != nil {
			return ClusterCell{}, err
		}
		w := clusterWorkloads(m, scale)[j.w]
		sched, err := distrib.New(inner, registry.Options{})
		if err != nil {
			return ClusterCell{}, err
		}
		g := w.build()
		// One seed per (workload, inner) so every node count of a
		// configuration sees the same simulation randomness and the
		// scaling column isolates the topology.
		seed := SweepSeed(31, j.w*len(clusterInners)+j.p)
		res, err := sim.Run(m, g, sched, sim.Options{Seed: seed, CollectMemEvents: true})
		if err != nil {
			return ClusterCell{}, fmt.Errorf("%s/%s on %d nodes: %w", w.name, inner, nodes, err)
		}
		if err := oracle.Check(g, res.Trace, oracle.Options{OverflowBytes: res.OverflowBytes}); err != nil {
			return ClusterCell{}, fmt.Errorf("%s/%s on %d nodes: oracle: %w", w.name, inner, nodes, err)
		}
		var inter int64
		for _, x := range res.Trace.Xfers {
			if m.NodeOfMem(x.Src) != m.NodeOfMem(x.Dst) {
				inter += x.Bytes
			}
		}
		st := sched.Stats()
		cell := ClusterCell{
			Workload:   w.name,
			Inner:      inner,
			Nodes:      nodes,
			Makespan:   res.Makespan,
			InterBytes: inter,
			CrossPct:   100 * float64(st.CrossAssignments) / float64(len(g.Tasks)),
			OracleOK:   true,
		}
		return cell, nil
	})
	if err != nil {
		return nil, err
	}
	// Speedup against the 1-node cell of the same configuration. The
	// rows are in configuration order; node count varies fastest.
	r := &ClusterResult{Cells: rows}
	for i := range r.Cells {
		base := r.Cells[i-i%len(clusterNodeCounts)]
		if r.Cells[i].Makespan > 0 {
			r.Cells[i].Speedup = base.Makespan / r.Cells[i].Makespan
		}
	}
	return r, nil
}

// Print renders the study as one table per workload.
func (r *ClusterResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Cluster scaling: two-level scheduling (distrib over per-node policies)")
	fmt.Fprintln(w, "(identical nodes on a 2 GB/s interconnect; every run oracle-validated,")
	fmt.Fprintln(w, " multi-node runs including the inter-node transfer replay)")
	last := ""
	for _, c := range r.Cells {
		key := c.Workload + "/" + c.Inner
		if key != last {
			fmt.Fprintf(w, "\n%-10s inner=%s\n", c.Workload, c.Inner)
			rule(w, 64)
			fmt.Fprintf(w, "%5s %12s %8s %14s %7s %7s\n",
				"nodes", "makespan(s)", "speedup", "inter(MiB)", "cross%", "oracle")
			last = key
		}
		ok := "pass"
		if !c.OracleOK {
			ok = "FAIL"
		}
		fmt.Fprintf(w, "%5d %12.4f %7.2fx %14.2f %6.1f%% %7s\n",
			c.Nodes, c.Makespan, c.Speedup,
			float64(c.InterBytes)/float64(platform.MiB), c.CrossPct, ok)
	}
}
