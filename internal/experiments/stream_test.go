package experiments

import (
	"io"
	"strings"
	"testing"
)

// TestRunStream pins the streaming study's contract: every cell of the
// load × shape × skew × scheduler sweep passes the oracle including
// StreamCheck, per-tenant metrics are populated and sane, and the
// low-load half actually streams (the makespan stretches past the batch
// regime because arrivals pace the run).
func TestRunStream(t *testing.T) {
	r, err := RunStream(Quick, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	wantCells := 2 * 2 * 2 * len(streamSchedulers)
	if len(r.Cells) != wantCells {
		t.Fatalf("cells = %d, want %d", len(r.Cells), wantCells)
	}
	for _, c := range r.Cells {
		label := c.Shape + "/" + c.Skew + "/" + c.Scheduler
		if !c.OracleOK {
			t.Errorf("%s: failed the oracle", label)
		}
		if len(c.Tenants) != r.Tenants {
			t.Fatalf("%s: %d tenant rows, want %d", label, len(c.Tenants), r.Tenants)
		}
		for _, tm := range c.Tenants {
			if tm.Throughput <= 0 {
				t.Errorf("%s/%s: non-positive throughput %g", label, tm.Tenant, tm.Throughput)
			}
			if tm.P99 < tm.P50 {
				t.Errorf("%s/%s: p99 %g below p50 %g", label, tm.Tenant, tm.P99, tm.P50)
			}
			if tm.P50 < 0 {
				t.Errorf("%s/%s: negative queue time %g", label, tm.Tenant, tm.P50)
			}
		}
	}
	var sb strings.Builder
	r.Print(&sb)
	out := sb.String()
	for _, want := range []string{"rho=0.5", "rho=2", "bursty", "skewed", "pass"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table misses %q", want)
		}
	}
	if strings.Contains(out, "FAIL") {
		t.Error("rendered table reports an oracle failure")
	}
}

// TestPercentile pins the nearest-rank helper on a known sequence.
func TestPercentile(t *testing.T) {
	v := []float64{5, 1, 4, 2, 3}
	if p := percentile(v, 0.5); p != 3 {
		t.Errorf("p50 = %g, want 3", p)
	}
	if p := percentile(v, 0.99); p != 5 {
		t.Errorf("p99 = %g, want 5", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Errorf("empty percentile = %g, want 0", p)
	}
	// The input must stay unsorted (percentile copies).
	if v[0] != 5 {
		t.Error("percentile mutated its input")
	}
}
