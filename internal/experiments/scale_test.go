package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestRunScaleQuick runs the scaling study at quick scale: every
// (size, scheduler) row must be oracle-validated with memory events
// on, and the deterministic columns (events, makespan) must agree with
// the bench suite's fixed seeds — the same graph seed 42 / sim seed 7
// pair BenchmarkSimThroughput1e5 uses.
func TestRunScaleQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 10^3..10^5-task simulations")
	}
	r, err := RunScale(Quick, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * len(scaleSchedulers())
	if len(r.Rows) != want {
		t.Fatalf("got %d rows, want %d", len(r.Rows), want)
	}
	for _, row := range r.Rows {
		if !row.Checked {
			t.Errorf("%d/%s not oracle-validated", row.Tasks, row.Scheduler)
		}
		if row.Makespan <= 0 || row.Events <= 0 || row.TasksPerSec <= 0 {
			t.Errorf("%d/%s has degenerate measurements: makespan %g, events %d, tasks/s %g",
				row.Tasks, row.Scheduler, row.Makespan, row.Events, row.TasksPerSec)
		}
		// Every task contributes at least its wake and finish events.
		if row.Events < int64(2*row.Tasks) {
			t.Errorf("%d/%s recorded only %d events", row.Tasks, row.Scheduler, row.Events)
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	out := buf.String()
	for _, frag := range []string{"Scaling curve", "tasks/s", "oracle", "ok"} {
		if !strings.Contains(out, frag) {
			t.Errorf("table missing %q:\n%s", frag, out)
		}
	}
}
