package experiments

import (
	"fmt"
	"io"

	"multiprio/internal/apps/dense"
	"multiprio/internal/apps/randdag"
	"multiprio/internal/fault"
	"multiprio/internal/oracle"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/sim"
)

// FaultCell is one (workload, scheduler, scenario) measurement of the
// robustness study.
type FaultCell struct {
	Workload  string
	Scheduler string
	Scenario  string
	// Makespan is the fault-run completion time; Baseline the fault-free
	// makespan of the same (workload, scheduler).
	Makespan float64
	Baseline float64
	// DegradationPct is the makespan increase over the baseline.
	DegradationPct float64
	Stats          runtime.FaultStats
	// OracleOK reports that the run passed the execution oracle's
	// exactly-once-effective validation (strict kill semantics).
	OracleOK bool
}

// FaultsResult is the -exp faults robustness study: every scheduler
// against worker kills, slowdown windows, transfer failures and
// performance-model noise, with recovery validated by the oracle.
type FaultsResult struct {
	Cells []FaultCell
}

// faultSchedulers is the full comparison set of the conformance
// harness; every policy must survive every scenario.
var faultSchedulers = []string{
	"multiprio", "dm", "dmda", "dmdas", "heteroprio", "lws", "prio", "eager",
}

// faultScenarios describes the injected fault mixes. Counts scale with
// the per-cell fault-free makespan (the Spec horizon).
var faultScenarios = []struct {
	name string
	spec fault.Spec
}{
	{"kills", fault.Spec{Seed: 1009, Kills: 2}},
	{"slowdowns", fault.Spec{Seed: 2003, Slowdowns: 3, SlowFactor: 4}},
	{"mixed", fault.Spec{Seed: 3001, Kills: 1, Slowdowns: 2, TransferFaults: 2, ModelNoise: 0.2}},
}

// RunFaults executes the robustness study: for each workload and
// scheduler, a fault-free baseline fixes the horizon, then each fault
// scenario is injected (seed-deterministic plans via fault.Generate)
// and the recovered run is validated by the execution oracle.
func RunFaults(scale Scale, progress io.Writer) (*FaultsResult, error) {
	nCPU, nGPU := 5, 2
	dagLayers, dagWidth, tiles := 8, 12, 8
	if scale == Full {
		nCPU, nGPU = 10, 4
		dagLayers, dagWidth, tiles = 16, 20, 14
	}
	m, err := platform.NewHeteroNode("faults", nCPU, 10, nGPU, 100, 64*platform.MiB, 5e9, platform.Config{})
	if err != nil {
		return nil, err
	}
	workloads := []struct {
		name  string
		build func() *runtime.Graph
	}{
		{"randdag", func() *runtime.Graph {
			return randdag.Build(randdag.Params{Layers: dagLayers, Width: dagWidth,
				CommuteShare: 0.3, Machine: m, Seed: 17})
		}},
		{"cholesky", func() *runtime.Graph {
			return dense.Cholesky(dense.Params{Tiles: tiles, TileSize: 512, Machine: m,
				UserPriorities: true})
		}},
	}

	type job struct{ w, s int }
	var jobs []job
	for wi := range workloads {
		for si := range faultSchedulers {
			jobs = append(jobs, job{wi, si})
		}
	}
	rows, err := sweep(len(jobs), progress, func(idx int) ([]FaultCell, error) {
		w := workloads[jobs[idx].w]
		schedName := faultSchedulers[jobs[idx].s]
		seed := SweepSeed(23, idx)

		run := func(plan *fault.Plan) (*runtime.Graph, *sim.Result, error) {
			s, err := NewScheduler(schedName)
			if err != nil {
				return nil, nil, err
			}
			g := w.build()
			res, err := sim.Run(m, g, s, sim.Options{
				Seed: seed, CollectMemEvents: plan != nil, Faults: plan,
			})
			return g, res, err
		}
		_, base, err := run(nil)
		if err != nil {
			return nil, fmt.Errorf("%s/%s baseline: %w", w.name, schedName, err)
		}
		cells := make([]FaultCell, 0, len(faultScenarios))
		for _, sc := range faultScenarios {
			spec := sc.spec
			spec.Horizon = base.Makespan
			plan := fault.Generate(m, spec)
			g, res, err := run(plan)
			if err != nil {
				return nil, fmt.Errorf("%s/%s %s: %w", w.name, schedName, sc.name, err)
			}
			oracleErr := oracle.Check(g, res.Trace, oracle.Options{
				OverflowBytes: res.OverflowBytes,
				Faults: &oracle.FaultCheck{
					MaxRetries: plan.RetryCap(),
					Kills:      res.Faults.AppliedKills,
					Strict:     true,
				},
			})
			if oracleErr != nil {
				return nil, fmt.Errorf("%s/%s %s: oracle: %w", w.name, schedName, sc.name, oracleErr)
			}
			cells = append(cells, FaultCell{
				Workload:       w.name,
				Scheduler:      schedName,
				Scenario:       sc.name,
				Makespan:       res.Makespan,
				Baseline:       base.Makespan,
				DegradationPct: pct(res.Makespan, base.Makespan),
				Stats:          res.Faults,
				OracleOK:       true,
			})
		}
		return cells, nil
	})
	if err != nil {
		return nil, err
	}
	// Regroup so Print's (workload, scenario) blocks are contiguous,
	// with schedulers as rows inside each block.
	r := &FaultsResult{}
	for wi := range workloads {
		for sci := range faultScenarios {
			for si := range faultSchedulers {
				r.Cells = append(r.Cells, rows[wi*len(faultSchedulers)+si][sci])
			}
		}
	}
	return r, nil
}

// Print renders the study as one table per (workload, scenario) block.
func (r *FaultsResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Fault injection & recovery: makespan under kills, slowdowns, transfer failures")
	fmt.Fprintln(w, "(plans are seed-deterministic; every run validated by the execution oracle's")
	fmt.Fprintln(w, " exactly-once-effective rule)")
	last := ""
	for _, c := range r.Cells {
		key := c.Workload + "/" + c.Scenario
		if key != last {
			fmt.Fprintf(w, "\n%-10s scenario=%s\n", c.Workload, c.Scenario)
			rule(w, 96)
			fmt.Fprintf(w, "%-12s %12s %12s %8s %7s %7s %7s %6s %7s %7s\n",
				"scheduler", "makespan(s)", "baseline(s)", "degr%", "kills", "retries", "xfail", "slow", "lost", "oracle")
			last = key
		}
		ok := "pass"
		if !c.OracleOK {
			ok = "FAIL"
		}
		fmt.Fprintf(w, "%-12s %12.4f %12.4f %+7.1f%% %7d %7d %7d %6d %7d %7s\n",
			c.Scheduler, c.Makespan, c.Baseline, c.DegradationPct,
			c.Stats.Kills, c.Stats.Retries, c.Stats.TransferFailures,
			c.Stats.Slowdowns, c.Stats.LostReplicas, ok)
	}
}
