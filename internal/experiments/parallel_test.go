package experiments

import (
	"bytes"
	"fmt"
	"io"
	"testing"
)

// renderSweep runs one sweep experiment with the given worker-pool size
// and returns the rendered table bytes.
func renderSweep(t *testing.T, workers int, run func(progress io.Writer) (interface{ Print(io.Writer) }, error)) []byte {
	t.Helper()
	SetWorkers(workers)
	defer SetWorkers(1)
	r, err := run(io.Discard)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	return buf.Bytes()
}

// TestParallelSweepIdenticalFig5 pins the core determinism contract of
// the sweep runner: the fig5 table rendered from an 8-worker pool is
// byte-identical to the serial run. Under `go test -race` this also
// proves the worker pool is data-race free.
func TestParallelSweepIdenticalFig5(t *testing.T) {
	if testing.Short() {
		t.Skip("fig5 sweep is seconds-long")
	}
	run := func(progress io.Writer) (interface{ Print(io.Writer) }, error) {
		return RunFig5(Quick, progress)
	}
	serial := renderSweep(t, 1, run)
	parallel := renderSweep(t, 8, run)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("fig5 table differs between -j 1 and -j 8:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestParallelSweepIdenticalStress does the same for the random-DAG
// robustness ensemble, whose per-configuration seeds are derived from
// the configuration index (not a shared RNG), so results cannot depend
// on execution order.
func TestParallelSweepIdenticalStress(t *testing.T) {
	run := func(progress io.Writer) (interface{ Print(io.Writer) }, error) {
		return RunStress(Quick, progress)
	}
	serial := renderSweep(t, 1, run)
	parallel := renderSweep(t, 8, run)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("stress table differs between -j 1 and -j 8:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestSweepSeedDerivation pins the (base, index) seed derivation: it
// must be deterministic, index-sensitive and base-sensitive, so every
// sweep configuration owns an independent RNG stream regardless of the
// order the pool executes it in.
func TestSweepSeedDerivation(t *testing.T) {
	if SweepSeed(1, 0) != SweepSeed(1, 0) {
		t.Fatal("SweepSeed is not deterministic")
	}
	seen := map[int64]int{}
	for idx := 0; idx < 1000; idx++ {
		s := SweepSeed(1, idx)
		if prev, dup := seen[s]; dup {
			t.Fatalf("SweepSeed(1, %d) collides with index %d", idx, prev)
		}
		seen[s] = idx
	}
	if SweepSeed(1, 5) == SweepSeed(2, 5) {
		t.Error("SweepSeed ignores the base seed")
	}
}

// TestSweepErrorPropagation checks that a failing configuration aborts
// the sweep and surfaces the error of the earliest config in sweep
// order, serial and parallel alike.
func TestSweepErrorPropagation(t *testing.T) {
	for _, workers := range []int{1, 8} {
		SetWorkers(workers)
		_, err := sweep(16, nil, func(i int) (int, error) {
			if i >= 10 {
				return 0, errInjected(i)
			}
			return i, nil
		})
		SetWorkers(1)
		if err == nil {
			t.Fatalf("workers=%d: sweep swallowed the error", workers)
		}
		if got := err.Error(); got != "injected failure at config 10" {
			t.Errorf("workers=%d: first error in config order not surfaced: %q", workers, got)
		}
	}
}

type errInjected int

func (e errInjected) Error() string {
	return fmt.Sprintf("injected failure at config %d", int(e))
}
