package experiments

import (
	"io"
	"strings"
	"testing"
)

func TestRunHier(t *testing.T) {
	r, err := RunHier(Quick, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatalf("points = %d, want 2 platforms", len(r.Points))
	}
	for _, p := range r.Points {
		for _, s := range SchedulerNames() {
			if p.Times[s] <= 0 {
				t.Errorf("%s/%s: no makespan", p.Platform, s)
			}
		}
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "Hierarchical") {
		t.Error("print output missing header")
	}
}

func TestRunEnergy(t *testing.T) {
	r, err := RunEnergy(Quick, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 9 { // 3 workloads x 3 schedulers
		t.Fatalf("rows = %d, want 9", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Joules <= 0 {
			t.Errorf("%s/%s: non-positive energy %v", row.Workload, row.Scheduler, row.Joules)
		}
		if row.EDP <= 0 || row.EDP < row.Joules*row.Makespan*0.99 {
			t.Errorf("%s/%s: inconsistent EDP", row.Workload, row.Scheduler)
		}
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "EDP") {
		t.Error("print output missing EDP column")
	}
}

func TestRunAblationQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep in -short mode")
	}
	r, err := RunAblation(Quick, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// 10 configs x 3 workloads.
	if len(r.Rows) != 30 {
		t.Fatalf("rows = %d, want 30", len(r.Rows))
	}
	// The default rows anchor the deltas at zero.
	for _, row := range r.Rows {
		if row.Config == "default" && row.DeltaPct != 0 {
			t.Errorf("default config has nonzero delta %v", row.DeltaPct)
		}
		if row.Makespan <= 0 {
			t.Errorf("%s/%s: no makespan", row.Workload, row.Config)
		}
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "no-eviction") {
		t.Error("ablation output missing configurations")
	}
}

func TestRunFig6QuickShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("fig6 sweep in -short mode")
	}
	r, err := RunFig6(Quick, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 6 {
		t.Fatalf("points = %d, want 6", len(r.Points))
	}
	if w := r.Wins("multiprio") + r.Wins("dmdas") + r.Wins("heteroprio"); w != 6 {
		t.Errorf("wins sum to %d, want 6", w)
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "TBFMM") {
		t.Error("fig6 output missing header")
	}
}

func TestRunFig8QuickShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("fig8 sweep in -short mode")
	}
	r, err := RunFig8(Quick, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 12 { // 6 matrices x 2 platforms
		t.Fatalf("points = %d, want 12", len(r.Points))
	}
	for _, p := range r.Points {
		if p.Ratio["dmdas"] != 1 {
			t.Errorf("%s/%s: dmdas self-ratio %v, want 1", p.Platform, p.Matrix, p.Ratio["dmdas"])
		}
	}
	// Headline shape: MultiPrio ahead of Dmdas on average on both
	// platforms (the paper's +31% / +12%).
	if g := r.AverageGain("intel-v100"); g <= 0 {
		t.Errorf("intel-v100 average gain %+.1f%%, want positive", g)
	}
	if g := r.AverageGain("amd-a100"); g <= 0 {
		t.Errorf("amd-a100 average gain %+.1f%%, want positive", g)
	}
}

func TestRunFig5QuickShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("fig5 sweep in -short mode")
	}
	r, err := RunFig5(Quick, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) == 0 {
		t.Fatal("no points")
	}
	for _, p := range r.Points {
		for _, s := range SchedulerNames() {
			if p.GFlops[s] <= 0 {
				t.Errorf("%s/%s/%d: no GFlops for %s", p.Platform, p.Kernel, p.N, s)
			}
		}
	}
	// Headline shape: Dmdas (expert priorities) ahead on the regular
	// potrf runs at these small sizes; MultiPrio at least competitive
	// on geqrf.
	if g := r.AverageGain("potrf", ""); g >= 0 {
		t.Errorf("potrf average gain %+.1f%%, expected Dmdas ahead at small sizes", g)
	}
	if g := r.AverageGain("geqrf", ""); g < -5 {
		t.Errorf("geqrf average gain %+.1f%%, want competitive or better", g)
	}
}

func TestRunStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress ensemble in -short mode")
	}
	r, err := RunStress(Quick, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	totalWins := 0
	for _, n := range stressSchedulers() {
		gm := r.GeoMean[n]
		if gm < 1-1e-9 {
			t.Errorf("%s geomean %v below 1 (normalization broken)", n, gm)
		}
		totalWins += r.Wins[n]
	}
	if totalWins != r.Instances {
		t.Errorf("wins %d != instances %d", totalWins, r.Instances)
	}
	// Robustness headline: multiprio within a few percent of the
	// per-instance best across the ensemble.
	if r.GeoMean["multiprio"] > 1.15 {
		t.Errorf("multiprio geomean %.3f, want <= 1.15", r.GeoMean["multiprio"])
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "geomean") {
		t.Error("stress output missing header")
	}
}

func TestRunOverhead(t *testing.T) {
	r, err := RunOverhead(Quick, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.PushNs <= 0 || row.PopNs <= 0 {
			t.Errorf("%s: non-positive decision cost", row.Scheduler)
		}
		// Sanity ceiling: a scheduling decision far above 1ms/task
		// would dwarf the kernels it schedules.
		if row.PushNs > 1e6 || row.PopNs > 1e6 {
			t.Errorf("%s: pathological decision cost push=%v pop=%v", row.Scheduler, row.PushNs, row.PopNs)
		}
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "overhead") {
		t.Error("output missing header")
	}
}
