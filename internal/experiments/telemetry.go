package experiments

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"io"
	"time"

	"multiprio/internal/apps/dense"
	"multiprio/internal/sim"
	"multiprio/internal/telemetry"
)

// TelemetryRow is one scheduler's measured telemetry cost.
type TelemetryRow struct {
	Scheduler string
	// BareMs, ObservedMs and CaptureMs are the minimum wall-clock
	// milliseconds of a full simulated run over the repetitions: without
	// telemetry, with a telemetry probe observing, and with decision
	// capture plus a JSONL export on top.
	BareMs     float64
	ObservedMs float64
	CaptureMs  float64
	// Neutral reports the canonical-trace SHA-256 equality of the bare
	// and observed runs — the per-experiment re-statement of the golden
	// proof. RunTelemetry fails outright when any row is non-neutral.
	Neutral bool
}

// TelemetryResult is the -exp telemetry study: what live metrics
// aggregation costs on top of a simulated run, and the proof it changes
// nothing. Wall-clock numbers vary with the host; the Neutral column
// and the golden tests are the load-bearing guarantees, the timings
// quantify the "lock-cheap" design claim.
type TelemetryResult struct {
	Tasks int
	Reps  int
	Rows  []TelemetryRow
}

// telemetrySchedulers is the comparison set: the paper's policy, the
// busiest instrumentation (dmdas mapping events), and the cheapest
// baseline.
var telemetrySchedulers = []string{"multiprio", "dmdas", "eager"}

// RunTelemetry measures telemetry overhead on a Cholesky run per
// scheduler and asserts behaviour-neutrality via trace digests.
func RunTelemetry(scale Scale, progress io.Writer) (*TelemetryResult, error) {
	m, err := PlatformByName("intel-v100", 1)
	if err != nil {
		return nil, err
	}
	tiles, reps := 8, 3
	if scale == Full {
		tiles, reps = 16, 5
	}
	build := func() *dense.Params {
		return &dense.Params{Tiles: tiles, TileSize: 960, Machine: m, UserPriorities: true}
	}
	res := &TelemetryResult{Reps: reps}

	runOnce := func(schedName string, opts sim.Options) ([32]byte, time.Duration, error) {
		g := dense.Cholesky(*build())
		res.Tasks = len(g.Tasks)
		s, err := NewScheduler(schedName)
		if err != nil {
			return [32]byte{}, 0, err
		}
		start := time.Now()
		r, err := sim.Run(m, g, s, opts)
		elapsed := time.Since(start)
		if err != nil {
			return [32]byte{}, 0, err
		}
		return sha256.Sum256(r.Trace.Canonical()), elapsed, nil
	}
	minOver := func(schedName string, mkOpts func() sim.Options) ([32]byte, float64, error) {
		var best time.Duration
		var digest [32]byte
		for i := 0; i < reps; i++ {
			d, el, err := runOnce(schedName, mkOpts())
			if err != nil {
				return digest, 0, err
			}
			if i == 0 || el < best {
				best = el
			}
			digest = d
		}
		return digest, float64(best.Nanoseconds()) / 1e6, nil
	}

	for _, name := range telemetrySchedulers {
		bareDigest, bareMs, err := minOver(name, func() sim.Options {
			return sim.Options{Seed: 23}
		})
		if err != nil {
			return nil, fmt.Errorf("telemetry/%s bare: %w", name, err)
		}
		obsDigest, obsMs, err := minOver(name, func() sim.Options {
			return sim.Options{Seed: 23, Observer: telemetry.NewProbe()}
		})
		if err != nil {
			return nil, fmt.Errorf("telemetry/%s observed: %w", name, err)
		}
		// Capture mode adds decision retention and a JSONL export per
		// run — the full export-pipeline cost.
		var capMs float64
		{
			var best time.Duration
			for i := 0; i < reps; i++ {
				p := telemetry.NewProbe(telemetry.WithDecisionCapture(1 << 20))
				g := dense.Cholesky(*build())
				s, err := NewScheduler(name)
				if err != nil {
					return nil, err
				}
				start := time.Now()
				if _, err := sim.Run(m, g, s, sim.Options{Seed: 23, Observer: p}); err != nil {
					return nil, fmt.Errorf("telemetry/%s capture: %w", name, err)
				}
				if err := telemetry.ExportJSONL(io.Discard, p); err != nil {
					return nil, fmt.Errorf("telemetry/%s export: %w", name, err)
				}
				if el := time.Since(start); i == 0 || el < best {
					best = el
				}
			}
			capMs = float64(best.Nanoseconds()) / 1e6
		}

		neutral := bytes.Equal(bareDigest[:], obsDigest[:])
		res.Rows = append(res.Rows, TelemetryRow{Scheduler: name,
			BareMs: bareMs, ObservedMs: obsMs, CaptureMs: capMs, Neutral: neutral})
		if !neutral {
			return nil, fmt.Errorf("telemetry/%s: observed run diverged from bare run — telemetry perturbed scheduling", name)
		}
		if progress != nil {
			fmt.Fprintf(progress, ".")
		}
	}
	if progress != nil {
		fmt.Fprintln(progress)
	}
	return res, nil
}

// Print renders the overhead table.
func (r *TelemetryResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Telemetry overhead: full simulated Cholesky run (%d tasks, min of %d reps, Intel-V100 model)\n", r.Tasks, r.Reps)
	fmt.Fprintf(w, "%-12s %10s %10s %10s %9s %8s\n", "scheduler", "bare ms", "telem ms", "export ms", "delta", "neutral")
	rule(w, 64)
	for _, row := range r.Rows {
		delta := 0.0
		if row.BareMs > 0 {
			delta = (row.ObservedMs - row.BareMs) / row.BareMs * 100
		}
		neutral := "yes"
		if !row.Neutral {
			neutral = "NO"
		}
		fmt.Fprintf(w, "%-12s %10.1f %10.1f %10.1f %8.1f%% %8s\n",
			row.Scheduler, row.BareMs, row.ObservedMs, row.CaptureMs, delta, neutral)
	}
	fmt.Fprintln(w, "neutrality: canonical-trace SHA-256 of bare vs telemetry-observed runs must match")
}
