package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestTable2MatchesPaper(t *testing.T) {
	r, err := RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	want := [2][3]float64{
		{1, 24.0 / 38.0, 9.0 / 38.0},
		{0, 14.0 / 38.0, 29.0 / 38.0},
	}
	for a := 0; a < 2; a++ {
		for i := 0; i < 3; i++ {
			if math.Abs(r.Gain[a][i]-want[a][i]) > 1e-9 {
				t.Errorf("gain[a%d][%s] = %.3f, want %.3f",
					a+1, r.TaskNames[i], r.Gain[a][i], want[a][i])
			}
		}
	}
	if r.HD[0] != 19 || r.HD[1] != 19 {
		t.Errorf("hd = %v, want 19/19", r.HD)
	}
	var sb strings.Builder
	r.Print(&sb)
	// 24/38 = 0.6316: the paper truncates to 0.631, %.3f rounds to 0.632.
	if !strings.Contains(sb.String(), "0.63") {
		t.Errorf("printed table missing the 0.631 gain:\n%s", sb.String())
	}
}

func TestFig3MatchesPaper(t *testing.T) {
	r, err := RunFig3()
	if err != nil {
		t.Fatal(err)
	}
	if r.NODT2 != 2.5 {
		t.Errorf("NOD(T2) = %v, want 2.5", r.NODT2)
	}
	if r.NODT3 != 1.0 {
		t.Errorf("NOD(T3) = %v, want 1", r.NODT3)
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "2.5") {
		t.Error("printed figure missing NOD value")
	}
}

func TestFig4EvictionReducesGPUIdle(t *testing.T) {
	r, err := RunFig4(Quick, false)
	if err != nil {
		t.Fatal(err)
	}
	if r.With.GPUIdlePct >= r.Without.GPUIdlePct {
		t.Errorf("eviction did not reduce GPU idle: %0.1f%% -> %0.1f%%",
			r.Without.GPUIdlePct, r.With.GPUIdlePct)
	}
	if r.With.Makespan >= r.Without.Makespan {
		t.Errorf("eviction did not reduce makespan: %v -> %v",
			r.Without.Makespan, r.With.Makespan)
	}
	if r.With.Evictions == 0 {
		t.Error("eviction-enabled run recorded no evictions")
	}
	if r.Without.Evictions != 0 {
		t.Error("eviction-disabled run recorded evictions")
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "GPU idle") {
		t.Error("printed figure missing idle stats")
	}
}

func TestFig7GeneratorMatchesOpCounts(t *testing.T) {
	r, err := RunFig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 10 {
		t.Fatalf("%d rows, want 10", len(r.Rows))
	}
	for _, row := range r.Rows {
		rel := math.Abs(row.GeneratedGflop-row.OpCount) / row.OpCount
		if rel > 0.10 {
			t.Errorf("%s: generated %.0f vs published %.0f Gflop", row.Name, row.GeneratedGflop, row.OpCount)
		}
	}
	var sb strings.Builder
	r.Print(&sb)
	if !strings.Contains(sb.String(), "Rucci1") {
		t.Error("printed table missing matrices")
	}
}

func TestNewSchedulerNames(t *testing.T) {
	for _, n := range []string{"multiprio", "multiprio-noevict", "dmdas", "dmda", "dm", "heteroprio", "lws", "eager"} {
		s, err := NewScheduler(n)
		if err != nil || s == nil {
			t.Errorf("NewScheduler(%q): %v", n, err)
		}
	}
	if _, err := NewScheduler("bogus"); err == nil {
		t.Error("NewScheduler accepted bogus name")
	}
}

func TestPlatformByName(t *testing.T) {
	for _, n := range []string{"intel-v100", "amd-a100", "smallsim"} {
		m, err := PlatformByName(n, 2)
		if err != nil || m == nil {
			t.Errorf("PlatformByName(%q): %v", n, err)
		}
	}
	if _, err := PlatformByName("bogus", 1); err == nil {
		t.Error("PlatformByName accepted bogus name")
	}
}
