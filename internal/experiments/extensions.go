package experiments

import (
	"fmt"
	"io"

	"multiprio/internal/apps/dense"
	"multiprio/internal/apps/fmm"
	"multiprio/internal/apps/sparseqr"
	"multiprio/internal/runtime"
)

// HierPoint is one (platform, scheduler) hierarchical-Cholesky run.
type HierPoint struct {
	Platform string
	Times    map[string]float64
}

// HierResult explores the paper's Section VII outlook on hierarchical
// tasks: a blocked Cholesky whose panel operations expand into fine
// CPU-sized subgraphs while trailing updates stay coarse GPU-sized —
// "such scenarios are similar to QR_MUMPS, and that's why we expect
// better results than Dmdas when scheduling hierarchical tasks".
type HierResult struct {
	Blocks, SubTiles, TileSize int
	Points                     []HierPoint
}

// RunHier executes the hierarchical workload under the comparison set.
func RunHier(scale Scale, progress io.Writer) (*HierResult, error) {
	blocks, subTiles, tileSize := 6, 5, 512
	if scale == Full {
		blocks, subTiles, tileSize = 10, 6, 512
	}
	res := &HierResult{Blocks: blocks, SubTiles: subTiles, TileSize: tileSize}
	for _, pf := range []string{"intel-v100", "amd-a100"} {
		m, err := PlatformByName(pf, 1)
		if err != nil {
			return nil, err
		}
		pt := HierPoint{Platform: pf, Times: make(map[string]float64)}
		for _, schedName := range SchedulerNames() {
			// No user priorities: the paper's outlook likens the
			// hierarchical scenario to QR_MUMPS, where fine-grained
			// priorities are not user-provided.
			g := dense.HierarchicalCholesky(dense.HierParams{
				Blocks: blocks, SubTiles: subTiles, TileSize: tileSize,
				Machine: m,
			})
			r, err := runOne(m, g, schedName, 1)
			if err != nil {
				return nil, fmt.Errorf("hier %s %s: %w", pf, schedName, err)
			}
			pt.Times[schedName] = r.Makespan
			if progress != nil {
				fmt.Fprintf(progress, ".")
			}
		}
		res.Points = append(res.Points, pt)
	}
	if progress != nil {
		fmt.Fprintln(progress)
	}
	return res, nil
}

// Print renders the hierarchical comparison.
func (r *HierResult) Print(w io.Writer) {
	order := r.Blocks * r.SubTiles * r.TileSize
	fmt.Fprintf(w, "Hierarchical Cholesky (paper §VII outlook): order %d = %d blocks × %d×%d tiles of %d\n",
		order, r.Blocks, r.SubTiles, r.SubTiles, r.TileSize)
	fmt.Fprintf(w, "%-12s | %11s %11s %11s | multiprio vs dmdas\n", "platform", "multiprio", "dmdas", "heteroprio")
	rule(w, 76)
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-12s | %10.4fs %10.4fs %10.4fs | %+6.1f%%\n",
			p.Platform, p.Times["multiprio"], p.Times["dmdas"], p.Times["heteroprio"],
			pct(p.Times["dmdas"], p.Times["multiprio"])) // positive = multiprio faster
	}
	fmt.Fprintln(w, "paper conjecture: MultiPrio ahead of Dmdas on hierarchical-granularity DAGs")
}

// EnergyRow is one (workload, scheduler) energy measurement.
type EnergyRow struct {
	Workload  string
	Scheduler string
	Makespan  float64
	Joules    float64
	EDP       float64
}

// EnergyResult explores the paper's Section VII energy outlook with the
// platform power model: per-scheduler energy and energy-delay product
// on the three application classes.
type EnergyResult struct {
	Rows []EnergyRow
}

// RunEnergy measures makespan, energy and EDP per scheduler.
func RunEnergy(scale Scale, progress io.Writer) (*EnergyResult, error) {
	m, err := PlatformByName("intel-v100", 1)
	if err != nil {
		return nil, err
	}
	tiles := 20
	particles := 300_000
	matrix := sparseqr.Matrices[2]
	if scale == Full {
		tiles = 32
		particles = 1_000_000
		matrix = sparseqr.Matrices[5]
	}
	sparseTree := sparseqr.BuildTree(matrix)
	workloads := []struct {
		name  string
		build func() *runtime.Graph
	}{
		{"cholesky", func() *runtime.Graph {
			return dense.Cholesky(dense.Params{Tiles: tiles, TileSize: 960, Machine: m, UserPriorities: true})
		}},
		{"fmm", func() *runtime.Graph {
			return fmm.Build(fmm.Params{Particles: particles, Height: 6, Clustered: true, Machine: m, Seed: 9})
		}},
		{"sparseqr-" + matrix.Name, func() *runtime.Graph {
			return sparseqr.BuildFromTree(sparseTree, sparseqr.Params{Machine: m})
		}},
	}
	res := &EnergyResult{}
	for _, wl := range workloads {
		for _, schedName := range SchedulerNames() {
			g := wl.build()
			r, err := runOne(m, g, schedName, 1)
			if err != nil {
				return nil, fmt.Errorf("energy %s %s: %w", wl.name, schedName, err)
			}
			e := r.Trace.Energy()
			res.Rows = append(res.Rows, EnergyRow{
				Workload: wl.name, Scheduler: schedName,
				Makespan: r.Makespan, Joules: e.Total, EDP: e.EDP(),
			})
			if progress != nil {
				fmt.Fprintf(progress, ".")
			}
		}
	}
	if progress != nil {
		fmt.Fprintln(progress)
	}
	return res, nil
}

// Print renders the energy table.
func (r *EnergyResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Energy exploration (paper §VII outlook), Intel-V100 power model")
	fmt.Fprintf(w, "%-22s %-12s %10s %10s %12s\n", "workload", "scheduler", "makespan", "energy", "EDP")
	rule(w, 72)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-22s %-12s %9.3fs %8.1fJ %10.2fJs\n",
			row.Workload, row.Scheduler, row.Makespan, row.Joules, row.EDP)
	}
}
