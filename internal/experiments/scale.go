package experiments

import (
	"fmt"
	"io"
	"time"

	"multiprio/internal/apps/randdag"
	"multiprio/internal/oracle"
	"multiprio/internal/sim"
)

// ScaleRow is one (size, scheduler) point of the scaling study.
type ScaleRow struct {
	Tasks     int
	Scheduler string
	// BuildSec is the wall-clock graph construction time (SubmitBatch
	// plus dependency inference); RunSec is the wall-clock simulator
	// execution time. TasksPerSec is Tasks/RunSec — engine throughput,
	// the number this PR's regression gate watches.
	BuildSec    float64
	RunSec      float64
	TasksPerSec float64
	// Events is the discrete-event count of the run and Makespan the
	// simulated completion time; both are determinism anchors (same
	// seed, same numbers on any machine).
	Events   int64
	Makespan float64
	// Checked marks rows whose full trace (with memory events) was
	// validated by the execution oracle.
	Checked bool
}

// ScaleResult is the million-task scaling curve: engine throughput on
// layered random DAGs of 10^3..10^6 tasks.
type ScaleResult struct {
	Rows []ScaleRow
}

// scaleSchedulers spans the cost spectrum: eager bounds pure engine
// mechanics, multiprio is the paper's policy, dmdas the HEFT-style
// comparison point.
func scaleSchedulers() []string { return []string{"eager", "multiprio", "dmdas"} }

// scaleParams is the randdag shape of one size: fixed width 50, depth
// scaled to hit the task count, mixed affinity, mild edge density.
func scaleParams(tasks int) randdag.Params {
	return randdag.Params{Layers: tasks / 50, Width: 50, EdgeProb: 0.1, Seed: 42}
}

// scaleSimSeed keeps the runs reproducible and comparable to the bench
// suite's BenchmarkSimThroughput1e5 (same graph seed, same sim seed).
const scaleSimSeed = 7

// RunScale measures end-to-end engine throughput across four orders of
// magnitude. Quick covers 10^3..10^5 with every run oracle-checked
// (memory events on, full coherence replay); Full adds the 10^6-task
// point, run without the oracle replay so the measurement reflects the
// engine, not the checker. Rows run serially — wall-clock timing on a
// shared worker pool would measure the pool, not the engine.
func RunScale(scale Scale, progress io.Writer) (*ScaleResult, error) {
	m, err := PlatformByName("intel-v100", 1)
	if err != nil {
		return nil, err
	}
	sizes := []int{1_000, 10_000, 100_000}
	if scale == Full {
		sizes = append(sizes, 1_000_000)
	}
	res := &ScaleResult{}
	for _, n := range sizes {
		for _, name := range scaleSchedulers() {
			if progress != nil {
				fmt.Fprintf(progress, "scale %d %s...\n", n, name)
			}
			p := scaleParams(n)
			p.Machine = m
			buildStart := time.Now()
			g := randdag.Build(p)
			buildSec := time.Since(buildStart).Seconds()
			if len(g.Tasks) != n {
				return nil, fmt.Errorf("scale: built %d tasks, want %d", len(g.Tasks), n)
			}
			s, err := NewScheduler(name)
			if err != nil {
				return nil, err
			}
			check := n <= 100_000 && scale == Quick
			runStart := time.Now()
			r, err := sim.Run(m, g, s, sim.Options{Seed: scaleSimSeed, CollectMemEvents: check})
			if err != nil {
				return nil, fmt.Errorf("scale %d %s: %w", n, name, err)
			}
			runSec := time.Since(runStart).Seconds()
			if check {
				if err := oracle.Check(g, r.Trace, oracle.Options{OverflowBytes: r.OverflowBytes}); err != nil {
					return nil, fmt.Errorf("scale %d %s: oracle: %w", n, name, err)
				}
			}
			res.Rows = append(res.Rows, ScaleRow{
				Tasks: n, Scheduler: name,
				BuildSec: buildSec, RunSec: runSec,
				TasksPerSec: float64(n) / runSec,
				Events:      r.Events, Makespan: r.Makespan,
				Checked: check,
			})
		}
	}
	return res, nil
}

// Print renders the scaling table.
func (r *ScaleResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Scaling curve: layered random DAGs (width 50), Intel-V100, sim seed 7")
	fmt.Fprintf(w, "%10s %-10s %10s %10s %12s %12s %12s %8s\n",
		"tasks", "scheduler", "build s", "run s", "tasks/s", "events", "makespan", "oracle")
	rule(w, 92)
	for _, row := range r.Rows {
		checked := "-"
		if row.Checked {
			checked = "ok"
		}
		fmt.Fprintf(w, "%10d %-10s %10.3f %10.3f %12.0f %12d %12.4f %8s\n",
			row.Tasks, row.Scheduler, row.BuildSec, row.RunSec,
			row.TasksPerSec, row.Events, row.Makespan, checked)
	}
}
