package experiments

import (
	"fmt"
	"io"
	"math"

	"multiprio/internal/apps/dense"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
)

// Fig5Point is one (kernel, platform, matrix size) measurement: the
// best-performing tile size per scheduler, as the paper selects "the
// best performing configuration to get a fair view".
type Fig5Point struct {
	Kernel   string
	Platform string
	N        int // matrix order
	// PerSched maps scheduler -> best GFlop/s (over tile sizes) and
	// the tile that achieved it.
	GFlops   map[string]float64
	BestTile map[string]int
	// GainPct is MultiPrio's gain over Dmdas (the paper's headline
	// metric for this figure).
	GainPct float64
}

// Fig5Result reproduces the paper's Fig. 5: dense potrf/getrf/geqrf
// across matrix sizes on both platforms, MultiPrio gains/losses over
// Dmdas (which receives CHAMELEON-style expert priorities).
type Fig5Result struct {
	Points []Fig5Point
	// MaxTiles caps the tile count per dimension (documented coverage
	// bound: configurations needing more tiles are skipped).
	MaxTiles int
}

type fig5Platform struct {
	name  string
	tiles []int
	sizes []int
}

func fig5Config(scale Scale) []fig5Platform {
	if scale == Quick {
		return []fig5Platform{
			{name: "intel-v100", tiles: []int{640, 1280, 2560}, sizes: []int{16000, 32000}},
			{name: "amd-a100", tiles: []int{960, 1920, 3840}, sizes: []int{24000, 48000}},
		}
	}
	return []fig5Platform{
		{name: "intel-v100", tiles: []int{640, 1280, 2560}, sizes: []int{16000, 32000, 48000, 64000, 96000, 115200}},
		{name: "amd-a100", tiles: []int{960, 1920, 3840}, sizes: []int{24000, 48000, 72000, 96000, 120000}},
	}
}

// fig5BaseSeed is the base of the per-configuration seed derivation.
const fig5BaseSeed = 1

// RunFig5 sweeps kernels × platforms × sizes × tiles × schedulers. The
// grid is enumerated up front and executed on the sweep worker pool
// (SetWorkers); the reduction to best-tile points runs serially in
// configuration order, so the rendered table does not depend on the
// pool size.
func RunFig5(scale Scale, progress io.Writer) (*Fig5Result, error) {
	maxTiles := 40
	if scale == Full {
		maxTiles = 56
	}
	res := &Fig5Result{MaxTiles: maxTiles}
	builders := []struct {
		kernel string
		build  func(dense.Params) *runtime.Graph
	}{
		{"potrf", dense.Cholesky},
		{"getrf", dense.LU},
		{"geqrf", dense.QR},
	}
	type job struct {
		point       int // index into res.Points
		platform    string
		m           *platform.Machine
		kernel      string
		build       func(dense.Params) *runtime.Graph
		n           int
		tile, tiles int
		sched       string
	}
	var jobs []job
	for _, pf := range fig5Config(scale) {
		m, err := PlatformByName(pf.name, 1)
		if err != nil {
			return nil, err
		}
		for _, b := range builders {
			for _, n := range pf.sizes {
				res.Points = append(res.Points, Fig5Point{
					Kernel: b.kernel, Platform: pf.name, N: n,
					GFlops:   make(map[string]float64),
					BestTile: make(map[string]int),
				})
				for _, tile := range pf.tiles {
					tiles := n / tile
					if tiles < 4 || tiles > maxTiles {
						continue
					}
					for _, schedName := range SchedulerNames() {
						jobs = append(jobs, job{
							point: len(res.Points) - 1, platform: pf.name, m: m,
							kernel: b.kernel, build: b.build, n: n,
							tile: tile, tiles: tiles, sched: schedName,
						})
					}
				}
			}
		}
	}
	gfs, err := sweep(len(jobs), progress, func(i int) (float64, error) {
		j := jobs[i]
		p := dense.Params{
			Tiles: j.tiles, TileSize: j.tile, Machine: j.m,
			// Expert priorities are what dmdas consumes; providing them
			// to all schedulers is harmless (only dmdas reads
			// Task.Priority).
			UserPriorities: true,
		}
		g := j.build(p)
		r, err := runOne(j.m, g, j.sched, SweepSeed(fig5BaseSeed, i))
		if err != nil {
			return 0, fmt.Errorf("fig5 %s %s n=%d tile=%d %s: %w",
				j.platform, j.kernel, j.n, j.tile, j.sched, err)
		}
		return gflops(g.TotalFlops(), r.Makespan), nil
	})
	if err != nil {
		return nil, err
	}
	for i, j := range jobs {
		pt := &res.Points[j.point]
		if gfs[i] > pt.GFlops[j.sched] {
			pt.GFlops[j.sched] = gfs[i]
			pt.BestTile[j.sched] = j.tile
		}
	}
	for i := range res.Points {
		pt := &res.Points[i]
		if pt.GFlops["dmdas"] > 0 {
			pt.GainPct = pct(pt.GFlops["multiprio"], pt.GFlops["dmdas"])
		}
	}
	if progress != nil {
		fmt.Fprintln(progress)
	}
	return res, nil
}

// Print renders the figure as a table of GFlop/s and MultiPrio-vs-Dmdas
// gains.
func (r *Fig5Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig. 5: dense kernels, best tile per scheduler, MultiPrio gain over Dmdas")
	fmt.Fprintf(w, "(configurations needing more than %d tiles per dimension are skipped)\n", r.MaxTiles)
	header := fmt.Sprintf("%-10s %-10s %8s | %12s %12s %12s | %8s",
		"platform", "kernel", "N", "multiprio", "dmdas", "heteroprio", "gain%%")
	fmt.Fprintf(w, header+"\n")
	rule(w, 90)
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-10s %-10s %8d | %9.0f(%4d) %9.0f(%4d) %9.0f(%4d) | %+7.1f%%\n",
			p.Platform, p.Kernel, p.N,
			p.GFlops["multiprio"], p.BestTile["multiprio"],
			p.GFlops["dmdas"], p.BestTile["dmdas"],
			p.GFlops["heteroprio"], p.BestTile["heteroprio"],
			p.GainPct)
	}
}

// AverageGain returns the mean MultiPrio-vs-Dmdas gain per kernel.
func (r *Fig5Result) AverageGain(kernel, platformName string) float64 {
	var sum float64
	var n int
	for _, p := range r.Points {
		if (kernel == "" || p.Kernel == kernel) && (platformName == "" || p.Platform == platformName) {
			if !math.IsNaN(p.GainPct) {
				sum += p.GainPct
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
