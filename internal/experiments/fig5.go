package experiments

import (
	"fmt"
	"io"
	"math"

	"multiprio/internal/apps/dense"
	"multiprio/internal/runtime"
)

// Fig5Point is one (kernel, platform, matrix size) measurement: the
// best-performing tile size per scheduler, as the paper selects "the
// best performing configuration to get a fair view".
type Fig5Point struct {
	Kernel   string
	Platform string
	N        int // matrix order
	// PerSched maps scheduler -> best GFlop/s (over tile sizes) and
	// the tile that achieved it.
	GFlops   map[string]float64
	BestTile map[string]int
	// GainPct is MultiPrio's gain over Dmdas (the paper's headline
	// metric for this figure).
	GainPct float64
}

// Fig5Result reproduces the paper's Fig. 5: dense potrf/getrf/geqrf
// across matrix sizes on both platforms, MultiPrio gains/losses over
// Dmdas (which receives CHAMELEON-style expert priorities).
type Fig5Result struct {
	Points []Fig5Point
	// MaxTiles caps the tile count per dimension (documented coverage
	// bound: configurations needing more tiles are skipped).
	MaxTiles int
}

type fig5Platform struct {
	name  string
	tiles []int
	sizes []int
}

func fig5Config(scale Scale) []fig5Platform {
	if scale == Quick {
		return []fig5Platform{
			{name: "intel-v100", tiles: []int{640, 1280, 2560}, sizes: []int{16000, 32000}},
			{name: "amd-a100", tiles: []int{960, 1920, 3840}, sizes: []int{24000, 48000}},
		}
	}
	return []fig5Platform{
		{name: "intel-v100", tiles: []int{640, 1280, 2560}, sizes: []int{16000, 32000, 48000, 64000, 96000, 115200}},
		{name: "amd-a100", tiles: []int{960, 1920, 3840}, sizes: []int{24000, 48000, 72000, 96000, 120000}},
	}
}

// RunFig5 sweeps kernels × platforms × sizes × tiles × schedulers.
func RunFig5(scale Scale, progress io.Writer) (*Fig5Result, error) {
	maxTiles := 40
	if scale == Full {
		maxTiles = 56
	}
	res := &Fig5Result{MaxTiles: maxTiles}
	builders := []struct {
		kernel string
		build  func(dense.Params) *runtime.Graph
	}{
		{"potrf", dense.Cholesky},
		{"getrf", dense.LU},
		{"geqrf", dense.QR},
	}
	for _, pf := range fig5Config(scale) {
		m, err := PlatformByName(pf.name, 1)
		if err != nil {
			return nil, err
		}
		for _, b := range builders {
			for _, n := range pf.sizes {
				pt := Fig5Point{
					Kernel: b.kernel, Platform: pf.name, N: n,
					GFlops:   make(map[string]float64),
					BestTile: make(map[string]int),
				}
				for _, tile := range pf.tiles {
					tiles := n / tile
					if tiles < 4 || tiles > maxTiles {
						continue
					}
					for _, schedName := range SchedulerNames() {
						p := dense.Params{
							Tiles: tiles, TileSize: tile, Machine: m,
							// Expert priorities are what dmdas consumes;
							// providing them to all schedulers is harmless
							// (only dmdas reads Task.Priority).
							UserPriorities: true,
						}
						g := b.build(p)
						r, err := runOne(m, g, schedName, 1)
						if err != nil {
							return nil, fmt.Errorf("fig5 %s %s n=%d tile=%d %s: %w",
								pf.name, b.kernel, n, tile, schedName, err)
						}
						gf := gflops(g.TotalFlops(), r.Makespan)
						if gf > pt.GFlops[schedName] {
							pt.GFlops[schedName] = gf
							pt.BestTile[schedName] = tile
						}
					}
					if progress != nil {
						fmt.Fprintf(progress, ".")
					}
				}
				if pt.GFlops["dmdas"] > 0 {
					pt.GainPct = pct(pt.GFlops["multiprio"], pt.GFlops["dmdas"])
				}
				res.Points = append(res.Points, pt)
			}
		}
	}
	if progress != nil {
		fmt.Fprintln(progress)
	}
	return res, nil
}

// Print renders the figure as a table of GFlop/s and MultiPrio-vs-Dmdas
// gains.
func (r *Fig5Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig. 5: dense kernels, best tile per scheduler, MultiPrio gain over Dmdas")
	fmt.Fprintf(w, "(configurations needing more than %d tiles per dimension are skipped)\n", r.MaxTiles)
	header := fmt.Sprintf("%-10s %-10s %8s | %12s %12s %12s | %8s",
		"platform", "kernel", "N", "multiprio", "dmdas", "heteroprio", "gain%%")
	fmt.Fprintf(w, header+"\n")
	rule(w, 90)
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-10s %-10s %8d | %9.0f(%4d) %9.0f(%4d) %9.0f(%4d) | %+7.1f%%\n",
			p.Platform, p.Kernel, p.N,
			p.GFlops["multiprio"], p.BestTile["multiprio"],
			p.GFlops["dmdas"], p.BestTile["dmdas"],
			p.GFlops["heteroprio"], p.BestTile["heteroprio"],
			p.GainPct)
	}
}

// AverageGain returns the mean MultiPrio-vs-Dmdas gain per kernel.
func (r *Fig5Result) AverageGain(kernel, platformName string) float64 {
	var sum float64
	var n int
	for _, p := range r.Points {
		if (kernel == "" || p.Kernel == kernel) && (platformName == "" || p.Platform == platformName) {
			if !math.IsNaN(p.GainPct) {
				sum += p.GainPct
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
