// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Each driver
// returns a structured result and renders a table in the layout of the
// corresponding paper artifact; cmd/multiprio-bench exposes them behind
// flags and bench_test.go wraps scaled-down variants as Go benchmarks.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/sched/registry"
	"multiprio/internal/sim"

	_ "multiprio/internal/sched/all" // register every policy
)

// observerHolder wraps the interface so atomic.Pointer can carry a nil
// observer distinctly from "never set".
type observerHolder struct{ o runtime.RunObserver }

var curObserver atomic.Pointer[observerHolder]

// SetObserver attaches a run observer (typically a *telemetry.Probe) to
// every engine run the experiment drivers execute through runOne and
// the streaming study — the hook behind multiprio-bench's -serve and
// -export flags. Like SetWorkers it is process-global; set it before
// launching experiments. Pass nil to detach.
func SetObserver(o runtime.RunObserver) { curObserver.Store(&observerHolder{o: o}) }

// Observer returns the currently attached run observer, or nil.
func Observer() runtime.RunObserver {
	if h := curObserver.Load(); h != nil {
		return h.o
	}
	return nil
}

// Scale selects experiment sizing.
type Scale int

const (
	// Quick runs in seconds per figure: reduced sizes, same shapes.
	Quick Scale = iota
	// Full approximates the paper's problem sizes (minutes per figure).
	Full
)

// NewScheduler instantiates a policy by name through the central
// registry (internal/sched/registry); run `multiprio-bench -list` or
// see registry.Names() for the valid set.
func NewScheduler(name string) (runtime.Scheduler, error) {
	return registry.New(name, registry.Options{})
}

// SchedulerNames lists the comparison set of the paper's Section VI.
func SchedulerNames() []string { return []string{"multiprio", "dmdas", "heteroprio"} }

// PlatformByName builds one of the two evaluation platforms.
func PlatformByName(name string, streams int) (*platform.Machine, error) {
	cfg := platform.Config{GPUStreams: streams}
	switch name {
	case "intel-v100":
		return platform.IntelV100(cfg), nil
	case "amd-a100":
		return platform.AMDA100(cfg), nil
	case "smallsim":
		return platform.SmallSim(cfg), nil
	default:
		return nil, fmt.Errorf("experiments: unknown platform %q (intel-v100, amd-a100, smallsim)", name)
	}
}

// runOne executes graph g on m under the named scheduler and returns the
// simulation result. The graph must be freshly built (or reset).
func runOne(m *platform.Machine, g *runtime.Graph, schedName string, seed int64) (*sim.Result, error) {
	s, err := NewScheduler(schedName)
	if err != nil {
		return nil, err
	}
	return sim.Run(m, g, s, sim.Options{Seed: seed, Observer: Observer()})
}

// gflops converts a flop count and a runtime to GFlop/s.
func gflops(flops, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return flops / seconds / 1e9
}

// pct renders a relative difference in percent: (a-b)/b.
func pct(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * (a - b) / b
}

// sortedMapKeys returns the sorted keys of a string-keyed map for
// deterministic table rendering.
func sortedMapKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// rule prints a horizontal rule of width n.
func rule(w io.Writer, n int) {
	for i := 0; i < n; i++ {
		fmt.Fprint(w, "-")
	}
	fmt.Fprintln(w)
}
