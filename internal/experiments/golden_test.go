package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current output")

// checkGolden compares got against testdata/<name> and fails with the
// first divergent line. Running `go test ./internal/experiments -update`
// rewrites the files after an intentional output change.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create it): %v", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	gl, wl := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w []byte
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if !bytes.Equal(g, w) {
			t.Fatalf("%s differs at line %d:\n got: %s\nwant: %s", name, i+1, g, w)
		}
	}
}

// TestGoldenTable2 pins the Table II worked example: the gain values
// flow through the actual scheduler code path, so any regression in the
// gain heuristic shows up as a diff here.
func TestGoldenTable2(t *testing.T) {
	r, err := RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	r.Print(&b)
	checkGolden(t, "table2.golden", b.Bytes())
}

// TestGoldenFig3 pins the NOD criticality worked example (paper values
// 2.5 and 1.0).
func TestGoldenFig3(t *testing.T) {
	r, err := RunFig3()
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	r.Print(&b)
	checkGolden(t, "fig3.golden", b.Bytes())
}

// TestGoldenFig4Quick pins the quick-scale eviction experiment summary.
// Beyond the headline numbers, this is a standing end-to-end
// determinism check: the simulator must reproduce the exact makespans
// and eviction counts on every run.
func TestGoldenFig4Quick(t *testing.T) {
	r, err := RunFig4(Quick, false)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	r.Print(&b)
	checkGolden(t, "fig4_quick.golden", b.Bytes())
}
