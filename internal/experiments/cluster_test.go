package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestRunClusterQuick runs the whole scaling study at quick scale:
// every cell must be oracle-validated (multi-node cells through the
// inter-node transfer replay) and multi-node runs must actually use the
// interconnect.
func TestRunClusterQuick(t *testing.T) {
	r, err := RunCluster(Quick, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	want := len(clusterNodeCounts) * len(clusterInners) * 2
	if len(r.Cells) != want {
		t.Fatalf("got %d cells, want %d", len(r.Cells), want)
	}
	for _, c := range r.Cells {
		if !c.OracleOK {
			t.Errorf("%s/%s on %d nodes not oracle-validated", c.Workload, c.Inner, c.Nodes)
		}
		if c.Makespan <= 0 {
			t.Errorf("%s/%s on %d nodes has makespan %g", c.Workload, c.Inner, c.Nodes, c.Makespan)
		}
		if c.Nodes == 1 && c.InterBytes != 0 {
			t.Errorf("%s/%s single node reports %d inter-node bytes", c.Workload, c.Inner, c.InterBytes)
		}
		if c.Nodes > 1 && c.InterBytes == 0 {
			t.Errorf("%s/%s on %d nodes moved no data across the interconnect", c.Workload, c.Inner, c.Nodes)
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	out := buf.String()
	for _, frag := range []string{"Cluster scaling", "nodes", "oracle", "pass"} {
		if !strings.Contains(out, frag) {
			t.Errorf("table missing %q:\n%s", frag, out)
		}
	}
	if strings.Contains(out, "FAIL") {
		t.Errorf("table reports oracle failures:\n%s", out)
	}
}

// TestParallelSweepIdenticalCluster pins the -j determinism contract
// for the cluster study: the table rendered from an 8-worker pool is
// byte-identical to the serial run.
func TestParallelSweepIdenticalCluster(t *testing.T) {
	run := func(progress io.Writer) (interface{ Print(io.Writer) }, error) {
		return RunCluster(Quick, progress)
	}
	serial := renderSweep(t, 1, run)
	parallel := renderSweep(t, 8, run)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("cluster table differs between -j 1 and -j 8:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}
