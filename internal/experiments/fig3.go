package experiments

import (
	"fmt"
	"io"

	"multiprio/internal/core"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
)

// Fig3Result reproduces the paper's Fig. 3: the NOD criticality worked
// example where two ready tasks T2, T3 score 2.5 and 1.0.
type Fig3Result struct {
	NODT2 float64
	NODT3 float64
}

// RunFig3 builds the example DAG and evaluates NOD through the
// scheduler's code path.
func RunFig3() (*Fig3Result, error) {
	m := platform.CPUOnly(2)
	g := runtime.NewGraph()
	sched := core.New(core.Defaults())
	sched.Init(runtime.NewEnv(m, g))

	mk := func(kind string) *runtime.Task {
		return g.Submit(&runtime.Task{Kind: kind, Cost: []float64{1}})
	}
	t2, t3 := mk("T2"), mk("T3")
	t4, t5, t6, t7 := mk("T4"), mk("T5"), mk("T6"), mk("T7")
	g.Declare(t2, t4)
	g.Declare(t2, t5)
	g.Declare(t2, t6)
	g.Declare(t3, t6)
	g.Declare(t3, t7)
	g.Declare(t6, t7)

	return &Fig3Result{
		NODT2: sched.NOD(t2, platform.ArchCPU),
		NODT3: sched.NOD(t3, platform.ArchCPU),
	}, nil
}

// Print renders the figure's annotation.
func (r *Fig3Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Fig. 3: NOD criticality worked example")
	fmt.Fprintf(w, "NOD(T2) = %.2f (paper: 2.5)\n", r.NODT2)
	fmt.Fprintf(w, "NOD(T3) = %.2f (paper: 1.0)\n", r.NODT3)
	fmt.Fprintln(w, "T2 has the higher criticality: releasing it unlocks more downstream work.")
}
