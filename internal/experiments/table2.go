package experiments

import (
	"fmt"
	"io"

	"multiprio/internal/core"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
)

// Table2Result reproduces the paper's Table II: the gain-heuristic
// worked example with three tasks and two architecture types.
type Table2Result struct {
	TaskNames []string
	// Delta[a][i] is δ(t_i, a) in ms; Gain[a][i] the computed gain.
	Delta [2][3]float64
	Gain  [2][3]float64
	HD    [2]float64
}

// RunTable2 recomputes Table II through the actual scheduler code path.
func RunTable2() (*Table2Result, error) {
	m := &platform.Machine{
		Name:  "table2",
		Archs: []platform.Arch{{Name: "a1"}, {Name: "a2"}},
		Mems:  []platform.MemNode{{Name: "m1"}, {Name: "m2"}},
		Units: []platform.Unit{
			{Name: "w1", Arch: 0, Mem: 0, SpeedFactor: 1},
			{Name: "w2", Arch: 1, Mem: 1, SpeedFactor: 1},
		},
		LinkMatrix: [][]platform.Link{
			{{}, {BandwidthBytes: 1e9}},
			{{BandwidthBytes: 1e9}, {}},
		},
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	g := runtime.NewGraph()
	sched := core.New(core.Defaults())
	sched.Init(runtime.NewEnv(m, g))

	res := &Table2Result{TaskNames: []string{"t_A", "t_B", "t_C"}}
	res.Delta = [2][3]float64{{1, 5, 20}, {20, 10, 10}}
	tasks := make([]*runtime.Task, 3)
	for i := range tasks {
		tasks[i] = g.Submit(&runtime.Task{
			Kind: res.TaskNames[i],
			Cost: []float64{res.Delta[0][i], res.Delta[1][i]},
		})
		sched.Push(tasks[i])
	}
	for a := 0; a < 2; a++ {
		res.HD[a] = sched.HD(platform.ArchID(a))
		for i := range tasks {
			res.Gain[a][i] = sched.Gain(tasks[i], platform.ArchID(a))
		}
	}
	return res, nil
}

// Print renders the table in the paper's layout.
func (r *Table2Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table II: gain heuristic worked example (3 tasks, 2 architecture types)")
	fmt.Fprintf(w, "%-14s", "")
	for _, n := range r.TaskNames {
		fmt.Fprintf(w, "%10s", n)
	}
	fmt.Fprintln(w)
	rule(w, 44)
	for a := 0; a < 2; a++ {
		fmt.Fprintf(w, "delta(t, a%d)  ", a+1)
		for i := 0; i < 3; i++ {
			fmt.Fprintf(w, "%8.0fms", r.Delta[a][i])
		}
		fmt.Fprintln(w)
	}
	for a := 0; a < 2; a++ {
		fmt.Fprintf(w, "gain(t, a%d)   ", a+1)
		for i := 0; i < 3; i++ {
			fmt.Fprintf(w, "%10.3f", r.Gain[a][i])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "hd(a1) = hd(a2) = %.0f\n", r.HD[0])
}
