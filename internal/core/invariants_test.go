package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"multiprio/internal/platform"
	"multiprio/internal/runtime"
)

// TestQuickSchedulerInvariants drives MultiPrio with random push/pop
// interleavings and checks the bookkeeping invariants after every step:
// ready counts are non-negative and match heap sizes, best-remaining
// work stays non-negative, every pushed task is eventually claimable by
// a worker of an eligible architecture, and no task is ever lost.
func TestQuickSchedulerInvariants(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := twoArchMachine(2, 2) // mems: ram, gpu0, gpu1
		g := runtime.NewGraph()
		s, _ := newSched(m, g, Defaults())

		workers := []runtime.WorkerInfo{
			{ID: 0, Arch: 0, Mem: 0},
			{ID: 1, Arch: 0, Mem: 0},
			{ID: 2, Arch: 1, Mem: 1},
			{ID: 3, Arch: 1, Mem: 2},
		}
		pushed, claimed := 0, 0
		for _, op := range ops {
			if op%3 == 0 {
				var cost []float64
				switch rng.Intn(3) {
				case 0:
					cost = []float64{0.5 + rng.Float64(), 0}
				case 1:
					cost = []float64{0, 0.1 + rng.Float64()}
				default:
					cost = []float64{0.5 + rng.Float64(), 0.05 + 0.1*rng.Float64()}
				}
				s.Push(g.Submit(&runtime.Task{Kind: "k", Cost: cost}))
				pushed++
			} else {
				w := workers[rng.Intn(len(workers))]
				if got := s.Pop(w); got != nil {
					if !got.Claimed() {
						return false
					}
					if !got.CanRun(w.Arch) {
						return false
					}
					claimed++
				}
			}
			// Invariants after every operation.
			for mem := 0; mem < 3; mem++ {
				rc := s.ReadyCount(platform.MemID(mem))
				if rc < 0 || rc != s.heaps[mem].Len() {
					t.Logf("ready count %d != heap len %d on mem %d", rc, s.heaps[mem].Len(), mem)
					return false
				}
				if s.BestRemainingWork(platform.MemID(mem)) < -1e-9 {
					return false
				}
				if err := s.heaps[mem].Verify(); err != nil {
					t.Log(err)
					return false
				}
			}
		}
		// Drain: every remaining task must be claimable by SOME worker.
		for {
			got := false
			for _, w := range workers {
				if s.Pop(w) != nil {
					claimed++
					got = true
				}
			}
			if !got {
				break
			}
		}
		if claimed != pushed {
			t.Logf("claimed %d of %d pushed", claimed, pushed)
			return false
		}
		for mem := 0; mem < 3; mem++ {
			if s.ReadyCount(platform.MemID(mem)) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
