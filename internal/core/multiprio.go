// Package core implements MultiPrio, the dynamic task scheduler with
// multiple priorities for heterogeneous computing systems introduced by
// Tayeb, Bramas, Faverge and Guermouche (IPPS 2024).
//
// MultiPrio keeps one binary max-heap of ready tasks per memory node
// (Section III-B). When a task becomes ready (PUSH, Algorithm 1) it is
// scored once per eligible architecture with two heuristics — the gain
// heuristic (Eq. 1, primary key) and the NOD criticality heuristic
// (Eq. 2, tie-break) — and inserted into every heap whose processing
// units can execute it. When a worker idles (POP, Algorithm 2) it takes
// the most data-local task among the top candidates of its node's heap
// (LS_SDH², Eq. 3), subject to the pop condition: the worker is the
// fastest architecture for the task, or the fastest architecture has
// enough remaining work queued (best_remaining_work) that letting a
// slower worker proceed helps the makespan. A failed condition evicts
// the task from this node's heap — duplicates in other heaps survive —
// which is the mechanism that removes end-of-DAG accelerator idle time
// (Section V-D, Fig. 4).
package core

import (
	"fmt"
	"math"
	"sync"

	"multiprio/internal/heap"
	"multiprio/internal/obs"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
)

// Config tunes MultiPrio. The zero value plus Defaults() reproduces the
// paper's evaluation settings; the Disable* switches drive the ablation
// studies of DESIGN.md §5.
type Config struct {
	// LocalityWindow is n, the number of top heap candidates examined
	// by the locality-aware POP. Paper: n = 10.
	LocalityWindow int
	// Epsilon is the maximum normalized score distance from the heap
	// head for a candidate to stay eligible. Paper: ε = 0.8.
	Epsilon float64
	// MaxTries bounds the evict-and-retry loop of Algorithm 2.
	MaxTries int
	// DisableEviction makes the pop condition always true (the "without
	// eviction mechanism" configuration of Fig. 4).
	DisableEviction bool
	// DisableCriticality drops the NOD tie-break (gain-only ordering).
	DisableCriticality bool
	// DisableLocality makes POP take the heap head directly (n = 1).
	DisableLocality bool
	// FlatGain replaces Eq. 1 with a plain speedup ratio, the ablation
	// for the gain heuristic's normalization.
	FlatGain bool
}

// Defaults returns the paper's evaluation configuration (Section VI:
// n = 10, ε = 0.8).
func Defaults() Config {
	return Config{LocalityWindow: 10, Epsilon: 0.8, MaxTries: 4}
}

func (c Config) normalized() Config {
	if c.LocalityWindow <= 0 {
		c.LocalityWindow = 10
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.8
	}
	if c.MaxTries <= 0 {
		c.MaxTries = 4
	}
	if c.DisableLocality {
		c.LocalityWindow = 1
	}
	return c
}

// taskState is MultiPrio's per-task scratch, stored in Task.SchedData.
type taskState struct {
	// members is a bitmask of memory nodes whose heap holds the task.
	members uint64
	// bestArch is the fastest eligible architecture at push time; the
	// best_remaining_work accounting must add and subtract the same
	// δ(t, bestArch), so it is frozen here.
	bestArch  platform.ArchID
	bestDelta float64
}

// Sched is the MultiPrio scheduler. Create with New; safe for concurrent
// use by the threaded engine (one global mutex guards the heap set, as
// the heaps are cheap and the number of memory nodes small).
type Sched struct {
	cfg Config

	mu    sync.Mutex
	env   *runtime.Env
	heaps []*heap.Heap            // one per memory node
	byID  map[int64]*runtime.Task // heap item id -> task

	// readyCount[m] is the number of ready tasks in heap m.
	readyCount []int
	// bestRemaining[m] is the summed δ(t, bestArch) of ready tasks
	// whose fastest architecture is the one tied to m (Algorithm 1).
	bestRemaining []float64
	// hd[a] is the highest execution-time difference recorded so far
	// on architecture a (the normalizer of Eq. 1).
	hd []float64
	// maxNOD is the running maximum of raw NOD values (normalizer of
	// the criticality score).
	maxNOD float64

	// Evictions counts pop-condition failures (observability).
	Evictions int64

	// topBuf is the reused top-n candidate scratch of POP; archBuf the
	// reused eligible-architecture scratch of PUSH; states a slab so
	// per-task scheduler state does not cost one allocation per task.
	topBuf  []heap.ScoredID
	archBuf []platform.ArchID
	states  []taskState

	// probe receives decision events and counter samples; nil (the
	// default) disables observation. Track names are prebuilt at Init
	// so the observing path does not allocate per event either.
	probe         obs.Probe
	readyTrack    []string
	bestRemTrack  []string
	evictionTrack string
}

// New returns a MultiPrio scheduler with the given configuration.
func New(cfg Config) *Sched {
	return &Sched{cfg: cfg.normalized()}
}

// Name implements runtime.Scheduler.
func (s *Sched) Name() string { return "multiprio" }

// Init implements runtime.Scheduler.
func (s *Sched) Init(env *runtime.Env) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(env.Machine.Mems) > 64 {
		panic("multiprio: more than 64 memory nodes unsupported")
	}
	s.env = env
	s.heaps = make([]*heap.Heap, len(env.Machine.Mems))
	for i := range s.heaps {
		s.heaps[i] = heap.New(256)
	}
	s.byID = make(map[int64]*runtime.Task, 1024)
	s.readyCount = make([]int, len(env.Machine.Mems))
	s.bestRemaining = make([]float64, len(env.Machine.Mems))
	s.hd = make([]float64, len(env.Machine.Archs))
	s.maxNOD = 0
	s.Evictions = 0
	s.states = nil
	s.probe = env.Probe
	if s.probe != nil {
		s.readyTrack = make([]string, len(env.Machine.Mems))
		s.bestRemTrack = make([]string, len(env.Machine.Mems))
		for i, mn := range env.Machine.Mems {
			s.readyTrack[i] = "multiprio.ready[" + mn.Name + "]"
			s.bestRemTrack[i] = "multiprio.best_remaining[" + mn.Name + "]"
		}
		s.evictionTrack = "multiprio.evictions"
	}
}

// allocState hands out per-task scratch from a slab (blocks of 256) so
// pushing a task does not allocate.
func (s *Sched) allocState() *taskState {
	if len(s.states) == 0 {
		s.states = make([]taskState, 256)
	}
	st := &s.states[0]
	s.states = s.states[1:]
	return st
}

// Push implements runtime.Scheduler (Algorithm 1). The task is scored
// and inserted into the heap of every memory node whose architecture can
// execute it.
func (s *Sched) Push(t *runtime.Task) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pushLocked(t)
}

func (s *Sched) pushLocked(t *runtime.Task) {
	m := s.env.Machine
	bestArch, bestDelta, ok := s.env.BestArch(t)
	if !ok {
		panic(fmt.Sprintf("multiprio: task %d (%s) runs on no available architecture", t.ID, t.Kind))
	}
	st := s.allocState()
	st.bestArch, st.bestDelta = bestArch, bestDelta
	t.SchedData = st

	// The per-architecture quantities behind Eq. 1 (best/second-best
	// deltas, eligible-architecture count) depend only on the task, not
	// on the memory node: compute them once, not once per heap.
	archs := s.eligibleArchs(t)
	_, secondDelta, _ := s.env.SecondBestArch(t)
	s.updateHD(t, archs, bestArch, bestDelta, secondDelta)

	var at float64
	var seq int64
	if s.probe != nil {
		at, seq = s.env.Now(), s.env.Seq()
		s.probe.Decision(obs.Decision{
			Kind: obs.PushBest, At: at, Seq: seq, Task: t.ID,
			Worker: -1, Mem: -1, Arch: int(bestArch),
			N: len(archs), A: bestDelta, B: secondDelta,
		})
	}
	inserted := false
	for mem := range m.Mems {
		memID := platform.MemID(mem)
		a := m.MemArch(memID)
		if !t.CanRun(a) || s.env.LiveWorkersOn(memID) == 0 {
			// No live worker will ever pop this node's heap (either the
			// node lost all its workers to faults, or it never had any).
			continue
		}
		gain := s.gainWith(t, a, len(archs), bestArch, bestDelta, secondDelta)
		prio := 0.0
		if !s.cfg.DisableCriticality {
			prio = s.criticality(t, a)
		}
		s.readyCount[mem]++
		if a == bestArch {
			s.bestRemaining[mem] += bestDelta
		}
		s.heaps[mem].Push(t.ID, heap.Score{Primary: gain, Secondary: prio})
		st.members |= 1 << uint(mem)
		inserted = true
		if s.probe != nil {
			s.probe.Decision(obs.Decision{
				Kind: obs.PushScore, At: at, Seq: seq, Task: t.ID,
				Worker: -1, Mem: mem, Arch: int(a), A: gain, B: prio,
			})
			s.probe.Counter(s.readyTrack[mem], at, seq, float64(s.readyCount[mem]))
			if a == bestArch {
				s.probe.Counter(s.bestRemTrack[mem], at, seq, s.bestRemaining[mem])
			}
		}
	}
	if !inserted {
		panic(fmt.Sprintf("multiprio: task %d (%s) inserted into no heap", t.ID, t.Kind))
	}
	s.byID[t.ID] = t
}

// Pop implements runtime.Scheduler (Algorithm 2).
func (s *Sched) Pop(w runtime.WorkerInfo) *runtime.Task {
	s.mu.Lock()
	defer s.mu.Unlock()

	for tries := 0; tries <= s.cfg.MaxTries; tries++ {
		t := s.mostLocalPrioTask(w.Mem)
		if t == nil {
			return nil
		}
		ok, cost, horizon := s.popCondition(t, w)
		if ok {
			if s.probe != nil {
				// The LS_SDH² score must be read before claim tears the
				// task's replica pins down — and read-only, so the
				// observation cannot perturb the decision it records.
				at, seq := s.env.Now(), s.env.Seq()
				s.probe.Decision(obs.Decision{
					Kind: obs.PopSelect, At: at, Seq: seq, Task: t.ID,
					Worker: int(w.ID), Mem: int(w.Mem), Arch: int(w.Arch),
					N: tries, A: s.env.LSSDH2(t, w.Mem), B: cost, C: horizon,
				})
			}
			s.claim(t)
			return t
		}
		// Evict from this node's heap; duplicates elsewhere survive.
		// The last live copy is never evicted: the pop condition is
		// always true on the best architecture's own nodes, and
		// estimate drift could otherwise strand a task.
		st := t.SchedData.(*taskState)
		if popcount(st.members) <= 1 {
			return nil
		}
		s.heaps[w.Mem].Remove(t.ID)
		st.members &^= 1 << uint(w.Mem)
		s.readyCount[w.Mem]--
		s.Evictions++
		if s.probe != nil {
			at, seq := s.env.Now(), s.env.Seq()
			s.probe.Decision(obs.Decision{
				Kind: obs.PopEvict, At: at, Seq: seq, Task: t.ID,
				Worker: int(w.ID), Mem: int(w.Mem), Arch: int(w.Arch),
				N: tries, A: cost, B: horizon,
			})
			s.probe.Counter(s.evictionTrack, at, seq, float64(s.Evictions))
			s.probe.Counter(s.readyTrack[w.Mem], at, seq, float64(s.readyCount[w.Mem]))
		}
	}
	return nil
}

// TaskDone implements runtime.Scheduler.
func (s *Sched) TaskDone(t *runtime.Task, w runtime.WorkerInfo) {}

// WorkerDown implements runtime.FaultObserver. Losing a worker on a
// node with survivors needs no heap surgery: the duplicates in the
// node's heap stay poppable. When the node loses its *last* worker its
// heap becomes unreachable, so it is drained here: memberships and the
// readyCount/best_remaining_work accounting are unwound entry by entry,
// and tasks that lived only in this heap are re-pushed so they are
// rescored against the shrunken machine (their bestArch may change,
// which is why a simple re-insert elsewhere would corrupt the
// best_remaining_work invariant).
func (s *Sched) WorkerDown(w runtime.WorkerInfo) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.env.LiveWorkersOn(w.Mem) > 0 {
		return
	}
	mem := w.Mem
	h := s.heaps[mem]
	var orphans []*runtime.Task
	for h.Len() > 0 {
		id, _, _ := h.Pop()
		t := s.byID[id]
		if t == nil {
			continue // stale duplicate of an already-claimed task
		}
		st := t.SchedData.(*taskState)
		if st.members&(1<<uint(mem)) == 0 {
			continue
		}
		st.members &^= 1 << uint(mem)
		s.readyCount[mem]--
		if s.env.Machine.MemArch(mem) == st.bestArch {
			s.bestRemaining[mem] -= st.bestDelta
		}
		if st.members == 0 {
			delete(s.byID, t.ID)
			orphans = append(orphans, t)
		}
	}
	// The node is gone for good: zero the counters outright so float
	// accumulation error cannot leave a phantom horizon behind.
	s.readyCount[mem] = 0
	s.bestRemaining[mem] = 0
	if s.probe != nil {
		at, seq := s.env.Now(), s.env.Seq()
		s.probe.Counter(s.readyTrack[mem], at, seq, 0)
		s.probe.Counter(s.bestRemTrack[mem], at, seq, 0)
	}
	// Heap order made the drain deterministic; re-push in that order.
	for _, t := range orphans {
		s.pushLocked(t)
	}
}

// claim removes the task from every heap. Under the global lock this is
// equivalent to the paper's lazy duplicate removal (stale duplicates are
// recognized and dropped at the next pop) but keeps the ready counters
// and the top-n locality scans exact.
func (s *Sched) claim(t *runtime.Task) {
	if !t.TryClaim() {
		panic(fmt.Sprintf("multiprio: task %d double-claimed", t.ID))
	}
	st := t.SchedData.(*taskState)
	var at float64
	var seq int64
	if s.probe != nil {
		at, seq = s.env.Now(), s.env.Seq()
	}
	for mem := range s.heaps {
		if st.members&(1<<uint(mem)) == 0 {
			continue
		}
		s.heaps[mem].Remove(t.ID)
		s.readyCount[mem]--
		if s.env.Machine.MemArch(platform.MemID(mem)) == st.bestArch {
			s.bestRemaining[mem] -= st.bestDelta
			if s.bestRemaining[mem] < 0 {
				s.bestRemaining[mem] = 0
			}
			if s.probe != nil {
				s.probe.Counter(s.bestRemTrack[mem], at, seq, s.bestRemaining[mem])
			}
		}
		if s.probe != nil {
			s.probe.Counter(s.readyTrack[mem], at, seq, float64(s.readyCount[mem]))
		}
	}
	st.members = 0
	delete(s.byID, t.ID)
}

// mostLocalPrioTask returns the candidate the POP operation should
// consider on memory node mem: the most data-local task among the top-n
// heap entries whose primary score is within ε of the head (Section
// V-C). The heap is left untouched.
func (s *Sched) mostLocalPrioTask(mem platform.MemID) *runtime.Task {
	h := s.heaps[mem]
	if h.Len() == 0 {
		return nil
	}
	if s.cfg.LocalityWindow == 1 {
		id, _, _ := h.Peek()
		return s.byID[id]
	}
	s.topBuf = h.TopNScored(s.topBuf[:0], s.cfg.LocalityWindow)
	if len(s.topBuf) == 0 {
		return nil
	}
	head := s.byID[s.topBuf[0].ID]
	if s.missingBytes(head, mem) == 0 {
		// The head is already fully local: reordering can only hurt
		// (on the RAM node, where every handle is resident, LS_SDH²
		// would otherwise degenerate into sorting by data size).
		return head
	}
	headScore := s.topBuf[0].Score
	best := head
	bestLoc := s.env.LSSDH2(best, mem)
	for _, c := range s.topBuf[1:] {
		if headScore.Primary-c.Score.Primary > s.cfg.Epsilon {
			continue
		}
		t := s.byID[c.ID]
		if t == nil {
			// A duplicate left behind by lazy removal: the task was
			// already claimed through another node's heap.
			if s.probe != nil {
				s.probe.Decision(obs.Decision{
					Kind: obs.PopStale, At: s.env.Now(), Seq: s.env.Seq(),
					Task: c.ID, Worker: -1, Mem: int(mem), Arch: -1,
				})
			}
			continue
		}
		if loc := s.env.LSSDH2(t, mem); loc > bestLoc {
			best, bestLoc = t, loc
		}
	}
	return best
}

// missingBytes sums the sizes of t's read data not resident on mem.
func (s *Sched) missingBytes(t *runtime.Task, mem platform.MemID) int64 {
	if s.env.Locator == nil {
		return 0
	}
	var sum int64
	for _, a := range t.Accesses {
		if a.Mode == runtime.W {
			continue
		}
		if !s.env.Locator.IsResident(a.Handle, mem) {
			sum += a.Handle.Bytes
		}
	}
	return sum
}

// popCondition decides whether the worker should take the task now
// (Section V-D): yes when the worker is of the task's fastest
// architecture, or when the best architecture's workers are busy long
// enough that letting this slower worker proceed helps the makespan —
// "if the best worker is sufficiently busy, we allow the task to go to
// a slower worker to maintain progress in the DAG".
//
// One reading of the pseudocode is made explicit here: the stealing
// worker's execution time includes its unit speed factor (GPU stream
// workers share their device), so a stream worker is charged the real
// time the steal would occupy the device slot.
//
// The steal cost and the remaining-work horizon it was compared against
// are returned for the probe (both 0 on the trivially-true branches).
func (s *Sched) popCondition(t *runtime.Task, w runtime.WorkerInfo) (ok bool, cost, horizon float64) {
	if s.cfg.DisableEviction {
		return true, 0, 0
	}
	st := t.SchedData.(*taskState)
	if w.Arch == st.bestArch {
		return true, 0, 0
	}
	minHorizon := math.Inf(1)
	for mem := range s.env.Machine.Mems {
		memID := platform.MemID(mem)
		// Dead nodes hold no workers to burn their remaining work down;
		// with every best-arch node dead the horizon stays +Inf and any
		// surviving worker may take the task.
		if s.env.Machine.MemArch(memID) != st.bestArch || s.env.LiveWorkersOn(memID) == 0 {
			continue
		}
		if h := s.bestRemaining[mem]; h < minHorizon {
			minHorizon = h
		}
	}
	cost = s.env.Delta(t, w.Arch) * s.env.Machine.Units[w.ID].SpeedFactor
	return minHorizon > cost, cost, minHorizon
}

// gain computes the gain heuristic of Eq. 1 for task t on architecture
// a, normalized to [0, 1].
func (s *Sched) gain(t *runtime.Task, a platform.ArchID) float64 {
	archs := s.eligibleArchs(t)
	bestArch, bestDelta, _ := s.env.BestArch(t)
	_, secondDelta, _ := s.env.SecondBestArch(t)
	return s.gainWith(t, a, len(archs), bestArch, bestDelta, secondDelta)
}

// gainWith is gain with the task-level inputs (eligible-architecture
// count, best/second-best deltas) precomputed by the caller: Push scores
// a task once per memory node and those inputs do not change across
// nodes.
func (s *Sched) gainWith(t *runtime.Task, a platform.ArchID, nArchs int, bestArch platform.ArchID, bestDelta, secondDelta float64) float64 {
	if s.cfg.FlatGain {
		// Ablation: plain affinity ratio, 1 on the fastest arch.
		d := s.env.Delta(t, a)
		if d <= 0 || math.IsInf(d, 1) {
			return 0
		}
		return bestDelta / d
	}
	if nArchs <= 1 {
		return 1
	}
	da := s.env.Delta(t, a)
	hd := s.hd[a]
	if hd <= 0 {
		return 0.5
	}
	var diff float64
	if a == bestArch {
		diff = secondDelta - da
	} else {
		diff = bestDelta - da
	}
	g := (diff + hd) / (2 * hd)
	if g < 0 {
		return 0
	}
	if g > 1 {
		return 1
	}
	return g
}

// updateHD refreshes the per-architecture highest execution-time
// difference with task t, before its gain is computed (the worked
// example of Table II includes the current task in hd).
func (s *Sched) updateHD(t *runtime.Task, archs []platform.ArchID, bestArch platform.ArchID, bestDelta, secondDelta float64) {
	if len(archs) <= 1 {
		return
	}
	for _, a := range archs {
		da := s.env.Delta(t, a)
		var diff float64
		if a == bestArch {
			diff = math.Abs(secondDelta - da)
		} else {
			diff = math.Abs(bestDelta - da)
		}
		if diff > s.hd[a] {
			s.hd[a] = diff
		}
	}
}

// eligibleArchs lists architectures that can run t and have workers,
// into a scratch slice owned by the scheduler (valid until the next
// call, which is safe under the global lock).
func (s *Sched) eligibleArchs(t *runtime.Task) []platform.ArchID {
	out := s.archBuf[:0]
	for a := range s.env.Machine.Archs {
		arch := platform.ArchID(a)
		if t.CanRun(arch) && s.env.LiveWorkersOf(arch) > 0 {
			out = append(out, arch)
		}
	}
	s.archBuf = out
	return out
}

// criticality computes the normalized NOD score of Eq. 2 for task t
// restricted to architecture a: successors executable on a weighted by
// the inverse of their predecessor counts on a.
func (s *Sched) criticality(t *runtime.Task, a platform.ArchID) float64 {
	nod := s.NOD(t, a)
	if nod > s.maxNOD {
		s.maxNOD = nod
	}
	if s.maxNOD <= 0 {
		return 0
	}
	return nod / s.maxNOD
}

// Gain exposes the gain heuristic (Eq. 1) of a pushed task for reports
// and the Table II experiment.
func (s *Sched) Gain(t *runtime.Task, a platform.ArchID) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gain(t, a)
}

// HD returns the current highest execution-time difference recorded on
// architecture a (the Eq. 1 normalizer).
func (s *Sched) HD(a platform.ArchID) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hd[a]
}

// NOD computes the raw Normalized Out-Degree of Eq. 2 on architecture a.
// Exported for the Fig. 3 experiment and tests.
func (s *Sched) NOD(t *runtime.Task, a platform.ArchID) float64 {
	var nod float64
	for _, succ := range t.Succs() {
		if !succ.CanRun(a) {
			continue
		}
		n := succ.NumPredsOn(a, s.env.Graph)
		if n > 0 {
			nod += 1 / float64(n)
		}
	}
	return nod
}

// ReadyCount returns the current number of ready tasks queued on mem
// (observability; Section IV-B notes the structure exposes this).
func (s *Sched) ReadyCount(mem platform.MemID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readyCount[mem]
}

// BestRemainingWork returns the pending best-affinity work accounted on
// mem, in seconds.
func (s *Sched) BestRemainingWork(mem platform.MemID) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bestRemaining[mem]
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
