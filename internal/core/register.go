package core

import (
	"multiprio/internal/runtime"
	"multiprio/internal/sched/registry"
)

// The registry names: the paper's scheduler plus one entry per ablation
// of DESIGN.md §5. Registry options map onto the matching Config knobs;
// zero values keep the paper defaults.
func init() {
	register := func(name string, mod func(*Config)) {
		registry.Register(name, func(o registry.Options) runtime.Scheduler {
			cfg := Defaults()
			if o.LocalityWindow > 0 {
				cfg.LocalityWindow = o.LocalityWindow
			}
			if o.Epsilon > 0 {
				cfg.Epsilon = o.Epsilon
			}
			if o.MaxTries > 0 {
				cfg.MaxTries = o.MaxTries
			}
			if mod != nil {
				mod(&cfg)
			}
			return New(cfg)
		})
	}
	register("multiprio", nil)
	register("multiprio-noevict", func(c *Config) { c.DisableEviction = true })
	register("multiprio-nocrit", func(c *Config) { c.DisableCriticality = true })
	register("multiprio-nolocal", func(c *Config) { c.DisableLocality = true })
	register("multiprio-flatgain", func(c *Config) { c.FlatGain = true })
}
