package core

import (
	"math"
	"testing"

	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/sched/eager"
	"multiprio/internal/sim"
)

// triArchMachine models a node with THREE architecture types (e.g. CPU
// plus two different accelerator generations), exercising the gain
// formula's fastest/second-fastest logic beyond the binary CPU/GPU case.
func triArchMachine() *platform.Machine {
	m := &platform.Machine{
		Name: "tri",
		Archs: []platform.Arch{
			{Name: "cpu", PeakGFlops: 30},
			{Name: "gpuA", PeakGFlops: 3000},
			{Name: "gpuB", PeakGFlops: 9000},
		},
		Mems: []platform.MemNode{{Name: "ram"}, {Name: "memA"}, {Name: "memB"}},
		Units: []platform.Unit{
			{Name: "cpu0", Arch: 0, Mem: 0, SpeedFactor: 1},
			{Name: "cpu1", Arch: 0, Mem: 0, SpeedFactor: 1},
			{Name: "gpuA0", Arch: 1, Mem: 1, SpeedFactor: 1},
			{Name: "gpuB0", Arch: 2, Mem: 2, SpeedFactor: 1},
		},
	}
	n := len(m.Mems)
	m.LinkMatrix = make([][]platform.Link, n)
	for i := range m.LinkMatrix {
		m.LinkMatrix[i] = make([]platform.Link, n)
		for j := range m.LinkMatrix[i] {
			if i != j {
				m.LinkMatrix[i][j] = platform.Link{BandwidthBytes: 10e9, LatencySec: 3e-6}
			}
		}
	}
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return m
}

func TestGainThreeArchitectures(t *testing.T) {
	m := triArchMachine()
	g := runtime.NewGraph()
	s, _ := newSched(m, g, Defaults())
	// δ = 9 / 3 / 1: gpuB fastest, gpuA second, cpu slowest.
	task := g.Submit(&runtime.Task{Kind: "k", Cost: []float64{9, 3, 1}})
	s.Push(task)

	// hd per arch: fastest's diff vs second (|3-1| = 2 for gpuB),
	// others vs fastest: cpu |1-9| = 8, gpuA |1-3| = 2.
	if s.HD(0) != 8 || s.HD(1) != 2 || s.HD(2) != 2 {
		t.Fatalf("hd = %v %v %v, want 8 2 2", s.HD(0), s.HD(1), s.HD(2))
	}
	// gain(gpuB) = ((3-1)+2)/4 = 1 (fastest, against second fastest).
	if got := s.Gain(task, 2); math.Abs(got-1) > 1e-12 {
		t.Errorf("gain(gpuB) = %v, want 1", got)
	}
	// gain(gpuA) = ((1-3)+2)/4 = 0.
	if got := s.Gain(task, 1); math.Abs(got-0) > 1e-12 {
		t.Errorf("gain(gpuA) = %v, want 0", got)
	}
	// gain(cpu) = ((1-9)+8)/16 = 0.
	if got := s.Gain(task, 0); math.Abs(got-0) > 1e-12 {
		t.Errorf("gain(cpu) = %v, want 0", got)
	}
	// The task is duplicated across all three heaps.
	for mem := 0; mem < 3; mem++ {
		if s.heaps[mem].Len() != 1 {
			t.Errorf("heap %d empty", mem)
		}
	}
}

func TestPopConditionThreeArchitectures(t *testing.T) {
	m := triArchMachine()
	g := runtime.NewGraph()
	s, _ := newSched(m, g, Defaults())
	task := g.Submit(&runtime.Task{Kind: "k", Cost: []float64{9, 3, 1}})
	s.Push(task)
	// gpuA (second fastest) asks: best is gpuB with only 1s remaining,
	// below gpuA's 3s execution: refused.
	gpuA := runtime.WorkerInfo{ID: 2, Arch: 1, Mem: 1}
	if got := s.Pop(gpuA); got != nil {
		t.Fatal("second-fastest arch stole with an idle fastest arch")
	}
	// The fastest arch always gets it.
	gpuB := runtime.WorkerInfo{ID: 3, Arch: 2, Mem: 2}
	if got := s.Pop(gpuB); got != task {
		t.Fatal("fastest arch was refused")
	}
}

func TestTriArchEndToEnd(t *testing.T) {
	m := triArchMachine()
	g := runtime.NewGraph()
	for i := 0; i < 30; i++ {
		cost := []float64{0.09, 0.03, 0.01}
		if i%3 == 0 {
			cost = []float64{0.01, 0.05, 0.04} // CPU-favourable
		}
		g.Submit(&runtime.Task{Kind: "k", Cost: cost})
	}
	for _, sched := range []runtime.Scheduler{New(Defaults()), eager.New()} {
		g.ResetRun()
		res, err := sim.Run(m, g, sched, sim.Options{})
		if err != nil {
			t.Fatalf("%s: %v", sched.Name(), err)
		}
		if res.Makespan <= 0 {
			t.Fatalf("%s: no makespan", sched.Name())
		}
	}
}

func TestStreamWorkerSpeedFactorInPopCondition(t *testing.T) {
	// A GPU with two stream workers (speed factor 2): the pop condition
	// must charge the stream worker 2× the architecture reference time.
	m := &platform.Machine{
		Name:  "streams",
		Archs: []platform.Arch{{Name: "cpu"}, {Name: "gpu"}},
		Mems:  []platform.MemNode{{Name: "ram"}, {Name: "gmem"}},
		Units: []platform.Unit{
			{Name: "cpu0", Arch: 0, Mem: 0, SpeedFactor: 1},
			{Name: "g.s0", Arch: 1, Mem: 1, SpeedFactor: 2},
			{Name: "g.s1", Arch: 1, Mem: 1, SpeedFactor: 2},
		},
		LinkMatrix: [][]platform.Link{
			{{}, {BandwidthBytes: 1e9}},
			{{BandwidthBytes: 1e9}, {}},
		},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	g := runtime.NewGraph()
	s, _ := newSched(m, g, Defaults())
	// CPU-best task (δcpu=2, δgpu=3). RAM brw = 2. A stream worker's
	// real cost is 3×2 = 6 > 2: must be refused even though the
	// reference δ (3) exceeds brw too... make brw land between:
	// push two CPU-best tasks -> brw = 4, reference δ = 3 < 4 would
	// steal WITHOUT the speed factor; 6 > 4 refuses WITH it.
	t1 := g.Submit(&runtime.Task{Kind: "k", Cost: []float64{2, 3}})
	t2 := g.Submit(&runtime.Task{Kind: "k", Cost: []float64{2, 3}})
	s.Push(t1)
	s.Push(t2)
	stream := runtime.WorkerInfo{ID: 1, Arch: 1, Mem: 1}
	if got := s.Pop(stream); got != nil {
		t.Errorf("stream worker stole despite 2x speed factor (got %v)", got.Kind)
	}
}
