package core

import (
	"testing"

	"multiprio/internal/runtime"
)

// TestLSSDH2TieBreakTable drives the locality-aware POP through the
// LS_SDH² scoring cases of Eq. 3: read residency counts linearly,
// write residency quadratically, and exact score ties keep heap-head
// order.
func TestLSSDH2TieBreakTable(t *testing.T) {
	cases := []struct {
		name string
		// sizes and modes of the one access of each of two
		// equal-score tasks; resident marks which handles are on the
		// GPU node.
		sizeA, sizeB int64
		modeA, modeB runtime.AccessMode
		residentA    bool
		residentB    bool
		want         string // kind of the expected pop
	}{
		{
			name:  "resident read beats absent read",
			sizeA: 100, modeA: runtime.R, residentA: false,
			sizeB: 100, modeB: runtime.R, residentB: true,
			want: "B",
		},
		{
			name:  "bigger resident read wins",
			sizeA: 50, modeA: runtime.R, residentA: true,
			sizeB: 200, modeB: runtime.R, residentB: true,
			want: "B",
		},
		{
			name:  "small resident write outscores big resident read (squared)",
			sizeA: 100, modeA: runtime.R, residentA: true, // score 100
			sizeB: 20, modeB: runtime.RW, residentB: true, // score 20² = 400
			want: "B",
		},
		{
			name:  "equal locality keeps submission (heap) order",
			sizeA: 100, modeA: runtime.R, residentA: true,
			sizeB: 100, modeB: runtime.R, residentB: true,
			want: "A",
		},
		{
			name:  "nothing resident keeps head",
			sizeA: 100, modeA: runtime.R, residentA: false,
			sizeB: 300, modeB: runtime.R, residentB: false,
			want: "A",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := twoArchMachine(1, 1)
			g := runtime.NewGraph()
			s, env := newSched(m, g, Defaults())
			loc := &mapLocator{resident: make(map[[2]int64]bool)}
			env.Locator = loc

			hA := g.NewData("a", tc.sizeA)
			hB := g.NewData("b", tc.sizeB)
			// hFar is read by both tasks and never resident: it keeps
			// the heap head from being fully local, which would
			// short-circuit POP before the LS_SDH² comparison.
			hFar := g.NewData("far", 1)
			// Identical costs: equal gain, equal NOD — POP decides on
			// locality alone within the ε window.
			tA := g.Submit(&runtime.Task{Kind: "A", Cost: []float64{4, 1},
				Accesses: []runtime.Access{
					{Handle: hA, Mode: tc.modeA}, {Handle: hFar, Mode: runtime.R}}})
			tB := g.Submit(&runtime.Task{Kind: "B", Cost: []float64{4, 1},
				Accesses: []runtime.Access{
					{Handle: hB, Mode: tc.modeB}, {Handle: hFar, Mode: runtime.R}}})
			loc.resident[[2]int64{hA.ID, 1}] = tc.residentA
			loc.resident[[2]int64{hB.ID, 1}] = tc.residentB

			s.Push(tA)
			s.Push(tB)
			got := s.Pop(runtime.WorkerInfo{ID: 1, Arch: 1, Mem: 1})
			if got == nil || got.Kind != tc.want {
				name := "<nil>"
				if got != nil {
					name = got.Kind
				}
				t.Errorf("Pop = %s, want %s", name, tc.want)
			}
		})
	}
}

// TestPopConditionRejectionTable walks the pop-condition decision
// boundary (Section V-D): a slower worker may steal only when the best
// architecture's queued work horizon strictly exceeds the steal's cost
// on the slower worker.
func TestPopConditionRejectionTable(t *testing.T) {
	cases := []struct {
		name string
		// queued is extra GPU-best work pushed first (forms the
		// best_remaining_work horizon); cost is the CPU delta of the
		// steal candidate.
		queued   []float64
		cpuDelta float64
		wantPop  bool
	}{
		{name: "idle best arch: steal rejected", queued: nil, cpuDelta: 10, wantPop: false},
		{name: "horizon below cost: rejected", queued: []float64{4}, cpuDelta: 10, wantPop: false},
		{name: "horizon equals cost: rejected (strict)", queued: []float64{9}, cpuDelta: 10, wantPop: false},
		{name: "horizon above cost: steal allowed", queued: []float64{15, 15}, cpuDelta: 10, wantPop: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := twoArchMachine(1, 1)
			g := runtime.NewGraph()
			s, _ := newSched(m, g, Defaults())

			// The steal candidate: GPU-best (delta 1), CPU delta as
			// configured. Submitted first so it is also the earliest
			// entry.
			cand := g.Submit(&runtime.Task{Kind: "cand", Cost: []float64{tc.cpuDelta, 1}})
			s.Push(cand)
			// Queued GPU-best work raising bestRemaining on the GPU
			// node. GPU-only (no CPU implementation) so the CPU worker
			// cannot pop it instead.
			for _, d := range tc.queued {
				q := g.Submit(&runtime.Task{Kind: "load", Cost: []float64{0, d}})
				s.Push(q)
			}

			// The horizon the CPU steal is judged against includes the
			// candidate's own contribution (it is GPU-best too).
			cpu := runtime.WorkerInfo{ID: 0, Arch: 0, Mem: 0}
			got := s.Pop(cpu)
			if tc.wantPop && got != cand {
				t.Errorf("Pop = %v, want the steal candidate", got)
			}
			if !tc.wantPop && got != nil {
				t.Errorf("Pop = %s, want nil (pop condition must reject)", got.Kind)
			}
		})
	}
}

// TestEvictAndRetryMaxTries pins the retry budget of Algorithm 2 at
// MaxTries ∈ {1, 4, 16}: each failed pop condition evicts the candidate
// from the popping node's heap (duplicates elsewhere survive), the loop
// gives up after MaxTries retries or an empty heap, and the eviction
// counter records exactly the evicted candidates.
func TestEvictAndRetryMaxTries(t *testing.T) {
	const nTasks = 6
	for _, maxTries := range []int{1, 4, 16} {
		cfg := Defaults()
		cfg.MaxTries = maxTries
		wantEvict := maxTries + 1 // tries 0..MaxTries inclusive
		if wantEvict > nTasks {
			wantEvict = nTasks // heap runs dry first
		}
		m := twoArchMachine(1, 1)
		g := runtime.NewGraph()
		s, _ := newSched(m, g, cfg)
		for i := 0; i < nTasks; i++ {
			// GPU-best with tiny bestDelta: total horizon (6) stays
			// below the CPU steal cost (10), so every candidate fails
			// the pop condition on the CPU worker. Runs on both archs,
			// so a duplicate lives in the GPU heap and eviction from
			// the CPU heap is permitted.
			s.Push(g.Submit(&runtime.Task{Kind: "t", Cost: []float64{10, 1}}))
		}
		cpu := runtime.WorkerInfo{ID: 0, Arch: 0, Mem: 0}
		if got := s.Pop(cpu); got != nil {
			t.Errorf("MaxTries=%d: Pop = %s, want nil", maxTries, got.Kind)
		}
		if s.Evictions != int64(wantEvict) {
			t.Errorf("MaxTries=%d: %d evictions, want %d", maxTries, s.Evictions, wantEvict)
		}
		if got := s.ReadyCount(0); got != nTasks-wantEvict {
			t.Errorf("MaxTries=%d: CPU node ready count %d, want %d", maxTries, got, nTasks-wantEvict)
		}
		// Duplicates on the GPU node all survive and remain poppable.
		if got := s.ReadyCount(1); got != nTasks {
			t.Errorf("MaxTries=%d: GPU node ready count %d, want %d (duplicates must survive)", maxTries, got, nTasks)
		}
		gpu := runtime.WorkerInfo{ID: 1, Arch: 1, Mem: 1}
		for i := 0; i < nTasks; i++ {
			if s.Pop(gpu) == nil {
				t.Fatalf("MaxTries=%d: GPU pop %d returned nil", maxTries, i)
			}
		}
	}
}

// TestStaleDuplicateDiscard checks duplicate hygiene: once a task is
// popped through one node's heap, its copies on every other node are
// discarded — the other worker never sees the claimed task, ready
// counts drop on all member nodes, and a fresh task is unaffected.
func TestStaleDuplicateDiscard(t *testing.T) {
	m := twoArchMachine(1, 1)
	g := runtime.NewGraph()
	// Eviction off isolates duplicate handling: the GPU pop must not be
	// rejected by the pop condition, only ever by a stale duplicate.
	cfg := Defaults()
	cfg.DisableEviction = true
	s, _ := newSched(m, g, cfg)

	// Both tasks run on both architectures: each is duplicated into
	// the CPU and the GPU heap.
	shared := g.Submit(&runtime.Task{Kind: "shared", Cost: []float64{1, 4}})
	other := g.Submit(&runtime.Task{Kind: "other", Cost: []float64{1, 4}})
	s.Push(shared)
	s.Push(other)
	if got := s.ReadyCount(0); got != 2 {
		t.Fatalf("CPU ready count = %d, want 2", got)
	}
	if got := s.ReadyCount(1); got != 2 {
		t.Fatalf("GPU ready count = %d, want 2", got)
	}

	cpu := runtime.WorkerInfo{ID: 0, Arch: 0, Mem: 0}
	gpu := runtime.WorkerInfo{ID: 1, Arch: 1, Mem: 1}
	first := s.Pop(cpu)
	if first == nil {
		t.Fatal("CPU pop returned nil with two ready tasks")
	}
	// The duplicate of the claimed task is gone from the GPU heap.
	if got := s.ReadyCount(1); got != 1 {
		t.Errorf("GPU ready count after CPU pop = %d, want 1 (stale duplicate must be discarded)", got)
	}
	second := s.Pop(gpu)
	if second == nil {
		t.Fatal("GPU pop returned nil, stale duplicate blocked the live task")
	}
	if second == first {
		t.Fatalf("task %s popped twice through duplicate heaps", first.Kind)
	}
	if s.ReadyCount(0) != 0 || s.ReadyCount(1) != 0 {
		t.Errorf("ready counts after draining = (%d, %d), want (0, 0)",
			s.ReadyCount(0), s.ReadyCount(1))
	}
	if got := s.Pop(cpu); got != nil {
		t.Errorf("pop on drained scheduler = %s, want nil", got.Kind)
	}
}
