package core

import (
	"testing"

	"multiprio/internal/platform"
	"multiprio/internal/runtime"
)

// mapLocator marks specific (handle, mem) pairs as resident.
type mapLocator struct {
	resident map[[2]int64]bool // {handleID, mem} -> resident
}

func (l *mapLocator) IsResident(h *runtime.DataHandle, mem platform.MemID) bool {
	return l.resident[[2]int64{h.ID, int64(mem)}]
}
func (l *mapLocator) TransferEstimate(h *runtime.DataHandle, mem platform.MemID) float64 {
	if l.IsResident(h, mem) {
		return 0
	}
	return 1
}

func TestLocalityAwarePopPrefersResidentData(t *testing.T) {
	m := twoArchMachine(1, 1)
	g := runtime.NewGraph()
	s, env := newSched(m, g, Defaults())
	loc := &mapLocator{resident: make(map[[2]int64]bool)}
	env.Locator = loc

	hRemote := g.NewData("remote", 100)
	hLocal := g.NewData("local", 100)
	// Both tasks are GPU-best with identical scores.
	far := g.Submit(&runtime.Task{Kind: "far", Cost: []float64{4, 1},
		Accesses: []runtime.Access{{Handle: hRemote, Mode: runtime.R}}})
	near := g.Submit(&runtime.Task{Kind: "near", Cost: []float64{4, 1},
		Accesses: []runtime.Access{{Handle: hLocal, Mode: runtime.R}}})
	loc.resident[[2]int64{hLocal.ID, 1}] = true // hLocal already on the GPU node

	s.Push(far)
	s.Push(near)

	gpu := runtime.WorkerInfo{ID: 1, Arch: 1, Mem: 1}
	if got := s.Pop(gpu); got != near {
		t.Errorf("Pop = %s, want the task with resident data", got.Kind)
	}
}

func TestLocalityDisabledTakesHead(t *testing.T) {
	m := twoArchMachine(1, 1)
	g := runtime.NewGraph()
	cfg := Defaults()
	cfg.DisableLocality = true
	s, env := newSched(m, g, cfg)
	loc := &mapLocator{resident: make(map[[2]int64]bool)}
	env.Locator = loc

	hLocal := g.NewData("local", 100)
	// far has a strictly higher gain (bigger GPU advantage), near has
	// resident data. With locality off the head (far) must win.
	far := g.Submit(&runtime.Task{Kind: "far", Cost: []float64{10, 1}})
	near := g.Submit(&runtime.Task{Kind: "near", Cost: []float64{4, 1},
		Accesses: []runtime.Access{{Handle: hLocal, Mode: runtime.R}}})
	loc.resident[[2]int64{hLocal.ID, 1}] = true

	s.Push(far)
	s.Push(near)
	gpu := runtime.WorkerInfo{ID: 1, Arch: 1, Mem: 1}
	if got := s.Pop(gpu); got != far {
		t.Errorf("Pop = %s, want heap head with locality disabled", got.Kind)
	}
}

func TestEpsilonBoundsLocalityWindow(t *testing.T) {
	m := twoArchMachine(1, 1)
	g := runtime.NewGraph()
	cfg := Defaults()
	cfg.Epsilon = 0.05 // tight: only near-equal scores are candidates
	s, env := newSched(m, g, cfg)
	loc := &mapLocator{resident: make(map[[2]int64]bool)}
	env.Locator = loc

	hLocal := g.NewData("local", 100)
	// far's gain is far above near's: with a tight ε the local task is
	// outside the candidate window and the head wins despite locality.
	far := g.Submit(&runtime.Task{Kind: "far", Cost: []float64{20, 1}})
	near := g.Submit(&runtime.Task{Kind: "near", Cost: []float64{2, 1.9},
		Accesses: []runtime.Access{{Handle: hLocal, Mode: runtime.R}}})
	loc.resident[[2]int64{hLocal.ID, 1}] = true

	s.Push(far)
	s.Push(near)
	gpu := runtime.WorkerInfo{ID: 1, Arch: 1, Mem: 1}
	if got := s.Pop(gpu); got != far {
		t.Errorf("Pop = %s, want head (local task outside ε window)", got.Kind)
	}
}
