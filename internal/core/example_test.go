package core_test

import (
	"fmt"

	"multiprio/internal/core"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/sim"
)

// Example runs the MultiPrio scheduler on a simulated heterogeneous
// node: GPU-favourable work lands on the GPU, CPU-only work on the
// CPUs, and the makespan reflects the overlap.
func Example() {
	m, err := platform.NewHeteroNode("demo", 3, 10, 1, 1000, 0, 10e9, platform.Config{})
	if err != nil {
		panic(err)
	}
	g := runtime.NewGraph()
	for i := 0; i < 4; i++ {
		// 1s on a CPU core, 10ms on the GPU.
		g.Submit(&runtime.Task{Kind: "accel", Cost: []float64{1, 0.01}})
		// 10ms, CPU only.
		g.Submit(&runtime.Task{Kind: "host", Cost: []float64{0.01}})
	}
	res, err := sim.Run(m, g, core.New(core.Defaults()), sim.Options{})
	if err != nil {
		panic(err)
	}
	gpuTasks := 0
	for _, sp := range res.Trace.Spans {
		if m.Units[sp.Worker].Arch == platform.ArchGPU {
			gpuTasks++
		}
	}
	fmt.Println("accelerated tasks on the GPU:", gpuTasks)
	fmt.Printf("makespan under 100ms: %v\n", res.Makespan < 0.1)
	// Output:
	// accelerated tasks on the GPU: 4
	// makespan under 100ms: true
}

// ExampleConfig shows the ablation switches mirroring the paper's
// design choices.
func ExampleConfig() {
	cfg := core.Defaults()
	fmt.Println("locality window n =", cfg.LocalityWindow)
	fmt.Println("epsilon =", cfg.Epsilon)
	cfg.DisableEviction = true // the Fig. 4 "without eviction" variant
	fmt.Println("eviction disabled:", cfg.DisableEviction)
	// Output:
	// locality window n = 10
	// epsilon = 0.8
	// eviction disabled: true
}
