package core

import (
	"fmt"
	"math"
	"testing"

	"multiprio/internal/platform"
	"multiprio/internal/runtime"
)

// twoArchMachine builds a machine with nA workers of arch 0 and nB of
// arch 1 (each GPU-like node gets its own memory node).
func twoArchMachine(nA, nB int) *platform.Machine {
	m := &platform.Machine{
		Name:  "test",
		Archs: []platform.Arch{{Name: "a1"}, {Name: "a2"}},
		Mems:  []platform.MemNode{{Name: "ram"}},
	}
	for i := 0; i < nA; i++ {
		m.Units = append(m.Units, platform.Unit{Name: fmt.Sprintf("a1w%d", i), Arch: 0, Mem: 0, SpeedFactor: 1})
	}
	for i := 0; i < nB; i++ {
		mem := platform.MemID(len(m.Mems))
		m.Mems = append(m.Mems, platform.MemNode{Name: fmt.Sprintf("a2mem%d", i)})
		m.Units = append(m.Units, platform.Unit{Name: fmt.Sprintf("a2w%d", i), Arch: 1, Mem: mem, SpeedFactor: 1})
	}
	n := len(m.Mems)
	m.LinkMatrix = make([][]platform.Link, n)
	for i := range m.LinkMatrix {
		m.LinkMatrix[i] = make([]platform.Link, n)
		for j := range m.LinkMatrix[i] {
			if i != j {
				m.LinkMatrix[i][j] = platform.Link{BandwidthBytes: 1e9}
			}
		}
	}
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return m
}

func newSched(m *platform.Machine, g *runtime.Graph, cfg Config) (*Sched, *runtime.Env) {
	s := New(cfg)
	env := runtime.NewEnv(m, g)
	s.Init(env)
	return s, env
}

// TestGainTableII reproduces the paper's Table II exactly: three tasks,
// two architecture types, hd(a1) = hd(a2) = 19.
func TestGainTableII(t *testing.T) {
	m := twoArchMachine(1, 1)
	g := runtime.NewGraph()
	s, _ := newSched(m, g, Defaults())

	// δ in "ms" (unit is irrelevant, only ratios matter).
	tA := g.Submit(&runtime.Task{Kind: "A", Cost: []float64{1, 20}})
	tB := g.Submit(&runtime.Task{Kind: "B", Cost: []float64{5, 10}})
	tC := g.Submit(&runtime.Task{Kind: "C", Cost: []float64{20, 10}})

	// Push in table order so hd reaches 19 with task A, as the table's
	// single hd value implies.
	s.Push(tA)
	s.Push(tB)
	s.Push(tC)

	if s.hd[0] != 19 || s.hd[1] != 19 {
		t.Fatalf("hd = %v, want [19 19]", s.hd)
	}

	want := map[*runtime.Task][2]float64{
		tA: {1, 0},
		tB: {24.0 / 38.0, 14.0 / 38.0}, // 0.631, 0.368
		tC: {9.0 / 38.0, 29.0 / 38.0},  // 0.236, 0.763
	}
	for task, w := range want {
		for a := 0; a < 2; a++ {
			got := s.gain(task, platform.ArchID(a))
			if math.Abs(got-w[a]) > 1e-9 {
				t.Errorf("gain(%s, a%d) = %.6f, want %.6f", task.Kind, a+1, got, w[a])
			}
		}
	}

	// Heap order on a1: A > B > C; on a2 (mem 1): C > B > A.
	id0, _, _ := s.heaps[0].Peek()
	if id0 != tA.ID {
		t.Errorf("heap a1 head = task %d, want A", id0)
	}
	id1, _, _ := s.heaps[1].Peek()
	if id1 != tC.ID {
		t.Errorf("heap a2 head = task %d, want C", id1)
	}
}

// TestNODFig3 reproduces the paper's Fig. 3 worked example:
// NOD(T2) = 2.5 and NOD(T3) = 1.
func TestNODFig3(t *testing.T) {
	m := twoArchMachine(2, 0)
	g := runtime.NewGraph()
	s, _ := newSched(m, g, Defaults())

	mk := func(kind string) *runtime.Task {
		return g.Submit(&runtime.Task{Kind: kind, Cost: []float64{1}})
	}
	t2 := mk("T2")
	t3 := mk("T3")
	t4 := mk("T4")
	t5 := mk("T5")
	t6 := mk("T6")
	t7 := mk("T7")
	// T2 -> {T4, T5, T6}; T3 -> {T6, T7}; T6 and T7 have two preds.
	g.Declare(t2, t4)
	g.Declare(t2, t5)
	g.Declare(t2, t6)
	g.Declare(t3, t6)
	g.Declare(t3, t7)
	g.Declare(t6, t7)

	if got := s.NOD(t2, 0); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("NOD(T2) = %v, want 2.5", got)
	}
	if got := s.NOD(t3, 0); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("NOD(T3) = %v, want 1", got)
	}
}

func TestNODRestrictedToArch(t *testing.T) {
	m := twoArchMachine(1, 1)
	g := runtime.NewGraph()
	s, _ := newSched(m, g, Defaults())

	parent := g.Submit(&runtime.Task{Kind: "p", Cost: []float64{1, 1}})
	cpuOnly := g.Submit(&runtime.Task{Kind: "c", Cost: []float64{1, 0}})
	gpuOnly := g.Submit(&runtime.Task{Kind: "g", Cost: []float64{0, 1}})
	g.Declare(parent, cpuOnly)
	g.Declare(parent, gpuOnly)

	if got := s.NOD(parent, 0); got != 1 {
		t.Errorf("NOD on arch0 = %v, want 1 (only the CPU successor counts)", got)
	}
	if got := s.NOD(parent, 1); got != 1 {
		t.Errorf("NOD on arch1 = %v, want 1 (only the GPU successor counts)", got)
	}
}

func TestGainSingleArchIsOne(t *testing.T) {
	m := twoArchMachine(1, 1)
	g := runtime.NewGraph()
	s, _ := newSched(m, g, Defaults())
	cpuOnly := g.Submit(&runtime.Task{Kind: "c", Cost: []float64{3, 0}})
	s.Push(cpuOnly)
	if got := s.gain(cpuOnly, 0); got != 1 {
		t.Errorf("gain with a single eligible arch = %v, want 1", got)
	}
}

func TestGainZeroHDIsHalf(t *testing.T) {
	m := twoArchMachine(1, 1)
	g := runtime.NewGraph()
	s, _ := newSched(m, g, Defaults())
	// Identical δ on both archs → hd stays 0 → neutral 0.5.
	eq := g.Submit(&runtime.Task{Kind: "e", Cost: []float64{2, 2}})
	s.Push(eq)
	if got := s.gain(eq, 0); got != 0.5 {
		t.Errorf("gain with hd=0 = %v, want 0.5", got)
	}
}

func TestPushInsertsIntoAllEligibleHeaps(t *testing.T) {
	m := twoArchMachine(2, 2) // mems: ram, a2mem, a2mem
	g := runtime.NewGraph()
	s, _ := newSched(m, g, Defaults())
	both := g.Submit(&runtime.Task{Kind: "b", Cost: []float64{4, 1}})
	s.Push(both)
	for mem := 0; mem < 3; mem++ {
		if s.heaps[mem].Len() != 1 {
			t.Errorf("heap %d len = %d, want 1 (duplication across nodes)", mem, s.heaps[mem].Len())
		}
	}
	cpuOnly := g.Submit(&runtime.Task{Kind: "c", Cost: []float64{4, 0}})
	s.Push(cpuOnly)
	if s.heaps[0].Len() != 2 || s.heaps[1].Len() != 1 {
		t.Error("CPU-only task leaked into a GPU heap")
	}
}

func TestBestRemainingWorkAccounting(t *testing.T) {
	m := twoArchMachine(2, 2)
	g := runtime.NewGraph()
	s, _ := newSched(m, g, Defaults())
	// GPU-best task: δ gpu=1, cpu=4.
	task := g.Submit(&runtime.Task{Kind: "b", Cost: []float64{4, 1}})
	s.Push(task)
	if got := s.BestRemainingWork(1); got != 1 {
		t.Errorf("bestRemaining[gpu0] = %v, want 1", got)
	}
	if got := s.BestRemainingWork(2); got != 1 {
		t.Errorf("bestRemaining[gpu1] = %v, want 1", got)
	}
	if got := s.BestRemainingWork(0); got != 0 {
		t.Errorf("bestRemaining[ram] = %v, want 0 (task is GPU-best)", got)
	}
	// GPU worker pops it: counters return to zero.
	w := runtime.WorkerInfo{ID: 2, Arch: 1, Mem: 1}
	if got := s.Pop(w); got != task {
		t.Fatalf("Pop = %v, want the task", got)
	}
	if got := s.BestRemainingWork(1); got != 0 {
		t.Errorf("bestRemaining[gpu0] after pop = %v, want 0", got)
	}
	if s.ReadyCount(0) != 0 || s.ReadyCount(1) != 0 || s.ReadyCount(2) != 0 {
		t.Error("ready counts nonzero after claiming the only task")
	}
}

func TestPopConditionBestWorkerAlwaysTakes(t *testing.T) {
	m := twoArchMachine(1, 1)
	g := runtime.NewGraph()
	s, _ := newSched(m, g, Defaults())
	task := g.Submit(&runtime.Task{Kind: "b", Cost: []float64{4, 1}})
	s.Push(task)
	gpu := runtime.WorkerInfo{ID: 1, Arch: 1, Mem: 1}
	if got := s.Pop(gpu); got != task {
		t.Error("best worker was refused its task")
	}
}

func TestPopConditionEvictsFromSlowWorker(t *testing.T) {
	m := twoArchMachine(1, 1)
	g := runtime.NewGraph()
	s, _ := newSched(m, g, Defaults())
	// One GPU-best task; the GPU queue holds only it, so
	// best_remaining_work (1s) < δ(t, cpu) (4s): CPU must not take it.
	task := g.Submit(&runtime.Task{Kind: "b", Cost: []float64{4, 1}})
	s.Push(task)
	cpu := runtime.WorkerInfo{ID: 0, Arch: 0, Mem: 0}
	if got := s.Pop(cpu); got != nil {
		t.Fatalf("CPU worker stole a GPU-best task with an idle GPU")
	}
	// The task must survive in the GPU heap (last-copy protection also
	// prevents removing it from the CPU heap, but either way the GPU
	// still finds it).
	gpu := runtime.WorkerInfo{ID: 1, Arch: 1, Mem: 1}
	if got := s.Pop(gpu); got != task {
		t.Fatal("GPU no longer finds the task after CPU pop attempt")
	}
}

func TestPopConditionAllowsStealWhenBestIsLoaded(t *testing.T) {
	m := twoArchMachine(1, 1)
	g := runtime.NewGraph()
	s, _ := newSched(m, g, Defaults())
	// Six GPU-best tasks, each 1s on GPU and 3s on CPU. With 6s of
	// best-remaining work > 3s, the CPU is allowed to take one.
	var tasks []*runtime.Task
	for i := 0; i < 6; i++ {
		task := g.Submit(&runtime.Task{Kind: "b", Cost: []float64{3, 1}})
		s.Push(task)
		tasks = append(tasks, task)
	}
	cpu := runtime.WorkerInfo{ID: 0, Arch: 0, Mem: 0}
	if got := s.Pop(cpu); got == nil {
		t.Fatal("CPU was refused although the GPU queue holds 6s of work")
	}
	if got := s.BestRemainingWork(1); math.Abs(got-5) > 1e-9 {
		t.Errorf("bestRemaining after steal = %v, want 5", got)
	}
}

func TestDisableEvictionAlwaysPops(t *testing.T) {
	m := twoArchMachine(1, 1)
	g := runtime.NewGraph()
	cfg := Defaults()
	cfg.DisableEviction = true
	s, _ := newSched(m, g, cfg)
	task := g.Submit(&runtime.Task{Kind: "b", Cost: []float64{4, 1}})
	s.Push(task)
	cpu := runtime.WorkerInfo{ID: 0, Arch: 0, Mem: 0}
	if got := s.Pop(cpu); got != task {
		t.Error("with eviction disabled the CPU should take the task")
	}
}

func TestEvictionCounterAndDuplicateSurvival(t *testing.T) {
	m := twoArchMachine(1, 1)
	g := runtime.NewGraph()
	s, _ := newSched(m, g, Defaults())
	// Two GPU-best tasks: enough remaining work (2s) to beat δ_cpu for
	// neither (4s each) → CPU pops evict both copies from the CPU heap.
	t1 := g.Submit(&runtime.Task{Kind: "b", Cost: []float64{4, 1}})
	t2 := g.Submit(&runtime.Task{Kind: "b", Cost: []float64{4, 1}})
	s.Push(t1)
	s.Push(t2)
	cpu := runtime.WorkerInfo{ID: 0, Arch: 0, Mem: 0}
	if got := s.Pop(cpu); got != nil {
		t.Fatal("CPU should be refused (2s remaining < 4s cost)")
	}
	if s.Evictions == 0 {
		t.Error("no evictions recorded")
	}
	if s.heaps[0].Len() != 0 {
		t.Errorf("CPU heap len = %d, want 0 after evictions", s.heaps[0].Len())
	}
	if s.heaps[1].Len() != 2 {
		t.Errorf("GPU heap len = %d, want 2 (duplicates survive)", s.heaps[1].Len())
	}
	gpu := runtime.WorkerInfo{ID: 1, Arch: 1, Mem: 1}
	if s.Pop(gpu) == nil || s.Pop(gpu) == nil {
		t.Error("GPU could not drain the surviving duplicates")
	}
}

func TestLastCopyNeverEvicted(t *testing.T) {
	m := twoArchMachine(1, 1)
	g := runtime.NewGraph()
	cfg := Defaults()
	cfg.MaxTries = 10
	s, _ := newSched(m, g, cfg)
	task := g.Submit(&runtime.Task{Kind: "b", Cost: []float64{4, 1}})
	s.Push(task)
	cpu := runtime.WorkerInfo{ID: 0, Arch: 0, Mem: 0}
	// Evicts from CPU heap once; the GPU copy is the last one the CPU
	// heap... after the CPU eviction the GPU heap still holds it.
	s.Pop(cpu)
	gpuHeapLen := s.heaps[1].Len()
	if gpuHeapLen != 1 {
		t.Fatalf("GPU heap len = %d, want 1", gpuHeapLen)
	}
}

func TestCriticalityBreaksGainTies(t *testing.T) {
	m := twoArchMachine(1, 0)
	g := runtime.NewGraph()
	s, _ := newSched(m, g, Defaults())
	// Equal gain (single arch → 1); lowPrio has no successors, hiPrio
	// releases two.
	lowPrio := g.Submit(&runtime.Task{Kind: "low", Cost: []float64{1}})
	hiPrio := g.Submit(&runtime.Task{Kind: "hi", Cost: []float64{1}})
	c1 := g.Submit(&runtime.Task{Kind: "c1", Cost: []float64{1}})
	c2 := g.Submit(&runtime.Task{Kind: "c2", Cost: []float64{1}})
	g.Declare(hiPrio, c1)
	g.Declare(hiPrio, c2)

	s.Push(lowPrio)
	s.Push(hiPrio)
	cpu := runtime.WorkerInfo{ID: 0, Arch: 0, Mem: 0}
	if got := s.Pop(cpu); got != hiPrio {
		t.Errorf("Pop = %s, want the critical task first", got.Kind)
	}
}

func TestDisableCriticalityIgnoresNOD(t *testing.T) {
	m := twoArchMachine(1, 0)
	g := runtime.NewGraph()
	cfg := Defaults()
	cfg.DisableCriticality = true
	s, _ := newSched(m, g, cfg)
	lowPrio := g.Submit(&runtime.Task{Kind: "low", Cost: []float64{1}})
	hiPrio := g.Submit(&runtime.Task{Kind: "hi", Cost: []float64{1}})
	c1 := g.Submit(&runtime.Task{Kind: "c1", Cost: []float64{1}})
	g.Declare(hiPrio, c1)
	s.Push(lowPrio)
	s.Push(hiPrio)
	// Both score (1, 0): heap order is by insertion-structure, the
	// first pushed stays on top.
	cpu := runtime.WorkerInfo{ID: 0, Arch: 0, Mem: 0}
	if got := s.Pop(cpu); got != lowPrio {
		t.Errorf("Pop = %s, want FIFO-ish head with criticality off", got.Kind)
	}
}

func TestFlatGainAblation(t *testing.T) {
	m := twoArchMachine(1, 1)
	g := runtime.NewGraph()
	cfg := Defaults()
	cfg.FlatGain = true
	s, _ := newSched(m, g, cfg)
	task := g.Submit(&runtime.Task{Kind: "b", Cost: []float64{4, 1}})
	s.Push(task)
	if got := s.gain(task, 1); got != 1 {
		t.Errorf("flat gain on best arch = %v, want 1", got)
	}
	if got := s.gain(task, 0); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("flat gain on slow arch = %v, want 0.25", got)
	}
}

func TestPopEmptyHeapReturnsNil(t *testing.T) {
	m := twoArchMachine(1, 1)
	g := runtime.NewGraph()
	s, _ := newSched(m, g, Defaults())
	if got := s.Pop(runtime.WorkerInfo{ID: 0, Arch: 0, Mem: 0}); got != nil {
		t.Errorf("Pop on empty scheduler = %v", got)
	}
}

func TestPushTaskWithNoEligibleArchPanics(t *testing.T) {
	m := twoArchMachine(1, 0) // no arch-1 workers
	g := runtime.NewGraph()
	s, _ := newSched(m, g, Defaults())
	gpuOnly := &runtime.Task{ID: 99, Kind: "g", Cost: []float64{0, 1}}
	defer func() {
		if recover() == nil {
			t.Error("Push of unrunnable task did not panic")
		}
	}()
	s.Push(gpuOnly)
}
