package core

import (
	"testing"

	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/sched/eager"
	"multiprio/internal/sim"
)

// The paper treats the main RAM as a single memory node "despite the
// NUMA effects but otherwise the approach remains valid" (III-A). These
// tests validate the claim: with one heap per NUMA domain, MultiPrio
// still schedules correctly — duplication across the per-socket heaps,
// claims removing all copies, and locality steering pops towards the
// socket already holding the data.

func numaGraph(g *runtime.Graph, tasks int) {
	for i := 0; i < tasks; i++ {
		h := g.NewData("x", 1<<20)
		g.Submit(&runtime.Task{Kind: "w", Cost: []float64{0.002},
			Accesses: []runtime.Access{{Handle: h, Mode: runtime.W}}})
		g.Submit(&runtime.Task{Kind: "r", Cost: []float64{0.002},
			Accesses: []runtime.Access{{Handle: h, Mode: runtime.R}}})
	}
}

func TestMultiPrioOnNUMA(t *testing.T) {
	m := platform.NUMANode(2, 4, 0)
	g := runtime.NewGraph()
	numaGraph(g, 40)
	res, err := sim.Run(m, g, New(Defaults()), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range g.Tasks {
		if !task.Claimed() {
			t.Fatal("task lost on NUMA machine")
		}
	}
	// Sanity against a trivial policy: no pathological slowdown.
	g2 := runtime.NewGraph()
	numaGraph(g2, 40)
	ref, err := sim.Run(m, g2, eager.New(), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan > 2*ref.Makespan {
		t.Errorf("multiprio %v vs eager %v on NUMA: pathological", res.Makespan, ref.Makespan)
	}
}

func TestNUMADuplicationAcrossSocketHeaps(t *testing.T) {
	m := platform.NUMANode(2, 2, 0)
	g := runtime.NewGraph()
	s, _ := newSched(m, g, Defaults())
	task := g.Submit(&runtime.Task{Kind: "t", Cost: []float64{1}})
	s.Push(task)
	if s.heaps[0].Len() != 1 || s.heaps[1].Len() != 1 {
		t.Fatal("task not duplicated across the per-socket heaps")
	}
	// A claim through socket 0 clears socket 1's copy too.
	w := runtime.WorkerInfo{ID: 0, Arch: 0, Mem: 0}
	if got := s.Pop(w); got != task {
		t.Fatal("pop failed")
	}
	if s.heaps[1].Len() != 0 {
		t.Fatal("stale duplicate left in the other socket's heap")
	}
}

func TestNUMALocalityPrefersResidentSocket(t *testing.T) {
	m := platform.NUMANode(2, 2, 0)
	g := runtime.NewGraph()
	s, env := newSched(m, g, Defaults())
	loc := &mapLocator{resident: make(map[[2]int64]bool)}
	env.Locator = loc

	h0 := g.NewData("on-socket1", 100)
	h1 := g.NewData("on-socket0", 100)
	tRemote := g.Submit(&runtime.Task{Kind: "remote", Cost: []float64{1},
		Accesses: []runtime.Access{{Handle: h0, Mode: runtime.R}}})
	tLocal := g.Submit(&runtime.Task{Kind: "local", Cost: []float64{1},
		Accesses: []runtime.Access{{Handle: h1, Mode: runtime.R}}})
	loc.resident[[2]int64{h0.ID, 1}] = true
	loc.resident[[2]int64{h1.ID, 0}] = true

	s.Push(tRemote)
	s.Push(tLocal)
	// A socket-0 worker should pick the task whose data lives on
	// socket 0, not the heap head.
	w0 := runtime.WorkerInfo{ID: 0, Arch: 0, Mem: 0}
	if got := s.Pop(w0); got != tLocal {
		t.Errorf("socket-0 pop = %s, want the socket-local task", got.Kind)
	}
	w1 := runtime.WorkerInfo{ID: 2, Arch: 0, Mem: 1}
	if got := s.Pop(w1); got != tRemote {
		t.Errorf("socket-1 pop = %s, want the remaining task", got.Kind)
	}
}
