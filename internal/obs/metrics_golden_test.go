package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the CSV export golden")

// TestMetricsCSVGolden pins the CSV export contract downstream tooling
// (pandas/R notebooks, the telemetry JSONL consumers) depends on: the
// exact header, track-name-sorted row order regardless of recording
// order, full-precision 'g' float formatting, and same-instant sample
// collapsing. Any change to WriteCSV's layout must be deliberate enough
// to regenerate the golden with -update.
func TestMetricsCSVGolden(t *testing.T) {
	m := NewMetrics()
	// Record tracks deliberately out of name order, with a same-instant
	// overwrite on the first track.
	m.Counter("sim.ready", 0.5, 3, 4)
	m.Counter("mem.used[gpu0]", 0.25, 1, 1024)
	m.Counter("mem.used[gpu0]", 0.25, 1, 2048) // collapses onto the previous sample
	m.Counter("mem.used[gpu0]", 1.0/3.0, 2, 4096)
	m.Counter("stream.inflight[t0]", 0.75, 5, 2)
	m.Counter("mem.evictions[gpu0]", 0.9, 7, 1)

	var got bytes.Buffer
	if err := m.WriteCSV(&got); err != nil {
		t.Fatal(err)
	}

	// Structural invariants, independent of the golden bytes.
	lines := strings.Split(strings.TrimSuffix(got.String(), "\n"), "\n")
	if lines[0] != "track,at,seq,value" {
		t.Fatalf("header = %q, want track,at,seq,value", lines[0])
	}
	prevTrack := ""
	for _, l := range lines[1:] {
		track := l[:strings.IndexByte(l, ',')]
		if track < prevTrack {
			t.Fatalf("tracks out of sorted order: %q after %q", track, prevTrack)
		}
		prevTrack = track
	}
	if n := len(lines) - 1; n != 5 {
		t.Fatalf("%d rows, want 5 (same-instant samples must collapse)", n)
	}

	path := filepath.Join("testdata", "metrics_csv.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("CSV export drifted:\n got:\n%s\nwant:\n%s", got.Bytes(), want)
	}
}
