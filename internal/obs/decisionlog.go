package obs

import (
	"bufio"
	"io"
	"strconv"
	"sync"
)

// DecisionLog is a Probe that records every decision event in arrival
// order and renders them as a canonical text log. Under the simulator
// the log is fully deterministic (same seed, same bytes), so it is
// golden-testable exactly like the canonical trace encoding. Counter
// samples are ignored; pair with a Metrics recorder via Multi.
type DecisionLog struct {
	mu sync.Mutex
	ds []Decision
}

// Decision implements Probe.
func (l *DecisionLog) Decision(d Decision) {
	l.mu.Lock()
	l.ds = append(l.ds, d)
	l.mu.Unlock()
}

// Counter implements Probe (ignored).
func (l *DecisionLog) Counter(track string, at float64, seq int64, value float64) {}

// Len returns the number of recorded decisions.
func (l *DecisionLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ds)
}

// Decisions returns the recorded decisions in arrival order. The slice
// is shared with the log; callers must not mutate it.
func (l *DecisionLog) Decisions() []Decision {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ds
}

// CountKind returns the number of recorded decisions of kind k.
func (l *DecisionLog) CountKind(k DecisionKind) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, d := range l.ds {
		if d.Kind == k {
			n++
		}
	}
	return n
}

// WriteCanonical writes the decision log as a lossless text encoding,
// one line per decision in recorded order:
//
//	<kind> t<task> w<worker> m<mem> a<arch> n<N> <A> <B> <C> @<at> s<seq>
//
// Floats use the shortest round-trip representation, like the canonical
// trace encoding, so two deterministic runs produce byte-identical logs.
func (l *DecisionLog) WriteCanonical(w io.Writer) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	bw := bufio.NewWriter(w)
	var buf []byte
	for _, d := range l.ds {
		buf = AppendDecision(buf[:0], d)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// AppendDecision appends the canonical one-line encoding of d (without
// the trailing newline) to buf and returns the extended slice.
func AppendDecision(buf []byte, d Decision) []byte {
	buf = append(buf, d.Kind.String()...)
	buf = append(buf, " t"...)
	buf = strconv.AppendInt(buf, d.Task, 10)
	buf = append(buf, " w"...)
	buf = strconv.AppendInt(buf, int64(d.Worker), 10)
	buf = append(buf, " m"...)
	buf = strconv.AppendInt(buf, int64(d.Mem), 10)
	buf = append(buf, " a"...)
	buf = strconv.AppendInt(buf, int64(d.Arch), 10)
	buf = append(buf, " n"...)
	buf = strconv.AppendInt(buf, int64(d.N), 10)
	buf = append(buf, ' ')
	buf = strconv.AppendFloat(buf, d.A, 'g', -1, 64)
	buf = append(buf, ' ')
	buf = strconv.AppendFloat(buf, d.B, 'g', -1, 64)
	buf = append(buf, ' ')
	buf = strconv.AppendFloat(buf, d.C, 'g', -1, 64)
	buf = append(buf, " @"...)
	buf = strconv.AppendFloat(buf, d.At, 'g', -1, 64)
	buf = append(buf, " s"...)
	buf = strconv.AppendInt(buf, d.Seq, 10)
	return buf
}

// FormatDecision returns the canonical one-line encoding of d.
func FormatDecision(d Decision) string { return string(AppendDecision(nil, d)) }

// SpanArgs condenses the log into per-task Chrome trace span arguments,
// so Perfetto task tooltips explain placement without opening the
// decision log: the gain score in the heap the task was popped from,
// the memory node it was selected on, its LS_SDH² locality score, the
// evict-and-retry count it suffered, and the dmdas expected completion
// time when a HEFT mapping placed it. memName resolves a memory-node
// index to its display name (nil falls back to the numeric index).
func (l *DecisionLog) SpanArgs(memName func(int) string) map[int64]map[string]string {
	l.mu.Lock()
	defer l.mu.Unlock()
	ff := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
	mn := func(m int) string {
		if memName == nil || m < 0 {
			return strconv.Itoa(m)
		}
		return memName(m)
	}
	// gains[(task,mem)] is the gain the task was scored with on that
	// node's heap at push time, so the pop can be annotated with the
	// score it was actually selected under.
	type taskMem struct {
		task int64
		mem  int
	}
	gains := map[taskMem]float64{}
	evicts := map[int64]int{}
	out := map[int64]map[string]string{}
	arg := func(task int64) map[string]string {
		a := out[task]
		if a == nil {
			a = map[string]string{}
			out[task] = a
		}
		return a
	}
	for _, d := range l.ds {
		switch d.Kind {
		case PushScore:
			gains[taskMem{d.Task, d.Mem}] = d.A
		case PopEvict:
			evicts[d.Task]++
		case PopSelect:
			a := arg(d.Task)
			a["mem_node"] = mn(d.Mem)
			if g, ok := gains[taskMem{d.Task, d.Mem}]; ok {
				a["gain"] = ff(g)
			}
			if d.A != 0 {
				a["lssdh2"] = ff(d.A)
			}
			if n := evicts[d.Task]; n > 0 {
				a["evict_retries"] = strconv.Itoa(n)
			}
		case MapTask:
			a := arg(d.Task)
			a["mem_node"] = mn(d.Mem)
			a["ect"] = ff(d.A)
		}
	}
	return out
}
