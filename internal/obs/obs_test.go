package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestDecisionLogCanonical(t *testing.T) {
	var l DecisionLog
	l.Decision(Decision{Kind: PushBest, At: 0, Seq: 1, Task: 7, Worker: -1, Mem: -1, Arch: 1, N: 2, A: 0.5, B: 1.25})
	l.Decision(Decision{Kind: PushScore, At: 0, Seq: 1, Task: 7, Worker: -1, Mem: 2, Arch: 1, A: 0.75, B: 0.5})
	l.Decision(Decision{Kind: PopEvict, At: 1.5, Seq: 9, Task: 7, Worker: 3, Mem: 2, Arch: 1, N: 0, A: 2, B: 1})
	l.Decision(Decision{Kind: PopSelect, At: 1.5, Seq: 9, Task: 7, Worker: 4, Mem: 0, Arch: 0, N: 1, A: 4096})

	var b bytes.Buffer
	if err := l.WriteCanonical(&b); err != nil {
		t.Fatal(err)
	}
	want := "push t7 w-1 m-1 a1 n2 0.5 1.25 0 @0 s1\n" +
		"score t7 w-1 m2 a1 n0 0.75 0.5 0 @0 s1\n" +
		"evict t7 w3 m2 a1 n0 2 1 0 @1.5 s9\n" +
		"pop t7 w4 m0 a0 n1 4096 0 0 @1.5 s9\n"
	if b.String() != want {
		t.Fatalf("canonical log:\n got: %q\nwant: %q", b.String(), want)
	}
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want 4", l.Len())
	}
	if l.CountKind(PopEvict) != 1 {
		t.Fatalf("CountKind(PopEvict) = %d, want 1", l.CountKind(PopEvict))
	}
}

func TestDecisionLogSpanArgs(t *testing.T) {
	var l DecisionLog
	l.Decision(Decision{Kind: PushScore, Task: 7, Mem: 2, A: 0.75})
	l.Decision(Decision{Kind: PushScore, Task: 7, Mem: 0, A: 0.25})
	l.Decision(Decision{Kind: PopEvict, Task: 7, Worker: 3, Mem: 0})
	l.Decision(Decision{Kind: PopSelect, Task: 7, Worker: 5, Mem: 2, N: 1, A: 1024})
	l.Decision(Decision{Kind: MapTask, Task: 8, Worker: 1, Mem: 1, A: 3.5})

	args := l.SpanArgs(func(m int) string { return []string{"ram", "gpu0", "gpu1"}[m] })
	a7 := args[7]
	if a7 == nil {
		t.Fatal("no args for task 7")
	}
	if a7["mem_node"] != "gpu1" || a7["gain"] != "0.75" || a7["evict_retries"] != "1" || a7["lssdh2"] != "1024" {
		t.Fatalf("task 7 args = %v", a7)
	}
	a8 := args[8]
	if a8 == nil || a8["ect"] != "3.5" || a8["mem_node"] != "gpu0" {
		t.Fatalf("task 8 args = %v", a8)
	}
}

func TestMetricsExports(t *testing.T) {
	m := NewMetrics()
	m.Counter("b.track", 0, 1, 10)
	m.Counter("a.track", 0.5, 2, 1)
	m.Counter("b.track", 1, 3, 20)
	// Same-instant update collapses to the last value.
	m.Counter("b.track", 1, 3, 25)

	tracks := m.Tracks()
	if len(tracks) != 2 || tracks[0].Name != "a.track" || tracks[1].Name != "b.track" {
		t.Fatalf("tracks = %+v", tracks)
	}
	if n := len(tracks[1].Samples); n != 2 {
		t.Fatalf("b.track samples = %d, want 2 (same-instant collapse)", n)
	}
	if v, ok := m.Last("b.track"); !ok || v != 25 {
		t.Fatalf("Last(b.track) = %v, %v", v, ok)
	}
	if s := m.Samples("a.track"); len(s) != 1 || s[0].Value != 1 {
		t.Fatalf("Samples(a.track) = %v", s)
	}

	var csv bytes.Buffer
	if err := m.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	want := "track,at,seq,value\na.track,0.5,2,1\nb.track,0,1,10\nb.track,1,3,25\n"
	if csv.String() != want {
		t.Fatalf("CSV:\n got: %q\nwant: %q", csv.String(), want)
	}

	var js bytes.Buffer
	if err := m.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Tracks []Track `json:"tracks"`
	}
	if err := json.Unmarshal(js.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.Tracks) != 2 || doc.Tracks[1].Samples[1].Value != 25 {
		t.Fatalf("JSON round-trip = %+v", doc.Tracks)
	}
}

func TestMultiFansOut(t *testing.T) {
	var l DecisionLog
	m := NewMetrics()
	p := Multi{&l, m}
	p.Decision(Decision{Kind: PopSelect, Task: 1})
	p.Counter("x", 0, 0, 1)
	if l.Len() != 1 {
		t.Fatal("decision not fanned out")
	}
	if _, ok := m.Last("x"); !ok {
		t.Fatal("counter not fanned out")
	}
}

// TestConcurrentProbes exercises the consumers under parallel writers,
// as the threaded engine produces them (run with -race).
func TestConcurrentProbes(t *testing.T) {
	var l DecisionLog
	m := NewMetrics()
	p := Multi{&l, m}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				p.Decision(Decision{Kind: PopSelect, Task: int64(i*100 + j)})
				p.Counter("t", float64(j), 0, float64(j))
			}
		}(i)
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Fatalf("decisions = %d, want 800", l.Len())
	}
	var b bytes.Buffer
	if err := l.WriteCanonical(&b); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(b.String(), "\n"); n != 800 {
		t.Fatalf("log lines = %d, want 800", n)
	}
}
