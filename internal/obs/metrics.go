package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Sample is one point of a counter track.
type Sample struct {
	At    float64 `json:"at"`
	Seq   int64   `json:"seq"`
	Value float64 `json:"value"`
}

// Track is one named counter time series.
type Track struct {
	Name    string   `json:"name"`
	Samples []Sample `json:"samples"`
}

// Metrics is a Probe that records counter samples into per-track time
// series and exports them as CSV, JSON, or Perfetto counter tracks (via
// trace.ChromeCounter in the cmd wiring). Decision events are ignored;
// pair with a DecisionLog via Multi.
type Metrics struct {
	mu     sync.Mutex
	tracks map[string]*Track
}

// NewMetrics returns an empty recorder.
func NewMetrics() *Metrics {
	return &Metrics{tracks: make(map[string]*Track)}
}

// Decision implements Probe (ignored).
func (m *Metrics) Decision(d Decision) {}

// Counter implements Probe.
func (m *Metrics) Counter(track string, at float64, seq int64, value float64) {
	m.mu.Lock()
	t := m.tracks[track]
	if t == nil {
		t = &Track{Name: track}
		m.tracks[track] = t
	}
	// Collapse consecutive same-instant samples of one track: only the
	// last value at an instant is observable on a counter plot, and hot
	// paths may update a counter several times within one event.
	if n := len(t.Samples); n > 0 && t.Samples[n-1].At == at && t.Samples[n-1].Seq == seq {
		t.Samples[n-1].Value = value
	} else {
		t.Samples = append(t.Samples, Sample{At: at, Seq: seq, Value: value})
	}
	m.mu.Unlock()
}

// Tracks returns the recorded tracks sorted by name, so exports are
// deterministic regardless of probe arrival order. The tracks share
// storage with the recorder; callers must not mutate them.
func (m *Metrics) Tracks() []*Track {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Track, 0, len(m.tracks))
	for _, t := range m.tracks {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Samples returns the samples of the named track (nil when absent).
func (m *Metrics) Samples(track string) []Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	if t := m.tracks[track]; t != nil {
		return t.Samples
	}
	return nil
}

// Last returns the most recent value of the named track.
func (m *Metrics) Last(track string) (float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.tracks[track]
	if t == nil || len(t.Samples) == 0 {
		return 0, false
	}
	return t.Samples[len(t.Samples)-1].Value, true
}

// WriteCSV writes every sample as "track,at,seq,value" rows, tracks in
// name order, samples in recording order — ready for pandas/R, the role
// StarVZ's parsed Paje data plays in the paper's workflow.
func (m *Metrics) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("track,at,seq,value\n"); err != nil {
		return err
	}
	var buf []byte
	for _, t := range m.Tracks() {
		for _, s := range t.Samples {
			buf = buf[:0]
			buf = append(buf, t.Name...)
			buf = append(buf, ',')
			buf = strconv.AppendFloat(buf, s.At, 'g', -1, 64)
			buf = append(buf, ',')
			buf = strconv.AppendInt(buf, s.Seq, 10)
			buf = append(buf, ',')
			buf = strconv.AppendFloat(buf, s.Value, 'g', -1, 64)
			buf = append(buf, '\n')
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteJSON writes the tracks as one JSON document
// {"tracks":[{"name":...,"samples":[{"at":...,"seq":...,"value":...}]}]}.
func (m *Metrics) WriteJSON(w io.Writer) error {
	doc := struct {
		Tracks []*Track `json:"tracks"`
	}{Tracks: m.Tracks()}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
