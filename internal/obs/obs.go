// Package obs is the scheduler-internals observability layer: a probe
// interface the execution engines and scheduling policies call at their
// decision points, plus consumers that turn the event stream into a
// deterministic decision log, time-series counter tracks, and Perfetto
// tooltip context.
//
// The paper explains MultiPrio's wins by reading StarVZ traces (Fig. 4
// idle shares, the Section V eviction/locality discussion), but a task
// trace only records *what* ran. The probe records *why*: per-push gain
// scores and best/second-best deltas (Eq. 1), per-pop LS_SDH² locality
// picks (Eq. 3), evict-and-retry churn (Algorithm 2), dmdas HEFT
// mappings, and the simulator's memory pressure over time.
//
// Design constraints, in priority order:
//
//  1. Observation must never perturb scheduling. Probes are read-only:
//     they receive the engine's simulated time and its *current*
//     linearization sequence but never advance it. The canonical-trace
//     SHA-256 goldens are byte-identical with a probe attached
//     (TestCanonicalTraceGoldenProbed).
//  2. Nil must be free. Every instrumentation site is guarded by a
//     single pointer nil-check and computes event payloads only behind
//     it, so the disabled cost is unmeasurable (bench/ compares the
//     instrumented hot paths against the pre-observability baseline).
//  3. The decision stream must be deterministic under the simulator, so
//     the decision log is golden-testable exactly like
//     trace.WriteCanonical.
//
// The package depends on nothing but the standard library: identities
// (worker, memory node, architecture) are plain ints so that
// internal/runtime can hold a Probe in its Env without an import cycle
// through internal/trace.
package obs

// DecisionKind classifies scheduler decision events.
type DecisionKind uint8

const (
	// PushBest is the task-level summary of MultiPrio's PUSH
	// (Algorithm 1): Arch is the fastest eligible architecture, N the
	// number of eligible architectures, A = δ(t, best), B = δ(t, second
	// best) (+Inf encoded as-is when only one architecture qualifies).
	PushBest DecisionKind = iota + 1
	// PushScore is one heap insertion of MultiPrio's PUSH: the task was
	// scored into the heap of memory node Mem (whose dominant
	// architecture is Arch) with A = gain (Eq. 1) and B = normalized NOD
	// criticality (Eq. 2; 0 when the criticality tie-break is disabled).
	PushScore
	// PopSelect is a successful POP: Worker took Task from node Mem's
	// queue. N is the number of evict-retries that preceded the
	// selection in this Pop call, A the LS_SDH² locality score of the
	// task on Mem (Eq. 3). For dmdas-family schedulers N is the index
	// in the mapped FIFO/priority queue (non-zero = a data-ready task
	// bypassed the head) and A is 0.
	PopSelect
	// PopEvict is a pop-condition failure (Algorithm 2): Task was
	// evicted from node Mem's heap, duplicates elsewhere survive. N is
	// the retry index, A the steal cost charged to Worker (δ × speed
	// factor), B the best architecture's remaining-work horizon the
	// cost was compared against.
	PopEvict
	// PopStale is a stale duplicate discarded during the top-n locality
	// scan: the heap still listed Task on Mem but the task was already
	// claimed through another node's heap.
	PopStale
	// MapTask is a dmdas-family PUSH (the HEFT step): Task was mapped
	// to Worker with A = expected completion time, B = the execution
	// estimate added to the worker's load, C = the transfer estimate
	// for the worker's memory node (0 for the dm variant).
	MapTask
	// TaskDone is the engine-level effective completion of a task —
	// emitted by the engines themselves, not a policy, so it appears for
	// every scheduler. At is the completion instant, Worker/Mem/Arch the
	// unit that ran the winning attempt, A the kernel start time and B
	// the instant the task was offered to the scheduler (its ReadyAt).
	// Queue time is therefore A−B and sojourn time At−B, which is what
	// the telemetry layer's per-tenant histograms record live.
	TaskDone
)

// String returns the short canonical name of the kind.
func (k DecisionKind) String() string {
	switch k {
	case PushBest:
		return "push"
	case PushScore:
		return "score"
	case PopSelect:
		return "pop"
	case PopEvict:
		return "evict"
	case PopStale:
		return "stale"
	case MapTask:
		return "map"
	case TaskDone:
		return "done"
	default:
		return "?"
	}
}

// Decision is one scheduler decision event. Fields not applicable to a
// kind are -1 (identities) or 0 (scalars); the per-kind meaning of N,
// A, B and C is documented on the DecisionKind constants.
type Decision struct {
	Kind DecisionKind
	// At is the engine's time when the decision was made: simulated
	// seconds under internal/sim, wall-clock seconds since run start
	// under the threaded engine.
	At float64
	// Seq is the engine's last-assigned linearization sequence number
	// at the time of the event (see trace.Span.StartSeq). Probes only
	// read the sequencer — observation never advances it. Zero under
	// engines without a sequencer.
	Seq int64
	// Task is the task ID the decision concerns.
	Task int64
	// Worker, Mem and Arch identify the processing unit, memory node
	// and architecture involved; -1 when not applicable.
	Worker, Mem, Arch int
	// N is a kind-specific small count (retry index, queue position,
	// eligible-architecture count).
	N int
	// A, B, C are kind-specific scalars.
	A, B, C float64
}

// Probe receives scheduler decision events and counter samples. A nil
// Probe disables observation; every call site guards with a nil check
// so the disabled path costs one predictable branch.
//
// Implementations must be safe for concurrent use: the threaded engine
// invokes schedulers — and therefore probes — from many worker
// goroutines. Under the simulator all calls arrive from the single
// event-loop goroutine in deterministic order.
type Probe interface {
	// Decision records one scheduler decision event.
	Decision(d Decision)
	// Counter records one sample of the named time-series track. Track
	// names are stable identifiers like "mem.used[gpu0]" or
	// "multiprio.ready[ram]"; at and seq are stamped like Decision.At
	// and Decision.Seq.
	Counter(track string, at float64, seq int64, value float64)
}

// Multi fans out every event to each member probe, in order. It lets
// one run feed a DecisionLog and a Metrics recorder at once.
type Multi []Probe

// Decision implements Probe.
func (m Multi) Decision(d Decision) {
	for _, p := range m {
		p.Decision(d)
	}
}

// Counter implements Probe.
func (m Multi) Counter(track string, at float64, seq int64, value float64) {
	for _, p := range m {
		p.Counter(track, at, seq, value)
	}
}

// Combine fans the non-nil probes into one. It returns nil when every
// argument is nil and the sole probe unwrapped, so engines can merge a
// user probe with an internal one (watchdog tail, telemetry) without
// paying a fan-out layer in the common single-probe case.
func Combine(ps ...Probe) Probe {
	var out Multi
	for _, p := range ps {
		if p != nil {
			out = append(out, p)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}
