package sim

import (
	"math"
	"testing"

	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/sched/eager"
)

// TestCommuteSerializesInVirtualTime: four 1s commuting updates on one
// handle over four workers must execute back to back (mutual exclusion),
// totalling 4s, while four independent tasks take 1s.
func TestCommuteSerializesInVirtualTime(t *testing.T) {
	m := platform.CPUOnly(4)
	g := runtime.NewGraph()
	h := g.NewData("acc", 8)
	for i := 0; i < 4; i++ {
		g.Submit(&runtime.Task{Kind: "c", Cost: []float64{1},
			Accesses: []runtime.Access{{Handle: h, Mode: runtime.Commute}}})
	}
	res, err := Run(m, g, eager.New(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-4) > 1e-9 {
		t.Errorf("makespan = %v, want 4 (serialized commuters)", res.Makespan)
	}
	// No pair of COMPUTE intervals overlaps (the span's Wait portion is
	// the stall on the commute lock).
	for i, a := range res.Trace.Spans {
		for _, b := range res.Trace.Spans[i+1:] {
			if a.Start+a.Wait < b.End-1e-12 && b.Start+b.Wait < a.End-1e-12 {
				t.Fatalf("compute intervals overlap: %+v and %+v", a, b)
			}
		}
	}
}

// TestCommuteDistinctHandlesOverlap: commuters on different handles are
// unconstrained.
func TestCommuteDistinctHandlesOverlap(t *testing.T) {
	m := platform.CPUOnly(4)
	g := runtime.NewGraph()
	for i := 0; i < 4; i++ {
		h := g.NewData("x", 8)
		g.Submit(&runtime.Task{Kind: "c", Cost: []float64{1},
			Accesses: []runtime.Access{{Handle: h, Mode: runtime.Commute}}})
	}
	res, err := Run(m, g, eager.New(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-1) > 1e-9 {
		t.Errorf("makespan = %v, want 1 (independent handles)", res.Makespan)
	}
}

// TestCommuteThenReadOrdering: the reader runs after every commuter and
// sees a consistent replica (write effects applied).
func TestCommuteThenReadOrdering(t *testing.T) {
	m := platform.CPUOnly(2)
	g := runtime.NewGraph()
	h := g.NewData("acc", 8)
	c1 := g.Submit(&runtime.Task{Kind: "c1", Cost: []float64{1},
		Accesses: []runtime.Access{{Handle: h, Mode: runtime.Commute}}})
	c2 := g.Submit(&runtime.Task{Kind: "c2", Cost: []float64{1},
		Accesses: []runtime.Access{{Handle: h, Mode: runtime.Commute}}})
	r := g.Submit(&runtime.Task{Kind: "r", Cost: []float64{0.5},
		Accesses: []runtime.Access{{Handle: h, Mode: runtime.R}}})
	if _, err := Run(m, g, eager.New(), Options{}); err != nil {
		t.Fatal(err)
	}
	lastCommuteEnd := math.Max(c1.EndAt, c2.EndAt)
	if r.StartAt < lastCommuteEnd-1e-12 {
		t.Errorf("reader started %v before commuters finished %v", r.StartAt, lastCommuteEnd)
	}
	// Serialized group: 2s of commuters + 0.5s read.
	if math.Abs(r.EndAt-2.5) > 1e-9 {
		t.Errorf("reader end = %v, want 2.5", r.EndAt)
	}
}

// TestCommuteOnGPUInvalidatesReplicas: commute is a write for coherence.
func TestCommuteOnGPUInvalidatesReplicas(t *testing.T) {
	m := tinyMachine(0)
	g := runtime.NewGraph()
	h := g.NewData("x", 1e9)
	gpuOnlyTask(g, "gc", 0.1, runtime.Access{Handle: h, Mode: runtime.Commute})
	g.Submit(&runtime.Task{Kind: "cr", Cost: []float64{0.1},
		Accesses: []runtime.Access{{Handle: h, Mode: runtime.R}}})
	res, err := Run(m, g, eager.New(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The CPU read must fetch the updated value back from the GPU.
	back := 0
	for _, x := range res.Trace.Xfers {
		if x.Src == 1 && x.Dst == 0 {
			back++
		}
	}
	if back == 0 {
		t.Error("no GPU->RAM transfer after a commute update on the GPU")
	}
}
