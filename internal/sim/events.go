// Package sim is a discrete-event simulator of heterogeneous computing
// nodes executing task graphs under a pluggable scheduler. It plays the
// role StarPU-over-SimGrid plays in the paper (Section V-D, Fig. 4):
// virtual time, per-unit execution speeds, PCIe links with bandwidth and
// contention, GPU memory capacity with LRU eviction and write-back, and
// background prefetch requests.
//
// The simulator is deterministic: events are ordered by (time, sequence
// number) and all randomness flows from the seed in Options.
package sim

import "sort"

// event is one scheduled simulator action.
type event struct {
	at  float64
	seq int64
	fn  func()
}

// before is the total order of the simulation: (time, seq).
func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Ladder-queue tuning. Below spillLimit the structure is a plain binary
// heap (the seed implementation's behaviour, minus the container/heap
// interface boxing that allocated per push); past it, the upper half of
// the heap spills into an unsorted far band that pushes and pops touch
// only when virtual time catches up.
const (
	// spillLimit is the near-heap size that triggers a spill into the
	// far band. Steady-state simulations hold a handful of events per
	// worker, so only event storms (million-task graphs releasing wide
	// fronts, long fault plans injected up front) ever cross it.
	spillLimit = 4096
	// refillTarget caps how many far events one refill promotes back
	// into the near heap.
	refillTarget = spillLimit / 2
)

// eventQueue is the simulator's pending-event set, a three-band
// calendar/ladder queue with an exact (time, seq) total order:
//
//   - now: a FIFO of events scheduled at the current instant. The
//     engine's wake/drain events — the bulk of all events — land here
//     for O(1) instead of O(log n) push, and pop O(1) instead of a
//     sift-down. FIFO order is (time, seq) order by construction: all
//     entries share the current timestamp and seqs are assigned
//     monotonically.
//   - near: a binary min-heap ordered by (at, seq), holding every
//     pending event below the horizon.
//   - far: an unsorted band of events at or past the horizon. Pushes
//     append O(1); the band is only sorted (once, in bulk) when the
//     near heap drains and virtual time reaches it.
//
// The horizon invariant — near events strictly below it, far events at
// or past it — makes the near-heap minimum the global minimum, so pops
// preserve the exact order of the seed's single binary heap.
type eventQueue struct {
	now     []event
	nowHead int
	near    []event
	far     []event
	horizon float64
	hasFar  bool
}

func (q *eventQueue) len() int {
	return len(q.now) - q.nowHead + len(q.near) + len(q.far)
}

// pushNow appends an event at the current instant. The caller (the
// engine's at()) guarantees e.at equals the current virtual time and
// seqs are assigned in push order.
func (q *eventQueue) pushNow(e event) {
	q.now = append(q.now, e)
}

// push inserts an event strictly after the current instant.
func (q *eventQueue) push(e event) {
	if q.hasFar && e.at >= q.horizon {
		q.far = append(q.far, e)
		return
	}
	q.pushNear(e)
	if len(q.near) >= spillLimit {
		q.spill()
	}
}

// spill moves the upper half of the near heap (by timestamp) into the
// far band. When every near event shares one timestamp nothing can
// move; the heap simply keeps growing, which stays correct (and such
// same-instant storms drain through popBatch immediately anyway).
func (q *eventQueue) spill() {
	// Median timestamp via a sorted copy of the at values: O(n log n)
	// once per spillLimit pushes, amortized O(log n) per push.
	ats := make([]float64, len(q.near))
	for i, e := range q.near {
		ats[i] = e.at
	}
	sort.Float64s(ats)
	pivot := ats[len(ats)/2]
	if pivot <= ats[0] {
		return // lower half is one timestamp; nothing strictly above it may split
	}
	if q.hasFar && q.horizon < pivot {
		pivot = q.horizon // never raise the horizon over existing far events
	}
	w := 0
	for _, e := range q.near {
		if e.at >= pivot {
			q.far = append(q.far, e)
		} else {
			q.near[w] = e
			w++
		}
	}
	if w == len(q.near) {
		return
	}
	q.near = q.near[:w]
	q.heapify()
	q.horizon = pivot
	q.hasFar = true
}

// refill promotes the earliest far events into the near heap once the
// near heap has drained. It sorts the band, takes up to refillTarget
// events (never splitting a timestamp: the horizon must sit strictly
// between event times to keep the order exact), and heapifies.
func (q *eventQueue) refill() {
	sort.Slice(q.far, func(i, j int) bool { return q.far[i].before(q.far[j]) })
	n := refillTarget
	if n > len(q.far) {
		n = len(q.far)
	}
	// Extend past ties: every event sharing the cut timestamp moves.
	for n < len(q.far) && q.far[n].at == q.far[n-1].at {
		n++
	}
	q.near = append(q.near, q.far[:n]...)
	copy(q.far, q.far[n:])
	q.far = q.far[:len(q.far)-n]
	// The promoted block is sorted, which is a valid min-heap already.
	if len(q.far) == 0 {
		q.hasFar = false
	} else {
		q.horizon = q.far[0].at // sorted: the remaining minimum
		// Re-sorting left the band ordered; that is fine, it stays an
		// append-only unsorted set from here.
	}
}

// popBatch removes and returns (appended to dst) every pending event
// sharing the minimal timestamp, in (time, seq) order. The engine
// processes the batch without re-consulting the queue between events;
// events pushed by the batch's handlers at the same instant form the
// next batch (their seqs are larger than anything in this one).
func (q *eventQueue) popBatch(dst []event) []event {
	if q.nowHead > 0 && q.nowHead == len(q.now) {
		q.now = q.now[:0]
		q.nowHead = 0
	}
	if len(q.near) == 0 && q.hasFar {
		// The near heap drained. If the now FIFO still has events they
		// are at the current instant, necessarily before the horizon —
		// unless time has caught up with the band, in which case the
		// band must be consulted too.
		if q.nowHead == len(q.now) || q.now[q.nowHead].at >= q.horizon {
			q.refill()
		}
	}
	batch := len(dst)
	// The minimal timestamp is the smaller of the FIFO head and the
	// near-heap root; ties break by seq, and a same-instant heap event
	// always has the smaller seq (it was pushed before time reached the
	// instant).
	for {
		var have bool
		var min event
		fromNow := false
		if q.nowHead < len(q.now) {
			min, have = q.now[q.nowHead], true
			fromNow = true
		}
		if len(q.near) > 0 && (!have || q.near[0].before(min)) {
			min, have = q.near[0], true
			fromNow = false
		}
		if !have {
			break
		}
		if len(dst) > batch && min.at != dst[batch].at {
			break // next timestamp: the batch is complete
		}
		if fromNow {
			q.now[q.nowHead] = event{} // drop the closure reference
			q.nowHead++
		} else {
			q.popNearRoot()
		}
		dst = append(dst, min)
	}
	return dst
}

// pushNear is a direct binary-heap push (no interface boxing).
func (q *eventQueue) pushNear(e event) {
	q.near = append(q.near, e)
	i := len(q.near) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.near[i].before(q.near[parent]) {
			break
		}
		q.near[i], q.near[parent] = q.near[parent], q.near[i]
		i = parent
	}
}

// popNearRoot removes the near-heap minimum.
func (q *eventQueue) popNearRoot() {
	n := len(q.near) - 1
	q.near[0] = q.near[n]
	q.near[n] = event{} // drop the closure reference
	q.near = q.near[:n]
	q.siftDown(0)
}

func (q *eventQueue) siftDown(i int) {
	n := len(q.near)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && q.near[r].before(q.near[l]) {
			m = r
		}
		if !q.near[m].before(q.near[i]) {
			return
		}
		q.near[i], q.near[m] = q.near[m], q.near[i]
		i = m
	}
}

// heapify rebuilds the near heap in place after a spill.
func (q *eventQueue) heapify() {
	for i := len(q.near)/2 - 1; i >= 0; i-- {
		q.siftDown(i)
	}
}
