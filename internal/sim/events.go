// Package sim is a discrete-event simulator of heterogeneous computing
// nodes executing task graphs under a pluggable scheduler. It plays the
// role StarPU-over-SimGrid plays in the paper (Section V-D, Fig. 4):
// virtual time, per-unit execution speeds, PCIe links with bandwidth and
// contention, GPU memory capacity with LRU eviction and write-back, and
// background prefetch requests.
//
// The simulator is deterministic: events are ordered by (time, sequence
// number) and all randomness flows from the seed in Options.
package sim

import "container/heap"

// event is one scheduled simulator action.
type event struct {
	at  float64
	seq int64
	fn  func()
}

// eventQueue is a min-heap of events ordered by (time, seq).
type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

var _ heap.Interface = (*eventQueue)(nil)
