package sim

import (
	"fmt"
	"math"

	"multiprio/internal/obs"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/trace"
)

// replState is the coherence state of one (handle, memory node) replica.
type replState uint8

const (
	replInvalid replState = iota
	// replFetching: a transfer towards this node is in flight.
	replFetching
	replValid
)

// replica tracks one handle on one memory node. The struct is kept at
// 24 bytes deliberately: one slab of handles × nodes replicas is zeroed
// on every engine construction, and on million-handle graphs that zero
// (plus the first-touch page faults behind it) is a measurable slice of
// the whole run. Waiter callbacks live out-of-line in the manager's
// waitq map — they exist only for the handful of replicas mid-fetch at
// any instant, not for the whole slab.
type replica struct {
	lastUse int64 // engine sequence number of last touch, for LRU
	// Intrusive per-node LRU links (handle IDs, -1 terminates). inLRU
	// marks list membership: a replica is listed exactly while it holds
	// space on the node (valid or fetching). Every lastUse update moves
	// the replica to the list tail, so the list stays sorted by lastUse
	// and evictOne reads its victim off the head instead of scanning.
	lruPrev, lruNext int32
	pin              int32
	state            replState
	dirty            bool
	// viaPrefetch marks a payload staged by a prefetch and not yet
	// consumed by an acquire; it feeds the prefetch hit/late/wasted
	// counters and is never read by placement or eviction decisions.
	viaPrefetch bool
	inLRU       bool
}

// handleState is the per-handle coherence record.
type handleState struct {
	h    *runtime.DataHandle
	repl []replica // indexed by MemID
	// gen counts completed writes; transfers in flight across a write
	// carry stale payloads and are dropped on arrival.
	gen int64
}

// linkState serializes transfers on one directed link (FIFO: PCIe lane
// contention).
type linkState struct {
	busyUntil float64
}

// memoryManager owns data placement: replica states, per-node capacity
// accounting, LRU eviction with dirty write-back, and the transfer
// engine. It implements runtime.DataLocator for the schedulers.
type memoryManager struct {
	eng     *simulation
	machine *platform.Machine
	// states is a value slab indexed by handle ID, with every per-node
	// replica record carved out of one shared backing array: graph
	// build and manager setup cost two allocations total instead of two
	// per handle.
	states   []handleState
	replSlab []replica
	used     []int64 // bytes resident or inbound per node
	overflow []int64 // bytes accepted beyond capacity per node
	// lruHead/lruTail are the per-node intrusive LRU lists over the
	// replica links above, least-recently-used first (-1 when empty).
	// They replace the seed's resident-ID slices, whose full linear
	// scan per eviction dominated memory-starved runs.
	lruHead []int32
	lruTail []int32
	links   [][]linkState

	// waitq holds the callbacks parked on fetching replicas, keyed by
	// handleID*len(Mems)+mem (see wkey). Kept off the replica slab so
	// idle replicas cost no slice header; entries are consumed when the
	// replica's transfer lands and otherwise persist exactly as the old
	// in-struct waiter slices did.
	waitq map[int64][]func()

	// needsScratch is reused across acquire calls (the event loop is
	// single-threaded and acquire never nests, so one buffer suffices;
	// the former per-call map + slice allocations dominated acquire's
	// cost on large runs).
	needsScratch []acquireNeed

	// wallocDst, when non-nil for the duration of one acquire, collects
	// the handles that acquire write-allocated (invalid -> valid without
	// a fetch). A fault abort must free exactly those replicas: they
	// hold uninitialized space, not data. Only set on fault runs.
	wallocDst *[]*runtime.DataHandle

	// Observability (nil probe disables all of it): prebuilt per-node
	// track names plus the running totals behind the counter tracks.
	probe        obs.Probe
	usedTrack    []string
	evictTrack   []string
	ovTrack      []string
	evictions    []int64
	inflight     int64
	prefetchHit  int64
	prefetchLate int64
	prefetchLost int64
}

// acquireNeed is one distinct handle an acquire must make available.
type acquireNeed struct {
	h    *runtime.DataHandle
	read bool
}

func newMemoryManager(eng *simulation, g *runtime.Graph) *memoryManager {
	m := eng.machine
	mm := &memoryManager{
		eng:      eng,
		machine:  m,
		states:   make([]handleState, len(g.Handles)),
		replSlab: make([]replica, len(g.Handles)*len(m.Mems)),
		used:     make([]int64, len(m.Mems)),
		overflow: make([]int64, len(m.Mems)),
		lruHead:  make([]int32, len(m.Mems)),
		lruTail:  make([]int32, len(m.Mems)),
		links:    make([][]linkState, len(m.Mems)),
	}
	for i := range mm.links {
		mm.links[i] = make([]linkState, len(m.Mems))
		mm.lruHead[i] = -1
		mm.lruTail[i] = -1
	}
	for _, h := range g.Handles {
		if int(h.ID) >= len(mm.states) {
			panic(fmt.Sprintf("sim: handle ID %d out of range", h.ID))
		}
		st := &mm.states[h.ID]
		st.h = h
		st.repl = mm.replSlab[int(h.ID)*len(m.Mems) : (int(h.ID)+1)*len(m.Mems)]
		st.repl[h.Home] = replica{state: replValid}
		mm.used[h.Home] += h.Bytes
		mm.lruPush(h.Home, h.ID)
	}
	if eng.probe != nil {
		mm.probe = eng.probe
		mm.usedTrack = make([]string, len(m.Mems))
		mm.evictTrack = make([]string, len(m.Mems))
		mm.ovTrack = make([]string, len(m.Mems))
		mm.evictions = make([]int64, len(m.Mems))
		for i, mn := range m.Mems {
			mm.usedTrack[i] = "mem.used[" + mn.Name + "]"
			mm.evictTrack[i] = "mem.evictions[" + mn.Name + "]"
			mm.ovTrack[i] = "mem.overflow[" + mn.Name + "]"
			// Initial residency (home placement), sampled at t=0.
			mm.probe.Counter(mm.usedTrack[i], 0, 0, float64(mm.used[i]))
		}
	}
	return mm
}

// lruPush appends the replica of handle id to the tail of mem's LRU
// list. Callers guarantee it is not already listed (replicas enter the
// list exactly when their space is reserved).
func (mm *memoryManager) lruPush(mem platform.MemID, id int64) {
	r := &mm.states[id].repl[mem]
	if r.inLRU {
		panic(fmt.Sprintf("sim: handle %d double-listed on mem %d", id, mem))
	}
	r.inLRU = true
	r.lruNext = -1
	r.lruPrev = mm.lruTail[mem]
	if r.lruPrev >= 0 {
		mm.states[r.lruPrev].repl[mem].lruNext = int32(id)
	} else {
		mm.lruHead[mem] = int32(id)
	}
	mm.lruTail[mem] = int32(id)
}

// lruRemove unlinks the replica of handle id from mem's LRU list.
func (mm *memoryManager) lruRemove(mem platform.MemID, id int64) {
	r := &mm.states[id].repl[mem]
	if !r.inLRU {
		return
	}
	if r.lruPrev >= 0 {
		mm.states[r.lruPrev].repl[mem].lruNext = r.lruNext
	} else {
		mm.lruHead[mem] = r.lruNext
	}
	if r.lruNext >= 0 {
		mm.states[r.lruNext].repl[mem].lruPrev = r.lruPrev
	} else {
		mm.lruTail[mem] = r.lruPrev
	}
	r.inLRU = false
}

// lruTouch moves a listed replica to the tail. Every lastUse assignment
// routes through it, which keeps the list sorted by lastUse: sequence
// numbers increase monotonically, so the head is always the minimum —
// exactly the victim the seed's min-lastUse scan picked.
func (mm *memoryManager) lruTouch(mem platform.MemID, id int64) {
	r := &mm.states[id].repl[mem]
	if !r.inLRU || int64(mm.lruTail[mem]) == id {
		return
	}
	mm.lruRemove(mem, id)
	mm.lruPush(mem, id)
}

// wkey addresses one (handle, mem) replica in the waitq map.
func (mm *memoryManager) wkey(id int64, mem platform.MemID) int64 {
	return id*int64(len(mm.machine.Mems)) + int64(mem)
}

// addWaiter parks cb until the replica of handle id on mem turns valid.
func (mm *memoryManager) addWaiter(id int64, mem platform.MemID, cb func()) {
	if mm.waitq == nil {
		mm.waitq = make(map[int64][]func())
	}
	k := mm.wkey(id, mem)
	mm.waitq[k] = append(mm.waitq[k], cb)
}

// takeWaiters removes and returns the callbacks parked on (id, mem).
func (mm *memoryManager) takeWaiters(id int64, mem platform.MemID) []func() {
	if mm.waitq == nil {
		return nil
	}
	k := mm.wkey(id, mem)
	ws := mm.waitq[k]
	if ws != nil {
		delete(mm.waitq, k)
	}
	return ws
}

// noteUsed samples the used-bytes counter of mem; call after every
// mutation of mm.used so the Perfetto track shows exact residency.
func (mm *memoryManager) noteUsed(mem platform.MemID) {
	if mm.probe != nil {
		mm.probe.Counter(mm.usedTrack[mem], mm.eng.now, mm.eng.seq, float64(mm.used[mem]))
	}
}

// event records a replica state change for the execution oracle when
// mem-event collection is on. Seq is assigned at the moment of the
// change, so the event stream is an exact linearization.
func (mm *memoryManager) event(kind trace.MemEventKind, h *runtime.DataHandle, mem platform.MemID, version int64) {
	if !mm.eng.opts.CollectMemEvents {
		return
	}
	mm.eng.tr.AddMemEvent(trace.MemEvent{
		Kind: kind, Handle: h.ID, Mem: mem, Bytes: h.Bytes,
		Version: version, At: mm.eng.now, Seq: mm.eng.nextSeq(),
	})
}

// IsResident implements runtime.DataLocator.
func (mm *memoryManager) IsResident(h *runtime.DataHandle, mem platform.MemID) bool {
	return mm.states[h.ID].repl[mem].state == replValid
}

// TransferEstimate implements runtime.DataLocator: time to bring h to
// mem from the closest valid replica, ignoring queueing.
func (mm *memoryManager) TransferEstimate(h *runtime.DataHandle, mem platform.MemID) float64 {
	st := &mm.states[h.ID]
	if st.repl[mem].state == replValid {
		return 0
	}
	best := math.Inf(1)
	for src := range st.repl {
		if st.repl[src].state != replValid {
			continue
		}
		if t := mm.machine.TransferTime(platform.MemID(src), mem, h.Bytes); t < best {
			best = t
		}
	}
	if math.IsInf(best, 1) {
		// Sole copy in flight somewhere: approximate with home->mem.
		return mm.machine.TransferTime(st.h.Home, mem, h.Bytes)
	}
	return best
}

// acquire pins all of t's data on mem, fetching what is missing, and
// calls done when everything is available. Write-only accesses allocate
// without fetching the previous contents.
func (mm *memoryManager) acquire(t *runtime.Task, mem platform.MemID, done func()) {
	// Needs keep the access-list order: iterating a map here made the
	// fetch issue order — and through link FIFO queueing, the whole
	// simulation — nondeterministic across runs of the same seed.
	// Deduplication is a linear scan over the few accesses a task has.
	wallocs := mm.wallocDst
	mm.wallocDst = nil // re-entrancy safety: scoped to this call only
	needs := mm.needsScratch[:0]
	for _, a := range t.Accesses {
		i := -1
		for j := range needs {
			if needs[j].h.ID == a.Handle.ID {
				i = j
				break
			}
		}
		if i < 0 {
			i = len(needs)
			needs = append(needs, acquireNeed{h: a.Handle})
		}
		if a.Mode.IsRead() {
			needs[i].read = true
		}
	}
	// The join counter and its ready continuation are allocated lazily,
	// on the first need that has to wait: acquires whose data is already
	// resident (or write-allocatable) run closure-free, which most of a
	// large run's acquires are. The join's sentinel count of 1 keeps
	// done from firing before every need has been examined.
	var j *acquireJoin
	for _, n := range needs {
		st := &mm.states[n.h.ID]
		r := &st.repl[mem]
		r.pin++
		r.lastUse = mm.eng.nextSeq()
		mm.lruTouch(mem, n.h.ID)
		if n.read && r.viaPrefetch {
			// A prefetched payload is being consumed: a hit when it
			// already landed, late when the demand caught the transfer
			// still in flight. Counted once per staged payload.
			r.viaPrefetch = false
			if mm.probe != nil {
				if r.state == replValid {
					mm.prefetchHit++
					mm.probe.Counter("sim.prefetch.hits", mm.eng.now, mm.eng.seq, float64(mm.prefetchHit))
				} else {
					mm.prefetchLate++
					mm.probe.Counter("sim.prefetch.late", mm.eng.now, mm.eng.seq, float64(mm.prefetchLate))
				}
			}
		}
		switch {
		case r.state == replValid:
			// Already here.
		case !n.read:
			// Write-only: allocate space, no fetch of old contents.
			// The state flips before allocate so the eviction walk
			// inside allocate sees a live (non-evictable) entry.
			if r.state == replInvalid {
				r.state = replValid
				mm.allocate(mem, n.h)
				mm.event(trace.MemValid, n.h, mem, st.gen)
				if wallocs != nil {
					*wallocs = append(*wallocs, n.h)
				}
			} else {
				// A fetch is in flight (e.g. prefetch): let it land,
				// the space is already accounted.
				if j == nil {
					j = newAcquireJoin(done)
				}
				j.pending++
				mm.addWaiter(n.h.ID, mem, j.ready)
			}
		default:
			if j == nil {
				j = newAcquireJoin(done)
			}
			j.pending++
			mm.fetch(st, mem, false, j.ready)
		}
	}
	// Return the scratch before the sentinel fires: done() may start
	// another task and re-enter acquire synchronously.
	mm.needsScratch = needs[:0]
	if j == nil {
		done() // everything was resident; no continuation was built
		return
	}
	j.ready() // consume the sentinel
}

// acquireJoin joins the asynchronous staging of one acquire: pending
// counts outstanding fetches plus a sentinel, and done fires when the
// last one lands. ready is the prebuilt continuation handed to fetches
// and waiter queues, so each wait site costs no extra closure.
type acquireJoin struct {
	pending int
	done    func()
	ready   func()
}

func newAcquireJoin(done func()) *acquireJoin {
	j := &acquireJoin{pending: 1, done: done}
	j.ready = func() {
		j.pending--
		if j.pending == 0 {
			j.done()
		}
	}
	return j
}

// release unpins t's data on mem and applies write effects: written
// handles become dirty sole copies on mem.
func (mm *memoryManager) release(t *runtime.Task, mem platform.MemID) {
	for ai, a := range t.Accesses {
		st := &mm.states[a.Handle.ID]
		r := &st.repl[mem]
		first := true
		for _, prev := range t.Accesses[:ai] {
			if prev.Handle.ID == a.Handle.ID {
				first = false
				break
			}
		}
		if first {
			r.pin--
			if r.pin < 0 {
				panic("sim: negative pin count")
			}
			r.lastUse = mm.eng.nextSeq()
			mm.lruTouch(mem, a.Handle.ID)
		}
		if a.Mode.IsWrite() {
			r.state = replValid
			// Dirty means "RAM does not hold this value": meaningful
			// only away from the RAM node (write-backs target RAM).
			r.dirty = mem != platform.MemRAM
			st.gen++ // in-flight fetches now carry stale payloads
			mm.event(trace.MemValid, st.h, mem, st.gen)
			for other := range st.repl {
				if platform.MemID(other) == mem {
					continue
				}
				o := &st.repl[other]
				if o.state == replValid {
					o.state = replInvalid
					o.dirty = false
					o.viaPrefetch = false
					mm.used[other] -= st.h.Bytes
					mm.lruRemove(platform.MemID(other), st.h.ID)
					mm.event(trace.MemFree, st.h, platform.MemID(other), 0)
					mm.noteUsed(platform.MemID(other))
				}
			}
		}
	}
}

// prefetch stages t's read data on mem without pinning.
func (mm *memoryManager) prefetch(t *runtime.Task, mem platform.MemID) {
	for _, a := range t.Accesses {
		if a.Mode == runtime.W {
			continue
		}
		st := &mm.states[a.Handle.ID]
		if st.repl[mem].state == replInvalid {
			mm.fetch(st, mem, true, nil)
		}
	}
}

// fetch brings st's handle to dst. cb (optional) runs when valid.
func (mm *memoryManager) fetch(st *handleState, dst platform.MemID, isPrefetch bool, cb func()) {
	r := &st.repl[dst]
	switch r.state {
	case replValid:
		if cb != nil {
			cb()
		}
		return
	case replFetching:
		if cb != nil {
			mm.addWaiter(st.h.ID, dst, cb)
		}
		return
	}
	// Pick the source: prefer RAM, then any valid replica.
	src := platform.MemID(-1)
	if st.repl[platform.MemRAM].state == replValid {
		src = platform.MemRAM
	} else {
		for i := range st.repl {
			if st.repl[i].state == replValid {
				src = platform.MemID(i)
				break
			}
		}
	}
	if src < 0 {
		// The sole copy is in flight (e.g. an eviction write-back to
		// RAM). Chain onto its arrival, then retry.
		for i := range st.repl {
			if st.repl[i].state == replFetching && platform.MemID(i) != dst {
				mm.addWaiter(st.h.ID, platform.MemID(i), func() {
					mm.fetch(st, dst, isPrefetch, cb)
				})
				return
			}
		}
		panic(fmt.Sprintf("sim: handle %q has no valid or in-flight replica", st.h.Name))
	}
	r.state = replFetching
	r.viaPrefetch = isPrefetch
	if cb != nil {
		mm.addWaiter(st.h.ID, dst, cb)
	}
	mm.allocate(dst, st.h)
	mm.transfer(st, src, dst, isPrefetch, false)
}

// allocate reserves space for h on mem, evicting LRU unpinned replicas
// when over capacity. Allocation never blocks: if nothing is evictable
// the node overflows (counted, reported), which keeps the simulation
// deadlock-free while still surfacing memory pressure.
func (mm *memoryManager) allocate(mem platform.MemID, h *runtime.DataHandle) {
	// Evict before reserving, not after: the node must never transiently
	// exceed capacity without the overshoot being counted as overflow.
	cap := mm.machine.Mems[mem].CapacityBytes
	if cap > 0 {
		for mm.used[mem]+h.Bytes > cap {
			if !mm.evictOne(mem, h.ID) {
				mm.overflow[mem] += mm.used[mem] + h.Bytes - cap
				if mm.probe != nil {
					mm.probe.Counter(mm.ovTrack[mem], mm.eng.now, mm.eng.seq, float64(mm.overflow[mem]))
				}
				break
			}
		}
	}
	mm.used[mem] += h.Bytes
	mm.event(trace.MemAlloc, h, mem, 0)
	mm.lruPush(mem, h.ID)
	mm.noteUsed(mem)
}

// evictOne drops the least-recently-used unpinned valid replica on mem,
// write-backing dirty sole copies to RAM. Returns false when nothing is
// evictable. The walk starts at the LRU head — the minimal lastUse —
// and stops at the first evictable entry, which is the exact victim the
// seed's full min-lastUse scan selected; skipped entries are pinned,
// mid-fetch, protected, or write-back-blocked.
func (mm *memoryManager) evictOne(mem platform.MemID, protect int64) bool {
	id := int64(mm.lruHead[mem])
	for id >= 0 {
		st := &mm.states[id]
		r := &st.repl[mem]
		// A dirty sole copy is unevictable while RAM is replFetching: the
		// in-flight payload may predate the latest write (it would be
		// dropped stale on arrival), and the write-back that would save
		// this value cannot start until that transfer lands. Evicting
		// here would discard the only copy.
		evictable := r.state == replValid && r.pin == 0 && id != protect &&
			!(r.dirty && st.repl[platform.MemRAM].state == replFetching)
		if evictable {
			break
		}
		id = int64(r.lruNext)
	}
	if id < 0 {
		return false
	}
	st := &mm.states[id]
	r := &st.repl[mem]
	if r.viaPrefetch {
		// A prefetched payload evicted before any acquire touched it:
		// the prefetch was wasted bandwidth.
		r.viaPrefetch = false
		if mm.probe != nil {
			mm.prefetchLost++
			mm.probe.Counter("sim.prefetch.wasted", mm.eng.now, mm.eng.seq, float64(mm.prefetchLost))
		}
	}
	if r.dirty {
		// Sole copy: push it back to RAM. The bytes leave this node
		// now; readers chase the RAM replica which is replFetching
		// until the write-back lands.
		ram := &st.repl[platform.MemRAM]
		if ram.state == replValid {
			panic("sim: dirty replica coexists with valid RAM copy")
		}
		if ram.state == replInvalid {
			ram.state = replFetching
			mm.used[platform.MemRAM] += st.h.Bytes
			mm.event(trace.MemAlloc, st.h, platform.MemRAM, 0)
			mm.lruPush(platform.MemRAM, id)
			mm.noteUsed(platform.MemRAM)
			mm.transfer(st, mem, platform.MemRAM, false, true)
		}
	}
	r.state = replInvalid
	r.dirty = false
	mm.used[mem] -= st.h.Bytes
	mm.lruRemove(mem, id)
	mm.event(trace.MemFree, st.h, mem, 0)
	mm.noteUsed(mem)
	if mm.probe != nil {
		mm.evictions[mem]++
		mm.probe.Counter(mm.evictTrack[mem], mm.eng.now, mm.eng.seq, float64(mm.evictions[mem]))
	}
	return true
}

// transfer schedules the movement of st's handle from src to dst on the
// FIFO link and marks dst valid on arrival.
func (mm *memoryManager) transfer(st *handleState, src, dst platform.MemID, isPrefetch, isWriteback bool) {
	link := &mm.links[src][dst]
	now := mm.eng.now
	start := now
	if link.busyUntil > start {
		start = link.busyUntil
	}
	dur := mm.machine.TransferTime(src, dst, st.h.Bytes)
	end := start + dur
	link.busyUntil = end
	// A transfer whose occupancy starts inside a failure window of this
	// link fails: it burns the link time, then drops on arrival and a
	// fresh transfer is issued. Windows are finite, so retries terminate.
	failTransfer := false
	if fi := mm.eng.faults; fi != nil && fi.plan.TransferFails(src, dst, start) {
		failTransfer = true
	}
	if mm.eng.tr != nil {
		mm.eng.tr.AddTransfer(trace.Transfer{
			Handle: st.h.ID, Src: src, Dst: dst, Bytes: st.h.Bytes,
			Start: start, End: end, Prefetch: isPrefetch, Writeback: isWriteback,
			Failed: failTransfer,
		})
	}
	gen := st.gen
	if mm.probe != nil {
		mm.inflight++
		mm.probe.Counter("sim.transfers.inflight", now, mm.eng.seq, float64(mm.inflight))
	}
	mm.eng.at(end, func() {
		if mm.probe != nil {
			mm.inflight--
			mm.probe.Counter("sim.transfers.inflight", mm.eng.now, mm.eng.seq, float64(mm.inflight))
		}
		r := &st.repl[dst]
		if r.state != replFetching {
			return // replica was torn down while in flight
		}
		if failTransfer {
			// The payload was corrupted in flight: drop it and retry the
			// same route. Waiters stay parked on the replica; the space
			// stays accounted (still replFetching).
			mm.eng.faults.stats.TransferFailures++
			mm.transfer(st, src, dst, isPrefetch, isWriteback)
			return
		}
		if st.gen != gen {
			// A write completed elsewhere during the flight: the
			// payload is stale. Drop it and re-fetch the fresh value
			// for anyone still waiting.
			r.state = replInvalid
			mm.used[dst] -= st.h.Bytes
			mm.lruRemove(dst, st.h.ID)
			mm.event(trace.MemFree, st.h, dst, 0)
			mm.noteUsed(dst)
			if r.viaPrefetch {
				r.viaPrefetch = false
				if mm.probe != nil {
					mm.prefetchLost++
					mm.probe.Counter("sim.prefetch.wasted", mm.eng.now, mm.eng.seq, float64(mm.prefetchLost))
				}
			}
			for _, w := range mm.takeWaiters(st.h.ID, dst) {
				mm.fetch(st, dst, false, w)
			}
			return
		}
		r.state = replValid
		r.lastUse = mm.eng.nextSeq()
		mm.lruTouch(dst, st.h.ID)
		mm.event(trace.MemValid, st.h, dst, gen)
		if dst == platform.MemRAM {
			// RAM now holds the current value: no replica is the sole
			// (dirty) copy anymore.
			for i := range st.repl {
				st.repl[i].dirty = false
			}
		}
		for _, w := range mm.takeWaiters(st.h.ID, dst) {
			w()
		}
	})
}

// abortAcquire undoes a fault-aborted acquire on mem: unpin every
// distinct handle of t, and free the replicas the acquire itself
// write-allocated (they hold uninitialized space, never a committed
// value — leaving them valid would let a later reader see garbage).
// In-flight fetches started by the acquire are left to land: they
// become ordinary unpinned replicas, like a prefetch would.
func (mm *memoryManager) abortAcquire(t *runtime.Task, mem platform.MemID, wallocs []*runtime.DataHandle) {
	for ai, a := range t.Accesses {
		first := true
		for _, prev := range t.Accesses[:ai] {
			if prev.Handle.ID == a.Handle.ID {
				first = false
				break
			}
		}
		if !first {
			continue
		}
		r := &mm.states[a.Handle.ID].repl[mem]
		r.pin--
		if r.pin < 0 {
			panic("sim: negative pin count in fault abort")
		}
	}
	for _, h := range wallocs {
		st := &mm.states[h.ID]
		r := &st.repl[mem]
		if r.state == replValid && r.pin == 0 {
			r.state = replInvalid
			r.dirty = false
			mm.used[mem] -= h.Bytes
			mm.lruRemove(mem, h.ID)
			mm.event(trace.MemFree, h, mem, 0)
			mm.noteUsed(mem)
		}
	}
}

// loseNode handles a memory node whose last worker was killed: valid
// replicas there are lost to the schedulers and must be re-fetchable
// from the coherence state. Sole copies are drained to RAM first (the
// DMA engine survives the cores, as on a real accelerator), then every
// valid replica is invalidated. In-flight inbound transfers are left
// to land — a landed payload on a dead node can still serve as a
// transfer source during the drain. Replicas drain in LRU order (the
// node's recency list is the only order it keeps); the order is stable
// for a given seed and plan, preserving run-to-run determinism.
// Returns the number of replicas dropped (or doomed to drop once a
// pending RAM transfer resolves).
func (mm *memoryManager) loseNode(mem platform.MemID) int {
	if mem == platform.MemRAM {
		return 0 // host RAM persists; only device memories are lost
	}
	lost := 0
	var list []int64
	for id := mm.lruHead[mem]; id >= 0; id = mm.states[id].repl[mem].lruNext {
		list = append(list, int64(id))
	}
	for _, id := range list {
		st := &mm.states[id]
		r := &st.repl[mem]
		if r.state != replValid || r.pin > 0 {
			// Fetching: inbound DMA, let it drain. Pinned: unreachable —
			// every attempt on this node was aborted (and unpinned)
			// before the node is lost.
			continue
		}
		other := false
		for i := range st.repl {
			if platform.MemID(i) != mem && st.repl[i].state == replValid {
				other = true
				break
			}
		}
		if other {
			if r.dirty && st.repl[platform.MemRAM].state != replValid {
				// The surviving copies were fetched from this one and
				// are clean. One of them must inherit the write-back
				// responsibility, or the value silently vanishes the
				// moment the last clean copy is evicted.
				for i := range st.repl {
					if platform.MemID(i) != mem && platform.MemID(i) != platform.MemRAM &&
						st.repl[i].state == replValid {
						st.repl[i].dirty = true
						break
					}
				}
			}
			mm.dropReplica(st, mem)
			lost++
			continue
		}
		// Sole copy: it must reach RAM before the replica can drop.
		ram := &st.repl[platform.MemRAM]
		switch ram.state {
		case replFetching:
			// A transfer towards RAM is already in flight, possibly with
			// a stale payload. Defer the drop until RAM resolves to the
			// current value (the stale-drop path re-fetches from this
			// still-valid replica, then our waiter runs).
			mm.addWaiter(st.h.ID, platform.MemRAM, func() { mm.dropReplica(st, mem) })
			lost++
		case replInvalid:
			ram.state = replFetching
			mm.used[platform.MemRAM] += st.h.Bytes
			mm.event(trace.MemAlloc, st.h, platform.MemRAM, 0)
			mm.lruPush(platform.MemRAM, id)
			mm.noteUsed(platform.MemRAM)
			mm.transfer(st, mem, platform.MemRAM, false, true)
			// The transfer models a snapshot: the source may drop now,
			// and readers chase the RAM replica.
			mm.dropReplica(st, mem)
			lost++
		}
	}
	return lost
}

// dropReplica invalidates one valid unpinned replica and releases its
// accounting. No-op if the replica moved on in the meantime (deferred
// drops race with normal invalidation).
func (mm *memoryManager) dropReplica(st *handleState, mem platform.MemID) {
	r := &st.repl[mem]
	if r.state != replValid || r.pin > 0 {
		return
	}
	if r.viaPrefetch {
		r.viaPrefetch = false
		if mm.probe != nil {
			mm.prefetchLost++
			mm.probe.Counter("sim.prefetch.wasted", mm.eng.now, mm.eng.seq, float64(mm.prefetchLost))
		}
	}
	r.state = replInvalid
	r.dirty = false
	mm.used[mem] -= st.h.Bytes
	mm.lruRemove(mem, st.h.ID)
	mm.event(trace.MemFree, st.h, mem, 0)
	mm.noteUsed(mem)
}

// residentBytes returns the bytes counted on mem (for tests/reports).
func (mm *memoryManager) residentBytes(mem platform.MemID) int64 { return mm.used[mem] }
