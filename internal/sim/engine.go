package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"multiprio/internal/fault"
	"multiprio/internal/obs"
	"multiprio/internal/perfmodel"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/spec"
	"multiprio/internal/trace"
)

// Options configures one simulated run. New code should prefer
// NewEngine with runtime functional options; Options remains as the
// explicit form the constructors lower into.
type Options struct {
	// Seed drives all randomness (execution-time noise).
	Seed int64
	// Noise is the relative standard deviation of execution times
	// (0 = fully deterministic kernels).
	Noise float64
	// Estimator is what schedulers see as the performance model.
	// Nil defaults to perfmodel.Oracle (perfectly calibrated offline
	// model, as StarPU assumes after calibration runs).
	Estimator perfmodel.Estimator
	// History, when non-nil, receives every observed execution time;
	// pass it as Estimator too to simulate online calibration.
	History *perfmodel.History
	// CollectTrace enables full span/transfer recording (always on for
	// makespan and idle accounting; this flag keeps transfer spans).
	CollectTrace bool
	// CollectMemEvents records every replica state change (allocation,
	// validation, invalidation) in the trace, for the execution oracle's
	// coherence and capacity replay. Off by default: large runs emit
	// many events.
	CollectMemEvents bool
	// MaxEvents aborts runaway simulations; 0 means a generous default.
	MaxEvents int64
	// Pipeline is the number of tasks a worker may hold concurrently:
	// one computing plus lookahead slots whose data transfers overlap
	// the current compute, as StarPU workers do. Default 2.
	Pipeline int
	// Probe receives scheduler decision events and engine counter
	// samples (internal/obs), stamped with simulated time and the
	// engine's linearization sequence. Nil disables observation.
	// Attaching a probe never perturbs the simulation: probes read the
	// sequencer without advancing it, and the canonical trace is
	// byte-identical with and without one.
	Probe obs.Probe
	// Faults, when non-nil and non-empty, injects the fault plan as
	// discrete events: worker kills abort the running attempt and roll
	// the task back for a retry, slowdown windows stretch kernels
	// starting inside them, transfer-failure windows make transfers
	// fail on arrival and re-issue, and model noise deterministically
	// mispredicts the schedulers' estimates. Same seed + same plan ⇒
	// byte-identical canonical trace. The plan's Speculation policy
	// enables straggler mitigation: attempts running past
	// slack × expected duration are replicated through the normal Push
	// path, first success wins, losers are cancelled.
	Faults *fault.Plan
	// Watchdog, when armed, aborts a run whose event loop is still
	// going after the wall-clock deadline and dumps diagnostics
	// (decision tail, per-worker state). Virtual time cannot hang, but
	// the event loop can spin (a pathological scheduler or plan), and
	// wall time is what CI kills on.
	Watchdog runtime.Watchdog
	// Arrivals, when non-nil, makes the run a streaming run: entry i is
	// the virtual-time submission instant of task i, and the task is
	// not pushed to the scheduler before max(arrival, dependencies
	// released). Arrival releases are discrete events, so they
	// linearize with the rest of the simulation and stay deterministic;
	// a task whose arrival already passed is pushed inline with no
	// extra event, which makes an all-zero plan byte-identical to batch
	// mode. See internal/stream for plan construction.
	Arrivals []float64
	// Observer, when non-nil, receives the run lifecycle (RunStart /
	// RunEnd) and every probe event, fanned in beside Probe. Like plain
	// probes, observers are read-only: the canonical trace is
	// byte-identical with one attached.
	Observer runtime.RunObserver
}

// Result reports one simulated run. It is the engine-agnostic
// runtime.Result: makespan, trace, per-worker statistics, and fault
// recovery counters.
type Result = runtime.Result

// ErrDeadlock is returned when the event queue drains with unfinished
// tasks: every worker idle, nothing in flight, and the scheduler refuses
// to hand out the remaining tasks.
var ErrDeadlock = errors.New("sim: deadlock - no events pending but tasks remain")

// Engine is a configured simulator for one machine and scheduler,
// implementing runtime.Engine. Each Run spins up a fresh simulation.
type Engine struct {
	machine *platform.Machine
	sched   runtime.Scheduler
	opts    Options
}

// NewEngine builds a simulator engine for machine m driving scheduler
// s. It returns an error — symmetric with runtime.NewThreadedEngine —
// when either is nil.
func NewEngine(m *platform.Machine, s runtime.Scheduler, opts ...runtime.Option) (*Engine, error) {
	if m == nil {
		return nil, errors.New("sim: NewEngine: nil machine")
	}
	if s == nil {
		return nil, errors.New("sim: NewEngine: nil scheduler")
	}
	cfg := runtime.BuildRunConfig(opts)
	return &Engine{machine: m, sched: s, opts: Options{
		Seed:             cfg.Seed,
		Noise:            cfg.Noise,
		Estimator:        cfg.Estimator,
		History:          cfg.History,
		CollectMemEvents: cfg.CollectMemEvents,
		MaxEvents:        cfg.MaxEvents,
		Pipeline:         cfg.Lookahead,
		CollectTrace:     cfg.CollectTrace,
		Probe:            cfg.Probe,
		Faults:           cfg.Faults,
		Watchdog:         cfg.Watchdog,
		Arrivals:         cfg.Arrivals,
		Observer:         cfg.Observer,
	}}, nil
}

// Run implements runtime.Engine.
func (e *Engine) Run(g *runtime.Graph) (*Result, error) {
	return Run(e.machine, g, e.sched, e.opts)
}

// simulation is one in-flight simulated run.
type simulation struct {
	machine *platform.Machine
	graph   *runtime.Graph
	sched   runtime.Scheduler
	opts    Options
	env     *runtime.Env

	now          float64
	seq          int64
	pq           eventQueue
	rng          *rand.Rand
	mm           *memoryManager
	tr           *trace.Trace
	workers      []simWorker
	left         int
	events       int64
	drainPending bool
	// batch is the reused same-timestamp event buffer of the main loop.
	batch []event
	// wakeFns and drainFn are the per-worker wake and coalesced drain
	// event handlers, built once: the seed allocated a fresh closure per
	// wake, which dominated the event loop's allocation profile.
	wakeFns []func()
	drainFn func()
	// runErr aborts the event loop (retry budget exhausted).
	runErr error

	// faults is the fault-injection state; nil on fault-free runs, so
	// the hot path pays a single nil check per guarded site.
	faults *faultInjector
	// specCtl is the speculation controller; nil unless the fault
	// plan's Speculation policy is enabled (implies faults != nil: the
	// controller rides on the attempt records).
	specCtl *spec.Controller
	// wdTail is the watchdog's decision ring buffer (nil when the
	// watchdog is unarmed).
	wdTail  *runtime.DecisionTail
	wdStart time.Time

	// Commute-mode mutual exclusion in virtual time: handle ID -> held,
	// plus retry continuations parked on a busy lock.
	commuteHeld    map[int64]bool
	commuteWaiters map[int64][]func()

	// probe mirrors opts.Probe; pushed/popped/completed feed the
	// engine-level submitted/ready/completed counters and are only
	// maintained while a probe is attached.
	probe     obs.Probe
	pushed    int64
	popped    int64
	completed int64
}

type simWorker struct {
	info        runtime.WorkerInfo
	unit        platform.Unit
	wakePending bool
	// dead marks a worker removed by a KillWorker fault.
	dead bool
	// inflight counts tasks popped and not yet finished (computing
	// plus lookahead slots acquiring data).
	inflight int
	// computing is non-nil while a kernel occupies the unit.
	computing *runtime.Task
	// freeAt is when the unit last became free, for wait accounting.
	freeAt float64
	// staged queues tasks whose data is ready, waiting for the unit.
	staged []stagedTask
	// fin holds the arguments of the in-flight kernel-finish event and
	// finFn is the prebuilt handler reading them — valid on fault-free
	// runs only, where at most one kernel (and so one finish event) per
	// worker is outstanding and nothing can cancel it. Fault runs keep
	// a per-kernel closure: attempts are cancellable and the captured
	// runState is the cancellation guard.
	fin   finishArgs
	finFn func()
}

// finishArgs carries one kernel completion from maybeCompute to
// finishTask through the worker's reusable finish slot.
type finishArgs struct {
	t            *runtime.Task
	blockedSince float64
	wait         float64
	dur          float64
	startSeq     int64
}

type stagedTask struct {
	t     *runtime.Task
	popAt float64
	// a is the fault-tracking attempt record (nil on fault-free runs);
	// it binds the staged entry to the exact attempt so concurrent
	// speculation attempts of one task never share kernel bookkeeping.
	a *attempt
}

// Run simulates the execution of g on m under scheduler s.
func Run(m *platform.Machine, g *runtime.Graph, s runtime.Scheduler, opts Options) (*Result, error) {
	if o := opts.Observer; o != nil {
		// The observer's probe half joins the fan-out; its lifecycle
		// hooks bracket the run.
		opts.Probe = obs.Combine(opts.Probe, o)
		o.RunStart(runtime.RunInfo{
			Machine: m, Tasks: len(g.Tasks), Scheduler: s.Name(), Engine: "sim",
		})
		eng, err := runEngine(m, g, s, opts)
		var res *Result
		if err == nil {
			res = eng.result()
		}
		o.RunEnd(res, err)
		return res, err
	}
	eng, err := runEngine(m, g, s, opts)
	if err != nil {
		return nil, err
	}
	return eng.result(), nil
}

// result assembles the runtime.Result of a finished simulation.
func (eng *simulation) result() *Result {
	res := &Result{
		Makespan:      eng.tr.Makespan,
		Trace:         eng.tr,
		OverflowBytes: eng.mm.overflow,
		Events:        eng.events,
	}
	var kills []runtime.AppliedKill
	if eng.faults != nil {
		res.Faults = eng.faults.stats
		kills = eng.faults.stats.AppliedKills
	}
	if eng.specCtl != nil {
		res.Spec = eng.specCtl.Stats
		// Launching a replica clears its task's claim (ResetForRetry) so
		// a worker could pop the copy. A replica still queued when its
		// task won stays claimable until the run ends — schedulers panic
		// on claimed tasks in their queues — so the winner's claim is
		// re-asserted only now, with every pop done.
		for _, t := range eng.graph.Tasks {
			if !t.Claimed() {
				t.TryClaim()
			}
		}
	}
	res.Workers = runtime.WorkerStatsFromTrace(eng.machine, eng.tr, kills)
	res.Stream = runtime.StreamStatsOf(eng.sched)
	return res
}

// runEngine executes the simulation and returns the engine itself, so
// in-package tests can inspect the memory manager's final state.
func runEngine(m *platform.Machine, g *runtime.Graph, s runtime.Scheduler, opts Options) (*simulation, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := runtime.ValidateArrivals(opts.Arrivals, g); err != nil {
		return nil, err
	}
	eng := &simulation{
		machine: m,
		graph:   g,
		sched:   s,
		opts:    opts,
		rng:     rand.New(rand.NewSource(opts.Seed)),
		tr:      trace.New(m),
		left:    len(g.Tasks),
	}
	// Presize the trace and the event queue from what the run will
	// certainly produce: one span per task, and a steady state of one
	// compute event per busy worker plus wake/transfer events. Span
	// append growth was the single largest allocation cost of
	// million-task runs.
	eng.tr.Reserve(len(g.Tasks), 0, 0)
	eng.pq.near = make([]event, 0, 8*len(m.Units)+64)
	eng.probe = opts.Probe
	if opts.Watchdog.Armed() {
		// The watchdog keeps a decision tail for its dump. Probes are
		// behavior-neutral by construction (they read the sequencer
		// without advancing it), so arming the watchdog never perturbs
		// the trace.
		eng.wdTail = runtime.NewDecisionTail(opts.Watchdog.TailLen())
		eng.probe = runtime.WatchdogProbe(opts.Probe, eng.wdTail)
		opts.Probe = eng.probe
		eng.opts.Probe = eng.probe
		eng.wdStart = time.Now()
	}
	eng.mm = newMemoryManager(eng, g)
	eng.commuteHeld = make(map[int64]bool)
	eng.commuteWaiters = make(map[int64][]func())
	eng.workers = make([]simWorker, len(m.Units))
	eng.wakeFns = make([]func(), len(m.Units))
	for i, u := range m.Units {
		eng.workers[i] = simWorker{
			info: runtime.WorkerInfo{ID: platform.UnitID(i), Arch: u.Arch, Mem: u.Mem},
			unit: u,
		}
		w := platform.UnitID(i)
		eng.wakeFns[i] = func() {
			eng.workers[w].wakePending = false
			eng.tryPop(w)
		}
		wk := &eng.workers[i]
		wk.finFn = func() {
			f := wk.fin
			eng.finishTask(f.t, wk, nil, f.blockedSince, f.wait, f.dur, f.startSeq)
		}
	}
	eng.drainFn = func() {
		eng.drainPending = false
		for i := range eng.workers {
			wk := &eng.workers[i]
			if !wk.dead && wk.canPop(eng.pipeline()) && !wk.wakePending {
				eng.tryPop(platform.UnitID(i))
			}
		}
	}

	est := opts.Estimator
	if est == nil {
		est = perfmodel.Oracle{}
	}
	if !opts.Faults.Empty() {
		eng.faults = newFaultInjector(opts.Faults)
		if opts.Faults.ModelNoise > 0 {
			est = fault.NoisyEstimator{
				Base: est, Rel: opts.Faults.ModelNoise, Seed: opts.Faults.NoiseSeed,
			}
		}
		if pol := opts.Faults.SpecPolicy(); pol.Enabled {
			eng.specCtl = spec.New(pol, eng.probe,
				func() float64 { return eng.now },
				func() int64 { return eng.seq })
		}
	}
	env := runtime.NewEnv(m, g)
	env.Model = est
	env.Locator = eng.mm
	env.Now = func() float64 { return eng.now }
	env.Prefetch = func(t *runtime.Task, mem platform.MemID) {
		eng.mm.prefetch(t, mem)
	}
	if opts.Probe != nil {
		env.Probe = opts.Probe
		// Read-only view of the linearization sequencer: probes stamp
		// events with the last-assigned seq and never advance it. Only
		// installed (one closure allocation) when a probe consumes it.
		env.Seq = func() int64 { return eng.seq }
	}
	eng.env = env
	s.Init(env)
	if eng.faults != nil {
		// Kill events enter the queue up front; window faults
		// (slowdowns, transfer failures) apply by time lookup.
		for _, ev := range opts.Faults.Kills() {
			ev := ev
			eng.at(ev.At, func() { eng.applyKill(ev.Worker) })
		}
	}

	maxEvents := opts.MaxEvents
	if maxEvents <= 0 {
		maxEvents = 500_000_000
	}

	for _, t := range g.Roots(nil) {
		if at := eng.arrivalOf(t); at > 0 {
			// Streaming run: the root has not arrived yet. Its push is a
			// discrete event at the arrival instant.
			t := t
			eng.at(at, func() { eng.pushArrived(t) })
			continue
		}
		t.ReadyAt = 0
		s.Push(t)
		if eng.probe != nil {
			eng.pushed++
		}
	}
	eng.noteProgress()
	for i := range eng.workers {
		eng.wake(platform.UnitID(i))
	}

	// wdMask throttles the watchdog's wall-clock reads to one per 256
	// events; virtual time is free, syscalls are not.
	const wdMask = 255
	for eng.pq.len() > 0 && eng.left > 0 && eng.runErr == nil {
		// Same-timestamp events process as one batch: the timestamp
		// advances once, then the handlers run in seq order. Every
		// per-event abort condition of the seed loop (completion, run
		// error, event budget, watchdog) still applies between handlers,
		// leaving the rest of the batch unprocessed exactly as the seed
		// left it queued.
		eng.batch = eng.pq.popBatch(eng.batch[:0])
		if eng.batch[0].at < eng.now {
			return nil, fmt.Errorf("sim: time went backwards (%g < %g)", eng.batch[0].at, eng.now)
		}
		eng.now = eng.batch[0].at
		for i := range eng.batch {
			if eng.left == 0 || eng.runErr != nil {
				break
			}
			eng.batch[i].fn()
			eng.batch[i].fn = nil
			eng.events++
			if eng.events > maxEvents {
				return nil, fmt.Errorf("sim: exceeded %d events at t=%g with %d tasks left", maxEvents, eng.now, eng.left)
			}
			if opts.Watchdog.Armed() && eng.events&wdMask == 0 &&
				time.Since(eng.wdStart) > opts.Watchdog.Deadline {
				eng.dumpWatchdog(opts.Watchdog)
				return nil, fmt.Errorf("sim: %w after %v (%d events, %d tasks left, t=%g, scheduler %s)",
					runtime.ErrWatchdog, opts.Watchdog.Deadline, eng.events, eng.left, eng.now, s.Name())
			}
		}
	}
	if eng.runErr != nil {
		return nil, eng.runErr
	}
	if eng.left > 0 {
		return nil, fmt.Errorf("%w (%d of %d tasks unfinished at t=%g, scheduler %s)",
			ErrDeadlock, eng.left, len(g.Tasks), eng.now, s.Name())
	}
	return eng, nil
}

// noteProgress samples the engine-level progress counters: tasks whose
// dependencies released so far (submitted to the scheduler), tasks
// ready (submitted and not yet handed to a worker), and completions.
func (eng *simulation) noteProgress() {
	if eng.probe == nil {
		return
	}
	eng.probe.Counter("sim.submitted", eng.now, eng.seq, float64(eng.pushed))
	eng.probe.Counter("sim.ready", eng.now, eng.seq, float64(eng.pushed-eng.popped))
	eng.probe.Counter("sim.completed", eng.now, eng.seq, float64(eng.completed))
}

// arrivalOf returns the streaming arrival time of t (0 in batch mode).
func (eng *simulation) arrivalOf(t *runtime.Task) float64 {
	if eng.opts.Arrivals == nil {
		return 0
	}
	return eng.opts.Arrivals[t.ID]
}

// pushArrived hands a task whose arrival instant just passed to the
// scheduler and wakes the workers: the machine may have gone fully idle
// waiting for work to arrive. Only reached from arrival events
// (arrival > push instant), so batch-mode traces never see it.
func (eng *simulation) pushArrived(t *runtime.Task) {
	t.ReadyAt = eng.now
	eng.sched.Push(t)
	if eng.probe != nil {
		eng.pushed++
		eng.noteProgress()
	}
	eng.wakeAll()
}

// at schedules fn at time t (>= now). Events at the current instant —
// the wake/drain majority — take the queue's O(1) FIFO band.
func (eng *simulation) at(t float64, fn func()) {
	if t <= eng.now {
		eng.pq.pushNow(event{at: eng.now, seq: eng.nextSeq(), fn: fn})
		return
	}
	eng.pq.push(event{at: t, seq: eng.nextSeq(), fn: fn})
}

func (eng *simulation) nextSeq() int64 {
	eng.seq++
	return eng.seq
}

// pipeline returns the per-worker task pipeline depth.
func (eng *simulation) pipeline() int {
	if eng.opts.Pipeline > 0 {
		return eng.opts.Pipeline
	}
	return 2
}

// wake schedules a pop attempt for worker w unless one is pending.
func (eng *simulation) wake(w platform.UnitID) {
	wk := &eng.workers[w]
	if wk.dead || !wk.canPop(eng.pipeline()) || wk.wakePending {
		return
	}
	wk.wakePending = true
	eng.at(eng.now, eng.wakeFns[w])
}

// wakeAll wakes every worker with free pipeline slots. A single
// coalesced drain event per batch of completions keeps the event count
// linear in tasks rather than tasks × workers.
func (eng *simulation) wakeAll() {
	if eng.drainPending {
		return
	}
	eng.drainPending = true
	eng.at(eng.now, eng.drainFn)
}

// canPop reports whether worker w may take another task: its first task
// when idle, or a lookahead task while a kernel is running. Lookahead
// pops are deliberately one-at-a-time through queued wake events so
// that same-instant pops of other idle workers interleave fairly.
func (wk *simWorker) canPop(pipeline int) bool {
	if wk.inflight == 0 {
		return true
	}
	return wk.computing != nil && wk.inflight < pipeline
}

// tryPop takes at most one task for worker w and starts acquiring its
// data immediately, overlapping the current compute as StarPU workers
// with lookahead do.
func (eng *simulation) tryPop(w platform.UnitID) {
	wk := &eng.workers[w]
	if wk.dead || !wk.canPop(eng.pipeline()) {
		return
	}
	t := eng.sched.Pop(wk.info)
	if t == nil {
		return
	}
	if !t.Claimed() {
		panic(fmt.Sprintf("sim: scheduler %s returned unclaimed task %d", eng.sched.Name(), t.ID))
	}
	if eng.probe != nil {
		eng.popped++
		eng.noteProgress()
	}
	if eng.specCtl != nil && eng.specCtl.Done(t.ID) {
		// Stale speculative replica: another attempt completed while
		// this copy sat in the scheduler's queue. Discard it unrun (the
		// winner already committed and released the successors) and
		// probe again for real work.
		eng.wake(w)
		return
	}
	wk.inflight++
	var a *attempt
	if eng.faults != nil {
		a = eng.faults.newAttempt(t, wk)
	}
	eng.stageTask(t, wk, a)
	if wk.canPop(eng.pipeline()) {
		eng.wake(w)
	}
}

// stageTask first takes the task's commute locks (a commuting update
// must read its predecessor's result, so the lock gates the data
// acquisition too), then acquires the data on the worker's memory node
// and queues the task for the unit. a is the fault-tracking attempt
// record (nil on fault-free runs).
func (eng *simulation) stageTask(t *runtime.Task, wk *simWorker, a *attempt) {
	if a != nil && (a.cancelled || !eng.faults.isLive(a)) {
		// The attempt was aborted while parked on a commute lock (its
		// worker died, or a speculation sibling won); the rollback
		// already happened.
		return
	}
	if !eng.tryLockCommute(t, wk, a) {
		return // parked until the commute lock frees
	}
	popAt := eng.now
	if a == nil {
		// Fault-free runs have exactly one attempt; stamp the placement
		// immediately. Attempt-tracked runs defer the commit to the
		// winning attempt's finishTask, because concurrent speculation
		// attempts must not race on the shared task fields.
		t.RanOn = wk.info.ID
	}
	if a != nil {
		a.locked = true
		eng.mm.wallocDst = &a.wallocs
	}
	eng.mm.acquire(t, wk.info.Mem, func() {
		if a != nil && a.cancelled {
			return // aborted while transfers were in flight
		}
		wk.staged = append(wk.staged, stagedTask{t: t, popAt: popAt, a: a})
		eng.maybeCompute(wk)
	})
	if a != nil {
		a.pinned = true
	}
}

// maybeCompute starts the next staged task when the unit is free.
func (eng *simulation) maybeCompute(wk *simWorker) {
	if wk.dead || wk.computing != nil || len(wk.staged) == 0 {
		return
	}
	st := wk.staged[0]
	wk.staged = wk.staged[1:]
	t := st.t
	wk.computing = t
	// Wait is the stretch the unit actually sat blocked on this task's
	// transfers: from when it was both free and the task was popped.
	blockedSince := st.popAt
	if wk.freeAt > blockedSince {
		blockedSince = wk.freeAt
	}
	wait := eng.now - blockedSince
	if st.a == nil {
		t.StartAt = blockedSince
	}
	startSeq := eng.nextSeq() // linearization point of the kernel start
	base, ok := t.BaseCost(wk.info.Arch)
	if !ok {
		panic(fmt.Sprintf("sim: task %d (%s) scheduled on arch without implementation", t.ID, t.Kind))
	}
	dur := base * wk.unit.SpeedFactor
	if eng.opts.Noise > 0 {
		f := 1 + eng.opts.Noise*eng.rng.NormFloat64()
		if f < 0.2 {
			f = 0.2
		}
		dur *= f
	}
	var run *runState
	if eng.faults != nil {
		if f := eng.faults.plan.SlowFactorAt(wk.info.ID, eng.now); f > 1 {
			dur *= f
			eng.faults.stats.Slowdowns++
		}
		run = &runState{startAt: blockedSince, wait: wait, startSeq: startSeq}
		if st.a != nil {
			st.a.run = run
		}
	}
	if eng.faults == nil {
		// Fault-free: reuse the worker's finish slot instead of closing
		// over the six arguments per kernel. The slot is free here —
		// wk.computing gates maybeCompute until the previous finish
		// event has fired and finishTask cleared it.
		wk.fin = finishArgs{t: t, blockedSince: blockedSince, wait: wait, dur: dur, startSeq: startSeq}
		eng.at(eng.now+dur, wk.finFn)
	} else {
		eng.at(eng.now+dur, func() {
			if run != nil && run.cancelled {
				return // killed mid-kernel or lost to a speculation sibling
			}
			eng.finishTask(t, wk, st.a, blockedSince, wait, dur, startSeq)
		})
	}
	if eng.specCtl != nil && st.a != nil {
		// Straggler detection: the simulator knows the kernel duration
		// at start, so it schedules a check event only for attempts that
		// will actually overrun slack × expected — observationally
		// identical to continuous monitoring, and seq-neutral for runs
		// where nothing straggles (the byte-identity property).
		eng.maybeWatch(st.a, dur)
	}
	// A kernel is now running: the lookahead slot may fill.
	eng.wake(wk.info.ID)
}

// tryLockCommute acquires every commute lock of t, or parks a staging
// retry on the first busy lock. The retry continuation is built only at
// the park site: most stage attempts either have no commute handles or
// take the locks immediately, and allocating a closure for them showed
// up on million-task runs.
func (eng *simulation) tryLockCommute(t *runtime.Task, wk *simWorker, a *attempt) bool {
	hs := t.CommuteHandles(nil)
	if len(hs) == 0 {
		return true
	}
	for _, h := range hs {
		if eng.commuteHeld[h.ID] {
			eng.commuteWaiters[h.ID] = append(eng.commuteWaiters[h.ID],
				func() { eng.stageTask(t, wk, a) })
			return false
		}
	}
	for _, h := range hs {
		eng.commuteHeld[h.ID] = true
	}
	return true
}

// unlockCommute releases t's commute locks and retries parked stages.
func (eng *simulation) unlockCommute(t *runtime.Task) {
	hs := t.CommuteHandles(nil)
	for _, h := range hs {
		delete(eng.commuteHeld, h.ID)
		ws := eng.commuteWaiters[h.ID]
		if len(ws) == 0 {
			continue
		}
		delete(eng.commuteWaiters, h.ID)
		for _, retry := range ws {
			retry()
		}
	}
}

func (eng *simulation) finishTask(t *runtime.Task, wk *simWorker, a *attempt, startAt, wait, dur float64, startSeq int64) {
	if eng.specCtl != nil && a != nil {
		// First-success-wins: cancel the losing siblings before any
		// completion effect publishes. Parked commute retries of a loser
		// then no-op on their cancelled flag, and a loser's write
		// allocations are rolled back while the winner still pins the
		// shared replicas (so nothing the winner needs is freed).
		eng.cancelSiblings(a)
		eng.specCtl.Effective(t.ID, a.replica)
	}
	// The winning attempt commits its execution stamps to the task.
	t.StartAt = startAt
	t.EndAt = eng.now
	t.RanOn = wk.info.ID
	endSeq := eng.nextSeq() // kernel completion precedes its write effects
	// Write effects must land before the commute locks release: a
	// parked successor retries synchronously inside unlockCommute and
	// must see the post-write replica state.
	eng.mm.release(t, wk.info.Mem)
	eng.unlockCommute(t)
	eng.tr.AddSpan(trace.Span{
		Worker:   wk.info.ID,
		TaskID:   t.ID,
		Kind:     t.Kind,
		Start:    startAt,
		End:      t.EndAt,
		Wait:     wait,
		StartSeq: startSeq,
		EndSeq:   endSeq,
	})
	if eng.opts.History != nil && wk.unit.SpeedFactor > 0 {
		eng.opts.History.Record(t.Kind, wk.info.Arch, t.Footprint, dur/wk.unit.SpeedFactor)
	}
	if a != nil {
		eng.faults.removeLive(a)
	}
	eng.left--
	for _, s := range t.Succs() {
		if s.ReleaseDep() {
			if at := eng.arrivalOf(s); at > eng.now {
				// Dependencies done but the tenant has not submitted the
				// task yet: hold it back until its arrival instant.
				s := s
				eng.at(at, func() { eng.pushArrived(s) })
				continue
			}
			s.ReadyAt = eng.now
			eng.sched.Push(s)
			if eng.probe != nil {
				eng.pushed++
			}
		}
	}
	if eng.probe != nil {
		eng.completed++
		eng.noteProgress()
		// Engine-level completion event: queue time (StartAt − ReadyAt)
		// and sojourn time derive from it for every policy, which is
		// what feeds the telemetry layer's per-tenant histograms.
		eng.probe.Decision(obs.Decision{
			Kind: obs.TaskDone, At: eng.now, Seq: eng.seq, Task: t.ID,
			Worker: int(wk.info.ID), Mem: int(wk.info.Mem), Arch: int(wk.info.Arch),
			A: startAt, B: t.ReadyAt,
		})
	}
	eng.sched.TaskDone(t, wk.info)
	wk.computing = nil
	wk.freeAt = eng.now
	wk.inflight--
	eng.maybeCompute(wk)
	eng.wakeAll()
}
