package sim

import (
	"math/rand"
	"testing"

	"multiprio/internal/core"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/sched/dmdas"
	"multiprio/internal/sched/eager"
)

// checkMemoryInvariants cross-validates the memory manager's byte
// accounting against the replica states after a run:
//   - no pins outstanding, no waiters parked,
//   - used[mem] equals the summed sizes of non-invalid replicas,
//   - every handle has at least one valid replica (data never lost),
//   - dirty replicas are sole copies.
func checkMemoryInvariants(t *testing.T, eng *simulation) {
	t.Helper()
	mm := eng.mm
	used := make([]int64, len(mm.used))
	for _, st := range mm.states {
		valid, dirty := 0, 0
		for mem := range st.repl {
			r := &st.repl[mem]
			if r.pin != 0 {
				t.Errorf("handle %q pinned (%d) on mem %d after run", st.h.Name, r.pin, mem)
			}
			if ws := mm.waitq[mm.wkey(st.h.ID, platform.MemID(mem))]; len(ws) != 0 {
				t.Errorf("handle %q has %d waiters on mem %d after run", st.h.Name, len(ws), mem)
			}
			switch r.state {
			case replValid:
				valid++
				used[mem] += st.h.Bytes
				if r.dirty {
					dirty++
				}
			case replFetching:
				used[mem] += st.h.Bytes
				t.Errorf("handle %q still fetching to mem %d after run", st.h.Name, mem)
			}
		}
		if valid == 0 {
			t.Errorf("handle %q has no valid replica (data lost)", st.h.Name)
		}
		// Dirty means "RAM is stale": dirty replicas and a valid RAM
		// copy are mutually exclusive, and a stale RAM must leave a
		// dirty owner responsible for the eventual write-back.
		ramValid := st.repl[0].state == replValid
		if dirty > 0 && ramValid {
			t.Errorf("handle %q dirty with a valid RAM copy", st.h.Name)
		}
		if !ramValid && valid > 0 && dirty == 0 {
			t.Errorf("handle %q: RAM stale but no dirty owner", st.h.Name)
		}
		if st.repl[0].dirty {
			t.Errorf("handle %q: RAM replica flagged dirty", st.h.Name)
		}
	}
	for mem := range used {
		if used[mem] != mm.used[mem] {
			t.Errorf("mem %d accounting: counted %d, recorded %d", mem, used[mem], mm.used[mem])
		}
	}
}

// TestMemoryInvariantsAfterRandomWorkloads replays random heterogeneous
// workloads and verifies the coherence bookkeeping.
func TestMemoryInvariantsAfterRandomWorkloads(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := tinyMachine(1 << 24) // small GPU memory: exercises eviction
		g := runtime.NewGraph()
		handles := make([]*runtime.DataHandle, 12)
		for i := range handles {
			handles[i] = g.NewData("h", int64(rng.Intn(1<<22)+1024))
		}
		for i := 0; i < 60; i++ {
			var cost []float64
			if rng.Intn(2) == 0 {
				cost = []float64{0.002, 0.0005}
			} else {
				cost = []float64{0.001, 0}
			}
			mode := []runtime.AccessMode{runtime.R, runtime.RW, runtime.W, runtime.Commute}[rng.Intn(4)]
			acc := []runtime.Access{{Handle: handles[rng.Intn(len(handles))], Mode: mode}}
			if rng.Intn(2) == 0 {
				h2 := handles[rng.Intn(len(handles))]
				if h2 != acc[0].Handle {
					acc = append(acc, runtime.Access{Handle: h2, Mode: runtime.R})
				}
			}
			g.Submit(&runtime.Task{Kind: "k", Cost: cost, Accesses: acc})
		}

		var sched runtime.Scheduler
		switch seed % 3 {
		case 0:
			sched = core.New(core.Defaults())
		case 1:
			sched = dmdas.New(dmdas.DMDA)
		default:
			sched = eager.New()
		}
		eng, err := runEngine(m, g, sched, Options{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkMemoryInvariants(t, eng)
	}
}
