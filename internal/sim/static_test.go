package sim

import (
	"errors"
	"testing"

	"multiprio/internal/core"
	"multiprio/internal/fault"
	"multiprio/internal/oracle"
	"multiprio/internal/runtime"
	"multiprio/internal/sched/heft"
	"multiprio/internal/sched/heft/heftcheck"
)

// checkStaticRun validates a static-replay run against the full oracle,
// including the StaticCheck assembled from the scheduler's plan and
// repair log.
func checkStaticRun(t *testing.T, g *runtime.Graph, res *Result, hs *heft.Sched, fp *fault.Plan) {
	t.Helper()
	opts := oracle.Options{
		OverflowBytes: res.OverflowBytes,
		Static:        heftcheck.For(hs, res.Faults.AppliedKills),
	}
	if !fp.Empty() {
		opts.Faults = &oracle.FaultCheck{
			MaxRetries: fp.RetryCap(),
			Kills:      res.Faults.AppliedKills,
			Strict:     true,
		}
	}
	if err := oracle.Check(g, res.Trace, opts); err != nil {
		t.Fatalf("oracle rejected static run: %v", err)
	}
}

// TestSimStaticReplayConformance: fault-free pinned replay follows the
// plan exactly — the full oracle with StaticCheck passes and no repair
// events are logged, for both ranking algorithms and both modes.
func TestSimStaticReplayConformance(t *testing.T) {
	m := faultMachine(t)
	for _, alg := range []heft.Algorithm{heft.RankUpward, heft.RankOptimistic} {
		for _, hybrid := range []bool{false, true} {
			hs := heft.NewStatic(alg)
			if hybrid {
				hs = heft.NewHybrid(alg, core.New(core.Defaults()))
			}
			g := faultGraph(m, 11)
			res, err := Run(m, g, hs, Options{Seed: 7, CollectMemEvents: true})
			if err != nil {
				t.Fatalf("%s: %v", hs.Name(), err)
			}
			checkStaticRun(t, g, res, hs, nil)
			if n := len(hs.Repairs()); n != 0 {
				t.Errorf("%s: %d repair events on a fault-free run", hs.Name(), n)
			}
			if p := hs.Plan(); res.Makespan > 2*p.Makespan {
				t.Errorf("%s: replay makespan %g strays far from planned %g", hs.Name(), res.Makespan, p.Makespan)
			}
		}
	}
}

// TestSimStaticCriticalKill kills the worker owning the static critical
// path mid-run: pure static deterministically strands its frontier
// (ErrDeadlock), hybrid completes with a justified kill repair and a
// clean oracle (FaultCheck strict + StaticCheck); a tampered check that
// withholds the repair log is rejected.
func TestSimStaticCriticalKill(t *testing.T) {
	m := faultMachine(t)
	for _, alg := range []heft.Algorithm{heft.RankUpward, heft.RankOptimistic} {
		probe := heft.NewStatic(alg)
		gp := faultGraph(m, 11)
		probe.Init(runtime.NewEnv(m, gp))
		plan := probe.Plan()
		cw := plan.CriticalWorker()
		fp := &fault.Plan{Events: []fault.Event{
			{Kind: fault.KillWorker, Worker: cw, At: 0.3 * plan.Makespan},
		}}

		// Pure static: the dead worker's tasks have nowhere to go.
		g := faultGraph(m, 11)
		_, err := Run(m, g, heft.NewStatic(alg), Options{Seed: 7, Faults: fp})
		if err == nil {
			t.Fatalf("%v: static replay survived the critical-worker kill", alg)
		}
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("%v: want stranded-frontier deadlock, got: %v", alg, err)
		}

		// Hybrid: the kill diverts the frontier to the fallback.
		hs := heft.NewHybrid(alg, core.New(core.Defaults()))
		g2 := faultGraph(m, 11)
		res, err := Run(m, g2, hs, Options{Seed: 7, CollectMemEvents: true, Faults: fp})
		if err != nil {
			t.Fatalf("%v hybrid: %v", alg, err)
		}
		checkStaticRun(t, g2, res, hs, fp)
		reps := hs.Repairs()
		if len(reps) == 0 {
			t.Fatalf("%v hybrid: no repair events after a kill", alg)
		}
		kills := 0
		for _, r := range reps {
			if r.Reason == heft.RepairKill && r.Worker == cw {
				kills++
				if len(r.Tasks) == 0 {
					t.Errorf("%v hybrid: kill repair diverts no tasks", alg)
				}
			}
		}
		if kills != 1 {
			t.Errorf("%v hybrid: %d kill repairs for worker %d, want 1", alg, kills, cw)
		}

		// Tamper: the same trace with the repair log withheld must fail
		// the placement rule — diverted tasks ran off their planned
		// worker with no covering repair.
		sc := heftcheck.For(hs, res.Faults.AppliedKills)
		sc.Repairs = nil
		if err := oracle.Check(g2, res.Trace, oracle.Options{Static: sc}); err == nil {
			t.Errorf("%v hybrid: oracle accepted the run with the repair log withheld", alg)
		}
	}
}

// TestSimStaticSlackRepair puts the critical worker under a heavy
// slowdown window: hybrid detects the measured drift, diverts the
// worker's remaining tasks, and beats pure static's makespan; the
// oracle validates the slack justification, and a forged slack repair
// (pointing at an on-time trigger) is rejected.
func TestSimStaticSlackRepair(t *testing.T) {
	m := faultMachine(t)
	probe := heft.NewStatic(heft.RankUpward)
	gp := faultGraph(m, 11)
	probe.Init(runtime.NewEnv(m, gp))
	plan := probe.Plan()
	cw := plan.CriticalWorker()
	fp := &fault.Plan{Events: []fault.Event{
		{Kind: fault.SlowWorker, Worker: cw, At: 0, Until: 100 * plan.Makespan, Factor: 8},
	}}

	g := faultGraph(m, 11)
	static := heft.NewStatic(heft.RankUpward)
	sres, err := Run(m, g, static, Options{Seed: 7, Faults: fp})
	if err != nil {
		t.Fatal(err)
	}

	g2 := faultGraph(m, 11)
	hs := heft.NewHybrid(heft.RankUpward, core.New(core.Defaults()))
	hres, err := Run(m, g2, hs, Options{Seed: 7, CollectMemEvents: true, Faults: fp})
	if err != nil {
		t.Fatal(err)
	}
	checkStaticRun(t, g2, hres, hs, nil)
	slacks := 0
	for _, r := range hs.Repairs() {
		if r.Reason == heft.RepairSlack {
			slacks++
		}
	}
	if slacks == 0 {
		t.Fatal("hybrid logged no slack repair under an 8x slowdown of the critical worker")
	}
	if hres.Makespan > sres.Makespan {
		t.Errorf("hybrid makespan %g worse than pure static %g under the slowdown", hres.Makespan, sres.Makespan)
	}

	// Forge: re-point a slack repair at a task that finished on time.
	sc := heftcheck.For(hs, nil)
	onTime := int64(-1)
	p := hs.Plan()
	for _, s := range hres.Trace.Spans {
		if !s.Failed && !s.Cancelled && s.End <= p.Finish[s.TaskID]+(hs.EffectiveSlackFactor()-1)*p.Makespan {
			onTime = s.TaskID
			break
		}
	}
	if onTime < 0 {
		t.Fatal("no on-time task to forge with")
	}
	for i := range sc.Repairs {
		if sc.Repairs[i].Reason == "slack" {
			sc.Repairs[i].Trigger = onTime
		}
	}
	if err := oracle.Check(g2, hres.Trace, oracle.Options{Static: sc}); err == nil {
		t.Error("oracle accepted a slack repair forged onto an on-time trigger")
	}
}
