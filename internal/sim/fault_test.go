package sim

import (
	"bytes"
	"errors"
	"testing"

	"multiprio/internal/apps/randdag"
	"multiprio/internal/core"
	"multiprio/internal/fault"
	"multiprio/internal/oracle"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/sched/eager"
)

// faultMachine: 3 CPU workers on RAM plus 2 GPUs on private memory
// nodes, so a kill can empty a whole device node.
func faultMachine(t *testing.T) *platform.Machine {
	t.Helper()
	m, err := platform.NewHeteroNode("fault", 5, 10, 2, 100, 8*platform.MiB, 5e9, platform.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func faultGraph(m *platform.Machine, seed int64) *runtime.Graph {
	return randdag.Build(randdag.Params{Layers: 8, Width: 10, CommuteShare: 0.3,
		Machine: m, Seed: seed})
}

// checkFaultRun validates a fault run against the oracle's
// exactly-once-effective rule with the simulator's strict kill
// semantics (nothing starts or ends past an applied kill).
func checkFaultRun(t *testing.T, g *runtime.Graph, res *Result, plan *fault.Plan) {
	t.Helper()
	err := oracle.Check(g, res.Trace, oracle.Options{
		OverflowBytes: res.OverflowBytes,
		Faults: &oracle.FaultCheck{
			MaxRetries: plan.RetryCap(),
			Kills:      res.Faults.AppliedKills,
			Strict:     true,
		},
	})
	if err != nil {
		t.Fatalf("oracle rejected fault run: %v", err)
	}
}

func TestSimKillRecovery(t *testing.T) {
	m := faultMachine(t)
	g := faultGraph(m, 11)
	base, err := Run(m, g, core.New(core.Defaults()), Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	plan := &fault.Plan{Events: []fault.Event{
		{Kind: fault.KillWorker, Worker: 0, At: 0.2 * base.Makespan},
		{Kind: fault.KillWorker, Worker: 4, At: 0.4 * base.Makespan},
		{Kind: fault.SlowWorker, Worker: 1, At: 0, Until: base.Makespan, Factor: 3},
	}}
	g2 := faultGraph(m, 11)
	res, err := Run(m, g2, core.New(core.Defaults()), Options{
		Seed: 7, CollectMemEvents: true, Faults: plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Kills != 2 {
		t.Errorf("kills = %d, want 2", res.Faults.Kills)
	}
	if res.Makespan < base.Makespan {
		t.Errorf("faulted makespan %g beat the fault-free %g", res.Makespan, base.Makespan)
	}
	checkFaultRun(t, g2, res, plan)
	for _, k := range res.Faults.AppliedKills {
		for _, s := range res.Trace.Spans {
			if s.Worker == k.Unit && !s.Failed && s.End > k.At+1e-12 {
				t.Errorf("span of task %d on killed worker %d ends at %g > kill %g",
					s.TaskID, s.Worker, s.End, k.At)
			}
		}
	}
}

// TestSimFaultDeterminism: same workload, same plan, same seed must
// reproduce the canonical trace byte for byte, including failed spans,
// failed transfers and the memory-event stream.
func TestSimFaultDeterminism(t *testing.T) {
	m := faultMachine(t)
	base, err := Run(m, faultGraph(m, 3), core.New(core.Defaults()), Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.Generate(m, fault.Spec{
		Seed: 99, Horizon: base.Makespan,
		Kills: 2, Slowdowns: 2, TransferFaults: 2, ModelNoise: 0.2,
	})
	run := func() *Result {
		res, err := Run(m, faultGraph(m, 3), core.New(core.Defaults()), Options{
			Seed: 5, CollectMemEvents: true, Faults: plan,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !bytes.Equal(a.Trace.Canonical(), b.Trace.Canonical()) {
		t.Fatalf("same plan and seed produced different traces (%d vs %d bytes)",
			len(a.Trace.Canonical()), len(b.Trace.Canonical()))
	}
	if a.Faults.Kills != b.Faults.Kills || a.Faults.Retries != b.Faults.Retries ||
		a.Faults.TransferFailures != b.Faults.TransferFailures {
		t.Fatalf("fault stats differ: %+v vs %+v", a.Faults, b.Faults)
	}
}

// TestSimEmptyPlanKeepsGoldenTraces guards the golden-trace promise:
// with faults disabled (nil or empty plan), the canonical trace is
// byte-identical to a run of the engine with no fault machinery at all.
func TestSimEmptyPlanKeepsGoldenTraces(t *testing.T) {
	m := faultMachine(t)
	run := func(p *fault.Plan) *Result {
		res, err := Run(m, faultGraph(m, 21), core.New(core.Defaults()), Options{
			Seed: 9, CollectMemEvents: true, Faults: p,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	bare := run(nil)
	empty := run(&fault.Plan{})
	if !bytes.Equal(bare.Trace.Canonical(), empty.Trace.Canonical()) {
		t.Fatal("an empty fault plan perturbed the trace")
	}
	if n := bare.Trace.FailedCount(); n != 0 {
		t.Fatalf("fault-free trace has %d failed spans", n)
	}
}

// TestSimDeviceLossRecoversReplicas kills the only worker of a GPU
// memory node mid-run: its replicas are lost or written back, and every
// task still completes exactly once with coherent data.
func TestSimDeviceLossRecoversReplicas(t *testing.T) {
	m, err := platform.NewHeteroNode("loss", 3, 10, 1, 100, 64*platform.MiB, 5e9, platform.Config{})
	if err != nil {
		t.Fatal(err)
	}
	gpu := platform.UnitID(len(m.Units) - 1)
	build := func() *runtime.Graph {
		g := runtime.NewGraph()
		// Chains of RW updates: the GPU is 10x faster, so data lives on
		// the device when the kill lands, and later links of each chain
		// must re-fetch the written values from RAM.
		for c := 0; c < 6; c++ {
			h := g.NewData("chain", platform.MiB)
			for i := 0; i < 8; i++ {
				bothTask(g, "upd", 0.004, 0.0004, runtime.Access{Handle: h, Mode: runtime.RW})
			}
		}
		return g
	}
	base, err := Run(m, build(), core.New(core.Defaults()), Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	plan := &fault.Plan{Events: []fault.Event{
		{Kind: fault.KillWorker, Worker: gpu, At: 0.3 * base.Makespan},
	}}
	g := build()
	res, err := Run(m, g, core.New(core.Defaults()), Options{
		Seed: 2, CollectMemEvents: true, Faults: plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Kills != 1 {
		t.Fatalf("kills = %d, want 1", res.Faults.Kills)
	}
	checkFaultRun(t, g, res, plan)
	// After the device died, everything must have run on the CPUs.
	for _, s := range res.Trace.Spans {
		if s.Worker == gpu && !s.Failed && s.End > plan.Events[0].At+1e-12 {
			t.Errorf("task %d ran on the dead GPU at %g", s.TaskID, s.End)
		}
	}
}

func TestSimTransferFailureReissues(t *testing.T) {
	m := tinyMachine(64 * platform.MiB)
	g := runtime.NewGraph()
	h := g.NewData("x", platform.MiB)
	bothTask(g, "init", 0.001, 0.01, runtime.Access{Handle: h, Mode: runtime.W})
	gpuOnlyTask(g, "use", 0.001, runtime.Access{Handle: h, Mode: runtime.R})
	plan := &fault.Plan{Events: []fault.Event{
		{Kind: fault.FailTransfer, Src: 0, Dst: 1, At: 0, Until: 0.0015},
	}}
	res, err := Run(m, g, eager.New(), Options{CollectMemEvents: true, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.TransferFailures == 0 {
		t.Error("no transfer failures recorded despite a window over the only fetch")
	}
	failedXfers := 0
	for _, x := range res.Trace.Xfers {
		if x.Failed {
			failedXfers++
		}
	}
	if failedXfers != res.Faults.TransferFailures {
		t.Errorf("trace has %d failed transfers, stats say %d", failedXfers, res.Faults.TransferFailures)
	}
	checkFaultRun(t, g, res, plan)
}

// TestSimKillLastCapableWorkerFails: when the fault plan (unlike
// fault.Generate, which refuses) kills the only worker able to run a
// task, the engine must fail with a descriptive error, not hang.
func TestSimKillLastCapableWorkerFails(t *testing.T) {
	m := tinyMachine(64 * platform.MiB)
	g := runtime.NewGraph()
	h := g.NewData("x", platform.MiB)
	gpuOnlyTask(g, "a", 0.01, runtime.Access{Handle: h, Mode: runtime.W})
	gpuOnlyTask(g, "b", 0.01, runtime.Access{Handle: h, Mode: runtime.RW})
	plan := &fault.Plan{Events: []fault.Event{
		{Kind: fault.KillWorker, Worker: 1, At: 0.005},
	}}
	_, err := Run(m, g, eager.New(), Options{Faults: plan})
	if err == nil {
		t.Fatal("run with no GPU left for GPU-only work succeeded")
	}
	if !errors.Is(err, ErrDeadlock) {
		t.Logf("non-deadlock error (acceptable): %v", err)
	}
}
