package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refQueue is the seed implementation — a container/heap binary heap —
// kept as the executable specification of the (time, seq) total order.
type refQueue []event

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q refQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *refQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *refQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// queueHarness drives the ladder queue and the reference heap with the
// same stream under the engine's invariants (pushes never target the
// past; same-instant pushes take the FIFO band) and fails on the first
// divergence in pop order.
type queueHarness struct {
	t    *testing.T
	q    eventQueue
	ref  refQueue
	now  float64
	seq  int64
	buf  []event
	pops int
}

func (h *queueHarness) push(delta float64) {
	if delta < 0 {
		delta = -delta
	}
	at := h.now + delta
	h.seq++
	e := event{at: at, seq: h.seq}
	if at <= h.now {
		h.q.pushNow(e)
	} else {
		h.q.push(e)
	}
	heap.Push(&h.ref, e)
}

// popBatch drains one same-timestamp batch from the ladder queue and
// checks it against the reference heap event by event.
func (h *queueHarness) popBatch() {
	if h.q.len() != len(h.ref) {
		h.t.Fatalf("len mismatch: ladder %d, reference %d", h.q.len(), len(h.ref))
	}
	if len(h.ref) == 0 {
		if got := h.q.popBatch(nil); len(got) != 0 {
			h.t.Fatalf("popBatch on empty queue returned %d events", len(got))
		}
		return
	}
	h.buf = h.q.popBatch(h.buf[:0])
	if len(h.buf) == 0 {
		h.t.Fatalf("popBatch returned empty batch with %d events pending", len(h.ref))
	}
	for i, got := range h.buf {
		want := heap.Pop(&h.ref).(event)
		if got.at != want.at || got.seq != want.seq {
			h.t.Fatalf("pop %d (batch index %d): ladder (%g, %d), reference (%g, %d)",
				h.pops, i, got.at, got.seq, want.at, want.seq)
		}
		if got.at == h.now && i == 0 && h.pops > 0 {
			// Batches may legitimately repeat a timestamp (handlers push
			// same-instant events between batches); monotonicity is all
			// the engine needs.
		}
		if got.at < h.now {
			h.t.Fatalf("pop %d went backwards: %g < %g", h.pops, got.at, h.now)
		}
		h.now = got.at
		h.pops++
		if i > 0 && h.buf[i].at != h.buf[0].at {
			h.t.Fatalf("batch mixes timestamps %g and %g", h.buf[0].at, h.buf[i].at)
		}
	}
}

// TestEventQueueMatchesHeap is the property test: randomized interleaved
// push/pop streams — including bursts far past the spill threshold and
// heavy same-timestamp storms — must pop in exactly the reference
// heap's (time, seq) order.
func TestEventQueueMatchesHeap(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := &queueHarness{t: t}
		total := 0
		for round := 0; round < 40; round++ {
			burst := rng.Intn(1200)
			for i := 0; i < burst; i++ {
				switch rng.Intn(10) {
				case 0, 1, 2, 3:
					h.push(0) // same-instant FIFO band
				case 4, 5, 6:
					h.push(rng.Float64()) // near future
				case 7, 8:
					h.push(10 + 1000*rng.Float64()) // far band candidates
				default:
					h.push(float64(rng.Intn(4))) // duplicate timestamps
				}
				total++
			}
			drains := rng.Intn(20)
			for i := 0; i < drains && len(h.ref) > 0; i++ {
				h.popBatch()
			}
		}
		for len(h.ref) > 0 {
			h.popBatch()
		}
		h.popBatch() // empty queue must stay empty
		if h.pops != total {
			t.Fatalf("seed %d: popped %d of %d events", seed, h.pops, total)
		}
	}
}

// TestEventQueueSpill forces the spill/refill path deterministically:
// far more events than spillLimit, pushed before any pop.
func TestEventQueueSpill(t *testing.T) {
	h := &queueHarness{t: t}
	rng := rand.New(rand.NewSource(7))
	n := spillLimit*3 + 17
	for i := 0; i < n; i++ {
		h.push(rng.Float64() * 100)
	}
	if !h.q.hasFar {
		t.Fatalf("pushing %d spread-out events never activated the far band", n)
	}
	for len(h.ref) > 0 {
		h.popBatch()
	}
	if h.pops != n {
		t.Fatalf("popped %d of %d", h.pops, n)
	}
}

// FuzzEventQueue feeds arbitrary op streams to the harness. Each byte
// pair is one operation: even selector pushes with a delta derived from
// the second byte (zero delta = same-timestamp batch), odd drains one
// batch.
func FuzzEventQueue(f *testing.F) {
	// Seed exercising same-timestamp batches: push storms of delta zero
	// interleaved with drains.
	f.Add([]byte{0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 1, 0, 2, 5, 0, 0, 1, 0, 1, 0})
	// Seed mixing duplicate future timestamps with drains.
	f.Add([]byte{2, 10, 2, 10, 2, 10, 1, 0, 2, 3, 0, 0, 1, 0, 1, 0, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		h := &queueHarness{t: t}
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], data[i+1]
			if op%2 == 0 {
				h.push(float64(arg) / 8)
			} else if len(h.ref) > 0 {
				h.popBatch()
			}
		}
		for len(h.ref) > 0 {
			h.popBatch()
		}
	})
}
