package sim

import (
	"strings"
	"testing"

	"multiprio/internal/perfmodel"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/sched/dmdas"
	"multiprio/internal/sched/eager"
)

func TestMaxEventsAborts(t *testing.T) {
	m := platform.CPUOnly(2)
	g := runtime.NewGraph()
	for i := 0; i < 100; i++ {
		g.Submit(&runtime.Task{Kind: "t", Cost: []float64{0.001}})
	}
	_, err := Run(m, g, eager.New(), Options{MaxEvents: 10})
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Errorf("err = %v, want event-budget abort", err)
	}
}

func TestPipelineOneDisablesLookahead(t *testing.T) {
	// With Pipeline 1 the second GPU task's transfer cannot overlap the
	// first task's compute: strictly serial fetch+compute pairs.
	m := tinyMachine(0)
	g := runtime.NewGraph()
	h1 := g.NewData("a", 1e9)
	h2 := g.NewData("b", 1e9)
	gpuOnlyTask(g, "k1", 1, runtime.Access{Handle: h1, Mode: runtime.R})
	gpuOnlyTask(g, "k2", 1, runtime.Access{Handle: h2, Mode: runtime.R})

	serial, err := Run(m, g, eager.New(), Options{Pipeline: 1})
	if err != nil {
		t.Fatal(err)
	}
	g.ResetRun()
	overlapped, err := Run(m, g, eager.New(), Options{Pipeline: 2})
	if err != nil {
		t.Fatal(err)
	}
	if overlapped.Makespan >= serial.Makespan-0.5 {
		t.Errorf("lookahead did not hide the second transfer: %v vs %v",
			overlapped.Makespan, serial.Makespan)
	}
	if serial.Makespan < 3.9 {
		t.Errorf("serial pipeline makespan = %v, want ≈4 (2x fetch+compute)", serial.Makespan)
	}
}

func TestPrefetchHidesTransfer(t *testing.T) {
	// dmda prefetches at push: the GPU task's data is already moving
	// while the predecessor computes.
	m := tinyMachine(0)
	build := func() *runtime.Graph {
		g := runtime.NewGraph()
		blocker := g.NewData("blk", 8)
		payload := g.NewData("big", 1e9)
		// A 2s CPU task gates the GPU task through a control handle;
		// the big payload is untouched meanwhile, so a prefetch issued
		// at push (when the GPU task becomes ready... it only becomes
		// ready after the blocker) — use two independent GPU tasks
		// instead: the first computes 1.5s while the second's payload
		// prefetches.
		_ = blocker
		small := g.NewData("small", 8)
		gpuOnlyTask(g, "warm", 1.5, runtime.Access{Handle: small, Mode: runtime.R})
		gpuOnlyTask(g, "big", 0.1, runtime.Access{Handle: payload, Mode: runtime.R})
		return g
	}
	withPrefetch, err := Run(m, build(), dmdas.New(dmdas.DMDA), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 1.5s warm + 0.1s big, 1s transfer fully hidden => ≈1.6s.
	if withPrefetch.Makespan > 1.7 {
		t.Errorf("dmda makespan = %v, want ≈1.6 (transfer hidden by prefetch)", withPrefetch.Makespan)
	}
	_, pre, _ := withPrefetch.Trace.TransferredBytes()
	if pre == 0 {
		t.Error("dmda recorded no prefetch traffic")
	}
}

func TestHistoryEstimatorConvergesDuringRun(t *testing.T) {
	m := platform.CPUOnly(2)
	g := runtime.NewGraph()
	for i := 0; i < 50; i++ {
		g.Submit(&runtime.Task{Kind: "k", Footprint: 1, Cost: []float64{0.01}})
	}
	h := perfmodel.NewHistory()
	if _, err := Run(m, g, eager.New(), Options{History: h, Estimator: h}); err != nil {
		t.Fatal(err)
	}
	if n := h.Samples("k", platform.ArchCPU, 1); n != 50 {
		t.Errorf("samples = %d, want 50", n)
	}
}

func TestResultEventsPositive(t *testing.T) {
	m := platform.CPUOnly(1)
	g := runtime.NewGraph()
	g.Submit(&runtime.Task{Kind: "t", Cost: []float64{1}})
	res, err := Run(m, g, eager.New(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Events <= 0 {
		t.Error("no events counted")
	}
}

// TestStalePrefetchDropped: a prefetch in flight across a write lands
// stale and must be dropped (the reader refetches the new value).
func TestStalePrefetchDropped(t *testing.T) {
	m := tinyMachine(0)
	g := runtime.NewGraph()
	h := g.NewData("x", 1e9) // 1s transfer
	// CPU writes h while a GPU prefetch (issued for a task that reads
	// the OLD... construct: gpu reader first (fetch starts), cpu writer
	// RW (invalidates mid-flight is impossible due to deps)...
	// Simplest reachable case: gpu task reads h (transfer ~1s), then a
	// CPU RW rewrites h, then another GPU read must move fresh bytes.
	gpuOnlyTask(g, "g1", 0.1, runtime.Access{Handle: h, Mode: runtime.R})
	g.Submit(&runtime.Task{Kind: "cw", Cost: []float64{0.1},
		Accesses: []runtime.Access{{Handle: h, Mode: runtime.RW}}})
	gpuOnlyTask(g, "g2", 0.1, runtime.Access{Handle: h, Mode: runtime.R})
	res, err := Run(m, g, eager.New(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	toGPU := 0
	for _, x := range res.Trace.Xfers {
		if x.Dst == 1 {
			toGPU++
		}
	}
	if toGPU < 2 {
		t.Errorf("RAM->GPU transfers = %d, want 2 (stale replica unusable)", toGPU)
	}
}
