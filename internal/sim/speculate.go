package sim

import (
	"math"

	"multiprio/internal/trace"
)

// Speculative straggler mitigation (internal/spec wiring).
//
// The simulator computes every kernel's duration at start, so instead
// of periodically polling attempt progress it schedules one exact
// detection event — and only for attempts that will actually overrun
// their slack × expected deadline. A run where nothing straggles
// therefore consumes no extra events and no linearization seqs, which
// makes speculation provably trace-neutral there (the conformance
// property the schedtest suite pins byte-for-byte).

// expectedDur returns the scheduler-visible expected duration of t on
// wk: the performance model's per-arch estimate scaled by the unit's
// speed factor. This is the same estimate scheduling decisions are made
// with, which is exactly the baseline a straggler should be judged
// against (a slow unit the model knows about is not a straggler).
func (eng *simulation) expectedDur(a *attempt) float64 {
	d := eng.env.Delta(a.t, a.wk.info.Arch)
	if math.IsInf(d, 1) {
		return 0
	}
	return d * a.wk.unit.SpeedFactor
}

// maybeWatch schedules the straggler-detection event for an attempt
// whose kernel just started with duration dur, if (and only if) the
// attempt will still be running at its deadline.
func (eng *simulation) maybeWatch(a *attempt, dur float64) {
	exp := eng.expectedDur(a)
	if !eng.specCtl.Eligible(exp) {
		return
	}
	deadline := eng.specCtl.Deadline(exp)
	if dur <= deadline {
		return // finishes in time: no event, no seq, no trace drift
	}
	eng.at(eng.now+deadline, func() { eng.speculate(a) })
}

// speculate fires at an attempt's straggler deadline: if the attempt is
// still running and the task's replica budget allows, a replica is
// pushed through the scheduler's normal Push path — placement stays a
// policy decision, exactly like fault-recovery retries.
func (eng *simulation) speculate(a *attempt) {
	if a.cancelled || a.run == nil || a.run.cancelled || !eng.faults.isLive(a) {
		return // the attempt died (kill) before its deadline
	}
	t := a.t
	if !eng.specCtl.TryFlag(t.ID) {
		return // already done, or replica budget spent
	}
	t.ResetForRetry()
	t.ReadyAt = eng.now
	eng.sched.Push(t)
	if eng.probe != nil {
		eng.pushed++
		eng.noteProgress()
	}
	eng.wakeAll()
}

// cancelSiblings cancels every live attempt of the winner's task except
// the winner itself, in attempt-creation order. Called by finishTask
// before the winner's effects publish.
func (eng *simulation) cancelSiblings(winner *attempt) {
	as := eng.faults.live[winner.t.ID]
	if len(as) <= 1 {
		return
	}
	// Snapshot: cancelAttempt mutates the live slice.
	losers := make([]*attempt, 0, len(as)-1)
	for _, a := range as {
		if a != winner {
			losers = append(losers, a)
		}
	}
	for _, a := range losers {
		eng.cancelAttempt(a)
	}
}

// cancelAttempt cancels one losing speculation attempt. Unlike a kill
// abort, the loser's worker survives: its pipeline slot frees and it
// may immediately take other work. Resource rollback reuses the fault
// path's abortAcquire, so the loser's pins are dropped and its
// write-allocated replicas freed — a cancelled attempt never publishes
// writes, keeping the oracle's coherence replay valid.
func (eng *simulation) cancelAttempt(a *attempt) {
	t := a.t
	wk := a.wk
	a.cancelled = true
	busy := 0.0
	if a.run != nil && !a.run.cancelled {
		// The loser was mid-kernel: cancel its completion event, record
		// the cancelled span, and free the unit.
		a.run.cancelled = true
		endSeq := eng.nextSeq()
		eng.tr.AddSpan(trace.Span{
			Worker: wk.info.ID, TaskID: t.ID, Kind: t.Kind,
			Start: a.run.startAt, End: eng.now, Wait: a.run.wait,
			StartSeq: a.run.startSeq, EndSeq: endSeq, Cancelled: true,
		})
		busy = eng.now - a.run.startAt
		if wk.computing == t {
			wk.computing = nil
			wk.freeAt = eng.now
		}
	} else {
		// Staged, acquiring, or parked on a commute lock: no kernel ran,
		// no span. Drop a staged entry so the worker never starts it.
		for i := range wk.staged {
			if wk.staged[i].a == a {
				wk.staged = append(wk.staged[:i], wk.staged[i+1:]...)
				break
			}
		}
	}
	if a.pinned {
		eng.mm.abortAcquire(t, wk.info.Mem, a.wallocs)
	}
	if a.locked {
		eng.unlockCommute(t)
	}
	wk.inflight--
	eng.faults.removeLive(a)
	eng.specCtl.CancelAttempt(t.ID, busy)
	// The loser's worker has a free slot now; let it compute its next
	// staged task and pop new work. Deferred to a fresh event so the
	// winner's completion effects (this very call stack) publish first.
	eng.at(eng.now, func() {
		eng.maybeCompute(wk)
		eng.wake(wk.info.ID)
	})
}
