package sim

import (
	"bytes"
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"multiprio/internal/core"
	"multiprio/internal/fault"
)

var updateGolden = flag.Bool("update", false, "rewrite the fault-run golden digest")

// TestSimFaultPlanGolden pins the SHA-256 digest of the canonical trace
// of one seeded run under a NON-empty fault plan — kills, slowdowns, a
// transfer fault and model noise, so the trace exercises failed spans
// and, crucially, the retry-delay schedule. The empty-plan golden
// (TestSimEmptyPlanKeepsGoldenTraces) proves fault machinery off is
// byte-neutral; this one freezes the behavior with it ON, so a change
// to recovery timing (e.g. the exponential backoff or its jitter) is a
// conscious, reviewed golden update:
//
//	go test ./internal/sim -run TestSimFaultPlanGolden -update
func TestSimFaultPlanGolden(t *testing.T) {
	m := faultMachine(t)
	plan := fault.Generate(m, fault.Spec{
		Seed: 99, Horizon: 0.05,
		Kills: 2, Slowdowns: 2, TransferFaults: 1, ModelNoise: 0.1,
	})
	res, err := Run(m, faultGraph(m, 3), core.New(core.Defaults()), Options{
		Seed: 5, CollectMemEvents: true, Faults: plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Retries == 0 {
		t.Fatal("golden run has no retries; it would not guard the retry-delay schedule")
	}
	got := []byte(fmt.Sprintf("%x\n", sha256.Sum256(res.Trace.Canonical())))
	path := filepath.Join("testdata", "fault_canonical_sha256.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden digest (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fault-run canonical trace drifted:\n got %s want %s", got, want)
	}
}
