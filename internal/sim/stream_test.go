package sim

import (
	"bytes"
	"strings"
	"testing"

	"multiprio/internal/runtime"
	"multiprio/internal/sched/eager"
)

// streamTestGraph builds a two-wave workload: independent roots plus a
// dependent second layer, so arrival gating interacts with dependency
// release on both paths.
func streamTestGraph() *runtime.Graph {
	g := runtime.NewGraph()
	hs := make([]*runtime.DataHandle, 4)
	for i := range hs {
		hs[i] = g.NewData("h", 1024)
		g.Submit(&runtime.Task{Kind: "root", Cost: []float64{0.01, 0.002},
			Accesses: []runtime.Access{{Handle: hs[i], Mode: runtime.W}}})
	}
	for i := range hs {
		g.Submit(&runtime.Task{Kind: "leaf", Cost: []float64{0.01, 0.002},
			Accesses: []runtime.Access{{Handle: hs[i], Mode: runtime.R}}})
	}
	return g
}

// TestSimArrivalGating checks that no task starts before its arrival
// instant, including successors whose dependencies complete earlier.
func TestSimArrivalGating(t *testing.T) {
	g := streamTestGraph()
	arrivals := make([]float64, len(g.Tasks))
	for i := range arrivals {
		arrivals[i] = 0.05 * float64(i)
	}
	res, err := Run(tinyMachine(64*1024*1024), g, eager.New(), Options{Seed: 3, Arrivals: arrivals})
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range g.Tasks {
		if task.StartAt < arrivals[task.ID] {
			t.Errorf("task %d started at %g before its arrival at %g", task.ID, task.StartAt, arrivals[task.ID])
		}
	}
	if res.Makespan < arrivals[len(arrivals)-1] {
		t.Errorf("makespan %g precedes the last arrival %g", res.Makespan, arrivals[len(arrivals)-1])
	}
}

// TestSimZeroArrivalsByteIdentical checks the seq-neutrality of the
// arrival path: an explicit all-zero arrival plan must produce exactly
// the batch-mode trace, byte for byte, because zero arrivals take the
// inline push path with no extra events.
func TestSimZeroArrivalsByteIdentical(t *testing.T) {
	run := func(arrivals []float64) []byte {
		g := streamTestGraph()
		res, err := Run(tinyMachine(64*1024*1024), g, eager.New(), Options{
			Seed: 3, CollectMemEvents: true, Arrivals: arrivals,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Trace.Canonical()
	}
	batch := run(nil)
	streamed := run(make([]float64, len(streamTestGraph().Tasks)))
	if !bytes.Equal(batch, streamed) {
		t.Fatalf("all-zero arrival plan diverged from batch mode (%d vs %d bytes)", len(batch), len(streamed))
	}
}

// TestSimArrivalValidation checks plan validation: wrong coverage and
// negative times are rejected before the run starts.
func TestSimArrivalValidation(t *testing.T) {
	g := streamTestGraph()
	_, err := Run(tinyMachine(64*1024*1024), g, eager.New(), Options{Arrivals: []float64{0}})
	if err == nil || !strings.Contains(err.Error(), "arrival plan covers") {
		t.Errorf("length mismatch accepted: %v", err)
	}
	bad := make([]float64, len(g.Tasks))
	bad[2] = -1
	g2 := streamTestGraph()
	_, err = Run(tinyMachine(64*1024*1024), g2, eager.New(), Options{Arrivals: bad})
	if err == nil || !strings.Contains(err.Error(), "invalid arrival time") {
		t.Errorf("negative arrival accepted: %v", err)
	}
}
