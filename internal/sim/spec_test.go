package sim

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"multiprio/internal/core"
	"multiprio/internal/fault"
	"multiprio/internal/oracle"
	"multiprio/internal/runtime"
	"multiprio/internal/spec"
)

// specPlan slows worker 0 by far more than the slack factor for the
// whole run, with speculation on: kernels landing there straggle and
// must be rescued by replicas.
func specPlan() *fault.Plan {
	return &fault.Plan{
		Events: []fault.Event{
			{Kind: fault.SlowWorker, Worker: 0, At: 0, Until: 1e3, Factor: 16},
		},
		Speculation: spec.Policy{Enabled: true, SlackFactor: 1.5},
	}
}

func TestSimSpeculationReplicaWins(t *testing.T) {
	m := faultMachine(t)
	g := faultGraph(m, 11)
	res, err := Run(m, g, core.New(core.Defaults()), Options{
		Seed: 7, CollectMemEvents: true, Faults: specPlan(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Spec.Flagged == 0 || res.Spec.Launched == 0 {
		t.Fatalf("no straggler flagged under a 16x slowdown: %+v", res.Spec)
	}
	if res.Spec.ReplicaWins == 0 {
		t.Fatalf("no replica win under a 16x slowdown: %+v", res.Spec)
	}
	// Every cancelled span is a cancelled attempt, but not every
	// cancelled attempt has a span: losers beaten before their kernel
	// started (still staging, or parked on a commute lock) leave no
	// execution record.
	if got := res.Trace.CancelledCount(); got == 0 || got > res.Spec.Cancelled {
		t.Errorf("trace has %d cancelled spans, stats count %d cancelled attempts", got, res.Spec.Cancelled)
	}
	if res.Spec.WastedWork <= 0 {
		t.Errorf("replica wins without wasted work: %+v", res.Spec)
	}
	if err := oracle.Check(g, res.Trace, oracle.Options{
		OverflowBytes: res.OverflowBytes,
		Spec:          &oracle.SpecCheck{MaxReplicas: specPlan().SpecPolicy().ReplicaCap()},
	}); err != nil {
		t.Fatalf("oracle rejected speculation run: %v", err)
	}
}

// TestSimSpeculationReducesMakespan is the mechanism's reason to exist:
// under a heavy unannounced slowdown, turning speculation on must beat
// leaving the stragglers alone.
func TestSimSpeculationReducesMakespan(t *testing.T) {
	m := faultMachine(t)
	run := func(speculate bool) float64 {
		p := specPlan()
		p.Speculation.Enabled = speculate
		res, err := Run(m, faultGraph(m, 11), core.New(core.Defaults()), Options{
			Seed: 7, Faults: p,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	plain, spec := run(false), run(true)
	if spec >= plain {
		t.Fatalf("speculation did not help: %g with vs %g without", spec, plain)
	}
}

// TestSimSpeculationDeterminism: speculation decisions ride the same
// virtual clock and linearization sequence as everything else, so the
// canonical trace — cancelled spans included — must reproduce byte for
// byte.
func TestSimSpeculationDeterminism(t *testing.T) {
	m := faultMachine(t)
	run := func() *Result {
		res, err := Run(m, faultGraph(m, 11), core.New(core.Defaults()), Options{
			Seed: 7, CollectMemEvents: true, Faults: specPlan(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !bytes.Equal(a.Trace.Canonical(), b.Trace.Canonical()) {
		t.Fatal("same seed and plan produced different speculation traces")
	}
	if a.Spec != b.Spec {
		t.Fatalf("speculation stats differ: %+v vs %+v", a.Spec, b.Spec)
	}
}

// TestSimSpeculationNoopWithoutStragglers: with speculation enabled but
// nothing slowed, no straggler-detection event ever fires (the sim only
// schedules one for kernels that will overrun), so the canonical trace
// is byte-identical to a run without any fault machinery. This is the
// trace-neutrality property the conformance matrix pins per scheduler.
func TestSimSpeculationNoopWithoutStragglers(t *testing.T) {
	m := faultMachine(t)
	run := func(p *fault.Plan) *Result {
		res, err := Run(m, faultGraph(m, 21), core.New(core.Defaults()), Options{
			Seed: 9, CollectMemEvents: true, Faults: p,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	bare := run(nil)
	specOn := run(&fault.Plan{Speculation: spec.Policy{Enabled: true}})
	if !bytes.Equal(bare.Trace.Canonical(), specOn.Trace.Canonical()) {
		t.Fatal("speculation with no stragglers perturbed the trace")
	}
	if specOn.Spec.Flagged != 0 || specOn.Spec.Launched != 0 {
		t.Fatalf("flags without stragglers: %+v", specOn.Spec)
	}
}

// TestSimSpeculationSurvivesKills: kills and speculation compose — a
// straggling attempt (or its replica) dying on a killed worker rolls
// back through the normal retry path and the run still satisfies the
// oracle.
func TestSimSpeculationSurvivesKills(t *testing.T) {
	m := faultMachine(t)
	g := faultGraph(m, 11)
	p := specPlan()
	p.Events = append(p.Events, fault.Event{Kind: fault.KillWorker, Worker: 1, At: 0.01})
	res, err := Run(m, g, core.New(core.Defaults()), Options{
		Seed: 7, CollectMemEvents: true, Faults: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Kills != 1 {
		t.Fatalf("kills = %d, want 1", res.Faults.Kills)
	}
	if err := oracle.Check(g, res.Trace, oracle.Options{
		OverflowBytes: res.OverflowBytes,
		Faults: &oracle.FaultCheck{
			MaxRetries: p.RetryCap(),
			Kills:      res.Faults.AppliedKills,
			Strict:     true,
		},
		Spec: &oracle.SpecCheck{MaxReplicas: p.SpecPolicy().ReplicaCap()},
	}); err != nil {
		t.Fatalf("oracle: %v", err)
	}
}

// TestSimWatchdogDump arms a watchdog with an immediately-expired
// wall-clock deadline: the run must abort with ErrWatchdog and the dump
// must carry the progress summary, per-worker state and the decision
// tail.
func TestSimWatchdogDump(t *testing.T) {
	m := faultMachine(t)
	var buf bytes.Buffer
	_, err := Run(m, faultGraph(m, 11), core.New(core.Defaults()), Options{
		Seed:     7,
		Watchdog: runtime.Watchdog{Deadline: time.Nanosecond, Out: &buf},
	})
	if !errors.Is(err, runtime.ErrWatchdog) {
		t.Fatalf("err = %v, want ErrWatchdog", err)
	}
	dump := buf.String()
	for _, want := range []string{"sim watchdog", "tasks-left=", "worker ", "decision tail"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}

// TestSimWatchdogQuietOnHealthyRuns: a generous deadline must neither
// fire nor perturb the trace (the tail probe records decisions but the
// golden-neutrality of probes is already pinned; here we assert the
// run simply completes).
func TestSimWatchdogQuietOnHealthyRuns(t *testing.T) {
	m := faultMachine(t)
	var buf bytes.Buffer
	res, err := Run(m, faultGraph(m, 11), core.New(core.Defaults()), Options{
		Seed:     7,
		Watchdog: runtime.Watchdog{Deadline: time.Minute, Out: &buf},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("empty result from watched run")
	}
	if buf.Len() != 0 {
		t.Fatalf("watchdog wrote a dump on a healthy run:\n%s", buf.String())
	}
}
