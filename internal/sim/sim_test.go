package sim

import (
	"errors"
	"math"
	"testing"

	"multiprio/internal/perfmodel"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/sched/eager"
)

// tinyMachine: 1 CPU on RAM, 1 GPU with its own small memory.
func tinyMachine(gpuMemBytes int64) *platform.Machine {
	m := &platform.Machine{
		Name:  "tiny",
		Archs: []platform.Arch{{Name: "cpu", PeakGFlops: 10}, {Name: "gpu", PeakGFlops: 100}},
		Mems: []platform.MemNode{
			{Name: "ram"},
			{Name: "gpu-mem", CapacityBytes: gpuMemBytes},
		},
		Units: []platform.Unit{
			{Name: "cpu0", Arch: platform.ArchCPU, Mem: 0, SpeedFactor: 1},
			{Name: "gpu0", Arch: platform.ArchGPU, Mem: 1, SpeedFactor: 1},
		},
		LinkMatrix: [][]platform.Link{
			{{}, {BandwidthBytes: 1e9, LatencySec: 1e-6}},
			{{BandwidthBytes: 1e9, LatencySec: 1e-6}, {}},
		},
	}
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return m
}

func gpuOnlyTask(g *runtime.Graph, kind string, gpuCost float64, acc ...runtime.Access) *runtime.Task {
	return g.Submit(&runtime.Task{
		Kind: kind, Cost: []float64{0, gpuCost}, Accesses: acc,
	})
}

func bothTask(g *runtime.Graph, kind string, cpuCost, gpuCost float64, acc ...runtime.Access) *runtime.Task {
	return g.Submit(&runtime.Task{
		Kind: kind, Cost: []float64{cpuCost, gpuCost}, Accesses: acc,
	})
}

func TestSimpleChainMakespan(t *testing.T) {
	m := platform.CPUOnly(1)
	g := runtime.NewGraph()
	h := g.NewData("x", 8)
	a := g.Submit(&runtime.Task{Kind: "a", Cost: []float64{1}, Accesses: []runtime.Access{{Handle: h, Mode: runtime.W}}})
	b := g.Submit(&runtime.Task{Kind: "b", Cost: []float64{2}, Accesses: []runtime.Access{{Handle: h, Mode: runtime.RW}}})
	res, err := Run(m, g, eager.New(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-3) > 1e-9 {
		t.Errorf("makespan = %v, want 3 (serial chain)", res.Makespan)
	}
	if a.EndAt > b.StartAt+1e-12 {
		t.Errorf("dependency violated: a ends %v, b starts %v", a.EndAt, b.StartAt)
	}
}

func TestIndependentTasksRunInParallel(t *testing.T) {
	m := platform.CPUOnly(4)
	g := runtime.NewGraph()
	for i := 0; i < 4; i++ {
		g.Submit(&runtime.Task{Kind: "p", Cost: []float64{1}})
	}
	res, err := Run(m, g, eager.New(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-1) > 1e-9 {
		t.Errorf("makespan = %v, want 1 (4 tasks, 4 workers)", res.Makespan)
	}
}

func TestTransferDelaysGPUTask(t *testing.T) {
	m := tinyMachine(0) // unbounded GPU memory
	g := runtime.NewGraph()
	h := g.NewData("x", 1e9) // exactly 1 second on the 1 GB/s link
	gpuOnlyTask(g, "k", 1, runtime.Access{Handle: h, Mode: runtime.R})
	res, err := Run(m, g, eager.New(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 1s transfer + 1s compute (+latency).
	if res.Makespan < 2 || res.Makespan > 2.01 {
		t.Errorf("makespan = %v, want ≈2 (transfer + compute)", res.Makespan)
	}
	task := g.Tasks[0]
	span := res.Trace.Spans[0]
	if span.Wait < 0.99 {
		t.Errorf("span wait = %v, want ≈1s of transfer wait", span.Wait)
	}
	if task.RanOn != 1 {
		t.Errorf("task ran on unit %d, want GPU", task.RanOn)
	}
}

func TestDataReuseAvoidsSecondTransfer(t *testing.T) {
	m := tinyMachine(0)
	g := runtime.NewGraph()
	h := g.NewData("x", 1e9)
	gpuOnlyTask(g, "k1", 1, runtime.Access{Handle: h, Mode: runtime.R})
	gpuOnlyTask(g, "k2", 1, runtime.Access{Handle: h, Mode: runtime.R})
	res, err := Run(m, g, eager.New(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// One transfer (1s) + 2 sequential computes on the single GPU.
	if res.Makespan > 3.01 {
		t.Errorf("makespan = %v, want ≈3 (data reused)", res.Makespan)
	}
	nx := 0
	for _, x := range res.Trace.Xfers {
		if !x.Prefetch {
			nx++
		}
	}
	if nx != 1 {
		t.Errorf("transfers = %d, want 1 (second task reuses replica)", nx)
	}
}

func TestWriteInvalidatesOtherReplicas(t *testing.T) {
	m := tinyMachine(0)
	g := runtime.NewGraph()
	h := g.NewData("x", 1e9)
	// GPU reads (replica lands on GPU), CPU writes (invalidates GPU),
	// GPU reads again (must re-transfer).
	gpuOnlyTask(g, "gr1", 0.1, runtime.Access{Handle: h, Mode: runtime.R})
	g.Submit(&runtime.Task{Kind: "cw", Cost: []float64{0.1},
		Accesses: []runtime.Access{{Handle: h, Mode: runtime.RW}}})
	gpuOnlyTask(g, "gr2", 0.1, runtime.Access{Handle: h, Mode: runtime.R})
	res, err := Run(m, g, eager.New(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	fetches := 0
	for _, x := range res.Trace.Xfers {
		if x.Dst == 1 && !x.Prefetch {
			fetches++
		}
	}
	if fetches != 2 {
		t.Errorf("RAM->GPU fetches = %d, want 2 (invalidation forces refetch)", fetches)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	// GPU memory fits only one 1 GB handle at a time.
	m := tinyMachine(1_200_000_000)
	g := runtime.NewGraph()
	h1 := g.NewData("a", 1e9)
	h2 := g.NewData("b", 1e9)
	// Write h1 on GPU (dirty there), then use h2 on GPU (evicts h1,
	// write-back). The CPU reader depends on both writes so its demand
	// fetch cannot race ahead of the eviction.
	gpuOnlyTask(g, "w1", 0.1, runtime.Access{Handle: h1, Mode: runtime.RW})
	gpuOnlyTask(g, "w2", 0.1, runtime.Access{Handle: h2, Mode: runtime.RW})
	g.Submit(&runtime.Task{Kind: "cr", Cost: []float64{0.1},
		Accesses: []runtime.Access{{Handle: h1, Mode: runtime.R}, {Handle: h2, Mode: runtime.R}}})
	// Pipeline 1: with lookahead the second task's acquire would start
	// while the first still pins h1, forcing overflow instead of the
	// eviction this test verifies.
	res, err := Run(m, g, eager.New(), Options{Pipeline: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, _, wb := res.Trace.TransferredBytes()
	if wb != 1e9 {
		t.Errorf("writeback bytes = %d, want 1e9", wb)
	}
	if res.OverflowBytes[1] != 0 {
		t.Errorf("overflow = %d, want 0 (eviction should cover)", res.OverflowBytes[1])
	}
}

func TestOverflowWhenNothingEvictable(t *testing.T) {
	// GPU memory smaller than one task's working set.
	m := tinyMachine(100)
	g := runtime.NewGraph()
	h1 := g.NewData("a", 1000)
	h2 := g.NewData("b", 1000)
	gpuOnlyTask(g, "k", 0.1,
		runtime.Access{Handle: h1, Mode: runtime.R},
		runtime.Access{Handle: h2, Mode: runtime.R})
	res, err := Run(m, g, eager.New(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OverflowBytes[1] == 0 {
		t.Error("expected overflow on GPU memory node")
	}
}

func TestLinkContentionSerializesTransfers(t *testing.T) {
	m := tinyMachine(0)
	g := runtime.NewGraph()
	h1 := g.NewData("a", 1e9)
	h2 := g.NewData("b", 1e9)
	// Two independent GPU tasks with distinct 1s-transfers: the link
	// serializes them, so the second compute cannot start before 2s.
	gpuOnlyTask(g, "k1", 0.1, runtime.Access{Handle: h1, Mode: runtime.R})
	gpuOnlyTask(g, "k2", 0.1, runtime.Access{Handle: h2, Mode: runtime.R})
	res, err := Run(m, g, eager.New(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan < 2.1-1e-9 {
		t.Errorf("makespan = %v, want >= 2.1 (serialized link)", res.Makespan)
	}
}

func TestNoiseIsDeterministicPerSeed(t *testing.T) {
	m := platform.CPUOnly(2)
	build := func() *runtime.Graph {
		g := runtime.NewGraph()
		for i := 0; i < 20; i++ {
			g.Submit(&runtime.Task{Kind: "p", Cost: []float64{0.01}})
		}
		return g
	}
	r1, err := Run(m, build(), eager.New(), Options{Seed: 42, Noise: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(m, build(), eager.New(), Options{Seed: 42, Noise: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan != r2.Makespan {
		t.Errorf("same seed, different makespans: %v vs %v", r1.Makespan, r2.Makespan)
	}
	r3, err := Run(m, build(), eager.New(), Options{Seed: 43, Noise: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan == r3.Makespan {
		t.Error("different seeds produced identical noisy makespans")
	}
}

func TestHistoryRecording(t *testing.T) {
	m := platform.CPUOnly(1)
	g := runtime.NewGraph()
	tk := g.Submit(&runtime.Task{Kind: "kern", Footprint: 9, Cost: []float64{0.5}})
	hist := perfmodel.NewHistory()
	if _, err := Run(m, g, eager.New(), Options{History: hist}); err != nil {
		t.Fatal(err)
	}
	mean, ok := hist.Mean("kern", platform.ArchCPU, 9)
	if !ok || math.Abs(mean-0.5) > 1e-9 {
		t.Errorf("recorded mean = %v, %v; want 0.5", mean, ok)
	}
	if tk.EndAt != 0.5 {
		t.Errorf("task EndAt = %v, want 0.5", tk.EndAt)
	}
}

func TestDeadlockDetection(t *testing.T) {
	m := platform.CPUOnly(1)
	g := runtime.NewGraph()
	g.Submit(&runtime.Task{Kind: "t", Cost: []float64{1}})
	_, err := Run(m, g, refuser{}, Options{})
	if !errors.Is(err, ErrDeadlock) {
		t.Errorf("err = %v, want ErrDeadlock", err)
	}
}

type refuser struct{}

func (refuser) Name() string                               { return "refuser" }
func (refuser) Init(*runtime.Env)                          {}
func (refuser) Push(*runtime.Task)                         {}
func (refuser) Pop(runtime.WorkerInfo) *runtime.Task       { return nil }
func (refuser) TaskDone(*runtime.Task, runtime.WorkerInfo) {}

func TestHeterogeneousPlacementBySpeed(t *testing.T) {
	// Eager assigns FIFO, but a GPU-only task must land on the GPU and
	// a CPU-only task on the CPU.
	m := tinyMachine(0)
	g := runtime.NewGraph()
	gpu := gpuOnlyTask(g, "g", 0.1)
	cpu := g.Submit(&runtime.Task{Kind: "c", Cost: []float64{0.1}})
	if _, err := Run(m, g, eager.New(), Options{}); err != nil {
		t.Fatal(err)
	}
	if m.Units[gpu.RanOn].Arch != platform.ArchGPU {
		t.Error("GPU-only task ran on CPU")
	}
	if m.Units[cpu.RanOn].Arch != platform.ArchCPU {
		t.Error("CPU-only task ran on GPU (no GPU implementation)")
	}
}

func TestStreamWorkersShareDevice(t *testing.T) {
	// 2-stream GPU: two workers each at half speed. Two equal tasks
	// finish together at 2 * base.
	m := &platform.Machine{
		Name:  "streams",
		Archs: []platform.Arch{{Name: "cpu"}, {Name: "gpu"}},
		Mems:  []platform.MemNode{{Name: "ram"}, {Name: "gpu-mem"}},
		Units: []platform.Unit{
			{Name: "cpu0", Arch: 0, Mem: 0, SpeedFactor: 1},
			{Name: "gpu0.s0", Arch: 1, Mem: 1, SpeedFactor: 2},
			{Name: "gpu0.s1", Arch: 1, Mem: 1, SpeedFactor: 2},
		},
		LinkMatrix: [][]platform.Link{
			{{}, {BandwidthBytes: 1e12, LatencySec: 0}},
			{{BandwidthBytes: 1e12, LatencySec: 0}, {}},
		},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	g := runtime.NewGraph()
	gpuOnlyTask(g, "k", 1)
	gpuOnlyTask(g, "k", 1)
	res, err := Run(m, g, eager.New(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-2) > 1e-9 {
		t.Errorf("makespan = %v, want 2 (two streams at half device speed)", res.Makespan)
	}
}

func TestResetRunAllowsReplay(t *testing.T) {
	m := platform.CPUOnly(2)
	g := runtime.NewGraph()
	h := g.NewData("x", 8)
	g.Submit(&runtime.Task{Kind: "a", Cost: []float64{1}, Accesses: []runtime.Access{{Handle: h, Mode: runtime.W}}})
	g.Submit(&runtime.Task{Kind: "b", Cost: []float64{1}, Accesses: []runtime.Access{{Handle: h, Mode: runtime.R}}})
	r1, err := Run(m, g, eager.New(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	g.ResetRun()
	r2, err := Run(m, g, eager.New(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan != r2.Makespan {
		t.Errorf("replay differs: %v vs %v", r1.Makespan, r2.Makespan)
	}
}
