package sim

import (
	"bytes"
	"math/rand"
	"testing"

	"multiprio/internal/core"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
)

// buildTransferHeavyGraph produces a DAG whose tasks touch several
// handles each, so that every acquire issues multiple fetches and their
// issue order is observable through link FIFO queueing. Regression
// test for the map-iteration nondeterminism in memoryManager.acquire:
// iterating the needs map made transfer order — and through it
// makespans and whole traces — vary between runs of the same seed.
func buildTransferHeavyGraph(seed int64) *runtime.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := runtime.NewGraph()
	handles := make([]*runtime.DataHandle, 24)
	for i := range handles {
		handles[i] = g.NewData("h", int64(rng.Intn(4*int(platform.MiB))+1024))
	}
	for l := 0; l < 8; l++ {
		for w := 0; w < 6; w++ {
			accs := []runtime.Access{{Handle: handles[rng.Intn(len(handles))], Mode: runtime.RW}}
			for k := 0; k < 3; k++ {
				h := handles[rng.Intn(len(handles))]
				dup := false
				for _, a := range accs {
					if a.Handle == h {
						dup = true
					}
				}
				if !dup {
					accs = append(accs, runtime.Access{Handle: h, Mode: runtime.R})
				}
			}
			g.Submit(&runtime.Task{
				Kind:     "k",
				Cost:     []float64{0.002 + rng.Float64()*0.004, 0.0005 + rng.Float64()*0.001},
				Accesses: accs,
			})
		}
	}
	return g
}

func TestSameSeedProducesIdenticalTraces(t *testing.T) {
	m, err := platform.NewHeteroNode("det", 4, 10, 2, 100, 32*platform.MiB, 4e9, platform.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{3, 11} {
		run := func() []byte {
			g := buildTransferHeavyGraph(seed)
			res, err := Run(m, g, core.New(core.Defaults()), Options{
				Seed: seed, Noise: 0.05, CollectMemEvents: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res.Trace.Canonical()
		}
		first := run()
		for rep := 0; rep < 3; rep++ {
			if again := run(); !bytes.Equal(first, again) {
				t.Fatalf("seed %d: run %d produced a different trace (%d vs %d bytes)",
					seed, rep+2, len(first), len(again))
			}
		}
	}
}
