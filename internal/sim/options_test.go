package sim

import (
	"testing"

	"multiprio/internal/fault"
	"multiprio/internal/perfmodel"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/sched/eager"
)

// TestNewEngineLowersEveryOption is the options-audit regression: every
// shared runtime functional option that the simulator implements must
// reach the corresponding sim.Options field. A knob added to Options
// without a lowering line here fails loudly instead of being silently
// ignored.
func TestNewEngineLowersEveryOption(t *testing.T) {
	hist := perfmodel.NewHistory()
	plan := &fault.Plan{}
	eng, err := NewEngine(platform.CPUOnly(2), eager.New(),
		runtime.WithSeed(99),
		runtime.WithNoise(0.25),
		runtime.WithHistory(hist),
		runtime.WithMemEvents(),
		runtime.WithMaxEvents(1234),
		runtime.WithPipeline(7),
		runtime.WithTransferSpans(),
		runtime.WithFaultPlan(plan),
	)
	if err != nil {
		t.Fatal(err)
	}
	o := eng.opts
	if o.Seed != 99 || o.Noise != 0.25 || o.History != hist ||
		!o.CollectMemEvents || o.MaxEvents != 1234 || o.Pipeline != 7 ||
		!o.CollectTrace || o.Faults != plan {
		t.Fatalf("options not lowered: %+v", o)
	}
}

// TestWithLookaheadAliasesWithPipeline keeps the deprecated spelling
// behaviourally identical to the canonical one.
func TestWithLookaheadAliasesWithPipeline(t *testing.T) {
	a := runtime.BuildRunConfig([]runtime.Option{runtime.WithLookahead(5)})
	b := runtime.BuildRunConfig([]runtime.Option{runtime.WithPipeline(5)})
	if a.Lookahead != 5 || b.Lookahead != 5 {
		t.Fatalf("Lookahead = %d / %d, want 5 from both spellings", a.Lookahead, b.Lookahead)
	}
}
