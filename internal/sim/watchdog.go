package sim

import (
	"fmt"
	"io"

	"multiprio/internal/runtime"
)

// dumpWatchdog writes the diagnostic dump of a wedged run: progress
// summary, per-worker state, and the tail of the scheduler decision
// log. Every line is prefixed so the dump is greppable out of
// interleaved CI output.
func (eng *simulation) dumpWatchdog(wd runtime.Watchdog) {
	w := wd.Output()
	fmt.Fprintf(w, "sim watchdog: no completion after %v wall time\n", wd.Deadline)
	fmt.Fprintf(w, "  t=%g events=%d tasks-left=%d/%d scheduler=%s pending-events=%d\n",
		eng.now, eng.events, eng.left, len(eng.graph.Tasks), eng.sched.Name(), eng.pq.len())
	for i := range eng.workers {
		wk := &eng.workers[i]
		state := "idle"
		switch {
		case wk.dead:
			state = "dead"
		case wk.computing != nil:
			state = fmt.Sprintf("computing task %d (%s)", wk.computing.ID, wk.computing.Kind)
		case wk.inflight > 0:
			state = "staging"
		}
		fmt.Fprintf(w, "  worker %-12s %s inflight=%d staged=%d\n",
			wk.unit.Name, state, wk.inflight, len(wk.staged))
	}
	fmt.Fprintln(w, "  decision tail (oldest first):")
	eng.wdTail.Dump(indent{w})
}

// indent prefixes each written chunk with two spaces (the tail writer
// emits one line per Write call).
type indent struct{ w io.Writer }

func (i indent) Write(p []byte) (int, error) {
	if _, err := i.w.Write([]byte("  ")); err != nil {
		return 0, err
	}
	return i.w.Write(p)
}
