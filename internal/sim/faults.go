package sim

import (
	"fmt"

	"multiprio/internal/fault"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/trace"
)

// faultInjector holds the per-run fault state. It exists only when the
// run has a non-empty fault plan, so fault-free runs pay one nil check
// at each guarded site and allocate nothing.
type faultInjector struct {
	plan *fault.Plan
	// attempts counts execution attempts per task ID; a task whose
	// count exceeds the plan's retry cap fails the run.
	attempts map[int64]int
	// live tracks the in-flight attempt of each popped-but-unfinished
	// task, so a kill can abort exactly what its worker holds.
	live  map[int64]*attempt
	stats runtime.FaultStats
}

// attempt is the fault-tracking record of one execution attempt: which
// worker holds the task and which resources the staging pipeline has
// taken so far, so an abort releases exactly those.
type attempt struct {
	t  *runtime.Task
	wk *simWorker
	// pinned: mm.acquire was called — pins are held on wk's memory
	// node (from the moment acquire returns, transfers may still be in
	// flight).
	pinned bool
	// locked: the task's commute locks are held.
	locked bool
	// wallocs are the handles acquire write-allocated; see abortAcquire.
	wallocs []*runtime.DataHandle
	// run is non-nil while the kernel occupies the unit.
	run *runState
	// cancelled flags the attempt dead so late callbacks (acquire
	// completions, parked commute retries) become no-ops.
	cancelled bool
}

// runState carries the kernel-start bookkeeping of one attempt so a
// kill can synthesize the failed span and cancel the completion event.
type runState struct {
	wait      float64
	startSeq  int64
	cancelled bool
}

func newFaultInjector(plan *fault.Plan) *faultInjector {
	return &faultInjector{
		plan:     plan,
		attempts: make(map[int64]int),
		live:     make(map[int64]*attempt),
	}
}

// liveOn counts live workers on memory node mem.
func (eng *simulation) liveOn(mem platform.MemID) int {
	n := 0
	for i := range eng.workers {
		if !eng.workers[i].dead && eng.workers[i].info.Mem == mem {
			n++
		}
	}
	return n
}

// applyKill removes worker u from the machine at the current simulated
// time: every attempt the worker holds is aborted and rolled back, the
// scheduler's view of the machine shrinks, and — when the worker was
// the last one of its memory node — the node's replicas are lost.
func (eng *simulation) applyKill(u platform.UnitID) {
	wk := &eng.workers[u]
	if wk.dead {
		return
	}
	wk.dead = true
	fi := eng.faults
	fi.stats.Kills++
	fi.stats.AppliedKills = append(fi.stats.AppliedKills, runtime.AppliedKill{Unit: u, At: eng.now})
	eng.env.MarkWorkerDown(u)

	// Abort every attempt this worker holds — computing, staged,
	// acquiring, or parked on a commute lock — in task-ID order for a
	// deterministic rollback (and hence event) sequence.
	var doomed []*attempt
	for _, a := range fi.live {
		if a.wk == wk {
			doomed = append(doomed, a)
		}
	}
	for i := 1; i < len(doomed); i++ { // insertion sort: a handful of entries
		for j := i; j > 0 && doomed[j-1].t.ID > doomed[j].t.ID; j-- {
			doomed[j-1], doomed[j] = doomed[j], doomed[j-1]
		}
	}
	for _, a := range doomed {
		eng.abortAttempt(a)
	}
	wk.staged = nil
	wk.computing = nil

	// Device loss: the node's memory dies with its last worker.
	if eng.liveOn(wk.info.Mem) == 0 {
		fi.stats.LostReplicas += eng.mm.loseNode(wk.info.Mem)
	}
	if fo, ok := eng.sched.(runtime.FaultObserver); ok {
		fo.WorkerDown(wk.info)
	}
	// Other workers may now be the best (or only) home for re-pushed
	// work; re-probe everyone.
	eng.wakeAll()
}

// abortAttempt rolls back one attempt: synthesize the failed span if
// the kernel was running, release pins, write-allocations and commute
// locks, and schedule the task's retry.
func (eng *simulation) abortAttempt(a *attempt) {
	t := a.t
	wk := a.wk
	a.cancelled = true
	if a.run != nil {
		a.run.cancelled = true // the queued finish event becomes a no-op
		endSeq := eng.nextSeq()
		eng.tr.AddSpan(trace.Span{
			Worker: wk.info.ID, TaskID: t.ID, Kind: t.Kind,
			Start: t.StartAt, End: eng.now, Wait: a.run.wait,
			StartSeq: a.run.startSeq, EndSeq: endSeq, Failed: true,
		})
	}
	if a.pinned {
		eng.mm.abortAcquire(t, wk.info.Mem, a.wallocs)
	}
	if a.locked {
		eng.unlockCommute(t)
	}
	wk.inflight--
	delete(eng.faults.live, t.ID)
	eng.rollbackTask(t)
}

// rollbackTask resets a failed attempt's task and re-pushes it to the
// scheduler after a backoff proportional to the attempt count. The
// retry cap bounds pathological plans: exceeding it fails the run.
func (eng *simulation) rollbackTask(t *runtime.Task) {
	fi := eng.faults
	fi.stats.Retries++
	fi.attempts[t.ID]++
	n := fi.attempts[t.ID]
	if n > fi.plan.RetryCap() {
		if eng.runErr == nil {
			eng.runErr = fmt.Errorf("sim: task %d exceeded %d retries", t.ID, fi.plan.RetryCap())
		}
		return
	}
	t.ResetForRetry()
	eng.at(eng.now+float64(n)*fi.plan.RetryBackoff(), func() {
		t.ReadyAt = eng.now
		eng.sched.Push(t)
		if eng.probe != nil {
			eng.pushed++
			eng.noteProgress()
		}
		eng.wakeAll()
	})
}
