package sim

import (
	"fmt"

	"multiprio/internal/fault"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/trace"
)

// faultInjector holds the per-run fault state. It exists only when the
// run has a non-empty fault plan (or speculation enabled, which needs
// the same attempt tracking), so fault-free runs pay one nil check at
// each guarded site and allocate nothing.
type faultInjector struct {
	plan *fault.Plan
	// attempts counts execution attempts per task ID; a task whose
	// count exceeds the plan's retry cap fails the run.
	attempts map[int64]int
	// live tracks the in-flight attempts of each popped-but-unfinished
	// task, so a kill can abort exactly what its worker holds and a
	// speculation winner can cancel its losing siblings. Without
	// speculation the slice never exceeds one entry.
	live map[int64][]*attempt
	// attemptSeq numbers attempts in creation order; kills sort their
	// doomed set by it for a deterministic rollback sequence.
	attemptSeq int64
	stats      runtime.FaultStats
}

// attempt is the fault-tracking record of one execution attempt: which
// worker holds the task and which resources the staging pipeline has
// taken so far, so an abort releases exactly those.
type attempt struct {
	t  *runtime.Task
	wk *simWorker
	// n is the attempt's creation-order number (determinism key).
	n int64
	// replica marks a speculative replica: another attempt of the task
	// was already live when this one was popped.
	replica bool
	// pinned: mm.acquire was called — pins are held on wk's memory
	// node (from the moment acquire returns, transfers may still be in
	// flight).
	pinned bool
	// locked: the task's commute locks are held.
	locked bool
	// wallocs are the handles acquire write-allocated; see abortAcquire.
	wallocs []*runtime.DataHandle
	// run is non-nil while the kernel occupies the unit.
	run *runState
	// cancelled flags the attempt dead so late callbacks (acquire
	// completions, parked commute retries) become no-ops.
	cancelled bool
}

// runState carries the kernel-start bookkeeping of one attempt so a
// kill or speculation loss can synthesize the failed/cancelled span and
// cancel the completion event. startAt is per-attempt (not the shared
// Task.StartAt) because two speculation attempts of one task run
// concurrently; the winner commits its stamps to the task in
// finishTask.
type runState struct {
	startAt   float64
	wait      float64
	startSeq  int64
	cancelled bool
}

func newFaultInjector(plan *fault.Plan) *faultInjector {
	return &faultInjector{
		plan:     plan,
		attempts: make(map[int64]int),
		live:     make(map[int64][]*attempt),
	}
}

// newAttempt registers a live attempt of t on wk.
func (fi *faultInjector) newAttempt(t *runtime.Task, wk *simWorker) *attempt {
	fi.attemptSeq++
	a := &attempt{t: t, wk: wk, n: fi.attemptSeq, replica: len(fi.live[t.ID]) > 0}
	fi.live[t.ID] = append(fi.live[t.ID], a)
	return a
}

// isLive reports whether a is still a registered attempt of its task.
func (fi *faultInjector) isLive(a *attempt) bool {
	for _, l := range fi.live[a.t.ID] {
		if l == a {
			return true
		}
	}
	return false
}

// removeLive unregisters a; the task's entry disappears with its last
// attempt.
func (fi *faultInjector) removeLive(a *attempt) {
	as := fi.live[a.t.ID]
	for i, l := range as {
		if l == a {
			as = append(as[:i], as[i+1:]...)
			break
		}
	}
	if len(as) == 0 {
		delete(fi.live, a.t.ID)
	} else {
		fi.live[a.t.ID] = as
	}
}

// liveOn counts live workers on memory node mem.
func (eng *simulation) liveOn(mem platform.MemID) int {
	n := 0
	for i := range eng.workers {
		if !eng.workers[i].dead && eng.workers[i].info.Mem == mem {
			n++
		}
	}
	return n
}

// applyKill removes worker u from the machine at the current simulated
// time: every attempt the worker holds is aborted and rolled back, the
// scheduler's view of the machine shrinks, and — when the worker was
// the last one of its memory node — the node's replicas are lost.
func (eng *simulation) applyKill(u platform.UnitID) {
	wk := &eng.workers[u]
	if wk.dead {
		return
	}
	wk.dead = true
	fi := eng.faults
	fi.stats.Kills++
	fi.stats.AppliedKills = append(fi.stats.AppliedKills, runtime.AppliedKill{Unit: u, At: eng.now})
	eng.env.MarkWorkerDown(u)

	// Abort every attempt this worker holds — computing, staged,
	// acquiring, or parked on a commute lock — in attempt-creation order
	// for a deterministic rollback (and hence event) sequence.
	var doomed []*attempt
	for _, as := range fi.live {
		for _, a := range as {
			if a.wk == wk {
				doomed = append(doomed, a)
			}
		}
	}
	for i := 1; i < len(doomed); i++ { // insertion sort: a handful of entries
		for j := i; j > 0 && doomed[j-1].n > doomed[j].n; j-- {
			doomed[j-1], doomed[j] = doomed[j], doomed[j-1]
		}
	}
	for _, a := range doomed {
		eng.abortAttempt(a)
	}
	wk.staged = nil
	wk.computing = nil

	// Device loss: the node's memory dies with its last worker.
	if eng.liveOn(wk.info.Mem) == 0 {
		fi.stats.LostReplicas += eng.mm.loseNode(wk.info.Mem)
	}
	if fo, ok := eng.sched.(runtime.FaultObserver); ok {
		fo.WorkerDown(wk.info)
	}
	// Other workers may now be the best (or only) home for re-pushed
	// work; re-probe everyone.
	eng.wakeAll()
}

// abortAttempt rolls back one attempt: synthesize the failed span if
// the kernel was running, release pins, write-allocations and commute
// locks, and schedule the task's retry.
func (eng *simulation) abortAttempt(a *attempt) {
	t := a.t
	wk := a.wk
	a.cancelled = true
	if a.run != nil {
		a.run.cancelled = true // the queued finish event becomes a no-op
		endSeq := eng.nextSeq()
		eng.tr.AddSpan(trace.Span{
			Worker: wk.info.ID, TaskID: t.ID, Kind: t.Kind,
			Start: a.run.startAt, End: eng.now, Wait: a.run.wait,
			StartSeq: a.run.startSeq, EndSeq: endSeq, Failed: true,
		})
	}
	if a.pinned {
		eng.mm.abortAcquire(t, wk.info.Mem, a.wallocs)
	}
	if a.locked {
		eng.unlockCommute(t)
	}
	wk.inflight--
	eng.faults.removeLive(a)
	eng.rollbackTask(t)
}

// rollbackTask resets a killed attempt's task and re-pushes it to the
// scheduler after a capped exponential backoff with seed-derived jitter
// (fault.Plan.RetryDelay). The retry cap bounds pathological plans:
// exceeding it fails the run. When a speculative sibling of the task is
// still live the re-push is skipped: the surviving attempt carries the
// task, and only if it too dies does its own rollback re-push.
func (eng *simulation) rollbackTask(t *runtime.Task) {
	fi := eng.faults
	if len(fi.live[t.ID]) > 0 {
		return // a sibling attempt is still in flight
	}
	fi.stats.Retries++
	fi.attempts[t.ID]++
	n := fi.attempts[t.ID]
	if n > fi.plan.RetryCap() {
		if eng.runErr == nil {
			eng.runErr = fmt.Errorf("sim: task %d exceeded %d retries", t.ID, fi.plan.RetryCap())
		}
		return
	}
	if eng.specCtl != nil {
		// The task restarts from scratch; its replica budget comes back.
		eng.specCtl.Retired(t.ID)
	}
	t.ResetForRetry()
	eng.at(eng.now+fi.plan.RetryDelay(t.ID, n), func() {
		t.ReadyAt = eng.now
		eng.sched.Push(t)
		if eng.probe != nil {
			eng.pushed++
			eng.noteProgress()
		}
		eng.wakeAll()
	})
}
