package platform

import (
	"fmt"
)

// ClusterInfo records the multi-node topology a flattened cluster
// Machine was built from: which node owns each (global) memory node and
// processing unit, and where each node's ID ranges begin. The two-level
// scheduler (internal/sched/distrib) and the execution oracle's
// inter-node transfer replay address nodes through it.
type ClusterInfo struct {
	Name string
	// Nodes are the original per-node machines, untouched: their memory
	// and unit IDs are node-local (each node sees itself as a complete
	// single-node Machine, which is exactly what a per-node scheduler
	// instance is handed).
	Nodes []*Machine
	// Inter[i][j] is the interconnect link from node i to node j. The
	// diagonal is zero.
	Inter [][]Link
	// MemBase[n] / UnitBase[n] are the global IDs of node n's memory
	// node 0 / unit 0 in the flattened machine.
	MemBase  []MemID
	UnitBase []UnitID
	// MemHost[m] / UnitHost[u] give the owning node of each global
	// memory node / unit.
	MemHost  []NodeID
	UnitHost []NodeID
}

// NumNodes returns the number of cluster nodes this machine spans;
// plain single-node machines report 1.
func (m *Machine) NumNodes() int {
	if m.Cluster == nil {
		return 1
	}
	return len(m.Cluster.Nodes)
}

// NodeOfMem returns the cluster node owning (global) memory node mem.
func (m *Machine) NodeOfMem(mem MemID) NodeID {
	if m.Cluster == nil {
		return 0
	}
	return m.Cluster.MemHost[mem]
}

// NodeOfUnit returns the cluster node owning (global) unit u.
func (m *Machine) NodeOfUnit(u UnitID) NodeID {
	if m.Cluster == nil {
		return 0
	}
	return m.Cluster.UnitHost[u]
}

// Node returns the per-node machine of cluster node n. For single-node
// machines it returns the machine itself.
func (m *Machine) Node(n NodeID) *Machine {
	if m.Cluster == nil {
		return m
	}
	return m.Cluster.Nodes[n]
}

// LocalMem translates a global memory node ID into (node, node-local ID).
func (m *Machine) LocalMem(mem MemID) (NodeID, MemID) {
	if m.Cluster == nil {
		return 0, mem
	}
	n := m.Cluster.MemHost[mem]
	return n, mem - m.Cluster.MemBase[n]
}

// LocalUnit translates a global unit ID into (node, node-local ID).
func (m *Machine) LocalUnit(u UnitID) (NodeID, UnitID) {
	if m.Cluster == nil {
		return 0, u
	}
	n := m.Cluster.UnitHost[u]
	return n, u - m.Cluster.UnitBase[n]
}

// GlobalMem translates node n's node-local memory ID into the global ID.
func (m *Machine) GlobalMem(n NodeID, mem MemID) MemID {
	if m.Cluster == nil {
		return mem
	}
	return m.Cluster.MemBase[n] + mem
}

// GlobalUnit translates node n's node-local unit ID into the global ID.
func (m *Machine) GlobalUnit(n NodeID, u UnitID) UnitID {
	if m.Cluster == nil {
		return u
	}
	return m.Cluster.UnitBase[n] + u
}

// NewCluster joins N already-validated node machines into one flattened
// cluster Machine connected by the inter[i][j] interconnect links
// (bandwidth/latency per directed node pair, FIFO contention exactly
// like the intra-node links — the simulator's link model applies
// unchanged).
//
// The flattened machine is instance-addressable: every memory node and
// unit of every cluster node gets a global ID, names are prefixed with
// the owning node's name, and Cluster records the topology. Inter-node
// transfers route through each node's gateway memory (its node-local
// memory node 0, the RAM by the MemRAM convention): the composite link
// from memory a on node i to memory b on node j adds the latencies of
// the a→gateway leg, the interconnect, and the gateway→b leg, and runs
// at the minimum bandwidth of those legs.
//
// A 1-node cluster is the node itself: the returned machine has the
// node's exact name, IDs, links and units (byte-identical traces — the
// N=1 equivalence property the conformance goldens pin), plus a
// ClusterInfo so node-addressing helpers still work.
//
// All nodes must share one architecture catalog (identical Archs
// slices): application cost models are written against per-arch peak
// rates, and per-node speed differences are expressed through
// Unit.SpeedFactor, never by forking the catalog.
func NewCluster(name string, nodes []*Machine, inter [][]Link) (*Machine, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("platform: cluster %q has no nodes", name)
	}
	names := make(map[string]int, len(nodes))
	for i, nd := range nodes {
		if nd == nil {
			return nil, fmt.Errorf("platform: cluster %q: node %d is nil", name, i)
		}
		if nd.Cluster != nil {
			return nil, fmt.Errorf("platform: cluster %q: node %d (%s) is itself a cluster", name, i, nd.Name)
		}
		if err := nd.Validate(); err != nil {
			return nil, fmt.Errorf("platform: cluster %q: node %d: %w", name, i, err)
		}
		if prev, dup := names[nd.Name]; dup {
			return nil, fmt.Errorf("platform: cluster %q: duplicate node name %q (nodes %d and %d)", name, nd.Name, prev, i)
		}
		names[nd.Name] = i
	}
	if len(inter) != len(nodes) {
		return nil, fmt.Errorf("platform: cluster %q: interconnect has %d rows, want %d", name, len(inter), len(nodes))
	}
	for i, row := range inter {
		if len(row) != len(nodes) {
			return nil, fmt.Errorf("platform: cluster %q: interconnect row %d has %d cols, want %d", name, i, len(row), len(nodes))
		}
		for j, l := range row {
			if i == j {
				if l.BandwidthBytes != 0 || l.LatencySec != 0 {
					return nil, fmt.Errorf("platform: cluster %q: self-loop interconnect link %d->%d must be zero", name, i, j)
				}
				continue
			}
			if l.BandwidthBytes <= 0 {
				return nil, fmt.Errorf("platform: cluster %q: interconnect link %d->%d has bandwidth %v", name, i, j, l.BandwidthBytes)
			}
			if l.LatencySec < 0 {
				return nil, fmt.Errorf("platform: cluster %q: interconnect link %d->%d has negative latency %v", name, i, j, l.LatencySec)
			}
		}
	}
	for i, nd := range nodes[1:] {
		if !sameArchs(nodes[0].Archs, nd.Archs) {
			return nil, fmt.Errorf("platform: cluster %q: node %d (%s) has a different architecture catalog than node 0 (%s); express per-node speeds through Unit.SpeedFactor",
				name, i+1, nd.Name, nodes[0].Name)
		}
	}

	info := &ClusterInfo{Name: name, Nodes: nodes, Inter: inter}
	if len(nodes) == 1 {
		// N=1 equivalence: the cluster IS the node. A shallow copy keeps
		// the node machine untouched while attaching the topology maps.
		flat := *nodes[0]
		info.MemBase = []MemID{0}
		info.UnitBase = []UnitID{0}
		info.MemHost = make([]NodeID, len(flat.Mems))
		info.UnitHost = make([]NodeID, len(flat.Units))
		flat.Cluster = info
		return &flat, nil
	}

	flat := &Machine{
		Name:    name,
		Archs:   append([]Arch(nil), nodes[0].Archs...),
		Cluster: info,
	}
	for n, nd := range nodes {
		info.MemBase = append(info.MemBase, MemID(len(flat.Mems)))
		info.UnitBase = append(info.UnitBase, UnitID(len(flat.Units)))
		for _, mem := range nd.Mems {
			mem.Name = nd.Name + "/" + mem.Name
			flat.Mems = append(flat.Mems, mem)
			info.MemHost = append(info.MemHost, NodeID(n))
		}
		for _, u := range nd.Units {
			u.Name = nd.Name + "/" + u.Name
			u.Mem += info.MemBase[n]
			flat.Units = append(flat.Units, u)
			info.UnitHost = append(info.UnitHost, NodeID(n))
		}
	}
	total := len(flat.Mems)
	flat.LinkMatrix = make([][]Link, total)
	for i := range flat.LinkMatrix {
		flat.LinkMatrix[i] = make([]Link, total)
		ni, li := info.MemHost[i], MemID(i)-info.MemBase[info.MemHost[i]]
		for j := range flat.LinkMatrix[i] {
			if i == j {
				continue
			}
			nj, lj := info.MemHost[j], MemID(j)-info.MemBase[info.MemHost[j]]
			if ni == nj {
				flat.LinkMatrix[i][j] = nodes[ni].LinkMatrix[li][lj]
				continue
			}
			flat.LinkMatrix[i][j] = compositeLink(nodes[ni], li, nodes[nj], lj, inter[ni][nj])
		}
	}
	if err := flat.Validate(); err != nil {
		return nil, fmt.Errorf("platform: cluster %q: %w", name, err)
	}
	return flat, nil
}

// compositeLink models a transfer from memory li on node src to memory
// lj on node dst: source memory to the source gateway (node-local mem
// 0), across the interconnect, gateway to destination memory. Latencies
// add; the slowest leg bounds the bandwidth.
func compositeLink(src *Machine, li MemID, dst *Machine, lj MemID, inter Link) Link {
	out := inter
	if li != 0 {
		leg := src.LinkMatrix[li][0]
		out.LatencySec += leg.LatencySec
		if leg.BandwidthBytes < out.BandwidthBytes {
			out.BandwidthBytes = leg.BandwidthBytes
		}
	}
	if lj != 0 {
		leg := dst.LinkMatrix[0][lj]
		out.LatencySec += leg.LatencySec
		if leg.BandwidthBytes < out.BandwidthBytes {
			out.BandwidthBytes = leg.BandwidthBytes
		}
	}
	return out
}

// sameArchs reports whether two architecture catalogs are identical.
func sameArchs(a, b []Arch) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// UniformCluster builds an n-node cluster of identical nodes produced
// by mk (called once per node with the node index; implementations must
// give each node a distinct name) joined by a full symmetric
// interconnect of the given bandwidth (bytes/s) and latency (seconds).
func UniformCluster(name string, n int, mk func(i int) (*Machine, error), bw, lat float64) (*Machine, error) {
	if n < 1 {
		return nil, fmt.Errorf("platform: cluster %q: %d nodes", name, n)
	}
	nodes := make([]*Machine, n)
	for i := range nodes {
		nd, err := mk(i)
		if err != nil {
			return nil, fmt.Errorf("platform: cluster %q: node %d: %w", name, i, err)
		}
		nodes[i] = nd
	}
	inter := make([][]Link, n)
	for i := range inter {
		inter[i] = make([]Link, n)
		for j := range inter[i] {
			if i != j {
				inter[i][j] = Link{BandwidthBytes: bw, LatencySec: lat}
			}
		}
	}
	return NewCluster(name, nodes, inter)
}
