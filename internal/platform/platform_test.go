package platform

import (
	"strings"
	"testing"
)

func TestIntelV100Shape(t *testing.T) {
	m := IntelV100(Config{})
	if got := m.NumWorkersOf(ArchCPU); got != 30 {
		t.Errorf("CPU workers = %d, want 30 (32 cores - 2 reserved)", got)
	}
	if got := m.NumWorkersOf(ArchGPU); got != 2 {
		t.Errorf("GPU workers = %d, want 2", got)
	}
	if got := len(m.Mems); got != 3 {
		t.Errorf("memory nodes = %d, want 3 (ram + 2 gpu)", got)
	}
	if m.Mems[1].CapacityBytes != 16*GiB {
		t.Errorf("gpu0 capacity = %d, want 16 GiB", m.Mems[1].CapacityBytes)
	}
}

func TestAMDA100Shape(t *testing.T) {
	m := AMDA100(Config{GPUStreams: 4})
	if got := m.NumWorkersOf(ArchCPU); got != 62 {
		t.Errorf("CPU workers = %d, want 62", got)
	}
	if got := m.NumWorkersOf(ArchGPU); got != 8 {
		t.Errorf("GPU workers = %d, want 8 (2 devices x 4 streams)", got)
	}
	// Stream workers share the device throughput.
	gpuUnit := m.Units[m.UnitsOf(ArchGPU)[0]]
	if gpuUnit.SpeedFactor != 4 {
		t.Errorf("stream worker speed factor = %v, want 4", gpuUnit.SpeedFactor)
	}
}

func TestMemArchConvention(t *testing.T) {
	m := IntelV100(Config{})
	if m.MemArch(MemRAM) != ArchCPU {
		t.Error("RAM node should host CPU workers")
	}
	for mem := 1; mem < len(m.Mems); mem++ {
		if m.MemArch(MemID(mem)) != ArchGPU {
			t.Errorf("mem %d should host GPU workers", mem)
		}
	}
}

func TestUnitsOnPartition(t *testing.T) {
	m := AMDA100(Config{GPUStreams: 2})
	seen := make(map[UnitID]bool)
	total := 0
	for mem := range m.Mems {
		for _, u := range m.UnitsOn(MemID(mem)) {
			if seen[u] {
				t.Fatalf("unit %d appears on two memory nodes", u)
			}
			seen[u] = true
			if m.Units[u].Mem != MemID(mem) {
				t.Fatalf("unit %d listed on mem %d but tied to %d", u, mem, m.Units[u].Mem)
			}
			total++
		}
	}
	if total != len(m.Units) {
		t.Errorf("UnitsOn covers %d units, want %d", total, len(m.Units))
	}
}

func TestTransferTime(t *testing.T) {
	m := IntelV100(Config{})
	if got := m.TransferTime(0, 0, 1<<20); got != 0 {
		t.Errorf("same-node transfer = %v, want 0", got)
	}
	if got := m.TransferTime(0, 1, 0); got != 0 {
		t.Errorf("zero-byte transfer = %v, want 0", got)
	}
	sz := int64(12e9) // exactly one second of payload at 12 GB/s
	got := m.TransferTime(0, 1, sz)
	if got <= 1.0 || got > 1.001 {
		t.Errorf("transfer of %d bytes = %v s, want 1s + latency", sz, got)
	}
	// GPU-to-GPU is slower than host-device.
	if m.TransferTime(1, 2, sz) <= m.TransferTime(0, 1, sz) {
		t.Error("GPU-to-GPU transfer should be slower than host-to-device")
	}
}

func TestValidateRejectsBadMachines(t *testing.T) {
	cases := []struct {
		name string
		m    *Machine
		want string
	}{
		{
			name: "no archs",
			m:    &Machine{Name: "x", Mems: []MemNode{{}}, Units: []Unit{{}}},
			want: "no architectures",
		},
		{
			name: "no units",
			m: &Machine{Name: "x", Archs: []Arch{{Name: "cpu"}},
				Mems: []MemNode{{}}, LinkMatrix: [][]Link{{{}}}},
			want: "no processing units",
		},
		{
			name: "bad speed factor",
			m: &Machine{Name: "x", Archs: []Arch{{Name: "cpu"}},
				Mems:       []MemNode{{}},
				Units:      []Unit{{Arch: 0, Mem: 0, SpeedFactor: 0}},
				LinkMatrix: [][]Link{{{}}}},
			want: "speed factor",
		},
		{
			name: "arch out of range",
			m: &Machine{Name: "x", Archs: []Arch{{Name: "cpu"}},
				Mems:       []MemNode{{}},
				Units:      []Unit{{Arch: 3, Mem: 0, SpeedFactor: 1}},
				LinkMatrix: [][]Link{{{}}}},
			want: "out of range",
		},
		{
			name: "mixed arch on one mem node",
			m: &Machine{Name: "x",
				Archs: []Arch{{Name: "cpu"}, {Name: "gpu"}},
				Mems:  []MemNode{{}},
				Units: []Unit{
					{Arch: 0, Mem: 0, SpeedFactor: 1},
					{Arch: 1, Mem: 0, SpeedFactor: 1},
				},
				LinkMatrix: [][]Link{{{}}}},
			want: "different architectures",
		},
		{
			name: "empty memory node",
			m: &Machine{Name: "x", Archs: []Arch{{Name: "cpu"}},
				Mems:  []MemNode{{}, {}},
				Units: []Unit{{Arch: 0, Mem: 0, SpeedFactor: 1}},
				LinkMatrix: [][]Link{
					{{}, {BandwidthBytes: 1}},
					{{BandwidthBytes: 1}, {}},
				}},
			want: "no processing units",
		},
		{
			name: "zero bandwidth link",
			m: &Machine{Name: "x", Archs: []Arch{{Name: "cpu"}},
				Mems: []MemNode{{}, {}},
				Units: []Unit{
					{Arch: 0, Mem: 0, SpeedFactor: 1},
					{Arch: 0, Mem: 1, SpeedFactor: 1},
				},
				LinkMatrix: [][]Link{
					{{}, {BandwidthBytes: 0}},
					{{BandwidthBytes: 1}, {}},
				}},
			want: "has bandwidth",
		},
		{
			name: "nonzero self-loop link",
			m: &Machine{Name: "x", Archs: []Arch{{Name: "cpu"}},
				Mems:       []MemNode{{}},
				Units:      []Unit{{Arch: 0, Mem: 0, SpeedFactor: 1}},
				LinkMatrix: [][]Link{{{BandwidthBytes: 5}}}},
			want: "self-loop",
		},
		{
			name: "negative link latency",
			m: &Machine{Name: "x", Archs: []Arch{{Name: "cpu"}},
				Mems: []MemNode{{}, {}},
				Units: []Unit{
					{Arch: 0, Mem: 0, SpeedFactor: 1},
					{Arch: 0, Mem: 1, SpeedFactor: 1},
				},
				LinkMatrix: [][]Link{
					{{}, {BandwidthBytes: 1, LatencySec: -1}},
					{{BandwidthBytes: 1}, {}},
				}},
			want: "negative latency",
		},
		{
			name: "duplicate memory node names",
			m: &Machine{Name: "x", Archs: []Arch{{Name: "cpu"}},
				Mems: []MemNode{{Name: "ram"}, {Name: "ram"}},
				Units: []Unit{
					{Arch: 0, Mem: 0, SpeedFactor: 1},
					{Arch: 0, Mem: 1, SpeedFactor: 1},
				},
				LinkMatrix: [][]Link{
					{{}, {BandwidthBytes: 1}},
					{{BandwidthBytes: 1}, {}},
				}},
			want: "duplicate memory node name",
		},
		{
			name: "duplicate worker names",
			m: &Machine{Name: "x", Archs: []Arch{{Name: "cpu"}},
				Mems: []MemNode{{Name: "ram"}},
				Units: []Unit{
					{Name: "w", Arch: 0, Mem: 0, SpeedFactor: 1},
					{Name: "w", Arch: 0, Mem: 0, SpeedFactor: 1},
				},
				LinkMatrix: [][]Link{{{}}}},
			want: "duplicate worker name",
		},
		{
			name: "inconsistent cluster host maps",
			m: &Machine{Name: "x", Archs: []Arch{{Name: "cpu"}},
				Mems:       []MemNode{{Name: "ram"}},
				Units:      []Unit{{Name: "w", Arch: 0, Mem: 0, SpeedFactor: 1}},
				LinkMatrix: [][]Link{{{}}},
				Cluster:    &ClusterInfo{Nodes: []*Machine{nil, nil}}},
			want: "cluster",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.m.Validate()
			if err == nil {
				t.Fatal("Validate accepted invalid machine")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestCPUOnly(t *testing.T) {
	m := CPUOnly(4)
	if len(m.Units) != 4 || len(m.Mems) != 1 {
		t.Errorf("CPUOnly(4): %d units, %d mems", len(m.Units), len(m.Mems))
	}
	if m2 := CPUOnly(0); len(m2.Units) != 1 {
		t.Error("CPUOnly(0) should clamp to one worker")
	}
}

func TestString(t *testing.T) {
	s := IntelV100(Config{}).String()
	if !strings.Contains(s, "Intel-V100") || !strings.Contains(s, "cpu") || !strings.Contains(s, "gpu") {
		t.Errorf("String() = %q", s)
	}
}

func TestNUMANodePreset(t *testing.T) {
	m := NUMANode(2, 4, 0)
	if len(m.Mems) != 2 {
		t.Fatalf("mems = %d, want 2 sockets", len(m.Mems))
	}
	if got := m.NumWorkersOf(ArchCPU); got != 8 {
		t.Errorf("workers = %d, want 8", got)
	}
	for s := 0; s < 2; s++ {
		if got := len(m.UnitsOn(MemID(s))); got != 4 {
			t.Errorf("socket %d has %d units, want 4", s, got)
		}
	}
	// Cross-socket transfers cost something, same-socket nothing.
	if m.TransferTime(0, 1, 1<<20) <= 0 {
		t.Error("cross-socket transfer should take time")
	}
	if m.TransferTime(0, 0, 1<<20) != 0 {
		t.Error("same-socket transfer should be free")
	}
	// Degenerate arguments clamp.
	if m2 := NUMANode(0, 0, -1); len(m2.Units) != 1 {
		t.Errorf("clamped preset has %d units", len(m2.Units))
	}
}

func TestPowerModelPresent(t *testing.T) {
	m := IntelV100(Config{GPUStreams: 2})
	cpu := m.Archs[ArchCPU]
	gpu := m.Archs[ArchGPU]
	if cpu.BusyWatts <= cpu.IdleWatts || cpu.IdleWatts <= 0 {
		t.Errorf("cpu power model: busy %v idle %v", cpu.BusyWatts, cpu.IdleWatts)
	}
	// Stream workers split the device power.
	m1 := IntelV100(Config{GPUStreams: 1})
	if gpu.BusyWatts*2 != m1.Archs[ArchGPU].BusyWatts {
		t.Errorf("2-stream busy watts %v, want half of %v", gpu.BusyWatts, m1.Archs[ArchGPU].BusyWatts)
	}
}
