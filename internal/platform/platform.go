// Package platform describes heterogeneous computing nodes: architecture
// types, processing units, memory nodes, and the interconnect between
// memory nodes.
//
// It mirrors the notation of Section III-A of the paper: A is the set of
// architecture types, P the processing units, M the memory nodes, P_m the
// units tied to memory node m, and P_a the units of architecture a.
package platform

import (
	"fmt"
	"strings"
)

// ArchID identifies an architecture type (an element of A).
type ArchID int

// MemID identifies a memory node (an element of M).
type MemID int

// UnitID identifies a processing unit (an element of P).
type UnitID int

// NodeID identifies one node of a Cluster (see cluster.go). Single-node
// machines are node 0 everywhere.
type NodeID int

// Arch describes one architecture type of the node.
type Arch struct {
	Name string
	// PeakGFlops is the peak double-precision rate of ONE processing
	// unit of this architecture, used by application cost models.
	PeakGFlops float64
	// BusyWatts and IdleWatts are the per-unit power draws used by the
	// energy accounting (the paper's Section VII outlook: "extend this
	// to incorporate energy efficiency heuristics"). Zero means no
	// power model.
	BusyWatts float64
	IdleWatts float64
}

// MemNode is a memory node: the main RAM, a GPU-embedded memory, or disk.
type MemNode struct {
	Name string
	// CapacityBytes bounds the data that can reside on the node;
	// 0 means unbounded (main RAM in our experiments).
	CapacityBytes int64
}

// Unit is one processing unit, tied to exactly one memory node and of
// exactly one architecture type.
type Unit struct {
	Name string
	Arch ArchID
	Mem  MemID
	// SpeedFactor scales execution times on this unit relative to the
	// architecture reference (1 = reference). GPU stream workers that
	// share one device use factors > 1 to model device sharing.
	SpeedFactor float64
}

// Link models the interconnect between two memory nodes.
type Link struct {
	// BandwidthBytes is in bytes per second.
	BandwidthBytes float64
	// LatencySec is the fixed per-transfer startup cost in seconds.
	LatencySec float64
}

// Machine is a complete heterogeneous node description — or, when
// Cluster is non-nil, the flattened view of a multi-node cluster whose
// memory nodes and processing units are instance-addressable through
// the cluster topology (see NewCluster).
type Machine struct {
	Name  string
	Archs []Arch
	Mems  []MemNode
	Units []Unit
	// LinkMatrix[i][j] describes transfers from memory node i to j.
	// The diagonal must be the zero Link (no transfer needed).
	LinkMatrix [][]Link
	// Cluster, when non-nil, records the multi-node topology this
	// machine was flattened from. Nil means a plain single node.
	Cluster *ClusterInfo

	unitsByMem  [][]UnitID
	unitsByArch [][]UnitID
	memArch     []ArchID // dominant architecture per memory node
}

// Validate checks structural consistency and precomputes the index maps.
// It must be called once after constructing a Machine by hand; the preset
// constructors call it internally.
func (m *Machine) Validate() error {
	if len(m.Archs) == 0 {
		return fmt.Errorf("platform %q: no architectures", m.Name)
	}
	if len(m.Mems) == 0 {
		return fmt.Errorf("platform %q: no memory nodes", m.Name)
	}
	if len(m.Units) == 0 {
		return fmt.Errorf("platform %q: no processing units", m.Name)
	}
	if len(m.LinkMatrix) != len(m.Mems) {
		return fmt.Errorf("platform %q: link matrix has %d rows, want %d", m.Name, len(m.LinkMatrix), len(m.Mems))
	}
	for i, row := range m.LinkMatrix {
		if len(row) != len(m.Mems) {
			return fmt.Errorf("platform %q: link matrix row %d has %d cols, want %d", m.Name, i, len(row), len(m.Mems))
		}
		for j, l := range row {
			if i == j {
				if l.BandwidthBytes != 0 || l.LatencySec != 0 {
					return fmt.Errorf("platform %q: self-loop link %d->%d must be zero (got bandwidth %v, latency %v)",
						m.Name, i, j, l.BandwidthBytes, l.LatencySec)
				}
				continue
			}
			if l.BandwidthBytes <= 0 {
				return fmt.Errorf("platform %q: link %d->%d has bandwidth %v", m.Name, i, j, l.BandwidthBytes)
			}
			if l.LatencySec < 0 {
				return fmt.Errorf("platform %q: link %d->%d has negative latency %v", m.Name, i, j, l.LatencySec)
			}
		}
	}
	// Names are the user-facing identity of memory nodes and workers in
	// traces and reports; a duplicate silently merges two resources in
	// every rendered view. Unnamed (empty) entries are tolerated for
	// hand-built test machines.
	memNames := make(map[string]int, len(m.Mems))
	for i, mem := range m.Mems {
		if mem.Name == "" {
			continue
		}
		if prev, dup := memNames[mem.Name]; dup {
			return fmt.Errorf("platform %q: duplicate memory node name %q (mems %d and %d)", m.Name, mem.Name, prev, i)
		}
		memNames[mem.Name] = i
	}
	unitNames := make(map[string]int, len(m.Units))
	for i, u := range m.Units {
		if u.Name == "" {
			continue
		}
		if prev, dup := unitNames[u.Name]; dup {
			return fmt.Errorf("platform %q: duplicate worker name %q (units %d and %d)", m.Name, u.Name, prev, i)
		}
		unitNames[u.Name] = i
	}
	if c := m.Cluster; c != nil {
		if len(c.MemHost) != len(m.Mems) || len(c.UnitHost) != len(m.Units) {
			return fmt.Errorf("platform %q: cluster host maps cover %d mems / %d units, want %d / %d",
				m.Name, len(c.MemHost), len(c.UnitHost), len(m.Mems), len(m.Units))
		}
		if len(c.MemBase) != len(c.Nodes) || len(c.UnitBase) != len(c.Nodes) {
			return fmt.Errorf("platform %q: cluster base maps cover %d nodes, want %d", m.Name, len(c.MemBase), len(c.Nodes))
		}
	}
	m.unitsByMem = make([][]UnitID, len(m.Mems))
	m.unitsByArch = make([][]UnitID, len(m.Archs))
	m.memArch = make([]ArchID, len(m.Mems))
	for i := range m.memArch {
		m.memArch[i] = -1
	}
	for u, unit := range m.Units {
		if unit.Arch < 0 || int(unit.Arch) >= len(m.Archs) {
			return fmt.Errorf("platform %q: unit %d has arch %d out of range", m.Name, u, unit.Arch)
		}
		if unit.Mem < 0 || int(unit.Mem) >= len(m.Mems) {
			return fmt.Errorf("platform %q: unit %d has mem %d out of range", m.Name, u, unit.Mem)
		}
		if unit.SpeedFactor <= 0 {
			return fmt.Errorf("platform %q: unit %d has speed factor %v", m.Name, u, unit.SpeedFactor)
		}
		m.unitsByMem[unit.Mem] = append(m.unitsByMem[unit.Mem], UnitID(u))
		m.unitsByArch[unit.Arch] = append(m.unitsByArch[unit.Arch], UnitID(u))
		if m.memArch[unit.Mem] == -1 {
			m.memArch[unit.Mem] = unit.Arch
		} else if m.memArch[unit.Mem] != unit.Arch {
			return fmt.Errorf("platform %q: memory node %d hosts units of different architectures", m.Name, unit.Mem)
		}
	}
	// |M| <= |P| is expected by the paper's model; every memory node
	// must have at least one worker except pure storage nodes, which we
	// do not model here.
	for mem, units := range m.unitsByMem {
		if len(units) == 0 {
			return fmt.Errorf("platform %q: memory node %d has no processing units", m.Name, mem)
		}
	}
	return nil
}

// UnitsOn returns the processing units tied to memory node mem (P_m).
func (m *Machine) UnitsOn(mem MemID) []UnitID { return m.unitsByMem[mem] }

// UnitsOf returns the processing units of architecture a (P_a).
func (m *Machine) UnitsOf(a ArchID) []UnitID { return m.unitsByArch[a] }

// MemArch returns the architecture of the units tied to memory node mem.
// In this model a memory node hosts units of a single architecture, as in
// the paper's PUSH algorithm (get_memory_node_arch_type).
func (m *Machine) MemArch(mem MemID) ArchID { return m.memArch[mem] }

// NumWorkersOf returns |P_a|.
func (m *Machine) NumWorkersOf(a ArchID) int { return len(m.unitsByArch[a]) }

// TransferTime returns the time to move size bytes from memory node src
// to dst, excluding queueing behind other transfers on the same link.
func (m *Machine) TransferTime(src, dst MemID, size int64) float64 {
	if src == dst || size == 0 {
		return 0
	}
	l := m.LinkMatrix[src][dst]
	return l.LatencySec + float64(size)/l.BandwidthBytes
}

// ArchName returns the name of architecture a.
func (m *Machine) ArchName(a ArchID) string { return m.Archs[a].Name }

// String summarizes the machine.
func (m *Machine) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", m.Name)
	for a := range m.Archs {
		fmt.Fprintf(&b, " %d×%s", len(m.unitsByArch[a]), m.Archs[a].Name)
	}
	return b.String()
}

const (
	// GiB is one gibibyte in bytes.
	GiB = int64(1) << 30
	// MiB is one mebibyte in bytes.
	MiB = int64(1) << 20
)

// ArchCPU and ArchGPU are the architecture indices used by all preset
// machines. Application cost models rely on this convention.
const (
	ArchCPU ArchID = 0
	ArchGPU ArchID = 1
)

// MemRAM is the memory node index of the main RAM in all presets.
const MemRAM MemID = 0

// Config tweaks preset construction.
type Config struct {
	// GPUStreams is the number of concurrent streams (workers) per GPU
	// device. StarPU exposes CUDA streams as extra workers sharing the
	// device; k streams split the device throughput k ways while letting
	// transfers overlap compute. Default 1.
	GPUStreams int
	// CPUCoresReserved is the number of CPU cores dedicated to driving
	// the GPUs (StarPU dedicates one core per CUDA worker). They are
	// removed from the CPU worker pool. Default: one per GPU device.
	CPUCoresReserved int
}

func (c Config) streams() int {
	if c.GPUStreams <= 0 {
		return 1
	}
	return c.GPUStreams
}

// NewHeteroNode builds a machine with nCPU CPU cores on the RAM node and
// nGPU GPU devices, each with its own memory node. cpuGF and gpuGF are
// per-unit peak GFlop/s; gpuMem is the per-device memory capacity; pcieBW
// is the host<->device bandwidth in bytes/s.
func NewHeteroNode(name string, nCPU int, cpuGF float64, nGPU int, gpuGF float64, gpuMem int64, pcieBW float64, cfg Config) (*Machine, error) {
	streams := cfg.streams()
	reserved := cfg.CPUCoresReserved
	if reserved == 0 {
		reserved = nGPU
	}
	workersCPU := nCPU - reserved
	if workersCPU < 1 {
		return nil, fmt.Errorf("platform %q: %d CPU cores minus %d reserved leaves no CPU workers", name, nCPU, reserved)
	}
	m := &Machine{
		Name: name,
		Archs: []Arch{
			// Power: per-core share of the CPU package; per-stream-worker
			// share of the full GPU device (~300 W class accelerators).
			{Name: "cpu", PeakGFlops: cpuGF, BusyWatts: 8, IdleWatts: 1.5},
			{Name: "gpu", PeakGFlops: gpuGF,
				BusyWatts: 300 / float64(streams), IdleWatts: 45 / float64(streams)},
		},
		Mems: []MemNode{{Name: "ram", CapacityBytes: 0}},
	}
	for c := 0; c < workersCPU; c++ {
		m.Units = append(m.Units, Unit{
			Name:        fmt.Sprintf("cpu%d", c),
			Arch:        ArchCPU,
			Mem:         MemRAM,
			SpeedFactor: 1,
		})
	}
	for g := 0; g < nGPU; g++ {
		mem := MemID(len(m.Mems))
		m.Mems = append(m.Mems, MemNode{
			Name:          fmt.Sprintf("gpu%d-mem", g),
			CapacityBytes: gpuMem,
		})
		for s := 0; s < streams; s++ {
			m.Units = append(m.Units, Unit{
				Name: fmt.Sprintf("gpu%d.s%d", g, s),
				Arch: ArchGPU,
				Mem:  mem,
				// Streams share the device: each runs 1/streams
				// of the device throughput.
				SpeedFactor: float64(streams),
			})
		}
	}
	n := len(m.Mems)
	m.LinkMatrix = make([][]Link, n)
	for i := range m.LinkMatrix {
		m.LinkMatrix[i] = make([]Link, n)
		for j := range m.LinkMatrix[i] {
			if i == j {
				continue
			}
			bw := pcieBW
			if i != int(MemRAM) && j != int(MemRAM) {
				// GPU-to-GPU goes through the host (no NVLink
				// modeled): half bandwidth, double latency.
				bw = pcieBW / 2
			}
			m.LinkMatrix[i][j] = Link{BandwidthBytes: bw, LatencySec: 3e-6}
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// IntelV100 models the paper's Intel-V100 platform: 2 × Xeon Gold 6142
// (16 cores each, 2.6 GHz) and 2 × NVIDIA V100 16 GB. Per-core DGEMM
// throughput is ≈35 GFlop/s (AVX-512), V100 DGEMM peak ≈7000 GFlop/s,
// PCIe 3 x16 ≈12 GB/s effective.
func IntelV100(cfg Config) *Machine {
	m, err := NewHeteroNode("Intel-V100", 32, 35, 2, 6200, 16*GiB, 12e9, cfg)
	if err != nil {
		panic(err) // preset parameters are static and valid
	}
	return m
}

// AMDA100 models the paper's AMD-A100 platform: 2 × EPYC 7513 (32 cores
// each, 2.6 GHz) and 2 × NVIDIA A100 40 GB. The paper notes each CPU core
// is about 2× slower than the Intel-V100 cores while the GPUs are much
// faster: per-core ≈17 GFlop/s (AVX2), A100 DGEMM ≈15000 GFlop/s, PCIe 4
// x16 ≈24 GB/s effective.
func AMDA100(cfg Config) *Machine {
	m, err := NewHeteroNode("AMD-A100", 64, 17, 2, 15000, 40*GiB, 24e9, cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// SmallSim is the 1 GPU + 6 CPUs configuration used in the paper's Fig. 4
// simulation study of the eviction mechanism. The GPU is calibrated like
// the StarPU-over-SimGrid platform models of that study (an older-
// generation device, far below a V100), which keeps the single GPU
// saturated by update kernels except at the DAG tail — the regime the
// eviction mechanism targets.
func SmallSim(cfg Config) *Machine {
	m, err := NewHeteroNode("SmallSim", 7, 35, 1, 900, 4*GiB, 8e9, cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// NUMANode builds a CPU-only machine with `sockets` RAM memory nodes of
// `coresPer` cores each, connected by an inter-socket link. The paper's
// model treats the main RAM as one memory node "despite the NUMA
// effects but otherwise the approach remains valid" (Section III-A);
// this preset exists to validate exactly that claim: per-socket heaps,
// task duplication and eviction across NUMA domains.
func NUMANode(sockets, coresPer int, interBW float64) *Machine {
	if sockets < 1 {
		sockets = 1
	}
	if coresPer < 1 {
		coresPer = 1
	}
	if interBW <= 0 {
		interBW = 20e9 // QPI/UPI-class cross-socket bandwidth
	}
	m := &Machine{
		Name:  fmt.Sprintf("numa-%dx%d", sockets, coresPer),
		Archs: []Arch{{Name: "cpu", PeakGFlops: 35, BusyWatts: 8, IdleWatts: 1.5}},
	}
	for s := 0; s < sockets; s++ {
		m.Mems = append(m.Mems, MemNode{Name: fmt.Sprintf("numa%d", s)})
		for c := 0; c < coresPer; c++ {
			m.Units = append(m.Units, Unit{
				Name:        fmt.Sprintf("s%dc%d", s, c),
				Arch:        ArchCPU,
				Mem:         MemID(s),
				SpeedFactor: 1,
			})
		}
	}
	m.LinkMatrix = make([][]Link, sockets)
	for i := range m.LinkMatrix {
		m.LinkMatrix[i] = make([]Link, sockets)
		for j := range m.LinkMatrix[i] {
			if i != j {
				m.LinkMatrix[i][j] = Link{BandwidthBytes: interBW, LatencySec: 5e-7}
			}
		}
	}
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return m
}

// CPUOnly builds a homogeneous machine with n CPU cores, used by the
// threaded engine examples and tests.
func CPUOnly(n int) *Machine {
	if n < 1 {
		n = 1
	}
	m := &Machine{
		Name:  fmt.Sprintf("cpu-only-%d", n),
		Archs: []Arch{{Name: "cpu", PeakGFlops: 35}},
		Mems:  []MemNode{{Name: "ram"}},
	}
	for c := 0; c < n; c++ {
		m.Units = append(m.Units, Unit{
			Name:        fmt.Sprintf("cpu%d", c),
			Arch:        ArchCPU,
			Mem:         MemRAM,
			SpeedFactor: 1,
		})
	}
	m.LinkMatrix = [][]Link{{{}}}
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return m
}
