package platform

import (
	"strings"
	"testing"
)

func testNode(t *testing.T, name string) *Machine {
	t.Helper()
	m, err := NewHeteroNode(name, 4, 35, 1, 900, 2*GiB, 10e9, Config{})
	if err != nil {
		t.Fatalf("NewHeteroNode(%s): %v", name, err)
	}
	return m
}

func fullInter(n int, bw, lat float64) [][]Link {
	inter := make([][]Link, n)
	for i := range inter {
		inter[i] = make([]Link, n)
		for j := range inter[i] {
			if i != j {
				inter[i][j] = Link{BandwidthBytes: bw, LatencySec: lat}
			}
		}
	}
	return inter
}

func TestNewClusterRejectsBadInput(t *testing.T) {
	good := func() []*Machine {
		return []*Machine{testNode(t, "a"), testNode(t, "b")}
	}
	cases := []struct {
		name  string
		nodes func() []*Machine
		inter func() [][]Link
		want  string
	}{
		{
			name:  "empty cluster",
			nodes: func() []*Machine { return nil },
			inter: func() [][]Link { return nil },
			want:  "no nodes",
		},
		{
			name:  "nil node",
			nodes: func() []*Machine { return []*Machine{testNode(t, "a"), nil} },
			inter: func() [][]Link { return fullInter(2, 1e9, 0) },
			want:  "is nil",
		},
		{
			name:  "duplicate node names",
			nodes: func() []*Machine { return []*Machine{testNode(t, "a"), testNode(t, "a")} },
			inter: func() [][]Link { return fullInter(2, 1e9, 0) },
			want:  "duplicate node name",
		},
		{
			name: "nested cluster",
			nodes: func() []*Machine {
				inner, err := NewCluster("inner", []*Machine{testNode(t, "a")}, fullInter(1, 0, 0))
				if err != nil {
					t.Fatalf("inner cluster: %v", err)
				}
				return []*Machine{inner, testNode(t, "b")}
			},
			inter: func() [][]Link { return fullInter(2, 1e9, 0) },
			want:  "itself a cluster",
		},
		{
			name:  "wrong interconnect shape",
			nodes: good,
			inter: func() [][]Link { return fullInter(3, 1e9, 0) },
			want:  "interconnect has",
		},
		{
			name:  "ragged interconnect row",
			nodes: good,
			inter: func() [][]Link { return [][]Link{fullInter(2, 1e9, 0)[0], nil} },
			want:  "row 1",
		},
		{
			name:  "zero-bandwidth interconnect",
			nodes: good,
			inter: func() [][]Link { return fullInter(2, 0, 0) },
			want:  "has bandwidth",
		},
		{
			name:  "negative interconnect latency",
			nodes: good,
			inter: func() [][]Link { return fullInter(2, 1e9, -1) },
			want:  "negative latency",
		},
		{
			name:  "nonzero self-loop interconnect",
			nodes: good,
			inter: func() [][]Link {
				inter := fullInter(2, 1e9, 0)
				inter[1][1] = Link{BandwidthBytes: 1}
				return inter
			},
			want: "self-loop",
		},
		{
			name: "mismatched arch catalogs",
			nodes: func() []*Machine {
				a := testNode(t, "a")
				b := testNode(t, "b")
				b.Archs[1].PeakGFlops *= 2
				return []*Machine{a, b}
			},
			inter: func() [][]Link { return fullInter(2, 1e9, 0) },
			want:  "architecture catalog",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewCluster("c", tc.nodes(), tc.inter())
			if err == nil {
				t.Fatal("NewCluster accepted invalid input")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestClusterN1Passthrough pins the N=1 equivalence at the platform
// layer: a 1-node cluster is the node itself (same name, memories,
// units, links), only annotated with topology maps. The trace-level
// byte-identity goldens build on exactly this.
func TestClusterN1Passthrough(t *testing.T) {
	node := testNode(t, "solo")
	c, err := NewCluster("wrapped", []*Machine{node}, fullInter(1, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != node.Name {
		t.Errorf("1-node cluster renamed the machine: %q, want %q", c.Name, node.Name)
	}
	if len(c.Mems) != len(node.Mems) || len(c.Units) != len(node.Units) {
		t.Fatalf("1-node cluster reshaped the machine: %d mems / %d units, want %d / %d",
			len(c.Mems), len(c.Units), len(node.Mems), len(node.Units))
	}
	for i := range c.Mems {
		if c.Mems[i] != node.Mems[i] {
			t.Errorf("mem %d changed: %+v != %+v", i, c.Mems[i], node.Mems[i])
		}
	}
	for i := range c.Units {
		if c.Units[i] != node.Units[i] {
			t.Errorf("unit %d changed: %+v != %+v", i, c.Units[i], node.Units[i])
		}
	}
	if c.NumNodes() != 1 || c.Cluster == nil {
		t.Error("1-node cluster should still carry its topology")
	}
	if node.Cluster != nil {
		t.Error("NewCluster mutated the node machine")
	}
	if n, lm := c.LocalMem(1); n != 0 || lm != 1 {
		t.Errorf("LocalMem(1) = (%d, %d), want (0, 1)", n, lm)
	}
}

func TestClusterFlattening(t *testing.T) {
	nodes := []*Machine{testNode(t, "n0"), testNode(t, "n1"), testNode(t, "n2")}
	perMems, perUnits := len(nodes[0].Mems), len(nodes[0].Units)
	c, err := NewCluster("c3", nodes, fullInter(3, 1e9, 1e-5))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.NumNodes(); got != 3 {
		t.Fatalf("NumNodes = %d, want 3", got)
	}
	if len(c.Mems) != 3*perMems || len(c.Units) != 3*perUnits {
		t.Fatalf("flattened to %d mems / %d units, want %d / %d",
			len(c.Mems), len(c.Units), 3*perMems, 3*perUnits)
	}
	for u := range c.Units {
		n := c.NodeOfUnit(UnitID(u))
		if want := NodeID(u / perUnits); n != want {
			t.Errorf("unit %d hosted on node %d, want %d", u, n, want)
		}
		if mn := c.NodeOfMem(c.Units[u].Mem); mn != n {
			t.Errorf("unit %d on node %d is tied to mem of node %d", u, n, mn)
		}
		if !strings.HasPrefix(c.Units[u].Name, nodes[n].Name+"/") {
			t.Errorf("unit %d name %q lacks the %q node prefix", u, c.Units[u].Name, nodes[n].Name)
		}
	}
	// Round-trip of the global/local translation.
	for u := range c.Units {
		n, lu := c.LocalUnit(UnitID(u))
		if back := c.GlobalUnit(n, lu); back != UnitID(u) {
			t.Errorf("unit %d round-trips to %d via node %d local %d", u, back, n, lu)
		}
	}
	for m := range c.Mems {
		n, lm := c.LocalMem(MemID(m))
		if back := c.GlobalMem(n, lm); back != MemID(m) {
			t.Errorf("mem %d round-trips to %d via node %d local %d", m, back, n, lm)
		}
	}
	// Intra-node links are the node's own; RAM-to-RAM across nodes is
	// exactly the interconnect.
	if c.LinkMatrix[0][1] != nodes[0].LinkMatrix[0][1] {
		t.Error("intra-node link was not preserved")
	}
	ram1 := c.GlobalMem(1, 0)
	if got := c.LinkMatrix[0][ram1]; got != (Link{BandwidthBytes: 1e9, LatencySec: 1e-5}) {
		t.Errorf("RAM->RAM inter-node link = %+v", got)
	}
	// GPU mem on node 0 to GPU mem on node 1 routes through both
	// gateways: latencies add, the slowest leg bounds bandwidth.
	gpu0, gpu1 := MemID(1), c.GlobalMem(1, 1)
	l := c.LinkMatrix[gpu0][gpu1]
	wantLat := nodes[0].LinkMatrix[1][0].LatencySec + 1e-5 + nodes[1].LinkMatrix[0][1].LatencySec
	if diff := l.LatencySec - wantLat; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("composite latency %v, want %v", l.LatencySec, wantLat)
	}
	if l.BandwidthBytes != 1e9 {
		t.Errorf("composite bandwidth %v, want the 1e9 interconnect bottleneck", l.BandwidthBytes)
	}
	if ct := c.TransferTime(gpu0, gpu1, 1<<20); ct <= c.TransferTime(gpu0, MemRAM, 1<<20) {
		t.Errorf("cross-node transfer (%v) should cost more than the local leg (%v)",
			ct, c.TransferTime(gpu0, MemRAM, 1<<20))
	}
}

func TestUniformCluster(t *testing.T) {
	c, err := UniformCluster("u4", 4, func(i int) (*Machine, error) {
		return NewHeteroNode(nodeName(i), 3, 35, 1, 900, GiB, 10e9, Config{})
	}, 2e9, 5e-6)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d, want 4", c.NumNodes())
	}
	if _, err := UniformCluster("u0", 0, nil, 1, 0); err == nil {
		t.Error("UniformCluster accepted 0 nodes")
	}
}

func nodeName(i int) string { return "node" + string(rune('0'+i)) }
