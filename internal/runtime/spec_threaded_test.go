package runtime

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"multiprio/internal/fault"
	"multiprio/internal/platform"
	"multiprio/internal/spec"
)

// TestThreadedSpeculationReplicaWins wedges worker 0 behind a 12x
// slowdown window the model knows nothing about: kernels landing there
// straggle, the monitor must replicate them, and the replicas must win.
func TestThreadedSpeculationReplicaWins(t *testing.T) {
	d := 2 * time.Millisecond
	g := faultTestGraph(24, d)
	plan := &fault.Plan{
		Events: []fault.Event{
			{Kind: fault.SlowWorker, Worker: 0, At: 0, Until: 10, Factor: 12},
		},
		Speculation: spec.Policy{Enabled: true, CheckEvery: 5e-4},
	}
	eng, err := NewThreadedEngine(platform.CPUOnly(4), &fifoSched{}, WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spec.Flagged == 0 || res.Spec.Launched == 0 {
		t.Fatalf("no straggler flagged under a 12x slowdown: %+v", res.Spec)
	}
	if res.Spec.ReplicaWins == 0 {
		t.Fatalf("no replica win under a 12x slowdown: %+v", res.Spec)
	}
	if got := res.Trace.CancelledCount(); got == 0 || got > res.Spec.Cancelled {
		t.Errorf("trace has %d cancelled spans, stats count %d cancelled attempts",
			got, res.Spec.Cancelled)
	}
	// Exactly-once-effective: every task has exactly one successful
	// span, matching its committed execution record, and every
	// cancelled attempt ends at or after the effective completion
	// (first-success-wins; the loser's completion was discarded later).
	effective := map[int64]*Task{}
	for _, task := range g.Tasks {
		effective[task.ID] = task
	}
	okSpans := map[int64]int{}
	for _, s := range res.Trace.Spans {
		if s.Cancelled {
			task := effective[s.TaskID]
			if s.End < task.EndAt-1e-9 {
				t.Errorf("cancelled attempt of task %d ends at %g, before its effective end %g",
					s.TaskID, s.End, task.EndAt)
			}
			continue
		}
		if s.Failed {
			t.Errorf("failed span of task %d in a kill-free run", s.TaskID)
			continue
		}
		okSpans[s.TaskID]++
		task := effective[s.TaskID]
		if task.RanOn != s.Worker || task.StartAt != s.Start || task.EndAt != s.End {
			t.Errorf("task %d record (w%d [%g,%g]) disagrees with effective span (w%d [%g,%g])",
				s.TaskID, task.RanOn, task.StartAt, task.EndAt, s.Worker, s.Start, s.End)
		}
	}
	for _, task := range g.Tasks {
		if okSpans[task.ID] != 1 {
			t.Errorf("task %d has %d effective spans, want exactly 1", task.ID, okSpans[task.ID])
		}
	}
}

// TestThreadedSpeculationIdleWithoutStragglers: speculation on, nothing
// slow — the monitor must flag nothing and the run must look exactly
// like a plain one.
func TestThreadedSpeculationIdleWithoutStragglers(t *testing.T) {
	g := faultTestGraph(16, time.Millisecond)
	plan := &fault.Plan{Speculation: spec.Policy{Enabled: true, CheckEvery: 5e-4}}
	eng, err := NewThreadedEngine(platform.CPUOnly(4), &fifoSched{}, WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spec.Flagged != 0 || res.Spec.Launched != 0 || res.Spec.Cancelled != 0 {
		t.Fatalf("speculation activity without stragglers: %+v", res.Spec)
	}
	if n := res.Trace.CancelledCount(); n != 0 {
		t.Fatalf("%d cancelled spans without stragglers", n)
	}
}

// TestThreadedSpeculationComposesWithKills: a kill landing on a
// straggling attempt must still resolve to exactly-once-effective.
func TestThreadedSpeculationComposesWithKills(t *testing.T) {
	d := 2 * time.Millisecond
	g := faultTestGraph(24, d)
	plan := &fault.Plan{
		Events: []fault.Event{
			{Kind: fault.SlowWorker, Worker: 0, At: 0, Until: 10, Factor: 12},
			{Kind: fault.KillWorker, Worker: 1, At: 0.004},
		},
		Backoff:     1e-4,
		Speculation: spec.Policy{Enabled: true, CheckEvery: 5e-4},
	}
	eng, err := NewThreadedEngine(platform.CPUOnly(4), &fifoSched{}, WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Kills != 1 {
		t.Errorf("kills = %d, want 1", res.Faults.Kills)
	}
	okSpans := map[int64]int{}
	for _, s := range res.Trace.Spans {
		if !s.Failed && !s.Cancelled {
			okSpans[s.TaskID]++
		}
	}
	for _, task := range g.Tasks {
		if okSpans[task.ID] != 1 {
			t.Errorf("task %d has %d effective spans, want exactly 1", task.ID, okSpans[task.ID])
		}
	}
}

// TestThreadedWatchdogDump wedges one kernel on a channel no one closes
// until the test ends: the watchdog must abort the run with ErrWatchdog
// and dump the wedged worker's state.
func TestThreadedWatchdogDump(t *testing.T) {
	unwedge := make(chan struct{})
	defer close(unwedge) // let the leaked kernel goroutine exit
	g := NewGraph()
	wedged := cpuTask("wedged", 0.001)
	wedged.Run = func(w WorkerInfo) { <-unwedge }
	g.Submit(wedged)
	for i := 0; i < 4; i++ {
		task := cpuTask("work", 0.001)
		task.Run = func(w WorkerInfo) { time.Sleep(time.Millisecond) }
		g.Submit(task)
	}
	var buf bytes.Buffer
	eng, err := NewThreadedEngine(platform.CPUOnly(2), &fifoSched{},
		WithWatchdog(30*time.Millisecond), WithWatchdogOutput(&buf))
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Run(g)
	if !errors.Is(err, ErrWatchdog) {
		t.Fatalf("err = %v, want ErrWatchdog", err)
	}
	dump := buf.String()
	for _, want := range []string{"runtime watchdog", "tasks-left=", "running task", "decision tail"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}

// TestThreadedWatchdogQuietOnHealthyRuns: a generous deadline neither
// fires nor disturbs the run.
func TestThreadedWatchdogQuietOnHealthyRuns(t *testing.T) {
	g := faultTestGraph(8, time.Millisecond)
	var buf bytes.Buffer
	eng, err := NewThreadedEngine(platform.CPUOnly(2), &fifoSched{},
		WithWatchdog(time.Minute), WithWatchdogOutput(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(g); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("watchdog wrote a dump on a healthy run:\n%s", buf.String())
	}
}

// TestThreadedRetryDelaySchedule: the threaded engine delays retries by
// the plan's capped exponential schedule — with jitter disabled and a
// visible base, the sole retry of a killed task must not come back
// before the first-attempt delay.
func TestThreadedRetryDelaySchedule(t *testing.T) {
	d := 4 * time.Millisecond
	g := faultTestGraph(2, d)
	plan := &fault.Plan{
		Events:  []fault.Event{{Kind: fault.KillWorker, Worker: 0, At: 0.002}},
		Backoff: 0.02, Jitter: -1,
	}
	eng, err := NewThreadedEngine(platform.CPUOnly(2), &fifoSched{}, WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Retries == 0 {
		t.Skip("kill landed after both kernels; nothing retried")
	}
	// The retried task's effective span starts only after kill + delay.
	var failedAt float64
	for _, s := range res.Trace.Spans {
		if s.Failed && s.End > failedAt {
			failedAt = s.End
		}
	}
	for _, s := range res.Trace.Spans {
		if s.Failed {
			continue
		}
		var wasKilled bool
		for _, f := range res.Trace.Spans {
			if f.Failed && f.TaskID == s.TaskID {
				wasKilled = true
			}
		}
		if wasKilled && s.Start < failedAt+plan.RetryDelay(s.TaskID, 1)-2e-3 {
			t.Errorf("retry of task %d started at %g, before discard %g + delay %g",
				s.TaskID, s.Start, failedAt, plan.RetryDelay(s.TaskID, 1))
		}
	}
}
