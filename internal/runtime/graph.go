package runtime

import (
	"fmt"

	"multiprio/internal/arena"
	"multiprio/internal/platform"
)

// Graph holds an application DAG built through sequential task
// submission. It is not safe for concurrent submission (the STF model is
// sequential by construction); execution engines read it concurrently
// only after submission is complete.
type Graph struct {
	Tasks   []*Task
	Handles []*DataHandle

	// preds records direct predecessors, indexed by task ID (IDs are
	// dense submission-order integers, so a slice replaces the former
	// map: Submit and NumPredsOn sit on the STF hot path). Kept out of
	// Task to avoid growing the hot struct (successors are needed on the
	// NOD hot path, predecessors only for restricted counts and critical
	// paths).
	preds [][]*Task

	// depScratch is reused across Submit calls for the per-task
	// dependency list; depEpoch stamps Task.depMark so membership is an
	// O(1) check instead of a re-scan per handle touch.
	depScratch []*Task
	depEpoch   int64

	// taskArena and handleArena back the objects created through
	// SubmitBatch and NewDataOn, so building a million-task graph costs
	// a handful of chunk allocations instead of one per object.
	taskArena   arena.Arena[Task]
	handleArena arena.Arena[DataHandle]

	nextTask   int64
	nextHandle int64
}

// NewGraph returns an empty application graph.
func NewGraph() *Graph {
	return &Graph{}
}

// NewGraphWithCapacity returns an empty graph presized for the given
// numbers of tasks and handles: the Tasks/Handles/preds tables and the
// backing arenas are reserved up front, so batch submission of exactly
// that volume does not reallocate. Exceeding the capacities is safe —
// the graph grows as usual past them.
func NewGraphWithCapacity(tasks, handles int) *Graph {
	g := &Graph{}
	if tasks > 0 {
		g.Tasks = make([]*Task, 0, tasks)
		g.preds = make([][]*Task, 0, tasks)
		g.taskArena.Reserve(tasks)
	}
	if handles > 0 {
		g.Handles = make([]*DataHandle, 0, handles)
		g.handleArena.Reserve(handles)
	}
	return g
}

// NewData registers a data handle of the given size residing on the main
// RAM node.
func (g *Graph) NewData(name string, bytes int64) *DataHandle {
	return g.NewDataOn(name, bytes, platform.MemRAM)
}

// NewDataOn registers a data handle residing initially on mem.
func (g *Graph) NewDataOn(name string, bytes int64, mem platform.MemID) *DataHandle {
	h := g.handleArena.Get()
	h.ID = g.nextHandle
	h.Name = name
	h.Bytes = bytes
	h.Home = mem
	g.nextHandle++
	g.Handles = append(g.Handles, h)
	return h
}

// TaskSpec describes one task for batch submission: the
// application-visible fields of Task, without the runtime-owned DAG and
// execution state. SubmitBatch materializes each spec into an
// arena-backed Task.
type TaskSpec struct {
	Kind      string
	Footprint uint64
	Flops     float64
	Priority  int
	Accesses  []Access
	Cost      []float64
	Run       func(w WorkerInfo)
	Tag       any
}

// SubmitBatch submits the specs in order, exactly as a sequence of
// Submit calls would, and returns the created tasks (a sub-slice of
// g.Tasks; callers must not append to it). The tasks themselves come
// from the graph's arena, so a batch costs O(1) allocations for the
// task objects instead of one per task. Dependency inference, task IDs,
// and edge insertion order are identical to sequential submission —
// batch-built graphs schedule byte-identically.
func (g *Graph) SubmitBatch(specs []TaskSpec) []*Task {
	start := len(g.Tasks)
	if len(specs) == 0 {
		return nil
	}
	block := g.taskArena.GetN(len(specs))
	for i := range specs {
		s := &specs[i]
		t := &block[i]
		t.Kind = s.Kind
		t.Footprint = s.Footprint
		t.Flops = s.Flops
		t.Priority = s.Priority
		t.Accesses = s.Accesses
		t.Cost = s.Cost
		t.Run = s.Run
		t.Tag = s.Tag
		g.Submit(t)
	}
	return g.Tasks[start:len(g.Tasks):len(g.Tasks)]
}

// Submit adds the task to the graph, inferring dependencies from the
// access modes against previously submitted tasks (the STF rule: a read
// depends on the last writer; a write depends on the last writer and all
// readers since). Task IDs are assigned by submission order.
func (g *Graph) Submit(t *Task) *Task {
	t.ID = g.nextTask
	g.nextTask++
	g.preds = append(g.preds, nil)
	// deps keeps first-encounter order (a reused slice): edges must be
	// inserted in a deterministic order, because Succs/Preds order is
	// visible to the engines (successor release order) and to schedulers
	// (tie-breaks over equal timestamps). Iterating a map here made
	// identically-built graphs schedule differently run to run.
	// Deduplication is an epoch stamp on the candidate task — first
	// encounter wins, repeats are O(1) — so wide-fanout tasks (a reducer
	// reading thousands of handles) infer in O(deps), not O(deps²).
	g.depEpoch++
	epoch := g.depEpoch
	t.depMark = epoch // a task never depends on itself
	deps := g.depScratch[:0]
	dep := func(d *Task) {
		if d == nil || d.depMark == epoch {
			return
		}
		d.depMark = epoch
		deps = append(deps, d)
	}
	for _, a := range t.Accesses {
		h := a.Handle
		if h == nil {
			panic(fmt.Sprintf("runtime: task %q submitted with nil handle", t.Kind))
		}
		switch a.Mode {
		case R:
			if len(h.commuters) > 0 {
				// A read closes the open commute group: it waits for
				// every commuting updater, and later accesses order
				// against the reader (transitively against the group).
				for _, c := range h.commuters {
					dep(c)
				}
				h.commuters = h.commuters[:0]
				h.lastWriter = nil
				h.readers = h.readers[:0]
			} else {
				dep(h.lastWriter)
			}
			h.readers = append(h.readers, t)
		case Commute:
			// Commutative update: ordered after the last exclusive
			// writer and any readers since, but NOT after fellow
			// members of the open group.
			dep(h.lastWriter)
			for _, r := range h.readers {
				dep(r)
			}
			h.commuters = append(h.commuters, t)
		case W, RW:
			dep(h.lastWriter)
			for _, r := range h.readers {
				dep(r)
			}
			for _, c := range h.commuters {
				dep(c)
			}
			h.readers = h.readers[:0]
			h.commuters = h.commuters[:0]
			h.lastWriter = t
		default:
			panic(fmt.Sprintf("runtime: task %q has invalid access mode %d", t.Kind, a.Mode))
		}
	}
	for _, d := range deps {
		g.addEdge(d, t)
	}
	g.depScratch = deps[:0]
	t.remaining.Store(t.npreds)
	g.Tasks = append(g.Tasks, t)
	return t
}

// Declare adds an explicit dependency edge from -> to, for dependencies
// not expressible through data accesses. It must be called after both
// tasks were submitted and before the graph runs.
func (g *Graph) Declare(from, to *Task) {
	g.addEdge(from, to)
	to.remaining.Store(to.npreds)
}

func (g *Graph) addEdge(from, to *Task) {
	from.succs = append(from.succs, to)
	to.npreds++
	g.preds[to.ID] = append(g.preds[to.ID], from)
}

// Preds returns the direct predecessors λ−(t).
func (g *Graph) Preds(t *Task) []*Task { return g.preds[t.ID] }

// Roots appends to dst the tasks with no predecessors (ready at time 0)
// and returns the extended slice.
func (g *Graph) Roots(dst []*Task) []*Task {
	for _, t := range g.Tasks {
		if t.npreds == 0 {
			dst = append(dst, t)
		}
	}
	return dst
}

// ResetRun restores all tasks to their pre-execution state so the graph
// can be executed again (scheduler comparisons reuse one DAG).
func (g *Graph) ResetRun() {
	for _, t := range g.Tasks {
		t.ResetExecState()
	}
}

// Validate checks the structural sanity of the graph: positive handle
// sizes, at least one implementation per task, acyclicity (guaranteed by
// construction through submission order, verified anyway), and that
// dependency counters match edge counts.
func (g *Graph) Validate() error {
	for _, h := range g.Handles {
		if h.Bytes < 0 {
			return fmt.Errorf("runtime: handle %q has negative size", h.Name)
		}
	}
	for _, t := range g.Tasks {
		any := false
		for a := range t.Cost {
			if t.CanRun(platform.ArchID(a)) {
				any = true
			}
		}
		if !any {
			return fmt.Errorf("runtime: task %d (%s) has no implementation", t.ID, t.Kind)
		}
		if int(t.npreds) != len(g.preds[t.ID]) {
			return fmt.Errorf("runtime: task %d pred count %d != recorded %d", t.ID, t.npreds, len(g.preds[t.ID]))
		}
		for _, s := range t.succs {
			if s.ID <= t.ID {
				return fmt.Errorf("runtime: edge %d -> %d violates submission order", t.ID, s.ID)
			}
		}
	}
	return nil
}

// TotalFlops sums the Flops of all tasks.
func (g *Graph) TotalFlops() float64 {
	var sum float64
	for _, t := range g.Tasks {
		sum += t.Flops
	}
	return sum
}

// SerialTime returns the sum over tasks of the best per-arch cost: the
// runtime of the DAG on a single ideal worker of each task's best
// architecture. It is a convenient lower-bound-ish reference for
// speedup reporting.
func (g *Graph) SerialTime() float64 {
	var sum float64
	for _, t := range g.Tasks {
		best := 0.0
		first := true
		for a := range t.Cost {
			if c, ok := t.BaseCost(platform.ArchID(a)); ok && (first || c < best) {
				best, first = c, false
			}
		}
		sum += best
	}
	return sum
}

// PracticalCriticalPath walks the executed DAG backwards from the task
// that finished last, at each step following the predecessor that
// finished latest — the chain of tasks that actually determined the
// makespan (the red-bordered tasks of the paper's Fig. 4). The returned
// slice is ordered from first to last task.
func PracticalCriticalPath(g *Graph) []*Task {
	var last *Task
	for _, t := range g.Tasks {
		if t.EndAt > 0 && (last == nil || t.EndAt > last.EndAt) {
			last = t
		}
	}
	if last == nil {
		return nil
	}
	var path []*Task
	for t := last; t != nil; {
		path = append(path, t)
		var next *Task
		for _, p := range g.Preds(t) {
			if next == nil || p.EndAt > next.EndAt {
				next = p
			}
		}
		t = next
	}
	// Reverse in place.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// CriticalPathTime returns the length of the longest path through the
// DAG using each task's best per-arch cost: the ideal makespan with
// infinite resources.
func (g *Graph) CriticalPathTime() float64 {
	longest := make([]float64, len(g.Tasks))
	var best float64
	// Tasks are topologically ordered by ID (submission order).
	for _, t := range g.Tasks {
		c := 0.0
		first := true
		for a := range t.Cost {
			if v, ok := t.BaseCost(platform.ArchID(a)); ok && (first || v < c) {
				c, first = v, false
			}
		}
		start := longest[t.ID]
		end := start + c
		if end > best {
			best = end
		}
		for _, s := range t.succs {
			if end > longest[s.ID] {
				longest[s.ID] = end
			}
		}
	}
	return best
}
