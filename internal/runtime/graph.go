package runtime

import (
	"fmt"

	"multiprio/internal/platform"
)

// Graph holds an application DAG built through sequential task
// submission. It is not safe for concurrent submission (the STF model is
// sequential by construction); execution engines read it concurrently
// only after submission is complete.
type Graph struct {
	Tasks   []*Task
	Handles []*DataHandle

	// preds records direct predecessors, indexed by task ID (IDs are
	// dense submission-order integers, so a slice replaces the former
	// map: Submit and NumPredsOn sit on the STF hot path). Kept out of
	// Task to avoid growing the hot struct (successors are needed on the
	// NOD hot path, predecessors only for restricted counts and critical
	// paths).
	preds [][]*Task

	// depScratch is reused across Submit calls for the per-task
	// dependency list (deduplicated by linear scan: tasks touch a
	// handful of handles, so the scan beats a map allocation per task).
	depScratch []*Task

	nextTask   int64
	nextHandle int64
}

// NewGraph returns an empty application graph.
func NewGraph() *Graph {
	return &Graph{}
}

// NewData registers a data handle of the given size residing on the main
// RAM node.
func (g *Graph) NewData(name string, bytes int64) *DataHandle {
	return g.NewDataOn(name, bytes, platform.MemRAM)
}

// NewDataOn registers a data handle residing initially on mem.
func (g *Graph) NewDataOn(name string, bytes int64, mem platform.MemID) *DataHandle {
	h := &DataHandle{
		ID:    g.nextHandle,
		Name:  name,
		Bytes: bytes,
		Home:  mem,
	}
	g.nextHandle++
	g.Handles = append(g.Handles, h)
	return h
}

// Submit adds the task to the graph, inferring dependencies from the
// access modes against previously submitted tasks (the STF rule: a read
// depends on the last writer; a write depends on the last writer and all
// readers since). Task IDs are assigned by submission order.
func (g *Graph) Submit(t *Task) *Task {
	t.ID = g.nextTask
	g.nextTask++
	g.preds = append(g.preds, nil)
	// deps keeps first-encounter order (a reused slice, deduplicated by
	// linear scan): edges must be inserted in a deterministic order,
	// because Succs/Preds order is visible to the engines (successor
	// release order) and to schedulers (tie-breaks over equal
	// timestamps). Iterating a map here made identically-built graphs
	// schedule differently run to run.
	deps := g.depScratch[:0]
	dep := func(d *Task) {
		if d == nil || d == t {
			return
		}
		for _, have := range deps {
			if have == d {
				return
			}
		}
		deps = append(deps, d)
	}
	for _, a := range t.Accesses {
		h := a.Handle
		if h == nil {
			panic(fmt.Sprintf("runtime: task %q submitted with nil handle", t.Kind))
		}
		switch a.Mode {
		case R:
			if len(h.commuters) > 0 {
				// A read closes the open commute group: it waits for
				// every commuting updater, and later accesses order
				// against the reader (transitively against the group).
				for _, c := range h.commuters {
					dep(c)
				}
				h.commuters = h.commuters[:0]
				h.lastWriter = nil
				h.readers = h.readers[:0]
			} else {
				dep(h.lastWriter)
			}
			h.readers = append(h.readers, t)
		case Commute:
			// Commutative update: ordered after the last exclusive
			// writer and any readers since, but NOT after fellow
			// members of the open group.
			dep(h.lastWriter)
			for _, r := range h.readers {
				dep(r)
			}
			h.commuters = append(h.commuters, t)
		case W, RW:
			dep(h.lastWriter)
			for _, r := range h.readers {
				dep(r)
			}
			for _, c := range h.commuters {
				dep(c)
			}
			h.readers = h.readers[:0]
			h.commuters = h.commuters[:0]
			h.lastWriter = t
		default:
			panic(fmt.Sprintf("runtime: task %q has invalid access mode %d", t.Kind, a.Mode))
		}
	}
	for _, d := range deps {
		g.addEdge(d, t)
	}
	g.depScratch = deps[:0]
	t.remaining.Store(t.npreds)
	g.Tasks = append(g.Tasks, t)
	return t
}

// Declare adds an explicit dependency edge from -> to, for dependencies
// not expressible through data accesses. It must be called after both
// tasks were submitted and before the graph runs.
func (g *Graph) Declare(from, to *Task) {
	g.addEdge(from, to)
	to.remaining.Store(to.npreds)
}

func (g *Graph) addEdge(from, to *Task) {
	from.succs = append(from.succs, to)
	to.npreds++
	g.preds[to.ID] = append(g.preds[to.ID], from)
}

// Preds returns the direct predecessors λ−(t).
func (g *Graph) Preds(t *Task) []*Task { return g.preds[t.ID] }

// Roots appends to dst the tasks with no predecessors (ready at time 0)
// and returns the extended slice.
func (g *Graph) Roots(dst []*Task) []*Task {
	for _, t := range g.Tasks {
		if t.npreds == 0 {
			dst = append(dst, t)
		}
	}
	return dst
}

// ResetRun restores all tasks to their pre-execution state so the graph
// can be executed again (scheduler comparisons reuse one DAG).
func (g *Graph) ResetRun() {
	for _, t := range g.Tasks {
		t.ResetExecState()
	}
}

// Validate checks the structural sanity of the graph: positive handle
// sizes, at least one implementation per task, acyclicity (guaranteed by
// construction through submission order, verified anyway), and that
// dependency counters match edge counts.
func (g *Graph) Validate() error {
	for _, h := range g.Handles {
		if h.Bytes < 0 {
			return fmt.Errorf("runtime: handle %q has negative size", h.Name)
		}
	}
	for _, t := range g.Tasks {
		any := false
		for a := range t.Cost {
			if t.CanRun(platform.ArchID(a)) {
				any = true
			}
		}
		if !any {
			return fmt.Errorf("runtime: task %d (%s) has no implementation", t.ID, t.Kind)
		}
		if int(t.npreds) != len(g.preds[t.ID]) {
			return fmt.Errorf("runtime: task %d pred count %d != recorded %d", t.ID, t.npreds, len(g.preds[t.ID]))
		}
		for _, s := range t.succs {
			if s.ID <= t.ID {
				return fmt.Errorf("runtime: edge %d -> %d violates submission order", t.ID, s.ID)
			}
		}
	}
	return nil
}

// TotalFlops sums the Flops of all tasks.
func (g *Graph) TotalFlops() float64 {
	var sum float64
	for _, t := range g.Tasks {
		sum += t.Flops
	}
	return sum
}

// SerialTime returns the sum over tasks of the best per-arch cost: the
// runtime of the DAG on a single ideal worker of each task's best
// architecture. It is a convenient lower-bound-ish reference for
// speedup reporting.
func (g *Graph) SerialTime() float64 {
	var sum float64
	for _, t := range g.Tasks {
		best := 0.0
		first := true
		for a := range t.Cost {
			if c, ok := t.BaseCost(platform.ArchID(a)); ok && (first || c < best) {
				best, first = c, false
			}
		}
		sum += best
	}
	return sum
}

// PracticalCriticalPath walks the executed DAG backwards from the task
// that finished last, at each step following the predecessor that
// finished latest — the chain of tasks that actually determined the
// makespan (the red-bordered tasks of the paper's Fig. 4). The returned
// slice is ordered from first to last task.
func PracticalCriticalPath(g *Graph) []*Task {
	var last *Task
	for _, t := range g.Tasks {
		if t.EndAt > 0 && (last == nil || t.EndAt > last.EndAt) {
			last = t
		}
	}
	if last == nil {
		return nil
	}
	var path []*Task
	for t := last; t != nil; {
		path = append(path, t)
		var next *Task
		for _, p := range g.Preds(t) {
			if next == nil || p.EndAt > next.EndAt {
				next = p
			}
		}
		t = next
	}
	// Reverse in place.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// CriticalPathTime returns the length of the longest path through the
// DAG using each task's best per-arch cost: the ideal makespan with
// infinite resources.
func (g *Graph) CriticalPathTime() float64 {
	longest := make([]float64, len(g.Tasks))
	var best float64
	// Tasks are topologically ordered by ID (submission order).
	for _, t := range g.Tasks {
		c := 0.0
		first := true
		for a := range t.Cost {
			if v, ok := t.BaseCost(platform.ArchID(a)); ok && (first || v < c) {
				c, first = v, false
			}
		}
		start := longest[t.ID]
		end := start + c
		if end > best {
			best = end
		}
		for _, s := range t.succs {
			if end > longest[s.ID] {
				longest[s.ID] = end
			}
		}
	}
	return best
}
