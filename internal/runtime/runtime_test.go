package runtime

import (
	"errors"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"multiprio/internal/perfmodel"
	"multiprio/internal/platform"
)

// fifoSched is a minimal correct scheduler for engine tests: one global
// FIFO, claim-checked.
type fifoSched struct {
	mu    sync.Mutex
	queue []*Task
}

func (s *fifoSched) Name() string  { return "test-fifo" }
func (s *fifoSched) Init(env *Env) { s.queue = nil }
func (s *fifoSched) Push(t *Task) {
	s.mu.Lock()
	s.queue = append(s.queue, t)
	s.mu.Unlock()
}
func (s *fifoSched) Pop(w WorkerInfo) *Task {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) > 0 {
		t := s.queue[0]
		s.queue = s.queue[1:]
		if t.CanRun(w.Arch) && t.TryClaim() {
			return t
		}
		if !t.Claimed() {
			// Not runnable here: requeue at the back.
			s.queue = append(s.queue, t)
			return nil
		}
	}
	return nil
}
func (s *fifoSched) TaskDone(t *Task, w WorkerInfo) {}

func cpuTask(kind string, cost float64, acc ...Access) *Task {
	return &Task{Kind: kind, Cost: []float64{cost}, Accesses: acc}
}

func TestAccessModeString(t *testing.T) {
	if R.String() != "R" || W.String() != "W" || RW.String() != "RW" {
		t.Error("mode names wrong")
	}
	if !W.IsWrite() || !RW.IsWrite() || R.IsWrite() {
		t.Error("IsWrite wrong")
	}
	if !R.IsRead() || !RW.IsRead() || W.IsRead() {
		t.Error("IsRead wrong")
	}
	if AccessMode(9).String() == "" {
		t.Error("unknown mode should still format")
	}
}

func TestSTFReadAfterWrite(t *testing.T) {
	g := NewGraph()
	h := g.NewData("x", 8)
	w := g.Submit(cpuTask("writer", 1, Access{h, W}))
	r1 := g.Submit(cpuTask("reader", 1, Access{h, R}))
	r2 := g.Submit(cpuTask("reader", 1, Access{h, R}))

	if r1.NumPreds() != 1 || g.Preds(r1)[0] != w {
		t.Error("r1 should depend on writer")
	}
	if r2.NumPreds() != 1 || g.Preds(r2)[0] != w {
		t.Error("r2 should depend on writer")
	}
	if len(w.Succs()) != 2 {
		t.Errorf("writer has %d successors, want 2", len(w.Succs()))
	}
}

func TestSTFWriteAfterRead(t *testing.T) {
	g := NewGraph()
	h := g.NewData("x", 8)
	w1 := g.Submit(cpuTask("w1", 1, Access{h, W}))
	r1 := g.Submit(cpuTask("r1", 1, Access{h, R}))
	r2 := g.Submit(cpuTask("r2", 1, Access{h, R}))
	w2 := g.Submit(cpuTask("w2", 1, Access{h, RW}))

	// w2 depends on both readers and transitively the first writer.
	preds := g.Preds(w2)
	has := map[*Task]bool{}
	for _, p := range preds {
		has[p] = true
	}
	if !has[r1] || !has[r2] {
		t.Errorf("w2 preds missing readers: %v", has)
	}
	if has[w1] {
		// Write-after-write goes through the readers here; w1 must not
		// be a direct pred because readers already order it.
		t.Log("note: w1 is direct pred (acceptable but not minimal)")
	}
}

func TestSTFWriteAfterWriteNoReaders(t *testing.T) {
	g := NewGraph()
	h := g.NewData("x", 8)
	w1 := g.Submit(cpuTask("w1", 1, Access{h, W}))
	w2 := g.Submit(cpuTask("w2", 1, Access{h, W}))
	if w2.NumPreds() != 1 || g.Preds(w2)[0] != w1 {
		t.Error("w2 should depend directly on w1")
	}
}

func TestSTFIndependentHandles(t *testing.T) {
	g := NewGraph()
	h1 := g.NewData("a", 8)
	h2 := g.NewData("b", 8)
	t1 := g.Submit(cpuTask("t1", 1, Access{h1, W}))
	t2 := g.Submit(cpuTask("t2", 1, Access{h2, W}))
	if t1.NumPreds() != 0 || t2.NumPreds() != 0 {
		t.Error("tasks on independent handles must not depend on each other")
	}
	roots := g.Roots(nil)
	if len(roots) != 2 {
		t.Errorf("roots = %d, want 2", len(roots))
	}
}

func TestSTFSameTaskMultipleAccesses(t *testing.T) {
	g := NewGraph()
	h1 := g.NewData("a", 8)
	h2 := g.NewData("b", 8)
	t1 := g.Submit(cpuTask("t1", 1, Access{h1, W}, Access{h2, W}))
	t2 := g.Submit(cpuTask("t2", 1, Access{h1, R}, Access{h2, R}))
	// Two shared handles still produce a single dependency edge.
	if t2.NumPreds() != 1 {
		t.Errorf("t2 preds = %d, want deduplicated 1", t2.NumPreds())
	}
	if len(t1.Succs()) != 1 {
		t.Errorf("t1 succs = %d, want 1", len(t1.Succs()))
	}
}

func TestDeclareExplicitEdge(t *testing.T) {
	g := NewGraph()
	a := g.Submit(cpuTask("a", 1))
	b := g.Submit(cpuTask("b", 1))
	g.Declare(a, b)
	if b.NumPreds() != 1 || b.remaining.Load() != 1 {
		t.Error("Declare did not register the dependency")
	}
}

func TestValidateCatchesNoImplementation(t *testing.T) {
	g := NewGraph()
	g.Submit(&Task{Kind: "bad", Cost: []float64{0}})
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted task with no implementation")
	}
}

func TestValidateCatchesNegativeHandle(t *testing.T) {
	g := NewGraph()
	g.NewData("bad", -1)
	g.Submit(cpuTask("t", 1))
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted negative handle size")
	}
}

func TestCanRunAndBaseCost(t *testing.T) {
	task := &Task{Cost: []float64{2, 0, math.NaN()}}
	if !task.CanRun(0) {
		t.Error("CanRun(0) = false")
	}
	if task.CanRun(1) || task.CanRun(2) || task.CanRun(5) || task.CanRun(-1) {
		t.Error("CanRun accepted missing implementations")
	}
	if c, ok := task.BaseCost(0); !ok || c != 2 {
		t.Error("BaseCost(0) wrong")
	}
	if _, ok := task.BaseCost(1); ok {
		t.Error("BaseCost(1) should be !ok")
	}
}

func TestTryClaimOnce(t *testing.T) {
	task := &Task{}
	if !task.TryClaim() {
		t.Fatal("first claim failed")
	}
	if task.TryClaim() {
		t.Fatal("second claim succeeded")
	}
	if !task.Claimed() {
		t.Fatal("Claimed() = false after claim")
	}
	task.ResetExecState()
	if task.Claimed() {
		t.Fatal("claim survived reset")
	}
}

func TestTryClaimConcurrent(t *testing.T) {
	task := &Task{}
	var wins atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if task.TryClaim() {
				wins.Add(1)
			}
		}()
	}
	wg.Wait()
	if wins.Load() != 1 {
		t.Errorf("claim winners = %d, want exactly 1", wins.Load())
	}
}

func TestTotalBytesDedupes(t *testing.T) {
	g := NewGraph()
	h1 := g.NewData("a", 100)
	h2 := g.NewData("b", 50)
	task := cpuTask("t", 1, Access{h1, R}, Access{h1, RW}, Access{h2, R})
	if got := task.TotalBytes(); got != 150 {
		t.Errorf("TotalBytes = %d, want 150", got)
	}
}

func TestEnvDelta(t *testing.T) {
	m := platform.IntelV100(platform.Config{})
	g := NewGraph()
	env := NewEnv(m, g)
	task := &Task{Kind: "k", Cost: []float64{1.0, 0.1}}
	if d := env.Delta(task, platform.ArchCPU); d != 1.0 {
		t.Errorf("Delta(cpu) = %v", d)
	}
	if d := env.Delta(task, platform.ArchGPU); d != 0.1 {
		t.Errorf("Delta(gpu) = %v", d)
	}
	cpuOnly := &Task{Kind: "k", Cost: []float64{1.0}}
	if d := env.Delta(cpuOnly, platform.ArchGPU); !math.IsInf(d, 1) {
		t.Errorf("Delta for missing impl = %v, want +Inf", d)
	}
}

func TestEnvBestAndSecondBest(t *testing.T) {
	m := platform.IntelV100(platform.Config{})
	env := NewEnv(m, NewGraph())
	task := &Task{Kind: "k", Cost: []float64{1.0, 0.1}}
	a, d, ok := env.BestArch(task)
	if !ok || a != platform.ArchGPU || d != 0.1 {
		t.Errorf("BestArch = %v, %v, %v", a, d, ok)
	}
	a2, d2, ok2 := env.SecondBestArch(task)
	if !ok2 || a2 != platform.ArchCPU || d2 != 1.0 {
		t.Errorf("SecondBestArch = %v, %v, %v", a2, d2, ok2)
	}
	cpuOnly := &Task{Kind: "k", Cost: []float64{1.0}}
	if _, _, ok := env.SecondBestArch(cpuOnly); ok {
		t.Error("SecondBestArch should fail with one implementation")
	}
}

func TestEnvDeltaUsesHistory(t *testing.T) {
	m := platform.IntelV100(platform.Config{})
	env := NewEnv(m, NewGraph())
	h := perfmodel.NewHistory()
	env.Model = h
	task := &Task{Kind: "k", Footprint: 7, Cost: []float64{1.0, 0.1}}
	if d := env.Delta(task, platform.ArchCPU); d != 1.0 {
		t.Errorf("prior-based Delta = %v", d)
	}
	h.Record("k", platform.ArchCPU, 7, 3.0)
	if d := env.Delta(task, platform.ArchCPU); d != 3.0 {
		t.Errorf("history-based Delta = %v, want 3.0", d)
	}
}

func TestLSSDH2(t *testing.T) {
	m := platform.IntelV100(platform.Config{})
	g := NewGraph()
	env := NewEnv(m, g)
	hr := g.NewData("r", 10) // resident on RAM (home locator)
	hw := g.NewData("w", 4)
	task := cpuTask("t", 1, Access{hr, R}, Access{hw, RW})
	got := env.LSSDH2(task, platform.MemRAM)
	want := 10.0 + 4.0*4.0
	if got != want {
		t.Errorf("LSSDH2 on RAM = %v, want %v", got, want)
	}
	if got := env.LSSDH2(task, platform.MemID(1)); got != 0 {
		t.Errorf("LSSDH2 on GPU node = %v, want 0 (nothing resident)", got)
	}
}

func TestCriticalPathAndSerialTime(t *testing.T) {
	g := NewGraph()
	h := g.NewData("x", 8)
	g.Submit(cpuTask("a", 2, Access{h, W}))
	g.Submit(cpuTask("b", 3, Access{h, RW}))
	g.Submit(cpuTask("c", 4)) // independent
	if got := g.SerialTime(); got != 9 {
		t.Errorf("SerialTime = %v, want 9", got)
	}
	if got := g.CriticalPathTime(); got != 5 {
		t.Errorf("CriticalPathTime = %v, want 5 (a->b chain)", got)
	}
	if got := g.TotalFlops(); got != 0 {
		t.Errorf("TotalFlops = %v, want 0", got)
	}
}

func TestThreadedEngineRunsChain(t *testing.T) {
	g := NewGraph()
	h := g.NewData("x", 8)
	order := make([]string, 0, 3)
	var mu sync.Mutex
	mk := func(name string, mode AccessMode) *Task {
		task := cpuTask(name, 0.001, Access{h, mode})
		task.Run = func(w WorkerInfo) {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
		}
		return task
	}
	g.Submit(mk("a", W))
	g.Submit(mk("b", RW))
	g.Submit(mk("c", R))

	eng := &ThreadedEngine{Machine: platform.CPUOnly(4), Sched: &fifoSched{}}
	res, err := eng.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Error("makespan not positive")
	}
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Errorf("execution order %v, want [a b c]", order)
	}
}

func TestThreadedEngineParallelism(t *testing.T) {
	g := NewGraph()
	var maxConc, conc atomic.Int32
	for i := 0; i < 8; i++ {
		task := cpuTask("p", 0.001)
		task.Run = func(w WorkerInfo) {
			c := conc.Add(1)
			for {
				m := maxConc.Load()
				if c <= m || maxConc.CompareAndSwap(m, c) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
			conc.Add(-1)
		}
		g.Submit(task)
	}
	eng := &ThreadedEngine{Machine: platform.CPUOnly(4), Sched: &fifoSched{}}
	if _, err := eng.Run(g); err != nil {
		t.Fatal(err)
	}
	if maxConc.Load() < 2 {
		t.Errorf("max concurrency = %d, want >= 2", maxConc.Load())
	}
	if maxConc.Load() > 4 {
		t.Errorf("max concurrency = %d exceeds worker count 4", maxConc.Load())
	}
}

func TestThreadedEngineRecordsHistory(t *testing.T) {
	g := NewGraph()
	task := cpuTask("kern", 0.001)
	task.Footprint = 42
	task.Run = func(w WorkerInfo) { time.Sleep(2 * time.Millisecond) }
	g.Submit(task)
	hist := perfmodel.NewHistory()
	eng := &ThreadedEngine{Machine: platform.CPUOnly(2), Sched: &fifoSched{}, History: hist}
	if _, err := eng.Run(g); err != nil {
		t.Fatal(err)
	}
	mean, ok := hist.Mean("kern", platform.ArchCPU, 42)
	if !ok || mean < 0.001 {
		t.Errorf("history mean = %v, %v; want >= 2ms", mean, ok)
	}
	if task.EndAt <= task.StartAt {
		t.Error("task execution interval not recorded")
	}
}

func TestThreadedEngineStarvationDetected(t *testing.T) {
	g := NewGraph()
	g.Submit(cpuTask("t", 1))
	refuser := &refusingSched{}
	eng := &ThreadedEngine{Machine: platform.CPUOnly(2), Sched: refuser}
	_, err := eng.Run(g)
	if err == nil {
		t.Fatal("expected starvation error")
	}
	if !errors.Is(err, ErrStarved) {
		t.Errorf("err = %v, want ErrStarved", err)
	}
}

type refusingSched struct{}

func (refusingSched) Name() string               { return "refuser" }
func (refusingSched) Init(*Env)                  {}
func (refusingSched) Push(*Task)                 {}
func (refusingSched) Pop(WorkerInfo) *Task       { return nil }
func (refusingSched) TaskDone(*Task, WorkerInfo) {}

// Property: for random chains-of-writes DAGs, submission order is a
// topological order and dependency counts equal edge counts.
func TestQuickSTFInvariants(t *testing.T) {
	f := func(nHandles, nTasks uint8, pattern []uint8) bool {
		g := NewGraph()
		nh := int(nHandles%8) + 1
		nt := int(nTasks % 64)
		handles := make([]*DataHandle, nh)
		for i := range handles {
			handles[i] = g.NewData("h", 64)
		}
		for i := 0; i < nt; i++ {
			var acc []Access
			if len(pattern) > 0 {
				p := pattern[i%len(pattern)]
				h := handles[int(p)%nh]
				mode := []AccessMode{R, W, RW}[int(p/8)%3]
				acc = append(acc, Access{h, mode})
				h2 := handles[int(p/2)%nh]
				if h2 != h {
					acc = append(acc, Access{h2, R})
				}
			}
			g.Submit(cpuTask("t", 1, acc...))
		}
		if err := g.Validate(); err != nil {
			t.Log(err)
			return false
		}
		// Edge count symmetry: sum of succ lists == sum of pred lists.
		nsucc, npred := 0, 0
		for _, task := range g.Tasks {
			nsucc += len(task.Succs())
			npred += task.NumPreds()
		}
		return nsucc == npred
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteDOT(t *testing.T) {
	g := NewGraph()
	h := g.NewData("x", 8)
	a := g.Submit(cpuTask("alpha", 1, Access{h, W}))
	g.Submit(cpuTask("beta", 1, Access{h, R}))
	a.StartAt, a.EndAt = 0, 1

	var sb strings.Builder
	if err := g.WriteDOT(&sb, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph", "alpha", "beta", "t0 -> t1", "[0.000-1.000]"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTTruncates(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 10; i++ {
		g.Submit(cpuTask("t", 1))
	}
	var sb strings.Builder
	if err := g.WriteDOT(&sb, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "7 more tasks") {
		t.Errorf("missing truncation marker:\n%s", sb.String())
	}
}
