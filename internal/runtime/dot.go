package runtime

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the task graph in Graphviz DOT format, one node per
// task colored by kernel kind, for inspecting the DAG shapes the paper
// discusses (diamond-shaped dense factorizations, disconnected FMM,
// bushy multifrontal trees). Executed graphs annotate each node with
// its measured interval.
//
// Intended for small graphs (dot itself struggles past a few thousand
// nodes); use maxTasks to truncate with an ellipsis marker, 0 meaning
// everything.
func (g *Graph) WriteDOT(w io.Writer, maxTasks int) error {
	if maxTasks <= 0 || maxTasks > len(g.Tasks) {
		maxTasks = len(g.Tasks)
	}
	var b strings.Builder
	b.WriteString("digraph tasks {\n  rankdir=TB;\n  node [shape=box, style=filled, fontsize=10];\n")
	colors := map[string]string{}
	palette := []string{
		"#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f", "#cab2d6",
		"#ffff99", "#1f78b4", "#33a02c", "#e31a1c", "#ff7f00",
	}
	colorOf := func(kind string) string {
		c, ok := colors[kind]
		if !ok {
			c = palette[len(colors)%len(palette)]
			colors[kind] = c
		}
		return c
	}
	for _, t := range g.Tasks[:maxTasks] {
		label := fmt.Sprintf("%s #%d", t.Kind, t.ID)
		if t.EndAt > t.StartAt {
			label += fmt.Sprintf("\\n[%.3f-%.3f]", t.StartAt, t.EndAt)
		}
		fmt.Fprintf(&b, "  t%d [label=\"%s\", fillcolor=\"%s\"];\n", t.ID, label, colorOf(t.Kind))
	}
	for _, t := range g.Tasks[:maxTasks] {
		for _, s := range t.Succs() {
			if int(s.ID) < maxTasks {
				fmt.Fprintf(&b, "  t%d -> t%d;\n", t.ID, s.ID)
			}
		}
	}
	if maxTasks < len(g.Tasks) {
		fmt.Fprintf(&b, "  truncated [label=\"… %d more tasks\", shape=plaintext];\n",
			len(g.Tasks)-maxTasks)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
