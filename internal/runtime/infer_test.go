package runtime

import "testing"

// predIDs returns the sorted-free raw predecessor ID list of t.
func predIDs(g *Graph, t *Task) []int64 {
	var ids []int64
	for _, p := range g.Preds(t) {
		ids = append(ids, p.ID)
	}
	return ids
}

// TestInferenceEdgeCases table-drives the trickier STF inference
// shapes: wide write-after-read fan-in, repeated RW chains on one
// handle, and tasks mixing commute and plain accesses.
func TestInferenceEdgeCases(t *testing.T) {
	mk := func(g *Graph, acc ...Access) *Task {
		return g.Submit(&Task{Kind: "k", Cost: []float64{1}, Accesses: acc})
	}
	t.Run("write-after-read fan-in", func(t *testing.T) {
		// One writer, eight readers, then a second writer: per the STF
		// rule the second writer depends on the last writer and every
		// reader since (the writer edge is transitively redundant but
		// part of the documented contract), and on nothing else.
		g := NewGraph()
		h := g.NewData("h", 8)
		want := map[int64]bool{mk(g, Access{Handle: h, Mode: W}).ID: true}
		for i := 0; i < 8; i++ {
			want[mk(g, Access{Handle: h, Mode: R}).ID] = true
		}
		w2 := mk(g, Access{Handle: h, Mode: W})
		preds := predIDs(g, w2)
		if len(preds) != len(want) {
			t.Fatalf("second writer has %d preds, want %d", len(preds), len(want))
		}
		for _, id := range preds {
			if !want[id] {
				t.Fatalf("unexpected predecessor %d", id)
			}
		}
	})
	t.Run("repeated RW chain", func(t *testing.T) {
		// N successive RW tasks on one handle must form a pure chain:
		// each task depends exactly on its immediate predecessor.
		g := NewGraph()
		h := g.NewData("h", 8)
		var prev *Task
		for i := 0; i < 6; i++ {
			cur := mk(g, Access{Handle: h, Mode: RW})
			preds := predIDs(g, cur)
			if prev == nil {
				if len(preds) != 0 {
					t.Fatalf("first RW task has %d preds", len(preds))
				}
			} else if len(preds) != 1 || preds[0] != prev.ID {
				t.Fatalf("RW task %d preds = %v, want [%d]", cur.ID, preds, prev.ID)
			}
			prev = cur
		}
	})
	t.Run("commute mixed with plain accesses", func(t *testing.T) {
		// Two commuting updaters of acc that also read distinct inputs:
		// no dependency among themselves, each depends on its input's
		// writer; a final reader of acc closes the group over both.
		g := NewGraph()
		acc := g.NewData("acc", 8)
		in1, in2 := g.NewData("in1", 8), g.NewData("in2", 8)
		p1 := mk(g, Access{Handle: in1, Mode: W})
		p2 := mk(g, Access{Handle: in2, Mode: W})
		c1 := mk(g, Access{Handle: in1, Mode: R}, Access{Handle: acc, Mode: Commute})
		c2 := mk(g, Access{Handle: in2, Mode: R}, Access{Handle: acc, Mode: Commute})
		if got := predIDs(g, c1); len(got) != 1 || got[0] != p1.ID {
			t.Fatalf("c1 preds = %v, want [%d]", got, p1.ID)
		}
		if got := predIDs(g, c2); len(got) != 1 || got[0] != p2.ID {
			t.Fatalf("c2 preds = %v, want [%d]", got, p2.ID)
		}
		r := mk(g, Access{Handle: acc, Mode: R})
		got := map[int64]bool{}
		for _, id := range predIDs(g, r) {
			got[id] = true
		}
		if len(got) != 2 || !got[c1.ID] || !got[c2.ID] {
			t.Fatalf("group-closing reader preds = %v, want {%d, %d}", got, c1.ID, c2.ID)
		}
	})
}

// TestSubmitEdgeOrderDeterministic is the regression test for the
// map-iteration bug in Submit: identically-built graphs must present
// Succs and Preds in identical order, because engines release
// successors and schedulers break timestamp ties in that order — a
// shuffled edge list made whole simulations diverge run to run.
func TestSubmitEdgeOrderDeterministic(t *testing.T) {
	build := func() *Graph {
		g := NewGraph()
		hs := make([]*DataHandle, 6)
		for i := range hs {
			hs[i] = g.NewData("h", 8)
		}
		// Writers over all handles, readers crossing them, then a wide
		// writer joining everything — plenty of multi-pred tasks.
		for i := range hs {
			g.Submit(&Task{Kind: "w", Cost: []float64{1},
				Accesses: []Access{{Handle: hs[i], Mode: W}}})
		}
		for i := range hs {
			g.Submit(&Task{Kind: "r", Cost: []float64{1}, Accesses: []Access{
				{Handle: hs[i], Mode: R}, {Handle: hs[(i+1)%len(hs)], Mode: R}}})
		}
		var all []Access
		for _, h := range hs {
			all = append(all, Access{Handle: h, Mode: RW})
		}
		g.Submit(&Task{Kind: "join", Cost: []float64{1}, Accesses: all})
		return g
	}
	a, b := build(), build()
	for i, ta := range a.Tasks {
		tb := b.Tasks[i]
		pa, pb := predIDs(a, ta), predIDs(b, tb)
		if len(pa) != len(pb) {
			t.Fatalf("task %d: %d vs %d preds", i, len(pa), len(pb))
		}
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatalf("task %d: pred order diverges at %d: %v vs %v", i, j, pa, pb)
			}
		}
		sa, sb := ta.Succs(), tb.Succs()
		for j := range sa {
			if sa[j].ID != sb[j].ID {
				t.Fatalf("task %d: succ order diverges at %d", i, j)
			}
		}
	}
}
