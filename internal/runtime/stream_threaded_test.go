package runtime

import (
	"testing"
	"time"

	"multiprio/internal/platform"
)

// TestThreadedArrivalGating checks the threaded engine holds tasks back
// until their wall-clock arrival instants and that the starvation
// detector does not fire while work is still due to arrive: with every
// arrival strictly in the future, all workers idle through the initial
// window and the run must still complete.
func TestThreadedArrivalGating(t *testing.T) {
	d := time.Millisecond
	g := faultTestGraph(12, d)
	arrivals := make([]float64, len(g.Tasks))
	for i := range arrivals {
		arrivals[i] = 0.002 * float64(1+i)
	}
	eng, err := NewThreadedEngine(platform.CPUOnly(4), &fifoSched{}, WithArrivals(arrivals))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(g)
	if err != nil {
		t.Fatalf("streamed threaded run failed: %v", err)
	}
	// Wall-clock slack: timers may fire marginally early per the runtime
	// documentation of time.AfterFunc only guaranteeing "not before".
	const eps = 1e-4
	for _, task := range g.Tasks {
		if task.StartAt < arrivals[task.ID]-eps {
			t.Errorf("task %d started at %g before its arrival at %g", task.ID, task.StartAt, arrivals[task.ID])
		}
	}
	if res.Makespan < arrivals[len(arrivals)-1]-eps {
		t.Errorf("makespan %g precedes the last arrival %g", res.Makespan, arrivals[len(arrivals)-1])
	}
}

// TestThreadedArrivalValidation checks arrival plans are validated on
// the threaded engine too.
func TestThreadedArrivalValidation(t *testing.T) {
	g := faultTestGraph(4, time.Millisecond)
	eng, err := NewThreadedEngine(platform.CPUOnly(2), &fifoSched{}, WithArrivals([]float64{0}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(g); err == nil {
		t.Fatal("mismatched arrival plan accepted")
	}
}
