package runtime

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"multiprio/internal/obs"
	"multiprio/internal/perfmodel"
	"multiprio/internal/platform"
)

// ThreadedEngine executes a Graph with real goroutine workers, one per
// processing unit of the machine description. It is the "this is a real
// task runtime" engine: kernels are ordinary Go functions and times are
// wall-clock. Heterogeneous experiments use the simulator in
// internal/sim instead; both engines drive the same Scheduler
// implementations.
type ThreadedEngine struct {
	Machine *platform.Machine
	Sched   Scheduler
	// History, when non-nil, receives observed execution times
	// (normalized by the unit speed factor) so schedulers estimate from
	// real measurements on subsequent runs.
	History *perfmodel.History
	// Probe, when non-nil, receives scheduler decision events and
	// engine progress counters (internal/obs), stamped with wall-clock
	// seconds since run start. Unlike the simulator there is no
	// linearization sequencer, so Seq stamps are 0 and the event order
	// is only as deterministic as the goroutine schedule.
	Probe obs.Probe
}

// ErrStarved is returned when every worker is idle, no task is running,
// unfinished tasks remain, and the scheduler still refuses to hand out
// work: a livelocked policy.
var ErrStarved = errors.New("runtime: scheduler starved all workers with tasks remaining")

// Run executes the graph and returns the wall-clock makespan.
func (e *ThreadedEngine) Run(g *Graph) (float64, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	env := NewEnv(e.Machine, g)
	start := time.Now()
	now := func() float64 { return time.Since(start).Seconds() }
	env.Now = now
	if e.History != nil {
		env.Model = e.History
	}
	env.Probe = e.Probe
	e.Sched.Init(env)

	var (
		mu        sync.Mutex
		cond      = sync.Cond{L: &mu}
		remaining = len(g.Tasks)
		running   int
		failed    error
		// nilStreak counts consecutive failed pops with no intervening
		// activity (successful pop, completion, or push). When every
		// worker has failed in a row while nothing runs, the policy is
		// genuinely starving the engine — a single worker's empty
		// queue is not enough (per-worker-queue policies like dmdas
		// map tasks to specific workers).
		nilStreak int
		// pushed/popped/done feed the engine progress counters; they
		// are only maintained while a probe is attached and, like the
		// scheduler state, are guarded by mu.
		pushed, popped, done int
	)
	// noteProgress samples submitted/ready/running/completed. Callers
	// hold mu.
	noteProgress := func() {
		if e.Probe == nil {
			return
		}
		at := now()
		e.Probe.Counter("runtime.submitted", at, 0, float64(pushed))
		e.Probe.Counter("runtime.ready", at, 0, float64(pushed-popped))
		e.Probe.Counter("runtime.running", at, 0, float64(running))
		e.Probe.Counter("runtime.completed", at, 0, float64(done))
	}
	workers := make([]WorkerInfo, len(e.Machine.Units))
	for i, u := range e.Machine.Units {
		workers[i] = WorkerInfo{ID: platform.UnitID(i), Arch: u.Arch, Mem: u.Mem}
	}

	for _, t := range g.Roots(nil) {
		t.ReadyAt = 0
		e.Sched.Push(t)
		pushed++
	}
	noteProgress()

	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w WorkerInfo) {
			defer wg.Done()
			for {
				mu.Lock()
				var t *Task
				for {
					if remaining == 0 || failed != nil {
						mu.Unlock()
						cond.Broadcast()
						return
					}
					t = e.Sched.Pop(w)
					if t != nil {
						nilStreak = 0
						popped++
						break
					}
					nilStreak++
					if nilStreak >= len(workers) && running == 0 {
						failed = fmt.Errorf("%w (%d tasks left)", ErrStarved, remaining)
						mu.Unlock()
						cond.Broadcast()
						return
					}
					cond.Wait()
				}
				running++
				noteProgress()
				mu.Unlock()

				e.execute(t, w, now)

				mu.Lock()
				running--
				remaining--
				done++
				mu.Unlock()

				released := 0
				for _, s := range t.Succs() {
					if s.ReleaseDep() {
						s.ReadyAt = now()
						e.Sched.Push(s)
						released++
					}
				}
				e.Sched.TaskDone(t, w)
				mu.Lock()
				nilStreak = 0 // new work may be visible: reprobe everywhere
				pushed += released
				noteProgress()
				mu.Unlock()
				cond.Broadcast()
			}
		}(w)
	}
	wg.Wait()

	if failed != nil {
		return 0, failed
	}
	return now(), nil
}

func (e *ThreadedEngine) execute(t *Task, w WorkerInfo, now func() float64) {
	unlock := t.LockCommute()
	t.StartAt = now()
	t.RanOn = w.ID
	if t.Run != nil {
		t.Run(w)
	}
	// The end-of-execution record must close before the commute locks
	// release: the next commuting updater stamps its StartAt as soon as
	// it acquires the lock, and exclusivity is judged on these records.
	t.EndAt = now()
	unlock()
	if e.History != nil {
		dur := t.EndAt - t.StartAt
		sf := e.Machine.Units[w.ID].SpeedFactor
		if sf > 0 {
			dur /= sf
		}
		e.History.Record(t.Kind, w.Arch, t.Footprint, dur)
	}
}
