package runtime

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"multiprio/internal/fault"
	"multiprio/internal/obs"
	"multiprio/internal/perfmodel"
	"multiprio/internal/platform"
	"multiprio/internal/trace"
)

// ThreadedEngine executes a Graph with real goroutine workers, one per
// processing unit of the machine description. It is the "this is a real
// task runtime" engine: kernels are ordinary Go functions and times are
// wall-clock. Heterogeneous experiments use the simulator in
// internal/sim instead; both engines drive the same Scheduler
// implementations and both implement the Engine interface.
//
// Construct with NewThreadedEngine. The exported fields remain for
// transparency and tests; engines built as bare literals are validated
// at Run.
type ThreadedEngine struct {
	Machine *platform.Machine
	Sched   Scheduler
	// History, when non-nil, receives observed execution times
	// (normalized by the unit speed factor) so schedulers estimate from
	// real measurements on subsequent runs. Only successful attempts
	// are recorded.
	History *perfmodel.History
	// Probe, when non-nil, receives scheduler decision events and
	// engine progress counters (internal/obs), stamped with wall-clock
	// seconds since run start. Unlike the simulator there is no
	// linearization sequencer, so Seq stamps are 0 and the event order
	// is only as deterministic as the goroutine schedule.
	Probe obs.Probe
	// Faults, when non-nil and non-empty, is the fault plan a
	// controller goroutine applies during Run: worker kills
	// (wall-clock timers; the kernel running across a kill has its
	// completion discarded and the task retries elsewhere) and
	// slowdown windows (kernels starting inside a window are stretched
	// by its factor). Transfer failures do not apply — this engine has
	// no transfer model.
	Faults *fault.Plan
}

// NewThreadedEngine builds a threaded engine for machine m driving
// scheduler s. It returns an error — rather than panicking deep inside
// Run — when either is nil.
func NewThreadedEngine(m *platform.Machine, s Scheduler, opts ...Option) (*ThreadedEngine, error) {
	if m == nil {
		return nil, errors.New("runtime: NewThreadedEngine: nil machine")
	}
	if s == nil {
		return nil, errors.New("runtime: NewThreadedEngine: nil scheduler")
	}
	cfg := BuildRunConfig(opts)
	return &ThreadedEngine{
		Machine: m,
		Sched:   s,
		History: cfg.History,
		Probe:   cfg.Probe,
		Faults:  cfg.Faults,
	}, nil
}

// ErrStarved is returned when every worker is idle, no task is running,
// no retry is pending, unfinished tasks remain, and the scheduler still
// refuses to hand out work: a livelocked policy.
var ErrStarved = errors.New("runtime: scheduler starved all workers with tasks remaining")

// Run executes the graph and reports the run. It implements Engine.
func (e *ThreadedEngine) Run(g *Graph) (*Result, error) {
	if e.Machine == nil {
		return nil, errors.New("runtime: ThreadedEngine.Run: nil machine (use NewThreadedEngine)")
	}
	if e.Sched == nil {
		return nil, errors.New("runtime: ThreadedEngine.Run: nil scheduler (use NewThreadedEngine)")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	env := NewEnv(e.Machine, g)
	start := time.Now()
	now := func() float64 { return time.Since(start).Seconds() }
	env.Now = now
	if e.History != nil {
		env.Model = e.History
	}
	plan := e.Faults
	if plan.Empty() {
		plan = nil
	}
	if plan != nil && plan.ModelNoise > 0 {
		env.Model = fault.NoisyEstimator{Base: env.Model, Rel: plan.ModelNoise, Seed: plan.NoiseSeed}
	}
	env.Probe = e.Probe
	e.Sched.Init(env)

	var (
		mu        sync.Mutex
		cond      = sync.Cond{L: &mu}
		remaining = len(g.Tasks)
		running   int
		failed    error
		finished  bool
		// nilStreak counts consecutive failed pops with no intervening
		// activity (successful pop, completion, or push). When every
		// live worker has failed in a row while nothing runs and no
		// retry is pending, the policy is genuinely starving the
		// engine — a single worker's empty queue is not enough
		// (per-worker-queue policies like dmdas map tasks to specific
		// workers).
		nilStreak int
		// pushed/popped/done feed the engine progress counters; they
		// are only maintained while a probe is attached and, like the
		// scheduler state, are guarded by mu.
		pushed, popped, done int

		// Fault state (guarded by mu).
		dead           []bool
		liveWorkers    = len(e.Machine.Units)
		pendingRetries int
		attempts       map[int64]int
		failedSpans    []trace.Span
		fstats         FaultStats
	)
	dead = make([]bool, len(e.Machine.Units))
	if plan != nil {
		attempts = make(map[int64]int)
	}
	// noteProgress samples submitted/ready/running/completed. Callers
	// hold mu.
	noteProgress := func() {
		if e.Probe == nil {
			return
		}
		at := now()
		e.Probe.Counter("runtime.submitted", at, 0, float64(pushed))
		e.Probe.Counter("runtime.ready", at, 0, float64(pushed-popped))
		e.Probe.Counter("runtime.running", at, 0, float64(running))
		e.Probe.Counter("runtime.completed", at, 0, float64(done))
	}
	workers := make([]WorkerInfo, len(e.Machine.Units))
	for i, u := range e.Machine.Units {
		workers[i] = WorkerInfo{ID: platform.UnitID(i), Arch: u.Arch, Mem: u.Mem}
	}

	// The fault controller: one timer per kill event. Slowdowns need no
	// controller — the factor is computed from the plan windows at each
	// kernel start.
	var timers []*time.Timer // guarded by mu after the workers start
	if plan != nil {
		for _, ev := range plan.Kills() {
			ev := ev
			timers = append(timers, time.AfterFunc(time.Duration(ev.At*float64(time.Second)), func() {
				mu.Lock()
				if finished || failed != nil || dead[ev.Worker] {
					mu.Unlock()
					return
				}
				dead[ev.Worker] = true
				liveWorkers--
				fstats.Kills++
				fstats.AppliedKills = append(fstats.AppliedKills, AppliedKill{Unit: ev.Worker, At: now()})
				// Publishing the live view under mu serializes
				// concurrent kill timers' copy-on-write updates.
				env.MarkWorkerDown(ev.Worker)
				nilStreak = 0
				mu.Unlock()
				if fo, ok := e.Sched.(FaultObserver); ok {
					fo.WorkerDown(workers[ev.Worker])
				}
				cond.Broadcast()
			}))
		}
	}

	for _, t := range g.Roots(nil) {
		t.ReadyAt = 0
		e.Sched.Push(t)
		pushed++
	}
	noteProgress()

	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w WorkerInfo) {
			defer wg.Done()
			for {
				mu.Lock()
				var t *Task
				for {
					if remaining == 0 || failed != nil {
						mu.Unlock()
						cond.Broadcast()
						return
					}
					if dead[w.ID] {
						mu.Unlock()
						return
					}
					t = e.Sched.Pop(w)
					if t != nil {
						nilStreak = 0
						popped++
						break
					}
					nilStreak++
					if nilStreak >= liveWorkers && running == 0 && pendingRetries == 0 {
						failed = fmt.Errorf("%w (%d tasks left)", ErrStarved, remaining)
						mu.Unlock()
						cond.Broadcast()
						return
					}
					cond.Wait()
				}
				running++
				noteProgress()
				mu.Unlock()

				dur, slowed := e.execute(t, w, now, plan)

				mu.Lock()
				if slowed {
					fstats.Slowdowns++
				}
				if dead[w.ID] {
					// The worker was killed while the kernel ran: its
					// completion is discarded — no successor releases,
					// no progress — and the task rolls back for a
					// retry elsewhere, after a backoff proportional to
					// its attempt count.
					running--
					fstats.Retries++
					failedSpans = append(failedSpans, trace.Span{
						Worker: w.ID, TaskID: t.ID, Kind: t.Kind,
						Start: t.StartAt, End: t.EndAt, Failed: true,
					})
					attempts[t.ID]++
					n := attempts[t.ID]
					if n > plan.RetryCap() {
						failed = fmt.Errorf("runtime: task %d exceeded %d retries", t.ID, plan.RetryCap())
						mu.Unlock()
						cond.Broadcast()
						return
					}
					pendingRetries++
					noteProgress()
					delay := time.Duration(float64(n) * plan.RetryBackoff() * float64(time.Second))
					task := t
					timers = append(timers, time.AfterFunc(delay, func() {
						mu.Lock()
						pendingRetries--
						if finished || failed != nil {
							mu.Unlock()
							return
						}
						mu.Unlock()
						task.ResetForRetry()
						task.ReadyAt = now()
						e.Sched.Push(task)
						mu.Lock()
						pushed++
						nilStreak = 0
						noteProgress()
						mu.Unlock()
						cond.Broadcast()
					}))
					mu.Unlock()
					cond.Broadcast()
					return // the killed worker exits
				}
				running--
				remaining--
				done++
				mu.Unlock()

				if e.History != nil {
					d := dur
					sf := e.Machine.Units[w.ID].SpeedFactor
					if sf > 0 {
						d /= sf
					}
					e.History.Record(t.Kind, w.Arch, t.Footprint, d)
				}
				released := 0
				for _, s := range t.Succs() {
					if s.ReleaseDep() {
						s.ReadyAt = now()
						e.Sched.Push(s)
						released++
					}
				}
				e.Sched.TaskDone(t, w)
				mu.Lock()
				nilStreak = 0 // new work may be visible: reprobe everywhere
				pushed += released
				noteProgress()
				mu.Unlock()
				cond.Broadcast()
			}
		}(w)
	}
	wg.Wait()
	mu.Lock()
	finished = true
	stale := timers
	timers = nil
	mu.Unlock()
	for _, tm := range stale {
		tm.Stop()
	}

	if failed != nil {
		return nil, failed
	}
	if remaining > 0 {
		return nil, fmt.Errorf("runtime: %d tasks unfinished with no live workers able to run them", remaining)
	}

	tr := TraceFromGraph(e.Machine, g)
	// Failed attempts are appended after the successful spans, ordered
	// by (Start, TaskID) for a stable encoding.
	sort.Slice(failedSpans, func(i, j int) bool {
		if failedSpans[i].Start != failedSpans[j].Start {
			return failedSpans[i].Start < failedSpans[j].Start
		}
		return failedSpans[i].TaskID < failedSpans[j].TaskID
	})
	for _, s := range failedSpans {
		tr.AddSpan(s)
	}
	return &Result{
		Makespan: now(),
		Trace:    tr,
		Workers:  WorkerStatsFromTrace(e.Machine, tr, fstats.AppliedKills),
		Faults:   fstats,
	}, nil
}

// execute runs the kernel under the task's commute locks and returns
// the kernel duration (before any injected slowdown stretch) plus
// whether a slowdown window stretched it.
func (e *ThreadedEngine) execute(t *Task, w WorkerInfo, now func() float64, plan *fault.Plan) (dur float64, slowed bool) {
	unlock := t.LockCommute()
	t.StartAt = now()
	t.RanOn = w.ID
	if t.Run != nil {
		t.Run(w)
	}
	dur = now() - t.StartAt
	if plan != nil {
		if f := plan.SlowFactorAt(w.ID, t.StartAt); f > 1 {
			// A slowed worker takes (f-1)×dur longer; the stretch
			// happens inside the commute region like the kernel itself.
			time.Sleep(time.Duration((f - 1) * dur * float64(time.Second)))
			slowed = true
		}
	}
	// The end-of-execution record must close before the commute locks
	// release: the next commuting updater stamps its StartAt as soon as
	// it acquires the lock, and exclusivity is judged on these records.
	t.EndAt = now()
	unlock()
	return dur, slowed
}
