package runtime

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"multiprio/internal/fault"
	"multiprio/internal/obs"
	"multiprio/internal/perfmodel"
	"multiprio/internal/platform"
	"multiprio/internal/spec"
	"multiprio/internal/trace"
)

// ThreadedEngine executes a Graph with real goroutine workers, one per
// processing unit of the machine description. It is the "this is a real
// task runtime" engine: kernels are ordinary Go functions and times are
// wall-clock. Heterogeneous experiments use the simulator in
// internal/sim instead; both engines drive the same Scheduler
// implementations and both implement the Engine interface.
//
// Construct with NewThreadedEngine. The exported fields remain for
// transparency and tests; engines built as bare literals are validated
// at Run.
type ThreadedEngine struct {
	Machine *platform.Machine
	Sched   Scheduler
	// History, when non-nil, receives observed execution times
	// (normalized by the unit speed factor) so schedulers estimate from
	// real measurements on subsequent runs. Only successful attempts
	// are recorded.
	History *perfmodel.History
	// Probe, when non-nil, receives scheduler decision events and
	// engine progress counters (internal/obs), stamped with wall-clock
	// seconds since run start. Unlike the simulator there is no
	// linearization sequencer, so Seq stamps are 0 and the event order
	// is only as deterministic as the goroutine schedule.
	Probe obs.Probe
	// Faults, when non-nil and non-empty, is the fault plan a
	// controller goroutine applies during Run: worker kills
	// (wall-clock timers; the kernel running across a kill has its
	// completion discarded and the task retries elsewhere) and
	// slowdown windows (kernels starting inside a window are stretched
	// by its factor). Transfer failures do not apply — this engine has
	// no transfer model. The plan's Speculation policy enables
	// straggler mitigation: a monitor goroutine flags attempts running
	// past slack × expected duration and replicates them through the
	// normal Push path; goroutines cannot be preempted, so the losing
	// attempt runs to completion and its completion is discarded —
	// the same mechanism kill timers use.
	Faults *fault.Plan
	// Watchdog, when armed, aborts a run still incomplete after the
	// wall-clock deadline with ErrWatchdog and dumps diagnostics. The
	// goroutine of a truly wedged kernel cannot be killed and is
	// leaked; the dump is the product, the process is presumed doomed.
	Watchdog Watchdog
	// Arrivals, when non-nil, makes the run a streaming run: entry i is
	// the wall-clock submission instant of task i (seconds since run
	// start), applied with timers — a task is pushed to the scheduler
	// only once both its dependencies are released and its arrival
	// instant has passed. The starvation detector treats pending
	// arrivals like pending retries: an idle machine waiting for work
	// to arrive is not a livelocked policy.
	Arrivals []float64
	// Observer, when non-nil, receives the run lifecycle (RunStart /
	// RunEnd) and every probe event, fanned in beside Probe. The
	// telemetry layer implements it to serve live metrics off a
	// long-running streamed workload.
	Observer RunObserver
}

// NewThreadedEngine builds a threaded engine for machine m driving
// scheduler s. It returns an error — rather than panicking deep inside
// Run — when either is nil.
func NewThreadedEngine(m *platform.Machine, s Scheduler, opts ...Option) (*ThreadedEngine, error) {
	if m == nil {
		return nil, errors.New("runtime: NewThreadedEngine: nil machine")
	}
	if s == nil {
		return nil, errors.New("runtime: NewThreadedEngine: nil scheduler")
	}
	cfg := BuildRunConfig(opts)
	return &ThreadedEngine{
		Machine:  m,
		Sched:    s,
		History:  cfg.History,
		Probe:    cfg.Probe,
		Faults:   cfg.Faults,
		Watchdog: cfg.Watchdog,
		Arrivals: cfg.Arrivals,
		Observer: cfg.Observer,
	}, nil
}

// ErrStarved is returned when every worker is idle, no task is running,
// no retry is pending, unfinished tasks remain, and the scheduler still
// refuses to hand out work: a livelocked policy.
var ErrStarved = errors.New("runtime: scheduler starved all workers with tasks remaining")

// taskRun is one in-flight execution attempt: the monitor judges
// straggling against it, the watchdog dump lists it, and the completion
// path carries its private stamps (per-attempt, because speculation
// runs concurrent attempts of one task which must not race on the
// shared Task fields; the effective attempt commits them).
type taskRun struct {
	t *Task
	w WorkerInfo
	// replica marks a speculative replica attempt.
	replica bool
	// start is when the attempt was popped (wall seconds since run
	// start); startAt/endAt bracket the kernel itself.
	start    float64
	expected float64
	startAt  float64
	endAt    float64
}

// Run executes the graph and reports the run. It implements Engine.
func (e *ThreadedEngine) Run(g *Graph) (*Result, error) {
	if e.Observer == nil || e.Machine == nil || e.Sched == nil {
		// Nil-field literals fall through to run's validation errors.
		return e.run(g)
	}
	e.Observer.RunStart(RunInfo{
		Machine: e.Machine, Tasks: len(g.Tasks),
		Scheduler: e.Sched.Name(), Engine: "threaded",
	})
	res, err := e.run(g)
	e.Observer.RunEnd(res, err)
	return res, err
}

// run is the engine body behind the observer lifecycle wrapper.
func (e *ThreadedEngine) run(g *Graph) (*Result, error) {
	if e.Machine == nil {
		return nil, errors.New("runtime: ThreadedEngine.Run: nil machine (use NewThreadedEngine)")
	}
	if e.Sched == nil {
		return nil, errors.New("runtime: ThreadedEngine.Run: nil scheduler (use NewThreadedEngine)")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := ValidateArrivals(e.Arrivals, g); err != nil {
		return nil, err
	}
	env := NewEnv(e.Machine, g)
	start := time.Now()
	now := func() float64 { return time.Since(start).Seconds() }
	env.Now = now
	if e.History != nil {
		env.Model = e.History
	}
	plan := e.Faults
	if plan.Empty() {
		plan = nil
	}
	if plan != nil && plan.ModelNoise > 0 {
		env.Model = fault.NoisyEstimator{Base: env.Model, Rel: plan.ModelNoise, Seed: plan.NoiseSeed}
	}
	probe := e.Probe
	if e.Observer != nil {
		probe = obs.Combine(probe, e.Observer)
	}
	var wdTail *DecisionTail
	if e.Watchdog.Armed() {
		wdTail = NewDecisionTail(e.Watchdog.TailLen())
		probe = WatchdogProbe(probe, wdTail)
	}
	env.Probe = probe
	e.Sched.Init(env)

	var ctl *spec.Controller
	if plan != nil && plan.SpecPolicy().Enabled {
		// All controller calls happen under mu; the zero seq matches the
		// engine's unsequenced probes.
		ctl = spec.New(plan.SpecPolicy(), probe, now, nil)
	}
	trackRuns := ctl != nil || e.Watchdog.Armed()

	var (
		mu        sync.Mutex
		cond      = sync.Cond{L: &mu}
		remaining = len(g.Tasks)
		running   int
		failed    error
		finished  bool
		// nilStreak counts consecutive failed pops with no intervening
		// activity (successful pop, completion, or push). When every
		// live worker has failed in a row while nothing runs and no
		// retry is pending, the policy is genuinely starving the
		// engine — a single worker's empty queue is not enough
		// (per-worker-queue policies like dmdas map tasks to specific
		// workers).
		nilStreak int
		// pushGen increments whenever new work may have become visible
		// to the schedulers (a push, or a fault reshuffling queues).
		// Workers snapshot it before releasing mu to Pop — schedulers
		// synchronize internally, Push already runs without mu — so the
		// engine lock no longer serializes every Pop. A worker whose
		// Pop came back empty only waits (or counts a starvation
		// strike) if the generation is unchanged, closing the classic
		// lost-wakeup window between its unlocked Pop and its Wait.
		pushGen uint64
		// pushed/popped/done feed the engine progress counters; they
		// are only maintained while a probe is attached and, like the
		// scheduler state, are guarded by mu.
		pushed, popped, done int

		// Fault state (guarded by mu).
		dead           []bool
		liveWorkers    = len(e.Machine.Units)
		pendingRetries int
		// pendingArrivals counts streaming tasks whose dependencies are
		// released but whose arrival timer has not fired yet (guarded by
		// mu); like pendingRetries it suppresses the starvation error.
		pendingArrivals int
		attempts        map[int64]int
		extraSpans      []trace.Span // failed and cancelled attempts
		fstats          FaultStats

		// Speculation/watchdog state (guarded by mu): the in-flight
		// attempts, and per task how many are in flight.
		runs         map[*taskRun]struct{}
		liveAttempts map[int64]int
	)
	dead = make([]bool, len(e.Machine.Units))
	if plan != nil {
		attempts = make(map[int64]int)
	}
	if trackRuns {
		runs = make(map[*taskRun]struct{})
		liveAttempts = make(map[int64]int)
	}
	// noteProgress samples submitted/ready/running/completed. Callers
	// hold mu.
	noteProgress := func() {
		if probe == nil {
			return
		}
		at := now()
		probe.Counter("runtime.submitted", at, 0, float64(pushed))
		probe.Counter("runtime.ready", at, 0, float64(pushed-popped))
		probe.Counter("runtime.running", at, 0, float64(running))
		probe.Counter("runtime.completed", at, 0, float64(done))
	}
	workers := make([]WorkerInfo, len(e.Machine.Units))
	for i, u := range e.Machine.Units {
		workers[i] = WorkerInfo{ID: platform.UnitID(i), Arch: u.Arch, Mem: u.Mem}
	}

	// The fault controller: one timer per kill event. Slowdowns need no
	// controller — the factor is computed from the plan windows at each
	// kernel start.
	var timers []*time.Timer // guarded by mu after the workers start
	if plan != nil {
		for _, ev := range plan.Kills() {
			ev := ev
			timers = append(timers, time.AfterFunc(time.Duration(ev.At*float64(time.Second)), func() {
				mu.Lock()
				if finished || failed != nil || dead[ev.Worker] {
					mu.Unlock()
					return
				}
				dead[ev.Worker] = true
				liveWorkers--
				fstats.Kills++
				fstats.AppliedKills = append(fstats.AppliedKills, AppliedKill{Unit: ev.Worker, At: now()})
				// Publishing the live view under mu serializes
				// concurrent kill timers' copy-on-write updates.
				env.MarkWorkerDown(ev.Worker)
				nilStreak = 0
				pushGen++ // WorkerDown may reshuffle queued tasks
				mu.Unlock()
				if fo, ok := e.Sched.(FaultObserver); ok {
					fo.WorkerDown(workers[ev.Worker])
				}
				cond.Broadcast()
			}))
		}
	}

	arrivalOf := func(t *Task) float64 {
		if e.Arrivals == nil {
			return 0
		}
		return e.Arrivals[t.ID]
	}
	// scheduleArrival parks a dependency-released task until its
	// wall-clock arrival instant, then pushes it through the normal
	// scheduler path. Callers must not hold mu.
	scheduleArrival := func(t *Task, at float64) {
		mu.Lock()
		pendingArrivals++
		timers = append(timers, time.AfterFunc(time.Duration((at-now())*float64(time.Second)), func() {
			mu.Lock()
			pendingArrivals--
			if finished || failed != nil {
				mu.Unlock()
				return
			}
			mu.Unlock()
			t.ReadyAt = now()
			e.Sched.Push(t)
			mu.Lock()
			pushed++
			nilStreak = 0
			pushGen++
			noteProgress()
			mu.Unlock()
			cond.Broadcast()
		}))
		mu.Unlock()
	}

	for _, t := range g.Roots(nil) {
		if at := arrivalOf(t); at > 0 {
			scheduleArrival(t, at)
			continue
		}
		t.ReadyAt = 0
		e.Sched.Push(t)
		pushed++
	}
	noteProgress()

	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w WorkerInfo) {
			defer wg.Done()
			for {
				mu.Lock()
				var t *Task
				var ra *taskRun
				for {
					if remaining == 0 || failed != nil {
						mu.Unlock()
						cond.Broadcast()
						return
					}
					if dead[w.ID] {
						mu.Unlock()
						return
					}
					// Pop without holding the engine lock: at high
					// fan-out the schedulers' own sharded or per-worker
					// structures can serve concurrent pops, and holding
					// mu across Pop serialized all of them. The
					// generation snapshot detects pushes that landed
					// while mu was released.
					gen := pushGen
					mu.Unlock()
					t = e.Sched.Pop(w)
					mu.Lock()
					if t != nil {
						nilStreak = 0
						popped++
						if ctl != nil && ctl.Done(t.ID) {
							// Stale speculative replica: another attempt
							// completed while this copy sat in the
							// scheduler's queue. Discard it unrun and
							// probe again.
							t = nil
							continue
						}
						break
					}
					if pushGen != gen {
						// Work arrived while the lock was released: the
						// empty pop is stale, probe again without
						// counting a starvation strike or waiting.
						continue
					}
					nilStreak++
					if nilStreak >= liveWorkers && running == 0 && pendingRetries == 0 && pendingArrivals == 0 {
						failed = fmt.Errorf("%w (%d tasks left)", ErrStarved, remaining)
						mu.Unlock()
						cond.Broadcast()
						return
					}
					cond.Wait()
				}
				running++
				if trackRuns {
					ra = &taskRun{t: t, w: w, start: now()}
					if ctl != nil {
						ra.replica = liveAttempts[t.ID] > 0
						ra.expected = e.expectedDur(env, t, w)
					}
					runs[ra] = struct{}{}
					liveAttempts[t.ID]++
				}
				noteProgress()
				mu.Unlock()

				dur, slowed, startAt, endAt := e.execute(t, w, now, plan)

				mu.Lock()
				if ra != nil {
					ra.startAt, ra.endAt = startAt, endAt
					delete(runs, ra)
					liveAttempts[t.ID]--
					if liveAttempts[t.ID] == 0 {
						delete(liveAttempts, t.ID)
					}
				}
				if slowed {
					fstats.Slowdowns++
				}
				if failed != nil {
					// The run already aborted (watchdog, starvation, retry
					// budget): discard the completion, it will not be
					// reported.
					mu.Unlock()
					return
				}
				if dead[w.ID] {
					// The worker was killed while the kernel ran: its
					// completion is discarded — no successor releases,
					// no progress — and the task rolls back for a
					// retry elsewhere (unless a speculative sibling
					// attempt is carrying it, or it already finished).
					running--
					extraSpans = append(extraSpans, trace.Span{
						Worker: w.ID, TaskID: t.ID, Kind: t.Kind,
						Start: startAt, End: endAt, Failed: true,
					})
					if ctl != nil && (ctl.Done(t.ID) || liveAttempts[t.ID] > 0) {
						// No retry needed: the task completed elsewhere or
						// a live sibling is still running it.
						noteProgress()
						mu.Unlock()
						cond.Broadcast()
						return
					}
					fstats.Retries++
					attempts[t.ID]++
					n := attempts[t.ID]
					if n > plan.RetryCap() {
						failed = fmt.Errorf("runtime: task %d exceeded %d retries", t.ID, plan.RetryCap())
						mu.Unlock()
						cond.Broadcast()
						return
					}
					if ctl != nil {
						ctl.Retired(t.ID) // restarting from scratch: budget returns
					}
					pendingRetries++
					noteProgress()
					delay := time.Duration(plan.RetryDelay(t.ID, n) * float64(time.Second))
					task := t
					timers = append(timers, time.AfterFunc(delay, func() {
						mu.Lock()
						pendingRetries--
						if finished || failed != nil {
							mu.Unlock()
							return
						}
						mu.Unlock()
						task.ResetForRetry()
						task.ReadyAt = now()
						e.Sched.Push(task)
						mu.Lock()
						pushed++
						nilStreak = 0
						pushGen++
						noteProgress()
						mu.Unlock()
						cond.Broadcast()
					}))
					mu.Unlock()
					cond.Broadcast()
					return // the killed worker exits
				}
				if ctl != nil && !ctl.Effective(t.ID, ra.replica) {
					// First-success-wins: another attempt of this task
					// completed first. This one's completion is discarded
					// — no successor releases, no TaskDone — and its span
					// is recorded as cancelled. Its writes were to
					// task-private Go values; nothing published.
					running--
					nilStreak = 0
					extraSpans = append(extraSpans, trace.Span{
						Worker: w.ID, TaskID: t.ID, Kind: t.Kind,
						Start: startAt, End: endAt, Cancelled: true,
					})
					ctl.CancelAttempt(t.ID, endAt-startAt)
					noteProgress()
					mu.Unlock()
					cond.Broadcast()
					continue
				}
				// Effective completion: commit this attempt's stamps to
				// the shared task record (under mu — the monitor's
				// ResetForRetry writes the same fields).
				t.StartAt = startAt
				t.EndAt = endAt
				t.RanOn = w.ID
				running--
				remaining--
				done++
				if probe != nil {
					probe.Decision(obs.Decision{
						Kind: obs.TaskDone, At: endAt, Task: t.ID,
						Worker: int(w.ID), Mem: int(w.Mem), Arch: int(w.Arch),
						A: startAt, B: t.ReadyAt,
					})
				}
				mu.Unlock()

				if e.History != nil {
					d := dur
					sf := e.Machine.Units[w.ID].SpeedFactor
					if sf > 0 {
						d /= sf
					}
					e.History.Record(t.Kind, w.Arch, t.Footprint, d)
				}
				released := 0
				for _, s := range t.Succs() {
					if s.ReleaseDep() {
						if at := arrivalOf(s); at > now() {
							// Dependencies done but the tenant has not
							// submitted the task yet: park it on a timer.
							scheduleArrival(s, at)
							continue
						}
						s.ReadyAt = now()
						e.Sched.Push(s)
						released++
					}
				}
				e.Sched.TaskDone(t, w)
				mu.Lock()
				nilStreak = 0 // new work may be visible: reprobe everywhere
				pushGen++
				pushed += released
				noteProgress()
				mu.Unlock()
				cond.Broadcast()
			}
		}(w)
	}

	// The speculation monitor: scan in-flight attempts at the policy
	// interval, flag stragglers, and push replicas through the normal
	// scheduler path.
	monitorDone := make(chan struct{})
	stopMonitor := make(chan struct{})
	if ctl != nil {
		go func() {
			defer close(monitorDone)
			tick := time.NewTicker(time.Duration(ctl.Policy().Interval() * float64(time.Second)))
			defer tick.Stop()
			for {
				select {
				case <-stopMonitor:
					return
				case <-tick.C:
				}
				var relaunch []*Task
				mu.Lock()
				if finished || failed != nil {
					mu.Unlock()
					return
				}
				at := now()
				for ra := range runs {
					if ctl.Done(ra.t.ID) || !ctl.Eligible(ra.expected) ||
						!ctl.Straggling(at-ra.start, ra.expected) {
						continue
					}
					if !ctl.TryFlag(ra.t.ID) {
						continue
					}
					// Reset under mu: the same fields are committed under
					// mu by the winning attempt.
					ra.t.ResetForRetry()
					relaunch = append(relaunch, ra.t)
				}
				mu.Unlock()
				if len(relaunch) == 0 {
					continue
				}
				for _, t := range relaunch {
					t.ReadyAt = now()
					e.Sched.Push(t)
				}
				mu.Lock()
				pushed += len(relaunch)
				nilStreak = 0
				pushGen++
				noteProgress()
				mu.Unlock()
				cond.Broadcast()
			}
		}()
	} else {
		close(monitorDone)
	}

	// The watchdog: a wedged kernel cannot be preempted, so completion
	// is awaited on a channel and the watchdog path abandons the
	// workers instead of joining them.
	workersDone := make(chan struct{})
	go func() { wg.Wait(); close(workersDone) }()
	wdFired := make(chan struct{})
	var wdTimer *time.Timer
	if e.Watchdog.Armed() {
		wdTimer = time.AfterFunc(e.Watchdog.Deadline, func() {
			mu.Lock()
			if finished || failed != nil {
				mu.Unlock()
				return
			}
			failed = fmt.Errorf("runtime: %w after %v (%d tasks left, %d running, scheduler %s)",
				ErrWatchdog, e.Watchdog.Deadline, remaining, running, e.Sched.Name())
			e.dumpWatchdog(wdTail, now(), remaining, running, dead, runs)
			mu.Unlock()
			cond.Broadcast()
			close(wdFired)
		})
	}

	aborted := false
	select {
	case <-workersDone:
	case <-wdFired:
		// Workers stuck inside kernels never exit; abandon them. Their
		// completion paths see failed != nil and discard themselves.
		aborted = true
	}
	if ctl != nil && !aborted {
		close(stopMonitor)
		<-monitorDone
	}
	mu.Lock()
	finished = true
	stale := timers
	timers = nil
	err := failed
	mu.Unlock()
	for _, tm := range stale {
		tm.Stop()
	}
	if wdTimer != nil {
		wdTimer.Stop()
	}

	if err != nil {
		return nil, err
	}
	if remaining > 0 {
		return nil, fmt.Errorf("runtime: %d tasks unfinished with no live workers able to run them", remaining)
	}
	if ctl != nil {
		// Launching a replica clears its task's claim (ResetForRetry) so
		// a worker could pop the copy. A replica still queued when its
		// task won stays claimable until the run ends — schedulers panic
		// on claimed tasks in their queues — so the winner's claim is
		// re-asserted only now, with every worker joined.
		for _, t := range g.Tasks {
			if !t.Claimed() {
				t.TryClaim()
			}
		}
	}

	tr := TraceFromGraph(e.Machine, g)
	// Failed and cancelled attempts are appended after the successful
	// spans, ordered by (Start, TaskID) for a stable encoding.
	sort.Slice(extraSpans, func(i, j int) bool {
		if extraSpans[i].Start != extraSpans[j].Start {
			return extraSpans[i].Start < extraSpans[j].Start
		}
		return extraSpans[i].TaskID < extraSpans[j].TaskID
	})
	for _, s := range extraSpans {
		tr.AddSpan(s)
	}
	res := &Result{
		Makespan: now(),
		Trace:    tr,
		Workers:  WorkerStatsFromTrace(e.Machine, tr, fstats.AppliedKills),
		Faults:   fstats,
	}
	if ctl != nil {
		res.Spec = ctl.Stats
	}
	res.Stream = StreamStatsOf(e.Sched)
	return res, nil
}

// expectedDur returns the scheduler-visible expected duration of t on
// worker w: the model's per-arch estimate scaled by the unit's speed
// factor. Tasks without a finite model estimate return 0 and are never
// speculated (their "expected" is unknowable).
func (e *ThreadedEngine) expectedDur(env *Env, t *Task, w WorkerInfo) float64 {
	d := env.Delta(t, w.Arch)
	if d <= 0 || d != d || d > 1e18 { // NaN / +Inf guard without importing math
		return 0
	}
	return d * e.Machine.Units[w.ID].SpeedFactor
}

// dumpWatchdog writes the wedged-run diagnostics. Caller holds mu.
func (e *ThreadedEngine) dumpWatchdog(tail *DecisionTail, at float64, remaining, running int, dead []bool, runs map[*taskRun]struct{}) {
	w := e.Watchdog.Output()
	fmt.Fprintf(w, "runtime watchdog: no completion after %v wall time\n", e.Watchdog.Deadline)
	fmt.Fprintf(w, "  t=%.3fs tasks-left=%d running=%d scheduler=%s\n", at, remaining, running, e.Sched.Name())
	current := make(map[platform.UnitID]*taskRun)
	for ra := range runs {
		current[ra.w.ID] = ra
	}
	for i, u := range e.Machine.Units {
		state := "idle"
		switch {
		case dead[i]:
			state = "dead"
		case current[platform.UnitID(i)] != nil:
			ra := current[platform.UnitID(i)]
			state = fmt.Sprintf("running task %d (%s) for %.3fs", ra.t.ID, ra.t.Kind, at-ra.start)
		}
		fmt.Fprintf(w, "  worker %-12s %s\n", u.Name, state)
	}
	fmt.Fprintln(w, "  decision tail (oldest first):")
	if tail != nil {
		tail.Dump(indentWriter{w})
	}
}

// indentWriter prefixes each Write with two spaces (the tail writer
// emits one line per call).
type indentWriter struct{ w interface{ Write([]byte) (int, error) } }

func (i indentWriter) Write(p []byte) (int, error) {
	if _, err := i.w.Write([]byte("  ")); err != nil {
		return 0, err
	}
	return i.w.Write(p)
}

// execute runs the kernel under the task's commute locks and returns
// the kernel duration (before any injected slowdown stretch), whether a
// slowdown window stretched it, and the attempt's private start/end
// stamps. The stamps stay off the shared Task fields because
// speculation runs concurrent attempts of one task; the effective
// attempt commits them under the run lock.
func (e *ThreadedEngine) execute(t *Task, w WorkerInfo, now func() float64, plan *fault.Plan) (dur float64, slowed bool, startAt, endAt float64) {
	unlock := t.LockCommute()
	startAt = now()
	if t.Run != nil {
		t.Run(w)
	}
	dur = now() - startAt
	if plan != nil {
		if f := plan.SlowFactorAt(w.ID, startAt); f > 1 {
			// A slowed worker takes (f-1)×dur longer; the stretch
			// happens inside the commute region like the kernel itself.
			time.Sleep(time.Duration((f - 1) * dur * float64(time.Second)))
			slowed = true
		}
	}
	// The end-of-execution record must close before the commute locks
	// release: the next commuting updater stamps its StartAt as soon as
	// it acquires the lock, and exclusivity is judged on these records.
	endAt = now()
	unlock()
	return dur, slowed, startAt, endAt
}
