package runtime

import (
	"fmt"
	"io"
	"math"
	"time"

	"multiprio/internal/fault"
	"multiprio/internal/obs"
	"multiprio/internal/perfmodel"
	"multiprio/internal/platform"
	"multiprio/internal/spec"
	"multiprio/internal/trace"
)

// Engine is the unified entry point of both execution engines: the
// discrete-event simulator (internal/sim) and the threaded engine in
// this package. Engines are built once with symmetric constructors
// (sim.NewEngine, NewThreadedEngine) plus functional options, and each
// Run executes one graph and reports a Result.
type Engine interface {
	// Run executes the graph to completion (or failure) and reports the
	// run. The graph must be freshly built or ResetRun.
	Run(g *Graph) (*Result, error)
}

// Result reports one finished run, for either engine. Fields an engine
// does not produce stay at their zero values (the threaded engine has no
// transfers or memory events; times are wall-clock there, virtual in the
// simulator).
type Result struct {
	// Makespan is the completion time of the last task, in seconds.
	Makespan float64
	// Trace holds every execution span (including failed attempts),
	// transfer, and — when enabled — memory event of the run.
	Trace *trace.Trace
	// OverflowBytes counts allocations accepted beyond a memory node's
	// capacity (memory pressure indicator), per node. Simulator only.
	OverflowBytes []int64
	// Events is the number of discrete events processed (simulator
	// only).
	Events int64
	// Workers reports per-worker execution statistics.
	Workers []WorkerStat
	// Faults summarizes injected faults and the recovery work they
	// caused. All-zero for fault-free runs.
	Faults FaultStats
	// Spec summarizes speculation activity (straggler replication).
	// All-zero when the plan's speculation policy is disabled.
	Spec spec.Stats
	// Stream summarizes per-tenant admission activity when the run's
	// scheduler (or a wrapper around it, like stream.Fair) implements
	// StreamStatsReporter; nil otherwise. Both engines populate it, so
	// telemetry and experiments read admission statistics off the Result
	// instead of reaching into the scheduler.
	Stream *StreamStats
}

// StreamStats is the per-tenant admission summary of a streaming run,
// the engine-agnostic form of stream.FairStats. Slices are indexed by
// tenant; Tenants carries the display labels.
type StreamStats struct {
	// Tenants are the tenant display names, index-aligned with the
	// counters below.
	Tenants []string
	// Admitted counts first admissions per tenant (retry re-pushes
	// excluded).
	Admitted []int
	// Deferred counts admissions that waited in the tenant's pending
	// queue behind its in-flight limit.
	Deferred []int
	// MaxPending is the high-water mark of each tenant's pending queue.
	MaxPending []int
}

// StreamStatsReporter is implemented by schedulers (or scheduler
// wrappers) that keep per-tenant admission state. Engines query it once
// after a successful run and publish the snapshot on Result.Stream.
type StreamStatsReporter interface {
	StreamStats() StreamStats
}

// StreamStatsOf snapshots the scheduler's admission statistics, or nil
// when the scheduler does not report them. Both engines call it when
// assembling a Result.
func StreamStatsOf(s Scheduler) *StreamStats {
	if r, ok := s.(StreamStatsReporter); ok {
		ss := r.StreamStats()
		return &ss
	}
	return nil
}

// WorkerStat is the per-worker execution summary of a Result.
type WorkerStat struct {
	Unit platform.UnitID
	Name string
	// Busy is the summed span time (successful and failed attempts).
	Busy float64
	// Tasks counts successful task completions.
	Tasks int
	// FailedAttempts counts execution attempts aborted by faults.
	FailedAttempts int
	// CancelledAttempts counts speculation losers run on this worker.
	CancelledAttempts int
	// Dead reports whether the worker was killed by the fault plan.
	Dead bool
}

// AppliedKill records when a KillWorker event actually took effect. In
// the simulator this equals the plan time; in the threaded engine it is
// the wall-clock instant the controller applied it, which the oracle's
// kill checks need because a kernel observed to finish before the
// applied instant legitimately commits.
type AppliedKill struct {
	Unit platform.UnitID
	At   float64
}

// FaultStats summarizes fault injection and recovery over one run.
type FaultStats struct {
	// Kills is the number of worker kills applied.
	Kills int
	// Slowdowns is the number of slowdown windows that affected at
	// least one kernel.
	Slowdowns int
	// TransferFailures counts transfers that failed and were re-issued.
	TransferFailures int
	// Retries counts aborted execution attempts (a kernel was running
	// or its data was staged when the fault hit) that were rolled back
	// and re-pushed.
	Retries int
	// LostReplicas counts device replicas invalidated because their
	// memory node lost its last worker.
	LostReplicas int
	// AppliedKills records each kill as it took effect.
	AppliedKills []AppliedKill
}

// RunConfig collects the engine-agnostic run parameters. Engines read
// the fields they implement and ignore the rest.
type RunConfig struct {
	// Seed drives the engine's own randomness (execution-time noise).
	Seed int64
	// Noise is the relative standard deviation of execution times in
	// the simulator (0 = deterministic kernels).
	Noise float64
	// Estimator is what schedulers see as the performance model. Nil
	// defaults to perfmodel.Oracle.
	Estimator perfmodel.Estimator
	// History, when non-nil, receives every observed execution time.
	History *perfmodel.History
	// CollectMemEvents records replica state changes in the trace for
	// the execution oracle's coherence replay (simulator only).
	CollectMemEvents bool
	// MaxEvents aborts runaway simulations; 0 means a generous default.
	MaxEvents int64
	// Lookahead is the per-worker task pipeline depth of the simulator
	// (one computing plus lookahead-1 staging slots). Default 2.
	Lookahead int
	// CollectTrace keeps transfer spans in the simulator trace. Span and
	// idle accounting are always on; this flag only adds the per-transfer
	// records that the transfer-inspection experiments read.
	CollectTrace bool
	// Probe receives scheduler decision events and engine counters.
	Probe obs.Probe
	// Faults, when non-nil and non-empty, injects the fault plan into
	// the run and enables recovery (rollback + retry). The plan also
	// carries the speculation policy (straggler replication).
	Faults *fault.Plan
	// Watchdog, when its Deadline is set, aborts a wedged run and dumps
	// diagnostics (decision-log tail, per-worker state) instead of
	// letting it hang silently.
	Watchdog Watchdog
	// Arrivals, when non-nil, turns the run into a streaming run: entry
	// i is the submission time of task i (virtual seconds for the
	// simulator, wall-clock seconds for the threaded engine), and the
	// engine never offers a task to the scheduler before both its
	// dependencies are released and its arrival time has passed. Nil —
	// or all zeros — is batch mode: the whole graph is available at
	// t=0. The length must equal the task count.
	Arrivals []float64
	// Observer, when non-nil, receives the run lifecycle: RunStart
	// before the scheduler initializes, every probe event during the
	// run (fanned in beside Probe via obs.Combine), and RunEnd with the
	// Result (or error) once the run finishes. The telemetry layer
	// (internal/telemetry) implements it to keep live metrics and
	// health state without touching any instrumentation site.
	Observer RunObserver
}

// RunInfo describes a run to an observer at RunStart.
type RunInfo struct {
	// Machine is the platform the run executes on.
	Machine *platform.Machine
	// Tasks is the task count of the graph.
	Tasks int
	// Scheduler is the policy name driving the run.
	Scheduler string
	// Engine names the executing engine: "sim" or "threaded".
	Engine string
}

// RunObserver extends obs.Probe with run lifecycle hooks: engines call
// RunStart after validating the graph and RunEnd exactly once per Run
// with the Result (nil on failure) and the run error. Observation must
// stay read-only: the canonical-trace goldens are byte-identical with
// an observer attached, exactly as for plain probes.
type RunObserver interface {
	obs.Probe
	RunStart(info RunInfo)
	RunEnd(res *Result, err error)
}

// Option is a functional option for the engine constructors.
type Option func(*RunConfig)

// WithSeed sets the engine's randomness seed.
func WithSeed(seed int64) Option { return func(c *RunConfig) { c.Seed = seed } }

// WithNoise sets the simulator's relative execution-time noise.
func WithNoise(rel float64) Option { return func(c *RunConfig) { c.Noise = rel } }

// WithEstimator sets the performance model the schedulers see.
func WithEstimator(est perfmodel.Estimator) Option {
	return func(c *RunConfig) { c.Estimator = est }
}

// WithHistory attaches a history recording observed execution times.
func WithHistory(h *perfmodel.History) Option {
	return func(c *RunConfig) { c.History = h }
}

// WithMemEvents enables memory-event collection for the oracle replay.
func WithMemEvents() Option { return func(c *RunConfig) { c.CollectMemEvents = true } }

// WithMaxEvents bounds the simulator's event budget.
func WithMaxEvents(n int64) Option { return func(c *RunConfig) { c.MaxEvents = n } }

// WithPipeline sets the simulator's per-worker pipeline depth (one
// computing plus n-1 staging slots). This is the canonical spelling —
// it matches the simulator's own Pipeline option.
func WithPipeline(n int) Option { return func(c *RunConfig) { c.Lookahead = n } }

// WithLookahead sets the simulator's per-worker pipeline depth.
//
// Deprecated: use WithPipeline; kept for compatibility.
func WithLookahead(n int) Option { return WithPipeline(n) }

// WithTransferSpans keeps per-transfer spans in the simulator trace
// (span and idle accounting are always recorded regardless).
func WithTransferSpans() Option { return func(c *RunConfig) { c.CollectTrace = true } }

// WithProbe attaches an observation probe.
func WithProbe(p obs.Probe) Option { return func(c *RunConfig) { c.Probe = p } }

// WithFaultPlan injects a fault plan into the run.
func WithFaultPlan(p *fault.Plan) Option { return func(c *RunConfig) { c.Faults = p } }

// WithWatchdog arms the progress watchdog: a run still incomplete after
// the wall-clock deadline is aborted with ErrWatchdog and a diagnostic
// dump (decision-log tail plus per-worker state) is written to the
// watchdog output (os.Stderr unless WithWatchdogOutput overrides it).
func WithWatchdog(deadline time.Duration) Option {
	return func(c *RunConfig) { c.Watchdog.Deadline = deadline }
}

// WithWatchdogOutput redirects the watchdog's diagnostic dump.
func WithWatchdogOutput(w io.Writer) Option {
	return func(c *RunConfig) { c.Watchdog.Out = w }
}

// WithObserver attaches a run observer (see RunObserver): its probe
// half fans in beside any WithProbe probe, and its lifecycle hooks see
// every Run start and end.
func WithObserver(o RunObserver) Option {
	return func(c *RunConfig) { c.Observer = o }
}

// WithArrivals makes the run a streaming run: at[i] is the submission
// time of task i, and the engine holds each task back from the
// scheduler until its arrival time (internal/stream builds arrival
// plans; all-zero arrivals reproduce batch mode exactly).
func WithArrivals(at []float64) Option {
	return func(c *RunConfig) { c.Arrivals = at }
}

// ValidateArrivals checks an arrival plan against a graph: the plan
// must cover every task exactly, and every time must be finite and
// non-negative. Both engines call it before running a streaming graph.
func ValidateArrivals(at []float64, g *Graph) error {
	if at == nil {
		return nil
	}
	if len(at) != len(g.Tasks) {
		return fmt.Errorf("runtime: arrival plan covers %d tasks, graph has %d", len(at), len(g.Tasks))
	}
	for i, a := range at {
		if a < 0 || math.IsNaN(a) || math.IsInf(a, 0) {
			return fmt.Errorf("runtime: task %d has invalid arrival time %g", i, a)
		}
	}
	return nil
}

// BuildRunConfig applies opts over the zero config. Engine constructors
// share it.
func BuildRunConfig(opts []Option) RunConfig {
	var c RunConfig
	for _, o := range opts {
		o(&c)
	}
	return c
}

// TraceFromGraph builds a trace from the execution records the engines
// leave on the tasks themselves (StartAt/EndAt/RanOn), in task-ID order
// with no transfer-wait or sequencing information. It remains for
// callers holding only a graph; engine Results carry richer traces.
func TraceFromGraph(m *platform.Machine, g *Graph) *trace.Trace {
	tr := trace.New(m)
	for _, t := range g.Tasks {
		tr.AddSpan(trace.Span{
			Worker: t.RanOn,
			TaskID: t.ID,
			Kind:   t.Kind,
			Start:  t.StartAt,
			End:    t.EndAt,
		})
	}
	return tr
}

// WorkerStatsFromTrace derives per-worker statistics from a finished
// trace; dead/failed attribution comes from the spans' Failed flags and
// the applied kills.
func WorkerStatsFromTrace(m *platform.Machine, tr *trace.Trace, kills []AppliedKill) []WorkerStat {
	stats := make([]WorkerStat, len(m.Units))
	for i, u := range m.Units {
		stats[i] = WorkerStat{Unit: platform.UnitID(i), Name: u.Name}
	}
	for _, s := range tr.Spans {
		if int(s.Worker) >= len(stats) || s.Worker < 0 {
			continue
		}
		w := &stats[s.Worker]
		w.Busy += s.End - s.Start
		switch {
		case s.Failed:
			w.FailedAttempts++
		case s.Cancelled:
			w.CancelledAttempts++
		default:
			w.Tasks++
		}
	}
	for _, k := range kills {
		if int(k.Unit) < len(stats) {
			stats[k.Unit].Dead = true
		}
	}
	return stats
}
