package runtime_test

import (
	"errors"
	"testing"
	"time"

	"multiprio/internal/core"
	"multiprio/internal/fault"
	"multiprio/internal/oracle"
	"multiprio/internal/platform"
	"multiprio/internal/runtime"
	"multiprio/internal/sched/heft"
	"multiprio/internal/sched/heft/heftcheck"
)

// staticChains builds chains of sleeping kernels whose modeled cost
// matches the sleep, so the static plan's timeline tracks wall-clock
// execution closely enough for replay.
func staticChains(chains, length int, d time.Duration) *runtime.Graph {
	g := runtime.NewGraph()
	for c := 0; c < chains; c++ {
		h := g.NewData("chain", 4096)
		for i := 0; i < length; i++ {
			g.SubmitBatch([]runtime.TaskSpec{{
				Kind:     "work",
				Cost:     []float64{d.Seconds()},
				Flops:    1,
				Accesses: []runtime.Access{{Handle: h, Mode: runtime.RW}},
				Run:      func(w runtime.WorkerInfo) { time.Sleep(d) },
			}})
		}
	}
	return g
}

// TestThreadedStaticCriticalKill mirrors the simulator test on the
// wall-clock engine: killing the worker that owns the static critical
// path strands pure replay (ErrStarved), while hybrid completes with a
// justified repair log the oracle accepts.
func TestThreadedStaticCriticalKill(t *testing.T) {
	const d = 2 * time.Millisecond
	m := platform.CPUOnly(3)

	probe := heft.NewStatic(heft.RankUpward)
	probe.Init(runtime.NewEnv(m, staticChains(4, 6, d)))
	plan := probe.Plan()
	cw := plan.CriticalWorker()

	cases := []struct {
		name   string
		sched  func() *heft.Sched
		strand bool
	}{
		{"static", func() *heft.Sched { return heft.NewStatic(heft.RankUpward) }, true},
		{"hybrid", func() *heft.Sched { return heft.NewHybrid(heft.RankUpward, core.New(core.Defaults())) }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fp := &fault.Plan{
				Events:  []fault.Event{{Kind: fault.KillWorker, Worker: cw, At: 0.3 * plan.Makespan}},
				Backoff: 1e-4,
			}
			hs := tc.sched()
			eng, err := runtime.NewThreadedEngine(m, hs, runtime.WithFaultPlan(fp))
			if err != nil {
				t.Fatal(err)
			}
			g := staticChains(4, 6, d)
			res, err := eng.Run(g)
			if tc.strand {
				if err == nil {
					t.Fatal("static replay survived the critical-worker kill")
				}
				if !errors.Is(err, runtime.ErrStarved) {
					t.Fatalf("want starvation, got: %v", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("hybrid: %v", err)
			}
			// Strict is off: the threaded engine's completion-discard
			// semantics let a kernel finish (failed) after the kill.
			if err := oracle.Check(g, res.Trace, oracle.Options{
				Eps: 2e-3,
				Faults: &oracle.FaultCheck{
					MaxRetries: fp.RetryCap(),
					Kills:      res.Faults.AppliedKills,
				},
				Static: heftcheck.For(hs, res.Faults.AppliedKills),
			}); err != nil {
				t.Fatalf("oracle rejected hybrid run: %v", err)
			}
			killRepairs := 0
			for _, r := range hs.Repairs() {
				if r.Reason == heft.RepairKill && r.Worker == cw {
					killRepairs++
				}
			}
			if killRepairs != 1 {
				t.Errorf("kill repairs = %d, want 1 (repairs: %+v)", killRepairs, hs.Repairs())
			}
		})
	}
}

// TestThreadedStaticFaultFree: pinned replay on the wall-clock engine
// with no faults follows the plan — full oracle with StaticCheck, no
// repairs.
func TestThreadedStaticFaultFree(t *testing.T) {
	const d = time.Millisecond
	m := platform.CPUOnly(3)
	for _, alg := range []heft.Algorithm{heft.RankUpward, heft.RankOptimistic} {
		hs := heft.NewStatic(alg)
		eng, err := runtime.NewThreadedEngine(m, hs)
		if err != nil {
			t.Fatal(err)
		}
		g := staticChains(3, 5, d)
		res, err := eng.Run(g)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if err := oracle.Check(g, res.Trace, oracle.Options{
			Eps:    2e-3,
			Static: heftcheck.For(hs, nil),
		}); err != nil {
			t.Fatalf("%v: oracle rejected replay: %v", alg, err)
		}
		if n := len(hs.Repairs()); n != 0 {
			t.Errorf("%v: %d repairs on a fault-free run", alg, n)
		}
	}
}
