package runtime

import (
	"math"
	"sync/atomic"

	"multiprio/internal/obs"
	"multiprio/internal/perfmodel"
	"multiprio/internal/platform"
)

// Scheduler is the contract between the execution engines and a
// scheduling policy, mirroring StarPU's push/pop custom-policy hooks
// (Section IV-A of the paper).
//
// Implementations must be safe for concurrent use: the threaded engine
// calls Pop from many worker goroutines, and Push/TaskDone from whichever
// goroutine completes a predecessor.
type Scheduler interface {
	// Name returns the policy name used in reports ("multiprio",
	// "dmdas", ...).
	Name() string
	// Init binds the scheduler to an execution environment. It is
	// called once before any Push/Pop and resets all internal state.
	Init(env *Env)
	// Push offers a task whose dependencies are all released.
	Push(t *Task)
	// Pop requests a task for an idle worker. Returning nil means the
	// policy has no eligible task for this worker right now; the engine
	// will call again after the next Push or completion. The scheduler
	// must return claimed tasks only (Task.TryClaim succeeded).
	Pop(w WorkerInfo) *Task
	// TaskDone notifies the scheduler that the task finished on w.
	TaskDone(t *Task, w WorkerInfo)
}

// DataLocator exposes the engine's view of data placement to schedulers,
// for the locality heuristics (LS_SDH², dmda transfer estimates).
type DataLocator interface {
	// IsResident reports whether a valid replica of h exists on mem.
	IsResident(h *DataHandle, mem platform.MemID) bool
	// TransferEstimate returns the estimated time to make h valid on
	// mem (0 when already resident). It ignores queueing delays.
	TransferEstimate(h *DataHandle, mem platform.MemID) float64
}

// homeLocator is the trivial locator of engines without distributed
// memory (the threaded engine): everything lives on RAM.
type homeLocator struct{}

func (homeLocator) IsResident(h *DataHandle, mem platform.MemID) bool { return mem == h.Home }
func (homeLocator) TransferEstimate(h *DataHandle, mem platform.MemID) float64 {
	return 0
}

// Env is the execution environment handed to schedulers at Init.
type Env struct {
	Machine *platform.Machine
	Graph   *Graph
	Model   perfmodel.Estimator
	Locator DataLocator
	// Now returns the current time in seconds (virtual or wall-clock).
	Now func() float64
	// Prefetch asks the engine to stage the task's data on mem in the
	// background. Engines without transfers leave it nil.
	Prefetch func(t *Task, mem platform.MemID)
	// Probe receives scheduler decision events and counter samples
	// (internal/obs). Nil disables observation; schedulers must guard
	// every probe call site with a nil check so the disabled path is
	// free, and must never let observation influence a decision.
	Probe obs.Probe
	// Seq returns the engine's last-assigned linearization sequence
	// number, for stamping probe events against trace.Span.StartSeq.
	// It is strictly read-only: calling it never advances the
	// sequencer. Engines without a sequencer return 0.
	Seq func() int64

	// live is the fault-time worker view, published copy-on-write so
	// scheduler goroutines read it without locks. It stays nil until
	// the first MarkWorkerDown: fault-free runs never allocate it and
	// every Live* helper falls back to the machine's static counts.
	live atomic.Pointer[liveView]
}

// liveView is an immutable snapshot of which workers are alive.
type liveView struct {
	down   []bool
	byArch []int
	byMem  []int
}

// FaultObserver is implemented by schedulers that keep per-worker or
// per-memory-node state needing repair when fault injection removes a
// worker. Engines call WorkerDown after marking the worker dead in the
// Env, from the event loop (simulator) or the fault controller
// goroutine (threaded engine) — implementations must take their own
// locks, exactly as for Push/Pop.
type FaultObserver interface {
	WorkerDown(w WorkerInfo)
}

// MarkWorkerDown removes unit u from the live-worker view. Engines call
// it when a KillWorker fault applies; schedulers read the view through
// WorkerAlive/LiveWorkersOf/LiveWorkersOn.
func (e *Env) MarkWorkerDown(u platform.UnitID) {
	old := e.live.Load()
	lv := &liveView{
		down:   make([]bool, len(e.Machine.Units)),
		byArch: make([]int, len(e.Machine.Archs)),
		byMem:  make([]int, len(e.Machine.Mems)),
	}
	if old != nil {
		copy(lv.down, old.down)
	}
	lv.down[u] = true
	for i, unit := range e.Machine.Units {
		if !lv.down[i] {
			lv.byArch[unit.Arch]++
			lv.byMem[unit.Mem]++
		}
	}
	e.live.Store(lv)
}

// WorkerAlive reports whether unit u is still alive.
func (e *Env) WorkerAlive(u platform.UnitID) bool {
	lv := e.live.Load()
	return lv == nil || !lv.down[u]
}

// LiveWorkersOf returns the number of live workers of architecture a.
// Without fault injection it equals Machine.NumWorkersOf.
func (e *Env) LiveWorkersOf(a platform.ArchID) int {
	if lv := e.live.Load(); lv != nil {
		return lv.byArch[a]
	}
	return e.Machine.NumWorkersOf(a)
}

// LiveWorkersOn returns the number of live workers on memory node mem.
func (e *Env) LiveWorkersOn(mem platform.MemID) int {
	if lv := e.live.Load(); lv != nil {
		return lv.byMem[mem]
	}
	return len(e.Machine.UnitsOn(mem))
}

// Delta returns δ(t, a): the estimated execution time of t on
// architecture a, or +Inf when t has no implementation for a. This is
// the quantity every heuristic in the paper is written in terms of.
func (e *Env) Delta(t *Task, a platform.ArchID) float64 {
	if !t.CanRun(a) {
		return math.Inf(1)
	}
	sec, ok := e.Model.Estimate(t.Kind, a, t.Footprint, func() (float64, bool) {
		return t.BaseCost(a)
	})
	if !ok {
		return math.Inf(1)
	}
	return sec
}

// BestArch returns the architecture with the minimum δ(t, a) among
// architectures that have at least one worker, and that minimum. The
// boolean is false when no worker can run the task.
func (e *Env) BestArch(t *Task) (platform.ArchID, float64, bool) {
	best := platform.ArchID(-1)
	bestT := math.Inf(1)
	for a := range e.Machine.Archs {
		arch := platform.ArchID(a)
		if e.LiveWorkersOf(arch) == 0 {
			continue
		}
		if d := e.Delta(t, arch); d < bestT {
			best, bestT = arch, d
		}
	}
	return best, bestT, best >= 0
}

// SecondBestArch returns the arch with the second smallest δ among archs
// with workers, used by the gain heuristic (Eq. 1). ok is false when
// fewer than two architectures can run the task.
func (e *Env) SecondBestArch(t *Task) (platform.ArchID, float64, bool) {
	best, second := platform.ArchID(-1), platform.ArchID(-1)
	bestT, secondT := math.Inf(1), math.Inf(1)
	for a := range e.Machine.Archs {
		arch := platform.ArchID(a)
		if e.LiveWorkersOf(arch) == 0 {
			continue
		}
		d := e.Delta(t, arch)
		if math.IsInf(d, 1) {
			continue
		}
		switch {
		case d < bestT:
			second, secondT = best, bestT
			best, bestT = arch, d
		case d < secondT:
			second, secondT = arch, d
		}
	}
	_ = best
	return second, secondT, second >= 0
}

// TransferEstimate sums the locator's per-handle estimates for all of
// t's accesses to mem. Write-only accesses need no fetch of the previous
// contents, matching the simulator's transfer rules.
func (e *Env) TransferEstimate(t *Task, mem platform.MemID) float64 {
	if e.Locator == nil {
		return 0
	}
	var sum float64
	for _, a := range t.Accesses {
		if a.Mode == W {
			continue
		}
		sum += e.Locator.TransferEstimate(a.Handle, mem)
	}
	return sum
}

// LSSDH2 computes the LS_SDH² locality score of task t on memory node
// mem (Eq. 3): the sum of sizes of the task's read data already resident
// on mem, plus the squared sizes for written data. Higher means more of
// the task's data is already local.
func (e *Env) LSSDH2(t *Task, mem platform.MemID) float64 {
	if e.Locator == nil {
		return 0
	}
	var score float64
	for _, a := range t.Accesses {
		if !e.Locator.IsResident(a.Handle, mem) {
			continue
		}
		sz := float64(a.Handle.Bytes)
		if a.Mode.IsWrite() {
			score += sz * sz
		} else {
			score += sz
		}
	}
	return score
}

// NewEnv builds an Env with sensible defaults: oracle performance model,
// home locator, zero clock. Engines override the fields they implement.
func NewEnv(m *platform.Machine, g *Graph) *Env {
	return &Env{
		Machine: m,
		Graph:   g,
		Model:   perfmodel.Oracle{},
		Locator: homeLocator{},
		Now:     func() float64 { return 0 },
		Seq:     func() int64 { return 0 },
	}
}
